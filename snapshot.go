package repro

import (
	"io"

	"repro/internal/chaos"
	"repro/internal/cite"
	"repro/internal/dataset"
	"repro/internal/query"
	"repro/internal/snap"
)

// WriteSnapshot serializes the study's corpus, its columnar FrameSet, and
// its citation graph (each built first if it has not been yet) into the
// binary .whpcsnap format. A study opened from the snapshot produces
// byte-identical reports and query results (see
// TestSnapshotRoundTripReport).
func (s *Study) WriteSnapshot(w io.Writer) error {
	return snap.WriteCited(w, s.data, s.Frames(), s.CitationGraph())
}

// SaveSnapshot writes the snapshot atomically to path; a crash mid-write
// never leaves a partial file behind.
func (s *Study) SaveSnapshot(path string) error {
	return snap.WriteCitedFile(path, s.data, s.Frames(), s.CitationGraph())
}

// OpenSnapshot reads a snapshot written by WriteSnapshot from r. The
// snapshot is fully validated (checksums, format version, structural
// invariants, dataset referential integrity) before a Study is returned.
func OpenSnapshot(r io.Reader) (*Study, error) {
	d, fs, g, err := snap.ReadCited(r)
	if err != nil {
		return nil, err
	}
	return studyFromSnapshot(d, fs, g), nil
}

// OpenSnapshotFile reads a snapshot file written by SaveSnapshot. Errors
// carry the file path, and decode failures keep their *FormatError
// section context underneath.
func OpenSnapshotFile(path string) (*Study, error) {
	return OpenSnapshotFileInjected(path, chaos.None)
}

// OpenSnapshotFileInjected is OpenSnapshotFile with a chaos injector
// threaded through the read (snap.read) and section-decode (snap.decode)
// layers. The chaos suite uses it to prove the warm-boot path degrades to
// synthesis — never to a wrong answer — under torn reads and injected
// decode faults; production callers use OpenSnapshotFile.
func OpenSnapshotFileInjected(path string, inj chaos.Injector) (*Study, error) {
	d, fs, g, err := snap.OpenCitedInjected(path, inj)
	if err != nil {
		return nil, err
	}
	return studyFromSnapshot(d, fs, g), nil
}

func studyFromSnapshot(d *dataset.Dataset, fs *query.FrameSet, g *cite.Graph) *Study {
	s := &Study{data: d, scID: findSC(d)}
	if fs != nil {
		// Install the deserialized FrameSet where the lazy builder would
		// have put it; Frames() then returns it without rebuilding.
		s.framesOnce.Do(func() { s.frames = fs })
	}
	// Likewise for the citation graph; snapshots written before the
	// citations section existed leave it nil and CitationGraph
	// resynthesizes (deterministically identical).
	s.citeGraph = g
	return s
}
