package repro_test

import (
	"fmt"
	"log"

	"repro"
)

// ExampleNewStudy shows the one-call reproduction of the paper's corpus
// shape: nine conferences, 518 papers, exactly as Table 1 reports.
func ExampleNewStudy() {
	study, err := repro.NewStudy(2021)
	if err != nil {
		log.Fatal(err)
	}
	d := study.Dataset()
	fmt.Println(len(d.Conferences), "conferences,", len(d.Papers), "papers")
	far := study.FAR()
	fmt.Println("author slots:", far.TotalSlots)
	// Output:
	// 9 conferences, 518 papers
	// author slots: 2111
}

// ExampleStudy_PC shows the §3.2 program-committee population sizes, which
// the generator pins to the paper's totals.
func ExampleStudy_PC() {
	study, err := repro.NewStudy(2021)
	if err != nil {
		log.Fatal(err)
	}
	pc, err := study.PC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PC slots:", pc.SlotsTotal)
	fmt.Println("PC chairs:", pc.ChairsTotal)
	// Output:
	// PC slots: 1220
	// PC chairs: 36
}
