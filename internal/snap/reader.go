package snap

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"repro/internal/chaos"
	"repro/internal/cite"
	"repro/internal/dataset"
	"repro/internal/query"
)

// Reader parses and validates one snapshot held in memory. NewReader
// performs every integrity check up front — magic, format version,
// directory structure, per-section CRC-32s, and the whole-file checksum —
// so Corpus and Frames decode already-authenticated bytes and can
// attribute any remaining failure (a structural impossibility the
// checksums cannot see, e.g. a count disagreement between sections) to a
// section and offset.
type Reader struct {
	sections []SectionInfo
	payloads map[string][]byte
	meta     metaInfo
	inj      chaos.Injector // consulted at snap.decode; chaos.None in production
}

type metaInfo struct {
	hasFrames                    bool
	isDelta                      bool
	hasCitations                 bool
	persons, conferences, papers int
}

// knownSections is the set of section names this format version defines;
// anything else fails validation (forward compatibility is handled by the
// version field, not by skipping sections).
var knownSections = map[string]bool{
	SectionMeta:        true,
	SectionPersons:     true,
	SectionConferences: true,
	SectionPapers:      true,
	SectionFrames:      true,
	SectionDelta:       true,
	SectionCitations:   true,
}

// NewReader validates data as a complete snapshot and returns a Reader
// over it. The slice is retained; callers must not mutate it afterwards.
func NewReader(data []byte) (*Reader, error) {
	return NewReaderInjected(data, chaos.None)
}

// NewReaderInjected is NewReader with a chaos injector consulted at the
// snap.decode point once per section decode (Corpus and Frames); the
// validation pass itself is not injectable — a reader either proves the
// bytes whole or rejects them. Production callers use NewReader.
func NewReaderInjected(data []byte, inj chaos.Injector) (*Reader, error) {
	if len(data) < headerSize+4 {
		return nil, fileErr(int64(len(data)), fmt.Sprintf("file is %d bytes, shorter than the %d-byte header and checksum trailer", len(data), headerSize+4), ErrTruncated)
	}
	if string(data[:8]) != Magic {
		return nil, fileErr(0, "", ErrBadMagic)
	}
	if v := binary.LittleEndian.Uint16(data[8:10]); v != FormatVersion {
		return nil, fileErr(8, fmt.Sprintf("file has format version %d, this build supports %d", v, FormatVersion), ErrVersion)
	}
	if rsv := binary.LittleEndian.Uint16(data[10:12]); rsv != 0 {
		return nil, fileErr(10, fmt.Sprintf("reserved header bytes are %#x, want 0", rsv), ErrCorrupt)
	}
	count := int(binary.LittleEndian.Uint32(data[12:16]))
	const minEntry = 1 + 8 + 8 + 4
	if count > (len(data)-headerSize-4)/minEntry {
		return nil, fileErr(12, fmt.Sprintf("directory declares %d sections, more than the file could hold", count), ErrTruncated)
	}

	body := int64(len(data) - 4) // everything before the checksum trailer
	r := &Reader{payloads: make(map[string][]byte, count), inj: chaos.Or(inj)}
	off := int64(headerSize)
	for i := 0; i < count; i++ {
		if off >= body {
			return nil, fileErr(off, fmt.Sprintf("directory entry %d starts past the payload region", i), ErrTruncated)
		}
		nameLen := int64(data[off])
		off++
		if off+nameLen+8+8+4 > body {
			return nil, fileErr(off, fmt.Sprintf("directory entry %d overruns the payload region", i), ErrTruncated)
		}
		name := string(data[off : off+nameLen])
		off += nameLen
		secOff := int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		secLen := int64(binary.LittleEndian.Uint64(data[off:]))
		off += 8
		secCRC := binary.LittleEndian.Uint32(data[off:])
		off += 4
		if !knownSections[name] {
			return nil, fileErr(off, fmt.Sprintf("directory entry %d names unknown section %q", i, name), ErrCorrupt)
		}
		if _, dup := r.payloads[name]; dup {
			return nil, fileErr(off, fmt.Sprintf("directory repeats section %q", name), ErrCorrupt)
		}
		if secOff < off || secLen < 0 || secOff+secLen > body || secOff+secLen < secOff {
			return nil, fileErr(off, fmt.Sprintf("section %q claims bytes [%d, %d), outside the payload region", name, secOff, secOff+secLen), ErrTruncated)
		}
		r.sections = append(r.sections, SectionInfo{Name: name, Offset: secOff, Length: secLen, CRC32: secCRC})
		r.payloads[name] = data[secOff : secOff+secLen]
	}

	// Per-section checksums first: a bit flip inside a payload is
	// attributed to its section, not reported as a bare file mismatch.
	for _, s := range r.sections {
		if got := crc32.ChecksumIEEE(r.payloads[s.Name]); got != s.CRC32 {
			return nil, &FormatError{
				Section: s.Name,
				Offset:  0,
				Msg:     fmt.Sprintf("payload CRC-32 %#08x does not match directory %#08x", got, s.CRC32),
				Err:     ErrChecksum,
			}
		}
	}
	if got, want := crc32.ChecksumIEEE(data[:body]), binary.LittleEndian.Uint32(data[body:]); got != want {
		return nil, fileErr(body, fmt.Sprintf("whole-file CRC-32 %#08x does not match trailer %#08x", got, want), ErrChecksum)
	}

	for _, name := range []string{SectionMeta, SectionPersons, SectionConferences, SectionPapers} {
		if _, ok := r.payloads[name]; !ok {
			return nil, fileErr(int64(headerSize), fmt.Sprintf("directory has no %q section", name), ErrNoSection)
		}
	}
	if err := r.decodeMeta(); err != nil {
		return nil, err
	}
	_, gotFrames := r.payloads[SectionFrames]
	if gotFrames != r.meta.hasFrames {
		return nil, fileErr(int64(headerSize), fmt.Sprintf("meta frames flag %v disagrees with frames section presence %v", r.meta.hasFrames, gotFrames), ErrCorrupt)
	}
	_, gotDelta := r.payloads[SectionDelta]
	if gotDelta != r.meta.isDelta {
		return nil, fileErr(int64(headerSize), fmt.Sprintf("meta delta flag %v disagrees with delta section presence %v", r.meta.isDelta, gotDelta), ErrCorrupt)
	}
	_, gotCitations := r.payloads[SectionCitations]
	if gotCitations != r.meta.hasCitations {
		return nil, fileErr(int64(headerSize), fmt.Sprintf("meta citations flag %v disagrees with citations section presence %v", r.meta.hasCitations, gotCitations), ErrCorrupt)
	}
	if r.meta.isDelta && r.meta.hasFrames {
		return nil, fileErr(int64(headerSize), "delta snapshot carries a frames section", ErrCorrupt)
	}
	if r.meta.isDelta && r.meta.hasCitations {
		return nil, fileErr(int64(headerSize), "delta snapshot carries a citations section", ErrCorrupt)
	}
	return r, nil
}

// ReadFrom reads a complete snapshot from r and validates it.
func ReadFrom(r io.Reader) (*Reader, error) {
	var buf bytes.Buffer
	// Size hint (bytes.Reader, bytes.Buffer, strings.Reader) avoids the
	// doubling-regrowth copies that io.ReadAll would pay on a large file.
	if l, ok := r.(interface{ Len() int }); ok {
		buf.Grow(l.Len() + 1)
	}
	if _, err := buf.ReadFrom(r); err != nil {
		return nil, fmt.Errorf("snap: reading snapshot: %w", err)
	}
	return NewReader(buf.Bytes())
}

// OpenFile reads and validates the snapshot at path.
func OpenFile(path string) (*Reader, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func (r *Reader) decodeMeta() error {
	dc := newDec(SectionMeta, r.payloads[SectionMeta])
	flags, err := dc.uvarint("flags")
	if err != nil {
		return err
	}
	if flags&^uint64(flagHasFrames|flagIsDelta|flagHasCitations) != 0 {
		return dc.err(fmt.Sprintf("unknown flag bits %#x", flags), ErrCorrupt)
	}
	r.meta.hasFrames = flags&flagHasFrames != 0
	r.meta.isDelta = flags&flagIsDelta != 0
	r.meta.hasCitations = flags&flagHasCitations != 0
	counts := [3]*int{&r.meta.persons, &r.meta.conferences, &r.meta.papers}
	names := [3]string{"person", "conference", "paper"}
	for i, dst := range counts {
		v, err := dc.uvarint(names[i] + " count")
		if err != nil {
			return err
		}
		if v > uint64(1)<<40 {
			return dc.err(fmt.Sprintf("%s count %d is implausible", names[i], v), ErrCorrupt)
		}
		*dst = int(v)
	}
	return dc.finished("meta")
}

// Sections returns the directory entries in file order.
func (r *Reader) Sections() []SectionInfo {
	return append([]SectionInfo(nil), r.sections...)
}

// HasFrames reports whether the snapshot carries a pre-built FrameSet.
func (r *Reader) HasFrames() bool { return r.meta.hasFrames }

// Counts returns the entity counts recorded in the meta section.
func (r *Reader) Counts() (persons, conferences, papers int) {
	return r.meta.persons, r.meta.conferences, r.meta.papers
}

// chaosStep consults the reader's injector before decoding section; any
// armed fault surfaces as a *FormatError naming the section and wrapping
// chaos.ErrInjected, so injected decode failures flow through the same
// typed-error path organic corruption does.
func (r *Reader) chaosStep(section string) error {
	if f := r.inj.Fire(chaos.PointSnapDecode); f != nil {
		return &FormatError{Section: section, Msg: "injected fault", Err: chaos.ErrInjected}
	}
	return nil
}

// Corpus decodes the three entity sections into a validated dataset.
func (r *Reader) Corpus() (*dataset.Dataset, error) {
	d := dataset.New()
	if err := r.chaosStep(SectionPersons); err != nil {
		return nil, err
	}
	ids, err := decodePersons(r.payloads[SectionPersons], r.meta.persons, d)
	if err != nil {
		return nil, err
	}
	if err := r.chaosStep(SectionConferences); err != nil {
		return nil, err
	}
	if err := decodeConferences(r.payloads[SectionConferences], r.meta.conferences, ids, d); err != nil {
		return nil, err
	}
	if err := r.chaosStep(SectionPapers); err != nil {
		return nil, err
	}
	if err := decodePapers(r.payloads[SectionPapers], r.meta.papers, ids, d); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("snap: decoded corpus failed validation: %w", err)
	}
	return d, nil
}

// Frames decodes the pre-built FrameSet. It returns a *FormatError
// wrapping ErrNoSection when the snapshot was written without frames;
// callers that treat frames as optional should check HasFrames first.
func (r *Reader) Frames() (*query.FrameSet, error) {
	payload, ok := r.payloads[SectionFrames]
	if !ok {
		return nil, &FormatError{Section: SectionFrames, Msg: "snapshot was written without frames", Err: ErrNoSection}
	}
	if err := r.chaosStep(SectionFrames); err != nil {
		return nil, err
	}
	return decodeFrames(payload)
}

// Open reads the snapshot at path and decodes its corpus and, when
// present, its frames (nil otherwise). It is the one-call load path the
// Study and whpcd warm-boot integrations use. Every failure — read,
// validation, or decode — is wrapped with the file path, and decode
// failures keep their *FormatError section context underneath.
func Open(path string) (*dataset.Dataset, *query.FrameSet, error) {
	return OpenInjected(path, chaos.None)
}

// OpenInjected is Open with a chaos injector consulted at the snap.read
// point (after the bytes arrive: torn-read faults truncate the buffer,
// every other kind fails the read typed) and at the snap.decode point
// once per decoded section. Production callers use Open.
func OpenInjected(path string, inj chaos.Injector) (*dataset.Dataset, *query.FrameSet, error) {
	d, fs, _, err := OpenCitedInjected(path, inj)
	return d, fs, err
}

// Read decodes a complete snapshot from an io.Reader: the corpus and,
// when present, the frames (nil otherwise).
func Read(rd io.Reader) (*dataset.Dataset, *query.FrameSet, error) {
	r, err := ReadFrom(rd)
	if err != nil {
		return nil, nil, err
	}
	d, fs, _, err := decodeAll(r)
	return d, fs, err
}

func decodeAll(r *Reader) (*dataset.Dataset, *query.FrameSet, *cite.Graph, error) {
	if r.IsDelta() {
		return nil, nil, nil, &FormatError{Section: SectionDelta, Msg: "snapshot is a delta, not a full corpus; apply it through OpenDelta and internal/delta", Err: ErrCorrupt}
	}
	// The frames section decodes concurrently with the corpus: the two
	// payloads are independent and together dominate warm-boot latency.
	// decodeFrames is a pure function of its payload; the frames chaos
	// step still fires on this goroutine after the corpus steps, so a
	// scheduled injector sees the exact hit ordinals of a sequential
	// decode. The citation graph decodes last (it is tiny next to the
	// other sections), keeping pre-citation chaos hit ordinals intact.
	payload, hasFrames := r.payloads[SectionFrames]
	var (
		fs    *query.FrameSet
		fsErr error
	)
	done := make(chan struct{})
	if hasFrames {
		go func() {
			defer close(done)
			fs, fsErr = decodeFrames(payload)
		}()
	} else {
		close(done)
	}
	d, err := r.Corpus()
	if err != nil {
		<-done
		return nil, nil, nil, err
	}
	if hasFrames {
		if err := r.chaosStep(SectionFrames); err != nil {
			<-done
			return nil, nil, nil, err
		}
	}
	<-done
	if fsErr != nil {
		return nil, nil, nil, fsErr
	}
	var g *cite.Graph
	if r.HasCitations() {
		if g, err = r.Citations(); err != nil {
			return nil, nil, nil, err
		}
	}
	return d, fs, g, nil
}
