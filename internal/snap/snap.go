// Package snap implements the .whpcsnap binary snapshot format: a
// versioned, checksummed, columnar serialization of a full corpus and
// (optionally) its pre-built columnar query frames. It is the binary
// analog of the paper's frozen-CSV artifact (github.com/eitanf/sysconf):
// instead of re-synthesizing and re-linking the corpus on every cold
// start, a daemon or CLI run reloads the frozen bytes and resumes in
// I/O-bound time.
//
// # Layout
//
//	magic "WHPCSNAP" (8 bytes)
//	format version   (uint16 LE)
//	reserved         (uint16 LE, zero)
//	section count    (uint32 LE)
//	directory        (per section: name, offset, length, CRC-32)
//	section payloads (concatenated, in directory order)
//	file checksum    (uint32 LE: CRC-32 of every preceding byte)
//
// Section payloads use dictionary-encoded strings, zigzag-varint integer
// columns, fixed 64-bit float columns, and bitmap validity/boolean
// columns. Every section carries its own CRC-32 in the directory, so a
// bit flip is attributed to the section it corrupted; the trailing
// whole-file checksum catches damage to the header or directory itself.
//
// # Guarantees
//
// Writing is deterministic: the same corpus always serializes to
// byte-identical snapshots. Reading validates the magic, version, every
// section CRC, the file checksum, and all structural invariants
// (dictionary code ranges, column lengths, bitmap sizes) before any
// value is handed out; truncated, bit-flipped, or future-version inputs
// return a *FormatError naming the failing section and byte offset, and
// never panic. A corpus loaded from a snapshot is proven byte-identical
// to the freshly generated one at the report level (see the round-trip
// tests at the module root).
package snap

import (
	"errors"
	"fmt"
)

// Magic identifies a .whpcsnap file; it is the first 8 bytes.
const Magic = "WHPCSNAP"

// FormatVersion is the current snapshot format version. Readers reject
// files with a newer version (forward compatibility is not promised);
// older versions are rejected too until a migration path exists.
const FormatVersion = 1

// FileExt is the conventional file extension for snapshot files.
const FileExt = ".whpcsnap"

// Section names. The corpus sections are always present; frames is
// optional (snapshots may carry the raw corpus only).
const (
	SectionMeta        = "meta"
	SectionPersons     = "persons"
	SectionConferences = "conferences"
	SectionPapers      = "papers"
	SectionFrames      = "frames"
)

// Sentinel errors, matchable with errors.Is through the *FormatError
// wrapper.
var (
	// ErrBadMagic means the input does not start with the WHPCSNAP magic.
	ErrBadMagic = errors.New("not a whpcsnap file (bad magic)")
	// ErrVersion means the file's format version is not FormatVersion.
	ErrVersion = errors.New("unsupported snapshot format version")
	// ErrChecksum means a CRC-32 mismatch (section or whole-file).
	ErrChecksum = errors.New("checksum mismatch")
	// ErrTruncated means the input ended before a declared structure.
	ErrTruncated = errors.New("truncated input")
	// ErrCorrupt means a structural invariant was violated (impossible
	// length, dictionary code out of range, unknown column type, ...).
	ErrCorrupt = errors.New("corrupt snapshot")
	// ErrNoSection means a required section is missing from the directory.
	ErrNoSection = errors.New("missing section")
)

// FormatError is the structured decode error: it names the section being
// decoded ("" for file-level structures like the header or directory),
// the byte offset the failure was detected at (relative to the section
// payload, or to the file for file-level errors), and wraps one of the
// sentinel errors above.
type FormatError struct {
	Section string // "" for file-level errors
	Offset  int64  // byte offset within the section (or file)
	Msg     string // human context, e.g. "person column ids"
	Err     error  // sentinel cause (ErrTruncated, ErrCorrupt, ...)
}

// Error renders "snap: section "persons" at offset 123: ...".
func (e *FormatError) Error() string {
	where := "file"
	if e.Section != "" {
		where = fmt.Sprintf("section %q", e.Section)
	}
	if e.Msg == "" {
		return fmt.Sprintf("snap: %s at offset %d: %v", where, e.Offset, e.Err)
	}
	return fmt.Sprintf("snap: %s at offset %d: %s: %v", where, e.Offset, e.Msg, e.Err)
}

// Unwrap exposes the sentinel cause to errors.Is.
func (e *FormatError) Unwrap() error { return e.Err }

// fileErr builds a file-level FormatError.
func fileErr(offset int64, msg string, cause error) *FormatError {
	return &FormatError{Offset: offset, Msg: msg, Err: cause}
}

// SectionInfo describes one directory entry, for diagnostics and tests.
type SectionInfo struct {
	Name   string
	Offset int64 // absolute file offset of the payload
	Length int64
	CRC32  uint32
}

// CorpusFileName is the naming convention the whpcd warm-boot path looks
// up inside its -snapshot-dir: one file per (corpus, seed) study key,
// e.g. "default-2021.whpcsnap". Harvested (fault-profile) studies are
// never served from snapshots — a snapshot freezes data, not services.
func CorpusFileName(corpus string, seed uint64) string {
	return fmt.Sprintf("%s-%d%s", corpus, seed, FileExt)
}
