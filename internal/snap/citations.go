package snap

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/cite"
	"repro/internal/dataset"
	"repro/internal/query"
)

// The citations section freezes the synthesized citation graph
// (internal/cite) alongside the corpus, so a warm boot serves the
// citation-flow workload without resynthesizing the graph. The section is
// version-gated through the meta flags: a binary built before
// flagHasCitations existed rejects citation-bearing snapshots as corrupt
// (unknown flag bit) instead of silently dropping the graph, and the
// reader here cross-checks flag against section presence both ways.
// Delta snapshots never carry citations — the apply path regrows the
// graph through FrameSet.AppendConference and resynthesis.

// SectionCitations is the citation-graph section of a full snapshot.
const SectionCitations = "citations"

// encodeCitations serializes the edge list: paper count, edge count, then
// per edge the source (delta-encoded against the previous edge's source —
// sources are grouped non-decreasing by construction), target, and paired
// null draw.
func encodeCitations(g *cite.Graph) []byte {
	e := &enc{}
	e.uvarint(uint64(g.Papers))
	e.uvarint(uint64(len(g.Edges)))
	prev := int64(0)
	for _, edge := range g.Edges {
		e.uvarint(uint64(int64(edge.Src) - prev))
		prev = int64(edge.Src)
		e.uvarint(uint64(edge.Dst))
		e.uvarint(uint64(edge.Null))
	}
	return e.bytesOut()
}

// decodeCitations parses and validates the citation section against the
// meta section's paper count: every index in range, no self-citations,
// sources non-decreasing.
func decodeCitations(data []byte, papers int) (*cite.Graph, error) {
	dc := newDec(SectionCitations, data)
	gotPapers, err := dc.uvarint("citation paper count")
	if err != nil {
		return nil, err
	}
	if gotPapers != uint64(papers) {
		return nil, dc.err(fmt.Sprintf("citation paper count %d disagrees with meta %d", gotPapers, papers), ErrCorrupt)
	}
	n, err := dc.length("citation edges", 3)
	if err != nil {
		return nil, err
	}
	g := &cite.Graph{Papers: papers, Edges: make([]cite.Edge, 0, n)}
	prev := uint64(0)
	for i := 0; i < n; i++ {
		srcDelta, err := dc.uvarint("citation source")
		if err != nil {
			return nil, err
		}
		src := prev + srcDelta
		prev = src
		dst, err := dc.uvarint("citation target")
		if err != nil {
			return nil, err
		}
		null, err := dc.uvarint("citation null draw")
		if err != nil {
			return nil, err
		}
		if src >= uint64(papers) || dst >= uint64(papers) || null >= uint64(papers) {
			return nil, dc.err(fmt.Sprintf("citation edge %d indexes out of range [0,%d)", i, papers), ErrCorrupt)
		}
		if src == dst {
			return nil, dc.err(fmt.Sprintf("citation edge %d is a self-citation (paper %d)", i, src), ErrCorrupt)
		}
		g.Edges = append(g.Edges, cite.Edge{Src: int32(src), Dst: int32(dst), Null: int32(null)})
	}
	if err := dc.finished("citations"); err != nil {
		return nil, err
	}
	return g, nil
}

// AddCitations encodes the corpus's citation graph. Optional; at most
// once, after AddCorpus (the graph is validated against the corpus's
// paper count), and never on a delta snapshot.
func (sw *Writer) AddCitations(g *cite.Graph) error {
	if sw.closed {
		return fmt.Errorf("snap: AddCitations on closed Writer")
	}
	if sw.citations {
		return fmt.Errorf("snap: AddCitations called twice")
	}
	if sw.delta {
		return fmt.Errorf("snap: delta snapshots cannot carry citations")
	}
	if g == nil {
		return fmt.Errorf("snap: nil citation graph")
	}
	if !sw.corpus {
		return fmt.Errorf("snap: AddCitations before AddCorpus")
	}
	if g.Papers != sw.counts[2] {
		return fmt.Errorf("snap: citation graph covers %d papers, corpus has %d", g.Papers, sw.counts[2])
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("snap: %w", err)
	}
	sw.sections = append(sw.sections, wsection{SectionCitations, encodeCitations(g)})
	sw.citations = true
	return nil
}

// HasCitations reports whether the snapshot carries a citation graph.
func (r *Reader) HasCitations() bool { return r.meta.hasCitations }

// Citations decodes the citation-graph section. It returns a *FormatError
// wrapping ErrNoSection when the snapshot was written without one;
// callers that treat the graph as optional should check HasCitations
// first.
func (r *Reader) Citations() (*cite.Graph, error) {
	payload, ok := r.payloads[SectionCitations]
	if !ok {
		return nil, &FormatError{Section: SectionCitations, Msg: "snapshot was written without a citation graph", Err: ErrNoSection}
	}
	if err := r.chaosStep(SectionCitations); err != nil {
		return nil, err
	}
	return decodeCitations(payload, r.meta.papers)
}

// WriteCited emits a complete snapshot of d, its frames (when non-nil),
// and its citation graph (when non-nil) to w.
func WriteCited(w io.Writer, d *dataset.Dataset, fs *query.FrameSet, g *cite.Graph) error {
	sw := NewWriter(w)
	if err := sw.AddCorpus(d); err != nil {
		return err
	}
	if fs != nil {
		if err := sw.AddFrames(fs); err != nil {
			return err
		}
	}
	if g != nil {
		if err := sw.AddCitations(g); err != nil {
			return err
		}
	}
	return sw.Close()
}

// WriteCitedFile is WriteCited with WriteFile's atomic temp-and-rename
// discipline.
func WriteCitedFile(path string, d *dataset.Dataset, fs *query.FrameSet, g *cite.Graph) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		//whpcvet:ignore errcheck best-effort cleanup of the temp file on the error paths; the success path renamed it away
		os.Remove(tmp.Name())
	}()
	if err := WriteCited(tmp, d, fs, g); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// ReadCited decodes a complete snapshot from an io.Reader: the corpus,
// the frames (nil when absent), and the citation graph (nil when absent).
func ReadCited(rd io.Reader) (*dataset.Dataset, *query.FrameSet, *cite.Graph, error) {
	r, err := ReadFrom(rd)
	if err != nil {
		return nil, nil, nil, err
	}
	return decodeAll(r)
}

// OpenCited reads the snapshot at path and decodes its corpus, frames
// (nil when absent), and citation graph (nil when absent).
func OpenCited(path string) (*dataset.Dataset, *query.FrameSet, *cite.Graph, error) {
	return OpenCitedInjected(path, chaos.None)
}

// OpenCitedInjected is OpenCited with a chaos injector, with OpenInjected's
// fault surface (snap.read on arrival, snap.decode once per section).
func OpenCitedInjected(path string, inj chaos.Injector) (*dataset.Dataset, *query.FrameSet, *cite.Graph, error) {
	inj = chaos.Or(inj)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, nil, err
	}
	if f := inj.Fire(chaos.PointSnapRead); f != nil {
		switch f.Kind {
		case chaos.KindTorn:
			// The tail never arrived; validation must reject the torn
			// prefix like any truncated file.
			n := len(data) - f.TornBytes
			if n < 0 {
				n = 0
			}
			data = data[:n]
		default:
			return nil, nil, nil, fmt.Errorf("%s: %w", path, chaos.Injected(chaos.PointSnapRead, f))
		}
	}
	r, err := NewReaderInjected(data, inj)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	d, fs, g, err := decodeAll(r)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, fs, g, nil
}
