package snap

import (
	"fmt"

	"repro/internal/query"
)

// The frames codec serializes a pre-built query.FrameSet so warm boots
// skip the columnar flattening pass too. Each column is stored in its
// native representation — zigzag varints for ints, fixed 64-bit patterns
// for floats, bitmap words for booleans and validity, dictionary values
// in code order plus a code column for strings — so a deserialized
// FrameSet answers every query byte-identically to a freshly built one.

func encodeFrames(fs *query.FrameSet) []byte {
	e := &enc{}
	names := fs.Names()
	e.uvarint(uint64(len(names)))
	for _, name := range names {
		f, _ := fs.Frame(name)
		e.str(f.Name)
		cols := f.Columns()
		e.uvarint(uint64(f.NumRows))
		e.uvarint(uint64(len(cols)))
		for _, c := range cols {
			e.str(c.Name)
			e.u8(uint8(c.Type))
			if c.Valid == nil {
				e.bool(false)
			} else {
				e.bool(true)
				e.words(canonicalBitmap(c.Valid, f.NumRows))
			}
			switch c.Type {
			case query.TInt:
				e.intCol(c.Ints)
			case query.TFloat:
				e.floatCol(c.Floats)
			case query.TBool:
				e.words(canonicalBitmap(c.Bools, f.NumRows))
			case query.TStr:
				e.strDict(c.Dict.Values())
				e.codeCol(c.Codes)
			}
		}
	}
	return e.bytesOut()
}

// canonicalBitmap returns b with any bits at or beyond row n cleared. The
// frame builder seeds validity bitmaps with all-ones words, leaving tail
// bits set past the row count; the engine never reads rows >= n, so the
// serialized form clears them to give every logical bitmap exactly one
// byte representation (which the decoder then enforces).
func canonicalBitmap(b []uint64, n int) []uint64 {
	want := bitmapWords(n)
	out := make([]uint64, want)
	copy(out, b)
	if n%64 != 0 && want > 0 {
		out[want-1] &= (1 << uint(n%64)) - 1
	}
	return out
}

func decodeFrames(data []byte) (*query.FrameSet, error) {
	dc := newDec(SectionFrames, data)
	nFrames, err := dc.length("frame", 1)
	if err != nil {
		return nil, err
	}
	frames := make([]*query.Frame, 0, nFrames)
	for fi := 0; fi < nFrames; fi++ {
		name, err := dc.str("frame name")
		if err != nil {
			return nil, err
		}
		rows64, err := dc.uvarint(fmt.Sprintf("frame %q row count", name))
		if err != nil {
			return nil, err
		}
		if rows64 > uint64(len(data))*64 {
			// Even a single one-bit-per-row column would need more bytes
			// than the whole payload holds.
			return nil, dc.err(fmt.Sprintf("frame %q declares %d rows, more than the payload could hold", name, rows64), ErrCorrupt)
		}
		n := int(rows64)
		nCols, err := dc.length(fmt.Sprintf("frame %q column", name), 1)
		if err != nil {
			return nil, err
		}
		cols := make([]*query.Column, 0, nCols)
		for ci := 0; ci < nCols; ci++ {
			c, err := decodeColumn(dc, name, n)
			if err != nil {
				return nil, err
			}
			cols = append(cols, c)
		}
		frames = append(frames, query.AssembleFrame(name, n, cols))
	}
	if err := dc.finished("frames"); err != nil {
		return nil, err
	}
	return query.AssembleFrameSet(frames), nil
}

func decodeColumn(dc *dec, frame string, n int) (*query.Column, error) {
	colName, err := dc.str(fmt.Sprintf("frame %q column name", frame))
	if err != nil {
		return nil, err
	}
	what := fmt.Sprintf("frame %q column %q", frame, colName)
	typ, err := dc.u8(what + " type")
	if err != nil {
		return nil, err
	}
	c := &query.Column{Name: colName, Type: query.ColType(typ)}
	hasValid, err := dc.bool(what + " validity flag")
	if err != nil {
		return nil, err
	}
	if hasValid {
		w, err := dc.words(what + " validity bitmap")
		if err != nil {
			return nil, err
		}
		if err := checkBitmap(dc, what+" validity", w, n); err != nil {
			return nil, err
		}
		c.Valid = query.Bitmap(w)
	}
	switch c.Type {
	case query.TInt:
		if c.Ints, err = dc.intCol(what); err != nil {
			return nil, err
		}
		if len(c.Ints) != n {
			return nil, dc.err(fmt.Sprintf("%s has %d rows, want %d", what, len(c.Ints), n), ErrCorrupt)
		}
	case query.TFloat:
		if c.Floats, err = dc.floatCol(what); err != nil {
			return nil, err
		}
		if len(c.Floats) != n {
			return nil, dc.err(fmt.Sprintf("%s has %d rows, want %d", what, len(c.Floats), n), ErrCorrupt)
		}
	case query.TBool:
		w, err := dc.words(what + " bitmap")
		if err != nil {
			return nil, err
		}
		if err := checkBitmap(dc, what, w, n); err != nil {
			return nil, err
		}
		c.Bools = query.Bitmap(w)
	case query.TStr:
		vals, err := dc.strDict(what + " dictionary")
		if err != nil {
			return nil, err
		}
		dict := query.NewDict(vals...)
		if dict.Len() != len(vals) {
			return nil, dc.err(what+": dictionary repeats a value", ErrCorrupt)
		}
		c.Dict = dict
		if c.Codes, err = dc.codeCol(what+" codes", len(vals)); err != nil {
			return nil, err
		}
		if len(c.Codes) != n {
			return nil, dc.err(fmt.Sprintf("%s has %d rows, want %d", what, len(c.Codes), n), ErrCorrupt)
		}
	default:
		return nil, dc.err(fmt.Sprintf("%s has unknown column type %d", what, typ), ErrCorrupt)
	}
	return c, nil
}
