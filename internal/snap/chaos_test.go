package snap

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/query"
)

// chaosTestSnapshot writes a small valid snapshot (with frames) to a temp
// file and returns its path.
func chaosTestSnapshot(t *testing.T) string {
	t.Helper()
	d := tinyDataset()
	path := filepath.Join(t.TempDir(), "chaos"+FileExt)
	if err := WriteFile(path, d, query.NewFrameSet(d)); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenInjectedTornRead: a torn read (truncated buffer) must be
// rejected as a truncation/checksum failure — typed, never a panic, never
// a silently short corpus.
func TestOpenInjectedTornRead(t *testing.T) {
	path := chaosTestSnapshot(t)
	sched := &chaos.Schedule{Triggers: []chaos.Trigger{
		{Point: chaos.PointSnapRead, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindTorn, TornBytes: 97}},
	}}
	_, _, err := OpenInjected(path, chaos.NewScheduled(sched))
	if err == nil {
		t.Fatal("torn read produced a corpus")
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("torn read error = %v, want *FormatError", err)
	}
	if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) {
		t.Fatalf("torn read error = %v, want checksum or truncation", err)
	}
}

// TestOpenInjectedReadError: an error-kind fault at snap.read fails the
// open with a path-carrying injected error.
func TestOpenInjectedReadError(t *testing.T) {
	path := chaosTestSnapshot(t)
	sched := &chaos.Schedule{Triggers: []chaos.Trigger{
		{Point: chaos.PointSnapRead, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindError}},
	}}
	_, _, err := OpenInjected(path, chaos.NewScheduled(sched))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !errors.Is(err, chaos.ErrInjected) || !containsPath(err, path) {
		t.Fatalf("err %q must carry the file path", err)
	}
}

func containsPath(err error, path string) bool {
	return strings.Contains(err.Error(), path)
}

// TestOpenInjectedDecodeFault: a decode-point fault surfaces as a
// *FormatError naming the section it hit and wrapping chaos.ErrInjected,
// with the file path wrapped around it.
func TestOpenInjectedDecodeFault(t *testing.T) {
	path := chaosTestSnapshot(t)
	// Hit 2 of snap.decode is the conferences section (persons is hit 1).
	sched := &chaos.Schedule{Triggers: []chaos.Trigger{
		{Point: chaos.PointSnapDecode, Hit: 2, Fault: chaos.Fault{Kind: chaos.KindError}},
	}}
	_, _, err := OpenInjected(path, chaos.NewScheduled(sched))
	if !errors.Is(err, chaos.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("err = %v, want *FormatError", err)
	}
	if fe.Section != SectionConferences {
		t.Fatalf("fault hit section %q, want %q", fe.Section, SectionConferences)
	}
	if !containsPath(err, path) {
		t.Fatalf("err %q must carry the file path", err)
	}
}

// TestOpenInjectedCleanPassthrough: an injector with nothing armed loads
// the identical corpus the plain path does.
func TestOpenInjectedCleanPassthrough(t *testing.T) {
	path := chaosTestSnapshot(t)
	inj := chaos.NewScheduled(&chaos.Schedule{})
	d1, fs1, err := OpenInjected(path, inj)
	if err != nil {
		t.Fatal(err)
	}
	d2, fs2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(d1.ConfIDs()) != len(d2.ConfIDs()) || len(fs1.Names()) != len(fs2.Names()) {
		t.Fatal("clean injected open decoded a different corpus")
	}
	// The decode points were hit even though nothing was armed: persons,
	// conferences, papers, frames.
	if got := inj.Hits(chaos.PointSnapDecode); got != 4 {
		t.Fatalf("snap.decode hits = %d, want 4", got)
	}
	if got := inj.Hits(chaos.PointSnapRead); got != 1 {
		t.Fatalf("snap.read hits = %d, want 1", got)
	}
}

// TestOpenMissingFileIsNotExist: the open path preserves fs.ErrNotExist
// so callers (the whpcd quarantine logic) can split "missing" from
// "corrupt".
func TestOpenMissingFileIsNotExist(t *testing.T) {
	_, _, err := Open(filepath.Join(t.TempDir(), "nope"+FileExt))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want ErrNotExist", err)
	}
}
