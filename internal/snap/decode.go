package snap

import (
	"encoding/binary"
	"math"
)

// dec is a bounds-checked reader over one section payload. Every method
// returns a *FormatError carrying the section name and the offset the
// failure was detected at; nothing in this file panics on any input, and
// declared lengths are validated against the remaining bytes before
// allocation so hostile inputs cannot force huge allocations.
type dec struct {
	section string
	data    []byte
	off     int
}

func newDec(section string, data []byte) *dec {
	return &dec{section: section, data: data}
}

// err builds a FormatError at the current offset.
func (d *dec) err(msg string, cause error) *FormatError {
	return &FormatError{Section: d.section, Offset: int64(d.off), Msg: msg, Err: cause}
}

// remaining returns the unread byte count.
func (d *dec) remaining() int { return len(d.data) - d.off }

// finished reports whether the payload was fully consumed; codecs call it
// last so trailing garbage inside a section is rejected, not ignored.
func (d *dec) finished(what string) error {
	if d.remaining() != 0 {
		return d.err(what+": trailing bytes after payload", ErrCorrupt)
	}
	return nil
}

func (d *dec) uvarint(what string) (uint64, error) {
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		return 0, d.err(what, ErrTruncated)
	}
	d.off += n
	return v, nil
}

func (d *dec) varint(what string) (int64, error) {
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		return 0, d.err(what, ErrTruncated)
	}
	d.off += n
	return v, nil
}

func (d *dec) u8(what string) (uint8, error) {
	if d.remaining() < 1 {
		return 0, d.err(what, ErrTruncated)
	}
	v := d.data[d.off]
	d.off++
	return v, nil
}

func (d *dec) bool(what string) (bool, error) {
	v, err := d.u8(what)
	if err != nil {
		return false, err
	}
	if v > 1 {
		return false, d.err(what+": boolean byte not 0 or 1", ErrCorrupt)
	}
	return v == 1, nil
}

func (d *dec) f64(what string) (float64, error) {
	if d.remaining() < 8 {
		return 0, d.err(what, ErrTruncated)
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return math.Float64frombits(v), nil
}

func (d *dec) str(what string) (string, error) {
	// Inlined uvarint so the hot path allocates no error-label strings.
	n, adv := binary.Uvarint(d.data[d.off:])
	if adv <= 0 {
		return "", d.err(what+": truncated length", ErrTruncated)
	}
	d.off += adv
	if n > uint64(d.remaining()) {
		return "", d.err(what+": declared length exceeds remaining bytes", ErrTruncated)
	}
	s := string(d.data[d.off : d.off+int(n)])
	d.off += int(n)
	return s, nil
}

// length reads a declared element count, rejecting counts that cannot fit
// in the remaining bytes at minBytes per element.
func (d *dec) length(what string, minBytes int) (int, error) {
	n, err := d.uvarint(what + " count")
	if err != nil {
		return 0, err
	}
	if minBytes > 0 && n > uint64(d.remaining())/uint64(minBytes) {
		return 0, d.err(what+": declared count exceeds remaining bytes", ErrTruncated)
	}
	return int(n), nil
}

//whpcvet:hot
func (d *dec) words(what string) ([]uint64, error) {
	n, err := d.length(what, 8)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]uint64, n)
	for i := range out {
		if d.remaining() < 8 {
			//whpcvet:ignore hotalloc error construction aborts the decode; it allocates once per corrupt file, not per iteration
			return nil, d.err(what, ErrTruncated)
		}
		out[i] = binary.LittleEndian.Uint64(d.data[d.off:])
		d.off += 8
	}
	return out, nil
}

func (d *dec) strDict(what string) ([]string, error) {
	n, err := d.length(what, 1)
	if err != nil {
		return nil, err
	}
	return d.strings(what, n)
}

// strings reads n length-prefixed strings. All values share one backing
// allocation (a single copy of the column's byte region) instead of one
// allocation each, which dominates warm-boot decode time for the large
// id/name/title columns.
//
//whpcvet:hot
func (d *dec) strings(what string, n int) ([]string, error) {
	type span struct{ off, len int }
	spans := make([]span, n)
	start := d.off
	for i := range spans {
		ln, adv := binary.Uvarint(d.data[d.off:])
		if adv <= 0 {
			//whpcvet:ignore hotalloc error construction aborts the decode; it allocates once per corrupt file, not per iteration
			return nil, d.err(what+": truncated value length", ErrTruncated)
		}
		d.off += adv
		if ln > uint64(d.remaining()) {
			//whpcvet:ignore hotalloc error construction aborts the decode; it allocates once per corrupt file, not per iteration
			return nil, d.err(what+": declared value length exceeds remaining bytes", ErrTruncated)
		}
		spans[i] = span{d.off, int(ln)}
		d.off += int(ln)
	}
	blob := string(d.data[start:d.off])
	out := make([]string, n)
	for i, sp := range spans {
		rel := sp.off - start
		out[i] = blob[rel : rel+sp.len]
	}
	return out, nil
}

//whpcvet:hot
func (d *dec) intCol(what string) ([]int64, error) {
	n, err := d.length(what, 1)
	if err != nil {
		return nil, err
	}
	out := make([]int64, n)
	for i := range out {
		if out[i], err = d.varint(what); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// codeCol reads a dictionary-code column, validating every code against
// the dictionary cardinality so a decoded column can never index out of
// range.
//
//whpcvet:hot
func (d *dec) codeCol(what string, dictLen int) ([]int32, error) {
	n, err := d.length(what, 1)
	if err != nil {
		return nil, err
	}
	out := make([]int32, n)
	for i := range out {
		v, err := d.uvarint(what)
		if err != nil {
			return nil, err
		}
		if v >= uint64(dictLen) {
			//whpcvet:ignore hotalloc error construction aborts the decode; it allocates once per corrupt file, not per iteration
			return nil, d.err(what+": dictionary code out of range", ErrCorrupt)
		}
		out[i] = int32(v)
	}
	return out, nil
}

//whpcvet:hot
func (d *dec) floatCol(what string) ([]float64, error) {
	n, err := d.length(what, 8)
	if err != nil {
		return nil, err
	}
	out := make([]float64, n)
	for i := range out {
		if out[i], err = d.f64(what); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (d *dec) strCol(what string) ([]string, error) {
	n, err := d.length(what, 1)
	if err != nil {
		return nil, err
	}
	return d.strings(what, n)
}
