package snap

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/affil"
	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/query"
	"repro/internal/scholar"
)

// tinyDeltaMini builds the smallest self-contained mini-corpus a delta
// can carry: one appended edition, its paper, and every participant's full
// record (p1 reuses tinyDataset's record byte-for-byte; p5 is new).
func tinyDeltaMini() (DeltaInfo, *dataset.Dataset) {
	d := dataset.New()
	persons := []*dataset.Person{
		{
			ID: "p1", Name: "Ada One", Forename: "Ada",
			TrueGender: gender.Female, Gender: gender.Female, AssignMethod: gender.MethodManual,
			Email: "ada@uni.edu", Affiliation: "Uni", CountryCode: "US", Sector: affil.EDU,
			HasGSProfile: true, GS: scholar.Profile{Publications: 12, HIndex: 5, I10Index: 3, Citations: 220},
			HasS2: true, S2Pubs: 14,
		},
		{
			ID: "p5", Name: "Eve Five", Forename: "Eve",
			TrueGender: gender.Female, Gender: gender.Female, AssignMethod: gender.MethodAutomated,
			Email: "eve@lab.org", Affiliation: "Lab", CountryCode: "FR", Sector: affil.GOV,
			HasS2: true, S2Pubs: 6,
		},
	}
	for _, p := range persons {
		if err := d.AddPerson(p); err != nil {
			panic(err)
		}
	}
	c := &dataset.Conference{
		ID: "SC18", Name: "SC", Year: 2018,
		Date:        time.Date(2018, 11, 12, 0, 0, 0, 0, time.UTC),
		CountryCode: "US", Submitted: 288, AcceptanceRate: 0.19, Subfield: "HPC",
		DoubleBlind: true, WomenAttendance: 0.15,
		PCChairs:      []dataset.PersonID{"p1"},
		PCMembers:     []dataset.PersonID{"p5"},
		Keynotes:      []dataset.PersonID{"p1"},
		Panelists:     []dataset.PersonID{"p5"},
		SessionChairs: []dataset.PersonID{"p1"},
	}
	if err := d.AddConference(c); err != nil {
		panic(err)
	}
	if err := d.AddPaper(&dataset.Paper{
		ID: "sc18-1", Conf: "SC18", Title: "Newer Things",
		Authors: []dataset.PersonID{"p5", "p1"}, HPCTopic: true, Citations36: 11,
	}); err != nil {
		panic(err)
	}
	if err := d.Validate(); err != nil {
		panic(err)
	}
	return DeltaInfo{Year: 2018, ConfID: "SC18", BaseFingerprint: 0xfeedface}, d
}

// tinyDeltaSnapshot serializes the tiny delta.
func tinyDeltaSnapshot(t testing.TB) []byte {
	t.Helper()
	info, mini := tinyDeltaMini()
	var buf bytes.Buffer
	if err := WriteDelta(&buf, info, mini); err != nil {
		t.Fatalf("WriteDelta: %v", err)
	}
	return buf.Bytes()
}

func TestDeltaRoundTrip(t *testing.T) {
	info, mini := tinyDeltaMini()
	path := filepath.Join(t.TempDir(), DeltaFileName("tiny", 7, 2018))
	if err := WriteDeltaFile(path, info, mini); err != nil {
		t.Fatalf("WriteDeltaFile: %v", err)
	}
	got, d, err := OpenDelta(path)
	if err != nil {
		t.Fatalf("OpenDelta: %v", err)
	}
	if got != info {
		t.Errorf("Delta info = %+v, want %+v", got, info)
	}
	if len(d.Conferences) != 1 || d.Conferences[0].ID != "SC18" {
		t.Errorf("mini-corpus carries %d conferences, want exactly SC18", len(d.Conferences))
	}
	if len(d.Persons) != 2 || len(d.Papers) != 1 {
		t.Errorf("mini-corpus has %d persons, %d papers, want 2 and 1", len(d.Persons), len(d.Papers))
	}
}

// TestDeltaWriteDeterministic: two writes of the same delta are
// byte-identical, like full snapshots.
func TestDeltaWriteDeterministic(t *testing.T) {
	if !bytes.Equal(tinyDeltaSnapshot(t), tinyDeltaSnapshot(t)) {
		t.Error("two writes of the same delta produced different bytes")
	}
}

// TestDeltaEveryByteFlipRejected extends the no-blind-spot checksum proof
// to delta files: corrupting any single byte — the delta-identity section
// included — must fail validation or the delta decode, never load silently
// wrong longitudinal data.
func TestDeltaEveryByteFlipRejected(t *testing.T) {
	data := tinyDeltaSnapshot(t)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		r, err := NewReader(mut)
		if err != nil {
			continue
		}
		// The meta flag byte participates in the directory checksum, so
		// even a flip that leaves a structurally valid reader must not
		// yield a readable delta.
		if _, derr := r.Delta(); derr == nil {
			t.Fatalf("reader accepted a delta with byte %d flipped", i)
		}
	}
}

// TestDeltaTruncationsRejected: every proper prefix of a delta file is
// rejected — the torn-write case the serve quarantine path depends on.
func TestDeltaTruncationsRejected(t *testing.T) {
	data := tinyDeltaSnapshot(t)
	for n := 0; n < len(data); n++ {
		if _, err := NewReader(data[:n]); err == nil {
			t.Fatalf("NewReader accepted a %d-byte prefix of a %d-byte delta", n, len(data))
		}
	}
}

// TestDeltaKindsMutuallyRejected: the full-snapshot open path refuses
// delta files and OpenDelta refuses full snapshots — the flag bit keeps
// the two kinds unreadable as each other.
func TestDeltaKindsMutuallyRejected(t *testing.T) {
	dir := t.TempDir()
	info, mini := tinyDeltaMini()
	deltaPath := filepath.Join(dir, "tiny.delta.whpcsnap")
	if err := WriteDeltaFile(deltaPath, info, mini); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(deltaPath); err == nil {
		t.Error("full-snapshot Open accepted a delta file")
	}
	fullPath := filepath.Join(dir, "tiny.whpcsnap")
	if err := WriteFile(fullPath, tinyDataset(), nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenDelta(fullPath); !errors.Is(err, ErrNoSection) {
		t.Errorf("OpenDelta of a full snapshot: err = %v, want ErrNoSection", err)
	}
}

// TestDeltaWriterRejectsFrames: a delta snapshot must not carry frames in
// either add order — the point of a delta is that the base study's frames
// are patched in place, not replaced.
func TestDeltaWriterRejectsFrames(t *testing.T) {
	info, mini := tinyDeltaMini()
	fs := query.NewFrameSet(mini)

	sw := NewWriter(&bytes.Buffer{})
	if err := sw.AddDelta(info); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddFrames(fs); err == nil {
		t.Error("AddFrames after AddDelta succeeded")
	}

	sw = NewWriter(&bytes.Buffer{})
	if err := sw.AddFrames(fs); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddDelta(info); err == nil {
		t.Error("AddDelta after AddFrames succeeded")
	}
}
