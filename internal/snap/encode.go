package snap

import (
	"encoding/binary"
	"math"
)

// enc accumulates one section payload. All multi-byte fixed-width values
// are little-endian; integers are varint-encoded (zigzag for signed), so
// the payload is byte-deterministic for a given logical content.
type enc struct {
	buf []byte
}

// bytesOut returns the accumulated payload.
func (e *enc) bytesOut() []byte { return e.buf }

// uvarint appends an unsigned varint.
func (e *enc) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// varint appends a zigzag-encoded signed varint.
func (e *enc) varint(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

// u8 appends one raw byte.
func (e *enc) u8(v uint8) { e.buf = append(e.buf, v) }

// bool appends a boolean as one byte (standalone flags; dense boolean
// columns use bitmaps instead).
func (e *enc) bool(v bool) {
	if v {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

// f64 appends a float64 as its fixed 8-byte IEEE-754 bit pattern. Fixed
// width keeps the representation exact and the layout self-describing.
func (e *enc) f64(v float64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(v))
}

// str appends a length-prefixed string.
func (e *enc) str(s string) {
	e.uvarint(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// words appends a bitmap (or any uint64 vector) as a length-prefixed run
// of fixed 8-byte words.
func (e *enc) words(w []uint64) {
	e.uvarint(uint64(len(w)))
	for _, v := range w {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
	}
}

// strDict appends a string dictionary: cardinality then each value in
// code order, so codes survive the round trip exactly.
func (e *enc) strDict(vals []string) {
	e.uvarint(uint64(len(vals)))
	for _, v := range vals {
		e.str(v)
	}
}

// intCol appends a signed integer column: length then zigzag varints.
func (e *enc) intCol(vals []int64) {
	e.uvarint(uint64(len(vals)))
	for _, v := range vals {
		e.varint(v)
	}
}

// codeCol appends a dictionary-code column: length then uvarints.
func (e *enc) codeCol(codes []int32) {
	e.uvarint(uint64(len(codes)))
	for _, c := range codes {
		e.uvarint(uint64(uint32(c)))
	}
}

// floatCol appends a float column: length then fixed 8-byte values.
func (e *enc) floatCol(vals []float64) {
	e.uvarint(uint64(len(vals)))
	for _, v := range vals {
		e.f64(v)
	}
}

// strCol appends a raw (non-dictionary) string column: length then each
// string. Used for high-cardinality columns (IDs, names, titles) where a
// dictionary would only add indirection.
func (e *enc) strCol(vals []string) {
	e.uvarint(uint64(len(vals)))
	for _, v := range vals {
		e.str(v)
	}
}
