package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"repro/internal/dataset"
	"repro/internal/query"
)

// Writer assembles a snapshot and streams it to an io.Writer in one pass:
// sections are encoded in memory as they are added (the directory at the
// head of the file needs their offsets and checksums), then Close emits
// header, directory, payloads and the trailing whole-file checksum.
//
// Usage:
//
//	sw := snap.NewWriter(f)
//	sw.AddCorpus(study.Dataset())
//	sw.AddFrames(study.Frames()) // optional
//	err := sw.Close()
type Writer struct {
	dst       io.Writer
	sections  []wsection
	counts    [3]int // persons, conferences, papers (for the meta section)
	corpus    bool
	frames    bool
	delta     bool
	citations bool
	closed    bool
}

type wsection struct {
	name    string
	payload []byte
}

// NewWriter returns a Writer that will emit the snapshot to dst on Close.
func NewWriter(dst io.Writer) *Writer { return &Writer{dst: dst} }

// AddCorpus encodes the three entity tables. It must be called exactly
// once per snapshot. Encoding is deterministic: person rows are sorted by
// ID, everything else follows the dataset's slice order.
func (sw *Writer) AddCorpus(d *dataset.Dataset) error {
	if sw.closed {
		return fmt.Errorf("snap: AddCorpus on closed Writer")
	}
	if sw.corpus {
		return fmt.Errorf("snap: AddCorpus called twice")
	}
	if d == nil {
		return fmt.Errorf("snap: nil dataset")
	}
	ids := sortedPersonIDs(d)
	personIdx := make(map[string]int, len(ids))
	for i, id := range ids {
		personIdx[id] = i
	}
	sw.counts = [3]int{len(d.Persons), len(d.Conferences), len(d.Papers)}
	sw.sections = append(sw.sections,
		wsection{SectionPersons, encodePersons(d, ids)},
		wsection{SectionConferences, encodeConferences(d, personIdx)},
		wsection{SectionPapers, encodePapers(d, personIdx)},
	)
	sw.corpus = true
	return nil
}

// AddFrames encodes a pre-built columnar FrameSet so a warm boot can skip
// the flattening pass. Optional; at most once.
func (sw *Writer) AddFrames(fs *query.FrameSet) error {
	if sw.closed {
		return fmt.Errorf("snap: AddFrames on closed Writer")
	}
	if sw.frames {
		return fmt.Errorf("snap: AddFrames called twice")
	}
	if sw.delta {
		return fmt.Errorf("snap: delta snapshots cannot carry frames")
	}
	if fs == nil {
		return fmt.Errorf("snap: nil frame set")
	}
	sw.sections = append(sw.sections, wsection{SectionFrames, encodeFrames(fs)})
	sw.frames = true
	return nil
}

// Close writes the assembled snapshot: header, section directory,
// payloads, and the whole-file CRC-32 trailer. The Writer is unusable
// afterwards.
func (sw *Writer) Close() error {
	if sw.closed {
		return fmt.Errorf("snap: Close called twice")
	}
	sw.closed = true
	if !sw.corpus {
		return fmt.Errorf("snap: Close without AddCorpus")
	}

	meta := &enc{}
	var flags uint64
	if sw.frames {
		flags |= flagHasFrames
	}
	if sw.delta {
		flags |= flagIsDelta
	}
	if sw.citations {
		flags |= flagHasCitations
	}
	meta.uvarint(flags)
	meta.uvarint(uint64(sw.counts[0]))
	meta.uvarint(uint64(sw.counts[1]))
	meta.uvarint(uint64(sw.counts[2]))
	sections := append([]wsection{{SectionMeta, meta.bytesOut()}}, sw.sections...)

	// Directory size depends only on the (fixed-size) entries.
	dirSize := 0
	for _, s := range sections {
		dirSize += 1 + len(s.name) + 8 + 8 + 4
	}
	offset := int64(headerSize + dirSize)

	var head []byte
	head = append(head, Magic...)
	head = binary.LittleEndian.AppendUint16(head, FormatVersion)
	head = binary.LittleEndian.AppendUint16(head, 0) // reserved
	head = binary.LittleEndian.AppendUint32(head, uint32(len(sections)))
	for _, s := range sections {
		head = append(head, byte(len(s.name)))
		head = append(head, s.name...)
		head = binary.LittleEndian.AppendUint64(head, uint64(offset))
		head = binary.LittleEndian.AppendUint64(head, uint64(len(s.payload)))
		head = binary.LittleEndian.AppendUint32(head, crc32.ChecksumIEEE(s.payload))
		offset += int64(len(s.payload))
	}

	sum := crc32.NewIEEE()
	out := io.MultiWriter(sw.dst, sum)
	if _, err := out.Write(head); err != nil {
		return fmt.Errorf("snap: writing header: %w", err)
	}
	for _, s := range sections {
		if _, err := out.Write(s.payload); err != nil {
			return fmt.Errorf("snap: writing section %q: %w", s.name, err)
		}
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], sum.Sum32())
	if _, err := sw.dst.Write(trailer[:]); err != nil {
		return fmt.Errorf("snap: writing checksum trailer: %w", err)
	}
	return nil
}

// Write emits a complete snapshot of d (and fs, when non-nil) to w.
func Write(w io.Writer, d *dataset.Dataset, fs *query.FrameSet) error {
	sw := NewWriter(w)
	if err := sw.AddCorpus(d); err != nil {
		return err
	}
	if fs != nil {
		if err := sw.AddFrames(fs); err != nil {
			return err
		}
	}
	return sw.Close()
}

// WriteFile writes a snapshot to path atomically: the bytes land in a
// temporary sibling first and are renamed into place only after a clean
// Close, so a crash mid-write never leaves a truncated snapshot behind
// for a warm-boot path to trip over.
func WriteFile(path string, d *dataset.Dataset, fs *query.FrameSet) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		//whpcvet:ignore errcheck best-effort cleanup of the temp file on the error paths; the success path renamed it away
		os.Remove(tmp.Name())
	}()
	if err := Write(tmp, d, fs); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

const (
	headerSize       = 16 // magic(8) + version(2) + reserved(2) + section count(4)
	flagHasFrames    = 1 << 0
	flagIsDelta      = 1 << 1 // delta snapshot: one conference-year, no frames
	flagHasCitations = 1 << 2 // carries a citation-graph section
)
