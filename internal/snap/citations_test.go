package snap

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cite"
	"repro/internal/query"
)

// citedSnapshot serializes tinyDataset with frames and its synthesized
// citation graph, returning the bytes and the graph.
func citedSnapshot(t testing.TB) ([]byte, *cite.Graph) {
	t.Helper()
	d := tinyDataset()
	g := cite.Synthesize(d)
	var buf bytes.Buffer
	if err := WriteCited(&buf, d, query.NewFrameSet(d), g); err != nil {
		t.Fatalf("WriteCited: %v", err)
	}
	return buf.Bytes(), g
}

func TestCitationsRoundTrip(t *testing.T) {
	data, want := citedSnapshot(t)
	if len(want.Edges) == 0 {
		t.Fatal("tiny corpus synthesized no edges; round trip proves nothing")
	}
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasCitations() {
		t.Fatal("HasCitations = false on a cited snapshot")
	}
	got, err := r.Citations()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("decoded graph differs: got %d edges over %d papers, want %d over %d",
			len(got.Edges), got.Papers, len(want.Edges), want.Papers)
	}

	d2, fs2, g2, err := ReadCited(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if d2 == nil || fs2 == nil {
		t.Fatal("ReadCited dropped the corpus or frames")
	}
	if !reflect.DeepEqual(g2, want) {
		t.Fatal("ReadCited graph differs from the written one")
	}
}

func TestCitedWriteDeterministic(t *testing.T) {
	a, _ := citedSnapshot(t)
	b, _ := citedSnapshot(t)
	if !bytes.Equal(a, b) {
		t.Error("two cited writes of the same corpus produced different bytes")
	}
}

func TestCitedEveryByteFlipRejected(t *testing.T) {
	data, _ := citedSnapshot(t)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := NewReader(mut); err == nil {
			t.Fatalf("NewReader accepted a cited snapshot with byte %d flipped", i)
		}
	}
}

func TestCitedTruncationsRejected(t *testing.T) {
	data, _ := citedSnapshot(t)
	for n := 0; n < len(data); n++ {
		if _, err := NewReader(data[:n]); err == nil {
			t.Fatalf("NewReader accepted a %d-byte prefix of a %d-byte cited snapshot", n, len(data))
		}
	}
}

func TestCitationsAbsent(t *testing.T) {
	r, err := NewReader(tinySnapshot(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if r.HasCitations() {
		t.Error("HasCitations = true on a plain snapshot")
	}
	if _, err := r.Citations(); !errors.Is(err, ErrNoSection) {
		t.Errorf("Citations err = %v, want ErrNoSection", err)
	}
	// The cited read paths must tolerate citation-free snapshots: nil
	// graph, no error.
	d, _, g, err := ReadCited(bytes.NewReader(tinySnapshot(t, true)))
	if err != nil {
		t.Fatal(err)
	}
	if d == nil || g != nil {
		t.Errorf("ReadCited of a plain snapshot: corpus %v, graph %v; want corpus, nil graph", d != nil, g)
	}
}

// TestCitationsSectionWithoutFlagRejected covers the version gate's
// presence side: a citations section whose meta flag is missing must fail
// validation, not decode silently.
func TestCitationsSectionWithoutFlagRejected(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	sw := NewWriter(&buf)
	if err := sw.AddCorpus(d); err != nil {
		t.Fatal(err)
	}
	// Smuggle the section past Close without setting sw.citations, so the
	// meta flag bit stays clear.
	sw.sections = append(sw.sections, wsection{SectionCitations, encodeCitations(cite.Synthesize(d))})
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := NewReader(buf.Bytes())
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt for citations section without flag", err)
	}
}

func TestCitationsWriterMisuse(t *testing.T) {
	d := tinyDataset()
	g := cite.Synthesize(d)

	sw := NewWriter(&bytes.Buffer{})
	if err := sw.AddCitations(g); err == nil {
		t.Error("AddCitations before AddCorpus succeeded")
	}
	if err := sw.AddCorpus(d); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddCitations(nil); err == nil {
		t.Error("AddCitations(nil) succeeded")
	}
	if err := sw.AddCitations(&cite.Graph{Papers: len(d.Papers) + 1}); err == nil {
		t.Error("AddCitations with wrong paper count succeeded")
	}
	bad := &cite.Graph{Papers: len(d.Papers), Edges: []cite.Edge{{Src: 0, Dst: 0}}}
	if err := sw.AddCitations(bad); err == nil {
		t.Error("AddCitations with an invalid graph succeeded")
	}
	if err := sw.AddCitations(g); err != nil {
		t.Fatalf("first valid AddCitations failed: %v", err)
	}
	if err := sw.AddCitations(g); err == nil {
		t.Error("second AddCitations succeeded")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddCitations(g); err == nil {
		t.Error("AddCitations on closed Writer succeeded")
	}

	// Delta snapshots and citations are mutually exclusive, both ways.
	info, mini := tinyDeltaMini()
	dw := NewWriter(&bytes.Buffer{})
	if err := dw.AddDelta(info); err != nil {
		t.Fatal(err)
	}
	if err := dw.AddCorpus(mini); err != nil {
		t.Fatal(err)
	}
	if err := dw.AddCitations(cite.Synthesize(mini)); err == nil {
		t.Error("AddCitations on a delta snapshot succeeded")
	}
	cw := NewWriter(&bytes.Buffer{})
	if err := cw.AddCorpus(d); err != nil {
		t.Fatal(err)
	}
	if err := cw.AddCitations(g); err != nil {
		t.Fatal(err)
	}
	if err := cw.AddDelta(info); err == nil {
		t.Error("AddDelta after AddCitations succeeded")
	}
}

// TestDecodeCitationsRejectsCorruptPayloads drives the payload validator
// directly with structurally impossible inputs that a checksum cannot
// catch (the bytes are internally consistent, just wrong).
func TestDecodeCitationsRejectsCorruptPayloads(t *testing.T) {
	const papers = 3
	encode := func(gotPapers int, edges [][3]uint64) []byte {
		e := &enc{}
		e.uvarint(uint64(gotPapers))
		e.uvarint(uint64(len(edges)))
		for _, ed := range edges {
			e.uvarint(ed[0])
			e.uvarint(ed[1])
			e.uvarint(ed[2])
		}
		return e.bytesOut()
	}
	cases := map[string][]byte{
		"paper count mismatch": encode(papers+1, nil),
		"dst out of range":     encode(papers, [][3]uint64{{0, uint64(papers), 1}}),
		"null out of range":    encode(papers, [][3]uint64{{0, 1, uint64(papers)}}),
		"src out of range":     encode(papers, [][3]uint64{{uint64(papers), 1, 1}}),
		"self citation":        encode(papers, [][3]uint64{{0, 0, 1}}),
		"trailing bytes":       append(encode(papers, nil), 0x00),
		"truncated edge":       encode(papers, nil)[:1],
	}
	for name, payload := range cases {
		g, err := decodeCitations(payload, papers)
		if err == nil {
			t.Errorf("%s: decode succeeded with %d edges", name, len(g.Edges))
			continue
		}
		var fe *FormatError
		if !errors.As(err, &fe) {
			t.Errorf("%s: error %v (%T) is not a *FormatError", name, err, err)
		}
	}
	// A valid payload with delta-encoded sources decodes to absolute ones.
	g, err := decodeCitations(encode(papers, [][3]uint64{{0, 1, 2}, {2, 0, 1}}), papers)
	if err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	want := []cite.Edge{{Src: 0, Dst: 1, Null: 2}, {Src: 2, Dst: 0, Null: 1}}
	if !reflect.DeepEqual(g.Edges, want) {
		t.Errorf("decoded edges %v, want %v", g.Edges, want)
	}
}
