package snap

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/affil"
	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/query"
	"repro/internal/scholar"
)

// tinyDataset builds a small hand-made corpus exercising every encoded
// attribute: known and unknown genders, present and absent GS/S2 records,
// empty country codes, multiple conferences with full rosters, and papers
// with one and several authors. It is deliberately not *testing-typed so
// the fuzz seed corpus can reuse it.
func tinyDataset() *dataset.Dataset {
	d := dataset.New()
	persons := []*dataset.Person{
		{
			ID: "p1", Name: "Ada One", Forename: "Ada",
			TrueGender: gender.Female, Gender: gender.Female, AssignMethod: gender.MethodManual,
			Email: "ada@uni.edu", Affiliation: "Uni", CountryCode: "US", Sector: affil.EDU,
			HasGSProfile: true, GS: scholar.Profile{Publications: 12, HIndex: 5, I10Index: 3, Citations: 220},
			HasS2: true, S2Pubs: 14,
		},
		{
			ID: "p2", Name: "Bob Two", Forename: "Bob",
			TrueGender: gender.Male, Gender: gender.Male, AssignMethod: gender.MethodAutomated,
			Email: "", Affiliation: "Lab", CountryCode: "DE", Sector: affil.GOV,
			HasS2: true, S2Pubs: 3,
		},
		{
			ID: "p3", Name: "Cy Three", Forename: "Cy",
			TrueGender: gender.Female, Gender: gender.Unknown, AssignMethod: gender.MethodNone,
			Email: "cy@corp.com", Affiliation: "Corp", CountryCode: "", Sector: affil.COM,
			HasGSProfile: true, GS: scholar.Profile{Publications: 2, HIndex: 1, I10Index: 0, Citations: 9},
		},
		{
			ID: "p4", Name: "Di Four", Forename: "Di",
			TrueGender: gender.Female, Gender: gender.Female, AssignMethod: gender.MethodManual,
			Email: "di@uni.edu", Affiliation: "Uni", CountryCode: "US", Sector: affil.EDU,
		},
	}
	for _, p := range persons {
		if err := d.AddPerson(p); err != nil {
			panic(err)
		}
	}
	confs := []*dataset.Conference{
		{
			ID: "SC17", Name: "SC", Year: 2017,
			Date:        time.Date(2017, 11, 13, 0, 0, 0, 0, time.UTC),
			CountryCode: "US", Submitted: 327, AcceptanceRate: 0.187, Subfield: "HPC",
			DoubleBlind: true, DiversityChair: true, CodeOfConduct: true, Childcare: true,
			WomenAttendance: 0.14,
			PCChairs:        []dataset.PersonID{"p1"},
			PCMembers:       []dataset.PersonID{"p2", "p3"},
			Keynotes:        []dataset.PersonID{"p4"},
			Panelists:       []dataset.PersonID{"p1", "p2"},
			SessionChairs:   []dataset.PersonID{"p3"},
		},
		{
			ID: "ISC17", Name: "ISC", Year: 2017,
			Date:        time.Date(2017, 6, 18, 0, 0, 0, 0, time.UTC),
			CountryCode: "DE", Submitted: 120, AcceptanceRate: 0.25, Subfield: "HPC",
			DoubleBlind: true,
			PCMembers:   []dataset.PersonID{"p1"},
		},
	}
	for _, c := range confs {
		if err := d.AddConference(c); err != nil {
			panic(err)
		}
	}
	papers := []*dataset.Paper{
		{ID: "sc17-1", Conf: "SC17", Title: "On Things", Authors: []dataset.PersonID{"p1", "p2", "p4"}, HPCTopic: true, Citations36: 40},
		{ID: "sc17-2", Conf: "SC17", Title: "More Things", Authors: []dataset.PersonID{"p3"}, Citations36: 2},
		{ID: "isc17-1", Conf: "ISC17", Title: "Other Things", Authors: []dataset.PersonID{"p2", "p1"}, HPCTopic: true, Citations36: 7},
	}
	for _, p := range papers {
		if err := d.AddPaper(p); err != nil {
			panic(err)
		}
	}
	if err := d.Validate(); err != nil {
		panic(err)
	}
	return d
}

// tinySnapshot serializes tinyDataset, optionally with frames.
func tinySnapshot(t testing.TB, withFrames bool) []byte {
	t.Helper()
	d := tinyDataset()
	var fs *query.FrameSet
	if withFrames {
		fs = query.NewFrameSet(d)
	}
	var buf bytes.Buffer
	if err := Write(&buf, d, fs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	return buf.Bytes()
}

// datasetCSV renders a dataset through the CSV codecs, giving a canonical
// byte form for equality checks.
func datasetCSV(t *testing.T, d *dataset.Dataset) string {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WritePersonsCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteConferencesCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePapersCSV(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRoundTripCorpus(t *testing.T) {
	data := tinySnapshot(t, false)
	r, err := NewReader(data)
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if r.HasFrames() {
		t.Error("HasFrames = true for a corpus-only snapshot")
	}
	if p, c, pa := r.Counts(); p != 4 || c != 2 || pa != 3 {
		t.Errorf("Counts = (%d, %d, %d), want (4, 2, 3)", p, c, pa)
	}
	got, err := r.Corpus()
	if err != nil {
		t.Fatalf("Corpus: %v", err)
	}
	if want, have := datasetCSV(t, tinyDataset()), datasetCSV(t, got); want != have {
		t.Errorf("decoded corpus differs from original:\nwant:\n%s\ngot:\n%s", want, have)
	}
}

func TestRoundTripFrames(t *testing.T) {
	d := tinyDataset()
	fs := query.NewFrameSet(d)
	var buf bytes.Buffer
	if err := Write(&buf, d, fs); err != nil {
		t.Fatalf("Write: %v", err)
	}
	r, err := NewReader(buf.Bytes())
	if err != nil {
		t.Fatalf("NewReader: %v", err)
	}
	if !r.HasFrames() {
		t.Fatal("HasFrames = false for a snapshot written with frames")
	}
	got, err := r.Frames()
	if err != nil {
		t.Fatalf("Frames: %v", err)
	}
	q := &query.Query{
		Frame:   query.FrameSlots,
		GroupBy: []query.Key{{Col: "conference"}, {Col: "role"}},
		Aggs:    []query.Agg{{Op: "count", As: "n"}},
		Format:  query.FormatCSV,
	}
	want := runQuery(t, fs, q)
	have := runQuery(t, got, q)
	if want != have {
		t.Errorf("query over decoded frames differs:\nwant:\n%s\ngot:\n%s", want, have)
	}
}

func runQuery(t *testing.T, fs *query.FrameSet, q *query.Query) string {
	t.Helper()
	res, err := query.Run(fs, q)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	body, _, err := res.Encode(q.Format)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return string(body)
}

func TestWriteDeterministic(t *testing.T) {
	a := tinySnapshot(t, true)
	b := tinySnapshot(t, true)
	if !bytes.Equal(a, b) {
		t.Error("two writes of the same corpus produced different bytes")
	}
}

func TestBadMagicRejected(t *testing.T) {
	data := tinySnapshot(t, false)
	data[0] ^= 0xff
	_, err := NewReader(data)
	if !errors.Is(err, ErrBadMagic) {
		t.Errorf("err = %v, want ErrBadMagic", err)
	}
}

func TestVersionSkewRejected(t *testing.T) {
	data := tinySnapshot(t, false)
	// A future format version must surface ErrVersion, not a checksum
	// mismatch, even though the flip also breaks the file CRC.
	data[8], data[9] = 0xff, 0x7f
	_, err := NewReader(data)
	if !errors.Is(err, ErrVersion) {
		t.Errorf("err = %v, want ErrVersion", err)
	}
	if err != nil && !strings.Contains(err.Error(), "version") {
		t.Errorf("error %q does not mention the version", err)
	}
}

func TestTruncationsRejected(t *testing.T) {
	data := tinySnapshot(t, true)
	for n := 0; n < len(data); n++ {
		if _, err := NewReader(data[:n]); err == nil {
			t.Fatalf("NewReader accepted a %d-byte prefix of a %d-byte snapshot", n, len(data))
		}
	}
}

// TestEveryByteFlipRejected proves the checksum chain has no blind spot:
// corrupting any single byte of the file must fail validation (and must
// not panic).
func TestEveryByteFlipRejected(t *testing.T) {
	data := tinySnapshot(t, true)
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xff
		if _, err := NewReader(mut); err == nil {
			t.Fatalf("NewReader accepted a snapshot with byte %d flipped", i)
		}
	}
}

func TestChecksumErrorNamesSection(t *testing.T) {
	data := tinySnapshot(t, false)
	r, err := NewReader(data)
	if err != nil {
		t.Fatal(err)
	}
	var persons SectionInfo
	for _, s := range r.Sections() {
		if s.Name == SectionPersons {
			persons = s
		}
	}
	if persons.Length == 0 {
		t.Fatal("no persons section in directory")
	}
	mut := append([]byte(nil), data...)
	mut[persons.Offset+persons.Length/2] ^= 0x01
	_, err = NewReader(mut)
	if !errors.Is(err, ErrChecksum) {
		t.Fatalf("err = %v, want ErrChecksum", err)
	}
	var fe *FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("err %T is not a *FormatError", err)
	}
	if fe.Section != SectionPersons {
		t.Errorf("error attributed to section %q, want %q", fe.Section, SectionPersons)
	}
}

func TestFramesAbsent(t *testing.T) {
	r, err := NewReader(tinySnapshot(t, false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Frames(); !errors.Is(err, ErrNoSection) {
		t.Errorf("Frames err = %v, want ErrNoSection", err)
	}
}

func TestWriterMisuse(t *testing.T) {
	d := tinyDataset()
	var buf bytes.Buffer
	sw := NewWriter(&buf)
	if err := sw.AddCorpus(d); err != nil {
		t.Fatal(err)
	}
	if err := sw.AddCorpus(d); err == nil {
		t.Error("second AddCorpus succeeded")
	}
	if err := sw.AddFrames(nil); err == nil {
		t.Error("AddFrames(nil) succeeded")
	}
	if err := sw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sw.Close(); err == nil {
		t.Error("second Close succeeded")
	}

	empty := NewWriter(&bytes.Buffer{})
	if err := empty.Close(); err == nil {
		t.Error("Close without AddCorpus succeeded")
	}
}

func TestOpenMissingFile(t *testing.T) {
	if _, _, err := Open(t.TempDir() + "/nope.whpcsnap"); err == nil {
		t.Error("Open of a missing file succeeded")
	}
}

func TestWriteFileAndOpen(t *testing.T) {
	d := tinyDataset()
	path := t.TempDir() + "/tiny" + FileExt
	if err := WriteFile(path, d, query.NewFrameSet(d)); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, fs, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if fs == nil {
		t.Error("Open returned nil frames for a snapshot written with frames")
	}
	if want, have := datasetCSV(t, d), datasetCSV(t, got); want != have {
		t.Error("corpus loaded from file differs from original")
	}
}

func TestCorpusFileName(t *testing.T) {
	if got, want := CorpusFileName("default", 2021), "default-2021.whpcsnap"; got != want {
		t.Errorf("CorpusFileName = %q, want %q", got, want)
	}
}
