package snap

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/affil"
	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/scholar"
)

// The corpus codec serializes the three entity tables columnar-style:
// high-cardinality strings (IDs, names, titles, emails) raw, repetitive
// strings (affiliations, countries, conference IDs) dictionary-encoded,
// integers as zigzag varints, and presence flags (Google Scholar /
// Semantic Scholar linkage, HPC topic tags) as bitmaps with the dependent
// columns packed down to the present rows only. Person references in
// rosters and author lists are encoded as indexes into the sorted person
// ID table — dataset.Validate guarantees they resolve.

// bitmap helpers over plain []uint64 words (query.Bitmap is not imported
// here to keep the corpus codec independent of the frames codec).

func bitmapWords(n int) int { return (n + 63) / 64 }

func bitGet(w []uint64, i int) bool { return w[i>>6]&(1<<(uint(i)&63)) != 0 }

func bitSet(w []uint64, i int) { w[i>>6] |= 1 << (uint(i) & 63) }

// checkBitmap validates a decoded bitmap: exactly the words n rows need,
// and no bits set at or beyond row n (canonical form; a nonzero tail
// would make popcount-dependent column lengths ambiguous).
func checkBitmap(d *dec, what string, w []uint64, n int) error {
	if len(w) != bitmapWords(n) {
		return d.err(fmt.Sprintf("%s: bitmap has %d words, want %d for %d rows", what, len(w), bitmapWords(n), n), ErrCorrupt)
	}
	if n%64 != 0 && len(w) > 0 {
		if w[len(w)-1]>>(uint(n)&63) != 0 {
			return d.err(what+": bitmap has bits set beyond row count", ErrCorrupt)
		}
	}
	return nil
}

func popcount(w []uint64) int {
	n := 0
	for _, v := range w {
		for ; v != 0; v &= v - 1 {
			n++
		}
	}
	return n
}

// sortedPersonIDs returns the corpus person IDs sorted ascending — the
// canonical row order of the persons section and the index space person
// references encode against.
func sortedPersonIDs(d *dataset.Dataset) []string {
	ids := make([]string, 0, len(d.Persons))
	for id := range d.Persons {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return ids
}

// --- persons ----------------------------------------------------------

func encodePersons(d *dataset.Dataset, ids []string) []byte {
	e := &enc{}
	n := len(ids)
	e.uvarint(uint64(n))
	e.strCol(ids)

	names := make([]string, n)
	forenames := make([]string, n)
	emails := make([]string, n)
	trueGenders := make([]int64, n)
	genders := make([]int64, n)
	methods := make([]int64, n)
	sectors := make([]int64, n)
	affilDict := newDictBuilder()
	affilCodes := make([]int32, n)
	countryDict := newDictBuilder()
	countryCodes := make([]int32, n)
	hasGS := make([]uint64, bitmapWords(n))
	hasS2 := make([]uint64, bitmapWords(n))
	var gsPubs, gsH, gsI10, gsCit, s2Pubs []int64

	for i, sid := range ids {
		p := d.Persons[dataset.PersonID(sid)]
		names[i] = p.Name
		forenames[i] = p.Forename
		emails[i] = p.Email
		trueGenders[i] = int64(p.TrueGender)
		genders[i] = int64(p.Gender)
		methods[i] = int64(p.AssignMethod)
		sectors[i] = int64(p.Sector)
		affilCodes[i] = affilDict.code(p.Affiliation)
		countryCodes[i] = countryDict.code(p.CountryCode)
		if p.HasGSProfile {
			bitSet(hasGS, i)
			gsPubs = append(gsPubs, int64(p.GS.Publications))
			gsH = append(gsH, int64(p.GS.HIndex))
			gsI10 = append(gsI10, int64(p.GS.I10Index))
			gsCit = append(gsCit, int64(p.GS.Citations))
		}
		if p.HasS2 {
			bitSet(hasS2, i)
			s2Pubs = append(s2Pubs, int64(p.S2Pubs))
		}
	}

	e.strCol(names)
	e.strCol(forenames)
	e.intCol(trueGenders)
	e.intCol(genders)
	e.intCol(methods)
	e.strCol(emails)
	e.strDict(affilDict.vals)
	e.codeCol(affilCodes)
	e.strDict(countryDict.vals)
	e.codeCol(countryCodes)
	e.intCol(sectors)
	e.words(hasGS)
	e.intCol(gsPubs)
	e.intCol(gsH)
	e.intCol(gsI10)
	e.intCol(gsCit)
	e.words(hasS2)
	e.intCol(s2Pubs)
	return e.bytesOut()
}

// decodePersons decodes the persons section into d, returning the sorted
// person ID table for the reference-index decoding of the other sections.
func decodePersons(data []byte, want int, d *dataset.Dataset) ([]string, error) {
	dc := newDec(SectionPersons, data)
	n64, err := dc.uvarint("person count")
	if err != nil {
		return nil, err
	}
	n := int(n64)
	if n != want {
		return nil, dc.err(fmt.Sprintf("person count %d disagrees with meta count %d", n, want), ErrCorrupt)
	}
	ids, err := dc.strCol("person ids")
	if err != nil {
		return nil, err
	}
	if len(ids) != n {
		return nil, dc.err(fmt.Sprintf("person ids column has %d rows, want %d", len(ids), n), ErrCorrupt)
	}
	for i := 1; i < n; i++ {
		if ids[i-1] >= ids[i] {
			return nil, dc.err(fmt.Sprintf("person ids not strictly sorted at row %d", i), ErrCorrupt)
		}
	}
	col := func(what string) ([]string, error) {
		c, err := dc.strCol(what)
		if err != nil {
			return nil, err
		}
		if len(c) != n {
			return nil, dc.err(fmt.Sprintf("%s column has %d rows, want %d", what, len(c), n), ErrCorrupt)
		}
		return c, nil
	}
	icol := func(what string, min, max int64) ([]int64, error) {
		c, err := dc.intCol(what)
		if err != nil {
			return nil, err
		}
		if len(c) != n {
			return nil, dc.err(fmt.Sprintf("%s column has %d rows, want %d", what, len(c), n), ErrCorrupt)
		}
		for i, v := range c {
			if v < min || v > max {
				return nil, dc.err(fmt.Sprintf("%s row %d value %d outside [%d, %d]", what, i, v, min, max), ErrCorrupt)
			}
		}
		return c, nil
	}
	dictCol := func(what string) ([]string, []int32, error) {
		vals, err := dc.strDict(what + " dictionary")
		if err != nil {
			return nil, nil, err
		}
		codes, err := dc.codeCol(what+" codes", len(vals))
		if err != nil {
			return nil, nil, err
		}
		if len(codes) != n {
			return nil, nil, dc.err(fmt.Sprintf("%s codes column has %d rows, want %d", what, len(codes), n), ErrCorrupt)
		}
		return vals, codes, nil
	}

	names, err := col("person names")
	if err != nil {
		return nil, err
	}
	forenames, err := col("person forenames")
	if err != nil {
		return nil, err
	}
	trueGenders, err := icol("person true_gender", int64(gender.Unknown), int64(gender.Male))
	if err != nil {
		return nil, err
	}
	genders, err := icol("person gender", int64(gender.Unknown), int64(gender.Male))
	if err != nil {
		return nil, err
	}
	methods, err := icol("person assign_method", int64(gender.MethodNone), int64(gender.MethodAutomated))
	if err != nil {
		return nil, err
	}
	emails, err := col("person emails")
	if err != nil {
		return nil, err
	}
	affilVals, affilCodes, err := dictCol("person affiliations")
	if err != nil {
		return nil, err
	}
	countryVals, countryCodes, err := dictCol("person countries")
	if err != nil {
		return nil, err
	}
	sectors, err := icol("person sectors", int64(affil.SectorUnknown), int64(affil.GOV))
	if err != nil {
		return nil, err
	}
	hasGS, err := dc.words("person has_gs bitmap")
	if err != nil {
		return nil, err
	}
	if err := checkBitmap(dc, "person has_gs", hasGS, n); err != nil {
		return nil, err
	}
	gsCount := popcount(hasGS)
	gcol := func(what string) ([]int64, error) {
		c, err := dc.intCol(what)
		if err != nil {
			return nil, err
		}
		if len(c) != gsCount {
			return nil, dc.err(fmt.Sprintf("%s column has %d rows, want %d (one per linked profile)", what, len(c), gsCount), ErrCorrupt)
		}
		return c, nil
	}
	gsPubs, err := gcol("person gs_pubs")
	if err != nil {
		return nil, err
	}
	gsH, err := gcol("person gs_hindex")
	if err != nil {
		return nil, err
	}
	gsI10, err := gcol("person gs_i10")
	if err != nil {
		return nil, err
	}
	gsCit, err := gcol("person gs_citations")
	if err != nil {
		return nil, err
	}
	hasS2, err := dc.words("person has_s2 bitmap")
	if err != nil {
		return nil, err
	}
	if err := checkBitmap(dc, "person has_s2", hasS2, n); err != nil {
		return nil, err
	}
	s2Pubs, err := dc.intCol("person s2_pubs")
	if err != nil {
		return nil, err
	}
	if len(s2Pubs) != popcount(hasS2) {
		return nil, dc.err(fmt.Sprintf("person s2_pubs column has %d rows, want %d (one per linked record)", len(s2Pubs), popcount(hasS2)), ErrCorrupt)
	}
	if err := dc.finished("persons"); err != nil {
		return nil, err
	}

	gi, si := 0, 0
	// The dataset is freshly constructed and empty: presize the person map
	// for the decoded population and slab-allocate the structs (one
	// allocation instead of one per researcher).
	d.Persons = make(map[dataset.PersonID]*dataset.Person, n)
	people := make([]dataset.Person, n)
	for i, sid := range ids {
		p := &people[i]
		*p = dataset.Person{
			ID:           dataset.PersonID(sid),
			Name:         names[i],
			Forename:     forenames[i],
			TrueGender:   gender.Gender(trueGenders[i]),
			Gender:       gender.Gender(genders[i]),
			AssignMethod: gender.Method(methods[i]),
			Email:        emails[i],
			Affiliation:  affilVals[affilCodes[i]],
			CountryCode:  countryVals[countryCodes[i]],
			Sector:       affil.Sector(sectors[i]),
		}
		if bitGet(hasGS, i) {
			p.HasGSProfile = true
			p.GS = scholar.Profile{
				Publications: int(gsPubs[gi]),
				HIndex:       int(gsH[gi]),
				I10Index:     int(gsI10[gi]),
				Citations:    int(gsCit[gi]),
			}
			gi++
		}
		if bitGet(hasS2, i) {
			p.HasS2 = true
			p.S2Pubs = int(s2Pubs[si])
			si++
		}
		if err := d.AddPerson(p); err != nil {
			return nil, dc.err(err.Error(), ErrCorrupt)
		}
	}
	return ids, nil
}

// dictBuilder interns strings in first-appearance order at encode time.
type dictBuilder struct {
	vals []string
	idx  map[string]int32
}

func newDictBuilder() *dictBuilder {
	return &dictBuilder{idx: make(map[string]int32)}
}

func (b *dictBuilder) code(s string) int32 {
	if c, ok := b.idx[s]; ok {
		return c
	}
	c := int32(len(b.vals))
	b.vals = append(b.vals, s)
	b.idx[s] = c
	return c
}

// --- conferences ------------------------------------------------------

func encodeConferences(d *dataset.Dataset, personIdx map[string]int) []byte {
	e := &enc{}
	e.uvarint(uint64(len(d.Conferences)))
	for _, c := range d.Conferences {
		e.str(string(c.ID))
		e.str(c.Name)
		e.varint(int64(c.Year))
		e.varint(c.Date.Unix())
		e.str(c.CountryCode)
		e.varint(int64(c.Submitted))
		e.f64(c.AcceptanceRate)
		e.str(c.Subfield)
		e.bool(c.DoubleBlind)
		e.bool(c.DiversityChair)
		e.bool(c.CodeOfConduct)
		e.bool(c.Childcare)
		e.f64(c.WomenAttendance)
		for _, roster := range [][]dataset.PersonID{
			c.PCChairs, c.PCMembers, c.Keynotes, c.Panelists, c.SessionChairs,
		} {
			e.uvarint(uint64(len(roster)))
			for _, id := range roster {
				e.uvarint(uint64(personIdx[string(id)]))
			}
		}
	}
	return e.bytesOut()
}

func decodeConferences(data []byte, want int, ids []string, d *dataset.Dataset) error {
	dc := newDec(SectionConferences, data)
	n64, err := dc.uvarint("conference count")
	if err != nil {
		return err
	}
	if int(n64) != want {
		return dc.err(fmt.Sprintf("conference count %d disagrees with meta count %d", n64, want), ErrCorrupt)
	}
	rosterNames := []string{"pc_chairs", "pc_members", "keynotes", "panelists", "session_chairs"}
	for i := 0; i < int(n64); i++ {
		c := &dataset.Conference{}
		var sid string
		if sid, err = dc.str("conference id"); err != nil {
			return err
		}
		c.ID = dataset.ConfID(sid)
		if c.Name, err = dc.str("conference name"); err != nil {
			return err
		}
		year, err := dc.varint("conference year")
		if err != nil {
			return err
		}
		c.Year = int(year)
		sec, err := dc.varint("conference date")
		if err != nil {
			return err
		}
		c.Date = time.Unix(sec, 0).UTC()
		if c.CountryCode, err = dc.str("conference country"); err != nil {
			return err
		}
		submitted, err := dc.varint("conference submitted")
		if err != nil {
			return err
		}
		c.Submitted = int(submitted)
		if c.AcceptanceRate, err = dc.f64("conference acceptance_rate"); err != nil {
			return err
		}
		if c.Subfield, err = dc.str("conference subfield"); err != nil {
			return err
		}
		if c.DoubleBlind, err = dc.bool("conference double_blind"); err != nil {
			return err
		}
		if c.DiversityChair, err = dc.bool("conference diversity_chair"); err != nil {
			return err
		}
		if c.CodeOfConduct, err = dc.bool("conference code_of_conduct"); err != nil {
			return err
		}
		if c.Childcare, err = dc.bool("conference childcare"); err != nil {
			return err
		}
		if c.WomenAttendance, err = dc.f64("conference women_attendance"); err != nil {
			return err
		}
		rosters := make([][]dataset.PersonID, 5)
		for ri := range rosters {
			rosters[ri], err = decodePersonRefs(dc, fmt.Sprintf("conference %q %s roster", sid, rosterNames[ri]), ids)
			if err != nil {
				return err
			}
		}
		c.PCChairs, c.PCMembers, c.Keynotes, c.Panelists, c.SessionChairs =
			rosters[0], rosters[1], rosters[2], rosters[3], rosters[4]
		if err := d.AddConference(c); err != nil {
			return dc.err(err.Error(), ErrCorrupt)
		}
	}
	return dc.finished("conferences")
}

// decodePersonRefs reads a person-reference list: a count then indexes
// into the sorted person ID table, each validated against its bounds.
func decodePersonRefs(dc *dec, what string, ids []string) ([]dataset.PersonID, error) {
	n, err := dc.length(what, 1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]dataset.PersonID, n)
	for i := range out {
		ref, err := dc.uvarint(what)
		if err != nil {
			return nil, err
		}
		if ref >= uint64(len(ids)) {
			return nil, dc.err(fmt.Sprintf("%s: person index %d out of range (%d persons)", what, ref, len(ids)), ErrCorrupt)
		}
		out[i] = dataset.PersonID(ids[ref])
	}
	return out, nil
}

// --- papers -----------------------------------------------------------

func encodePapers(d *dataset.Dataset, personIdx map[string]int) []byte {
	e := &enc{}
	n := len(d.Papers)
	e.uvarint(uint64(n))

	paperIDs := make([]string, n)
	titles := make([]string, n)
	confDict := newDictBuilder()
	confCodes := make([]int32, n)
	citations := make([]int64, n)
	hpc := make([]uint64, bitmapWords(n))
	counts := make([]int64, n)
	var refs []int32
	for i, p := range d.Papers {
		paperIDs[i] = string(p.ID)
		titles[i] = p.Title
		confCodes[i] = confDict.code(string(p.Conf))
		citations[i] = int64(p.Citations36)
		if p.HPCTopic {
			bitSet(hpc, i)
		}
		counts[i] = int64(len(p.Authors))
		for _, a := range p.Authors {
			refs = append(refs, int32(personIdx[string(a)]))
		}
	}
	e.strCol(paperIDs)
	e.strCol(titles)
	e.strDict(confDict.vals)
	e.codeCol(confCodes)
	e.intCol(citations)
	e.words(hpc)
	e.intCol(counts)
	e.codeCol(refs)
	return e.bytesOut()
}

func decodePapers(data []byte, want int, ids []string, d *dataset.Dataset) error {
	dc := newDec(SectionPapers, data)
	n64, err := dc.uvarint("paper count")
	if err != nil {
		return err
	}
	n := int(n64)
	if n != want {
		return dc.err(fmt.Sprintf("paper count %d disagrees with meta count %d", n, want), ErrCorrupt)
	}
	paperIDs, err := dc.strCol("paper ids")
	if err != nil {
		return err
	}
	titles, err := dc.strCol("paper titles")
	if err != nil {
		return err
	}
	if len(paperIDs) != n || len(titles) != n {
		return dc.err(fmt.Sprintf("paper id/title columns have %d/%d rows, want %d", len(paperIDs), len(titles), n), ErrCorrupt)
	}
	confVals, err := dc.strDict("paper conference dictionary")
	if err != nil {
		return err
	}
	confCodes, err := dc.codeCol("paper conference codes", len(confVals))
	if err != nil {
		return err
	}
	citations, err := dc.intCol("paper citations36")
	if err != nil {
		return err
	}
	hpc, err := dc.words("paper hpc_topic bitmap")
	if err != nil {
		return err
	}
	if err := checkBitmap(dc, "paper hpc_topic", hpc, n); err != nil {
		return err
	}
	counts, err := dc.intCol("paper author counts")
	if err != nil {
		return err
	}
	if len(confCodes) != n || len(citations) != n || len(counts) != n {
		return dc.err(fmt.Sprintf("paper columns have %d/%d/%d rows, want %d", len(confCodes), len(citations), len(counts), n), ErrCorrupt)
	}
	total := 0
	for i, c := range counts {
		if c < 0 || c > int64(len(ids)) {
			return dc.err(fmt.Sprintf("paper row %d author count %d outside [0, %d]", i, c, len(ids)), ErrCorrupt)
		}
		total += int(c)
	}
	refs, err := dc.codeCol("paper author refs", len(ids))
	if err != nil {
		return err
	}
	if len(refs) != total {
		return dc.err(fmt.Sprintf("paper author refs column has %d rows, want %d (sum of counts)", len(refs), total), ErrCorrupt)
	}
	if err := dc.finished("papers"); err != nil {
		return err
	}

	// Slab-allocate the paper structs and the flat author-list arena (two
	// allocations instead of one per paper plus one per author list).
	papers := make([]dataset.Paper, n)
	authors := make([]dataset.PersonID, total)
	off := 0
	for i := 0; i < n; i++ {
		p := &papers[i]
		*p = dataset.Paper{
			ID:          dataset.PaperID(paperIDs[i]),
			Conf:        dataset.ConfID(confVals[confCodes[i]]),
			Title:       titles[i],
			HPCTopic:    bitGet(hpc, i),
			Citations36: int(citations[i]),
		}
		if c := int(counts[i]); c > 0 {
			p.Authors = authors[off : off+c : off+c]
			for j := 0; j < c; j++ {
				p.Authors[j] = dataset.PersonID(ids[refs[off+j]])
			}
			off += c
		}
		if err := d.AddPaper(p); err != nil {
			return dc.err(err.Error(), ErrCorrupt)
		}
	}
	return nil
}
