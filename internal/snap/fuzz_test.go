package snap

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/cite"
	"repro/internal/query"
)

// FuzzReader: arbitrary byte streams must never panic the snapshot
// reader — every rejection is a structured *FormatError, and inputs that
// pass validation must decode without panicking either. Seeds cover a
// valid snapshot (with and without frames), a delta snapshot, their
// prefixes, and garbage.
func FuzzReader(f *testing.F) {
	d := tinyDataset()
	var plain, withFrames, asDelta, cited bytes.Buffer
	if err := Write(&plain, d, nil); err != nil {
		f.Fatal(err)
	}
	if err := Write(&withFrames, d, query.NewFrameSet(d)); err != nil {
		f.Fatal(err)
	}
	info, mini := tinyDeltaMini()
	if err := WriteDelta(&asDelta, info, mini); err != nil {
		f.Fatal(err)
	}
	if err := WriteCited(&cited, d, query.NewFrameSet(d), cite.Synthesize(d)); err != nil {
		f.Fatal(err)
	}
	f.Add(plain.Bytes())
	f.Add(withFrames.Bytes())
	f.Add(asDelta.Bytes())
	f.Add(cited.Bytes())
	f.Add(plain.Bytes()[:len(plain.Bytes())/2])
	f.Add(asDelta.Bytes()[:len(asDelta.Bytes())/2])
	f.Add(cited.Bytes()[:len(cited.Bytes())/2])
	f.Add([]byte{})
	f.Add([]byte(Magic))
	f.Add([]byte("WHPCSNAP\x01\x00\x00\x00\xff\xff\xff\xff"))
	f.Add([]byte("\x00\xff\xfe garbage"))

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(data)
		if err != nil {
			var fe *FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("NewReader rejection %v (%T) is not a *FormatError", err, err)
			}
			return
		}
		// Validated header and checksums; corpus, frame, and delta
		// decoding must still tolerate structurally impossible payloads
		// without panics.
		_, _ = r.Corpus()
		if r.HasFrames() {
			_, _ = r.Frames()
		}
		if r.IsDelta() {
			_, _ = r.Delta()
		}
		if r.HasCitations() {
			_, _ = r.Citations()
		}
	})
}
