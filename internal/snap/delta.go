package snap

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/chaos"
	"repro/internal/dataset"
)

// Delta snapshots reuse the whole .whpcsnap container discipline — magic,
// format version, section directory, per-section CRC-32s and the
// whole-file trailer — to carry one conference-year's contribution instead
// of a full corpus. The standard persons/conferences/papers sections hold
// a self-contained mini-corpus (the appended conference, its papers, and
// the full records of every participant, reused or new), and a "delta"
// section records the edition's year, its conference ID, and a fingerprint
// of the base corpus the delta extends. The meta flag bit flagIsDelta
// keeps the two file kinds mutually unreadable: a full-snapshot reader
// built before this flag existed rejects delta files as corrupt rather
// than loading a nine-conference study with one conference in it, and
// Open/Read here refuse delta files symmetrically.

// SectionDelta is the delta-identity section of a delta snapshot.
const SectionDelta = "delta"

// DeltaInfo identifies what a delta snapshot appends and which base corpus
// it applies to.
type DeltaInfo struct {
	// Year is the conference edition's year.
	Year int
	// ConfID is the appended conference's ID (e.g. "SC21").
	ConfID string
	// BaseFingerprint is the fingerprint of the base corpus the delta was
	// generated against (internal/delta computes and verifies it); applying
	// a delta to any other corpus is rejected before a single row moves.
	BaseFingerprint uint64
}

func encodeDelta(info DeltaInfo) []byte {
	e := &enc{}
	e.uvarint(uint64(info.Year))
	e.str(info.ConfID)
	e.uvarint(info.BaseFingerprint)
	return e.bytesOut()
}

func decodeDelta(data []byte) (DeltaInfo, error) {
	dc := newDec(SectionDelta, data)
	var info DeltaInfo
	year, err := dc.uvarint("delta year")
	if err != nil {
		return info, err
	}
	if year > 1<<20 {
		return info, dc.err(fmt.Sprintf("delta year %d is implausible", year), ErrCorrupt)
	}
	info.Year = int(year)
	if info.ConfID, err = dc.str("delta conference ID"); err != nil {
		return info, err
	}
	if info.ConfID == "" {
		return info, dc.err("delta conference ID is empty", ErrCorrupt)
	}
	if info.BaseFingerprint, err = dc.uvarint("delta base fingerprint"); err != nil {
		return info, err
	}
	if err := dc.finished("delta"); err != nil {
		return info, err
	}
	return info, nil
}

// AddDelta marks the snapshot under construction as a delta carrying the
// given identity. The mini-corpus still arrives via AddCorpus; frames are
// rejected on delta snapshots (the point of a delta is that the base
// study's frames are patched in place, not replaced).
func (sw *Writer) AddDelta(info DeltaInfo) error {
	if sw.closed {
		return fmt.Errorf("snap: AddDelta on closed Writer")
	}
	if sw.delta {
		return fmt.Errorf("snap: AddDelta called twice")
	}
	if sw.frames {
		return fmt.Errorf("snap: delta snapshots cannot carry frames")
	}
	if sw.citations {
		return fmt.Errorf("snap: delta snapshots cannot carry citations")
	}
	if info.ConfID == "" {
		return fmt.Errorf("snap: delta conference ID is empty")
	}
	sw.sections = append(sw.sections, wsection{SectionDelta, encodeDelta(info)})
	sw.delta = true
	return nil
}

// IsDelta reports whether the snapshot is a delta (one conference-year's
// contribution) rather than a full corpus.
func (r *Reader) IsDelta() bool { return r.meta.isDelta }

// Delta decodes the delta-identity section. It returns a *FormatError
// wrapping ErrNoSection when the snapshot is not a delta.
func (r *Reader) Delta() (DeltaInfo, error) {
	payload, ok := r.payloads[SectionDelta]
	if !ok {
		return DeltaInfo{}, &FormatError{Section: SectionDelta, Msg: "snapshot is not a delta", Err: ErrNoSection}
	}
	return decodeDelta(payload)
}

// WriteDelta emits a delta snapshot to w: info plus the mini-corpus d (the
// appended conference, its papers, and every participant's full record).
func WriteDelta(w io.Writer, info DeltaInfo, d *dataset.Dataset) error {
	sw := NewWriter(w)
	if err := sw.AddDelta(info); err != nil {
		return err
	}
	if err := sw.AddCorpus(d); err != nil {
		return err
	}
	return sw.Close()
}

// WriteDeltaFile writes a delta snapshot to path atomically (temp sibling
// plus rename, like WriteFile).
func WriteDeltaFile(path string, info DeltaInfo, d *dataset.Dataset) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		//whpcvet:ignore errcheck best-effort cleanup of the temp file on the error paths; the success path renamed it away
		os.Remove(tmp.Name())
	}()
	if err := WriteDelta(tmp, info, d); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// OpenDelta reads the delta snapshot at path, returning its identity and
// the decoded, validated mini-corpus. Non-delta snapshots are rejected.
func OpenDelta(path string) (DeltaInfo, *dataset.Dataset, error) {
	return OpenDeltaInjected(path, chaos.None)
}

// OpenDeltaInjected is OpenDelta with a chaos injector consulted at the
// snap.read point (torn-read faults truncate the buffer, every other kind
// fails the read typed) and at the snap.decode point once per decoded
// section — the same fault surface OpenInjected exposes, so the serve
// layer's quarantine path covers torn delta files identically.
func OpenDeltaInjected(path string, inj chaos.Injector) (DeltaInfo, *dataset.Dataset, error) {
	inj = chaos.Or(inj)
	data, err := os.ReadFile(path)
	if err != nil {
		return DeltaInfo{}, nil, err
	}
	if f := inj.Fire(chaos.PointSnapRead); f != nil {
		switch f.Kind {
		case chaos.KindTorn:
			n := len(data) - f.TornBytes
			if n < 0 {
				n = 0
			}
			data = data[:n]
		default:
			return DeltaInfo{}, nil, fmt.Errorf("%s: %w", path, chaos.Injected(chaos.PointSnapRead, f))
		}
	}
	r, err := NewReaderInjected(data, inj)
	if err != nil {
		return DeltaInfo{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	if !r.IsDelta() {
		return DeltaInfo{}, nil, fmt.Errorf("%s: %w", path, &FormatError{Section: SectionDelta, Msg: "full snapshot where a delta was expected", Err: ErrNoSection})
	}
	info, err := r.Delta()
	if err != nil {
		return DeltaInfo{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	d, err := r.Corpus()
	if err != nil {
		return DeltaInfo{}, nil, fmt.Errorf("%s: %w", path, err)
	}
	return info, d, nil
}

// DeltaFileName is the naming convention for delta files alongside their
// base snapshot: the base corpus's CorpusFileName stem plus the appended
// year, e.g. "default-2021.delta-2021.whpcsnap". The whpcd snapshot-dir
// scan applies deltas in ascending year order after loading the base.
func DeltaFileName(corpus string, seed uint64, year int) string {
	return fmt.Sprintf("%s-%d.delta-%d%s", corpus, seed, year, FileExt)
}

// DeltaFilePattern is the glob matching every delta file of one base
// snapshot, for the snapshot-dir scan.
func DeltaFilePattern(corpus string, seed uint64) string {
	return fmt.Sprintf("%s-%d.delta-*%s", corpus, seed, FileExt)
}
