package countries

import "strings"

// The paper infers country of residence from the email addresses authors
// print in their papers: country-code TLDs map directly, while the generic
// US-administered TLDs .edu, .gov and .mil are attributed to the United
// States. Generic TLDs (.com, .org, .net, ...) carry no geographic signal
// by themselves and resolve only through the well-known-domain table.

// genericTLDs carry no country information on their own.
var genericTLDs = map[string]bool{
	"com": true, "org": true, "net": true, "info": true, "io": true,
	"ai": true, "dev": true, "xyz": true, "biz": true, "int": true,
	"eu": true, // supranational
}

// usTLDs are administered for US institutions.
var usTLDs = map[string]bool{"edu": true, "gov": true, "mil": true}

// wellKnownDomains resolves major multinational or generically-named
// research institutions whose TLD is uninformative. Patterned after the
// paper's hand-coded affiliation rules.
var wellKnownDomains = map[string]string{
	"ibm.com":         "US",
	"google.com":      "US",
	"microsoft.com":   "US",
	"intel.com":       "US",
	"nvidia.com":      "US",
	"amd.com":         "US",
	"amazon.com":      "US",
	"hpe.com":         "US",
	"hp.com":          "US",
	"cray.com":        "US",
	"oracle.com":      "US",
	"facebook.com":    "US",
	"llnl.gov":        "US",
	"ornl.gov":        "US",
	"anl.gov":         "US",
	"lanl.gov":        "US",
	"sandia.gov":      "US",
	"nasa.gov":        "US",
	"nist.gov":        "US",
	"pnnl.gov":        "US",
	"lbl.gov":         "US",
	"bnl.gov":         "US",
	"nrel.gov":        "US",
	"cern.ch":         "CH",
	"epfl.ch":         "CH",
	"ethz.ch":         "CH",
	"riken.jp":        "JP",
	"fujitsu.com":     "JP",
	"nec.com":         "JP",
	"samsung.com":     "KR",
	"huawei.com":      "CN",
	"alibaba-inc.com": "CN",
	"baidu.com":       "CN",
	"tencent.com":     "CN",
	"bsc.es":          "ES",
	"inria.fr":        "FR",
	"cnrs.fr":         "FR",
	"cea.fr":          "FR",
	"atos.net":        "FR",
	"bull.net":        "FR",
	"fz-juelich.de":   "DE",
	"mpg.de":          "DE",
	"dkrz.de":         "DE",
	"kaust.edu.sa":    "SA",
	"arm.com":         "GB",
	"tcs.com":         "IN",
	"csiro.au":        "AU",
}

// FromEmail infers the ISO alpha-2 country code from an email address.
// The boolean reports whether a country could be inferred.
func FromEmail(email string) (string, bool) {
	at := strings.LastIndexByte(email, '@')
	if at < 0 || at == len(email)-1 {
		return "", false
	}
	return FromDomain(email[at+1:])
}

// FromDomain infers the ISO alpha-2 country code from a bare domain name.
func FromDomain(domain string) (string, bool) {
	domain = strings.ToLower(strings.TrimSpace(strings.TrimSuffix(domain, ".")))
	if domain == "" || !strings.Contains(domain, ".") {
		return "", false
	}
	// Exact or suffix match against the well-known-domain table first, so
	// "us.ibm.com" and "research.google.com" resolve.
	for known, cc := range wellKnownDomains {
		if domain == known || strings.HasSuffix(domain, "."+known) {
			return cc, true
		}
	}
	labels := strings.Split(domain, ".")
	tld := labels[len(labels)-1]
	switch {
	case usTLDs[tld]:
		return "US", true
	case genericTLDs[tld]:
		return "", false
	}
	// Multi-label academic domains under a ccTLD (e.g. ac.uk, edu.cn,
	// ac.jp) still end with the ccTLD, so a plain TLD lookup suffices.
	if c, ok := ByTLD(tld); ok {
		return c.CCA2, true
	}
	return "", false
}
