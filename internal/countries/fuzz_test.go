package countries

import "testing"

// FuzzFromEmail: country inference is exposed to raw scraped strings and
// must be total.
func FuzzFromEmail(f *testing.F) {
	f.Add("alice@cs.reed.edu")
	f.Add("@")
	f.Add("a@b@c@d.gov")
	f.Add("x@" + string(rune(0)))
	f.Fuzz(func(t *testing.T, email string) {
		cc, ok := FromEmail(email)
		if ok && len(cc) != 2 {
			t.Errorf("FromEmail(%q) returned malformed code %q", email, cc)
		}
		if !ok && cc != "" {
			t.Errorf("FromEmail(%q) returned %q with ok=false", email, cc)
		}
	})
}

// FuzzByCode: lookups are total and codes round-trip.
func FuzzByCode(f *testing.F) {
	f.Add("US")
	f.Add("usa")
	f.Add("")
	f.Add("ZZZZZ")
	f.Fuzz(func(t *testing.T, code string) {
		c, ok := ByCode(code)
		if ok {
			if c2, ok2 := ByCode(c.CCA2); !ok2 || c2.CCA2 != c.CCA2 {
				t.Errorf("round trip failed for %q -> %q", code, c.CCA2)
			}
		}
	})
}
