package countries

import (
	"strings"
	"testing"
)

func TestTableIntegrity(t *testing.T) {
	seen2 := make(map[string]bool)
	seen3 := make(map[string]bool)
	seenTLD := make(map[string]bool)
	for _, c := range All() {
		if len(c.CCA2) != 2 || c.CCA2 != strings.ToUpper(c.CCA2) {
			t.Errorf("%s: bad alpha-2 %q", c.Name, c.CCA2)
		}
		if len(c.CCA3) != 3 || c.CCA3 != strings.ToUpper(c.CCA3) {
			t.Errorf("%s: bad alpha-3 %q", c.Name, c.CCA3)
		}
		if c.TLD != strings.ToLower(c.TLD) {
			t.Errorf("%s: TLD %q not lowercase", c.Name, c.TLD)
		}
		if c.Region == "" || c.Subregion == "" {
			t.Errorf("%s: missing region/subregion", c.Name)
		}
		if seen2[c.CCA2] {
			t.Errorf("duplicate alpha-2 %s", c.CCA2)
		}
		if seen3[c.CCA3] {
			t.Errorf("duplicate alpha-3 %s", c.CCA3)
		}
		if c.TLD != "" && seenTLD[c.TLD] {
			t.Errorf("duplicate TLD %s", c.TLD)
		}
		seen2[c.CCA2] = true
		seen3[c.CCA3] = true
		seenTLD[c.TLD] = true
	}
}

func TestPaperCountriesPresent(t *testing.T) {
	// Every country in the paper's Table 1 (conference hosts) and Table 2
	// (top ten by researchers) must resolve with the right subregion.
	cases := []struct{ code, subregion string }{
		{"US", NorthernAmerica},
		{"CA", NorthernAmerica},
		{"CN", EasternAsia},
		{"JP", EasternAsia},
		{"FR", WesternEurope},
		{"DE", WesternEurope},
		{"CH", WesternEurope},
		{"ES", SouthernEurope},
		{"IN", SouthernAsia},
		{"GB", NorthernEurope},
		{"TH", SouthEasternAsia},
		{"UK", NorthernEurope}, // Table 1 alias
	}
	for _, c := range cases {
		got, ok := ByCode(c.code)
		if !ok {
			t.Errorf("ByCode(%q) not found", c.code)
			continue
		}
		if got.Subregion != c.subregion {
			t.Errorf("ByCode(%q).Subregion = %q, want %q", c.code, got.Subregion, c.subregion)
		}
	}
}

func TestByCodeVariants(t *testing.T) {
	if c, ok := ByCode("usa"); !ok || c.CCA2 != "US" {
		t.Errorf("alpha-3 lowercase lookup failed: %v %v", c, ok)
	}
	if c, ok := ByCode(" de "); !ok || c.Name != "Germany" {
		t.Errorf("whitespace-trimmed lookup failed: %v %v", c, ok)
	}
	if _, ok := ByCode("ZZ"); ok {
		t.Error("ZZ should not resolve")
	}
	if _, ok := ByCode(""); ok {
		t.Error("empty code should not resolve")
	}
}

func TestByTLD(t *testing.T) {
	if c, ok := ByTLD(".fr"); !ok || c.CCA2 != "FR" {
		t.Error("dotted TLD lookup failed")
	}
	if c, ok := ByTLD("uk"); !ok || c.CCA2 != "GB" {
		t.Error(".uk should alias to GB")
	}
	if _, ok := ByTLD("com"); ok {
		t.Error("generic TLD should not resolve to a country")
	}
}

func TestByName(t *testing.T) {
	if c, ok := ByName("united states"); !ok || c.CCA2 != "US" {
		t.Error("case-insensitive name lookup failed")
	}
	if c, ok := ByName("South Korea"); !ok || c.Subregion != EasternAsia {
		t.Error("South Korea lookup failed")
	}
	if _, ok := ByName("Atlantis"); ok {
		t.Error("unknown name should not resolve")
	}
}

func TestSubregionOf(t *testing.T) {
	if got := SubregionOf("AU"); got != AustraliaNZ {
		t.Errorf("SubregionOf(AU) = %q", got)
	}
	if got := SubregionOf("??"); got != "" {
		t.Errorf("SubregionOf(??) = %q, want empty", got)
	}
}

func TestSubregionsCoverTable3(t *testing.T) {
	subs := Subregions()
	have := make(map[string]bool, len(subs))
	for _, s := range subs {
		have[s] = true
	}
	// All 15 regions from the paper's Table 3 must be representable.
	for _, want := range []string{
		NorthernAmerica, WesternEurope, EasternAsia, SouthernEurope,
		NorthernEurope, SouthernAsia, SouthAmerica, AustraliaNZ,
		WesternAsia, SouthEasternAsia, EasternEurope, WesternAfrica,
		CentralAmerica, CentralAsia, NorthernAfrica,
	} {
		if !have[want] {
			t.Errorf("subregion %q missing from table", want)
		}
	}
	// Sorted output.
	for i := 1; i < len(subs); i++ {
		if subs[i] < subs[i-1] {
			t.Fatal("Subregions() not sorted")
		}
	}
}

func TestFromEmail(t *testing.T) {
	cases := []struct {
		email string
		want  string
		ok    bool
	}{
		{"alice@cs.reed.edu", "US", true},
		{"bob@ornl.gov", "US", true},
		{"eve@army.mil", "US", true},
		{"carol@inf.ethz.ch", "CH", true},
		{"dan@cs.tsinghua.edu.cn", "CN", true},
		{"erin@iitb.ac.in", "IN", true},
		{"frank@cam.ac.uk", "GB", true},
		{"grace@u-tokyo.ac.jp", "JP", true},
		{"heidi@us.ibm.com", "US", true}, // well-known domain, subdomain
		{"ivan@research.google.com", "US", true},
		{"judy@bsc.es", "ES", true},
		{"ken@inria.fr", "FR", true},
		{"lea@fz-juelich.de", "DE", true},
		{"mallory@gmail.com", "", false}, // generic, no signal
		{"nina@example.org", "", false},
		{"oscar@startup.io", "", false},
		{"no-at-sign", "", false},
		{"trailing@", "", false},
		{"peggy@kaust.edu.sa", "SA", true}, // well-known beats the .sa walk anyway
		{"quinn@unknown.zz", "", false},
	}
	for _, c := range cases {
		got, ok := FromEmail(c.email)
		if ok != c.ok || got != c.want {
			t.Errorf("FromEmail(%q) = (%q, %v), want (%q, %v)", c.email, got, ok, c.want, c.ok)
		}
	}
}

func TestFromDomain(t *testing.T) {
	if cc, ok := FromDomain("cea.fr."); !ok || cc != "FR" {
		t.Error("trailing-dot domain should resolve")
	}
	if _, ok := FromDomain("localhost"); ok {
		t.Error("single-label domain should not resolve")
	}
	if _, ok := FromDomain(""); ok {
		t.Error("empty domain should not resolve")
	}
	if cc, ok := FromDomain("ANL.GOV"); !ok || cc != "US" {
		t.Error("uppercase domain should resolve to US")
	}
}
