package countries

// all is the embedded country table. Subregions follow the UN M49 taxonomy
// as published in the mledoze/countries dataset the paper used. The set
// covers every country with HPC conference participation in the paper's
// corpus plus enough of the long tail for email-TLD resolution.
var all = []Country{
	// Northern America
	{"United States", "US", "USA", "us", "Americas", NorthernAmerica},
	{"Canada", "CA", "CAN", "ca", "Americas", NorthernAmerica},

	// Western Europe
	{"Germany", "DE", "DEU", "de", "Europe", WesternEurope},
	{"France", "FR", "FRA", "fr", "Europe", WesternEurope},
	{"Switzerland", "CH", "CHE", "ch", "Europe", WesternEurope},
	{"Netherlands", "NL", "NLD", "nl", "Europe", WesternEurope},
	{"Belgium", "BE", "BEL", "be", "Europe", WesternEurope},
	{"Austria", "AT", "AUT", "at", "Europe", WesternEurope},
	{"Luxembourg", "LU", "LUX", "lu", "Europe", WesternEurope},
	{"Monaco", "MC", "MCO", "mc", "Europe", WesternEurope},
	{"Liechtenstein", "LI", "LIE", "li", "Europe", WesternEurope},

	// Northern Europe
	{"United Kingdom", "GB", "GBR", "gb", "Europe", NorthernEurope},
	{"Ireland", "IE", "IRL", "ie", "Europe", NorthernEurope},
	{"Sweden", "SE", "SWE", "se", "Europe", NorthernEurope},
	{"Norway", "NO", "NOR", "no", "Europe", NorthernEurope},
	{"Denmark", "DK", "DNK", "dk", "Europe", NorthernEurope},
	{"Finland", "FI", "FIN", "fi", "Europe", NorthernEurope},
	{"Iceland", "IS", "ISL", "is", "Europe", NorthernEurope},
	{"Estonia", "EE", "EST", "ee", "Europe", NorthernEurope},
	{"Latvia", "LV", "LVA", "lv", "Europe", NorthernEurope},
	{"Lithuania", "LT", "LTU", "lt", "Europe", NorthernEurope},

	// Southern Europe
	{"Spain", "ES", "ESP", "es", "Europe", SouthernEurope},
	{"Italy", "IT", "ITA", "it", "Europe", SouthernEurope},
	{"Portugal", "PT", "PRT", "pt", "Europe", SouthernEurope},
	{"Greece", "GR", "GRC", "gr", "Europe", SouthernEurope},
	{"Slovenia", "SI", "SVN", "si", "Europe", SouthernEurope},
	{"Croatia", "HR", "HRV", "hr", "Europe", SouthernEurope},
	{"Serbia", "RS", "SRB", "rs", "Europe", SouthernEurope},
	{"Malta", "MT", "MLT", "mt", "Europe", SouthernEurope},

	// Eastern Europe
	{"Poland", "PL", "POL", "pl", "Europe", EasternEurope},
	{"Czechia", "CZ", "CZE", "cz", "Europe", EasternEurope},
	{"Russia", "RU", "RUS", "ru", "Europe", EasternEurope},
	{"Hungary", "HU", "HUN", "hu", "Europe", EasternEurope},
	{"Romania", "RO", "ROU", "ro", "Europe", EasternEurope},
	{"Bulgaria", "BG", "BGR", "bg", "Europe", EasternEurope},
	{"Slovakia", "SK", "SVK", "sk", "Europe", EasternEurope},
	{"Ukraine", "UA", "UKR", "ua", "Europe", EasternEurope},
	{"Belarus", "BY", "BLR", "by", "Europe", EasternEurope},

	// Eastern Asia
	{"China", "CN", "CHN", "cn", "Asia", EasternAsia},
	{"Japan", "JP", "JPN", "jp", "Asia", EasternAsia},
	{"South Korea", "KR", "KOR", "kr", "Asia", EasternAsia},
	{"Taiwan", "TW", "TWN", "tw", "Asia", EasternAsia},
	{"Hong Kong", "HK", "HKG", "hk", "Asia", EasternAsia},
	{"Mongolia", "MN", "MNG", "mn", "Asia", EasternAsia},
	{"Macau", "MO", "MAC", "mo", "Asia", EasternAsia},

	// Southern Asia
	{"India", "IN", "IND", "in", "Asia", SouthernAsia},
	{"Pakistan", "PK", "PAK", "pk", "Asia", SouthernAsia},
	{"Bangladesh", "BD", "BGD", "bd", "Asia", SouthernAsia},
	{"Sri Lanka", "LK", "LKA", "lk", "Asia", SouthernAsia},
	{"Iran", "IR", "IRN", "ir", "Asia", SouthernAsia},
	{"Nepal", "NP", "NPL", "np", "Asia", SouthernAsia},

	// South-Eastern Asia
	{"Singapore", "SG", "SGP", "sg", "Asia", SouthEasternAsia},
	{"Thailand", "TH", "THA", "th", "Asia", SouthEasternAsia},
	{"Malaysia", "MY", "MYS", "my", "Asia", SouthEasternAsia},
	{"Vietnam", "VN", "VNM", "vn", "Asia", SouthEasternAsia},
	{"Indonesia", "ID", "IDN", "id", "Asia", SouthEasternAsia},
	{"Philippines", "PH", "PHL", "ph", "Asia", SouthEasternAsia},

	// Western Asia
	{"Israel", "IL", "ISR", "il", "Asia", WesternAsia},
	{"Turkey", "TR", "TUR", "tr", "Asia", WesternAsia},
	{"Saudi Arabia", "SA", "SAU", "sa", "Asia", WesternAsia},
	{"United Arab Emirates", "AE", "ARE", "ae", "Asia", WesternAsia},
	{"Qatar", "QA", "QAT", "qa", "Asia", WesternAsia},
	{"Jordan", "JO", "JOR", "jo", "Asia", WesternAsia},
	{"Lebanon", "LB", "LBN", "lb", "Asia", WesternAsia},

	// Central Asia
	{"Kazakhstan", "KZ", "KAZ", "kz", "Asia", CentralAsia},
	{"Uzbekistan", "UZ", "UZB", "uz", "Asia", CentralAsia},

	// Australia and New Zealand
	{"Australia", "AU", "AUS", "au", "Oceania", AustraliaNZ},
	{"New Zealand", "NZ", "NZL", "nz", "Oceania", AustraliaNZ},

	// South America
	{"Brazil", "BR", "BRA", "br", "Americas", SouthAmerica},
	{"Argentina", "AR", "ARG", "ar", "Americas", SouthAmerica},
	{"Chile", "CL", "CHL", "cl", "Americas", SouthAmerica},
	{"Colombia", "CO", "COL", "co", "Americas", SouthAmerica},
	{"Uruguay", "UY", "URY", "uy", "Americas", SouthAmerica},
	{"Ecuador", "EC", "ECU", "ec", "Americas", SouthAmerica},
	{"Peru", "PE", "PER", "pe", "Americas", SouthAmerica},
	{"Venezuela", "VE", "VEN", "ve", "Americas", SouthAmerica},

	// Central America & Caribbean
	{"Mexico", "MX", "MEX", "mx", "Americas", CentralAmerica},
	{"Costa Rica", "CR", "CRI", "cr", "Americas", CentralAmerica},
	{"Panama", "PA", "PAN", "pa", "Americas", CentralAmerica},
	{"Guatemala", "GT", "GTM", "gt", "Americas", CentralAmerica},
	{"Cuba", "CU", "CUB", "cu", "Americas", CaribbeanRegion},
	{"Puerto Rico", "PR", "PRI", "pr", "Americas", CaribbeanRegion},

	// Africa
	{"Egypt", "EG", "EGY", "eg", "Africa", NorthernAfrica},
	{"Morocco", "MA", "MAR", "ma", "Africa", NorthernAfrica},
	{"Algeria", "DZ", "DZA", "dz", "Africa", NorthernAfrica},
	{"Tunisia", "TN", "TUN", "tn", "Africa", NorthernAfrica},
	{"Nigeria", "NG", "NGA", "ng", "Africa", WesternAfrica},
	{"Ghana", "GH", "GHA", "gh", "Africa", WesternAfrica},
	{"Senegal", "SN", "SEN", "sn", "Africa", WesternAfrica},
	{"South Africa", "ZA", "ZAF", "za", "Africa", SouthernAfrica},
	{"Kenya", "KE", "KEN", "ke", "Africa", EasternAfrica},
	{"Ethiopia", "ET", "ETH", "et", "Africa", EasternAfrica},
	{"Cameroon", "CM", "CMR", "cm", "Africa", MiddleAfrica},
}
