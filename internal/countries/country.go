// Package countries is an embedded replacement for the
// github.com/mledoze/countries dataset the paper combines with researcher
// affiliations: ISO-3166 country codes, country-code top-level domains, and
// the UN M49 region/subregion taxonomy that Table 3 of the paper aggregates
// by ("Northern America", "Western Europe", "Eastern Asia", ...).
//
// The embedded table covers every country that appears in HPC conference
// authorship in the paper's corpus plus the long tail needed for email-TLD
// resolution. Lookups are case-insensitive and indexed at package init.
package countries

import (
	"sort"
	"strings"
)

// Country is one ISO-3166 entry with the UN M49 geographic taxonomy.
type Country struct {
	Name      string // common English name, e.g. "United States"
	CCA2      string // ISO 3166-1 alpha-2, e.g. "US"
	CCA3      string // ISO 3166-1 alpha-3, e.g. "USA"
	TLD       string // country-code top-level domain, e.g. "us" (no dot)
	Region    string // UN M49 region, e.g. "Americas"
	Subregion string // UN M49 subregion, e.g. "Northern America"
}

// Subregion names as used by the paper's Table 3. "Australia and New
// Zealand" and "Central America" are genuine M49 subregions; the paper's
// "South America" row is the M49 subregion of the Americas.
const (
	NorthernAmerica  = "Northern America"
	WesternEurope    = "Western Europe"
	EasternAsia      = "Eastern Asia"
	SouthernEurope   = "Southern Europe"
	NorthernEurope   = "Northern Europe"
	SouthernAsia     = "Southern Asia"
	SouthAmerica     = "South America"
	AustraliaNZ      = "Australia and New Zealand"
	WesternAsia      = "Western Asia"
	SouthEasternAsia = "South-Eastern Asia"
	EasternEurope    = "Eastern Europe"
	WesternAfrica    = "Western Africa"
	CentralAmerica   = "Central America"
	CentralAsia      = "Central Asia"
	NorthernAfrica   = "Northern Africa"
	CaribbeanRegion  = "Caribbean"
	EasternAfrica    = "Eastern Africa"
	SouthernAfrica   = "Southern Africa"
	MiddleAfrica     = "Middle Africa"
)

var (
	byCCA2 = make(map[string]*Country)
	byCCA3 = make(map[string]*Country)
	byTLD  = make(map[string]*Country)
	byName = make(map[string]*Country)
)

func init() {
	for i := range all {
		c := &all[i]
		byCCA2[c.CCA2] = c
		byCCA3[c.CCA3] = c
		if c.TLD != "" {
			byTLD[c.TLD] = c
		}
		byName[strings.ToLower(c.Name)] = c
	}
}

// All returns a copy of the embedded country table, sorted by CCA2.
func All() []Country {
	out := append([]Country(nil), all...)
	sort.Slice(out, func(i, j int) bool { return out[i].CCA2 < out[j].CCA2 })
	return out
}

// ByCode looks up a country by ISO alpha-2 or alpha-3 code
// (case-insensitive). It also accepts the paper's "UK" alias for GB.
func ByCode(code string) (Country, bool) {
	code = strings.ToUpper(strings.TrimSpace(code))
	if code == "UK" { // the paper's Table 1 uses UK for ICPP's host country
		code = "GB"
	}
	if c, ok := byCCA2[code]; ok {
		return *c, true
	}
	if c, ok := byCCA3[code]; ok {
		return *c, true
	}
	return Country{}, false
}

// ByTLD looks up a country by its ccTLD (with or without the leading dot).
func ByTLD(tld string) (Country, bool) {
	tld = strings.ToLower(strings.TrimPrefix(strings.TrimSpace(tld), "."))
	if tld == "uk" { // .uk is the ccTLD in actual use for GB
		tld = "gb"
	}
	if c, ok := byTLD[tld]; ok {
		return *c, true
	}
	return Country{}, false
}

// ByName looks up a country by its common English name (case-insensitive).
func ByName(name string) (Country, bool) {
	if c, ok := byName[strings.ToLower(strings.TrimSpace(name))]; ok {
		return *c, true
	}
	return Country{}, false
}

// SubregionOf returns the UN subregion of an ISO code, or "" if unknown.
func SubregionOf(code string) string {
	c, ok := ByCode(code)
	if !ok {
		return ""
	}
	return c.Subregion
}

// Subregions returns the distinct subregions present in the table, sorted.
func Subregions() []string {
	set := make(map[string]bool)
	for i := range all {
		set[all[i].Subregion] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
