package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestCounterAddRejectsNegative(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5 (negative Add must be ignored)", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(10)
	g.Add(-4)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := newHistogram([]float64{1, 2, 5})
	for _, v := range []float64{0.5, 1.5, 1.7, 3, 10} {
		h.Observe(v)
	}
	if got := h.Count(); got != 5 {
		t.Fatalf("count = %d, want 5", got)
	}
	if got := h.Sum(); math.Abs(got-16.7) > 1e-9 {
		t.Fatalf("sum = %g, want 16.7", got)
	}
	cum, _, _ := h.snapshotCumulative()
	want := []int64{1, 3, 4, 5} // le=1, le=2, le=5, +Inf (cumulative)
	for i, w := range want {
		if cum[i] != w {
			t.Fatalf("cumulative bucket %d = %d, want %d (full: %v)", i, cum[i], w, cum)
		}
	}
}

func TestHistogramConcurrentSum(t *testing.T) {
	h := newHistogram([]float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if got := h.Count(); got != 4000 {
		t.Fatalf("count = %d, want 4000", got)
	}
	if got := h.Sum(); math.Abs(got-2000) > 1e-6 {
		t.Fatalf("sum = %g, want 2000", got)
	}
	h.ObserveDuration(1500 * time.Millisecond)
	if got := h.Sum(); math.Abs(got-2001.5) > 1e-6 {
		t.Fatalf("sum after ObserveDuration = %g, want 2001.5", got)
	}
}

// newFullRegistry builds a registry exercising every metric shape.
func newFullRegistry() *Registry {
	r := NewRegistry()
	r.Counter("demo_total", "a counter").Add(3)
	r.Gauge("demo_level", "a gauge").Set(-2)
	r.GaugeFunc("demo_ratio", "a derived gauge", func() float64 { return 0.25 })
	r.Histogram("demo_seconds", "a histogram", []float64{1, 2}).Observe(1.5)
	rv := r.CounterVec("demo_routes_total", "a labeled counter", "route", "code")
	rv.With("/v1/far", "200").Inc()
	rv.With("/v1/far", "200").Inc()
	rv.With("/healthz", "200").Inc()
	r.HistogramVec("demo_route_seconds", "a labeled histogram", []float64{1}, "route").With("/v1/far").Observe(0.5)
	return r
}

func TestWritePrometheusDeterministicAndComplete(t *testing.T) {
	r := newFullRegistry()
	var a, b bytes.Buffer
	if err := r.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two renders of the same state differ:\n%s\n---\n%s", a.String(), b.String())
	}
	for _, want := range []string{
		"# TYPE demo_total counter",
		"demo_total 3",
		"demo_level -2",
		"demo_ratio 0.25",
		`demo_routes_total{route="/healthz",code="200"} 1`,
		`demo_routes_total{route="/v1/far",code="200"} 2`,
		`demo_seconds_bucket{le="2"} 1`,
		`demo_seconds_bucket{le="+Inf"} 1`,
		"demo_seconds_sum 1.5",
		"demo_seconds_count 1",
		`demo_route_seconds_bucket{route="/v1/far",le="1"} 1`,
	} {
		if !strings.Contains(a.String(), want) {
			t.Errorf("exposition missing %q:\n%s", want, a.String())
		}
	}
}

func TestWriteVars(t *testing.T) {
	r := newFullRegistry()
	r.GaugeFunc("demo_nan", "NaN must encode as null", func() float64 { return math.NaN() })
	var buf bytes.Buffer
	if err := r.WriteVars(&buf); err != nil {
		t.Fatal(err)
	}
	var vars map[string]any
	if err := json.Unmarshal(buf.Bytes(), &vars); err != nil {
		t.Fatalf("WriteVars produced invalid JSON: %v\n%s", err, buf.String())
	}
	if got := vars["demo_total"]; got != float64(3) {
		t.Errorf("demo_total = %v, want 3", got)
	}
	if v, present := vars["demo_nan"]; !present || v != nil {
		t.Errorf("demo_nan = %v (present=%t), want null", v, present)
	}
	h, ok := vars["demo_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("demo_seconds = %T, want histogram object", vars["demo_seconds"])
	}
	if h["count"] != float64(1) {
		t.Errorf("demo_seconds.count = %v, want 1", h["count"])
	}
}

func TestRegistrationIsIdempotent(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("same", "help")
	a.Inc()
	b := r.Counter("same", "help")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instance")
	}
	if b.Value() != 1 {
		t.Fatalf("value = %d, want 1", b.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("clash", "help")
}

func TestLabelCountMismatchPanics(t *testing.T) {
	v := NewRegistry().CounterVec("vec_total", "help", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("With with the wrong label count did not panic")
		}
	}()
	v.With("only-one")
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "help", "v").With("a\"b\\c\nd").Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{v="a\"b\\c\nd"} 1`
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("escaped series %q missing from:\n%s", want, buf.String())
	}
}
