// Package obs is whpcd's observability core: a dependency-free metrics
// registry with atomic counters, gauges, and latency histograms, exposed in
// Prometheus text format at /metrics and as JSON at /debug/vars. The
// registry follows the same discipline as the rest of the reproduction:
// exposition output is byte-deterministic for a given metric state (families
// and series render in sorted order), no metric ever reads the wall clock
// (durations are observed by the caller, who times requests through an
// injected resilience.Clock), and collection never executes callbacks or
// blocks while a lock is held.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefBuckets are the default latency histogram bucket upper bounds, in
// seconds, spanning cache hits (~µs) through cold harvested-study
// materialization (~s).
var DefBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// Counter is a monotonically increasing integer metric. The zero value is
// usable; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an integer metric that can go up and down (in-flight requests,
// resident cache entries). The zero value is usable.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the gauge by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution metric in the Prometheus style:
// per-bucket observation counts plus a running sum and total count.
// Observations are lock-free (atomics only).
type Histogram struct {
	bounds []float64      // sorted upper bounds; an implicit +Inf bucket follows
	counts []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, updated by CAS
	count  atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value (for latencies: seconds).
func (h *Histogram) Observe(v float64) {
	idx := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[idx].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// snapshotCumulative returns the cumulative per-bucket counts (Prometheus
// bucket semantics), the sum, and the count.
func (h *Histogram) snapshotCumulative() ([]int64, float64, int64) {
	out := make([]int64, len(h.counts))
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		out[i] = cum
	}
	return out, h.Sum(), h.count.Load()
}

// metric kinds, used for exposition and for catching a name registered
// twice under different kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is all series sharing one metric name.
type family struct {
	name   string
	help   string
	kind   string
	labels []string // label names; empty for single-series families

	mu     sync.Mutex
	series map[string]any // label-pair key ("" for unlabeled) -> *Counter/*Gauge/*Histogram/func() float64

	// bounds configures histogram families; nil otherwise.
	bounds []float64
}

// getOrCreate returns the series for key, creating it with mk on first use.
// mk runs before the lock is taken (a losing speculative allocation is
// dropped), so no caller-supplied code ever executes under the family lock.
func (f *family) getOrCreate(key string, mk func() any) any {
	fresh := mk()
	f.mu.Lock()
	m, ok := f.series[key]
	if !ok {
		m = fresh
		f.series[key] = m
	}
	f.mu.Unlock()
	return m
}

// Registry holds named metric families. The zero value is not usable;
// construct with NewRegistry. All methods are safe for concurrent use, and
// re-registering an existing name with the same kind returns the existing
// metric (registration is idempotent, so request paths can look metrics up
// by name without plumbing).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// familyFor returns the named family, creating it on first registration and
// panicking when the name is reused with a different kind or label set (a
// programming error that would corrupt the exposition).
func (r *Registry) familyFor(name, help, kind string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.fams[name]
	if !ok {
		f = &family{
			name: name, help: help, kind: kind,
			labels: append([]string(nil), labels...),
			series: make(map[string]any),
			bounds: append([]float64(nil), bounds...),
		}
		r.fams[name] = f
		return f
	}
	if f.kind != kind || len(f.labels) != len(labels) {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s(%d labels), was %s(%d labels)",
			name, kind, len(labels), f.kind, len(f.labels)))
	}
	return f
}

// Counter registers (or returns) the unlabeled counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.familyFor(name, help, kindCounter, nil, nil)
	return f.getOrCreate("", func() any { return new(Counter) }).(*Counter)
}

// Gauge registers (or returns) the unlabeled gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.familyFor(name, help, kindGauge, nil, nil)
	return f.getOrCreate("", func() any { return new(Gauge) }).(*Gauge)
}

// GaugeFunc registers a gauge whose value is computed at scrape time (e.g.
// a cache hit ratio derived from two counters). fn must be safe for
// concurrent use; it is invoked with no registry locks held.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.familyFor(name, help, kindGauge, nil, nil)
	f.getOrCreate("", func() any { return fn })
}

// Histogram registers (or returns) the unlabeled histogram with the given
// bucket upper bounds (nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.familyFor(name, help, kindHistogram, nil, bounds)
	return f.getOrCreate("", func() any { return newHistogram(bounds) }).(*Histogram)
}

// CounterVec is a counter family partitioned by labels.
type CounterVec struct {
	fam *family
}

// CounterVec registers (or returns) a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.familyFor(name, help, kindCounter, labels, nil)}
}

// With returns the counter for the given label values (one per label name,
// in declaration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	key := labelKey(v.fam.labels, values)
	return v.fam.getOrCreate(key, func() any { return new(Counter) }).(*Counter)
}

// HistogramVec is a histogram family partitioned by labels.
type HistogramVec struct {
	fam *family
}

// HistogramVec registers (or returns) a labeled histogram family with the
// given bucket upper bounds (nil means DefBuckets).
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{fam: r.familyFor(name, help, kindHistogram, labels, bounds)}
}

// With returns the histogram for the given label values, creating it on
// first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := labelKey(v.fam.labels, values)
	return v.fam.getOrCreate(key, func() any { return newHistogram(v.fam.bounds) }).(*Histogram)
}

// labelKey renders label pairs as `name="value",...` (no surrounding
// braces; exposition adds those, splicing in the histogram "le" label when
// needed). The number of values must match the declared label names.
func labelKey(names, values []string) string {
	if len(names) != len(values) {
		panic(fmt.Sprintf("obs: %d label values for %d label names", len(values), len(names)))
	}
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	return b.String()
}

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// snapshot copies the family and series structure under the locks, so
// rendering (including GaugeFunc calls) runs lock-free afterwards.
func (r *Registry) snapshot() []*famSnap {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	out := make([]*famSnap, 0, len(fams))
	for _, f := range fams {
		s := &famSnap{name: f.name, help: f.help, kind: f.kind, bounds: f.bounds}
		f.mu.Lock()
		for key, m := range f.series {
			s.series = append(s.series, seriesSnap{key: key, metric: m})
		}
		f.mu.Unlock()
		sort.Slice(s.series, func(i, j int) bool { return s.series[i].key < s.series[j].key })
		out = append(out, s)
	}
	return out
}

// famSnap is a point-in-time copy of one family's series set (the metric
// values themselves are read during rendering, after every lock is
// released).
type famSnap struct {
	name, help, kind string
	bounds           []float64
	series           []seriesSnap
}

type seriesSnap struct {
	key    string
	metric any
}
