package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Families render in name order and
// series in label order, so two scrapes of the same metric state are
// byte-identical. GaugeFunc values are computed here, with no locks held.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series of one family.
func writeSeries(w io.Writer, f *famSnap, s seriesSnap) error {
	switch m := s.metric.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.key), m.Value())
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, braced(s.key), m.Value())
		return err
	case func() float64:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, braced(s.key), ftoa(m()))
		return err
	case *Histogram:
		buckets, sum, count := m.snapshotCumulative()
		for i, c := range buckets {
			le := "+Inf"
			if i < len(f.bounds) {
				le = ftoa(f.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, bracedWith(s.key, `le="`+le+`"`), c); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, braced(s.key), ftoa(sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, braced(s.key), count)
		return err
	default:
		return fmt.Errorf("obs: unknown metric type %T in family %s", s.metric, f.name)
	}
}

// braced wraps a non-empty label-pair key in braces.
func braced(key string) string {
	if key == "" {
		return ""
	}
	return "{" + key + "}"
}

// bracedWith wraps key plus one extra label pair in braces.
func bracedWith(key, extra string) string {
	if key == "" {
		return "{" + extra + "}"
	}
	return "{" + key + "," + extra + "}"
}

func ftoa(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteVars renders the registry as a JSON object in the spirit of
// expvar's /debug/vars: one key per series ("name" or "name{labels}"),
// histograms as {count, sum, buckets} objects. encoding/json sorts object
// keys, so the output is deterministic for a given metric state.
func (r *Registry) WriteVars(w io.Writer) error {
	vars := make(map[string]any)
	for _, f := range r.snapshot() {
		for _, s := range f.series {
			key := f.name + braced(s.key)
			switch m := s.metric.(type) {
			case *Counter:
				vars[key] = m.Value()
			case *Gauge:
				vars[key] = m.Value()
			case func() float64:
				vars[key] = jsonFloat(m())
			case *Histogram:
				buckets, sum, count := m.snapshotCumulative()
				bs := make(map[string]int64, len(buckets))
				for i, c := range buckets {
					le := "+Inf"
					if i < len(f.bounds) {
						le = ftoa(f.bounds[i])
					}
					bs[le] = c
				}
				vars[key] = map[string]any{"count": count, "sum": jsonFloat(sum), "buckets": bs}
			}
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(vars)
}

// jsonFloat maps NaN and infinities (unrepresentable in JSON) to nil.
func jsonFloat(v float64) any {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return nil
	}
	return v
}

// Handler serves the Prometheus text exposition (for /metrics).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := r.WritePrometheus(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// VarsHandler serves the JSON exposition (for /debug/vars).
func (r *Registry) VarsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteVars(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
