package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmpAnalyzer flags ==/!= between floating-point operands and switch
// statements on a float tag in the statistics packages. Raw float equality
// makes exhibit output depend on rounding: a variance that is mathematically
// zero can land at 1e-17 on one platform and 0 on another, flipping a
// degenerate-case guard and with it a table cell. Callers should use the
// stats epsilon helpers (AlmostZero/AlmostEqual) or annotate genuinely exact
// IEEE boundary checks with //whpcvet:ignore floatcmp <reason>.
//
// The NaN self-test idiom `x != x` is recognized and not flagged.
func FloatCmpAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "floatcmp",
		Doc:   "flag ==/!= and switch on floating-point operands in internal/stats, internal/core, internal/query and internal/snap",
		Scope: []string{"internal/stats", "internal/core", "internal/query", "internal/snap"},
		Run:   runFloatCmp,
	}
}

func runFloatCmp(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				xt, yt := p.Info.Types[n.X], p.Info.Types[n.Y]
				if xt.Type == nil || yt.Type == nil {
					return true
				}
				if !isFloat(xt.Type) && !isFloat(yt.Type) {
					return true
				}
				// Both sides constant: folded at compile time, exact by
				// construction.
				if xt.Value != nil && yt.Value != nil {
					return true
				}
				// The NaN idiom compares an expression with itself.
				if types.ExprString(n.X) == types.ExprString(n.Y) {
					return true
				}
				p.Report(n, "raw float %s comparison; use an epsilon helper (AlmostEqual/AlmostZero) or annotate the exact check", n.Op)
			case *ast.SwitchStmt:
				if n.Tag == nil {
					return true
				}
				if t := p.TypeOf(n.Tag); t != nil && isFloat(t) {
					p.Report(n, "switch on floating-point tag compares floats exactly; rewrite with epsilon comparisons")
				}
			}
			return true
		})
	}
}
