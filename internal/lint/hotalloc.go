package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/flow"
)

// HotAllocAnalyzer returns the hotalloc rule: functions carrying a
// //whpcvet:hot marker in their doc comment — the query kernels, bitmap
// filters and snapshot decoders — must not allocate per loop iteration. An
// allocation that is invisible in a code review is a GC pause at a million
// rows; the paper's "fast as the hardware allows" claim is kernels that
// touch memory they preallocated and nothing else.
//
// Inside any loop of a hot function the rule flags:
//
//   - make/new calls and slice, map or &struct composite literals;
//   - append into a slice that was not preallocated with a capacity in this
//     function (targets rooted at parameters or fields are skipped — their
//     ownership is the caller's contract);
//   - string concatenation and string/[]byte/[]rune conversions (except a
//     conversion used directly as a map index, which the compiler keeps
//     allocation-free);
//   - function literals (a closure allocates its environment);
//   - arguments boxed into interface parameters;
//   - calls to same-package functions that allocate on every path, per the
//     bottom-up MustReach summary over the call graph — so hiding the make
//     one call down does not hide it from the rule.
//
// Amortized or once-per-group allocations that are deliberate get an
// annotated ignore; everything else gets hoisted.
func HotAllocAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "hotalloc",
		Doc:  "functions marked //whpcvet:hot must not allocate per loop iteration",
		Run:  runHotAlloc,
	}
}

const hotMarker = "//whpcvet:hot"

// hotMarked reports whether the declaration's doc comment carries the
// marker.
func hotMarked(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if c.Text == hotMarker || strings.HasPrefix(c.Text, hotMarker+" ") {
			return true
		}
	}
	return false
}

func runHotAlloc(p *Pass) {
	var hot []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && hotMarked(fd) {
				hot = append(hot, fd)
			}
		}
	}
	if len(hot) == 0 {
		return
	}
	cg := flow.BuildCallGraph(p.Files, p.Info)
	mustAlloc := cg.MustReach(func(_ *flow.FuncInfo, n ast.Node) bool {
		return allocExpr(p, n)
	})
	for _, fd := range hot {
		fi := cg.FuncOf(funcObj(p.Info, fd))
		h := &hotWalker{p: p, fi: fi, mustAlloc: mustAlloc, exempt: make(map[ast.Node]bool)}
		h.walk(fd.Body, 0)
	}
}

// allocExpr reports whether n unconditionally allocates: the predicate
// behind the MustReach summary. Value struct literals are excluded — they
// usually live on the stack — as are closures, which NodeContains already
// skips.
func allocExpr(p *Pass, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
			switch id.Name {
			case "make", "new", "append":
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					return true
				}
			}
		}
		if tv, ok := p.Info.Types[n.Fun]; ok && tv.IsType() {
			return allocConversion(p, n)
		}
	case *ast.BinaryExpr:
		return n.Op == token.ADD && isStringType(p.TypeOf(n.X))
	case *ast.AssignStmt:
		return n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(p.TypeOf(n.Lhs[0]))
	case *ast.UnaryExpr:
		if n.Op == token.AND {
			_, ok := ast.Unparen(n.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CompositeLit:
		t := p.TypeOf(n)
		if t == nil {
			return false
		}
		switch types.Unalias(t).Underlying().(type) {
		case *types.Slice, *types.Map:
			return true
		}
	}
	return false
}

// allocConversion reports whether the conversion call allocates: to or from
// string and byte/rune slices.
func allocConversion(p *Pass, call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	to := p.TypeOf(call)
	from := p.TypeOf(call.Args[0])
	return (isStringType(to) && isByteishSlice(from)) || (isByteishSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteishSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := types.Unalias(s.Elem()).Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// hotWalker reports per-iteration allocations inside one hot function.
type hotWalker struct {
	p         *Pass
	fi        *flow.FuncInfo
	mustAlloc map[*flow.FuncInfo]bool
	exempt    map[ast.Node]bool
}

func (h *hotWalker) walk(n ast.Node, depth int) {
	switch n := n.(type) {
	case nil:
		return
	case *ast.ForStmt:
		if n.Init != nil {
			h.walk(n.Init, depth)
		}
		if n.Cond != nil {
			h.walk(n.Cond, depth+1) // the condition re-evaluates per iteration
		}
		if n.Post != nil {
			h.walk(n.Post, depth+1)
		}
		h.walk(n.Body, depth+1)
		return
	case *ast.RangeStmt:
		h.walk(n.X, depth)
		h.walk(n.Body, depth+1)
		return
	case *ast.FuncLit:
		if depth > 0 {
			h.p.Report(n, "closure allocated per iteration; hoist the function value out of the loop")
		}
		return // the literal body is its own function
	case *ast.IndexExpr:
		// A conversion used directly as a map index is allocation-free.
		if t := h.p.TypeOf(n.X); t != nil {
			if _, isMap := types.Unalias(t).Underlying().(*types.Map); isMap {
				if call, ok := ast.Unparen(n.Index).(*ast.CallExpr); ok {
					if tv, ok := h.p.Info.Types[call.Fun]; ok && tv.IsType() {
						h.exempt[call] = true
					}
				}
			}
		}
	case *ast.UnaryExpr:
		if depth > 0 && n.Op == token.AND {
			if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
				h.p.Report(n, "allocates a %s per iteration; hoist it or reuse a scratch value", typeLabel(h.p, n.X))
				return // the inner literal is part of this report
			}
		}
	case *ast.CompositeLit:
		if depth > 0 {
			t := h.p.TypeOf(n)
			if t != nil {
				switch types.Unalias(t).Underlying().(type) {
				case *types.Slice, *types.Map:
					h.p.Report(n, "allocates a %s literal per iteration; hoist it out of the loop", typeLabel(h.p, n))
				}
			}
		}
	case *ast.BinaryExpr:
		if depth > 0 && n.Op == token.ADD && isStringType(h.p.TypeOf(n.X)) {
			h.p.Report(n, "concatenates strings per iteration; use a preallocated []byte or strings.Builder outside the loop")
		}
	case *ast.AssignStmt:
		if depth > 0 && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(h.p.TypeOf(n.Lhs[0])) {
			h.p.Report(n, "concatenates strings per iteration; use a preallocated []byte or strings.Builder outside the loop")
		}
	case *ast.CallExpr:
		if depth > 0 {
			h.checkCall(n)
		}
	}
	children(n, func(c ast.Node) { h.walk(c, depth) })
}

func (h *hotWalker) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := h.p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new":
				h.p.Report(call, "calls %s per iteration; hoist the allocation out of the loop", id.Name)
			case "append":
				h.checkAppend(call)
			}
			return
		}
	}
	if tv, ok := h.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if !h.exempt[call] && allocConversion(h.p, call) {
			h.p.Report(call, "conversion allocates per iteration; keep one representation through the loop")
		}
		return
	}
	h.checkBoxing(call)
	if h.fi == nil {
		return
	}
	if rec := h.fi.CallAt(call); rec != nil && !rec.Go && rec.Callee != nil && rec.Callee.Decl != nil && h.mustAlloc[rec.Callee] {
		h.p.Report(call, "calls %s, which allocates on every path, per iteration; hoist the allocation or restructure the callee", rec.Callee.Name())
	}
}

// checkAppend flags append targets that provably grow: locals declared in
// this function without a capacity. Parameters, fields and anything else
// whose backing array the caller owns are skipped.
func (h *hotWalker) checkAppend(call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	id, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return // fields, index expressions: ownership unknown, skip
	}
	obj := h.p.Info.Uses[id]
	if obj == nil {
		return
	}
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	switch h.localSliceOrigin(obj) {
	case originPrealloc, originUnknown:
		return
	}
	h.p.Report(call, "append grows %s per iteration without preallocated capacity; size it with make(..., 0, n) before the loop", id.Name)
}

type sliceOrigin int

const (
	originUnknown sliceOrigin = iota
	originPrealloc
	originGrowing
)

// localSliceOrigin classifies how a local slice variable was created:
// make with an explicit capacity counts as preallocated; a bare var
// declaration, empty literal, or capacity-less make counts as growing.
func (h *hotWalker) localSliceOrigin(obj types.Object) sliceOrigin {
	if h.fi == nil || h.fi.Body == nil {
		return originUnknown
	}
	origin := originUnknown
	inspectSkippingLits(h.fi.Body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return
			}
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || h.p.Info.Defs[lid] != obj {
					continue
				}
				if i < len(n.Rhs) {
					origin = classifyRHS(h.p, n.Rhs[i])
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if h.p.Info.Defs[name] != obj {
						continue
					}
					if i < len(vs.Values) {
						origin = classifyRHS(h.p, vs.Values[i])
					} else {
						origin = originGrowing // var x []T
					}
				}
			}
		}
	})
	return origin
}

func classifyRHS(p *Pass, rhs ast.Expr) sliceOrigin {
	switch rhs := ast.Unparen(rhs).(type) {
	case *ast.CallExpr:
		if id, ok := ast.Unparen(rhs.Fun).(*ast.Ident); ok && id.Name == "make" {
			if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
				if len(rhs.Args) >= 3 {
					return originPrealloc
				}
				return originGrowing
			}
		}
	case *ast.CompositeLit:
		if len(rhs.Elts) == 0 {
			return originGrowing
		}
	}
	return originUnknown
}

// checkBoxing flags concrete values passed where the callee takes an
// interface: each such argument escapes to the heap per iteration.
func (h *hotWalker) checkBoxing(call *ast.CallExpr) {
	ft := h.p.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := types.Unalias(ft).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	n := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= n-1:
			if s, ok := types.Unalias(params.At(n - 1).Type()).Underlying().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < n:
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := types.Unalias(pt).Underlying().(*types.Interface); !isIface {
			continue
		}
		at := h.p.TypeOf(arg)
		if at == nil || at == types.Typ[types.UntypedNil] {
			continue
		}
		if b, ok := types.Unalias(at).Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, argIface := types.Unalias(at).Underlying().(*types.Interface); argIface {
			continue
		}
		if _, isPtr := types.Unalias(at).Underlying().(*types.Pointer); isPtr {
			continue // pointers fit in an interface word; no boxing copy
		}
		h.p.Report(arg, "boxes a %s into an interface per iteration; take a concrete type or hoist the call", at.String())
	}
}

// typeLabel renders a short type name for a message.
func typeLabel(p *Pass, e ast.Expr) string {
	t := p.TypeOf(e)
	if t == nil {
		return "value"
	}
	return types.TypeString(t, func(pkg *types.Package) string { return pkg.Name() })
}
