// Package lint is whpcvet's analysis engine: a stdlib-only static-analysis
// suite that machine-checks the invariants the reproduction's exhibits rest
// on. The paper's artifact promises byte-identical reports for a given seed
// at any worker count; that promise dies quietly the moment analysis code
// reads the wall clock, consults the global math/rand source, lets Go's
// randomized map-iteration order leak into a report, or compares floats for
// raw equality. Each of those hazards is a rule here, implemented on
// go/parser + go/ast + go/types + go/token with no external dependencies.
//
// Findings can be suppressed at a single line with an annotation naming the
// rule and a mandatory reason:
//
//	x := time.Now() //whpcvet:ignore determinism wall clock feeds log line only
//
// or, on the line immediately above the offending one:
//
//	//whpcvet:ignore floatcmp exact IEEE boundary case, not a tolerance check
//	if p == 0.5 { ...
//
// A bare annotation with no reason is itself reported: the acceptance bar
// for the reproduction is that every suppression is auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer, positioned at the
// offending token so editors and CI logs can jump straight to it.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Rule)
}

// Analyzer is one named rule. Run inspects a type-checked package and
// reports findings through the pass; the driver decides which packages each
// analyzer sees via Scope and Exempt.
type Analyzer struct {
	// Name is the rule identifier used in findings, -rules output and
	// ignore annotations.
	Name string
	// Doc is a one-line description printed by cmd/whpcvet -rules.
	Doc string
	// Scope limits the analyzer to packages whose import path matches one
	// of these patterns (see scopeMatch). Empty means every package.
	Scope []string
	// Exempt removes matching packages even when Scope matches; e.g. the
	// determinism rule exempts internal/resilience, the one package allowed
	// to touch the wall clock.
	Exempt []string
	// Run performs the analysis.
	Run func(*Pass)
}

// AppliesTo reports whether the analyzer should run on the package with the
// given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	for _, pat := range a.Exempt {
		if scopeMatch(pkgPath, pat) {
			return false
		}
	}
	if len(a.Scope) == 0 {
		return true
	}
	for _, pat := range a.Scope {
		if scopeMatch(pkgPath, pat) {
			return true
		}
	}
	return false
}

// scopeMatch reports whether pkgPath matches pattern. A pattern matches the
// identical import path, or a path that ends with "/"+pattern, so
// "internal/report" matches "repro/internal/report" regardless of module
// name.
func scopeMatch(pkgPath, pattern string) bool {
	return pkgPath == pattern || strings.HasSuffix(pkgPath, "/"+pattern)
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Pkg is the checked package; PkgPath is its import path (also
	// available as Pkg.Path(), duplicated for convenience).
	Pkg     *types.Package
	PkgPath string
	Info    *types.Info

	findings *[]Finding
	rule     string
}

// Report records a finding at the position of n.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	pos := p.Fset.Position(n.Pos())
	*p.findings = append(*p.findings, Finding{
		Rule:    p.rule,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Analyzers returns the full rule registry in display order. The slice is
// freshly allocated; callers may filter it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		MapOrderAnalyzer(),
		FloatCmpAnalyzer(),
		ErrCheckAnalyzer(),
		LockSafeAnalyzer(),
		ExhibitDocAnalyzer(),
	}
}

// AnalyzerByName returns the registered analyzer with the given name, or
// nil if no rule has that name.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Vet runs every analyzer over every package it applies to, filters
// suppressed findings via //whpcvet:ignore annotations, and returns the
// surviving findings sorted by position. Malformed or unused-reason
// annotations are themselves reported under the "ignore" pseudo-rule.
func Vet(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				PkgPath:  pkg.Path,
				Info:     pkg.Info,
				findings: &findings,
				rule:     a.Name,
			}
			a.Run(pass)
		}
		findings = append(findings, suppress(pkg, &findings)...)
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return findings
}

// ignoreDirective is one parsed //whpcvet:ignore annotation.
type ignoreDirective struct {
	rules  []string
	reason string
	line   int
	file   string
	pos    token.Pos
}

const ignorePrefix = "//whpcvet:ignore"

// parseIgnores extracts every annotation from the package's comments,
// keyed by file name.
func parseIgnores(pkg *Package) map[string][]ignoreDirective {
	out := make(map[string][]ignoreDirective)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				pos := pkg.Fset.Position(c.Pos())
				d := ignoreDirective{line: pos.Line, file: pos.Filename, pos: c.Pos()}
				fields := strings.Fields(rest)
				if len(fields) > 0 {
					d.rules = strings.Split(fields[0], ",")
					d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
				}
				out[pos.Filename] = append(out[pos.Filename], d)
			}
		}
	}
	return out
}

// suppress removes findings covered by a well-formed annotation on the same
// line or the line immediately above, rewriting *findings in place. It
// returns extra findings for malformed annotations (no rule, unknown rule,
// or missing reason).
func suppress(pkg *Package, findings *[]Finding) []Finding {
	ignores := parseIgnores(pkg)
	if len(ignores) == 0 {
		return nil
	}
	var extra []Finding
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	valid := make(map[string][]ignoreDirective)
	for file, ds := range ignores {
		for _, d := range ds {
			switch {
			case len(d.rules) == 0:
				extra = append(extra, Finding{
					Rule: "ignore", File: d.file, Line: d.line, Col: 1,
					Message: "whpcvet:ignore names no rule",
				})
			case d.reason == "":
				extra = append(extra, Finding{
					Rule: "ignore", File: d.file, Line: d.line, Col: 1,
					Message: fmt.Sprintf("whpcvet:ignore %s has no reason; every suppression must say why", strings.Join(d.rules, ",")),
				})
			default:
				bad := false
				for _, r := range d.rules {
					if !known[r] {
						extra = append(extra, Finding{
							Rule: "ignore", File: d.file, Line: d.line, Col: 1,
							Message: fmt.Sprintf("whpcvet:ignore names unknown rule %q", r),
						})
						bad = true
					}
				}
				if !bad {
					valid[file] = append(valid[file], d)
				}
			}
		}
	}
	kept := (*findings)[:0]
	for _, f := range *findings {
		if !suppressed(f, valid[f.File]) {
			kept = append(kept, f)
		}
	}
	*findings = kept
	return extra
}

// suppressed reports whether a directive in ds covers finding f: the
// directive names f's rule and sits on f's line or the line above it.
func suppressed(f Finding, ds []ignoreDirective) bool {
	for _, d := range ds {
		if d.line != f.Line && d.line != f.Line-1 {
			continue
		}
		for _, r := range d.rules {
			if r == f.Rule {
				return true
			}
		}
	}
	return false
}
