// Package lint is whpcvet's analysis engine: a stdlib-only static-analysis
// suite that machine-checks the invariants the reproduction's exhibits rest
// on. The paper's artifact promises byte-identical reports for a given seed
// at any worker count; that promise dies quietly the moment analysis code
// reads the wall clock, consults the global math/rand source, lets Go's
// randomized map-iteration order leak into a report, or compares floats for
// raw equality. Each of those hazards is a rule here, implemented on
// go/parser + go/ast + go/types + go/token with no external dependencies.
//
// Findings can be suppressed at a single line with an annotation naming the
// rule and a mandatory reason:
//
//	x := time.Now() //whpcvet:ignore determinism wall clock feeds log line only
//
// or, on the line immediately above the offending one:
//
//	//whpcvet:ignore floatcmp exact IEEE boundary case, not a tolerance check
//	if p == 0.5 { ...
//
// A bare annotation with no reason is itself reported: the acceptance bar
// for the reproduction is that every suppression is auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Finding is one diagnostic produced by an analyzer, positioned at the
// offending token so editors and CI logs can jump straight to it.
type Finding struct {
	Rule    string `json:"rule"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the finding in the conventional file:line:col style.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s [%s]", f.File, f.Line, f.Col, f.Message, f.Rule)
}

// Analyzer is one named rule. Run inspects a type-checked package and
// reports findings through the pass; the driver decides which packages each
// analyzer sees via Scope and Exempt.
type Analyzer struct {
	// Name is the rule identifier used in findings, -rules output and
	// ignore annotations.
	Name string
	// Doc is a one-line description printed by cmd/whpcvet -rules.
	Doc string
	// Scope limits the analyzer to packages whose import path matches one
	// of these patterns (see scopeMatch). Empty means every package.
	Scope []string
	// Exempt removes matching packages even when Scope matches; e.g. the
	// determinism rule exempts internal/resilience, the one package allowed
	// to touch the wall clock.
	Exempt []string
	// Run performs a per-package analysis; nil for module-level rules.
	Run func(*Pass)
	// RunModule performs a whole-module analysis over every loaded package
	// at once — for rules like chaoscover that must cross-reference
	// declarations in one package against uses in another. Scope/Exempt do
	// not gate module rules; they see all packages and filter internally.
	RunModule func(*ModulePass)
}

// AppliesTo reports whether the analyzer should run on the package with the
// given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	for _, pat := range a.Exempt {
		if scopeMatch(pkgPath, pat) {
			return false
		}
	}
	if len(a.Scope) == 0 {
		return true
	}
	for _, pat := range a.Scope {
		if scopeMatch(pkgPath, pat) {
			return true
		}
	}
	return false
}

// scopeMatch reports whether pkgPath matches pattern. A pattern matches the
// identical import path, or a path that ends with "/"+pattern, so
// "internal/report" matches "repro/internal/report" regardless of module
// name. A pattern ending in "/*" matches every package under that directory:
// "cmd/*" covers "repro/cmd/whpcd" and any other command.
func scopeMatch(pkgPath, pattern string) bool {
	if strings.HasSuffix(pattern, "/*") {
		prefix := pattern[:len(pattern)-1] // keep the trailing slash
		return strings.HasPrefix(pkgPath, prefix) || strings.Contains(pkgPath, "/"+prefix)
	}
	return pkgPath == pattern || strings.HasSuffix(pkgPath, "/"+pattern)
}

// Pass hands one type-checked package to one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	// Pkg is the checked package; PkgPath is its import path (also
	// available as Pkg.Path(), duplicated for convenience).
	Pkg     *types.Package
	PkgPath string
	Info    *types.Info

	findings *[]Finding
	rule     string
}

// Report records a finding at the position of n.
func (p *Pass) Report(n ast.Node, format string, args ...any) {
	pos := p.Fset.Position(n.Pos())
	*p.findings = append(*p.findings, Finding{
		Rule:    p.rule,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when the checker recorded none.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// ModulePass hands every loaded package to one module-level analyzer.
type ModulePass struct {
	Pkgs []*Package

	findings *[]Finding
	rule     string
}

// Report records a finding at the position of n, which must belong to pkg.
func (p *ModulePass) Report(pkg *Package, n ast.Node, format string, args ...any) {
	pos := pkg.Fset.Position(n.Pos())
	*p.findings = append(*p.findings, Finding{
		Rule:    p.rule,
		File:    pos.Filename,
		Line:    pos.Line,
		Col:     pos.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full rule registry in display order. The slice is
// freshly allocated; callers may filter it.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer(),
		MapOrderAnalyzer(),
		FloatCmpAnalyzer(),
		ErrCheckAnalyzer(),
		LockSafeAnalyzer(),
		ExhibitDocAnalyzer(),
		CtxFlowAnalyzer(),
		GoroLeakAnalyzer(),
		HotAllocAnalyzer(),
		ChaosCoverAnalyzer(),
		StaleIgnoreAnalyzer(),
	}
}

// AnalyzerByName returns the registered analyzer with the given name, or
// nil if no rule has that name.
func AnalyzerByName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Vet runs every analyzer over every package it applies to, filters
// suppressed findings via //whpcvet:ignore annotations, and returns the
// surviving findings sorted by position. Malformed annotations are
// themselves reported under the "ignore" pseudo-rule, and — when the
// staleignore rule is among the analyzers — well-formed annotations that no
// longer suppress anything are reported under "staleignore".
//
// Packages are analyzed concurrently, up to GOMAXPROCS at a time. The
// output is deterministic regardless of parallelism: per-package findings
// are produced by a single goroutine in analyzer order, collected per
// package index, and merged with a stable (file, line, col, rule) sort.
func Vet(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var perPkg, module []*Analyzer
	active := make(map[string]bool)
	for _, a := range analyzers {
		active[a.Name] = true
		switch {
		case a.Run != nil:
			perPkg = append(perPkg, a)
		case a.RunModule != nil:
			module = append(module, a)
		}
	}

	results := make([][]Finding, len(pkgs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(pkgs) {
		workers = len(pkgs)
	}
	if workers < 1 {
		workers = 1
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				pkg := pkgs[i]
				for _, a := range perPkg {
					if !a.AppliesTo(pkg.Path) {
						continue
					}
					pass := &Pass{
						Fset:     pkg.Fset,
						Files:    pkg.Files,
						Pkg:      pkg.Types,
						PkgPath:  pkg.Path,
						Info:     pkg.Info,
						findings: &results[i],
						rule:     a.Name,
					}
					a.Run(pass)
				}
			}
		}()
	}
	for i := range pkgs {
		idx <- i
	}
	close(idx)
	wg.Wait()

	var findings []Finding
	for _, fs := range results {
		findings = append(findings, fs...)
	}
	for _, a := range module {
		mp := &ModulePass{Pkgs: pkgs, findings: &findings, rule: a.Name}
		a.RunModule(mp)
	}

	findings = suppress(pkgs, findings, active)

	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		return a.Message < b.Message
	})
	return findings
}

// ignoreDirective is one parsed //whpcvet:ignore annotation.
type ignoreDirective struct {
	rules  []string
	reason string
	line   int
	file   string
	pos    token.Pos
	// used records that the directive suppressed at least one finding this
	// run; a well-formed directive that stays unused is stale.
	used bool
}

const ignorePrefix = "//whpcvet:ignore"

// parseIgnores extracts every annotation from the packages' comments, keyed
// by file name. Directives are returned by pointer so suppression can mark
// usage for the staleness audit.
func parseIgnores(pkgs []*Package) map[string][]*ignoreDirective {
	out := make(map[string][]*ignoreDirective)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, ignorePrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, ignorePrefix)
					pos := pkg.Fset.Position(c.Pos())
					d := &ignoreDirective{line: pos.Line, file: pos.Filename, pos: c.Pos()}
					fields := strings.Fields(rest)
					if len(fields) > 0 {
						d.rules = strings.Split(fields[0], ",")
						d.reason = strings.TrimSpace(strings.Join(fields[1:], " "))
					}
					out[pos.Filename] = append(out[pos.Filename], d)
				}
			}
		}
	}
	return out
}

// suppress drops findings covered by a well-formed annotation on the same
// line or the line immediately above. It adds findings for malformed
// annotations (no rule, unknown rule, or missing reason) under the "ignore"
// pseudo-rule, and — when staleignore is active — for well-formed
// annotations that suppressed nothing and whose rules all ran (so a partial
// -rule invocation never misreports a directive as stale). Stale findings
// are not themselves suppressible: a dead annotation is pruned, not excused.
func suppress(pkgs []*Package, findings []Finding, active map[string]bool) []Finding {
	ignores := parseIgnores(pkgs)
	if len(ignores) == 0 {
		return findings
	}
	var extra []Finding
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	valid := make(map[string][]*ignoreDirective)
	for file, ds := range ignores {
		for _, d := range ds {
			switch {
			case len(d.rules) == 0:
				extra = append(extra, Finding{
					Rule: "ignore", File: d.file, Line: d.line, Col: 1,
					Message: "whpcvet:ignore names no rule",
				})
			case d.reason == "":
				extra = append(extra, Finding{
					Rule: "ignore", File: d.file, Line: d.line, Col: 1,
					Message: fmt.Sprintf("whpcvet:ignore %s has no reason; every suppression must say why", strings.Join(d.rules, ",")),
				})
			default:
				bad := false
				for _, r := range d.rules {
					if !known[r] {
						extra = append(extra, Finding{
							Rule: "ignore", File: d.file, Line: d.line, Col: 1,
							Message: fmt.Sprintf("whpcvet:ignore names unknown rule %q", r),
						})
						bad = true
					}
				}
				if !bad {
					valid[file] = append(valid[file], d)
				}
			}
		}
	}
	kept := findings[:0]
	for _, f := range findings {
		if !suppressed(f, valid[f.File]) {
			kept = append(kept, f)
		}
	}
	findings = kept
	if active["staleignore"] {
		for _, ds := range valid {
			for _, d := range ds {
				if d.used {
					continue
				}
				ran := true
				for _, r := range d.rules {
					if !active[r] {
						ran = false
						break
					}
				}
				if ran {
					extra = append(extra, Finding{
						Rule: "staleignore", File: d.file, Line: d.line, Col: 1,
						Message: fmt.Sprintf("whpcvet:ignore %s suppresses nothing; the finding it silenced is gone — remove the annotation", strings.Join(d.rules, ",")),
					})
				}
			}
		}
	}
	return append(findings, extra...)
}

// suppressed reports whether a directive in ds covers finding f: the
// directive names f's rule and sits on f's line or the line above it.
// Matching directives are marked used for the staleness audit.
func suppressed(f Finding, ds []*ignoreDirective) bool {
	hit := false
	for _, d := range ds {
		if d.line != f.Line && d.line != f.Line-1 {
			continue
		}
		for _, r := range d.rules {
			if r == f.Rule {
				d.used = true
				hit = true
			}
		}
	}
	return hit
}
