package lint

import (
	"bytes"
	"encoding/json"
	"path/filepath"
	"runtime"
	"testing"
)

// loadFixture loads on-disk fixture packages (testdata is invisible to the
// self-host ./... walk, so these exist only for the tests that name them).
func loadFixture(t *testing.T, patterns ...string) []*Package {
	t.Helper()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages for %v", patterns)
	}
	return pkgs
}

func TestCtxFlow(t *testing.T) {
	pkgs := loadFixture(t, "./internal/lint/testdata/ctxflow")
	// The fixture lives outside the rule's production scope; widen it so the
	// analyzer itself is what's under test, not the driver's scoping.
	a := CtxFlowAnalyzer()
	a.Scope = nil
	got := Vet(pkgs, []*Analyzer{a})
	wantFindings(t, got, "ctxflow", 17, 21, 26, 31, 35, 39)
}

func TestGoroLeak(t *testing.T) {
	pkgs := loadFixture(t, "./internal/lint/testdata/goroleak")
	got := Vet(pkgs, []*Analyzer{GoroLeakAnalyzer()})
	wantFindings(t, got, "goroleak", 14, 18, 25, 35)
}

func TestHotAlloc(t *testing.T) {
	pkgs := loadFixture(t, "./internal/lint/testdata/hotalloc")
	got := Vet(pkgs, []*Analyzer{HotAllocAnalyzer()})
	wantFindings(t, got, "hotalloc", 21, 23, 24, 25, 27, 29, 30)
}

func TestChaosCover(t *testing.T) {
	pkgs := loadFixture(t, "./internal/lint/testdata/chaoscover/...")
	if len(pkgs) != 2 {
		t.Fatalf("loaded %d packages, want 2 (chaos + sites)", len(pkgs))
	}
	got := Vet(pkgs, []*Analyzer{ChaosCoverAnalyzer()})
	want := map[string]map[int]bool{
		"chaos.go": {17: true, 18: true}, // PointB not in Points(); PointOrphan never fired
		"sites.go": {25: true, 29: true, 36: true},
	}
	seen := map[string]map[int]bool{"chaos.go": {}, "sites.go": {}}
	for _, f := range got {
		if f.Rule != "chaoscover" {
			t.Errorf("unexpected rule %q in finding %s", f.Rule, f)
			continue
		}
		base := filepath.Base(f.File)
		if !want[base][f.Line] {
			t.Errorf("unexpected finding: %s", f)
			continue
		}
		seen[base][f.Line] = true
	}
	for base, lines := range want {
		for line := range lines {
			if !seen[base][line] {
				t.Errorf("no chaoscover finding at %s:%d (got %v)", base, line, got)
			}
		}
	}
}

func TestStaleIgnore(t *testing.T) {
	const src = `package fix

import "errors"

func mayFail() error { return errors.New("x") }

func Live() {
	mayFail() //whpcvet:ignore errcheck acknowledged discard keeps this directive live
}

func Stale() error {
	return nil //whpcvet:ignore errcheck nothing on this line discards an error any more
}

func InactiveRule() {
	_ = 1.0 //whpcvet:ignore floatcmp the named rule is not in this run's set
}
`
	pkg, err := LoadSource("repro/internal/anything", map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatal(err)
	}
	got := Vet([]*Package{pkg}, []*Analyzer{ErrCheckAnalyzer(), StaleIgnoreAnalyzer()})
	// Only the Stale() directive is reported: the Live() one suppressed a
	// real finding, and the floatcmp one names a rule that did not run, so a
	// partial -rule invocation cannot misreport it as stale.
	wantFindings(t, got, "staleignore", 12)
}

// TestVetParallelDeterminism is the acceptance check for the concurrent
// driver: the JSON encoding of a full run must be byte-identical at
// GOMAXPROCS 1 and 8. The fixture packages ride along so the comparison
// covers a non-empty finding set, not two empty lists.
func TestVetParallelDeterminism(t *testing.T) {
	pkgs := loadFixture(t, "./...",
		"./internal/lint/testdata/goroleak",
		"./internal/lint/testdata/hotalloc",
		"./internal/lint/testdata/chaoscover/...")
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)

	runtime.GOMAXPROCS(1)
	seq := Vet(pkgs, Analyzers())
	runtime.GOMAXPROCS(8)
	par := Vet(pkgs, Analyzers())

	if len(seq) == 0 {
		t.Fatal("fixture run produced no findings; the determinism check is vacuous")
	}
	seqJSON, err := json.MarshalIndent(seq, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	parJSON, err := json.MarshalIndent(par, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seqJSON, parJSON) {
		t.Errorf("findings differ between GOMAXPROCS 1 and 8:\n--- sequential ---\n%s\n--- parallel ---\n%s", seqJSON, parJSON)
	}
}
