package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// LockSafeAnalyzer flags work performed while a sync.Mutex/RWMutex is held
// that can re-enter or block indefinitely: invoking a user-supplied callback
// (a call through a function-typed variable or field) and channel
// operations. In the harvest path a callback that calls back into the
// guarded object deadlocks, and a channel send under a lock stalls every
// other worker behind the same mutex — both nondeterministic, load-dependent
// failures the resilience layer exists to prevent.
func LockSafeAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "locksafe",
		Doc:   "flag callbacks and channel operations executed while a sync mutex is held in internal/resilience, internal/ingest, internal/serve, internal/obs, internal/query, internal/snap, internal/chaos and internal/shard",
		Scope: []string{"internal/resilience", "internal/ingest", "internal/serve", "internal/obs", "internal/query", "internal/snap", "internal/chaos", "internal/shard", "internal/delta", "internal/cite", "internal/leakcheck", "cmd/*"},
		Run:   runLockSafe,
	}
}

func runLockSafe(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					p.scanLockRegion(n.Body.List, map[string]bool{})
				}
				return true
			case *ast.FuncLit:
				// Each literal is its own lock domain; scanLockRegion does
				// not descend into nested literals, and Inspect delivers
				// them here.
				p.scanLockRegion(n.Body.List, map[string]bool{})
				return true
			}
			return true
		})
	}
}

// scanLockRegion walks one statement list tracking which mutexes are held.
// Branch bodies get a copy of the held set: a conditional unlock does not
// release the lock on the main path.
func (p *Pass) scanLockRegion(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ast.ExprStmt:
			if recv, op, ok := p.lockOp(s.X); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = true
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				continue
			}
			if len(held) > 0 {
				p.flagLockHazards(s, held)
			}
		case *ast.DeferStmt:
			// `defer mu.Unlock()` keeps the lock held to function exit; the
			// held set stays as-is. Other defers run after the body, so
			// they are not scanned under the current held set.
			continue
		case *ast.BlockStmt:
			p.scanLockRegion(s.List, copyHeld(held))
		case *ast.IfStmt:
			if len(held) > 0 {
				p.flagLockHazards(s.Cond, held)
			}
			p.scanLockRegion(s.Body.List, copyHeld(held))
			if s.Else != nil {
				p.scanLockRegion([]ast.Stmt{s.Else}, copyHeld(held))
			}
		case *ast.ForStmt:
			if len(held) > 0 && s.Cond != nil {
				p.flagLockHazards(s.Cond, held)
			}
			p.scanLockRegion(s.Body.List, copyHeld(held))
		case *ast.RangeStmt:
			if len(held) > 0 {
				p.flagLockHazards(s.X, held)
			}
			p.scanLockRegion(s.Body.List, copyHeld(held))
		case *ast.SwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					p.scanLockRegion(cc.Body, copyHeld(held))
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					p.scanLockRegion(cc.Body, copyHeld(held))
				}
			}
		case *ast.SelectStmt:
			if len(held) > 0 {
				p.Report(s, "select while mutex is held blocks on channel operations under the lock")
			}
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					p.scanLockRegion(cc.Body, copyHeld(held))
				}
			}
		case *ast.LabeledStmt:
			p.scanLockRegion([]ast.Stmt{s.Stmt}, held)
		default:
			if len(held) > 0 {
				p.flagLockHazards(s, held)
			}
		}
	}
}

func copyHeld(held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	return out
}

// lockOp recognizes mu.Lock()/RLock()/Unlock()/RUnlock() on a sync mutex
// and returns the receiver expression string and operation name.
func (p *Pass) lockOp(e ast.Expr) (recv, op string, ok bool) {
	call, okc := e.(*ast.CallExpr)
	if !okc {
		return "", "", false
	}
	sel, oks := call.Fun.(*ast.SelectorExpr)
	if !oks {
		return "", "", false
	}
	fn, okf := p.Info.Uses[sel.Sel].(*types.Func)
	if !okf || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return types.ExprString(sel.X), fn.Name(), true
	}
	return "", "", false
}

// flagLockHazards reports channel operations and calls through
// function-typed variables inside n, without descending into nested
// function literals (those execute in their own context).
func (p *Pass) flagLockHazards(n ast.Node, held map[string]bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			p.Report(c, "channel send while mutex is held can block every goroutine contending for the lock")
		case *ast.UnaryExpr:
			if c.Op == token.ARROW {
				p.Report(c, "channel receive while mutex is held can block every goroutine contending for the lock")
			}
		case *ast.CallExpr:
			if obj := funcValueCallee(p, c); obj != nil {
				p.Report(c, "callback %s invoked while mutex is held; release the lock first (re-entrant callbacks deadlock)", obj.Name())
			}
		}
		return true
	})
}

// funcValueCallee returns the variable object when the call goes through a
// function-typed variable, parameter, or struct field — the signature of a
// user-supplied callback — and nil for declared functions, methods,
// builtins, and conversions.
func funcValueCallee(p *Pass, call *ast.CallExpr) *types.Var {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = p.Info.Uses[fun]
	case *ast.SelectorExpr:
		obj = p.Info.Uses[fun.Sel]
	default:
		return nil
	}
	v, ok := obj.(*types.Var)
	if !ok {
		return nil
	}
	if _, isSig := v.Type().Underlying().(*types.Signature); !isSig {
		return nil
	}
	return v
}
