package lint

import (
	"strings"
	"testing"
)

// vetFixture type-checks src as a single-file package at pkgPath and runs
// exactly one analyzer over it, returning the surviving findings.
func vetFixture(t *testing.T, rule, pkgPath, src string) []Finding {
	t.Helper()
	pkg, err := LoadSource(pkgPath, map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatalf("fixture does not type-check: %v", err)
	}
	a := AnalyzerByName(rule)
	if a == nil {
		t.Fatalf("unknown rule %q", rule)
	}
	return Vet([]*Package{pkg}, []*Analyzer{a})
}

// wantFindings asserts the findings hit exactly the expected lines (in any
// order) for the given rule.
func wantFindings(t *testing.T, got []Finding, rule string, lines ...int) {
	t.Helper()
	want := make(map[int]bool, len(lines))
	for _, l := range lines {
		want[l] = true
	}
	seen := make(map[int]bool)
	for _, f := range got {
		if f.Rule != rule {
			t.Errorf("unexpected rule %q in finding %s", f.Rule, f)
			continue
		}
		if !want[f.Line] {
			t.Errorf("unexpected finding: %s", f)
		}
		seen[f.Line] = true
	}
	for _, l := range lines {
		if !seen[l] {
			t.Errorf("no %s finding on line %d (got %v)", rule, l, got)
		}
	}
}

func TestRegistry(t *testing.T) {
	as := Analyzers()
	if len(as) != 11 {
		t.Fatalf("registry has %d analyzers, want 11", len(as))
	}
	names := make(map[string]bool)
	for _, a := range as {
		if a.Name == "" || a.Doc == "" || (a.Run == nil && a.RunModule == nil) {
			t.Errorf("analyzer %+v incompletely registered", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
		if AnalyzerByName(a.Name) != nil && AnalyzerByName(a.Name).Name != a.Name {
			t.Errorf("AnalyzerByName(%q) mismatch", a.Name)
		}
	}
	if AnalyzerByName("nosuchrule") != nil {
		t.Error("AnalyzerByName invented a rule")
	}
}

func TestDeterminism(t *testing.T) {
	const src = `package fix

import (
	"math/rand/v2"
	"time"
)

func Bad() time.Time { return time.Now() }

func BadSleep() { time.Sleep(time.Second) }

func BadRand() int { return rand.IntN(10) }

func GoodSeeded(r *rand.Rand) int { return r.IntN(10) }

func GoodCtor() *rand.Rand { return rand.New(rand.NewPCG(1, 2)) }

func Suppressed() time.Time {
	return time.Now() //whpcvet:ignore determinism wall clock feeds a log line only
}
`
	got := vetFixture(t, "determinism", "repro/internal/core", src)
	wantFindings(t, got, "determinism", 8, 10, 12)
}

func TestDeterminismWallClockAllowedInResilience(t *testing.T) {
	const src = `package fix

import (
	"math/rand/v2"
	"time"
)

func WallClockHome() time.Time { return time.Now() }

func StillNoGlobalRand() int { return rand.IntN(10) }
`
	// The wall-clock rule yields inside internal/resilience (WallClock's
	// home) but the global-rand rule does not.
	got := vetFixture(t, "determinism", "repro/internal/resilience", src)
	wantFindings(t, got, "determinism", 10)
}

// TestDeterminismWallClockMethods loads the on-disk clockabuse fixture (it
// needs a second package — the real internal/resilience — so the in-memory
// single-file loader cannot host it) and asserts the analyzer flags method
// calls on a concrete WallClock value while accepting interface-mediated
// reads and bare construction. The testdata directory is invisible to
// ./... patterns, so the self-host test stays clean.
func TestDeterminismWallClockMethods(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./internal/lint/testdata/clockabuse")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	got := Vet(pkgs, []*Analyzer{DeterminismAnalyzer()})
	wantFindings(t, got, "determinism", 16, 22)
}

func TestMapOrder(t *testing.T) {
	const src = `package fix

import (
	"fmt"
	"io"
	"sort"
)

func BadAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func BadOutput(m map[string]int, w io.Writer) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}

func BadFloatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v
	}
	return sum
}

func BadSend(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v
	}
}

func GoodSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func GoodIntSum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func GoodSliceRange(xs []string, w io.Writer) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}

func Suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //whpcvet:ignore maporder callers sort; kept for the suppression fixture
	}
	return out
}
`
	got := vetFixture(t, "maporder", "repro/internal/report", src)
	wantFindings(t, got, "maporder", 12, 19, 26, 33)
}

func TestMapOrderScope(t *testing.T) {
	const src = `package fix

func Bad(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	pkg, err := LoadSource("repro/internal/stats", map[string]string{"fixture.go": src})
	if err != nil {
		t.Fatal(err)
	}
	// internal/stats is outside the maporder scope; the driver must skip it.
	if got := Vet([]*Package{pkg}, []*Analyzer{MapOrderAnalyzer()}); len(got) != 0 {
		t.Errorf("maporder ran outside its scope: %v", got)
	}
}

func TestFloatCmp(t *testing.T) {
	const src = `package fix

func BadEq(a, b float64) bool { return a == b }

func BadNeq(a float64) bool { return a != 0 }

func BadSwitch(x float64) int {
	switch x {
	case 1.0:
		return 1
	}
	return 0
}

func GoodNaNIdiom(x float64) bool { return x != x }

func GoodInt(a, b int) bool { return a == b }

func GoodOrdered(a, b float64) bool { return a < b }

func Suppressed(p float64) bool {
	return p == 0.5 //whpcvet:ignore floatcmp exact median sentinel for the fixture
}
`
	got := vetFixture(t, "floatcmp", "repro/internal/stats", src)
	wantFindings(t, got, "floatcmp", 3, 5, 8)
}

func TestErrCheck(t *testing.T) {
	const src = `package fix

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

func mayFail() error { return errors.New("x") }

func Bad() {
	mayFail()
}

func BadDefer() {
	defer mayFail()
}

func BadGo() {
	go mayFail()
}

func Good(w io.Writer) error {
	_ = mayFail()
	fmt.Fprintf(w, "ok")
	var b strings.Builder
	b.WriteString("ok")
	if err := mayFail(); err != nil {
		return err
	}
	return mayFail()
}

func Suppressed() {
	mayFail() //whpcvet:ignore errcheck fixture demonstrates an acknowledged discard
}
`
	got := vetFixture(t, "errcheck", "repro/internal/anything", src)
	wantFindings(t, got, "errcheck", 13, 17, 21)
}

func TestLockSafe(t *testing.T) {
	const src = `package fix

import "sync"

type G struct {
	mu sync.Mutex
	cb func()
	ch chan int
}

func (g *G) BadCallback() {
	g.mu.Lock()
	g.cb()
	g.mu.Unlock()
}

func (g *G) BadSend() {
	g.mu.Lock()
	g.ch <- 1
	g.mu.Unlock()
}

func (g *G) BadDeferred() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.cb()
}

func (g *G) GoodAfterUnlock() {
	g.mu.Lock()
	g.mu.Unlock()
	g.cb()
	g.ch <- 2
}

func (g *G) GoodMethodCall() {
	g.mu.Lock()
	g.helper()
	g.mu.Unlock()
}

func (g *G) helper() {}

func (g *G) Suppressed() {
	g.mu.Lock()
	g.cb() //whpcvet:ignore locksafe callback is documented re-entrancy-safe in the fixture
	g.mu.Unlock()
}
`
	got := vetFixture(t, "locksafe", "repro/internal/resilience", src)
	wantFindings(t, got, "locksafe", 13, 19, 26)
}

func TestExhibitDocRootPackage(t *testing.T) {
	const src = `package fix

// Documented has a doc comment.
func Documented() {}

func Undocumented() {}

// T is a documented type.
type T struct{}

func (T) UndocumentedMethod() {}

type Bare struct{}

var Exposed int

var internal int

func unexported() { _ = internal }

func SuppressedFn() {} //whpcvet:ignore exhibitdoc fixture helper, excluded from the API audit
`
	got := vetFixture(t, "exhibitdoc", "repro", src)
	wantFindings(t, got, "exhibitdoc", 6, 11, 13, 15)
}

func TestExhibitDocCoreConstructorsOnly(t *testing.T) {
	const src = `package fix

// DocumentedCtor computes a documented exhibit.
func DocumentedCtor() int { return 0 }

func UndocumentedCtor() int { return 0 }

type BareType struct{}

func (BareType) BareMethod() {}

var BareVar int
`
	// In internal/core only plain exported functions (the exhibit
	// constructors) need docs; types, vars and methods are out of scope.
	got := vetFixture(t, "exhibitdoc", "repro/internal/core", src)
	wantFindings(t, got, "exhibitdoc", 6)
}

func TestIgnoreAnnotationHygiene(t *testing.T) {
	const src = `package fix

import "errors"

func mayFail() error { return errors.New("x") }

func NoReason() {
	mayFail() //whpcvet:ignore errcheck
}

func UnknownRule() {
	mayFail() //whpcvet:ignore nosuchrule because I said so
}
`
	got := vetFixture(t, "errcheck", "repro/internal/anything", src)
	var ignoreFindings, errcheckFindings int
	for _, f := range got {
		switch f.Rule {
		case "ignore":
			ignoreFindings++
		case "errcheck":
			errcheckFindings++
		}
	}
	// The reason-less annotation is rejected (and therefore does not
	// suppress), the unknown rule is reported, and both discarded errors
	// still surface.
	if ignoreFindings != 2 {
		t.Errorf("%d ignore-hygiene findings, want 2: %v", ignoreFindings, got)
	}
	if errcheckFindings != 2 {
		t.Errorf("%d errcheck findings, want 2 (bad annotations must not suppress): %v", errcheckFindings, got)
	}
}

func TestFindingString(t *testing.T) {
	f := Finding{Rule: "floatcmp", File: "x.go", Line: 3, Col: 7, Message: "raw equality"}
	if got := f.String(); !strings.Contains(got, "x.go:3:7") || !strings.Contains(got, "[floatcmp]") {
		t.Errorf("Finding.String() = %q", got)
	}
}

// TestRepositoryIsClean self-hosts the full suite over the real module: the
// acceptance bar for every PR is that the tree carries zero unsuppressed
// findings. A regression here means a determinism, float-safety, or
// concurrency invariant was broken somewhere in the pipeline.
func TestRepositoryIsClean(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; pattern expansion is broken", len(pkgs))
	}
	findings := Vet(pkgs, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
