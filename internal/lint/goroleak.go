package lint

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/flow"
)

// GoroLeakAnalyzer returns the goroleak rule: every go statement must launch
// a goroutine with a bounded exit. It is the static twin of
// internal/leakcheck — leakcheck catches the goroutines a test happens to
// leak, goroleak catches the shapes that can leak before any test runs.
//
// Two shapes are flagged:
//
//   - a goroutine whose control-flow graph cannot reach its exit (infinite
//     for without break, empty select, or — via the bottom-up NeverReturns
//     summary — an unconditional call chain into such a function) and that
//     never waits on a channel or select anywhere it can reach: nothing can
//     stop it, so it lives until process exit. Cancellation-free
//     time.Sleep polling loops are called out specifically.
//   - a blocking send on an unbuffered channel created in the spawning
//     function: if the receiver gives up (deadline, early return) the
//     goroutine parks forever. Buffer the channel (the errc := make(chan
//     error, 1) idiom) or select on ctx.Done.
//
// Waiting on a channel, select, or range-over-channel counts as a bounded
// exit: closing the channel or cancelling the context can end the
// goroutine, and whether anyone actually does is leakcheck's job at
// runtime.
func GoroLeakAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "goroleak",
		Doc:  "go statements must launch goroutines with a bounded exit",
		Run:  runGoroLeak,
	}
}

func runGoroLeak(p *Pass) {
	cg := flow.BuildCallGraph(p.Files, p.Info)
	never := cg.NeverReturns()
	// chanWait over-approximates "the goroutine can park on a channel":
	// any receive, select communication, or channel-typed expression
	// outside a bare send counts, transitively through same-package calls.
	chanWait := cg.MayReach(func(_ *flow.FuncInfo, n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			return n.Op == token.ARROW
		case *ast.RangeStmt:
			if t := p.TypeOf(n.X); t != nil {
				if _, ok := types.Unalias(t).Underlying().(*types.Chan); ok {
					return true
				}
			}
		case *ast.SelectStmt:
			return true
		}
		return false
	})
	sleeps := cg.MayReach(func(_ *flow.FuncInfo, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		return ok && isTimeSleep(p.Info, call)
	})

	for _, fi := range cg.Funcs {
		for i := range fi.Calls {
			c := &fi.Calls[i]
			if !c.Go {
				continue
			}
			target := c.Callee
			if target == nil || target.Body == nil {
				continue // dynamic or cross-package target: conservative
			}
			if never[target] && !chanWait[target] {
				if sleeps[target] {
					p.Report(c.Site, "goroutine runs a cancellation-free time.Sleep loop and can never exit; select on a ctx/done channel instead")
				} else {
					p.Report(c.Site, "goroutine never returns and waits on no channel; give it a bounded exit (ctx/done select or a loop condition)")
				}
			}
			if target.Lit != nil {
				checkUnbufferedSends(p, fi, target)
			}
		}
	}
}

// checkUnbufferedSends flags bare sends, inside a spawned literal, on
// channels the spawning function created unbuffered.
func checkUnbufferedSends(p *Pass, spawner *flow.FuncInfo, target *flow.FuncInfo) {
	unbuffered := make(map[types.Object]bool)
	if spawner.Body == nil {
		return
	}
	inspectSkippingLits(spawner.Body, func(n ast.Node) {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return
		}
		for i, rhs := range asg.Rhs {
			if i >= len(asg.Lhs) {
				break
			}
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				continue // make with a capacity argument is buffered
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				continue
			}
			if _, isChan := types.Unalias(p.TypeOf(rhs)).Underlying().(*types.Chan); !isChan {
				continue
			}
			if lid, ok := ast.Unparen(asg.Lhs[i]).(*ast.Ident); ok {
				if obj := defOrUse(p.Info, lid); obj != nil {
					unbuffered[obj] = true
				}
			}
		}
	})
	if len(unbuffered) == 0 {
		return
	}
	// Walk the spawned body tracking select nesting: a send inside a
	// select clause has an escape hatch and is fine.
	var walk func(n ast.Node, inSelect bool)
	walk = func(n ast.Node, inSelect bool) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			if n != target.Lit {
				return
			}
			walk(n.Body, inSelect)
			return
		case *ast.SelectStmt:
			for _, cs := range n.Body.List {
				walk(cs, true)
			}
			return
		case *ast.SendStmt:
			if inSelect {
				break
			}
			if id, ok := ast.Unparen(n.Chan).(*ast.Ident); ok {
				if obj := p.Info.Uses[id]; obj != nil && unbuffered[obj] {
					p.Report(n, "blocking send on unbuffered channel %s: if the receiver is gone this goroutine parks forever; buffer the channel or select on ctx.Done", id.Name)
				}
			}
		}
		// Generic descent for everything not handled above.
		children(n, func(c ast.Node) { walk(c, inSelect) })
	}
	walk(target.Lit, false)
}

// children invokes f on each direct child node of n.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		f(c)
		return false
	})
}

// isTimeSleep reports a call to time.Sleep.
func isTimeSleep(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "time" && obj.Name() == "Sleep"
}
