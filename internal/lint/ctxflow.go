package lint

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/flow"
)

// CtxFlowAnalyzer returns the ctxflow rule: in the serving, query and
// ingest call paths a context.Context is threaded, never rebuilt or stashed.
// Deadline propagation and chaos cancellation both ride on the request
// context; a context.Background() in the middle of a call chain (or a
// context stored in a struct field and read back later) silently detaches
// everything below it from the caller's deadline, which is exactly the bug
// class the fail-operational serving tests cannot see until production.
//
// The rule reports, inside the scoped packages:
//
//   - any context.Background()/context.TODO() construction outside main/init
//     (deliberate detachment — a build that must outlast its request — gets
//     an annotated ignore);
//   - a call that passes a context other than one derived from the caller's
//     own (params, context.With* children, (*http.Request).Context()) while
//     a context is in scope, including inherited closure captures;
//   - a context stored into a struct field, by assignment or composite
//     literal;
//   - interprocedurally, via a bottom-up call-graph summary: a call from a
//     context-bearing function to a same-package callee that takes no
//     context yet constructs its own somewhere below — the callee should
//     grow a ctx parameter instead.
func CtxFlowAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "ctxflow",
		Doc:   "context.Context must be threaded through call paths, not rebuilt or stored",
		Scope: []string{"internal/serve", "internal/query", "internal/ingest", "internal/shard", "internal/delta", "internal/cite"},
		Run:   runCtxFlow,
	}
}

func runCtxFlow(p *Pass) {
	cg := flow.BuildCallGraph(p.Files, p.Info)
	// detached holds functions that construct a Background/TODO context on
	// some path, directly or through same-package callees.
	detached := cg.MayReach(func(_ *flow.FuncInfo, n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		return ok && isCtxConstructor(p.Info, call)
	})
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fi := cg.FuncOf(funcObj(p.Info, fd))
			ctxFlowFunc(p, cg, detached, fi, fd.Body, nil)
		}
	}
}

// ctxFlowFunc checks one function body. inherited carries the derived
// context objects of enclosing functions so closures count captures.
func ctxFlowFunc(p *Pass, cg *flow.CallGraph, detached map[*flow.FuncInfo]bool, fi *flow.FuncInfo, body *ast.BlockStmt, inherited map[types.Object]bool) {
	derived := make(map[types.Object]bool, len(inherited))
	for o := range inherited {
		derived[o] = true
	}
	hasOwnCtx := false
	if sig := funcSig(p, fi); sig != nil {
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if v := params.At(i); isContextType(v.Type()) {
				derived[v] = true
				hasOwnCtx = true
			}
		}
	}
	ctxInScope := hasOwnCtx || len(inherited) > 0

	// Propagate derivedness through local assignments to a fixpoint:
	// ctx2 := context.WithValue(ctx, k, v); ctx3 := ctx2; ...
	for changed := true; changed; {
		changed = false
		inspectSkippingLits(body, func(n ast.Node) {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
					// Tuple assignment from a call such as context.WithCancel.
					if markTupleDerived(p, derived, n.Lhs, n.Rhs[0]) {
						changed = true
					}
					return
				}
				for i := range n.Lhs {
					if i >= len(n.Rhs) {
						break
					}
					if markDerived(p, derived, n.Lhs[i], n.Rhs[i]) {
						changed = true
					}
				}
			case *ast.ValueSpec:
				if len(n.Values) == 1 && len(n.Names) > 1 {
					lhs := make([]ast.Expr, len(n.Names))
					for i, id := range n.Names {
						lhs[i] = id
					}
					if markTupleDerived(p, derived, lhs, n.Values[0]) {
						changed = true
					}
					return
				}
				for i, name := range n.Names {
					if i >= len(n.Values) {
						break
					}
					if markDerived(p, derived, name, n.Values[i]) {
						changed = true
					}
				}
			}
		})
	}

	var lits []*ast.FuncLit
	inspectSkippingLitsCollect(body, &lits, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if isCtxConstructor(p.Info, n) {
				if !inEntrypoint(p, fi) {
					name := "Background"
					if obj := calleeFunc(p, n); obj != nil {
						name = obj.Name()
					}
					p.Report(n, "constructs context.%s in a %s call path; thread the caller's context through (annotate with a reason if detachment is deliberate)", name, p.Pkg.Name())
				}
				return
			}
			checkCtxArgs(p, derived, ctxInScope, n)
			checkDetachedCallee(p, cg, detached, fi, ctxInScope, n)
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				obj, ok := p.Info.Uses[sel.Sel].(*types.Var)
				if !ok || !obj.IsField() || !isContextType(obj.Type()) {
					continue
				}
				_ = i
				p.Report(lhs, "stores a context in struct field %s; contexts are per-call values — pass them as arguments", obj.Name())
			}
		case *ast.CompositeLit:
			t := p.TypeOf(n)
			if t == nil {
				return
			}
			if _, ok := t.Underlying().(*types.Struct); !ok {
				return
			}
			for _, elt := range n.Elts {
				v := elt
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if vt := p.TypeOf(v); vt != nil && isContextType(vt) {
					p.Report(v, "stores a context in a struct literal; contexts are per-call values — pass them as arguments")
				}
			}
		}
	})
	for _, lit := range lits {
		child := cg.LitOf(lit)
		ctxFlowFunc(p, cg, detached, child, lit.Body, derived)
	}
}

// checkCtxArgs flags a call that fills a context parameter with something
// not derived from the context already in scope.
func checkCtxArgs(p *Pass, derived map[types.Object]bool, ctxInScope bool, call *ast.CallExpr) {
	if !ctxInScope {
		return
	}
	ft := p.TypeOf(call.Fun)
	if ft == nil {
		return
	}
	sig, ok := types.Unalias(ft).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i := 0; i < params.Len() && i < len(call.Args); i++ {
		if sig.Variadic() && i == params.Len()-1 {
			break
		}
		if !isContextType(params.At(i).Type()) {
			continue
		}
		arg := ast.Unparen(call.Args[i])
		if c, ok := arg.(*ast.CallExpr); ok && isCtxConstructor(p.Info, c) {
			continue // already reported at the construction
		}
		if !ctxDerivedExpr(p, derived, arg) {
			p.Report(arg, "has a context in scope but passes a different one here; thread the caller's context")
		}
	}
}

// checkDetachedCallee flags a call from a context-bearing function to a
// same-package function that accepts no context yet constructs one below.
func checkDetachedCallee(p *Pass, cg *flow.CallGraph, detached map[*flow.FuncInfo]bool, fi *flow.FuncInfo, ctxInScope bool, call *ast.CallExpr) {
	if !ctxInScope || fi == nil {
		return
	}
	rec := fi.CallAt(call)
	if rec == nil || rec.Callee == nil || rec.Callee.Decl == nil || rec.Callee.Obj == nil || !detached[rec.Callee] {
		return
	}
	if sig, ok := rec.Callee.Obj.Type().(*types.Signature); ok {
		params := sig.Params()
		for i := 0; i < params.Len(); i++ {
			if isContextType(params.At(i).Type()) {
				return // takes a ctx; checkCtxArgs covers the argument
			}
		}
	}
	p.Report(call, "calls %s, which constructs its own context instead of accepting yours; plumb a ctx parameter through", rec.Callee.Name())
}

// markDerived records lhs as context-derived when rhs is, returning whether
// the set changed.
func markDerived(p *Pass, derived map[types.Object]bool, lhs, rhs ast.Expr) bool {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return false
	}
	obj := defOrUse(p.Info, id)
	if obj == nil || derived[obj] || !isContextType(obj.Type()) {
		return false
	}
	if !ctxDerivedExpr(p, derived, rhs) {
		return false
	}
	derived[obj] = true
	return true
}

// markTupleDerived handles ctx, cancel := context.WithCancel(parent): every
// context-typed name on the left becomes derived when the call is not a
// fresh construction.
func markTupleDerived(p *Pass, derived map[types.Object]bool, lhs []ast.Expr, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || isCtxConstructor(p.Info, call) {
		return false
	}
	changed := false
	for _, l := range lhs {
		id, ok := ast.Unparen(l).(*ast.Ident)
		if !ok {
			continue
		}
		obj := defOrUse(p.Info, id)
		if obj == nil || derived[obj] || !isContextType(obj.Type()) {
			continue
		}
		derived[obj] = true
		changed = true
	}
	return changed
}

// ctxDerivedExpr reports whether e yields a context derived from the one in
// scope: a derived identifier, any context-returning call that is not a
// fresh Background/TODO (context.With*, (*http.Request).Context(), helper
// methods), or a field read (the store was already flagged; uses of it are
// not re-reported).
func ctxDerivedExpr(p *Pass, derived map[types.Object]bool, e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.Ident:
		obj := p.Info.Uses[e]
		return obj != nil && derived[obj]
	case *ast.CallExpr:
		if isCtxConstructor(p.Info, e) {
			return false
		}
		t := p.TypeOf(e)
		return t != nil && typeHasContext(t)
	case *ast.SelectorExpr:
		t := p.TypeOf(e)
		return t != nil && isContextType(t)
	}
	return false
}

// inEntrypoint reports whether fi's outermost declaration is func main in
// package main or an init function — the two places a root context is
// legitimately constructed.
func inEntrypoint(p *Pass, fi *flow.FuncInfo) bool {
	for fi != nil && fi.Decl == nil {
		fi = fi.Parent
	}
	if fi == nil {
		return false
	}
	name := fi.Decl.Name.Name
	return (name == "main" && p.Pkg.Name() == "main") || name == "init"
}

// isCtxConstructor reports a call to context.Background or context.TODO.
func isCtxConstructor(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Path() == "context" && (obj.Name() == "Background" || obj.Name() == "TODO")
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// typeHasContext reports whether t is a context or a tuple containing one.
func typeHasContext(t types.Type) bool {
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isContextType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isContextType(t)
}

// funcSig returns the signature of a declared function or literal.
func funcSig(p *Pass, fi *flow.FuncInfo) *types.Signature {
	if fi == nil {
		return nil
	}
	if fi.Obj != nil {
		if sig, ok := fi.Obj.Type().(*types.Signature); ok {
			return sig
		}
		return nil
	}
	if fi.Lit != nil {
		if sig, ok := types.Unalias(p.TypeOf(fi.Lit)).(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// funcObj resolves a declaration to its checker object.
func funcObj(info *types.Info, fd *ast.FuncDecl) *types.Func {
	obj, _ := info.Defs[fd.Name].(*types.Func)
	return obj
}

// defOrUse resolves an identifier whether it defines or uses an object.
func defOrUse(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// inspectSkippingLits walks n without descending into function literals.
func inspectSkippingLits(n ast.Node, visit func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		visit(c)
		return true
	})
}

// inspectSkippingLitsCollect is inspectSkippingLits but records the
// immediate literals it skipped so the caller can recurse with fresh state.
func inspectSkippingLitsCollect(n ast.Node, lits *[]*ast.FuncLit, visit func(ast.Node)) {
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if lit, ok := c.(*ast.FuncLit); ok && c != n {
			*lits = append(*lits, lit)
			return false
		}
		visit(c)
		return true
	})
}
