package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that read or depend on the
// wall clock. time.Time/time.Duration values themselves are fine — only the
// source of ambient time is restricted.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randConstructors are the math/rand(/v2) top-level functions that build an
// explicit, seedable source — the sanctioned way to obtain randomness.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

// DeterminismAnalyzer forbids ambient nondeterminism: wall-clock reads
// outside internal/resilience (whose WallClock is the single sanctioned
// doorway to real time) and the process-global math/rand source anywhere
// (randomness must flow from a seeded *rand.Rand threaded through config).
// Calling a method on a concrete resilience.WallClock value counts as a
// wall-clock read too — otherwise serving code could smuggle time.Now in
// as resilience.WallClock{}.Now(); packages like internal/serve and
// internal/obs must reach real time only through an injected
// resilience.Clock interface value.
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads outside internal/resilience and global math/rand functions everywhere",
		// leakcheck is test-only support that polls real goroutine teardown,
		// which elapses on the real clock regardless of any injected
		// resilience.Clock; nothing it does can shape a response body.
		Exempt: []string{"internal/leakcheck"},
		Run:    runDeterminism,
	}
}

func runDeterminism(p *Pass) {
	inResilience := scopeMatch(p.PkgPath, "internal/resilience")
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok {
				return true
			}
			if sig.Recv() != nil {
				// Methods (e.g. (*rand.Rand).IntN) are the sanctioned form —
				// except on a concrete WallClock value, which is time.Now in
				// a trench coat. Interface calls through resilience.Clock
				// stay legal: the injected implementation decides.
				if !inResilience && isWallClockMethod(fn, sig) {
					p.Report(sel, "resilience.WallClock.%s reads the wall clock; accept an injected resilience.Clock instead of constructing WallClock", fn.Name())
				}
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] && !inResilience {
					p.Report(sel, "time.%s reads the wall clock; inject a resilience.Clock instead", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					p.Report(sel, "global rand.%s is seeded from runtime entropy; thread a seeded *rand.Rand instead", fn.Name())
				}
			}
			return true
		})
	}
}

// isWallClockMethod reports whether fn is Now or Sleep on the concrete
// resilience.WallClock type (not on the Clock interface).
func isWallClockMethod(fn *types.Func, sig *types.Signature) bool {
	if fn.Name() != "Now" && fn.Name() != "Sleep" {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "WallClock" {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && scopeMatch(pkg.Path(), "internal/resilience")
}
