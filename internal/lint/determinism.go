package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that read or depend on the
// wall clock. time.Time/time.Duration values themselves are fine — only the
// source of ambient time is restricted.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"Tick":      true,
	"After":     true,
	"AfterFunc": true,
	"NewTimer":  true,
	"NewTicker": true,
}

// randConstructors are the math/rand(/v2) top-level functions that build an
// explicit, seedable source — the sanctioned way to obtain randomness.
var randConstructors = map[string]bool{
	"New":        true,
	"NewPCG":     true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewChaCha8": true,
}

// DeterminismAnalyzer forbids ambient nondeterminism: wall-clock reads
// outside internal/resilience (whose WallClock is the single sanctioned
// doorway to real time) and the process-global math/rand source anywhere
// (randomness must flow from a seeded *rand.Rand threaded through config).
func DeterminismAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock reads outside internal/resilience and global math/rand functions everywhere",
		Run:  runDeterminism,
	}
}

func runDeterminism(p *Pass) {
	inResilience := scopeMatch(p.PkgPath, "internal/resilience")
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).IntN) are the sanctioned form
			}
			switch fn.Pkg().Path() {
			case "time":
				if wallClockFuncs[fn.Name()] && !inResilience {
					p.Report(sel, "time.%s reads the wall clock; inject a resilience.Clock instead", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !randConstructors[fn.Name()] {
					p.Report(sel, "global rand.%s is seeded from runtime entropy; thread a seeded *rand.Rand instead", fn.Name())
				}
			}
			return true
		})
	}
}
