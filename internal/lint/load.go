package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package ready for analysis.
type Package struct {
	// Path is the import path ("repro/internal/stats").
	Path string
	// Dir is the directory the sources were read from ("" for in-memory
	// fixture packages).
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of a single module using only the
// standard library: module-local imports are resolved by recursively loading
// the corresponding directory, everything else through go/importer. Test
// files (_test.go) are excluded — whpcvet guards the shipped pipeline, and
// tests legitimately reach for wall clocks and throwaway randomness.
type Loader struct {
	// ModuleRoot is the directory containing go.mod.
	ModuleRoot string
	// ModulePath is the module's declared path ("repro").
	ModulePath string

	fset   *token.FileSet
	std    types.Importer
	source types.Importer
	cache  map[string]*Package
	active map[string]bool
}

// NewLoader locates the enclosing module by walking up from dir to the
// nearest go.mod and returns a loader rooted there.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("lint: no go.mod found above %s", abs)
		}
		root = parent
	}
	mod, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		ModuleRoot: root,
		ModulePath: mod,
		fset:       fset,
		std:        importer.Default(),
		source:     importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
		active:     make(map[string]bool),
	}, nil
}

// modulePath extracts the module declaration from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module declaration in %s", gomod)
}

// Load resolves each pattern — "./...", a relative directory like
// "./internal/stats", or an import path — to packages, loading and
// type-checking each. Results are sorted by import path and deduplicated.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.walkDirs(l.ModuleRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				dirs[d] = true
			}
		case strings.HasSuffix(pat, "/..."):
			base := l.resolveDir(strings.TrimSuffix(pat, "/..."))
			walked, err := l.walkDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				dirs[d] = true
			}
		default:
			dirs[l.resolveDir(pat)] = true
		}
	}
	var pkgs []*Package
	for dir := range dirs {
		if !l.hasGoFiles(dir) {
			continue
		}
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// resolveDir maps a pattern to an absolute directory: module-relative
// import paths and ./-relative paths both land inside ModuleRoot.
func (l *Loader) resolveDir(pat string) string {
	if pat == l.ModulePath {
		return l.ModuleRoot
	}
	if rest, ok := strings.CutPrefix(pat, l.ModulePath+"/"); ok {
		return filepath.Join(l.ModuleRoot, filepath.FromSlash(rest))
	}
	if filepath.IsAbs(pat) {
		return filepath.Clean(pat)
	}
	return filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
}

// walkDirs returns every directory under base that holds non-test Go files,
// skipping hidden directories and testdata.
func (l *Loader) walkDirs(base string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if l.hasGoFiles(path) {
			out = append(out, path)
		}
		return nil
	})
	return out, err
}

// hasGoFiles reports whether dir directly contains at least one non-test
// .go file.
func (l *Loader) hasGoFiles(dir string) bool {
	names, err := goFileNames(dir)
	return err == nil && len(names) > 0
}

// goFileNames lists the non-test .go files directly in dir, sorted.
func goFileNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, filepath.Join(dir, name))
	}
	sort.Strings(names)
	return names, nil
}

// importPathFor converts an absolute directory inside the module to its
// import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// loadDir parses and type-checks the package in dir, memoizing by import
// path so shared dependencies are checked once.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	if pkg, ok := l.cache[path]; ok {
		return pkg, nil
	}
	if l.active[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.active[path] = true
	defer delete(l.active, path)

	names, err := goFileNames(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg, err := l.check(path, dir, files)
	if err != nil {
		return nil, err
	}
	l.cache[path] = pkg
	return pkg, nil
}

// Import resolves an import path for the type checker: module-local paths
// recurse into loadDir, anything else goes to go/importer (compiled export
// data first, source as fallback).
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		pkg, err := l.loadDir(l.resolveDir(path))
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if pkg, err := l.std.Import(path); err == nil {
		return pkg, nil
	}
	return l.source.Import(path)
}

// check type-checks the parsed files as package path.
func (l *Loader) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// LoadSource type-checks in-memory fixture files as a package with the
// given import path; used by the analyzer unit tests. Imports resolve
// against the standard library only.
func LoadSource(path string, sources map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	l := &Loader{
		ModulePath: "\x00none",
		fset:       fset,
		std:        importer.Default(),
		source:     importer.ForCompiler(fset, "source", nil),
		cache:      make(map[string]*Package),
		active:     make(map[string]bool),
	}
	names := make([]string, 0, len(sources))
	for name := range sources {
		names = append(names, name)
	}
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, name, sources[name], parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return l.check(path, "", files)
}
