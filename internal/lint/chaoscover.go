package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"repro/internal/lint/flow"
)

// ChaosCoverAnalyzer returns the chaoscover rule, a module-level pass that
// keeps the chaos harness honest: every named injection point declared in
// internal/chaos (the Point* string constants) must have at least one
// Fire(...) call site somewhere in the module, be listed in Points(), and
// every Fire call must name its point with a declared constant. A renamed
// point whose call sites kept the old string, an orphaned point left behind
// by a refactor, or a literal-string fire all make seed-replayable chaos
// schedules lie — they claim to exercise a fault path that no longer
// exists — so each fails vet.
//
// Serving code routinely wraps the raw injector (s.fire(point),
// renderFault(ctx, point), counting decorators), so the pass computes a
// per-package forwarding summary over the call graph: any function that
// passes a string parameter through to a Fire sink is itself treated as a
// fire site for the constants its callers pass. Dynamic call targets are
// conservative: an argument the pass cannot resolve to a constant is
// reported rather than silently trusted.
func ChaosCoverAnalyzer() *Analyzer {
	return &Analyzer{
		Name:      "chaoscover",
		Doc:       "declared chaos injection points and Fire call sites must stay in sync",
		RunModule: runChaosCover,
	}
}

// pointDecl is one declared Point* constant.
type pointDecl struct {
	name     string
	value    string
	pkg      *Package
	ident    *ast.Ident
	fired    bool
	inPoints bool
}

func runChaosCover(mp *ModulePass) {
	var points []*pointDecl
	byValue := make(map[string]*pointDecl)
	var chaosPkgs []*Package
	for _, pkg := range mp.Pkgs {
		if !scopeMatch(pkg.Path, "internal/chaos") {
			continue
		}
		chaosPkgs = append(chaosPkgs, pkg)
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				gd, ok := d.(*ast.GenDecl)
				if !ok {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if !strings.HasPrefix(name.Name, "Point") {
							continue
						}
						c, ok := pkg.Info.Defs[name].(*types.Const)
						if !ok || c.Val().Kind() != constant.String {
							continue
						}
						pd := &pointDecl{
							name:  name.Name,
							value: constant.StringVal(c.Val()),
							pkg:   pkg,
							ident: name,
						}
						points = append(points, pd)
						byValue[pd.value] = pd
					}
				}
			}
		}
	}
	if len(points) == 0 {
		return
	}

	for _, pkg := range mp.Pkgs {
		scanFireSites(mp, pkg, byValue)
	}

	for _, pd := range points {
		if !pd.fired {
			mp.Report(pd.pkg, pd.ident, "injection point %s (%q) is declared but never fired; wire a Fire call or remove the point", pd.name, pd.value)
		}
	}
	for _, pkg := range chaosPkgs {
		checkPointsList(mp, pkg, points)
	}
}

// scanFireSites walks one package: computes the forwarding summary, then
// classifies the point argument at every sink or forwarder call.
func scanFireSites(mp *ModulePass, pkg *Package, byValue map[string]*pointDecl) {
	cg := flow.BuildCallGraph(pkg.Files, pkg.Info)

	// fwd maps a function to the parameter indices that flow into a Fire
	// sink, computed to a fixpoint so wrappers of wrappers resolve.
	fwd := make(map[*types.Func]map[int]bool)
	pointPositions := func(obj *types.Func) []int {
		if obj == nil {
			return nil
		}
		if isFireSink(obj) {
			return []int{0}
		}
		if idx, ok := fwd[obj]; ok {
			out := make([]int, 0, len(idx))
			for i := 0; i < 64; i++ { // indices are tiny; keep order deterministic
				if idx[i] {
					out = append(out, i)
				}
			}
			return out
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range cg.Funcs {
			if fi.Obj == nil || fi.Body == nil {
				continue
			}
			paramIdx := stringParamIndices(fi.Obj)
			if len(paramIdx) == 0 {
				continue
			}
			for _, call := range fi.Calls {
				for _, pos := range pointPositions(call.Obj) {
					if pos >= len(call.Site.Args) {
						continue
					}
					id, ok := ast.Unparen(call.Site.Args[pos]).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pkg.Info.Uses[id]
					if obj == nil {
						continue
					}
					i, isParam := paramIdx[obj]
					if !isParam {
						continue
					}
					if fwd[fi.Obj] == nil {
						fwd[fi.Obj] = make(map[int]bool)
					}
					if !fwd[fi.Obj][i] {
						fwd[fi.Obj][i] = true
						changed = true
					}
				}
			}
		}
	}

	for _, fi := range cg.Funcs {
		for _, call := range fi.Calls {
			for _, pos := range pointPositions(call.Obj) {
				if pos >= len(call.Site.Args) {
					continue
				}
				classifyPointArg(mp, pkg, fi, fwd, call.Site.Args[pos], byValue)
			}
		}
	}
}

// classifyPointArg resolves one argument at a point-accepting position:
// a declared constant marks the point fired; anything the pass cannot
// resolve statically is a finding.
func classifyPointArg(mp *ModulePass, pkg *Package, fi *flow.FuncInfo, fwd map[*types.Func]map[int]bool, arg ast.Expr, byValue map[string]*pointDecl) {
	arg = ast.Unparen(arg)
	switch a := arg.(type) {
	case *ast.BasicLit:
		mp.Report(pkg, arg, "fires injection point by string literal %s; declare and use a chaos.Point* constant so renames fail vet", a.Value)
		return
	case *ast.Ident, *ast.SelectorExpr:
		var id *ast.Ident
		if sel, ok := a.(*ast.SelectorExpr); ok {
			id = sel.Sel
		} else {
			id = a.(*ast.Ident)
		}
		switch obj := pkg.Info.Uses[id].(type) {
		case *types.Const:
			if obj.Val().Kind() != constant.String {
				break
			}
			v := constant.StringVal(obj.Val())
			if pd, ok := byValue[v]; ok {
				pd.fired = true
				return
			}
			mp.Report(pkg, arg, "fires constant %q, which is not a declared injection point in internal/chaos", v)
			return
		case *types.Var:
			// A forwarder passing its own tracked parameter on is the
			// mechanism, not a site; its callers are classified instead.
			if fi.Obj != nil {
				if idx, ok := stringParamIndices(fi.Obj)[obj]; ok && fwd[fi.Obj] != nil && fwd[fi.Obj][idx] {
					return
				}
			}
		}
	}
	mp.Report(pkg, arg, "cannot statically resolve the injection point fired here; use a chaos.Point* constant")
}

// checkPointsList cross-references the declared points of one chaos package
// against its Points() registry function, when it has one.
func checkPointsList(mp *ModulePass, pkg *Package, points []*pointDecl) {
	var fn *ast.FuncDecl
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "Points" && fd.Recv == nil {
				fn = fd
			}
		}
	}
	if fn == nil || fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if c, ok := pkg.Info.Uses[id].(*types.Const); ok && c.Val().Kind() == constant.String {
			v := constant.StringVal(c.Val())
			for _, pd := range points {
				if pd.pkg == pkg && pd.value == v {
					pd.inPoints = true
				}
			}
		}
		return true
	})
	for _, pd := range points {
		if pd.pkg == pkg && !pd.inPoints {
			mp.Report(pkg, pd.ident, "injection point %s is missing from Points(); schedules cannot plan a point the registry hides", pd.name)
		}
	}
}

// isFireSink reports whether obj is a Fire(point string) *chaos.Fault
// method or function — concrete or interface.
func isFireSink(obj *types.Func) bool {
	if obj == nil || obj.Name() != "Fire" {
		return false
	}
	sig, ok := obj.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	if !isStringType(sig.Params().At(0).Type()) {
		return false
	}
	ptr, ok := types.Unalias(sig.Results().At(0).Type()).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(ptr.Elem()).(*types.Named)
	if !ok || named.Obj() == nil || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Name() == "Fault" && scopeMatch(named.Obj().Pkg().Path(), "internal/chaos")
}

// stringParamIndices maps a function's string-typed parameter objects to
// their positions.
func stringParamIndices(obj *types.Func) map[types.Object]int {
	sig, ok := obj.Type().(*types.Signature)
	if !ok {
		return nil
	}
	out := make(map[types.Object]int)
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isStringType(params.At(i).Type()) {
			out[params.At(i)] = i
		}
	}
	return out
}
