// Package goroleak exercises the goroleak analyzer: goroutines with no
// bounded exit, cancellation-free sleep loops, and blocking sends on
// unbuffered channels.
package goroleak

import "time"

func spin() {
	for {
	}
}

func badNamed() {
	go spin()
}

func badLit() {
	go func() {
		for {
		}
	}()
}

func badSleepLoop() {
	go func() {
		for {
			time.Sleep(time.Millisecond)
		}
	}()
}

func badUnbufferedSend() <-chan error {
	errc := make(chan error)
	go func() {
		errc <- nil
	}()
	return errc
}

func goodBuffered() <-chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- nil
	}()
	return errc
}

func goodDone(done chan struct{}) {
	go func() {
		for {
			select {
			case <-done:
				return
			default:
			}
		}
	}()
}

func goodRange(ch chan int) {
	go func() {
		for range ch {
		}
	}()
}

func suppressed() {
	//whpcvet:ignore goroleak fixture daemon runs for the process lifetime by design
	go spin()
}
