// Package clockabuse is a whpcvet test fixture: it smuggles wall-clock
// reads past the naive time.Now check by calling methods on a concrete
// resilience.WallClock value. The determinism analyzer must flag the
// concrete method calls and accept the interface-mediated ones.
package clockabuse

import (
	"context"
	"time"

	"repro/internal/resilience"
)

// BadNow constructs the sanctioned doorway just to walk through it.
func BadNow() time.Time {
	return resilience.WallClock{}.Now()
}

// BadSleep does the same with Sleep, via a named concrete value.
func BadSleep(ctx context.Context) error {
	wc := resilience.WallClock{}
	return wc.Sleep(ctx, time.Second)
}

// GoodInjected reads time through the interface: the caller decides whether
// it is wall or virtual.
func GoodInjected(c resilience.Clock) time.Time {
	return c.Now()
}

// GoodConstruction only builds the value to hand it to a config; building
// WallClock is fine, calling it is not.
func GoodConstruction() resilience.Clock {
	return resilience.WallClock{}
}
