// Package hotalloc exercises the hotalloc analyzer inside marked and
// unmarked functions.
package hotalloc

type item struct{ v int }

func sink(x any) {}

func allocAlways() []int {
	return make([]int, 4)
}

// badKernel allocates per iteration in every way the rule knows.
//
//whpcvet:hot
func badKernel(n int) int {
	total := 0
	var grow []int
	s := ""
	for i := 0; i < n; i++ {
		buf := make([]byte, 8)
		total += len(buf)
		grow = append(grow, i)
		s += "x"
		f := func() int { return i }
		total += f()
		it := &item{v: i}
		total += it.v
		sink(i)
		total += len(allocAlways())
	}
	_ = s
	return total
}

// goodKernel preallocates and reuses; the rule stays quiet.
//
//whpcvet:hot
func goodKernel(n int, m map[string]int, data []byte) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, m[string(data)])
	}
	return out
}

// unmarked allocates freely; without the marker nothing fires.
func unmarked(n int) []int {
	var out []int
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}

// suppressedKernel keeps one deliberate per-iteration allocation.
//
//whpcvet:hot
func suppressedKernel(n int) int {
	total := 0
	for i := 0; i < n; i++ {
		//whpcvet:ignore hotalloc fixture keeps one deliberate allocation to prove the annotation works
		b := make([]byte, 1)
		total += len(b)
	}
	return total
}
