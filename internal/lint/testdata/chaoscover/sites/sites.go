// Package sites exercises chaoscover call-site classification through a
// forwarding wrapper, the same shape the real server uses.
package sites

import "repro/internal/lint/testdata/chaoscover/internal/chaos"

type server struct{ inj chaos.Injector }

// fire forwards to the raw injector.
func (s *server) fire(point string) *chaos.Fault {
	return s.inj.Fire(point)
}

const notAPoint = "fixture/unknown"

func (s *server) good() *chaos.Fault {
	return s.fire(chaos.PointA)
}

func (s *server) alsoGood() *chaos.Fault {
	return s.fire(chaos.PointB)
}

func (s *server) badLiteral() *chaos.Fault {
	return s.inj.Fire("fixture/raw")
}

func (s *server) badConst() *chaos.Fault {
	return s.fire(notAPoint)
}

func pick() string { return "fixture/a" }

func (s *server) badDynamic() *chaos.Fault {
	p := pick()
	return s.inj.Fire(p)
}

func (s *server) suppressedLiteral() *chaos.Fault {
	//whpcvet:ignore chaoscover fixture keeps one literal site to prove the annotation works
	return s.inj.Fire("fixture/raw2")
}
