// Package chaos is a miniature injection registry for the chaoscover
// fixture: a Fault type, a Fire sink, and three declared points.
package chaos

// Fault is one armed fault.
type Fault struct{ Kind int }

// Injector fires faults by point name.
type Injector interface {
	Fire(point string) *Fault
}

// The declared injection points. PointOrphan has no fire site anywhere
// and PointB is missing from Points(); both are deliberate.
const (
	PointA      = "fixture/a"
	PointB      = "fixture/b"
	PointOrphan = "fixture/orphan"
)

// Points lists the schedulable points; PointB is deliberately absent.
func Points() []string {
	return []string{PointA, PointOrphan}
}
