// Package ctxflow exercises the ctxflow analyzer: fresh context
// construction mid-path, non-derived arguments, struct stores, and
// detached same-package callees.
package ctxflow

import "context"

type holder struct {
	ctx context.Context
}

var global context.Context

func work(ctx context.Context) {}

func detach(ctx context.Context) {
	work(context.Background())
}

func sideChannel(ctx context.Context) {
	work(global)
}

func stashAssign(ctx context.Context) {
	var h holder
	h.ctx = ctx
	_ = h
}

func stashLiteral(ctx context.Context) *holder {
	return &holder{ctx: ctx}
}

func viaHelper(ctx context.Context) {
	helper()
}

func helper() {
	ctx := context.Background()
	work(ctx)
}

func clean(ctx context.Context) {
	c, cancel := context.WithCancel(ctx)
	defer cancel()
	work(c)
}

func cleanClosure(ctx context.Context) {
	run := func() { work(ctx) }
	run()
}

func suppressed(ctx context.Context) {
	//whpcvet:ignore ctxflow fixture detaches deliberately to prove the annotation works
	work(context.Background())
}
