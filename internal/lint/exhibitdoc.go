package lint

import (
	"go/ast"
	"go/token"
)

// ExhibitDocAnalyzer enforces doc comments where the reproduction meets its
// readers: every exported identifier in the root repro package (the public
// API surface auditors start from) and every exported exhibit constructor in
// internal/core (the functions that compute the paper's tables and figures —
// their doc comments are the traceability link from code to paper section).
func ExhibitDocAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "exhibitdoc",
		Doc:   "require doc comments on exported identifiers in the root package and exhibit constructors in internal/core",
		Scope: []string{"repro", "internal/core"},
		Run:   runExhibitDoc,
	}
}

func runExhibitDoc(p *Pass) {
	constructorsOnly := scopeMatch(p.PkgPath, "internal/core")
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if !d.Name.IsExported() || !exportedReceiver(d) {
					continue
				}
				if constructorsOnly && d.Recv != nil {
					continue
				}
				if d.Doc == nil {
					what := "exported function"
					if d.Recv != nil {
						what = "exported method"
					} else if constructorsOnly {
						what = "exhibit constructor"
					}
					p.Report(d.Name, "%s %s has no doc comment", what, d.Name.Name)
				}
			case *ast.GenDecl:
				if constructorsOnly {
					continue
				}
				p.checkGenDecl(d)
			}
		}
	}
}

// exportedReceiver reports whether the declaration is a plain function or a
// method on an exported base type; methods on unexported types are not part
// of the API surface.
func exportedReceiver(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch v := t.(type) {
		case *ast.StarExpr:
			t = v.X
		case *ast.IndexExpr:
			t = v.X
		case *ast.Ident:
			return v.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl requires docs on exported type, const, and var specs. A doc
// on the enclosing declaration group covers every spec in it.
func (p *Pass) checkGenDecl(d *ast.GenDecl) {
	if d.Tok != token.TYPE && d.Tok != token.CONST && d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
				p.Report(s.Name, "exported type %s has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, name := range s.Names {
				if name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
					p.Report(name, "exported %s %s has no doc comment", d.Tok, name.Name)
				}
			}
		}
	}
}
