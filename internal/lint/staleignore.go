package lint

// StaleIgnoreAnalyzer reports //whpcvet:ignore annotations that no longer
// suppress any finding. Suppressions are technical debt with a reason
// attached; when the offending code is fixed or deleted the annotation must
// go too, or the next reader inherits a lie about what the rule flags.
//
// The rule is implemented inside the driver's suppression pass (see
// suppress in lint.go), which is the only place that knows whether a
// directive matched a finding: it is registered here so it appears in
// -rules, can be selected with -rule, and gates the audit — staleness is
// only reported when staleignore is among the active analyzers AND every
// rule a directive names also ran, so partial -rule invocations never
// misreport a directive as stale. Stale findings cannot themselves be
// suppressed: prune the annotation instead.
func StaleIgnoreAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "staleignore",
		Doc:  "reports //whpcvet:ignore annotations that no longer suppress any finding",
		// The driver special-cases this rule; the module hook exists so the
		// registry invariant (every rule is runnable) holds.
		RunModule: func(*ModulePass) {},
	}
}
