package lint

import (
	"go/ast"
	"go/types"
)

// ErrCheckAnalyzer flags calls whose error result is silently dropped: a
// call statement, `defer`, or `go` whose callee returns an error that no
// variable receives. A harvest that swallows an I/O error reports a corpus
// it never wrote. Assigning the error to blank (`_ = f()`) is treated as an
// explicit, greppable acknowledgment and not flagged.
//
// Exemptions: fmt.Fprint*/Print* (report renderers write through io.Writer
// by convention and surface failures at Close), and methods on
// strings.Builder and bytes.Buffer, whose errors are documented to always
// be nil.
func ErrCheckAnalyzer() *Analyzer {
	return &Analyzer{
		Name: "errcheck",
		Doc:  "flag call/defer/go statements that discard an error result (blank assignment is an explicit discard)",
		Run:  runErrCheck,
	}
}

func runErrCheck(p *Pass) {
	errType := types.Universe.Lookup("error").Type()
	returnsError := func(call *ast.CallExpr) bool {
		t := p.TypeOf(call)
		if t == nil {
			return false
		}
		switch t := t.(type) {
		case *types.Tuple:
			for i := 0; i < t.Len(); i++ {
				if types.Identical(t.At(i).Type(), errType) {
					return true
				}
			}
			return false
		default:
			return types.Identical(t, errType)
		}
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil || !returnsError(call) || p.errExempt(call) {
				return true
			}
			p.Report(call, "error result of %s is discarded; handle it or assign to _ explicitly", calleeName(p, call))
			return true
		})
	}
}

// errExempt reports whether the call is on the errcheck exemption list.
func (p *Pass) errExempt(call *ast.CallExpr) bool {
	fn := calleeFunc(p, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	if fn.Pkg().Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		rt := sig.Recv().Type()
		if ptr, ok := rt.(*types.Pointer); ok {
			rt = ptr.Elem()
		}
		if named, ok := rt.(*types.Named); ok {
			obj := named.Obj()
			if obj.Pkg() != nil {
				switch obj.Pkg().Path() + "." + obj.Name() {
				case "strings.Builder", "bytes.Buffer":
					return true
				}
			}
		}
	}
	return false
}

// calleeFunc resolves the called function or method, or nil for calls
// through function values and conversions.
func calleeFunc(p *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeName renders a human-readable name for the callee.
func calleeName(p *Pass, call *ast.CallExpr) string {
	if fn := calleeFunc(p, call); fn != nil {
		return fn.Name()
	}
	return types.ExprString(call.Fun)
}
