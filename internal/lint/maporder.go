package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrderAnalyzer flags range loops over maps whose bodies are
// order-sensitive: appending to a slice, writing report output, sending on
// a channel, or accumulating floating-point sums. Go randomizes map
// iteration order per run, so any of these leaks nondeterminism straight
// into an exhibit. The one blessed idiom — collect keys, sort, iterate the
// sorted slice — is recognized: a loop that only appends to slices which
// are sorted later in the same block is clean.
func MapOrderAnalyzer() *Analyzer {
	return &Analyzer{
		Name:  "maporder",
		Doc:   "flag order-sensitive bodies (append/output/send/float accumulation) under range-over-map without a subsequent sort",
		Scope: []string{"internal/report", "internal/synth", "internal/core", "internal/ingest", "internal/serve", "internal/obs", "internal/query", "internal/snap", "internal/chaos", "internal/shard", "internal/delta", "internal/cite", "internal/leakcheck", "cmd/*"},
		Run:   runMapOrder,
	}
}

// outputMethodNames are method names that emit ordered output when called
// in a map-range body: io.Writer-style writes and the report table/chart
// builder row appenders.
var outputMethodNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Row":         true,
	"AddRow":      true,
}

func runMapOrder(p *Pass) {
	// Statement lists are visited explicitly so each range-over-map knows
	// its enclosing block — the sort-after exemption needs to inspect the
	// statements that follow the loop.
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BlockStmt:
				p.scanStmtList(n.List)
			case *ast.CaseClause:
				p.scanStmtList(n.Body)
			case *ast.CommClause:
				p.scanStmtList(n.Body)
			}
			return true
		})
	}
}

// scanStmtList checks every range-over-map appearing directly in one
// statement list, remembering the list and position for the sort-after
// exemption.
func (p *Pass) scanStmtList(stmts []ast.Stmt) {
	for i, s := range stmts {
		for {
			if lbl, ok := s.(*ast.LabeledStmt); ok {
				s = lbl.Stmt
				continue
			}
			break
		}
		rng, ok := s.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := p.TypeOf(rng.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); isMap {
			p.checkMapRange(rng, stmts, i)
		}
	}
}

// checkMapRange reports the order-sensitive operations in one
// range-over-map body, applying the sort-after exemption.
func (p *Pass) checkMapRange(rng *ast.RangeStmt, block []ast.Stmt, idx int) {
	type hazard struct {
		node ast.Node
		msg  string
		// appendTo is non-nil when the hazard is an append; the object may
		// be absolved by a later sort.
		appendTo types.Object
	}
	var hazards []hazard
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			hazards = append(hazards, hazard{node: n, msg: "channel send inside range over map: receive order is nondeterministic"})
		case *ast.AssignStmt:
			// s = append(s, ...) — order-sensitive unless s is sorted after
			// the loop.
			if obj := appendTarget(p, n); obj != nil {
				hazards = append(hazards, hazard{
					node:     n,
					msg:      "append inside range over map without a subsequent sort: slice order is nondeterministic",
					appendTo: obj,
				})
				return true
			}
			// Floating-point compound accumulation: x += v rounds
			// differently under different summation orders.
			if (n.Tok == token.ADD_ASSIGN || n.Tok == token.SUB_ASSIGN || n.Tok == token.MUL_ASSIGN) && len(n.Lhs) == 1 {
				if t := p.TypeOf(n.Lhs[0]); t != nil && isFloat(t) {
					hazards = append(hazards, hazard{node: n, msg: "floating-point accumulation inside range over map: rounding depends on iteration order"})
				}
			}
		case *ast.CallExpr:
			if name, ok := orderedOutputCall(p, n); ok {
				hazards = append(hazards, hazard{node: n, msg: "output via " + name + " inside range over map: line order is nondeterministic"})
			}
		}
		return true
	})
	if len(hazards) == 0 {
		return
	}
	// Sort-after exemption: collect the objects sorted by statements after
	// the loop in the enclosing block, then absolve appends to them.
	sorted := make(map[types.Object]bool)
	for i := idx + 1; i < len(block); i++ {
		collectSortedObjects(p, block[i], sorted)
	}
	for _, h := range hazards {
		if h.appendTo != nil && sorted[h.appendTo] {
			continue
		}
		p.Report(h.node, "%s", h.msg)
	}
}

// appendTarget returns the object a statement of the form `x = append(x,
// ...)` (or `x = append(y, ...)`) assigns to, or nil when the statement is
// not an append assignment to an identifier-rooted target.
func appendTarget(p *Pass, n *ast.AssignStmt) types.Object {
	if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
		return nil
	}
	call, ok := n.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil
	}
	if b, ok := p.Info.Uses[id].(*types.Builtin); !ok || b.Name() != "append" {
		return nil
	}
	return rootObject(p, n.Lhs[0])
}

// rootObject resolves an lvalue like `x`, `x.f`, or `x[i]` to the object of
// its root identifier.
func rootObject(p *Pass, e ast.Expr) types.Object {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			if obj := p.Info.Uses[v]; obj != nil {
				return obj
			}
			return p.Info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		case *ast.IndexExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		case *ast.StarExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// orderedOutputCall reports whether the call emits ordered output: a
// fmt.Fprint*/Print* call or a Write*/Row-style method.
func orderedOutputCall(p *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "fmt." + fn.Name(), true
		}
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && outputMethodNames[fn.Name()] {
		return fn.Name(), true
	}
	return "", false
}

// collectSortedObjects records objects passed to sort.*/slices.Sort*
// anywhere inside stmt.
func collectSortedObjects(p *Pass, stmt ast.Stmt, out map[types.Object]bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		pkg := fn.Pkg().Path()
		if pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObject(p, arg); obj != nil {
				out[obj] = true
			}
		}
		return true
	})
}

// isFloat reports whether t's core type is a floating-point basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
