package flow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// check parses and type-checks one file and returns its AST and type info.
func check(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("fixture", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return f, info
}

// funcBody returns the body of the named top-level function.
func funcBody(t *testing.T, f *ast.File, name string) *ast.BlockStmt {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd.Body
		}
	}
	t.Fatalf("no function %q in fixture", name)
	return nil
}

func TestCFGStraightLine(t *testing.T) {
	f, _ := check(t, `package fixture
func f() int {
	x := 1
	x++
	return x
}`)
	g := New(funcBody(t, f, "f"))
	if !g.ExitReachable() {
		t.Fatal("straight-line function should reach exit")
	}
	if len(g.Entry.Nodes) != 3 {
		t.Fatalf("entry block holds %d nodes, want 3", len(g.Entry.Nodes))
	}
}

func TestCFGLoops(t *testing.T) {
	f, _ := check(t, `package fixture
func bounded() {
	for i := 0; i < 10; i++ {
		_ = i
	}
}
func infinite() {
	for {
		_ = 1
	}
}
func infiniteWithBreak(stop bool) {
	for {
		if stop {
			break
		}
	}
}
func labeledBreak(xs [][]int) int {
outer:
	for _, row := range xs {
		for _, v := range row {
			if v < 0 {
				break outer
			}
		}
	}
	return 0
}`)
	for _, tc := range []struct {
		name string
		want bool
	}{
		{"bounded", true},
		{"infinite", false},
		{"infiniteWithBreak", true},
		{"labeledBreak", true},
	} {
		g := New(funcBody(t, f, tc.name))
		if got := g.ExitReachable(); got != tc.want {
			t.Errorf("%s: ExitReachable = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestCFGDefers(t *testing.T) {
	f, _ := check(t, `package fixture
func f(cond bool) int {
	defer cleanupA()
	if cond {
		defer cleanupB()
		return 1
	}
	return 2
}
func cleanupA() {}
func cleanupB() {}`)
	g := New(funcBody(t, f, "f"))
	if len(g.Defers) != 2 {
		t.Fatalf("recorded %d defers, want 2", len(g.Defers))
	}
	// The Ret block holds the deferred calls in reverse registration order.
	if len(g.Ret.Nodes) != 2 {
		t.Fatalf("Ret block holds %d nodes, want 2 deferred calls", len(g.Ret.Nodes))
	}
	name := func(n ast.Node) string {
		return n.(*ast.CallExpr).Fun.(*ast.Ident).Name
	}
	if name(g.Ret.Nodes[0]) != "cleanupB" || name(g.Ret.Nodes[1]) != "cleanupA" {
		t.Errorf("defer order = %s, %s; want cleanupB, cleanupA",
			name(g.Ret.Nodes[0]), name(g.Ret.Nodes[1]))
	}
	// Both returns and no other paths feed Ret: every exit runs the defers.
	if len(g.Ret.Preds) < 2 {
		t.Errorf("Ret has %d preds, want both return paths", len(g.Ret.Preds))
	}
}

func TestCFGSelect(t *testing.T) {
	f, _ := check(t, `package fixture
func blockForever() {
	select {}
}
func waits(ch chan int, done chan struct{}) int {
	select {
	case v := <-ch:
		return v
	case <-done:
		return 0
	}
}`)
	if g := New(funcBody(t, f, "blockForever")); g.ExitReachable() {
		t.Error("empty select should make exit unreachable")
	}
	g := New(funcBody(t, f, "waits"))
	if !g.ExitReachable() {
		t.Error("select with returning clauses should reach exit")
	}
	// The receive operations must be visible as block nodes.
	recvs := 0
	for _, bl := range g.Blocks {
		for _, n := range bl.Nodes {
			if NodeContains(n, func(c ast.Node) bool {
				u, ok := c.(*ast.UnaryExpr)
				return ok && u.Op == token.ARROW
			}) {
				recvs++
			}
		}
	}
	if recvs != 2 {
		t.Errorf("found %d receive nodes, want 2", recvs)
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	f, _ := check(t, `package fixture
func f(x int) int {
	switch x {
	case 1:
		fallthrough
	case 2:
		return 2
	default:
		for {
		}
	}
}`)
	g := New(funcBody(t, f, "f"))
	// Exit is reachable only through cases 1→2; the default spins forever.
	if !g.ExitReachable() {
		t.Error("fallthrough path should reach exit")
	}
}

func TestAlwaysHits(t *testing.T) {
	f, _ := check(t, `package fixture
func every(xs []int) []int {
	out := make([]int, 0, len(xs))
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
func some(xs []int) []int {
	if len(xs) == 0 {
		return nil
	}
	return make([]int, len(xs))
}`)
	isMake := func(n ast.Node) bool {
		return NodeContains(n, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := call.Fun.(*ast.Ident)
			return ok && id.Name == "make"
		})
	}
	if !New(funcBody(t, f, "every")).AlwaysHits(isMake) {
		t.Error("every: make dominates exit, AlwaysHits should be true")
	}
	if New(funcBody(t, f, "some")).AlwaysHits(isMake) {
		t.Error("some: the nil return avoids make, AlwaysHits should be false")
	}
}

func TestNeverReturnsSummaries(t *testing.T) {
	f, info := check(t, `package fixture
func spin() {
	for {
	}
}
func viaHelper() {
	spin()
}
func selfRec() {
	selfRec()
}
func mutualA() { mutualB() }
func mutualB() { mutualA() }
func condRec(n int) {
	if n > 0 {
		condRec(n - 1)
	}
}
func plain() int { return 1 }
func spawns() {
	go func() {
		for {
		}
	}()
}`)
	cg := BuildCallGraph([]*ast.File{f}, info)
	never := cg.NeverReturns()
	byName := func(name string) *FuncInfo {
		for _, fi := range cg.Funcs {
			if fi.Decl != nil && fi.Decl.Name.Name == name {
				return fi
			}
		}
		t.Fatalf("no func %q", name)
		return nil
	}
	for name, want := range map[string]bool{
		"spin":      true,
		"viaHelper": true,
		"selfRec":   true,
		"mutualA":   true,
		"mutualB":   true,
		"condRec":   false,
		"plain":     false,
		// spawns returns immediately; the literal it launches does not run
		// inline, so the parent must not inherit its non-termination.
		"spawns": false,
	} {
		if got := never[byName(name)]; got != want {
			t.Errorf("NeverReturns[%s] = %v, want %v", name, got, want)
		}
	}
	// The launched literal itself is in the graph and never returns.
	lits := 0
	for _, fi := range cg.Funcs {
		if fi.Lit != nil {
			lits++
			if !never[fi] {
				t.Error("the spawned literal spins forever; NeverReturns should be true")
			}
		}
	}
	if lits != 1 {
		t.Fatalf("call graph registered %d literals, want 1", lits)
	}
}

func TestMayReachChannelWait(t *testing.T) {
	f, info := check(t, `package fixture
func waiter(ch chan int) {
	for {
		<-ch
	}
}
func viaHelper(ch chan int) {
	for {
		waiter(ch)
	}
}
func noWait() {
	for {
	}
}`)
	cg := BuildCallGraph([]*ast.File{f}, info)
	recv := cg.MayReach(func(_ *FuncInfo, n ast.Node) bool {
		u, ok := n.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	})
	for _, fi := range cg.Funcs {
		want := fi.Decl.Name.Name != "noWait"
		if got := recv[fi]; got != want {
			t.Errorf("MayReach[%s] = %v, want %v", fi.Name(), got, want)
		}
	}
}

func TestSCCOrder(t *testing.T) {
	f, info := check(t, `package fixture
func a() { b() }
func b() { c(); b() }
func c() {}`)
	cg := BuildCallGraph([]*ast.File{f}, info)
	sccs := cg.SCCs()
	pos := map[string]int{}
	for i, scc := range sccs {
		for _, fi := range scc {
			pos[fi.Name()] = i
		}
	}
	// Reverse topological: callees before callers.
	if !(pos["c"] < pos["b"] && pos["b"] < pos["a"]) {
		t.Errorf("SCC order %v not reverse-topological", pos)
	}
}

func TestGotoIsConservative(t *testing.T) {
	f, _ := check(t, `package fixture
func f() {
loop:
	goto loop
}`)
	g := New(funcBody(t, f, "f"))
	if !g.HasGoto {
		t.Error("HasGoto should be set")
	}
}
