// Package flow is the control-flow and call-graph substrate for whpcvet's
// interprocedural analyzers. It builds intraprocedural control-flow graphs
// over go/ast function bodies (basic blocks with branch, loop and defer
// edges), resolves a per-package call graph through go/types, and computes
// function summaries bottom-up over strongly connected components so
// analyzers can ask interprocedural questions ("does every path through this
// callee allocate?", "can this goroutine ever return?") without a
// whole-program engine. Dynamic calls — through interfaces or function
// values — resolve to no callee and summaries treat them conservatively, in
// whichever direction avoids a false finding.
//
// The graph invariant analyzers rely on: block Nodes hold only simple
// statements and expressions (assignments, calls, conditions, channel
// operations). Compound statements (if/for/switch/select bodies) are
// decomposed into blocks and edges and never appear as nodes, so a
// node-level predicate never accidentally matches code from a different
// block. Function literal bodies are likewise excluded — they execute
// elsewhere — and get their own FuncInfo in the call graph.
package flow

import (
	"go/ast"
	"go/token"
)

// Block is one basic block: a maximal run of straight-line code.
type Block struct {
	Index int
	// Nodes are the simple statements and expressions executed in order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is where execution begins.
	Entry *Block
	// Ret is the common exit prologue: every return statement and the
	// fall-off-the-end path route through it, and it holds the call
	// expressions of deferred statements in reverse registration order —
	// the "defer edges". Registration is over-approximated: a defer
	// registered inside a branch still appears here.
	Ret *Block
	// Exit is the single synthetic exit block.
	Exit *Block
	// Blocks lists every block, including unreachable continuations left
	// behind by return/break/continue.
	Blocks []*Block
	// Defers are the defer statements in registration order.
	Defers []*ast.DeferStmt
	// HasGoto records that the body used goto; its edges are approximated
	// as leaving the function, so analyzers may want to bail.
	HasGoto bool
}

// New builds the control-flow graph of body.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	g.Entry = g.newBlock()
	g.Ret = g.newBlock()
	g.Exit = g.newBlock()
	b := &builder{g: g, cur: g.Entry}
	b.stmts(body.List)
	edge(b.cur, g.Ret)
	edge(g.Ret, g.Exit)
	for i := len(g.Defers) - 1; i >= 0; i-- {
		g.Ret.Nodes = append(g.Ret.Nodes, g.Defers[i].Call)
	}
	return g
}

func (g *Graph) newBlock() *Block {
	b := &Block{Index: len(g.Blocks)}
	g.Blocks = append(g.Blocks, b)
	return b
}

func edge(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// scope is one enclosing breakable/continuable construct.
type scope struct {
	label string
	brk   *Block
	cont  *Block // nil for switch and select
}

type builder struct {
	g            *Graph
	cur          *Block
	scopes       []scope
	pendingLabel string
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) node(n ast.Node) {
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmt(s ast.Stmt) {
	label := b.pendingLabel
	b.pendingLabel = ""
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)
	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""
	case *ast.ReturnStmt:
		b.node(s)
		edge(b.cur, b.g.Ret)
		b.cur = b.g.newBlock()
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := b.target(s, false); t != nil {
				edge(b.cur, t)
			}
			b.cur = b.g.newBlock()
		case token.CONTINUE:
			if t := b.target(s, true); t != nil {
				edge(b.cur, t)
			}
			b.cur = b.g.newBlock()
		case token.GOTO:
			b.g.HasGoto = true
			edge(b.cur, b.g.Ret)
			b.cur = b.g.newBlock()
		}
		// fallthrough is wired by the switch builder
	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.node(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.node(s.Init)
		}
		if s.Tag != nil {
			b.node(s.Tag)
		}
		b.switchBody(s.Body, label, true)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.node(s.Init)
		}
		b.node(s.Assign)
		b.switchBody(s.Body, label, false)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	default:
		b.node(s)
	}
}

// target resolves a break or continue to its destination block, honoring an
// optional label.
func (b *builder) target(s *ast.BranchStmt, isContinue bool) *Block {
	want := ""
	if s.Label != nil {
		want = s.Label.Name
	}
	for i := len(b.scopes) - 1; i >= 0; i-- {
		sc := b.scopes[i]
		if want != "" && sc.label != want {
			continue
		}
		if isContinue {
			if sc.cont != nil {
				return sc.cont
			}
			continue
		}
		return sc.brk
	}
	return nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.node(s.Init)
	}
	b.node(s.Cond)
	cond := b.cur
	then := b.g.newBlock()
	after := b.g.newBlock()
	edge(cond, then)
	b.cur = then
	b.stmts(s.Body.List)
	edge(b.cur, after)
	if s.Else != nil {
		els := b.g.newBlock()
		edge(cond, els)
		b.cur = els
		b.stmt(s.Else)
		edge(b.cur, after)
	} else {
		edge(cond, after)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.node(s.Init)
	}
	head := b.g.newBlock()
	edge(b.cur, head)
	if s.Cond != nil {
		head.Nodes = append(head.Nodes, s.Cond)
	}
	body := b.g.newBlock()
	after := b.g.newBlock()
	edge(head, body)
	if s.Cond != nil {
		// A condition-less `for` can only leave via break or return, so
		// no head→after edge exists and Exit may become unreachable —
		// exactly what goroleak looks for.
		edge(head, after)
	}
	post := head
	if s.Post != nil {
		post = b.g.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		edge(post, head)
	}
	b.scopes = append(b.scopes, scope{label: label, brk: after, cont: post})
	b.cur = body
	b.stmts(s.Body.List)
	edge(b.cur, post)
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.g.newBlock()
	edge(b.cur, head)
	head.Nodes = append(head.Nodes, s.X)
	if s.Key != nil {
		head.Nodes = append(head.Nodes, s.Key)
	}
	if s.Value != nil {
		head.Nodes = append(head.Nodes, s.Value)
	}
	body := b.g.newBlock()
	after := b.g.newBlock()
	edge(head, body)
	edge(head, after)
	b.scopes = append(b.scopes, scope{label: label, brk: after, cont: head})
	b.cur = body
	b.stmts(s.Body.List)
	edge(b.cur, head)
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// switchBody builds the clause blocks shared by expression and type
// switches. caseExprs controls whether clause expressions become nodes
// (type-switch clauses list types, which have no flow meaning).
func (b *builder) switchBody(body *ast.BlockStmt, label string, caseExprs bool) {
	head := b.cur
	after := b.g.newBlock()
	var clauses []*ast.CaseClause
	for _, cs := range body.List {
		if cc, ok := cs.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		blocks[i] = b.g.newBlock()
		edge(head, blocks[i])
		if cc.List == nil {
			hasDefault = true
		}
	}
	if !hasDefault {
		edge(head, after)
	}
	b.scopes = append(b.scopes, scope{label: label, brk: after})
	for i, cc := range clauses {
		b.cur = blocks[i]
		if caseExprs {
			for _, e := range cc.List {
				b.node(e)
			}
		}
		stmts := cc.Body
		fallsThrough := false
		if n := len(stmts); n > 0 {
			if br, ok := stmts[n-1].(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				stmts = stmts[:n-1]
				fallsThrough = i+1 < len(clauses)
			}
		}
		b.stmts(stmts)
		if fallsThrough {
			edge(b.cur, blocks[i+1])
		} else {
			edge(b.cur, after)
		}
	}
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	after := b.g.newBlock()
	b.scopes = append(b.scopes, scope{label: label, brk: after})
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		cb := b.g.newBlock()
		edge(head, cb)
		b.cur = cb
		if cc.Comm != nil {
			// The communication op (send, receive, receive-assign) is a
			// simple statement; record it so channel-wait predicates see it.
			b.stmt(cc.Comm)
		}
		b.stmts(cc.Body)
		edge(b.cur, after)
	}
	// An empty select{} blocks forever: no clause edges, after unreachable.
	b.scopes = b.scopes[:len(b.scopes)-1]
	b.cur = after
}

// ExitReachable reports whether any path leads from Entry to Exit.
func (g *Graph) ExitReachable() bool {
	return g.reaches(nil)
}

// AlwaysHits reports whether every Entry→Exit path contains a block node for
// which match returns true. When Exit is unreachable it returns true
// vacuously. match receives block nodes; use NodeContains to test
// subexpressions.
func (g *Graph) AlwaysHits(match func(ast.Node) bool) bool {
	return !g.reaches(match)
}

// reaches reports whether Exit is reachable from Entry through blocks none
// of whose nodes match avoid (avoid may be nil).
func (g *Graph) reaches(avoid func(ast.Node) bool) bool {
	blocked := func(bl *Block) bool {
		if avoid == nil {
			return false
		}
		for _, n := range bl.Nodes {
			if avoid(n) {
				return true
			}
		}
		return false
	}
	seen := make([]bool, len(g.Blocks))
	queue := []*Block{}
	if !blocked(g.Entry) {
		seen[g.Entry.Index] = true
		queue = append(queue, g.Entry)
	}
	for len(queue) > 0 {
		bl := queue[0]
		queue = queue[1:]
		if bl == g.Exit {
			return true
		}
		for _, s := range bl.Succs {
			if !seen[s.Index] && !blocked(s) {
				seen[s.Index] = true
				queue = append(queue, s)
			}
		}
	}
	return false
}

// ReachableBlocks returns the blocks reachable from Entry in index order.
func (g *Graph) ReachableBlocks() []*Block {
	seen := make([]bool, len(g.Blocks))
	seen[g.Entry.Index] = true
	queue := []*Block{g.Entry}
	for len(queue) > 0 {
		bl := queue[0]
		queue = queue[1:]
		for _, s := range bl.Succs {
			if !seen[s.Index] {
				seen[s.Index] = true
				queue = append(queue, s)
			}
		}
	}
	var out []*Block
	for _, bl := range g.Blocks {
		if seen[bl.Index] {
			out = append(out, bl)
		}
	}
	return out
}

// NodeContains reports whether any subnode of n satisfies test, without
// descending into function literals: their bodies execute elsewhere and have
// their own FuncInfo in the call graph.
func NodeContains(n ast.Node, test func(ast.Node) bool) bool {
	found := false
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil || found {
			return false
		}
		if _, ok := c.(*ast.FuncLit); ok && c != n {
			return false
		}
		if test(c) {
			found = true
			return false
		}
		return true
	})
	return found
}
