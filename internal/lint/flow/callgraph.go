package flow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FuncInfo is one function in a package's call graph: a declared function or
// method, or a function literal.
type FuncInfo struct {
	// Decl is set for declared functions and methods, Lit for literals;
	// exactly one is non-nil.
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Obj is the checker's object for declared functions; nil for literals.
	Obj *types.Func
	// Parent is the lexically enclosing function of a literal; nil for
	// declarations.
	Parent *FuncInfo
	// Body is nil for bodiless declarations (assembly, linkname).
	Body *ast.BlockStmt
	// Calls lists every call expression in the body, in source order,
	// excluding those inside nested literals (which own their calls).
	Calls []Call

	graph *Graph
}

// Name returns the declared name, or "func literal".
func (f *FuncInfo) Name() string {
	if f.Decl != nil {
		return f.Decl.Name.Name
	}
	return "func literal"
}

// Pos returns the function's source position.
func (f *FuncInfo) Pos() token.Pos {
	if f.Decl != nil {
		return f.Decl.Pos()
	}
	return f.Lit.Pos()
}

// CFG returns the function's control-flow graph, building it on first use,
// or nil for bodiless declarations.
func (f *FuncInfo) CFG() *Graph {
	if f.Body == nil {
		return nil
	}
	if f.graph == nil {
		f.graph = New(f.Body)
	}
	return f.graph
}

// CallAt returns the recorded call for a site in this function, or nil.
func (f *FuncInfo) CallAt(call *ast.CallExpr) *Call {
	for i := range f.Calls {
		if f.Calls[i].Site == call {
			return &f.Calls[i]
		}
	}
	return nil
}

// CalleeOf returns the resolved same-package target of a call site recorded
// in Calls, or nil.
func (f *FuncInfo) CalleeOf(call *ast.CallExpr) *FuncInfo {
	if c := f.CallAt(call); c != nil {
		return c.Callee
	}
	return nil
}

// Call is one call site inside a function.
type Call struct {
	Site *ast.CallExpr
	// Obj is the statically resolved callee object from any package; nil
	// for dynamic calls (interface methods bind here, function values do
	// not) and for immediately invoked literals.
	Obj *types.Func
	// Callee is the same-package FuncInfo when the call statically targets
	// one (including immediately invoked literals); nil otherwise. Summary
	// propagation only crosses Callee edges — everything else is treated
	// conservatively.
	Callee *FuncInfo
	// Go marks the call of a go statement: the target runs in another
	// goroutine, so summaries must not treat it as executing inline.
	Go bool
}

// CallGraph is the per-package call graph.
type CallGraph struct {
	Funcs []*FuncInfo

	byObj   map[*types.Func]*FuncInfo
	byLit   map[*ast.FuncLit]*FuncInfo
	goCalls map[*ast.CallExpr]bool
	info    *types.Info
}

// BuildCallGraph walks the package's files, registering every declared
// function and literal and resolving static call edges through the checker's
// uses map.
func BuildCallGraph(files []*ast.File, info *types.Info) *CallGraph {
	cg := &CallGraph{
		byObj:   make(map[*types.Func]*FuncInfo),
		byLit:   make(map[*ast.FuncLit]*FuncInfo),
		goCalls: make(map[*ast.CallExpr]bool),
		info:    info,
	}
	for _, f := range files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fi := &FuncInfo{Decl: fd, Body: fd.Body}
			if obj, ok := info.Defs[fd.Name].(*types.Func); ok {
				fi.Obj = obj
				cg.byObj[obj] = fi
			}
			cg.Funcs = append(cg.Funcs, fi)
		}
	}
	// Walk bodies after every declaration is registered so forward
	// references resolve.
	for _, fi := range cg.Funcs[:len(cg.Funcs):len(cg.Funcs)] {
		cg.walkBody(fi)
	}
	// Immediately invoked literals are visited parent-first, so their
	// FuncInfo does not exist yet when the call is recorded; resolve them
	// in a second pass.
	for _, fi := range cg.Funcs {
		for i := range fi.Calls {
			c := &fi.Calls[i]
			if c.Callee != nil || c.Obj != nil {
				continue
			}
			if lit, ok := ast.Unparen(c.Site.Fun).(*ast.FuncLit); ok {
				c.Callee = cg.byLit[lit]
			}
		}
	}
	return cg
}

func (cg *CallGraph) walkBody(fi *FuncInfo) {
	if fi.Body == nil {
		return
	}
	ast.Inspect(fi.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			child := &FuncInfo{Lit: n, Parent: fi, Body: n.Body}
			cg.Funcs = append(cg.Funcs, child)
			cg.byLit[n] = child
			cg.walkBody(child)
			return false
		case *ast.GoStmt:
			// Visited before its Call child; mark it so addCall tags it.
			cg.goCalls[n.Call] = true
		case *ast.CallExpr:
			cg.addCall(fi, n)
		}
		return true
	})
}

func (cg *CallGraph) addCall(fi *FuncInfo, call *ast.CallExpr) {
	if tv, ok := cg.info.Types[call.Fun]; ok && tv.IsType() {
		return // conversion, not a call
	}
	var obj *types.Func
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ = cg.info.Uses[fun].(*types.Func)
	case *ast.SelectorExpr:
		obj, _ = cg.info.Uses[fun.Sel].(*types.Func)
	}
	c := Call{Site: call, Obj: obj, Go: cg.goCalls[call]}
	if obj != nil {
		c.Callee = cg.byObj[obj]
	}
	fi.Calls = append(fi.Calls, c)
}

// FuncOf returns the FuncInfo for a declared function object, or nil.
func (cg *CallGraph) FuncOf(obj *types.Func) *FuncInfo {
	return cg.byObj[obj]
}

// LitOf returns the FuncInfo for a function literal, or nil.
func (cg *CallGraph) LitOf(lit *ast.FuncLit) *FuncInfo {
	return cg.byLit[lit]
}

// SCCs returns the strongly connected components of the call graph in
// reverse topological order: every component is emitted before any component
// that calls into it, so bottom-up summary computation can walk the slice in
// order.
func (cg *CallGraph) SCCs() [][]*FuncInfo {
	t := &tarjan{
		index:   make(map[*FuncInfo]int),
		lowlink: make(map[*FuncInfo]int),
		onStack: make(map[*FuncInfo]bool),
	}
	for _, f := range cg.Funcs {
		if _, seen := t.index[f]; !seen {
			t.connect(f)
		}
	}
	return t.sccs
}

type tarjan struct {
	next    int
	index   map[*FuncInfo]int
	lowlink map[*FuncInfo]int
	onStack map[*FuncInfo]bool
	stack   []*FuncInfo
	sccs    [][]*FuncInfo
}

func (t *tarjan) connect(f *FuncInfo) {
	t.index[f] = t.next
	t.lowlink[f] = t.next
	t.next++
	t.stack = append(t.stack, f)
	t.onStack[f] = true
	for _, c := range f.Calls {
		w := c.Callee
		if w == nil {
			continue
		}
		if _, seen := t.index[w]; !seen {
			t.connect(w)
			t.lowlink[f] = min(t.lowlink[f], t.lowlink[w])
		} else if t.onStack[w] {
			t.lowlink[f] = min(t.lowlink[f], t.index[w])
		}
	}
	if t.lowlink[f] == t.index[f] {
		var scc []*FuncInfo
		for {
			w := t.stack[len(t.stack)-1]
			t.stack = t.stack[:len(t.stack)-1]
			t.onStack[w] = false
			scc = append(scc, w)
			if w == f {
				break
			}
		}
		t.sccs = append(t.sccs, scc)
	}
}
