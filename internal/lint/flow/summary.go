package flow

import "go/ast"

// MustReach computes, bottom-up over SCCs, the set of functions for which
// every entry→exit path hits a node satisfying pred or a call to a function
// already in the set. It is a greatest fixpoint: SCC members start in the
// set and drop out when an avoiding path appears, so unconditional mutual
// recursion stays in. Dynamic and cross-package calls never satisfy the
// predicate — the summary under-approximates, which is the conservative
// direction for analyzers that report when a function IS in the set.
//
// Bodiless declarations are never in the set. A function whose exit is
// unreachable is vacuously in it (no path avoids anything).
func (cg *CallGraph) MustReach(pred func(f *FuncInfo, n ast.Node) bool) map[*FuncInfo]bool {
	in := make(map[*FuncInfo]bool)
	hit := func(f *FuncInfo, n ast.Node) bool {
		return NodeContains(n, func(c ast.Node) bool {
			if pred(f, c) {
				return true
			}
			if call, ok := c.(*ast.CallExpr); ok {
				if rec := f.CallAt(call); rec != nil && !rec.Go && rec.Callee != nil && in[rec.Callee] {
					return true
				}
			}
			return false
		})
	}
	for _, scc := range cg.SCCs() {
		for _, f := range scc {
			in[f] = f.Body != nil
		}
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				if !in[f] {
					continue
				}
				g := f.CFG()
				if g == nil || !g.AlwaysHits(func(n ast.Node) bool { return hit(f, n) }) {
					in[f] = false
					changed = true
				}
			}
		}
	}
	return in
}

// NeverReturns computes the set of functions that cannot reach their exit:
// an infinite loop with no break, an empty select, or an unconditional call
// (on every path) to another never-returning function — including mutual
// and self recursion.
func (cg *CallGraph) NeverReturns() map[*FuncInfo]bool {
	return cg.MustReach(func(*FuncInfo, ast.Node) bool { return false })
}

// MayReach computes, bottom-up over SCCs, the set of functions in which some
// node satisfies pred, or which call (directly or transitively through
// same-package static edges) a function that does. It is a least fixpoint —
// presence anywhere in the body counts, reachability of the node is not
// required — so it over-approximates; the right tool for "does this
// goroutine wait on a channel anywhere?" where over-approximation avoids
// false findings.
func (cg *CallGraph) MayReach(pred func(f *FuncInfo, n ast.Node) bool) map[*FuncInfo]bool {
	in := make(map[*FuncInfo]bool)
	for _, scc := range cg.SCCs() {
		for changed := true; changed; {
			changed = false
			for _, f := range scc {
				if in[f] || f.Body == nil {
					continue
				}
				found := NodeContains(f.Body, func(c ast.Node) bool {
					if pred(f, c) {
						return true
					}
					if call, ok := c.(*ast.CallExpr); ok {
						if rec := f.CallAt(call); rec != nil && !rec.Go && rec.Callee != nil && in[rec.Callee] {
							return true
						}
					}
					return false
				})
				if found {
					in[f] = true
					changed = true
				}
			}
		}
	}
	return in
}
