// Package scholar simulates the two bibliometric services the paper draws
// researcher-experience data from: Google Scholar profiles (manually and
// unambiguously linked for 68.3% of researchers; publications, h-index,
// i10-index, citations, all circa 2017) and the Semantic Scholar database
// (100% author coverage, but different data and disambiguation algorithms,
// yielding a low correlation with Google Scholar — r = 0.334 in the paper).
//
// The package provides the pure bibliometric functions (h-index, i10-index)
// with their classical definitions, a Profile type, citation-accrual
// modeling for the paper's 36-month reception analysis, and in-memory
// directories standing in for the two services.
package scholar

import (
	"fmt"
	"sort"
)

// Profile is a Google-Scholar-style researcher profile snapshot (circa the
// conference date, as the paper collected them).
type Profile struct {
	Publications int // total past publications
	HIndex       int
	I10Index     int
	Citations    int // total citations across all publications
}

// BuildProfile derives a consistent Profile from a per-publication citation
// vector (one entry per past publication).
func BuildProfile(citations []int) Profile {
	return Profile{
		Publications: len(citations),
		HIndex:       HIndex(citations),
		I10Index:     I10Index(citations),
		Citations:    TotalCitations(citations),
	}
}

// Validate checks the internal consistency axioms every real profile obeys.
func (p Profile) Validate() error {
	if p.Publications < 0 || p.HIndex < 0 || p.I10Index < 0 || p.Citations < 0 {
		return fmt.Errorf("scholar: negative profile field: %+v", p)
	}
	if p.HIndex > p.Publications {
		return fmt.Errorf("scholar: h-index %d exceeds publications %d", p.HIndex, p.Publications)
	}
	if p.I10Index > p.Publications {
		return fmt.Errorf("scholar: i10-index %d exceeds publications %d", p.I10Index, p.Publications)
	}
	if p.HIndex*p.HIndex > p.Citations {
		return fmt.Errorf("scholar: h-index %d impossible with %d total citations", p.HIndex, p.Citations)
	}
	return nil
}

// HIndex returns Hirsch's h-index: the largest h such that at least h
// publications have at least h citations each.
func HIndex(citations []int) int {
	sorted := append([]int(nil), citations...)
	sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
	h := 0
	for i, c := range sorted {
		if c >= i+1 {
			h = i + 1
		} else {
			break
		}
	}
	return h
}

// I10Index returns Google Scholar's i10-index: the number of publications
// with at least 10 citations.
func I10Index(citations []int) int {
	n := 0
	for _, c := range citations {
		if c >= 10 {
			n++
		}
	}
	return n
}

// TotalCitations sums a citation vector, treating negative entries as 0
// (defensive: citation counts cannot go negative).
func TotalCitations(citations []int) int {
	total := 0
	for _, c := range citations {
		if c > 0 {
			total += c
		}
	}
	return total
}

// ExperienceBand is the paper's three-way stratification of researchers by
// h-index, "following Hirsch's categorization" (§5.1): novice below 13,
// mid-career 13 to 18 inclusive, experienced above 18.
type ExperienceBand int

const (
	Novice ExperienceBand = iota
	MidCareer
	Experienced
)

// Band thresholds from the paper.
const (
	NoviceMax    = 13 // exclusive upper bound for Novice
	MidCareerMax = 18 // inclusive upper bound for MidCareer
)

// BandOf classifies an h-index into the paper's experience bands.
func BandOf(hIndex int) ExperienceBand {
	switch {
	case hIndex < NoviceMax:
		return Novice
	case hIndex <= MidCareerMax:
		return MidCareer
	default:
		return Experienced
	}
}

// String names the band as the paper does.
func (b ExperienceBand) String() string {
	switch b {
	case Novice:
		return "novice"
	case MidCareer:
		return "mid-career"
	case Experienced:
		return "experienced"
	default:
		return "unknown"
	}
}

// Bands lists the three bands in ascending order, for table rendering.
func Bands() []ExperienceBand { return []ExperienceBand{Novice, MidCareer, Experienced} }
