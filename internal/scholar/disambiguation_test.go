package scholar

import (
	"testing"
)

func TestNameIndexResolve(t *testing.T) {
	ix := NewNameIndex()
	ix.Register("Wei Zhang", "gs001")
	ix.Register("Eitan Frachtenberg", "gs002")
	ix.Register("Wei Zhang", "gs003") // namesake

	id, cands, r := ix.Resolve("Eitan Frachtenberg")
	if r != Unique || id != "gs002" || len(cands) != 1 {
		t.Errorf("unique resolve = (%q, %v, %v)", id, cands, r)
	}
	id, cands, r = ix.Resolve("Wei Zhang")
	if r != Ambiguous || id != "" {
		t.Errorf("namesake resolve = (%q, %v, %v)", id, cands, r)
	}
	if len(cands) != 2 || cands[0] != "gs001" || cands[1] != "gs003" {
		t.Errorf("candidates = %v", cands)
	}
	if _, _, r := ix.Resolve("Nobody Here"); r != NotFound {
		t.Errorf("missing name resolved: %v", r)
	}
}

func TestNameIndexNormalization(t *testing.T) {
	ix := NewNameIndex()
	ix.Register("  Mary   Shaw ", "gs1")
	if _, _, r := ix.Resolve("mary shaw"); r != Unique {
		t.Error("case/whitespace normalization failed")
	}
	// Duplicate (name, id) registration is a no-op.
	ix.Register("Mary Shaw", "gs1")
	if _, cands, r := ix.Resolve("MARY SHAW"); r != Unique || len(cands) != 1 {
		t.Errorf("duplicate registration created ambiguity: %v %v", cands, r)
	}
	// Empty inputs ignored.
	ix.Register("", "gsX")
	ix.Register("Someone", "")
	if _, _, r := ix.Resolve(""); r != NotFound {
		t.Error("empty name should not resolve")
	}
	if _, _, r := ix.Resolve("Someone"); r != NotFound {
		t.Error("empty-id registration should be ignored")
	}
}

func TestUnambiguousRate(t *testing.T) {
	ix := NewNameIndex()
	ix.Register("A One", "1")
	ix.Register("B Two", "2")
	ix.Register("C Three", "3a")
	ix.Register("C Three", "3b")
	names := []string{"A One", "B Two", "C Three", "D Missing"}
	// 2 unique of 4.
	if got := ix.UnambiguousRate(names); got != 0.5 {
		t.Errorf("UnambiguousRate = %g, want 0.5", got)
	}
	if ix.UnambiguousRate(nil) != 0 {
		t.Error("empty name list should rate 0")
	}
}

func TestNameIndexNames(t *testing.T) {
	ix := NewNameIndex()
	ix.Register("Zed Last", "z")
	ix.Register("Amy First", "a")
	names := ix.Names()
	if len(names) != 2 || names[0] != "amy first" || names[1] != "zed last" {
		t.Errorf("Names = %v", names)
	}
}

// TestNameIndexOverCorpusNames: common surnames in the corpus create
// genuine ambiguity, so the unambiguous rate sits strictly between 0 and 1
// — the mechanism behind the paper's 68.3% coverage.
func TestNameIndexOverCorpusNames(t *testing.T) {
	// Simulate a small directory where some names collide.
	ix := NewNameIndex()
	names := []string{
		"Wei Wang", "Wei Wang", "Ming Li", "Mary Johnson", "John Smith",
		"John Smith", "Priya Sharma", "Hiroshi Sato", "Li Chen", "Li Chen",
	}
	for i, n := range names {
		ix.Register(n, string(rune('a'+i)))
	}
	distinct := []string{"Wei Wang", "Ming Li", "Mary Johnson", "John Smith",
		"Priya Sharma", "Hiroshi Sato", "Li Chen"}
	rate := ix.UnambiguousRate(distinct)
	if rate <= 0 || rate >= 1 {
		t.Errorf("rate = %g, want strictly between 0 and 1", rate)
	}
	// Exactly 4 of 7 distinct names are unique here.
	if rate != 4.0/7 {
		t.Errorf("rate = %g, want %g", rate, 4.0/7)
	}
}
