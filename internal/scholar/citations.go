package scholar

import (
	"errors"
	"math"
	"math/rand/v2"
)

// CitationModel draws per-paper citation totals at a 36-month horizon, the
// window the paper lets its dataset age to before the Fig 2 reception
// analysis. Totals follow a discretized log-normal — the standard
// heavy-tailed, right-skewed model for citation counts — with an explicit
// zero-inflation mass for never-cited papers.
type CitationModel struct {
	Mu    float64 // log-scale location of the log-normal body
	Sigma float64 // log-scale spread
	PZero float64 // probability a paper is never cited in the window
}

// Draw samples one paper's citation count at 36 months.
func (m CitationModel) Draw(rng *rand.Rand) int {
	if m.PZero > 0 && rng.Float64() < m.PZero {
		return 0
	}
	x := math.Exp(m.Mu + m.Sigma*rng.NormFloat64())
	n := int(math.Round(x))
	if n < 1 {
		n = 1 // the body draws a cited paper; zero mass is handled above
	}
	return n
}

// Mean returns the model's expected citation count.
func (m CitationModel) Mean() float64 {
	return (1 - m.PZero) * math.Exp(m.Mu+m.Sigma*m.Sigma/2)
}

// AccrualCurve is the fraction of 36-month citations accrued by month t,
// modeling the well-documented slow first year followed by near-linear
// growth. It is exposed so the time-series analyses can interpolate
// mid-window snapshots; AccrualCurve(0) = 0 and AccrualCurve(36) = 1.
func AccrualCurve(month float64) float64 {
	switch {
	case month <= 0:
		return 0
	case month >= 36:
		return 1
	}
	// Smooth ramp: quadratic ease-in over the first year, then linear.
	if month < 12 {
		return 0.15 * (month / 12) * (month / 12)
	}
	return 0.15 + 0.85*(month-12)/24
}

// CitationsAtMonth scales a 36-month total to an intermediate month using
// the accrual curve (rounded to an integer count).
func CitationsAtMonth(total36 int, month float64) int {
	if total36 <= 0 {
		return 0
	}
	return int(math.Round(float64(total36) * AccrualCurve(month)))
}

// ErrNoPublications is returned when a career model is asked for a
// publication vector of length zero.
var ErrNoPublications = errors.New("scholar: researcher has no publications")

// CareerModel generates a researcher's full per-publication citation
// vector from a latent experience scalar, producing profiles with the
// right-skewed shape of Figs 3-5: a few researchers with thousands of
// publications, most with fewer than 100.
type CareerModel struct {
	// PubMu/PubSigma parameterize the log-normal publication count.
	PubMu    float64
	PubSigma float64
	// CiteMu/CiteSigma parameterize per-paper citations.
	CiteMu    float64
	CiteSigma float64
	PZero     float64 // fraction of uncited papers
	MaxPubs   int     // safety cap; zero means 5000
}

// DrawCareer samples a publication-citation vector for one researcher.
// latent shifts the publication count on the log scale: a latent of 0 is
// an average researcher for this model, positive values are more senior.
func (c CareerModel) DrawCareer(rng *rand.Rand, latent float64) []int {
	maxPubs := c.MaxPubs
	if maxPubs == 0 {
		maxPubs = 5000
	}
	pubs := int(math.Round(math.Exp(c.PubMu + latent + c.PubSigma*rng.NormFloat64())))
	if pubs < 1 {
		pubs = 1
	}
	if pubs > maxPubs {
		pubs = maxPubs
	}
	cm := CitationModel{Mu: c.CiteMu, Sigma: c.CiteSigma, PZero: c.PZero}
	vec := make([]int, pubs)
	for i := range vec {
		vec[i] = cm.Draw(rng)
	}
	return vec
}
