package scholar

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
)

// Directory is an in-memory stand-in for the Google Scholar profile
// registry: researcher ID to Profile, with deliberately incomplete
// coverage (the paper could link only 68.3% of researchers, and the
// missing third skews less experienced).
//
// Concurrency contract: all methods are safe for concurrent use (reads
// take an RLock, writes the lock), and every accessor returns copies —
// Lookup returns a value, IDs and Snapshot freshly allocated containers —
// so callers such as the concurrent harvester can never alias internal
// state. The typical pattern is single-goroutine population followed by
// many-goroutine reads.
type Directory struct {
	mu       sync.RWMutex
	profiles map[string]Profile
}

// NewDirectory returns an empty directory.
func NewDirectory() *Directory {
	return &Directory{profiles: make(map[string]Profile)}
}

// Register adds or replaces a researcher's profile. An invalid profile is
// rejected.
func (d *Directory) Register(id string, p Profile) error {
	if id == "" {
		return fmt.Errorf("scholar: empty researcher id")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.profiles[id] = p
	return nil
}

// Lookup returns the profile for a researcher ID, reproducing the paper's
// "unambiguously linked" semantics: a miss means no profile could be
// identified for that researcher.
func (d *Directory) Lookup(id string) (Profile, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	p, ok := d.profiles[id]
	return p, ok
}

// Len returns the number of registered profiles.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.profiles)
}

// Coverage returns the fraction of ids that resolve to a profile.
func (d *Directory) Coverage(ids []string) float64 {
	if len(ids) == 0 {
		return 0
	}
	hit := 0
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, id := range ids {
		if _, ok := d.profiles[id]; ok {
			hit++
		}
	}
	return float64(hit) / float64(len(ids))
}

// IDs returns the registered researcher IDs, sorted. The slice is a copy
// owned by the caller.
func (d *Directory) IDs() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.profiles))
	for id := range d.profiles {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a copy of the full registry, decoupled from later
// writes — a consistent view for bulk consumers (report generation,
// harvest reconciliation) that must not hold the directory lock while
// they work.
func (d *Directory) Snapshot() map[string]Profile {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]Profile, len(d.profiles))
	for id, p := range d.profiles {
		out[id] = p
	}
	return out
}

// SemanticScholar is the second bibliometric source: 100% author coverage
// but an independent disambiguation pipeline, so its publication counts
// correlate only weakly with Google Scholar's (the paper measures
// r = 0.334). The simulation derives each count from the same underlying
// career with heavy multiplicative noise plus an occasional disambiguation
// blunder (merging or splitting author records).
//
// Concurrency contract: identical to Directory's — all methods are safe
// for concurrent use and accessors return copies (PastPublications a
// value, IDs a fresh slice), so concurrent harvest workers may share one
// instance freely. RegisterFromTruth consumes a caller-owned rand and is
// typically confined to the single-goroutine population phase.
type SemanticScholar struct {
	mu     sync.RWMutex
	counts map[string]int
}

// NewSemanticScholar returns an empty Semantic Scholar stand-in.
func NewSemanticScholar() *SemanticScholar {
	return &SemanticScholar{counts: make(map[string]int)}
}

// DisambiguationNoise captures how far the S2 record strays from truth.
type DisambiguationNoise struct {
	Sigma      float64 // log-normal noise on the true count
	PBlunder   float64 // probability of a merge/split blunder
	BlunderMul float64 // multiplicative size of a blunder (e.g. 4 = 4x or 1/4x)
}

// DefaultNoise reproduces the paper's weak cross-source correlation.
var DefaultNoise = DisambiguationNoise{Sigma: 1.25, PBlunder: 0.18, BlunderMul: 6}

// RegisterFromTruth derives and stores the S2 publication count for a
// researcher from their true publication count.
func (s *SemanticScholar) RegisterFromTruth(rng *rand.Rand, id string, truePubs int, noise DisambiguationNoise) error {
	if id == "" {
		return fmt.Errorf("scholar: empty researcher id")
	}
	if truePubs < 0 {
		return fmt.Errorf("scholar: negative publication count %d", truePubs)
	}
	n := float64(truePubs)
	if n < 1 {
		n = 1
	}
	n *= math.Exp(noise.Sigma * rng.NormFloat64())
	if noise.PBlunder > 0 && rng.Float64() < noise.PBlunder {
		if rng.Float64() < 0.5 {
			n *= noise.BlunderMul // merged with a namesake
		} else {
			n /= noise.BlunderMul // record split
		}
	}
	count := int(math.Round(n))
	if count < 1 {
		count = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.counts[id] = count
	return nil
}

// PastPublications returns the S2 publication count for a researcher.
// Unlike the GS Directory, coverage is universal: an unregistered id
// reports ok = false only because the caller never generated it.
func (s *SemanticScholar) PastPublications(id string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n, ok := s.counts[id]
	return n, ok
}

// Len returns the number of registered records.
func (s *SemanticScholar) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.counts)
}

// IDs returns the registered researcher IDs, sorted. The slice is a copy
// owned by the caller.
func (s *SemanticScholar) IDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.counts))
	for id := range s.counts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
