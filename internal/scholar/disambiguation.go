package scholar

import (
	"sort"
	"strings"
	"sync"
)

// NameIndex models the disambiguation problem behind the paper's "we were
// able to unambiguously link approximately two thirds (68.3%) of
// researchers ... to a Google Scholar profile": profiles are found by
// name, and a name shared by several profiles cannot be linked without
// manual evidence. The index maps normalized names to candidate profile
// IDs and reports whether resolution is unique.
type NameIndex struct {
	mu     sync.RWMutex
	byName map[string][]string
}

// NewNameIndex returns an empty index.
func NewNameIndex() *NameIndex {
	return &NameIndex{byName: make(map[string][]string)}
}

// normalizeName lowercases and collapses interior whitespace, the minimal
// canonicalization search engines apply to author names.
func normalizeName(name string) string {
	return strings.Join(strings.Fields(strings.ToLower(name)), " ")
}

// Register adds a profile ID under a researcher name. Registering the same
// (name, id) pair twice is a no-op.
func (ix *NameIndex) Register(name, id string) {
	key := normalizeName(name)
	if key == "" || id == "" {
		return
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for _, existing := range ix.byName[key] {
		if existing == id {
			return
		}
	}
	ix.byName[key] = append(ix.byName[key], id)
}

// Resolution classifies a name lookup.
type Resolution int

const (
	// NotFound: no profile carries this name.
	NotFound Resolution = iota
	// Unique: exactly one profile — the paper's "unambiguously linked".
	Unique
	// Ambiguous: several namesakes; linking needs manual evidence.
	Ambiguous
)

// Resolve looks up a name. For Unique resolutions the profile ID is
// returned; for Ambiguous, the candidate list (sorted) is returned with an
// empty ID.
func (ix *NameIndex) Resolve(name string) (id string, candidates []string, r Resolution) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	ids := ix.byName[normalizeName(name)]
	switch len(ids) {
	case 0:
		return "", nil, NotFound
	case 1:
		return ids[0], []string{ids[0]}, Unique
	default:
		out := append([]string(nil), ids...)
		sort.Strings(out)
		return "", out, Ambiguous
	}
}

// UnambiguousRate returns the fraction of the given names that resolve
// uniquely — the coverage statistic the paper reports.
func (ix *NameIndex) UnambiguousRate(names []string) float64 {
	if len(names) == 0 {
		return 0
	}
	unique := 0
	for _, n := range names {
		if _, _, r := ix.Resolve(n); r == Unique {
			unique++
		}
	}
	return float64(unique) / float64(len(names))
}

// Names returns the registered normalized names, sorted.
func (ix *NameIndex) Names() []string {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]string, 0, len(ix.byName))
	for n := range ix.byName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
