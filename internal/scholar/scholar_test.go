package scholar

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestHIndexKnownValues(t *testing.T) {
	cases := []struct {
		name      string
		citations []int
		want      int
	}{
		{"empty", nil, 0},
		{"single uncited", []int{0}, 0},
		{"single cited", []int{5}, 1},
		{"hirsch example", []int{10, 8, 5, 4, 3}, 4},
		{"all equal high", []int{7, 7, 7, 7, 7, 7, 7, 7}, 7},
		{"all equal low", []int{2, 2, 2, 2, 2}, 2},
		{"one giant", []int{1000}, 1},
		{"staircase", []int{5, 4, 3, 2, 1}, 3},
		{"unsorted input", []int{1, 10, 2, 8, 4, 5, 3}, 4},
	}
	for _, c := range cases {
		if got := HIndex(c.citations); got != c.want {
			t.Errorf("%s: HIndex(%v) = %d, want %d", c.name, c.citations, got, c.want)
		}
	}
}

func TestHIndexDoesNotMutate(t *testing.T) {
	in := []int{1, 10, 2}
	HIndex(in)
	if in[0] != 1 || in[1] != 10 || in[2] != 2 {
		t.Errorf("HIndex mutated input: %v", in)
	}
}

func TestHIndexAxioms(t *testing.T) {
	// h <= n; h <= max citation; adding a highly-cited paper never
	// decreases h; h^2 <= total citations.
	f := func(raw []uint8) bool {
		cit := make([]int, len(raw))
		maxC := 0
		for i, r := range raw {
			cit[i] = int(r)
			if cit[i] > maxC {
				maxC = cit[i]
			}
		}
		h := HIndex(cit)
		if h > len(cit) || h > maxC {
			return false
		}
		if h*h > TotalCitations(cit) {
			return false
		}
		grown := append(append([]int(nil), cit...), 1000)
		return HIndex(grown) >= h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestI10Index(t *testing.T) {
	if got := I10Index([]int{9, 10, 11, 0, 100}); got != 3 {
		t.Errorf("I10Index = %d, want 3", got)
	}
	if got := I10Index(nil); got != 0 {
		t.Errorf("I10Index(nil) = %d, want 0", got)
	}
}

func TestTotalCitations(t *testing.T) {
	if got := TotalCitations([]int{1, 2, 3}); got != 6 {
		t.Errorf("TotalCitations = %d, want 6", got)
	}
	if got := TotalCitations([]int{5, -2, 3}); got != 8 {
		t.Errorf("negative entries must be ignored, got %d", got)
	}
}

func TestBuildProfileConsistency(t *testing.T) {
	cit := []int{30, 25, 12, 12, 9, 3, 0, 0}
	p := BuildProfile(cit)
	if p.Publications != 8 {
		t.Errorf("Publications = %d", p.Publications)
	}
	if p.HIndex != 5 {
		t.Errorf("HIndex = %d, want 5", p.HIndex)
	}
	if p.I10Index != 4 {
		t.Errorf("I10Index = %d, want 4", p.I10Index)
	}
	if p.Citations != 91 {
		t.Errorf("Citations = %d, want 91", p.Citations)
	}
	if err := p.Validate(); err != nil {
		t.Errorf("built profile invalid: %v", err)
	}
}

func TestProfileValidate(t *testing.T) {
	bad := []Profile{
		{Publications: -1},
		{HIndex: 5, Publications: 3},
		{I10Index: 4, Publications: 3},
		{HIndex: 10, Publications: 10, Citations: 50}, // h^2 > citations
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile %+v passed validation", i, p)
		}
	}
	good := Profile{Publications: 100, HIndex: 20, I10Index: 40, Citations: 2000}
	if err := good.Validate(); err != nil {
		t.Errorf("valid profile rejected: %v", err)
	}
}

func TestBandOf(t *testing.T) {
	cases := []struct {
		h    int
		want ExperienceBand
	}{
		{0, Novice}, {12, Novice}, {13, MidCareer}, {18, MidCareer},
		{19, Experienced}, {100, Experienced},
	}
	for _, c := range cases {
		if got := BandOf(c.h); got != c.want {
			t.Errorf("BandOf(%d) = %v, want %v", c.h, got, c.want)
		}
	}
	if Novice.String() != "novice" || MidCareer.String() != "mid-career" || Experienced.String() != "experienced" {
		t.Error("band names wrong")
	}
	if len(Bands()) != 3 {
		t.Error("Bands() must list the three paper bands")
	}
}

func TestBuildProfileBandsEveryVector(t *testing.T) {
	// BandOf(BuildProfile(v).HIndex) never panics and is monotone in h.
	f := func(raw []uint16) bool {
		cit := make([]int, len(raw))
		for i, r := range raw {
			cit[i] = int(r % 500)
		}
		p := BuildProfile(cit)
		return p.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCitationModelShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(10, 20))
	m := CitationModel{Mu: 1.8, Sigma: 1.1, PZero: 0.15}
	n := 20000
	xs := make([]float64, n)
	zeros := 0
	for i := range xs {
		c := m.Draw(rng)
		if c < 0 {
			t.Fatal("negative citation count")
		}
		if c == 0 {
			zeros++
		}
		xs[i] = float64(c)
	}
	zFrac := float64(zeros) / float64(n)
	if zFrac < 0.12 || zFrac > 0.18 {
		t.Errorf("zero fraction %g far from PZero 0.15", zFrac)
	}
	// Sample mean near the analytic mean (within 10%, heavy tail allowed).
	mean := stats.MustMean(xs)
	if math.Abs(mean-m.Mean()) > 0.1*m.Mean() {
		t.Errorf("sample mean %g vs model mean %g", mean, m.Mean())
	}
	// Right-skewed.
	if sk, _ := stats.Skewness(xs); sk <= 1 {
		t.Errorf("citation skewness %g, want strongly positive", sk)
	}
}

func TestAccrualCurve(t *testing.T) {
	if AccrualCurve(0) != 0 || AccrualCurve(-5) != 0 {
		t.Error("accrual before publication must be 0")
	}
	if AccrualCurve(36) != 1 || AccrualCurve(50) != 1 {
		t.Error("accrual at/after 36 months must be 1")
	}
	// Monotone nondecreasing.
	prev := 0.0
	for m := 0.0; m <= 36; m += 0.5 {
		v := AccrualCurve(m)
		if v < prev-1e-12 {
			t.Fatalf("accrual decreased at month %g", m)
		}
		prev = v
	}
	// Continuous at the knee (month 12).
	if math.Abs(AccrualCurve(11.999)-AccrualCurve(12.001)) > 1e-3 {
		t.Error("accrual discontinuous at month 12")
	}
	// Slow first year.
	if AccrualCurve(12) > 0.2 {
		t.Errorf("first-year accrual %g, want < 0.2", AccrualCurve(12))
	}
}

func TestCitationsAtMonth(t *testing.T) {
	if CitationsAtMonth(100, 36) != 100 {
		t.Error("full window must return the total")
	}
	if CitationsAtMonth(100, 0) != 0 {
		t.Error("month 0 must be 0")
	}
	if CitationsAtMonth(0, 18) != 0 || CitationsAtMonth(-5, 18) != 0 {
		t.Error("nonpositive totals must clamp to 0")
	}
	mid := CitationsAtMonth(100, 24)
	if mid <= 0 || mid >= 100 {
		t.Errorf("mid-window citations %d out of range", mid)
	}
}

func TestCareerModelShape(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 5))
	cm := CareerModel{PubMu: 3.0, PubSigma: 1.4, CiteMu: 1.5, CiteSigma: 1.2, PZero: 0.2}
	pubs := make([]float64, 3000)
	sawBig := false
	for i := range pubs {
		career := cm.DrawCareer(rng, 0)
		if len(career) < 1 {
			t.Fatal("empty career")
		}
		if len(career) > 5000 {
			t.Fatal("career exceeded default cap")
		}
		if len(career) > 1000 {
			sawBig = true
		}
		pubs[i] = float64(len(career))
	}
	med, _ := stats.Median(pubs)
	if med > 100 {
		t.Errorf("median publications %g; paper says most researchers have fewer than 100", med)
	}
	if !sawBig {
		t.Error("no researcher with >1000 publications; the paper's tail is missing")
	}
	// Latent shifts seniority.
	senior := cm.DrawCareer(rand.New(rand.NewPCG(1, 1)), 2.0)
	junior := cm.DrawCareer(rand.New(rand.NewPCG(1, 1)), -2.0)
	if len(senior) <= len(junior) {
		t.Errorf("latent 2.0 gave %d pubs vs %d for -2.0", len(senior), len(junior))
	}
	// Explicit cap respected.
	capped := CareerModel{PubMu: 10, PubSigma: 0.1, CiteMu: 1, CiteSigma: 1, MaxPubs: 50}
	if got := len(capped.DrawCareer(rng, 0)); got != 50 {
		t.Errorf("cap ignored: %d pubs", got)
	}
}

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	p := Profile{Publications: 10, HIndex: 3, I10Index: 2, Citations: 60}
	if err := d.Register("r1", p); err != nil {
		t.Fatal(err)
	}
	if err := d.Register("", p); err == nil {
		t.Error("empty id must be rejected")
	}
	if err := d.Register("bad", Profile{HIndex: 5, Publications: 1}); err == nil {
		t.Error("invalid profile must be rejected")
	}
	got, ok := d.Lookup("r1")
	if !ok || got != p {
		t.Errorf("Lookup = %+v, %v", got, ok)
	}
	if _, ok := d.Lookup("missing"); ok {
		t.Error("missing id resolved")
	}
	if d.Len() != 1 {
		t.Errorf("Len = %d", d.Len())
	}
	cov := d.Coverage([]string{"r1", "r2", "r3", "r4"})
	if cov != 0.25 {
		t.Errorf("Coverage = %g, want 0.25", cov)
	}
	if d.Coverage(nil) != 0 {
		t.Error("Coverage(nil) must be 0")
	}
	ids := d.IDs()
	if len(ids) != 1 || ids[0] != "r1" {
		t.Errorf("IDs = %v", ids)
	}
}

func TestSemanticScholarNoiseAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 41))
	s := NewSemanticScholar()
	if err := s.RegisterFromTruth(rng, "", 10, DefaultNoise); err == nil {
		t.Error("empty id must be rejected")
	}
	if err := s.RegisterFromTruth(rng, "x", -1, DefaultNoise); err == nil {
		t.Error("negative count must be rejected")
	}
	// Universal coverage and positive counts.
	n := 3000
	truth := make([]float64, n)
	observed := make([]float64, n)
	for i := 0; i < n; i++ {
		id := string(rune('a'+i%26)) + string(rune('0'+i/26%10)) + string(rune('A'+i/260))
		tp := 1 + int(math.Exp(float64(i%40)/8)) // spread of true counts
		if err := s.RegisterFromTruth(rng, id+"_"+itoa(i), tp, DefaultNoise); err != nil {
			t.Fatal(err)
		}
		got, ok := s.PastPublications(id + "_" + itoa(i))
		if !ok || got < 1 {
			t.Fatalf("registered id lost or nonpositive: %d %v", got, ok)
		}
		truth[i] = math.Log(float64(tp))
		observed[i] = math.Log(float64(got))
	}
	if s.Len() != n {
		t.Errorf("Len = %d, want %d", s.Len(), n)
	}
	// The defining property: correlated with truth, but weakly — the
	// paper's two sources land at r = 0.334 on raw counts.
	r, err := stats.PearsonCorrelation(truth, observed)
	if err != nil {
		t.Fatal(err)
	}
	if r.R < 0.3 || r.R > 0.95 {
		t.Errorf("log-scale truth correlation %g outside (0.3, 0.95)", r.R)
	}
	if _, ok := s.PastPublications("never-registered"); ok {
		t.Error("unregistered id resolved")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
