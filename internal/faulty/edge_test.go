package faulty

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/resilience"
)

// outcomeOf collapses a lookup result into a comparable label.
func outcomeOf(inj *Injector, id string) string {
	_, err := inj.Lookup(context.Background(), id)
	if err == nil {
		return "ok"
	}
	var rl *RateLimitError
	switch {
	case errors.As(err, &rl):
		return "ratelimit"
	case errors.Is(err, ErrTimeout):
		return "timeout"
	case errors.Is(err, ErrTransient):
		return "transient"
	case errors.Is(err, ErrOutage):
		return "outage"
	case errors.Is(err, ErrNotFound):
		return "notfound"
	default:
		return "other"
	}
}

// TestOutageZeroBudget: an outage window of zero (or negative) calls is no
// outage at all — the very first call already sees the steady-state spec.
func TestOutageZeroBudget(t *testing.T) {
	dir := testDirectory(t, 10)
	for _, budget := range []int{0, -1} {
		inj := NewInjector(GSSource{Dir: dir}, FaultSpec{OutageCalls: budget}, 1,
			resilience.NewVirtualClock(time.Unix(0, 0)))
		for i := 0; i < 10; i++ {
			id := fmt.Sprintf("p%03d", i)
			if _, err := inj.Lookup(context.Background(), id); err != nil {
				t.Fatalf("OutageCalls=%d call %d failed: %v", budget, i, err)
			}
		}
		if inj.Calls() != 10 {
			t.Errorf("OutageCalls=%d served %d calls, want 10", budget, inj.Calls())
		}
	}
}

// TestBackToBackFlakyWindows: two harvest "windows" run back to back. A
// fresh injector per window replays the identical fault sequence (draws are
// keyed by per-id attempt ordinal, which restarts with the instance), while
// one injector spanning both windows keeps counting ordinals — the second
// window continues the fault stream instead of repeating it.
func TestBackToBackFlakyWindows(t *testing.T) {
	dir := testDirectory(t, 20)
	spec := Flaky().GS
	const seed = 33
	ids := make([]string, 20)
	for i := range ids {
		ids[i] = fmt.Sprintf("p%03d", i)
	}
	window := func(inj *Injector) []string {
		out := make([]string, 0, len(ids))
		for _, id := range ids {
			out = append(out, outcomeOf(inj, id))
		}
		return out
	}
	clock := func() resilience.Clock { return resilience.NewVirtualClock(time.Unix(0, 0)) }

	// Fresh instance per window: byte-for-byte replay.
	w1 := window(NewInjector(GSSource{Dir: dir}, spec, seed, clock()))
	w2 := window(NewInjector(GSSource{Dir: dir}, spec, seed, clock()))
	if !reflect.DeepEqual(w1, w2) {
		t.Errorf("fresh injectors diverged across windows:\n%v\nvs\n%v", w1, w2)
	}

	// One instance across both windows: ordinals advance, so the stream
	// continues. (Vanished researchers stay vanished — that decision is
	// per-id, not per-ordinal — so compare only non-vanished outcomes.)
	shared := NewInjector(GSSource{Dir: dir}, spec, seed, clock())
	c1, c2 := window(shared), window(shared)
	if !reflect.DeepEqual(c1, w1) {
		t.Errorf("first window of shared injector diverged from fresh injector:\n%v\nvs\n%v", c1, w1)
	}
	continued := false
	for i := range c2 {
		if c1[i] == "notfound" {
			if c2[i] != "notfound" {
				t.Errorf("id %s: vanish decision flipped between windows", ids[i])
			}
			continue
		}
		if c2[i] != c1[i] {
			continued = true
		}
	}
	if !continued {
		t.Error("second window repeated the first verbatim; expected the fault stream to continue across windows")
	}
}

// TestProfileDeterminismAcrossRuns: every named profile drives the identical
// outcome sequence through two independent runs with the same seed, and a
// different seed moves at least one fault (determinism is not degeneracy).
func TestProfileDeterminismAcrossRuns(t *testing.T) {
	dir := testDirectory(t, 40)
	ids := make([]string, 40)
	for i := range ids {
		ids[i] = fmt.Sprintf("p%03d", i)
	}
	run := func(spec FaultSpec, seed uint64) []string {
		inj := NewInjector(GSSource{Dir: dir}, spec, seed, resilience.NewVirtualClock(time.Unix(0, 0)))
		out := make([]string, 0, 2*len(ids))
		for round := 0; round < 2; round++ {
			for _, id := range ids {
				out = append(out, outcomeOf(inj, id))
			}
		}
		return out
	}
	anyDiverged := false
	for _, prof := range []FaultProfile{Flaky(), Degraded(), Outage()} {
		t.Run(prof.Name, func(t *testing.T) {
			a, b := run(prof.GS, 77), run(prof.GS, 77)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("same seed diverged across runs:\n%v\nvs\n%v", a, b)
			}
			if !reflect.DeepEqual(a, run(prof.GS, 78)) {
				anyDiverged = true
			}
		})
	}
	if !anyDiverged {
		t.Error("seeds 77 and 78 produced identical fault streams for every profile")
	}
}
