package faulty

import (
	"fmt"
	"sort"
	"time"
)

// FaultSpec calibrates the failure behaviour injected in front of one
// service. Probabilities are evaluated per attempt (vanish per researcher)
// in a fixed order: vanish, rate limit, timeout, transient.
type FaultSpec struct {
	// PVanish is the probability that a researcher the upstream service
	// does know is nevertheless unlinkable (a permanent not-found) — the
	// ambiguous-namesake failure the paper hit. Drawn once per researcher.
	PVanish float64
	// PRateLimit is the per-attempt probability of a 429-style response
	// carrying RetryAfter as its hint.
	PRateLimit float64
	// PTimeout is the per-attempt probability the call times out after
	// TimeoutLatency of (virtual) waiting.
	PTimeout float64
	// PTransient is the per-attempt probability of a generic retryable
	// service error.
	PTransient float64

	// RetryAfter is the hint attached to rate-limit faults.
	RetryAfter time.Duration
	// Latency is the fixed per-call service latency.
	Latency time.Duration
	// TimeoutLatency is the extra stall burned by a timing-out call.
	TimeoutLatency time.Duration

	// OutageCalls fails the first OutageCalls calls seen by an injector
	// instance outright (service down), regardless of the probabilities
	// above; afterwards the service recovers to its steady-state spec.
	OutageCalls int
}

// FaultProfile names a pair of fault specs, one per bibliometric service.
type FaultProfile struct {
	Name string
	GS   FaultSpec
	S2   FaultSpec
}

// Named profiles, ordered from benign to hostile.
const (
	ProfileClean    = "clean"
	ProfileFlaky    = "flaky"
	ProfileDegraded = "degraded"
	ProfileOutage   = "outage"
)

// Clean injects nothing: the harvest sees the substrates exactly as the
// rest of the pipeline does, so a clean harvest reproduces the corpus.
func Clean() FaultProfile { return FaultProfile{Name: ProfileClean} }

// Flaky models everyday service weather: occasional transient errors,
// timeouts and rate limits on both services, plus a small share of
// researchers whose GS profile cannot be disambiguated. Retries recover
// nearly all of it.
func Flaky() FaultProfile {
	return FaultProfile{
		Name: ProfileFlaky,
		GS: FaultSpec{
			PVanish: 0.04, PRateLimit: 0.08, PTimeout: 0.05, PTransient: 0.12,
			RetryAfter: 20 * time.Millisecond, Latency: time.Millisecond,
			TimeoutLatency: 10 * time.Millisecond,
		},
		S2: FaultSpec{
			PRateLimit: 0.04, PTimeout: 0.03, PTransient: 0.06,
			RetryAfter: 10 * time.Millisecond, Latency: time.Millisecond,
			TimeoutLatency: 5 * time.Millisecond,
		},
	}
}

// Degraded models a Google Scholar bad day: heavy error and rate-limit
// pressure plus widespread disambiguation failures, forcing a visible
// share of researchers onto the S2 fallback and the analyses onto
// partial data.
func Degraded() FaultProfile {
	return FaultProfile{
		Name: ProfileDegraded,
		GS: FaultSpec{
			PVanish: 0.20, PRateLimit: 0.20, PTimeout: 0.12, PTransient: 0.25,
			RetryAfter: 30 * time.Millisecond, Latency: 2 * time.Millisecond,
			TimeoutLatency: 15 * time.Millisecond,
		},
		S2: FaultSpec{
			PRateLimit: 0.06, PTimeout: 0.05, PTransient: 0.10,
			RetryAfter: 15 * time.Millisecond, Latency: time.Millisecond,
			TimeoutLatency: 8 * time.Millisecond,
		},
	}
}

// Outage takes Google Scholar down hard for the first OutageCalls calls
// each worker makes, tripping the circuit breaker and shedding onto the
// S2 fallback, then lets the service recover so the breaker's half-open
// probes eventually close it again.
func Outage() FaultProfile {
	return FaultProfile{
		Name: ProfileOutage,
		GS: FaultSpec{
			OutageCalls: 12,
			PTransient:  0.02,
			Latency:     time.Millisecond,
		},
		S2: FaultSpec{
			PTransient: 0.02, Latency: 2 * time.Millisecond,
		},
	}
}

// Profiles returns the named profiles keyed by name.
func Profiles() map[string]FaultProfile {
	return map[string]FaultProfile{
		ProfileClean:    Clean(),
		ProfileFlaky:    Flaky(),
		ProfileDegraded: Degraded(),
		ProfileOutage:   Outage(),
	}
}

// ProfileNames lists the known profile names, sorted benign-first.
func ProfileNames() []string {
	names := make([]string, 0, 4)
	for n := range Profiles() {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ByName resolves a named profile.
func ByName(name string) (FaultProfile, error) {
	p, ok := Profiles()[name]
	if !ok {
		return FaultProfile{}, fmt.Errorf("faulty: unknown fault profile %q (have %v)", name, ProfileNames())
	}
	return p, nil
}
