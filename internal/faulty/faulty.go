// Package faulty wraps the simulated bibliometric services in
// fault-injection decorators. The paper's harvest ran against unreliable
// remote sources — manual Google Scholar linkage succeeded for only 68.3%
// of researchers, and both services rate-limit and time out in practice —
// while our in-memory substrates are perfectly reliable. This package
// restores the hostile environment: a seeded Injector draws transient
// errors, latency spikes, simulated timeouts, 429-style rate limits, and
// permanent not-founds from a named FaultProfile, deterministically per
// (seed, researcher, attempt), so an ingestion run is reproducible
// bit-for-bit yet exercises every failure path the resilience stack has.
package faulty

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/resilience"
	"repro/internal/scholar"
)

// ProfileSource is the common lookup interface both bibliometric services
// are served through. Implementations return the researcher's profile
// (pubs-only for Semantic Scholar) or an error; an authoritative miss is
// ErrNotFound wrapped resilience.Permanent.
type ProfileSource interface {
	Lookup(ctx context.Context, id string) (scholar.Profile, error)
}

// Sentinel errors for the injected fault kinds. ErrNotFound doubles as the
// authoritative-miss error of the underlying sources.
var (
	ErrNotFound  = errors.New("profile not found")
	ErrTransient = errors.New("transient service error")
	ErrTimeout   = errors.New("request timed out")
	ErrOutage    = errors.New("service outage")
)

// RateLimitError is the 429-style response: retry no sooner than After.
type RateLimitError struct{ After time.Duration }

// Error renders the fault.
func (e *RateLimitError) Error() string {
	return fmt.Sprintf("rate limited, retry after %s", e.After)
}

// RetryAfterHint implements resilience.RetryAfterHinter.
func (e *RateLimitError) RetryAfterHint() time.Duration { return e.After }

// GSSource adapts a *scholar.Directory to ProfileSource. A directory miss
// is the paper's "could not be unambiguously linked" outcome: permanent,
// not retryable.
type GSSource struct{ Dir *scholar.Directory }

// Lookup returns the Google Scholar profile for id.
func (g GSSource) Lookup(ctx context.Context, id string) (scholar.Profile, error) {
	if err := ctx.Err(); err != nil {
		return scholar.Profile{}, err
	}
	p, ok := g.Dir.Lookup(id)
	if !ok {
		return scholar.Profile{}, resilience.Permanent(fmt.Errorf("faulty: gs %q: %w", id, ErrNotFound))
	}
	return p, nil
}

// S2Source adapts a *scholar.SemanticScholar to ProfileSource; the result
// profile carries only the past-publication count, mirroring what the
// paper could read from S2.
type S2Source struct{ S2 *scholar.SemanticScholar }

// Lookup returns a pubs-only profile for id.
func (s S2Source) Lookup(ctx context.Context, id string) (scholar.Profile, error) {
	if err := ctx.Err(); err != nil {
		return scholar.Profile{}, err
	}
	n, ok := s.S2.PastPublications(id)
	if !ok {
		return scholar.Profile{}, resilience.Permanent(fmt.Errorf("faulty: s2 %q: %w", id, ErrNotFound))
	}
	return scholar.Profile{Publications: n}, nil
}
