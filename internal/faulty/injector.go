package faulty

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand/v2"

	"repro/internal/resilience"
	"repro/internal/scholar"
)

// Injector decorates a ProfileSource with seeded fault injection. Fault
// draws are keyed by (seed, researcher id, per-id attempt ordinal), NOT by
// global call order, so the injected failure sequence each researcher
// experiences is identical no matter how a concurrent harvester interleaves
// its workers. Only the outage window and latency accounting are
// per-instance state; an Injector is therefore meant to be owned by a
// single sequential worker (give each worker its own instance — they may
// share the underlying source, which is read-only during a harvest).
type Injector struct {
	src   ProfileSource
	spec  FaultSpec
	seed  uint64
	clock resilience.Clock

	calls    int            // total calls, drives the outage window
	attempts map[string]int // per-id attempt ordinal
}

// NewInjector wraps src with the fault spec. A nil clock uses WallClock
// (latency then burns real time; harvest workers inject virtual clocks).
func NewInjector(src ProfileSource, spec FaultSpec, seed uint64, clock resilience.Clock) *Injector {
	if clock == nil {
		clock = resilience.WallClock{}
	}
	return &Injector{src: src, spec: spec, seed: seed, clock: clock, attempts: make(map[string]int)}
}

// Calls returns how many lookups this injector has served.
func (f *Injector) Calls() int { return f.calls }

// rng derives the deterministic fault stream for one (id, ordinal) pair.
func (f *Injector) rng(id string, ordinal int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(id)) //whpcvet:ignore errcheck hash.Hash.Write never returns an error (hash package contract)
	fmt.Fprintf(h, "#%d", ordinal)
	return rand.New(rand.NewPCG(f.seed, h.Sum64()))
}

// Lookup injects latency and faults in front of the wrapped source.
func (f *Injector) Lookup(ctx context.Context, id string) (scholar.Profile, error) {
	f.calls++
	ordinal := f.attempts[id]
	f.attempts[id] = ordinal + 1

	if f.spec.Latency > 0 {
		if err := f.clock.Sleep(ctx, f.spec.Latency); err != nil {
			return scholar.Profile{}, err
		}
	}
	if f.calls <= f.spec.OutageCalls {
		return scholar.Profile{}, fmt.Errorf("faulty: %w", ErrOutage)
	}
	// Vanish is drawn once per researcher (ordinal 0) so the decision is
	// stable across retries: a namesake clash does not resolve itself.
	if f.spec.PVanish > 0 && f.rng(id, -1).Float64() < f.spec.PVanish {
		return scholar.Profile{}, resilience.Permanent(fmt.Errorf("faulty: %q unlinkable: %w", id, ErrNotFound))
	}
	u := f.rng(id, ordinal).Float64()
	switch {
	case u < f.spec.PRateLimit:
		return scholar.Profile{}, &RateLimitError{After: f.spec.RetryAfter}
	case u < f.spec.PRateLimit+f.spec.PTimeout:
		if f.spec.TimeoutLatency > 0 {
			if err := f.clock.Sleep(ctx, f.spec.TimeoutLatency); err != nil {
				return scholar.Profile{}, err
			}
		}
		return scholar.Profile{}, fmt.Errorf("faulty: %w", ErrTimeout)
	case u < f.spec.PRateLimit+f.spec.PTimeout+f.spec.PTransient:
		return scholar.Profile{}, fmt.Errorf("faulty: %w", ErrTransient)
	}
	return f.src.Lookup(ctx, id)
}
