package faulty

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/resilience"
	"repro/internal/scholar"
)

func testDirectory(t *testing.T, n int) *scholar.Directory {
	t.Helper()
	d := scholar.NewDirectory()
	for i := 0; i < n; i++ {
		if err := d.Register(fmt.Sprintf("p%03d", i), scholar.Profile{Publications: i + 1}); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestByName(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name != name {
			t.Errorf("ByName(%q).Name = %q", name, p.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) succeeded, want error")
	}
}

func TestGSSourceNotFoundIsPermanent(t *testing.T) {
	src := GSSource{Dir: testDirectory(t, 1)}
	_, err := src.Lookup(context.Background(), "missing")
	if !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if !resilience.IsPermanent(err) {
		t.Fatal("authoritative miss must be permanent (not retryable)")
	}
}

// TestInjectorDeterministicPerID: the fault sequence one researcher sees
// is a pure function of (seed, id, attempt ordinal) — two injectors with
// the same seed agree call for call, regardless of interleaving.
func TestInjectorDeterministicPerID(t *testing.T) {
	dir := testDirectory(t, 50)
	spec := FaultSpec{PVanish: 0.1, PRateLimit: 0.2, PTimeout: 0.2, PTransient: 0.2}
	ctx := context.Background()
	clock := resilience.NewVirtualClock(time.Unix(0, 0))

	outcome := func(inj *Injector, id string) string {
		_, err := inj.Lookup(ctx, id)
		if err == nil {
			return "ok"
		}
		var rl *RateLimitError
		switch {
		case errors.As(err, &rl):
			return "ratelimit"
		case errors.Is(err, ErrTimeout):
			return "timeout"
		case errors.Is(err, ErrTransient):
			return "transient"
		case errors.Is(err, ErrNotFound):
			return "notfound"
		default:
			return "other"
		}
	}

	a := NewInjector(GSSource{Dir: dir}, spec, 99, clock)
	b := NewInjector(GSSource{Dir: dir}, spec, 99, clock)
	// a sees ids in order; b sees them in reverse with extra interleaved
	// calls — per-id sequences must still match.
	ids := []string{"p000", "p001", "p002", "p003", "p004"}
	got := map[string][]string{}
	for round := 0; round < 3; round++ {
		for _, id := range ids {
			got[id] = append(got[id], outcome(a, id))
		}
	}
	want := map[string][]string{}
	for round := 0; round < 3; round++ {
		for i := len(ids) - 1; i >= 0; i-- {
			id := ids[i]
			want[id] = append(want[id], outcome(b, id))
		}
	}
	for _, id := range ids {
		for r := range got[id] {
			if got[id][r] != want[id][r] {
				t.Errorf("id %s round %d: %s vs %s (call order changed the fault stream)",
					id, r, got[id][r], want[id][r])
			}
		}
	}
}

// TestInjectorVanishIsStable: a vanished researcher stays vanished across
// retries (namesake clashes do not resolve themselves).
func TestInjectorVanishIsStable(t *testing.T) {
	dir := testDirectory(t, 200)
	spec := FaultSpec{PVanish: 0.3}
	inj := NewInjector(GSSource{Dir: dir}, spec, 5, resilience.NewVirtualClock(time.Unix(0, 0)))
	ctx := context.Background()
	vanished := 0
	for i := 0; i < 200; i++ {
		id := fmt.Sprintf("p%03d", i)
		_, first := inj.Lookup(ctx, id)
		for retry := 0; retry < 3; retry++ {
			_, again := inj.Lookup(ctx, id)
			if (first == nil) != (again == nil) {
				t.Fatalf("id %s: vanish decision flipped between attempts", id)
			}
		}
		if first != nil {
			if !errors.Is(first, ErrNotFound) || !resilience.IsPermanent(first) {
				t.Fatalf("id %s: vanish error = %v, want permanent ErrNotFound", id, first)
			}
			vanished++
		}
	}
	if vanished < 30 || vanished > 90 {
		t.Errorf("vanished %d of 200 at p=0.3, outside plausible range", vanished)
	}
}

// TestInjectorOutageWindow: the first OutageCalls calls fail outright,
// then the service recovers.
func TestInjectorOutageWindow(t *testing.T) {
	dir := testDirectory(t, 10)
	inj := NewInjector(GSSource{Dir: dir}, FaultSpec{OutageCalls: 5}, 1,
		resilience.NewVirtualClock(time.Unix(0, 0)))
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := inj.Lookup(ctx, "p000"); !errors.Is(err, ErrOutage) {
			t.Fatalf("call %d: err = %v, want ErrOutage", i, err)
		}
	}
	if _, err := inj.Lookup(ctx, "p000"); err != nil {
		t.Fatalf("post-outage call failed: %v", err)
	}
}

// TestInjectorRateLimitHint: rate-limit faults carry the profile's
// Retry-After hint for the retryer to honor.
func TestInjectorRateLimitHint(t *testing.T) {
	dir := testDirectory(t, 5)
	spec := FaultSpec{PRateLimit: 1, RetryAfter: 42 * time.Millisecond}
	inj := NewInjector(GSSource{Dir: dir}, spec, 3, resilience.NewVirtualClock(time.Unix(0, 0)))
	_, err := inj.Lookup(context.Background(), "p000")
	var hinter resilience.RetryAfterHinter
	if !errors.As(err, &hinter) {
		t.Fatalf("err = %v, want RetryAfterHinter", err)
	}
	if got := hinter.RetryAfterHint(); got != 42*time.Millisecond {
		t.Errorf("hint = %s, want 42ms", got)
	}
}

// TestInjectorLatencyAdvancesClock: injected latency elapses on the
// virtual clock, not on wall time.
func TestInjectorLatencyAdvancesClock(t *testing.T) {
	dir := testDirectory(t, 5)
	start := time.Unix(0, 0)
	clock := resilience.NewVirtualClock(start)
	inj := NewInjector(GSSource{Dir: dir}, FaultSpec{Latency: 7 * time.Millisecond}, 3, clock)
	if _, err := inj.Lookup(context.Background(), "p000"); err != nil {
		t.Fatal(err)
	}
	if got := clock.Elapsed(start); got != 7*time.Millisecond {
		t.Errorf("virtual elapsed = %s, want 7ms", got)
	}
}

// TestCleanProfileInjectsNothing: the clean profile passes every lookup
// through untouched.
func TestCleanProfileInjectsNothing(t *testing.T) {
	dir := testDirectory(t, 100)
	prof := Clean()
	inj := NewInjector(GSSource{Dir: dir}, prof.GS, 7, resilience.NewVirtualClock(time.Unix(0, 0)))
	ctx := context.Background()
	for i := 0; i < 100; i++ {
		id := fmt.Sprintf("p%03d", i)
		p, err := inj.Lookup(ctx, id)
		if err != nil {
			t.Fatalf("clean lookup %s failed: %v", id, err)
		}
		if p.Publications != i+1 {
			t.Fatalf("clean lookup %s returned wrong profile: %+v", id, p)
		}
	}
}
