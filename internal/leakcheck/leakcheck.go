// Package leakcheck verifies that a test leaves no goroutines behind. It
// snapshots the live goroutines when Check is called and diffs against a
// fresh snapshot at cleanup, retrying over a short grace window so
// goroutines that are mid-teardown (HTTP connections draining, singleflight
// waiters unwinding) get a chance to exit before being called leaks.
//
// The package is test-only support code: it polls the real clock, because
// goroutine teardown elapses in real time no matter what virtual clock the
// code under test uses. It is exempt from the whpcvet determinism rule for
// exactly that reason and must never be imported by shipped code.
package leakcheck

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"testing"
	"time"
)

// grace is how long the cleanup diff keeps retrying before declaring the
// surviving goroutines leaked. One second absorbs connection teardown and
// scheduler lag without masking a real leak (a leaked goroutine is, by
// definition, never going to exit).
const grace = 1 * time.Second

// pollEvery is the retry interval inside the grace window.
const pollEvery = 10 * time.Millisecond

// ignoredSubstrings marks goroutines that are runtime or test
// infrastructure, not products of the code under test. A stanza containing
// any of these is never reported.
var ignoredSubstrings = []string{
	"testing.Main(",
	"testing.tRunner(",
	"testing.(*T).Run(",
	"testing.runFuzzing(",
	"runtime.goexit",
	"runtime.MHeap_Scavenger",
	"signal.signal_recv",
	"created by runtime.gc",
	"interestingGoroutines", // this package's own snapshot call
	"os/signal.loop",
}

// Check installs a goroutine-leak assertion on t: at cleanup, any goroutine
// that was not running when Check was called and still survives the grace
// window fails the test with its full stack. Call it first thing in a test
// (before starting servers or pools) so the baseline excludes nothing the
// test created.
func Check(t testing.TB) {
	t.Helper()
	before := interestingGoroutines()
	t.Cleanup(func() {
		var leaked []string
		deadline := time.Now().Add(grace)
		for {
			leaked = leakedStacks(before)
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(pollEvery)
		}
		t.Errorf("leakcheck: %d goroutine(s) leaked:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// leakedStacks returns the stacks of goroutines alive now that were not in
// the before snapshot, sorted so a failure message is stable across runs
// and diffable between seeds (map iteration would scramble it).
func leakedStacks(before map[string]string) []string {
	var leaked []string
	for id, stack := range interestingGoroutines() {
		if _, ok := before[id]; !ok {
			leaked = append(leaked, stack)
		}
	}
	sort.Strings(leaked)
	return leaked
}

// interestingGoroutines returns the current goroutines by id, excluding
// runtime and test infrastructure. The returned stacks are full stanzas
// from runtime.Stack, suitable for direct inclusion in a failure message.
func interestingGoroutines() map[string]string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	out := make(map[string]string)
	for _, stanza := range strings.Split(string(buf), "\n\n") {
		if stanza == "" || !strings.HasPrefix(stanza, "goroutine ") {
			continue
		}
		if ignored(stanza) {
			continue
		}
		header, _, ok := strings.Cut(stanza, "\n")
		if !ok {
			continue
		}
		// "goroutine 42 [running]:" → id "42".
		fields := strings.Fields(header)
		if len(fields) < 2 {
			continue
		}
		out[fields[1]] = stanza
	}
	return out
}

func ignored(stanza string) bool {
	for _, s := range ignoredSubstrings {
		if strings.Contains(stanza, s) {
			return true
		}
	}
	return false
}

// Snapshot returns a human-readable dump of the currently interesting
// goroutines — a debugging aid for tests that want to print state on an
// unrelated failure.
func Snapshot() string {
	gs := interestingGoroutines()
	ids := make([]string, 0, len(gs))
	for id := range gs {
		ids = append(ids, id)
	}
	// Order does not matter for a debug dump, but sort anyway so repeated
	// dumps diff cleanly.
	sort.Strings(ids)
	var b strings.Builder
	for _, id := range ids {
		fmt.Fprintf(&b, "%s\n\n", gs[id])
	}
	return b.String()
}
