package leakcheck

import (
	"strings"
	"testing"
	"time"
)

// TestNoLeakPasses: a test that spawns nothing new sees an empty diff.
func TestNoLeakPasses(t *testing.T) {
	Check(t)
}

// TestTransientGoroutineForgiven: a goroutine that exits within the grace
// window is not a leak — the retry loop must absorb it.
func TestTransientGoroutineForgiven(t *testing.T) {
	Check(t)
	done := make(chan struct{})
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(done)
	}()
	// Return while the goroutine is still alive; cleanup retries until it
	// exits.
	_ = done
}

// TestLeakDetected: a genuinely stuck goroutine is reported with its stack.
// The assertion runs against a sub-test whose failure we inspect, so the
// suite itself stays green.
func TestLeakDetected(t *testing.T) {
	block := make(chan struct{})
	defer close(block)

	// Use a throwaway recorder implementing testing.TB semantics via a real
	// sub-test run with t.Run would fail the suite; instead call the diff
	// machinery directly.
	before := interestingGoroutines()
	go func() { <-block }()

	// Wait for the goroutine to be registered.
	deadline := time.Now().Add(time.Second)
	for {
		leaked := []string{}
		for id, stack := range interestingGoroutines() {
			if _, ok := before[id]; !ok {
				leaked = append(leaked, stack)
			}
		}
		if len(leaked) == 1 {
			if !strings.Contains(leaked[0], "leakcheck.TestLeakDetected") {
				t.Fatalf("leak stack does not name its creator:\n%s", leaked[0])
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("blocked goroutine never appeared in the diff (found %d)", len(leaked))
		}
		time.Sleep(pollEvery)
	}
}

// TestSnapshotReadable: the debug dump contains this test's own goroutine.
func TestSnapshotReadable(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	go func() { <-block }()
	deadline := time.Now().Add(time.Second)
	for {
		if strings.Contains(Snapshot(), "TestSnapshotReadable") {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("Snapshot never showed the blocked goroutine")
		}
		time.Sleep(pollEvery)
	}
}
