// Package stats implements the statistical machinery used by the paper
// "Representation of Women in HPC Conferences" (SC '21): Welch's two-sample
// t-test, the chi-squared test for independence and goodness of fit,
// Pearson's product-moment correlation with a t-based p-value, descriptive
// statistics, Gaussian kernel density estimation, histograms, two-proportion
// tests, and bootstrap resampling.
//
// Everything is implemented from scratch on top of the Go standard library.
// The special functions (regularized incomplete gamma and beta) follow the
// classical Numerical-Recipes-style continued-fraction and series expansions
// and are accurate to roughly 1e-10 over the ranges exercised by the paper's
// analyses. Unit tests pin results against reference values computed with R.
//
// All functions are pure and safe for concurrent use.
package stats
