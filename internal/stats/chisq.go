package stats

import (
	"errors"
	"fmt"
)

// ChiSquaredResult reports a chi-squared test in the paper's reporting
// style: "χ² = 3.133, p = 0.0767".
type ChiSquaredResult struct {
	ChiSq    float64
	DF       float64
	P        float64
	N        int       // total count across all cells
	Expected []float64 // expected counts, row-major for contingency tables
	Yates    bool      // whether the continuity correction was applied
	Method   string
}

// String formats the result in the paper's reporting style.
func (r ChiSquaredResult) String() string {
	return fmt.Sprintf("%s: chi-sq = %.4g, df = %.4g, p = %.4g", r.Method, r.ChiSq, r.DF, r.P)
}

// Significant reports whether p is below alpha.
func (r ChiSquaredResult) Significant(alpha float64) bool {
	return r.P < alpha
}

// ErrDegenerate indicates a contingency table with a zero row or column
// margin, for which the chi-squared test is undefined.
var ErrDegenerate = errors.New("stats: degenerate contingency table (zero marginal)")

// ChiSquaredIndependence performs Pearson's chi-squared test of independence
// on an r x c contingency table of observed counts. Every analysis in the
// paper that compares two categorical variables (gender x conference group,
// gender x role, gender x experience band, ...) uses this test, without the
// Yates continuity correction — matching R's chisq.test(correct=FALSE),
// which is what reproduces the paper's reported statistics.
func ChiSquaredIndependence(table [][]float64) (ChiSquaredResult, error) {
	return chiSquaredTable(table, false)
}

// ChiSquaredIndependenceYates is the 2x2 variant with the Yates continuity
// correction, included for the ablation bench; for larger tables the
// correction is ignored.
func ChiSquaredIndependenceYates(table [][]float64) (ChiSquaredResult, error) {
	return chiSquaredTable(table, true)
}

func chiSquaredTable(table [][]float64, yates bool) (ChiSquaredResult, error) {
	nr := len(table)
	if nr < 2 {
		return ChiSquaredResult{}, errors.New("stats: contingency table needs at least 2 rows")
	}
	nc := len(table[0])
	if nc < 2 {
		return ChiSquaredResult{}, errors.New("stats: contingency table needs at least 2 columns")
	}
	rowSum := make([]float64, nr)
	colSum := make([]float64, nc)
	var total float64
	for i, row := range table {
		if len(row) != nc {
			return ChiSquaredResult{}, fmt.Errorf("stats: ragged contingency table (row %d has %d columns, want %d)", i, len(row), nc)
		}
		for j, v := range row {
			if v < 0 {
				return ChiSquaredResult{}, fmt.Errorf("stats: negative count %g at (%d,%d)", v, i, j)
			}
			rowSum[i] += v
			colSum[j] += v
			total += v
		}
	}
	if AlmostZero(total) {
		return ChiSquaredResult{}, ErrDegenerate
	}
	for _, s := range rowSum {
		if AlmostZero(s) {
			return ChiSquaredResult{}, ErrDegenerate
		}
	}
	for _, s := range colSum {
		if AlmostZero(s) {
			return ChiSquaredResult{}, ErrDegenerate
		}
	}
	applyYates := yates && nr == 2 && nc == 2
	var chisq float64
	expected := make([]float64, 0, nr*nc)
	for i := 0; i < nr; i++ {
		for j := 0; j < nc; j++ {
			e := rowSum[i] * colSum[j] / total
			expected = append(expected, e)
			d := table[i][j] - e
			if applyYates {
				d = absFloat(d) - 0.5
				if d < 0 {
					d = 0
				}
			}
			chisq += d * d / e
		}
	}
	df := float64((nr - 1) * (nc - 1))
	method := "Pearson chi-squared test of independence"
	if applyYates {
		method += " (Yates)"
	}
	return ChiSquaredResult{
		ChiSq:    chisq,
		DF:       df,
		P:        ChiSquared{K: df}.SurvivalP(chisq),
		N:        int(total),
		Expected: expected,
		Yates:    applyYates,
		Method:   method,
	}, nil
}

// ChiSquaredGoodnessOfFit tests observed counts against expected
// probabilities (which must sum to ~1).
func ChiSquaredGoodnessOfFit(observed []float64, probs []float64) (ChiSquaredResult, error) {
	if len(observed) != len(probs) {
		return ChiSquaredResult{}, fmt.Errorf("stats: %d observed cells but %d probabilities", len(observed), len(probs))
	}
	if len(observed) < 2 {
		return ChiSquaredResult{}, errors.New("stats: goodness-of-fit needs at least 2 cells")
	}
	var total, psum float64
	for i, o := range observed {
		if o < 0 {
			return ChiSquaredResult{}, fmt.Errorf("stats: negative count %g at cell %d", o, i)
		}
		if probs[i] <= 0 {
			return ChiSquaredResult{}, fmt.Errorf("stats: non-positive probability %g at cell %d", probs[i], i)
		}
		total += o
		psum += probs[i]
	}
	if AlmostZero(total) {
		return ChiSquaredResult{}, ErrDegenerate
	}
	if absFloat(psum-1) > 1e-9 {
		return ChiSquaredResult{}, fmt.Errorf("stats: probabilities sum to %g, want 1", psum)
	}
	var chisq float64
	expected := make([]float64, len(observed))
	for i, o := range observed {
		e := total * probs[i]
		expected[i] = e
		d := o - e
		chisq += d * d / e
	}
	df := float64(len(observed) - 1)
	return ChiSquaredResult{
		ChiSq:    chisq,
		DF:       df,
		P:        ChiSquared{K: df}.SurvivalP(chisq),
		N:        int(total),
		Expected: expected,
		Method:   "Chi-squared goodness-of-fit test",
	}, nil
}

// TwoProportionChiSq is the convenience form used throughout the paper:
// compare the proportion k1/n1 against k2/n2 with a 2x2 chi-squared test
// (e.g. female authors in double-blind vs single-blind conferences).
func TwoProportionChiSq(k1, n1, k2, n2 int) (ChiSquaredResult, error) {
	if k1 < 0 || k2 < 0 || n1 < k1 || n2 < k2 {
		return ChiSquaredResult{}, fmt.Errorf("stats: invalid proportion counts %d/%d, %d/%d", k1, n1, k2, n2)
	}
	return ChiSquaredIndependence([][]float64{
		{float64(k1), float64(n1 - k1)},
		{float64(k2), float64(n2 - k2)},
	})
}

func absFloat(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
