package stats

import "math"

// This file implements the regularized incomplete gamma and beta functions,
// the two special functions needed for the chi-squared and Student-t
// cumulative distribution functions. The algorithms are the classical
// series/continued-fraction pairs (Abramowitz & Stegun 6.5.29, 26.5.8 and
// the Lentz continued-fraction evaluation), selected per-region for
// convergence.

const (
	specialEps     = 3e-14
	specialMaxIter = 500
	specialFPMin   = 1e-300
)

// RegIncGammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x) / Γ(a) for a > 0, x >= 0.
func RegIncGammaP(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0: //whpcvet:ignore floatcmp exact lower boundary of the incomplete gamma domain
		return 0
	case math.IsInf(x, 1):
		return 1
	}
	if x < a+1 {
		return gammaSeriesP(a, x)
	}
	return 1 - gammaContinuedQ(a, x)
}

// RegIncGammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func RegIncGammaQ(a, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(x) || a <= 0 || x < 0:
		return math.NaN()
	case x == 0: //whpcvet:ignore floatcmp exact lower boundary of the incomplete gamma domain
		return 1
	case math.IsInf(x, 1):
		return 0
	}
	if x < a+1 {
		return 1 - gammaSeriesP(a, x)
	}
	return gammaContinuedQ(a, x)
}

// gammaSeriesP evaluates P(a,x) by its power series, valid for x < a+1.
func gammaSeriesP(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < specialMaxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*specialEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// gammaContinuedQ evaluates Q(a,x) by its continued fraction (modified
// Lentz), valid for x >= a+1.
func gammaContinuedQ(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / specialFPMin
	d := 1 / b
	h := d
	for i := 1; i <= specialMaxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < specialFPMin {
			d = specialFPMin
		}
		c = b + an/c
		if math.Abs(c) < specialFPMin {
			c = specialFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < specialEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// RegIncBeta returns the regularized incomplete beta function
// I_x(a, b) for a, b > 0 and x in [0, 1].
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case math.IsNaN(a) || math.IsNaN(b) || math.IsNaN(x):
		return math.NaN()
	case a <= 0 || b <= 0 || x < 0 || x > 1:
		return math.NaN()
	case x == 0: //whpcvet:ignore floatcmp exact lower boundary of the incomplete beta domain
		return 0
	case x == 1: //whpcvet:ignore floatcmp exact upper boundary of the incomplete beta domain
		return 1
	}
	lga, _ := math.Lgamma(a)
	lgb, _ := math.Lgamma(b)
	lgab, _ := math.Lgamma(a + b)
	front := math.Exp(lgab - lga - lgb + a*math.Log(x) + b*math.Log(1-x))
	// Use the continued fraction directly when it converges fast, i.e.
	// x < (a+1)/(a+b+2); otherwise use the symmetry relation.
	if x < (a+1)/(a+b+2) {
		return front * betaContinuedFraction(a, b, x) / a
	}
	return 1 - front*betaContinuedFraction(b, a, 1-x)/b
}

// betaContinuedFraction evaluates the continued fraction of the incomplete
// beta function using the modified Lentz method.
func betaContinuedFraction(a, b, x float64) float64 {
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < specialFPMin {
		d = specialFPMin
	}
	d = 1 / d
	h := d
	for m := 1; m <= specialMaxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < specialFPMin {
			d = specialFPMin
		}
		c = 1 + aa/c
		if math.Abs(c) < specialFPMin {
			c = specialFPMin
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < specialFPMin {
			d = specialFPMin
		}
		c = 1 + aa/c
		if math.Abs(c) < specialFPMin {
			c = specialFPMin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < specialEps {
			break
		}
	}
	return h
}
