package stats

import (
	"fmt"
	"math"
)

// MannWhitneyResult reports the Mann-Whitney U test (Wilcoxon rank-sum),
// the distribution-free companion to Welch's t-test for the paper's
// heavy-tailed citation and publication samples, where a single outlier
// (the >450-citation paper) can swing a mean-based test.
type MannWhitneyResult struct {
	U  float64 // U statistic of the first sample
	Z  float64 // normal approximation with tie correction
	P  float64 // two-sided p-value (normal approximation)
	N1 int
	N2 int
	// RankBiserial is the rank-biserial correlation effect size,
	// r = 1 - 2U/(n1*n2), in [-1, 1].
	RankBiserial float64
}

// MannWhitneyU runs the two-sided Mann-Whitney U test with the normal
// approximation (appropriate for the paper's sample sizes; n >= 8 per
// group recommended) and the standard tie correction.
func MannWhitneyU(x, y []float64) (MannWhitneyResult, error) {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return MannWhitneyResult{}, ErrEmpty
	}
	if n1 < 2 || n2 < 2 {
		return MannWhitneyResult{}, fmt.Errorf("stats: Mann-Whitney needs >=2 per group (got %d, %d): %w", n1, n2, ErrTooFew)
	}
	pooled := make([]float64, 0, n1+n2)
	pooled = append(pooled, x...)
	pooled = append(pooled, y...)
	ranks := Ranks(pooled)

	var r1 float64
	for i := 0; i < n1; i++ {
		r1 += ranks[i]
	}
	u1 := r1 - float64(n1)*float64(n1+1)/2
	nn := float64(n1) * float64(n2)

	// Tie correction to the variance.
	n := float64(n1 + n2)
	tieSum := tieCorrection(pooled)
	variance := nn / 12 * (n + 1 - tieSum/(n*(n-1)))
	if variance <= 0 {
		return MannWhitneyResult{}, fmt.Errorf("stats: Mann-Whitney degenerate (all values tied)")
	}
	mean := nn / 2
	// Continuity correction toward the mean.
	diff := u1 - mean
	cc := 0.5
	if diff < 0 {
		cc = -0.5
	}
	if diff == 0 { //whpcvet:ignore floatcmp rank sums are half-integer exact, so 0 is exactly representable
		cc = 0
	}
	z := (diff - cc) / math.Sqrt(variance)
	p := 2 * (1 - StdNormal.CDF(math.Abs(z)))
	if p > 1 {
		p = 1
	}
	return MannWhitneyResult{
		U:            u1,
		Z:            z,
		P:            p,
		N1:           n1,
		N2:           n2,
		RankBiserial: 1 - 2*u1/nn,
	}, nil
}

// tieCorrection returns sum over tie groups of (t^3 - t).
func tieCorrection(xs []float64) float64 {
	counts := make(map[float64]int, len(xs))
	for _, x := range xs {
		counts[x]++
	}
	var sum float64
	for _, t := range counts {
		if t > 1 {
			tf := float64(t)
			sum += tf*tf*tf - tf
		}
	}
	return sum
}
