package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by descriptive statistics that require at least one
// observation.
var ErrEmpty = errors.New("stats: empty sample")

// ErrTooFew is returned when a sample is too small for the requested
// statistic (e.g. variance of a single observation).
var ErrTooFew = errors.New("stats: sample too small")

// Sum returns the sum of xs. Sum of an empty slice is 0.
func Sum(xs []float64) float64 {
	// Kahan compensated summation: the experience and citation vectors in
	// the corpus span several orders of magnitude, so naive summation can
	// lose low-order bits that later show up as test flakiness.
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	return Sum(xs) / float64(len(xs)), nil
}

// MustMean is Mean for callers that have already validated the input.
// It panics on an empty sample.
func MustMean(xs []float64) float64 {
	m, err := Mean(xs)
	if err != nil {
		panic(err)
	}
	return m
}

// Variance returns the unbiased (n-1 denominator) sample variance of xs.
func Variance(xs []float64) (float64, error) {
	if len(xs) < 2 {
		if len(xs) == 0 {
			return 0, ErrEmpty
		}
		return 0, ErrTooFew
	}
	m := MustMean(xs)
	var ss, comp float64
	for _, x := range xs {
		d := x - m
		y := d*d - comp
		t := ss + y
		comp = (t - ss) - y
		ss = t
	}
	return ss / float64(len(xs)-1), nil
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) (float64, error) {
	v, err := Variance(xs)
	if err != nil {
		return 0, err
	}
	return math.Sqrt(v), nil
}

// Min returns the smallest element of xs.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min, nil
}

// Max returns the largest element of xs.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max, nil
}

// Median returns the sample median of xs (the average of the two middle
// order statistics for even n).
func Median(xs []float64) (float64, error) {
	return Quantile(xs, 0.5)
}

// Quantile returns the p-th sample quantile of xs using linear interpolation
// between order statistics (R's default "type 7" definition), for p in
// [0, 1].
func Quantile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, errors.New("stats: quantile probability outside [0, 1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	h := p * float64(len(sorted)-1)
	lo := int(math.Floor(h))
	hi := int(math.Ceil(h))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Skewness returns the adjusted Fisher-Pearson sample skewness of xs.
// The paper observes that all experience distributions are right-skewed;
// this statistic is what the end-to-end tests assert that on.
func Skewness(xs []float64) (float64, error) {
	n := float64(len(xs))
	if len(xs) < 3 {
		if len(xs) == 0 {
			return 0, ErrEmpty
		}
		return 0, ErrTooFew
	}
	m := MustMean(xs)
	var m2, m3 float64
	for _, x := range xs {
		d := x - m
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	if AlmostZero(m2) {
		return 0, ErrTooFew
	}
	g1 := m3 / math.Pow(m2, 1.5)
	return g1 * math.Sqrt(n*(n-1)) / (n - 2), nil
}

// Summary bundles the descriptive statistics reported throughout the paper
// for a single sample.
type Summary struct {
	N        int
	Mean     float64
	StdDev   float64
	Min      float64
	Q1       float64
	Median   float64
	Q3       float64
	Max      float64
	Skewness float64
}

// Summarize computes a Summary of xs. Fields that need more observations
// than provided (StdDev for n<2, Skewness for n<3) are left as NaN.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{N: len(xs)}
	s.Mean = MustMean(xs)
	s.Min, _ = Min(xs)
	s.Max, _ = Max(xs)
	s.Q1, _ = Quantile(xs, 0.25)
	s.Median, _ = Median(xs)
	s.Q3, _ = Quantile(xs, 0.75)
	if sd, err := StdDev(xs); err == nil {
		s.StdDev = sd
	} else {
		s.StdDev = math.NaN()
	}
	if sk, err := Skewness(xs); err == nil {
		s.Skewness = sk
	} else {
		s.Skewness = math.NaN()
	}
	return s, nil
}
