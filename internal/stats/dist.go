package stats

import "math"

// Normal is the Gaussian distribution with mean Mu and standard deviation
// Sigma. The zero value is invalid; use StdNormal for the standard normal.
type Normal struct {
	Mu    float64
	Sigma float64
}

// StdNormal is the standard normal distribution N(0, 1).
var StdNormal = Normal{Mu: 0, Sigma: 1}

// PDF returns the probability density of the distribution at x.
func (n Normal) PDF(x float64) float64 {
	z := (x - n.Mu) / n.Sigma
	return math.Exp(-0.5*z*z) / (n.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (n Normal) CDF(x float64) float64 {
	return 0.5 * math.Erfc(-(x-n.Mu)/(n.Sigma*math.Sqrt2))
}

// Quantile returns the p-th quantile (inverse CDF) for p in (0, 1), using
// the Acklam rational approximation refined by one Halley step, accurate to
// around 1e-15.
func (n Normal) Quantile(p float64) float64 {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0: //whpcvet:ignore floatcmp exact domain boundary: quantile at p=0 is -Inf
			return math.Inf(-1)
		case p == 1: //whpcvet:ignore floatcmp exact domain boundary: quantile at p=1 is +Inf
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	z := acklamInvNorm(p)
	// One Halley refinement step against the exact CDF.
	e := StdNormal.CDF(z) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(z*z/2)
	z -= u / (1 + z*u/2)
	return n.Mu + n.Sigma*z
}

// acklamInvNorm is Peter Acklam's rational approximation to the standard
// normal quantile function (relative error < 1.15e-9 before refinement).
func acklamInvNorm(p float64) float64 {
	a := [6]float64{
		-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00,
	}
	b := [5]float64{
		-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01,
	}
	c := [6]float64{
		-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00,
	}
	d := [4]float64{
		7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00,
	}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}

// StudentsT is Student's t distribution with DF degrees of freedom.
// Welch's test produces fractional degrees of freedom, which are fully
// supported.
type StudentsT struct {
	DF float64
}

// PDF returns the probability density at x.
func (t StudentsT) PDF(x float64) float64 {
	if t.DF <= 0 {
		return math.NaN()
	}
	lgHalf, _ := math.Lgamma((t.DF + 1) / 2)
	lgNu, _ := math.Lgamma(t.DF / 2)
	lognorm := lgHalf - lgNu - 0.5*math.Log(t.DF*math.Pi)
	return math.Exp(lognorm - (t.DF+1)/2*math.Log1p(x*x/t.DF))
}

// CDF returns P(T <= x) via the regularized incomplete beta function.
func (t StudentsT) CDF(x float64) float64 {
	if t.DF <= 0 {
		return math.NaN()
	}
	if x == 0 { //whpcvet:ignore floatcmp exact symmetry point of the t CDF
		return 0.5
	}
	ib := RegIncBeta(t.DF/2, 0.5, t.DF/(t.DF+x*x))
	if x > 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// TwoSidedP returns the two-sided tail probability P(|T| >= |x|).
func (t StudentsT) TwoSidedP(x float64) float64 {
	if t.DF <= 0 {
		return math.NaN()
	}
	return RegIncBeta(t.DF/2, 0.5, t.DF/(t.DF+x*x))
}

// Quantile returns the p-th quantile of the t distribution via bisection on
// the CDF, for p in (0, 1). Accuracy ~1e-12, sufficient for confidence
// intervals reported to a few decimal places.
func (t StudentsT) Quantile(p float64) float64 {
	if t.DF <= 0 || math.IsNaN(p) || p <= 0 || p >= 1 {
		switch {
		case p == 0: //whpcvet:ignore floatcmp exact domain boundary: quantile at p=0 is -Inf
			return math.Inf(-1)
		case p == 1: //whpcvet:ignore floatcmp exact domain boundary: quantile at p=1 is +Inf
			return math.Inf(1)
		default:
			return math.NaN()
		}
	}
	if p == 0.5 { //whpcvet:ignore floatcmp exact median shortcut, not a tolerance check
		return 0
	}
	// Bracket using the normal quantile inflated for heavy tails.
	guess := StdNormal.Quantile(p)
	lo, hi := guess-1, guess+1
	for t.CDF(lo) > p {
		lo -= math.Max(1, math.Abs(lo))
	}
	for t.CDF(hi) < p {
		hi += math.Max(1, math.Abs(hi))
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if hi-lo < 1e-12*math.Max(1, math.Abs(mid)) {
			return mid
		}
		if t.CDF(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// ChiSquared is the chi-squared distribution with K degrees of freedom.
type ChiSquared struct {
	K float64
}

// PDF returns the probability density at x.
func (c ChiSquared) PDF(x float64) float64 {
	if c.K <= 0 || x < 0 {
		return math.NaN()
	}
	if x == 0 { //whpcvet:ignore floatcmp exact boundary of the chi-squared support
		if c.K == 2 { //whpcvet:ignore floatcmp df=2 is an exact special case of the density formula
			return 0.5
		}
		if c.K < 2 {
			return math.Inf(1)
		}
		return 0
	}
	lg, _ := math.Lgamma(c.K / 2)
	return math.Exp((c.K/2-1)*math.Log(x) - x/2 - c.K/2*math.Ln2 - lg)
}

// CDF returns P(X <= x).
func (c ChiSquared) CDF(x float64) float64 {
	if c.K <= 0 || x < 0 {
		return math.NaN()
	}
	return RegIncGammaP(c.K/2, x/2)
}

// SurvivalP returns the upper-tail probability P(X >= x), which is the
// p-value of a chi-squared statistic.
func (c ChiSquared) SurvivalP(x float64) float64 {
	if c.K <= 0 || x < 0 {
		return math.NaN()
	}
	return RegIncGammaQ(c.K/2, x/2)
}

// LogNormal is the log-normal distribution: exp(N(Mu, Sigma)). The paper's
// citation and publication-count distributions are heavy-tailed and
// right-skewed; the synthetic corpus draws them from this family.
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// PDF returns the probability density at x.
func (l LogNormal) PDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	z := (math.Log(x) - l.Mu) / l.Sigma
	return math.Exp(-0.5*z*z) / (x * l.Sigma * math.Sqrt(2*math.Pi))
}

// CDF returns P(X <= x).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return Normal{Mu: l.Mu, Sigma: l.Sigma}.CDF(math.Log(x))
}

// Mean returns the distribution mean exp(Mu + Sigma²/2).
func (l LogNormal) Mean() float64 {
	return math.Exp(l.Mu + l.Sigma*l.Sigma/2)
}

// Quantile returns the p-th quantile.
func (l LogNormal) Quantile(p float64) float64 {
	return math.Exp(Normal{Mu: l.Mu, Sigma: l.Sigma}.Quantile(p))
}
