package stats

import (
	"errors"
	"fmt"
	"math"
)

// TTestResult reports the outcome of a two-sample t-test in the form the
// paper reports them: "t = -2.18, df = 86, p = 0.032".
type TTestResult struct {
	T       float64 // test statistic
	DF      float64 // degrees of freedom (fractional for Welch)
	P       float64 // two-sided p-value
	MeanX   float64
	MeanY   float64
	StdErr  float64 // standard error of the mean difference
	CILow   float64 // 95% confidence interval for mean(x) - mean(y)
	CIHigh  float64
	Method  string
	NX, NY  int
	Welch   bool
	Pooled  bool
	OneSide bool
}

// String formats the result in the paper's reporting style.
func (r TTestResult) String() string {
	return fmt.Sprintf("%s: t = %.4g, df = %.4g, p = %.4g", r.Method, r.T, r.DF, r.P)
}

// Significant reports whether the two-sided p-value is below alpha.
func (r TTestResult) Significant(alpha float64) bool {
	return r.P < alpha
}

// WelchTTest performs Welch's two-sample t-test (unequal variances), the
// test the paper uses for all pairwise group-mean comparisons. The p-value
// is two-sided.
func WelchTTest(x, y []float64) (TTestResult, error) {
	if len(x) < 2 || len(y) < 2 {
		return TTestResult{}, fmt.Errorf("stats: Welch t-test needs >=2 observations per group (got %d, %d): %w", len(x), len(y), ErrTooFew)
	}
	mx, my := MustMean(x), MustMean(y)
	vx, _ := Variance(x)
	vy, _ := Variance(y)
	nx, ny := float64(len(x)), float64(len(y))
	sex2 := vx / nx
	sey2 := vy / ny
	se := math.Sqrt(sex2 + sey2)
	if AlmostZero(se) {
		return TTestResult{}, errors.New("stats: Welch t-test undefined for two constant samples")
	}
	t := (mx - my) / se
	df := (sex2 + sey2) * (sex2 + sey2) /
		(sex2*sex2/(nx-1) + sey2*sey2/(ny-1))
	dist := StudentsT{DF: df}
	p := dist.TwoSidedP(t)
	tcrit := dist.Quantile(0.975)
	return TTestResult{
		T:      t,
		DF:     df,
		P:      p,
		MeanX:  mx,
		MeanY:  my,
		StdErr: se,
		CILow:  (mx - my) - tcrit*se,
		CIHigh: (mx - my) + tcrit*se,
		Method: "Welch two-sample t-test",
		NX:     len(x),
		NY:     len(y),
		Welch:  true,
	}, nil
}

// PooledTTest performs the classical two-sample t-test assuming equal
// variances. Included as a baseline for the ablation bench comparing it
// against Welch's test on the paper's unbalanced groups.
func PooledTTest(x, y []float64) (TTestResult, error) {
	if len(x) < 2 || len(y) < 2 {
		return TTestResult{}, fmt.Errorf("stats: pooled t-test needs >=2 observations per group (got %d, %d): %w", len(x), len(y), ErrTooFew)
	}
	mx, my := MustMean(x), MustMean(y)
	vx, _ := Variance(x)
	vy, _ := Variance(y)
	nx, ny := float64(len(x)), float64(len(y))
	df := nx + ny - 2
	sp2 := ((nx-1)*vx + (ny-1)*vy) / df
	se := math.Sqrt(sp2 * (1/nx + 1/ny))
	if AlmostZero(se) {
		return TTestResult{}, errors.New("stats: pooled t-test undefined for two constant samples")
	}
	t := (mx - my) / se
	dist := StudentsT{DF: df}
	p := dist.TwoSidedP(t)
	tcrit := dist.Quantile(0.975)
	return TTestResult{
		T:      t,
		DF:     df,
		P:      p,
		MeanX:  mx,
		MeanY:  my,
		StdErr: se,
		CILow:  (mx - my) - tcrit*se,
		CIHigh: (mx - my) + tcrit*se,
		Method: "Two-sample pooled t-test",
		NX:     len(x),
		NY:     len(y),
		Pooled: true,
	}, nil
}

// OneSampleTTest tests whether the mean of x differs from mu.
func OneSampleTTest(x []float64, mu float64) (TTestResult, error) {
	if len(x) < 2 {
		return TTestResult{}, fmt.Errorf("stats: one-sample t-test needs >=2 observations (got %d): %w", len(x), ErrTooFew)
	}
	m := MustMean(x)
	v, _ := Variance(x)
	n := float64(len(x))
	se := math.Sqrt(v / n)
	if AlmostZero(se) {
		return TTestResult{}, errors.New("stats: one-sample t-test undefined for a constant sample")
	}
	t := (m - mu) / se
	df := n - 1
	dist := StudentsT{DF: df}
	tcrit := dist.Quantile(0.975)
	return TTestResult{
		T:      t,
		DF:     df,
		P:      dist.TwoSidedP(t),
		MeanX:  m,
		MeanY:  mu,
		StdErr: se,
		CILow:  m - mu - tcrit*se,
		CIHigh: m - mu + tcrit*se,
		Method: "One-sample t-test",
		NX:     len(x),
	}, nil
}
