package stats

import (
	"math"
	"testing"
)

func TestLinearRegressionExactLine(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	r, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "slope", r.Slope, 2, 1e-12)
	approx(t, "intercept", r.Intercept, 1, 1e-12)
	approx(t, "R2", r.R2, 1, 1e-12)
	if !math.IsInf(r.T, 1) || r.P != 0 {
		t.Errorf("perfect fit: t = %g, p = %g", r.T, r.P)
	}
}

func TestLinearRegressionKnownExample(t *testing.T) {
	// Hand computation with x=1:5, y=c(2,1,4,3,6): Sxx=10, Sxy=10, Syy=14.8,
	// so slope=1, intercept=0.2, RSS=4.8, R2=1-4.8/14.8, residual SD
	// sqrt(4.8/3), SE=0.4, t=2.5 at df=3.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 1, 4, 3, 6}
	r, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "slope", r.Slope, 1.0, 1e-12)
	approx(t, "intercept", r.Intercept, 0.2, 1e-12)
	approx(t, "R2", r.R2, 1-4.8/14.8, 1e-12)
	approx(t, "SE", r.SlopeSE, 0.4, 1e-12)
	approx(t, "t", r.T, 2.5, 1e-12)
	approx(t, "p", r.P, StudentsT{DF: 3}.TwoSidedP(2.5), 1e-12)
	// t-table sanity: t_{0.95,3}=2.353 < 2.5 < t_{0.975,3}=3.182, so the
	// two-sided p sits between 0.05 and 0.10.
	if r.P < 0.05 || r.P > 0.10 {
		t.Errorf("p = %g outside (0.05, 0.10)", r.P)
	}
	approx(t, "df", r.DF, 3, 0)
}

func TestLinearRegressionFlatSeries(t *testing.T) {
	// The §3.4 "no trend" shape: a flat noisy series has slope near zero
	// and a large p.
	x := []float64{2016, 2017, 2018, 2019, 2020}
	y := []float64{0.086, 0.081, 0.090, 0.079, 0.088}
	r, err := LinearRegression(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Slope) > 0.01 {
		t.Errorf("slope = %g, want near zero", r.Slope)
	}
	if r.P < 0.2 {
		t.Errorf("flat series rejected: p = %g", r.P)
	}
}

func TestLinearRegressionErrors(t *testing.T) {
	if _, err := LinearRegression([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := LinearRegression([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("two points accepted")
	}
	if _, err := LinearRegression([]float64{3, 3, 3}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x accepted")
	}
}

func TestLinearRegressionConstantY(t *testing.T) {
	r, err := LinearRegression([]float64{1, 2, 3, 4}, []float64{5, 5, 5, 5})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "slope", r.Slope, 0, 1e-12)
	approx(t, "intercept", r.Intercept, 5, 1e-12)
	if r.P != 1 {
		t.Errorf("constant y: p = %g, want 1", r.P)
	}
}

func TestCohenH(t *testing.T) {
	// Equal proportions: h = 0.
	h, err := CohenH(Proportion{10, 100}, Proportion{20, 200})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "equal h", h, 0, 1e-12)
	// The paper's author-vs-PC gap: 9.9% vs 18.46% -> h ~ -0.25 (small-to-medium).
	h, err = CohenH(Proportion{99, 1000}, Proportion{185, 1002})
	if err != nil {
		t.Fatal(err)
	}
	if h > -0.2 || h < -0.3 {
		t.Errorf("author-vs-PC h = %g, want ~ -0.25", h)
	}
	// Antisymmetry.
	h2, err := CohenH(Proportion{185, 1002}, Proportion{99, 1000})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "antisymmetry", h, -h2, 1e-12)
	// Errors.
	if _, err := CohenH(Proportion{5, 3}, Proportion{1, 2}); err == nil {
		t.Error("invalid proportion accepted")
	}
	if _, err := CohenH(Proportion{}, Proportion{1, 2}); err == nil {
		t.Error("empty proportion accepted")
	}
}

func TestHolmBonferroni(t *testing.T) {
	// Classic example: p = {0.01, 0.04, 0.03, 0.005} at alpha 0.05.
	// Sorted: 0.005 (<= 0.05/4), 0.01 (<= 0.05/3), 0.03 (<= 0.05/2 = 0.025? NO).
	// So 0.005 and 0.01 are rejected; 0.03 and 0.04 are not.
	rej, err := HolmBonferroni([]float64{0.01, 0.04, 0.03, 0.005}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, false, true}
	for i := range want {
		if rej[i] != want[i] {
			t.Errorf("index %d: rejected = %v, want %v", i, rej[i], want[i])
		}
	}
}

func TestHolmBonferroniEdges(t *testing.T) {
	// All tiny: everything rejected.
	rej, err := HolmBonferroni([]float64{1e-10, 1e-9, 1e-8}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rej {
		if !r {
			t.Errorf("index %d not rejected", i)
		}
	}
	// All large: nothing rejected.
	rej, err = HolmBonferroni([]float64{0.5, 0.9}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if rej[0] || rej[1] {
		t.Error("large p-values rejected")
	}
	// Errors.
	if _, err := HolmBonferroni(nil, 0.05); err == nil {
		t.Error("empty family accepted")
	}
	if _, err := HolmBonferroni([]float64{0.5}, 1.5); err == nil {
		t.Error("bad alpha accepted")
	}
	if _, err := HolmBonferroni([]float64{1.5}, 0.05); err == nil {
		t.Error("invalid p-value accepted")
	}
	// Holm is uniformly at least as powerful as plain Bonferroni.
	ps := []float64{0.012, 0.025, 0.9, 0.04, 0.001}
	holm, err := HolmBonferroni(ps, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ps {
		bonf := p <= 0.05/float64(len(ps))
		if bonf && !holm[i] {
			t.Errorf("index %d: Bonferroni rejects but Holm does not", i)
		}
	}
}
