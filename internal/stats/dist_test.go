package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.IsNaN(got) != math.IsNaN(want) {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.12g, want %.12g (tol %g, diff %g)", name, got, want, tol, got-want)
	}
}

func TestNormalCDFReference(t *testing.T) {
	// Reference values from standard normal tables / R pnorm.
	cases := []struct{ x, want float64 }{
		{0, 0.5},
		{1, 0.8413447460685429},
		{-1, 0.15865525393145705},
		{1.959963984540054, 0.975},
		{2, 0.9772498680518208},
		{-3, 0.0013498980316300933},
		{3.719016485455709, 0.9999},
	}
	for _, c := range cases {
		approx(t, "Normal.CDF", StdNormal.CDF(c.x), c.want, 1e-12)
	}
}

func TestNormalPDFReference(t *testing.T) {
	approx(t, "Normal.PDF(0)", StdNormal.PDF(0), 1/math.Sqrt(2*math.Pi), 1e-15)
	approx(t, "Normal.PDF(1)", StdNormal.PDF(1), 0.24197072451914337, 1e-14)
	n := Normal{Mu: 5, Sigma: 2}
	approx(t, "Normal{5,2}.PDF(5)", n.PDF(5), 1/(2*math.Sqrt(2*math.Pi)), 1e-15)
}

func TestNormalQuantileReference(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.025, -1.959963984540054},
		{0.8413447460685429, 1},
		{0.0013498980316300933, -3},
		{0.95, 1.6448536269514722},
		{0.999, 3.090232306167813},
	}
	for _, c := range cases {
		approx(t, "Normal.Quantile", StdNormal.Quantile(c.p), c.want, 1e-9)
	}
	if !math.IsInf(StdNormal.Quantile(0), -1) {
		t.Error("Quantile(0) should be -Inf")
	}
	if !math.IsInf(StdNormal.Quantile(1), 1) {
		t.Error("Quantile(1) should be +Inf")
	}
	if !math.IsNaN(StdNormal.Quantile(-0.1)) || !math.IsNaN(StdNormal.Quantile(1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
}

func TestNormalQuantileCDFRoundTrip(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 1))
		if p <= 1e-10 || p >= 1-1e-10 || math.IsNaN(p) {
			return true
		}
		x := StdNormal.Quantile(p)
		return math.Abs(StdNormal.CDF(x)-p) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStudentsTCDFReference(t *testing.T) {
	// df=1 is the Cauchy distribution: CDF(x) = 1/2 + atan(x)/pi.
	cauchy := StudentsT{DF: 1}
	for _, x := range []float64{-5, -1, 0, 0.5, 1, 3, 10} {
		approx(t, "t1.CDF", cauchy.CDF(x), 0.5+math.Atan(x)/math.Pi, 1e-12)
	}
	// df=2 has the closed form CDF(x) = 1/2 + x / (2*sqrt(2+x^2)).
	t2 := StudentsT{DF: 2}
	for _, x := range []float64{-4, -1, 0, 1, 2.5} {
		approx(t, "t2.CDF", t2.CDF(x), 0.5+x/(2*math.Sqrt(2+x*x)), 1e-12)
	}
}

func TestStudentsTQuantileReference(t *testing.T) {
	// Classical critical values t_{0.975, df}.
	cases := []struct{ df, want float64 }{
		{1, 12.706204736432095},
		{2, 4.302652729911275},
		{5, 2.5705818366147395},
		{10, 2.2281388519649385},
		{30, 2.0422724563012373},
		{100, 1.9839715184496334},
	}
	for _, c := range cases {
		approx(t, "t.Quantile(0.975)", StudentsT{DF: c.df}.Quantile(0.975), c.want, 1e-8)
	}
	approx(t, "t.Quantile(0.5)", StudentsT{DF: 7}.Quantile(0.5), 0, 1e-12)
}

func TestStudentsTTwoSidedP(t *testing.T) {
	// Two-sided p at the 97.5% critical value must be 0.05.
	for _, df := range []float64{1, 2, 5, 10, 30, 86.0} {
		d := StudentsT{DF: df}
		crit := d.Quantile(0.975)
		approx(t, "TwoSidedP(crit)", d.TwoSidedP(crit), 0.05, 1e-8)
		approx(t, "TwoSidedP(-crit)", d.TwoSidedP(-crit), 0.05, 1e-8)
	}
	// The paper's own citation test: t = -2.18 with df = 86 gives p = 0.032.
	approx(t, "paper t-test p", StudentsT{DF: 86}.TwoSidedP(-2.18), 0.032, 5e-4)
}

func TestStudentsTConvergesToNormal(t *testing.T) {
	big := StudentsT{DF: 1e6}
	for _, x := range []float64{-2, -0.5, 0, 1, 2.3} {
		approx(t, "t(1e6).CDF vs normal", big.CDF(x), StdNormal.CDF(x), 1e-5)
	}
}

func TestChiSquaredCDFReference(t *testing.T) {
	// df=2 has the closed form survival exp(-x/2).
	c2 := ChiSquared{K: 2}
	for _, x := range []float64{0, 0.5, 1, 2, 5.991464547107979, 10} {
		approx(t, "chi2(2).SurvivalP", c2.SurvivalP(x), math.Exp(-x/2), 1e-12)
	}
	// df=1: CDF(x) = erf(sqrt(x/2)).
	c1 := ChiSquared{K: 1}
	for _, x := range []float64{0.1, 1, 3.841458820694124, 7} {
		approx(t, "chi2(1).CDF", c1.CDF(x), math.Erf(math.Sqrt(x/2)), 1e-12)
	}
	// 95th percentile critical values.
	approx(t, "chi2(1) p at 3.8415", c1.SurvivalP(3.841458820694124), 0.05, 1e-10)
}

func TestChiSquaredPaperValues(t *testing.T) {
	// Every chi-squared statistic the paper reports, with its published
	// p-value. These pin our incomplete-gamma implementation to R's pchisq.
	cases := []struct {
		name  string
		chisq float64
		df    float64
		wantP float64
		tol   float64
	}{
		{"double-vs-single-blind FAR", 3.133, 1, 0.0767, 5e-4},
		{"lead single-vs-double-blind", 1.662, 1, 0.197, 5e-3},
		{"last author vs overall", 0.724, 1, 0.395, 5e-3},
		{"HPC-only authors", 4.656, 1, 0.031, 5e-4},
		{"HPC-only lead authors", 0.0547, 1, 0.8151, 5e-4},
		{"i10 attainment by lead gender", 3.69, 1, 0.055, 5e-3},
		{"novice authors by gender", 7.419, 1, 0.00645, 5e-4},
		{"PC sector", 0.522, 2, 0.77, 5e-3},
		{"author sector", 1.629, 2, 0.443, 5e-3},
	}
	for _, c := range cases {
		got := ChiSquared{K: c.df}.SurvivalP(c.chisq)
		approx(t, "p["+c.name+"]", got, c.wantP, c.tol)
	}
}

func TestChiSquaredPDFIntegratesToCDF(t *testing.T) {
	c := ChiSquared{K: 3}
	// Trapezoid integral of the PDF over [0, 5] vs CDF(5).
	const n = 20000
	var sum float64
	for i := 0; i <= n; i++ {
		x := 5 * float64(i) / n
		w := 1.0
		if i == 0 || i == n {
			w = 0.5
		}
		sum += w * c.PDF(x)
	}
	sum *= 5.0 / n
	approx(t, "integral PDF vs CDF", sum, c.CDF(5), 1e-6)
}

func TestLogNormal(t *testing.T) {
	l := LogNormal{Mu: 1, Sigma: 0.5}
	approx(t, "LogNormal.Mean", l.Mean(), math.Exp(1.125), 1e-12)
	approx(t, "LogNormal.CDF(median)", l.CDF(math.Exp(1)), 0.5, 1e-12)
	approx(t, "LogNormal.Quantile(0.5)", l.Quantile(0.5), math.E, 1e-9)
	if l.PDF(-1) != 0 || l.PDF(0) != 0 {
		t.Error("LogNormal.PDF must be 0 for x <= 0")
	}
	// CDF is monotone.
	if !(l.CDF(1) < l.CDF(2) && l.CDF(2) < l.CDF(10)) {
		t.Error("LogNormal.CDF not monotone")
	}
}

func TestRegIncGammaEdgeCases(t *testing.T) {
	if RegIncGammaP(2, 0) != 0 {
		t.Error("P(a, 0) should be 0")
	}
	if RegIncGammaQ(2, 0) != 1 {
		t.Error("Q(a, 0) should be 1")
	}
	approx(t, "P(a,Inf)", RegIncGammaP(2, math.Inf(1)), 1, 0)
	if !math.IsNaN(RegIncGammaP(-1, 1)) || !math.IsNaN(RegIncGammaP(1, -1)) {
		t.Error("invalid arguments should yield NaN")
	}
	// P + Q = 1 across both algorithm regions.
	for _, a := range []float64{0.5, 1, 3, 10, 50} {
		for _, x := range []float64{0.1, 0.9, a, a + 2, 4 * a} {
			approx(t, "P+Q=1", RegIncGammaP(a, x)+RegIncGammaQ(a, x), 1, 1e-12)
		}
	}
	// P(1, x) = 1 - exp(-x) exactly (exponential distribution).
	for _, x := range []float64{0.2, 1, 3, 8} {
		approx(t, "P(1,x)", RegIncGammaP(1, x), 1-math.Exp(-x), 1e-12)
	}
}

func TestRegIncBetaEdgeCases(t *testing.T) {
	if RegIncBeta(2, 3, 0) != 0 || RegIncBeta(2, 3, 1) != 1 {
		t.Error("I_0 = 0 and I_1 = 1 required")
	}
	if !math.IsNaN(RegIncBeta(0, 1, 0.5)) || !math.IsNaN(RegIncBeta(1, 1, 1.5)) {
		t.Error("invalid arguments should yield NaN")
	}
	// I_x(1, 1) = x (uniform distribution).
	for _, x := range []float64{0.1, 0.5, 0.9} {
		approx(t, "I_x(1,1)", RegIncBeta(1, 1, x), x, 1e-12)
	}
	// I_x(a, b) = 1 - I_{1-x}(b, a) (symmetry) across regions.
	for _, ab := range [][2]float64{{0.5, 0.5}, {2, 5}, {10, 3}, {43, 0.5}} {
		for _, x := range []float64{0.05, 0.3, 0.7, 0.95} {
			lhs := RegIncBeta(ab[0], ab[1], x)
			rhs := 1 - RegIncBeta(ab[1], ab[0], 1-x)
			approx(t, "beta symmetry", lhs, rhs, 1e-11)
		}
	}
	// I_x(1/2, 1/2) = (2/pi) asin(sqrt(x)) (arcsine distribution).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		approx(t, "arcsine", RegIncBeta(0.5, 0.5, x), 2/math.Pi*math.Asin(math.Sqrt(x)), 1e-11)
	}
}
