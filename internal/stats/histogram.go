package stats

import (
	"errors"
	"math"
)

// Histogram is a fixed-width binning of a sample, used by the report
// package's text renderings of the paper's distribution figures.
type Histogram struct {
	Lo     float64 // left edge of the first bin
	Width  float64 // bin width
	Counts []int   // per-bin counts
	Under  int     // observations below Lo (only for explicit ranges)
	Over   int     // observations at or above the last edge
	N      int     // total observations offered
}

// NewHistogram bins xs into nbins equal-width bins spanning [min, max].
// The maximum value is included in the last bin.
func NewHistogram(xs []float64, nbins int) (*Histogram, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if nbins < 1 {
		return nil, errors.New("stats: histogram needs at least 1 bin")
	}
	lo, _ := Min(xs)
	hi, _ := Max(xs)
	if lo == hi { //whpcvet:ignore floatcmp Min==Max detects a literally constant sample; exact by construction
		hi = lo + 1 // all-equal sample: single degenerate bin of width 1/nbins
	}
	return NewHistogramRange(xs, lo, hi, nbins)
}

// NewHistogramRange bins xs into nbins equal-width bins spanning [lo, hi).
// Values equal to hi land in the last bin; values outside the range are
// tallied in Under/Over.
func NewHistogramRange(xs []float64, lo, hi float64, nbins int) (*Histogram, error) {
	if nbins < 1 {
		return nil, errors.New("stats: histogram needs at least 1 bin")
	}
	if !(hi > lo) {
		return nil, errors.New("stats: histogram range must satisfy hi > lo")
	}
	h := &Histogram{
		Lo:     lo,
		Width:  (hi - lo) / float64(nbins),
		Counts: make([]int, nbins),
	}
	for _, x := range xs {
		h.N++
		switch {
		case math.IsNaN(x):
			h.N-- // NaNs are ignored entirely
		case x < lo:
			h.Under++
		case x > hi:
			h.Over++
		case x == hi: //whpcvet:ignore floatcmp exact top-edge inclusion rule of the closed last bin
			h.Counts[nbins-1]++
		default:
			idx := int((x - lo) / h.Width)
			if idx >= nbins { // float rounding at the top edge
				idx = nbins - 1
			}
			h.Counts[idx]++
		}
	}
	return h, nil
}

// BinEdges returns the nbins+1 bin edges.
func (h *Histogram) BinEdges() []float64 {
	edges := make([]float64, len(h.Counts)+1)
	for i := range edges {
		edges[i] = h.Lo + float64(i)*h.Width
	}
	return edges
}

// MaxCount returns the largest bin count (0 for an empty histogram).
func (h *Histogram) MaxCount() int {
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	return max
}

// Densities returns the per-bin density (count / (N * width)), which sums to
// 1 when multiplied by bin width, ignoring under/overflow.
func (h *Histogram) Densities() []float64 {
	out := make([]float64, len(h.Counts))
	inRange := h.N - h.Under - h.Over
	if inRange == 0 {
		return out
	}
	norm := 1 / (float64(inRange) * h.Width)
	for i, c := range h.Counts {
		out[i] = float64(c) * norm
	}
	return out
}
