package stats

import (
	"fmt"
	"math"
)

// RegressionResult reports an ordinary-least-squares simple linear
// regression y = Intercept + Slope*x. The paper's §3.4 claim that flagship
// FAR shows no clear trend over 2016-2020 is exactly a slope-equals-zero
// test on a five-point series.
type RegressionResult struct {
	Slope      float64
	Intercept  float64
	R2         float64
	SlopeSE    float64
	T          float64 // t statistic for slope = 0
	DF         float64
	P          float64 // two-sided p-value for slope = 0
	N          int
	ResidualSD float64
}

// LinearRegression fits y on x by OLS and tests the slope against zero.
func LinearRegression(x, y []float64) (RegressionResult, error) {
	if len(x) != len(y) {
		return RegressionResult{}, fmt.Errorf("stats: regression needs equal-length samples (got %d, %d)", len(x), len(y))
	}
	n := len(x)
	if n < 3 {
		return RegressionResult{}, fmt.Errorf("stats: regression needs >=3 points (got %d): %w", n, ErrTooFew)
	}
	mx, my := MustMean(x), MustMean(y)
	var sxx, sxy, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if AlmostZero(sxx) {
		return RegressionResult{}, fmt.Errorf("stats: regression undefined for constant x")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	// Residual sum of squares via the identity RSS = Syy - b*Sxy.
	rss := syy - slope*sxy
	if rss < 0 {
		rss = 0 // guard against rounding
	}
	df := float64(n - 2)
	var r2 float64
	if syy > 0 {
		r2 = 1 - rss/syy
	} else {
		r2 = 1 // y constant and perfectly fit
	}
	resSD := math.Sqrt(rss / df)
	se := resSD / math.Sqrt(sxx)
	res := RegressionResult{
		Slope:      slope,
		Intercept:  intercept,
		R2:         r2,
		SlopeSE:    se,
		DF:         df,
		N:          n,
		ResidualSD: resSD,
	}
	if AlmostZero(se) {
		// Perfect fit: slope is exact.
		res.T = math.Inf(1) * math.Copysign(1, slope)
		res.P = 0
		if AlmostZero(slope) {
			res.T = 0
			res.P = 1
		}
		return res, nil
	}
	res.T = slope / se
	res.P = StudentsT{DF: df}.TwoSidedP(res.T)
	return res, nil
}

// CohenH returns Cohen's h effect size for the difference between two
// proportions (the arcsine-transformed difference). Conventional
// interpretation: 0.2 small, 0.5 medium, 0.8 large. It complements the
// paper's chi-squared p-values with a magnitude: e.g. the author-vs-PC gap
// (9.9% vs 18.46%) is h ~ 0.25.
func CohenH(p1, p2 Proportion) (float64, error) {
	if !p1.Valid() || !p2.Valid() {
		return 0, fmt.Errorf("stats: invalid proportions %v, %v", p1, p2)
	}
	if p1.N == 0 || p2.N == 0 {
		return 0, ErrEmpty
	}
	phi := func(p float64) float64 { return 2 * math.Asin(math.Sqrt(p)) }
	return phi(p1.Ratio()) - phi(p2.Ratio()), nil
}

// HolmBonferroni applies the Holm step-down correction to a family of
// p-values and reports which hypotheses are rejected at the given alpha.
// The paper runs many tests over one corpus; this is the standard guard
// against multiplicity when treating them as a family.
func HolmBonferroni(pvalues []float64, alpha float64) ([]bool, error) {
	if alpha <= 0 || alpha >= 1 {
		return nil, fmt.Errorf("stats: alpha %g outside (0, 1)", alpha)
	}
	m := len(pvalues)
	if m == 0 {
		return nil, ErrEmpty
	}
	type indexed struct {
		p float64
		i int
	}
	order := make([]indexed, m)
	for i, p := range pvalues {
		if p < 0 || p > 1 || math.IsNaN(p) {
			return nil, fmt.Errorf("stats: p-value %g at index %d outside [0, 1]", p, i)
		}
		order[i] = indexed{p, i}
	}
	// Insertion sort: families are small.
	for i := 1; i < m; i++ {
		for j := i; j > 0 && order[j].p < order[j-1].p; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	rejected := make([]bool, m)
	for k, o := range order {
		if o.p > alpha/float64(m-k) {
			break // step-down stops at the first acceptance
		}
		rejected[o.i] = true
	}
	return rejected, nil
}
