package stats

import (
	"fmt"
	"math"
	"sort"
)

// KSResult reports the two-sample Kolmogorov-Smirnov test, the
// distribution-level comparison behind the paper's density figures: where
// the paper eyeballs that male authors' experience distributions "pull to
// the right", the KS statistic quantifies the maximal CDF gap.
type KSResult struct {
	D  float64 // sup |F1 - F2|
	P  float64 // asymptotic two-sided p-value
	N1 int
	N2 int
}

// KolmogorovSmirnov runs the two-sample KS test with the asymptotic
// Kolmogorov-distribution p-value (accurate for n1, n2 >= ~25; the paper's
// groups are in the hundreds).
func KolmogorovSmirnov(x, y []float64) (KSResult, error) {
	n1, n2 := len(x), len(y)
	if n1 == 0 || n2 == 0 {
		return KSResult{}, ErrEmpty
	}
	if n1 < 4 || n2 < 4 {
		return KSResult{}, fmt.Errorf("stats: KS needs >=4 per group (got %d, %d): %w", n1, n2, ErrTooFew)
	}
	xs := append([]float64(nil), x...)
	ys := append([]float64(nil), y...)
	sort.Float64s(xs)
	sort.Float64s(ys)
	var d float64
	i, j := 0, 0
	for i < n1 && j < n2 {
		v1, v2 := xs[i], ys[j]
		m := math.Min(v1, v2)
		for i < n1 && xs[i] <= m {
			i++
		}
		for j < n2 && ys[j] <= m {
			j++
		}
		diff := math.Abs(float64(i)/float64(n1) - float64(j)/float64(n2))
		if diff > d {
			d = diff
		}
	}
	ne := float64(n1) * float64(n2) / float64(n1+n2)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	return KSResult{D: d, P: ksQ(lambda), N1: n1, N2: n2}, nil
}

// ksQ is the Kolmogorov survival function Q(lambda) = 2 sum_{k>=1}
// (-1)^{k-1} exp(-2 k^2 lambda^2).
func ksQ(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := math.Exp(-2 * float64(k*k) * lambda * lambda)
		sum += sign * term
		if term < 1e-12 {
			break
		}
		sign = -sign
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}
