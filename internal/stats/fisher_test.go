package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFisherExactKnownValues(t *testing.T) {
	// R: fisher.test(matrix(c(3,1,1,3),2)) -> p = 0.4857 (tea-tasting).
	r, err := FisherExact(3, 1, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "tea p", r.P, 0.485714285714, 1e-9)
	approx(t, "tea odds", r.OddsRatio, 9, 1e-12)
	// Hand computation for the table (1 9 / 11 3): margins r1=10, c1=12,
	// n=24. Tables with probability <= p(observed) are x in {0, 1, 9, 10}
	// with probabilities (91 + 3640 + 3640 + 91) / C(24,12) = 7462/2704156.
	r, err = FisherExact(1, 9, 11, 3)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "p", r.P, 7462.0/2704156.0, 1e-9)
	// One-sided components bracket the two-sided value's pieces.
	if r.PLess > 1 || r.PGreater > 1 || r.PLess < 0 || r.PGreater < 0 {
		t.Errorf("one-sided p out of range: %g, %g", r.PLess, r.PGreater)
	}
}

func TestFisherExactZeroCells(t *testing.T) {
	// Zero-women rosters: 0 women of 12 chairs vs 6 of 24 elsewhere.
	r, err := FisherExact(0, 12, 6, 18)
	if err != nil {
		t.Fatal(err)
	}
	if r.P <= 0 || r.P > 1 {
		t.Errorf("p = %g", r.P)
	}
	if r.OddsRatio != 0 {
		t.Errorf("odds ratio with a zero in cell a should be 0, got %g", r.OddsRatio)
	}
	// b == 0: infinite odds ratio.
	r, err = FisherExact(5, 0, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(r.OddsRatio, 1) {
		t.Errorf("odds ratio = %g, want +Inf", r.OddsRatio)
	}
	// Degenerate all-zero.
	if _, err := FisherExact(0, 0, 0, 0); err == nil {
		t.Error("empty table accepted")
	}
	if _, err := FisherExact(-1, 2, 3, 4); err == nil {
		t.Error("negative cell accepted")
	}
}

func TestFisherMatchesChiSquaredOnLargeTables(t *testing.T) {
	// With large balanced counts the exact and asymptotic tests agree.
	fe, err := FisherExact(100, 200, 150, 150)
	if err != nil {
		t.Fatal(err)
	}
	chi, err := ChiSquaredIndependence([][]float64{{100, 200}, {150, 150}})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fe.P-chi.P) > 0.01 {
		t.Errorf("exact %g vs chi-squared %g diverge on a large table", fe.P, chi.P)
	}
}

func TestFisherExactProperties(t *testing.T) {
	f := func(a, b, c, d uint8) bool {
		aa, bb, cc, dd := int(a%30), int(b%30), int(c%30), int(d%30)
		if aa+bb+cc+dd == 0 {
			return true
		}
		r, err := FisherExact(aa, bb, cc, dd)
		if err != nil {
			return false
		}
		if r.P < 0 || r.P > 1 {
			return false
		}
		// Transposing the table leaves the p-value unchanged.
		rt, err := FisherExact(aa, cc, bb, dd)
		if err != nil {
			return false
		}
		return math.Abs(r.P-rt.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMannWhitneyKnownExample(t *testing.T) {
	// Clearly separated samples: all of y above all of x.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 11, 12, 13, 14}
	r, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "U", r.U, 0, 0) // x wins no pairs
	if r.P > 0.02 {
		t.Errorf("separated samples p = %g", r.P)
	}
	approx(t, "rank-biserial", r.RankBiserial, 1, 1e-12)
	// Symmetric case: swapping groups flips the effect size.
	r2, err := MannWhitneyU(y, x)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "U swapped", r2.U, 25, 0)
	approx(t, "rb swapped", r2.RankBiserial, -1, 1e-12)
	approx(t, "p symmetric", r.P, r2.P, 1e-12)
}

func TestMannWhitneyNull(t *testing.T) {
	x := []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3}
	y := []float64{2, 7, 1, 8, 2, 8, 1, 8, 2, 8}
	r, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.05 {
		t.Errorf("similar samples rejected at p = %g", r.P)
	}
}

func TestMannWhitneyOutlierRobust(t *testing.T) {
	// The paper's scenario: one giant outlier in the smaller group. The
	// t-test flips sign because of it; Mann-Whitney barely moves.
	fem := []float64{2, 3, 4, 5, 6, 7, 8, 9, 10, 460}
	femNoOut := fem[:9]
	mal := []float64{5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}
	with, err := MannWhitneyU(fem, mal)
	if err != nil {
		t.Fatal(err)
	}
	without, err := MannWhitneyU(femNoOut, mal)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(with.RankBiserial-without.RankBiserial) > 0.25 {
		t.Errorf("rank-biserial moved too much with outlier: %.3f vs %.3f",
			with.RankBiserial, without.RankBiserial)
	}
}

func TestMannWhitneyErrors(t *testing.T) {
	if _, err := MannWhitneyU(nil, []float64{1, 2}); err == nil {
		t.Error("empty group accepted")
	}
	if _, err := MannWhitneyU([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("single observation accepted")
	}
	if _, err := MannWhitneyU([]float64{5, 5, 5}, []float64{5, 5}); err == nil {
		t.Error("all-tied samples accepted")
	}
}

func TestMannWhitneyTieHandling(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{2, 3, 3, 4}
	r, err := MannWhitneyU(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(r.Z) || math.IsNaN(r.P) {
		t.Errorf("tied samples produced NaN: %+v", r)
	}
	if r.P < 0 || r.P > 1 {
		t.Errorf("p = %g", r.P)
	}
}
