package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestChiSquaredIndependence2x2(t *testing.T) {
	// Hand-computed example: table {{10, 20}, {30, 40}}.
	// Expected: row sums 30, 70; col sums 40, 60; total 100.
	// E = {{12, 18}, {28, 42}}; chi2 = 4/12 + 4/18 + 4/28 + 4/42
	//    = 0.33333 + 0.22222 + 0.14286 + 0.09524 = 0.7936507936...
	r, err := ChiSquaredIndependence([][]float64{{10, 20}, {30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "chisq", r.ChiSq, 0.7936507936507936, 1e-12)
	approx(t, "df", r.DF, 1, 0)
	// R: chisq.test(matrix(c(10,30,20,40),2), correct=FALSE) -> p = 0.373.
	approx(t, "p", r.P, 0.3730, 5e-4)
	if r.N != 100 {
		t.Errorf("N = %d, want 100", r.N)
	}
	wantE := []float64{12, 18, 28, 42}
	for i, e := range r.Expected {
		approx(t, "expected", e, wantE[i], 1e-12)
	}
}

func TestChiSquaredIndependenceLargerTable(t *testing.T) {
	// 2x3 table; df = 2.
	r, err := ChiSquaredIndependence([][]float64{
		{20, 30, 50},
		{30, 30, 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "df", r.DF, 2, 0)
	if r.P <= 0 || r.P >= 1 {
		t.Errorf("p = %g outside (0,1)", r.P)
	}
	// Independence chi-squared is invariant under row swap.
	r2, err := ChiSquaredIndependence([][]float64{
		{30, 30, 40},
		{20, 30, 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "row-swap invariance", r.ChiSq, r2.ChiSq, 1e-12)
}

func TestChiSquaredIndependenceTransposeInvariance(t *testing.T) {
	table := [][]float64{{12, 7, 31}, {5, 22, 9}}
	transposed := [][]float64{{12, 5}, {7, 22}, {31, 9}}
	a, err := ChiSquaredIndependence(table)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ChiSquaredIndependence(transposed)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "transpose chisq", a.ChiSq, b.ChiSq, 1e-12)
	approx(t, "transpose p", a.P, b.P, 1e-12)
}

func TestChiSquaredPerfectIndependence(t *testing.T) {
	// Rows proportional => chi-squared exactly 0, p exactly 1.
	r, err := ChiSquaredIndependence([][]float64{{10, 20}, {20, 40}})
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "chisq", r.ChiSq, 0, 1e-12)
	approx(t, "p", r.P, 1, 1e-12)
}

func TestChiSquaredYates(t *testing.T) {
	plain, err := ChiSquaredIndependence([][]float64{{10, 20}, {30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	yates, err := ChiSquaredIndependenceYates([][]float64{{10, 20}, {30, 40}})
	if err != nil {
		t.Fatal(err)
	}
	if !(yates.ChiSq < plain.ChiSq) {
		t.Errorf("Yates should shrink the statistic: %g vs %g", yates.ChiSq, plain.ChiSq)
	}
	if !(yates.P > plain.P) {
		t.Errorf("Yates should be more conservative: p %g vs %g", yates.P, plain.P)
	}
	// R: chisq.test(matrix(c(10,30,20,40),2)) (Yates default) -> X-squared
	// = 0.44643, p = 0.504.
	approx(t, "yates chisq", yates.ChiSq, 0.4464285714285714, 1e-10)
	approx(t, "yates p", yates.P, 0.5040, 5e-4)
	if !yates.Yates {
		t.Error("Yates flag not set")
	}
	// Correction must be a no-op flag for tables larger than 2x2.
	big, err := ChiSquaredIndependenceYates([][]float64{{5, 6, 7}, {8, 9, 10}})
	if err != nil {
		t.Fatal(err)
	}
	if big.Yates {
		t.Error("Yates must not apply to tables larger than 2x2")
	}
}

func TestChiSquaredErrors(t *testing.T) {
	cases := [][][]float64{
		{{1, 2}},          // 1 row
		{{1}, {2}},        // 1 column
		{{1, 2}, {3}},     // ragged
		{{-1, 2}, {3, 4}}, // negative count
		{{0, 0}, {1, 2}},  // zero row margin
		{{0, 1}, {0, 2}},  // zero column margin
		{{0, 0}, {0, 0}},  // all zero
	}
	for i, table := range cases {
		if _, err := ChiSquaredIndependence(table); err == nil {
			t.Errorf("case %d: want error for table %v", i, table)
		}
	}
}

func TestChiSquaredGoodnessOfFit(t *testing.T) {
	// Fair-die example: observed 6 cells, uniform expectation.
	obs := []float64{22, 21, 22, 27, 22, 36}
	probs := []float64{1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6, 1.0 / 6}
	r, err := ChiSquaredGoodnessOfFit(obs, probs)
	if err != nil {
		t.Fatal(err)
	}
	// Total 150, expected 25/cell:
	// (9+16+9+4+9+121)/25 = 168/25 = 6.72; df = 5.
	approx(t, "chisq", r.ChiSq, 6.72, 1e-12)
	approx(t, "df", r.DF, 5, 0)
	// R: chisq.test(obs, p=rep(1/6,6)) -> p = 0.2423.
	approx(t, "p", r.P, 0.2423, 5e-4)
}

func TestChiSquaredGoodnessOfFitErrors(t *testing.T) {
	if _, err := ChiSquaredGoodnessOfFit([]float64{1, 2}, []float64{0.5}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := ChiSquaredGoodnessOfFit([]float64{1, 2}, []float64{0.3, 0.3}); err == nil {
		t.Error("want error for probabilities not summing to 1")
	}
	if _, err := ChiSquaredGoodnessOfFit([]float64{1, 2}, []float64{1, 0}); err == nil {
		t.Error("want error for zero probability")
	}
	if _, err := ChiSquaredGoodnessOfFit([]float64{0, 0}, []float64{0.5, 0.5}); err == nil {
		t.Error("want error for all-zero observations")
	}
}

func TestTwoProportionChiSqMatchesZTest(t *testing.T) {
	// For any 2x2 table, z^2 from the pooled two-proportion z-test equals
	// the uncorrected chi-squared statistic.
	f := func(a, b, c, d uint8) bool {
		k1, m1 := int(a), int(a)+int(b)
		k2, m2 := int(c), int(c)+int(d)
		if int(b) == 0 && int(d) == 0 {
			return true // zero "non-success" column margin
		}
		if k1 == 0 && k2 == 0 {
			return true // zero success column margin
		}
		if m1 == 0 || m2 == 0 {
			return true
		}
		chi, err := TwoProportionChiSq(k1, m1, k2, m2)
		if err != nil {
			return true
		}
		z, pz, err := TwoProportionZTest(Proportion{k1, m1}, Proportion{k2, m2})
		if err != nil {
			return true
		}
		return math.Abs(z*z-chi.ChiSq) < 1e-9 && math.Abs(pz-chi.P) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTwoProportionChiSqPaperShape(t *testing.T) {
	// The paper's §3.1 comparison: SC+ISC combined FAR 7.57% vs 10.52%
	// in the other conferences, chi2 = 3.133, p = 0.0767. Reconstruct
	// approximate counts: SC+ISC ~ 397 known-gender authors, 30 women;
	// others ~ 1710, 180 women. The exact counts are not published, so we
	// assert only the reproduced shape: a statistic near 3 and p in the
	// marginally-nonsignificant band the paper describes.
	r, err := TwoProportionChiSq(30, 397, 180, 1711)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.01 || r.P > 0.20 {
		t.Errorf("p = %g outside the paper's marginal band", r.P)
	}
	if r.ChiSq < 1 || r.ChiSq > 6 {
		t.Errorf("chisq = %g not in the expected vicinity", r.ChiSq)
	}
}

func TestChiSquaredResultString(t *testing.T) {
	r := ChiSquaredResult{Method: "Pearson chi-squared test of independence", ChiSq: 3.133, DF: 1, P: 0.0767}
	want := "Pearson chi-squared test of independence: chi-sq = 3.133, df = 1, p = 0.0767"
	if got := r.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
