package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestWelchTTestKnownExample(t *testing.T) {
	// Analytic example: x = 1..5, y = 2,4,..,10.
	// mean(x)=3, mean(y)=6, var(x)=2.5, var(y)=10.
	// se = sqrt(2.5/5 + 10/5) = sqrt(2.5); t = -3/sqrt(2.5) = -1.897366596...
	// df = 2.5^2 / (0.5^2/4 + 2^2/4) = 6.25/1.0625 = 5.882352941...
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "t", r.T, -3/math.Sqrt(2.5), 1e-12)
	approx(t, "df", r.DF, 6.25/1.0625, 1e-12)
	approx(t, "meanX", r.MeanX, 3, 0)
	approx(t, "meanY", r.MeanY, 6, 0)
	// R: t.test(1:5, seq(2,10,2)) gives p-value = 0.1075 (4 s.f.).
	approx(t, "p", r.P, 0.1075, 5e-4)
	// Independent sanity band from t tables: t_{0.95, 6} = 1.943, so the
	// one-sided p of |t| = 1.897 at df ~ 5.9 sits just above 0.05.
	if r.P < 0.09 || r.P > 0.13 {
		t.Errorf("p = %g outside sanity band [0.09, 0.13]", r.P)
	}
	if r.CILow >= r.CIHigh {
		t.Errorf("CI inverted: [%g, %g]", r.CILow, r.CIHigh)
	}
	// The 95% CI must contain the observed difference -3.
	if r.CILow > -3 || r.CIHigh < -3 {
		t.Errorf("CI [%g, %g] does not contain the point estimate -3", r.CILow, r.CIHigh)
	}
	if !r.Welch || r.Pooled {
		t.Error("method flags wrong")
	}
}

func TestWelchTTestSymmetry(t *testing.T) {
	x := []float64{3.1, 4.5, 2.2, 8.0, 5.5, 4.4}
	y := []float64{7.3, 6.1, 9.9, 5.0}
	a, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := WelchTTest(y, x)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "t antisymmetry", a.T, -b.T, 1e-12)
	approx(t, "df symmetric", a.DF, b.DF, 1e-12)
	approx(t, "p symmetric", a.P, b.P, 1e-12)
}

func TestWelchTTestIdenticalGroupsNotSignificant(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	x := make([]float64, 200)
	y := make([]float64, 200)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	r, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.001 {
		t.Errorf("two samples from N(0,1) rejected with p = %g", r.P)
	}
}

func TestWelchTTestDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 3))
	x := make([]float64, 150)
	y := make([]float64, 150)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 1.0
	}
	r, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Significant(0.001) {
		t.Errorf("unit shift with n=150 not detected, p = %g", r.P)
	}
	if r.T >= 0 {
		t.Errorf("t should be negative for mean(x) < mean(y), got %g", r.T)
	}
}

func TestWelchTTestErrors(t *testing.T) {
	if _, err := WelchTTest([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("want error for n < 2")
	}
	if _, err := WelchTTest(nil, []float64{1, 2}); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := WelchTTest([]float64{2, 2, 2}, []float64{5, 5}); err == nil {
		t.Error("want error for two constant samples")
	}
}

func TestPooledTTestKnownExample(t *testing.T) {
	// Same data as the Welch example; pooled df = 8,
	// sp2 = (4*2.5 + 4*10)/8 = 6.25, se = sqrt(6.25*(2/5)) = sqrt(2.5).
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := PooledTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "t", r.T, -3/math.Sqrt(2.5), 1e-12)
	approx(t, "df", r.DF, 8, 0)
	// R: t.test(..., var.equal=TRUE) gives p-value = 0.09434.
	approx(t, "p", r.P, 0.09434, 5e-4)
}

func TestPooledEqualsWelchForBalancedEqualVariance(t *testing.T) {
	// With equal n and equal sample variances the two tests coincide
	// (identical t and df).
	x := []float64{1, 2, 3, 4}
	y := []float64{11, 12, 13, 14}
	w, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PooledTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "t equal", w.T, p.T, 1e-12)
	approx(t, "df equal", w.DF, p.DF, 1e-9)
	approx(t, "p equal", w.P, p.P, 1e-9)
}

func TestOneSampleTTest(t *testing.T) {
	// x = 1..5 against mu=2: mean 3, var 2.5, se = sqrt(0.5), t = sqrt(2).
	r, err := OneSampleTTest([]float64{1, 2, 3, 4, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "t", r.T, math.Sqrt2, 1e-12)
	approx(t, "df", r.DF, 4, 0)
	// R: t.test(1:5, mu=2) gives p-value = 0.2302; sanity check against
	// t tables: t_{0.90, 4} = 1.533 > sqrt(2), so two-sided p > 0.2.
	approx(t, "p", r.P, 0.2302, 5e-4)
	if r.P < 0.2 {
		t.Errorf("p = %g contradicts t-table bound (> 0.2)", r.P)
	}
	if _, err := OneSampleTTest([]float64{4, 4, 4}, 3); err == nil {
		t.Error("want error for constant sample")
	}
}

func TestTTestResultString(t *testing.T) {
	r := TTestResult{Method: "Welch two-sample t-test", T: -2.18, DF: 86, P: 0.032}
	got := r.String()
	want := "Welch two-sample t-test: t = -2.18, df = 86, p = 0.032"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}
