package stats

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
	"testing/quick"
)

func TestProportionBasics(t *testing.T) {
	p := Proportion{K: 9, N: 91}
	approx(t, "Ratio", p.Ratio(), 9.0/91, 1e-15)
	approx(t, "Percent", p.Percent(), 900.0/91, 1e-12)
	if !p.Valid() {
		t.Error("valid proportion flagged invalid")
	}
	if (Proportion{K: 5, N: 3}).Valid() {
		t.Error("K > N should be invalid")
	}
	if (Proportion{K: -1, N: 3}).Valid() {
		t.Error("negative K should be invalid")
	}
	if !math.IsNaN((Proportion{}).Ratio()) {
		t.Error("0/0 should be NaN, not 0 — distinguishes no-data cells")
	}
	if s := (Proportion{K: 2, N: 20}).String(); !strings.Contains(s, "2/20") || !strings.Contains(s, "10.00%") {
		t.Errorf("String() = %q", s)
	}
	if s := (Proportion{}).String(); !strings.Contains(s, "n/a") {
		t.Errorf("empty String() = %q", s)
	}
}

func TestWilsonCIProperties(t *testing.T) {
	f := func(k8, n8 uint8) bool {
		n := int(n8%100) + 1
		k := int(k8) % (n + 1)
		p := Proportion{K: k, N: n}
		lo, hi, err := p.WilsonCI(0.95)
		if err != nil {
			return false
		}
		phat := p.Ratio()
		// The Wilson interval always contains the point estimate and stays
		// inside [0, 1].
		return lo >= 0 && hi <= 1 && lo <= phat+1e-12 && hi >= phat-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWilsonCIKnownValue(t *testing.T) {
	// 10 successes out of 100, 95%: Wilson interval approx [0.0552, 0.1744].
	lo, hi, err := Proportion{K: 10, N: 100}.WilsonCI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Wilson lo", lo, 0.05522914, 1e-6)
	approx(t, "Wilson hi", hi, 0.17436566, 1e-6)
}

func TestWilsonCIZeroCell(t *testing.T) {
	// The paper's zero-female-session-chair cells: the interval must be
	// informative (nonzero upper bound) even when K = 0.
	lo, hi, err := Proportion{K: 0, N: 15}.WilsonCI(0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 0 {
		t.Errorf("lower bound %g, want 0", lo)
	}
	if !(hi > 0.1 && hi < 0.35) {
		t.Errorf("upper bound %g outside plausible zero-cell band", hi)
	}
}

func TestWilsonCIErrors(t *testing.T) {
	if _, _, err := (Proportion{K: 5, N: 3}).WilsonCI(0.95); err == nil {
		t.Error("want error for invalid proportion")
	}
	if _, _, err := (Proportion{K: 0, N: 0}).WilsonCI(0.95); err == nil {
		t.Error("want error for empty sample")
	}
	if _, _, err := (Proportion{K: 1, N: 2}).WilsonCI(1.5); err == nil {
		t.Error("want error for confidence outside (0,1)")
	}
}

func TestTwoProportionZTestDirection(t *testing.T) {
	z, p, err := TwoProportionZTest(Proportion{K: 30, N: 100}, Proportion{K: 10, N: 100})
	if err != nil {
		t.Fatal(err)
	}
	if z <= 0 {
		t.Errorf("z = %g, want positive for p1 > p2", z)
	}
	if p >= 0.01 {
		t.Errorf("30%% vs 10%% with n=100 each should be significant, p = %g", p)
	}
	if _, _, err := TwoProportionZTest(Proportion{K: 0, N: 0}, Proportion{K: 1, N: 2}); err == nil {
		t.Error("want error for empty group")
	}
	if _, _, err := TwoProportionZTest(Proportion{K: 0, N: 5}, Proportion{K: 0, N: 9}); err == nil {
		t.Error("want error for degenerate pooled proportion")
	}
}

func TestBootstrapCI(t *testing.T) {
	rng := rand.New(rand.NewPCG(13, 17))
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
	}
	lo, hi, err := BootstrapCI(rng, xs, 2000, 0.95, func(s []float64) float64 { return MustMean(s) })
	if err != nil {
		t.Fatal(err)
	}
	if !(lo < 5 && 5 < hi) {
		t.Errorf("bootstrap CI [%g, %g] misses the true mean 5", lo, hi)
	}
	if hi-lo > 0.5 {
		t.Errorf("bootstrap CI suspiciously wide: [%g, %g]", lo, hi)
	}
}

func TestBootstrapErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := Bootstrap(rng, nil, 10, MustMean); err != ErrEmpty {
		t.Error("want ErrEmpty")
	}
	if _, err := Bootstrap(rng, []float64{1}, 0, MustMean); err == nil {
		t.Error("want error for zero reps")
	}
	if _, err := Bootstrap(rng, []float64{1}, 10, nil); err == nil {
		t.Error("want error for nil stat")
	}
	if _, _, err := BootstrapCI(rng, []float64{1, 2}, 10, 1.2, MustMean); err == nil {
		t.Error("want error for bad confidence")
	}
}

func TestBootstrapSorted(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	dist, err := Bootstrap(rng, []float64{1, 5, 9, 2, 7}, 200, MustMean)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(dist); i++ {
		if dist[i] < dist[i-1] {
			t.Fatal("bootstrap distribution not sorted")
		}
	}
}

func TestPermutationTestAgreesWithT(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 42))
	x := make([]float64, 60)
	y := make([]float64, 60)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 1
	}
	_, pPerm, err := PermutationTest(rng, x, y, 2000, MustMean)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Both should decisively reject a unit shift at n=60.
	if pPerm > 0.01 || tt.P > 0.01 {
		t.Errorf("permutation p = %g, t-test p = %g; both should be < 0.01", pPerm, tt.P)
	}
}

func TestPermutationTestNull(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 15))
	x := make([]float64, 50)
	y := make([]float64, 50)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	_, p, err := PermutationTest(rng, x, y, 1000, MustMean)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Errorf("null data rejected at p = %g", p)
	}
	if _, _, err := PermutationTest(rng, nil, y, 10, MustMean); err == nil {
		t.Error("want error for empty group")
	}
	if _, _, err := PermutationTest(rng, x, y, 0, MustMean); err == nil {
		t.Error("want error for zero reps")
	}
	if _, _, err := PermutationTest(rng, x, y, 10, nil); err == nil {
		t.Error("want error for nil stat")
	}
}

func TestDiffProportionCI(t *testing.T) {
	// Contains the true difference and the point estimate.
	p1 := Proportion{K: 30, N: 100}
	p2 := Proportion{K: 10, N: 100}
	lo, hi, err := DiffProportionCI(p1, p2, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	d := p1.Ratio() - p2.Ratio()
	if !(lo < d && d < hi) {
		t.Errorf("CI [%g, %g] does not contain %g", lo, hi, d)
	}
	if lo < -1 || hi > 1 {
		t.Errorf("CI outside [-1, 1]: [%g, %g]", lo, hi)
	}
	// 30%% vs 10%% at n=100 is decisively positive.
	if lo <= 0 {
		t.Errorf("lower bound %g should exclude 0", lo)
	}
	// Zero-cell case stays finite and sensible.
	lo, hi, err = DiffProportionCI(Proportion{K: 0, N: 12}, Proportion{K: 3, N: 20}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if lo >= 0 || hi <= -1 || hi > 1 {
		t.Errorf("zero-cell CI [%g, %g]", lo, hi)
	}
	// Antisymmetry: swapping arguments negates and swaps the bounds.
	l1, u1, _ := DiffProportionCI(p1, p2, 0.95)
	l2, u2, _ := DiffProportionCI(p2, p1, 0.95)
	if math.Abs(l1+u2) > 1e-12 || math.Abs(u1+l2) > 1e-12 {
		t.Errorf("not antisymmetric: [%g,%g] vs [%g,%g]", l1, u1, l2, u2)
	}
	// Errors propagate.
	if _, _, err := DiffProportionCI(Proportion{K: 5, N: 3}, p2, 0.95); err == nil {
		t.Error("invalid proportion accepted")
	}
	if _, _, err := DiffProportionCI(p1, p2, 2); err == nil {
		t.Error("bad confidence accepted")
	}
}
