package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestPearsonPerfect(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	r, err := PearsonCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "r", r.R, 1, 1e-12)
	approx(t, "p", r.P, 0, 1e-12)
	neg := []float64{10, 8, 6, 4, 2}
	r, err = PearsonCorrelation(x, neg)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "r", r.R, -1, 1e-12)
}

func TestPearsonKnownExample(t *testing.T) {
	// Hand computation: x = 1..5, y = {1,2,2,4,5}: r = 10/sqrt(108).
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{1, 2, 2, 4, 5}
	r, err := PearsonCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "r", r.R, 10/math.Sqrt(108), 1e-12)
	approx(t, "df", r.DF, 3, 0)
	// R: cor.test gives t = 6.1237, p = 0.008739.
	approx(t, "t", r.T, 6.123724356957945, 1e-9)
	approx(t, "p", r.P, 0.008739, 5e-5)
}

func TestPearsonSymmetryAndInvariance(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 9))
	x := make([]float64, 60)
	y := make([]float64, 60)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 0.5*x[i] + rng.NormFloat64()
	}
	a, err := PearsonCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PearsonCorrelation(y, x)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "symmetry", a.R, b.R, 1e-12)
	// Correlation is invariant to positive affine transforms.
	z := make([]float64, len(y))
	for i := range y {
		z[i] = 3*y[i] + 7
	}
	c, err := PearsonCorrelation(x, z)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "affine invariance", a.R, c.R, 1e-12)
	// Negation flips the sign.
	for i := range z {
		z[i] = -y[i]
	}
	d, err := PearsonCorrelation(x, z)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "negation", a.R, -d.R, 1e-12)
}

func TestPearsonErrors(t *testing.T) {
	if _, err := PearsonCorrelation([]float64{1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for length mismatch")
	}
	if _, err := PearsonCorrelation([]float64{1, 2}, []float64{3, 4}); err == nil {
		t.Error("want error for n < 3")
	}
	if _, err := PearsonCorrelation([]float64{5, 5, 5}, []float64{1, 2, 3}); err == nil {
		t.Error("want error for constant sample")
	}
}

func TestPearsonUncorrelated(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 4))
	x := make([]float64, 500)
	y := make([]float64, 500)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	r, err := PearsonCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.R) > 0.15 {
		t.Errorf("independent normals gave r = %g", r.R)
	}
	if r.P < 0.001 {
		t.Errorf("independent normals rejected at p = %g", r.P)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Any strictly monotone (even nonlinear) relation gives rho = 1.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v) // wildly nonlinear but monotone
	}
	r, err := SpearmanCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "spearman rho", r.R, 1, 1e-12)
	p, err := PearsonCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if p.R >= r.R {
		t.Errorf("Pearson (%g) should be below Spearman (%g) on convex data", p.R, r.R)
	}
}

func TestSpearmanOutlierRobust(t *testing.T) {
	// One massive outlier (the paper's 450-citation paper) distorts
	// Pearson far more than Spearman.
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := []float64{2, 1, 4, 3, 6, 5, 8, 7, 10, 450}
	pe, err := PearsonCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := SpearmanCorrelation(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !(sp.R > 0.8) {
		t.Errorf("Spearman should stay high under one outlier, got %g", sp.R)
	}
	if math.Abs(pe.R-sp.R) < 0.05 {
		t.Errorf("expected Pearson (%g) and Spearman (%g) to diverge", pe.R, sp.R)
	}
}
