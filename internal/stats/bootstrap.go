package stats

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
)

// Bootstrap draws `reps` bootstrap resamples of xs, applies stat to each,
// and returns the resulting sampling distribution sorted ascending. The rng
// must not be shared with other goroutines.
func Bootstrap(rng *rand.Rand, xs []float64, reps int, stat func([]float64) float64) ([]float64, error) {
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	if reps < 1 {
		return nil, errors.New("stats: bootstrap needs at least 1 replicate")
	}
	if stat == nil {
		return nil, errors.New("stats: nil statistic")
	}
	out := make([]float64, reps)
	sample := make([]float64, len(xs))
	for r := 0; r < reps; r++ {
		for i := range sample {
			sample[i] = xs[rng.IntN(len(xs))]
		}
		out[r] = stat(sample)
	}
	sort.Float64s(out)
	return out, nil
}

// BootstrapCI returns the percentile bootstrap confidence interval for stat
// at the given confidence level. The paper reports point ratios without
// intervals; the library adds them so downstream users can judge the
// stability of small-cell percentages (e.g. regional FAR with <25 authors).
func BootstrapCI(rng *rand.Rand, xs []float64, reps int, confidence float64, stat func([]float64) float64) (lo, hi float64, err error) {
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %g outside (0, 1)", confidence)
	}
	dist, err := Bootstrap(rng, xs, reps, stat)
	if err != nil {
		return 0, 0, err
	}
	alpha := 1 - confidence
	lo, _ = Quantile(dist, alpha/2)
	hi, _ = Quantile(dist, 1-alpha/2)
	return lo, hi, nil
}

// PermutationTest estimates the two-sided p-value of the difference in a
// statistic between groups x and y under random relabeling. It is the
// distribution-free companion to WelchTTest, useful for the paper's skewed
// citation samples.
func PermutationTest(rng *rand.Rand, x, y []float64, reps int, stat func([]float64) float64) (observed float64, p float64, err error) {
	if len(x) == 0 || len(y) == 0 {
		return 0, 0, ErrEmpty
	}
	if reps < 1 {
		return 0, 0, errors.New("stats: permutation test needs at least 1 replicate")
	}
	if stat == nil {
		return 0, 0, errors.New("stats: nil statistic")
	}
	observed = stat(x) - stat(y)
	pooled := make([]float64, 0, len(x)+len(y))
	pooled = append(pooled, x...)
	pooled = append(pooled, y...)
	extreme := 0
	perm := make([]float64, len(pooled))
	for r := 0; r < reps; r++ {
		copy(perm, pooled)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		d := stat(perm[:len(x)]) - stat(perm[len(x):])
		if absFloat(d) >= absFloat(observed) {
			extreme++
		}
	}
	// Add-one smoothing keeps the estimate strictly positive, the standard
	// recommendation for Monte Carlo p-values.
	p = (float64(extreme) + 1) / (float64(reps) + 1)
	return observed, p, nil
}
