package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func randomSample(rng *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		// Span several orders of magnitude like the citation vectors do,
		// so summation-order sensitivity would actually show up here.
		xs[i] = math.Exp(rng.NormFloat64()*2) * float64(1+i%7)
	}
	return xs
}

// splitAt cuts xs into parts at the given boundaries (a strictly
// increasing list of indexes in [0, len]). Parts may be empty.
func splitAt(xs []float64, cuts []int) [][]float64 {
	parts := make([][]float64, 0, len(cuts)+1)
	prev := 0
	for _, c := range cuts {
		parts = append(parts, xs[prev:c])
		prev = c
	}
	return append(parts, xs[prev:])
}

func mergeParts(parts [][]float64) Moments {
	var m Moments
	for _, p := range parts {
		m.Merge(MomentsOf(p))
	}
	return m
}

func TestMomentsMergeEqualsPooledOnEverySplit(t *testing.T) {
	rng := rand.New(rand.NewPCG(8, 15))
	xs := randomSample(rng, 257)
	whole := MomentsOf(xs)
	pooledMean := MustMean(xs)
	pooledVar, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Every two-way split, including the empty prefix (empty shard) and
	// the length-1 prefix (single-row shard).
	for cut := 0; cut <= len(xs); cut++ {
		m := mergeParts(splitAt(xs, []int{cut}))
		if m.N != whole.N {
			t.Fatalf("cut %d: merged N = %d, want %d", cut, m.N, whole.N)
		}
		mean, err := m.Mean()
		if err != nil {
			t.Fatalf("cut %d: Mean: %v", cut, err)
		}
		if !AlmostEqual(mean, pooledMean) {
			t.Fatalf("cut %d: merged mean %g != pooled %g", cut, mean, pooledMean)
		}
		v, err := m.Variance()
		if err != nil {
			t.Fatalf("cut %d: Variance: %v", cut, err)
		}
		if relDiff(v, pooledVar) > 1e-9 {
			t.Fatalf("cut %d: merged variance %g != pooled %g", cut, v, pooledVar)
		}
	}
}

func TestMomentsMergeManyWaySplits(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 8))
	xs := randomSample(rng, 300)
	whole := MomentsOf(xs)
	cutSets := [][]int{
		{},                        // one shard
		{0, 0, 0},                 // three leading empty shards
		{1, 2, 3},                 // single-row shards
		{100, 100, 200},           // an empty middle shard
		{75, 150, 225},            // even four-way
		{0, 1, 299, 300},          // empty + single + bulk + single + empty
		{50, 50, 50, 50, 50, 300}, // repeated empty shards then the tail
	}
	for _, cuts := range cutSets {
		m := mergeParts(splitAt(xs, cuts))
		if m.N != whole.N {
			t.Fatalf("cuts %v: merged N = %d, want %d", cuts, m.N, whole.N)
		}
		if relDiff(m.Sum, whole.Sum) > 1e-12 || relDiff(m.SumSq, whole.SumSq) > 1e-12 {
			t.Fatalf("cuts %v: merged sums (%g, %g) far from whole (%g, %g)",
				cuts, m.Sum, m.SumSq, whole.Sum, whole.SumSq)
		}
	}
}

func TestMomentsMergeIsOrderDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	xs := randomSample(rng, 200)
	parts := splitAt(xs, []int{64, 128, 192})
	a := mergeParts(parts)
	b := mergeParts(parts)
	if a != b {
		t.Fatalf("same merge order produced different partials: %+v vs %+v", a, b)
	}
}

func TestWelchTTestFromMomentsMatchesPooled(t *testing.T) {
	rng := rand.New(rand.NewPCG(19, 3))
	x := randomSample(rng, 113)
	y := randomSample(rng, 71)
	want, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	// Every two-way split of x against every-other-split of y would be
	// quadratic; split x at every cut with y fixed, then the reverse.
	for cut := 0; cut <= len(x); cut++ {
		got, err := WelchTTestFromMoments(mergeParts(splitAt(x, []int{cut})), MomentsOf(y))
		if err != nil {
			t.Fatalf("x cut %d: %v", cut, err)
		}
		checkWelchClose(t, got, want)
	}
	for cut := 0; cut <= len(y); cut++ {
		got, err := WelchTTestFromMoments(MomentsOf(x), mergeParts(splitAt(y, []int{cut})))
		if err != nil {
			t.Fatalf("y cut %d: %v", cut, err)
		}
		checkWelchClose(t, got, want)
	}
}

func checkWelchClose(t *testing.T, got, want TTestResult) {
	t.Helper()
	if got.NX != want.NX || got.NY != want.NY {
		t.Fatalf("N mismatch: got (%d, %d), want (%d, %d)", got.NX, got.NY, want.NX, want.NY)
	}
	if !AlmostEqual(got.T, want.T) || !AlmostEqual(got.DF, want.DF) || !AlmostEqual(got.P, want.P) {
		t.Fatalf("moment-form Welch diverged: got t=%g df=%g p=%g, want t=%g df=%g p=%g",
			got.T, got.DF, got.P, want.T, want.DF, want.P)
	}
}

func TestWelchTTestFromMomentsErrors(t *testing.T) {
	two := MomentsOf([]float64{1, 2})
	if _, err := WelchTTestFromMoments(MomentsOf([]float64{1}), two); err == nil {
		t.Fatal("single-observation group: want ErrTooFew, got nil")
	}
	if _, err := WelchTTestFromMoments(Moments{}, two); err == nil {
		t.Fatal("empty group: want ErrTooFew, got nil")
	}
	constA := MomentsOf([]float64{5, 5, 5})
	constB := MomentsOf([]float64{5, 5, 5, 5})
	if _, err := WelchTTestFromMoments(constA, constB); err == nil {
		t.Fatal("two constant samples: want undefined-SE error, got nil")
	}
}

func TestMomentsVarianceClampsNegativeZero(t *testing.T) {
	// A constant sample makes Σx² - (Σx)²/n cancel to (possibly negative)
	// dust; the clamp must report exactly zero, never a negative variance.
	m := MomentsOf([]float64{1e8 + 1, 1e8 + 1, 1e8 + 1})
	v, err := m.Variance()
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 {
		t.Fatalf("variance = %g, want >= 0", v)
	}
}

func TestMomentsMeanVarianceErrors(t *testing.T) {
	var empty Moments
	if _, err := empty.Mean(); err != ErrEmpty {
		t.Fatalf("empty Mean err = %v, want ErrEmpty", err)
	}
	if _, err := empty.Variance(); err != ErrEmpty {
		t.Fatalf("empty Variance err = %v, want ErrEmpty", err)
	}
	one := MomentsOf([]float64{3})
	if _, err := one.Variance(); err != ErrTooFew {
		t.Fatalf("n=1 Variance err = %v, want ErrTooFew", err)
	}
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale == 0 { //whpcvet:ignore floatcmp — exact zero scale means both values are exactly zero
		return 0
	}
	return d / scale
}
