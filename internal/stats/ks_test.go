package stats

import (
	"math/rand/v2"
	"testing"
)

func TestKSIdenticalDistributions(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 14))
	x := make([]float64, 300)
	y := make([]float64, 300)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	r, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.01 {
		t.Errorf("identical distributions rejected: D = %g, p = %g", r.D, r.P)
	}
	if r.D < 0 || r.D > 1 {
		t.Errorf("D = %g out of range", r.D)
	}
}

func TestKSDetectsShift(t *testing.T) {
	rng := rand.New(rand.NewPCG(15, 9))
	x := make([]float64, 250)
	y := make([]float64, 250)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64() + 0.5
	}
	r, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 0.001 {
		t.Errorf("half-sigma shift with n=250 not detected: D = %g, p = %g", r.D, r.P)
	}
}

func TestKSDetectsSpreadDifference(t *testing.T) {
	// KS also sees scale differences that a t-test on means cannot.
	rng := rand.New(rand.NewPCG(8, 1))
	x := make([]float64, 400)
	y := make([]float64, 400)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = 3 * rng.NormFloat64() // same mean, triple spread
	}
	ks, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if ks.P > 0.001 {
		t.Errorf("spread difference not detected by KS: p = %g", ks.P)
	}
	tt, err := WelchTTest(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if tt.P < 0.01 {
		t.Errorf("t-test should NOT see a mean difference here: p = %g", tt.P)
	}
}

func TestKSSymmetry(t *testing.T) {
	x := []float64{1, 3, 5, 7, 9, 11}
	y := []float64{2, 4, 6, 8, 10}
	a, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	b, err := KolmogorovSmirnov(y, x)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "D symmetric", a.D, b.D, 1e-12)
	approx(t, "p symmetric", a.P, b.P, 1e-12)
}

func TestKSKnownD(t *testing.T) {
	// Disjoint supports: D = 1.
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{10, 11, 12, 13, 14}
	r, err := KolmogorovSmirnov(x, y)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "disjoint D", r.D, 1, 1e-12)
	if r.P > 0.02 {
		t.Errorf("disjoint supports p = %g", r.P)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, []float64{1, 2, 3, 4}); err == nil {
		t.Error("empty sample accepted")
	}
	if _, err := KolmogorovSmirnov([]float64{1, 2, 3}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("tiny sample accepted")
	}
}

func TestKSQBounds(t *testing.T) {
	if ksQ(0) != 1 || ksQ(-1) != 1 {
		t.Error("Q at lambda <= 0 must be 1")
	}
	if q := ksQ(10); q > 1e-10 {
		t.Errorf("Q(10) = %g, want ~0", q)
	}
	// Monotone decreasing.
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		q := ksQ(l)
		if q > prev+1e-12 {
			t.Fatalf("Q not monotone at lambda=%g", l)
		}
		prev = q
	}
	// Known value: Q(1.36) ~ 0.049 (the classical 5% critical value).
	q := ksQ(1.36)
	if q < 0.045 || q > 0.055 {
		t.Errorf("Q(1.36) = %g, want ~0.049", q)
	}
}
