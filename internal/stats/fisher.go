package stats

import (
	"fmt"
	"math"
)

// FisherExactResult reports Fisher's exact test on a 2x2 table. The
// chi-squared approximation the paper uses breaks down on its smallest
// populations (4 PC chairs, 3 keynotes per conference); the exact test is
// the principled alternative there, and the library exposes both so the
// two can be compared.
type FisherExactResult struct {
	P         float64 // two-sided p-value (sum of tables as or more extreme)
	PLess     float64 // one-sided: P(X <= observed)
	PGreater  float64 // one-sided: P(X >= observed)
	OddsRatio float64 // sample odds ratio (Inf/NaN on zero cells)
}

// FisherExact runs Fisher's exact test on the 2x2 table
//
//	a b
//	c d
//
// using the hypergeometric distribution. The two-sided p-value follows R's
// convention: the sum of probabilities of all tables with probability no
// larger than the observed one (with a small tolerance for float noise).
func FisherExact(a, b, c, d int) (FisherExactResult, error) {
	if a < 0 || b < 0 || c < 0 || d < 0 {
		return FisherExactResult{}, fmt.Errorf("stats: negative cell in 2x2 table (%d %d %d %d)", a, b, c, d)
	}
	n := a + b + c + d
	if n == 0 {
		return FisherExactResult{}, ErrEmpty
	}
	r1 := a + b // first row margin
	c1 := a + c // first column margin

	// Hypergeometric probability of a table with top-left cell x, given
	// fixed margins.
	logProb := func(x int) float64 {
		return logChoose(r1, x) + logChoose(n-r1, c1-x) - logChoose(n, c1)
	}
	lo := maxOf(0, c1-(n-r1))
	hi := minOf(r1, c1)
	pObs := math.Exp(logProb(a))

	var res FisherExactResult
	const tol = 1e-7
	for x := lo; x <= hi; x++ {
		p := math.Exp(logProb(x))
		if p <= pObs*(1+tol) {
			res.P += p
		}
		if x <= a {
			res.PLess += p
		}
		if x >= a {
			res.PGreater += p
		}
	}
	if res.P > 1 {
		res.P = 1
	}
	if res.PLess > 1 {
		res.PLess = 1
	}
	if res.PGreater > 1 {
		res.PGreater = 1
	}
	switch {
	case b == 0 || c == 0:
		if a == 0 || d == 0 {
			res.OddsRatio = math.NaN()
		} else {
			res.OddsRatio = math.Inf(1)
		}
	default:
		res.OddsRatio = float64(a) * float64(d) / (float64(b) * float64(c))
	}
	return res, nil
}

// logChoose returns log(n choose k), or -Inf outside the valid range.
func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	lk1, _ := math.Lgamma(float64(k + 1))
	lnk1, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - lk1 - lnk1
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minOf(a, b int) int {
	if a < b {
		return a
	}
	return b
}
