package stats

import (
	"errors"
	"fmt"
	"math"
)

// Moments is the merge-safe sufficient statistic for mean- and
// variance-based tests: the observation count together with the first two
// raw power sums (Σx, Σx²). Two Moments accumulated over disjoint samples
// combine by field-wise addition, which is what lets a sharded query engine
// compute Welch's t-test (or a mean) without ever shipping raw samples to
// the coordinator.
//
// Determinism contract: Add and Merge use plain (uncompensated) float64
// addition, so the result is a pure function of the order of operations.
// Callers that need byte-identical results across worker topologies must
// fix that order — the query engine accumulates per 1024-row partition and
// merges partials in global partition order, which makes federated
// execution reproduce the single-process addition tree exactly.
type Moments struct {
	N     int     // number of observations
	Sum   float64 // Σx
	SumSq float64 // Σx²
}

// Add folds one observation into m.
func (m *Moments) Add(x float64) {
	m.N++
	m.Sum += x
	m.SumSq += x * x
}

// Merge folds another partial into m. Merging partials over disjoint
// samples in a fixed order is equivalent to accumulating the concatenated
// sample partition by partition.
func (m *Moments) Merge(o Moments) {
	m.N += o.N
	m.Sum += o.Sum
	m.SumSq += o.SumSq
}

// MomentsOf accumulates xs left to right into a Moments partial.
func MomentsOf(xs []float64) Moments {
	var m Moments
	for _, x := range xs {
		m.Add(x)
	}
	return m
}

// Mean returns the arithmetic mean Σx / n.
func (m Moments) Mean() (float64, error) {
	if m.N == 0 {
		return 0, ErrEmpty
	}
	return m.Sum / float64(m.N), nil
}

// Variance returns the unbiased (n-1 denominator) sample variance computed
// from the power sums: (Σx² - (Σx)²/n) / (n-1). Cancellation can push the
// numerator a few ULPs below zero for near-constant samples, so the result
// is clamped at 0 — a variance is non-negative by definition.
func (m Moments) Variance() (float64, error) {
	if m.N < 2 {
		if m.N == 0 {
			return 0, ErrEmpty
		}
		return 0, ErrTooFew
	}
	n := float64(m.N)
	v := (m.SumSq - m.Sum*m.Sum/n) / (n - 1)
	if v < 0 {
		v = 0
	}
	return v, nil
}

// WelchTTestFromMoments performs Welch's two-sample t-test from sufficient
// statistics instead of raw samples. It mirrors WelchTTest's error
// contract: each group needs at least two observations (ErrTooFew), and two
// constant samples leave the standard error undefined. The statistic is a
// deterministic function of the two partials, so any execution strategy
// that reproduces the same partials — single process or scatter-gather —
// reports byte-identical t, df and p.
func WelchTTestFromMoments(x, y Moments) (TTestResult, error) {
	if x.N < 2 || y.N < 2 {
		return TTestResult{}, fmt.Errorf("stats: Welch t-test needs >=2 observations per group (got %d, %d): %w", x.N, y.N, ErrTooFew)
	}
	mx, _ := x.Mean()
	my, _ := y.Mean()
	vx, _ := x.Variance()
	vy, _ := y.Variance()
	nx, ny := float64(x.N), float64(y.N)
	sex2 := vx / nx
	sey2 := vy / ny
	se := math.Sqrt(sex2 + sey2)
	if AlmostZero(se) {
		return TTestResult{}, errors.New("stats: Welch t-test undefined for two constant samples")
	}
	t := (mx - my) / se
	df := (sex2 + sey2) * (sex2 + sey2) /
		(sex2*sex2/(nx-1) + sey2*sey2/(ny-1))
	dist := StudentsT{DF: df}
	p := dist.TwoSidedP(t)
	tcrit := dist.Quantile(0.975)
	return TTestResult{
		T:      t,
		DF:     df,
		P:      p,
		MeanX:  mx,
		MeanY:  my,
		StdErr: se,
		CILow:  (mx - my) - tcrit*se,
		CIHigh: (mx - my) + tcrit*se,
		Method: "Welch two-sample t-test",
		NX:     x.N,
		NY:     y.N,
		Welch:  true,
	}, nil
}
