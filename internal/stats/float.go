package stats

import "math"

// Floating-point comparison helpers enforced by the whpcvet floatcmp rule.
// Degenerate-case guards in this package ask "is this computed quantity
// mathematically zero?" — a question raw == answers wrongly whenever
// summation order or platform rounding leaves a residue like 1e-17 where
// algebra says 0, flipping a guard and with it an exhibit cell. Exact
// comparisons that are genuinely exact (domain boundaries, sentinels,
// clamped constants) stay as == with a //whpcvet:ignore annotation instead.

// zeroTol is the absolute tolerance under which a computed sum, variance,
// or standard error is treated as mathematically zero. The pipeline's
// inputs are counts and ratios of magnitude ~1e0-1e4, for which genuine
// nonzero spreads sit many orders of magnitude above 1e-12 while pure
// rounding residue sits many below it.
const zeroTol = 1e-12

// eqTol is the relative tolerance for AlmostEqual.
const eqTol = 1e-9

// AlmostZero reports whether x is mathematically zero up to rounding:
// |x| < 1e-12. NaN is not almost zero.
func AlmostZero(x float64) bool {
	return math.Abs(x) < zeroTol
}

// AlmostEqual reports whether a and b agree to within a 1e-9 relative
// tolerance (absolute near zero). NaN compares unequal to everything,
// including itself; equal infinities compare equal.
func AlmostEqual(a, b float64) bool {
	if a == b { //whpcvet:ignore floatcmp exact fast path; also the only correct test for equal infinities
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return diff <= eqTol*scale
}
