package stats

import (
	"errors"
	"math"
)

// KDE is a one-dimensional Gaussian kernel density estimate, the tool behind
// the paper's density plots (Figs 2-5: citation and experience distributions
// by gender and role).
type KDE struct {
	xs        []float64
	bandwidth float64
}

// BandwidthRule selects the KDE bandwidth heuristic.
type BandwidthRule int

const (
	// Silverman is Silverman's rule of thumb, R's bw.nrd0 — the default
	// used by ggplot2's geom_density, and therefore by the paper's plots.
	Silverman BandwidthRule = iota
	// Scott is Scott's rule, kept for the bandwidth ablation bench.
	Scott
)

// NewKDE builds a Gaussian KDE over xs with the given bandwidth rule.
func NewKDE(xs []float64, rule BandwidthRule) (*KDE, error) {
	if len(xs) < 2 {
		return nil, errors.New("stats: KDE needs at least 2 observations")
	}
	bw, err := bandwidth(xs, rule)
	if err != nil {
		return nil, err
	}
	data := append([]float64(nil), xs...)
	return &KDE{xs: data, bandwidth: bw}, nil
}

// NewKDEWithBandwidth builds a KDE with an explicit bandwidth h > 0.
func NewKDEWithBandwidth(xs []float64, h float64) (*KDE, error) {
	if len(xs) < 1 {
		return nil, ErrEmpty
	}
	if h <= 0 || math.IsNaN(h) {
		return nil, errors.New("stats: KDE bandwidth must be positive")
	}
	data := append([]float64(nil), xs...)
	return &KDE{xs: data, bandwidth: h}, nil
}

func bandwidth(xs []float64, rule BandwidthRule) (float64, error) {
	sd, err := StdDev(xs)
	if err != nil {
		return 0, err
	}
	q1, _ := Quantile(xs, 0.25)
	q3, _ := Quantile(xs, 0.75)
	iqr := q3 - q1
	n := float64(len(xs))
	// Robust spread estimate per bw.nrd0: min(sd, IQR/1.349), falling back
	// to sd when the IQR collapses (heavily tied samples).
	spread := sd
	if iqr > 0 && iqr/1.349 < spread {
		spread = iqr / 1.349
	}
	if AlmostZero(spread) {
		// Constant sample: degenerate density; pick a tiny positive width
		// so evaluation is still defined.
		spread = 1e-9
	}
	switch rule {
	case Silverman:
		return 0.9 * spread * math.Pow(n, -0.2), nil
	case Scott:
		return 1.06 * spread * math.Pow(n, -0.2), nil
	default:
		return 0, errors.New("stats: unknown bandwidth rule")
	}
}

// Bandwidth returns the bandwidth in use.
func (k *KDE) Bandwidth() float64 { return k.bandwidth }

// PDF evaluates the density estimate at x.
func (k *KDE) PDF(x float64) float64 {
	var sum float64
	invH := 1 / k.bandwidth
	norm := invH / (float64(len(k.xs)) * math.Sqrt(2*math.Pi))
	for _, xi := range k.xs {
		z := (x - xi) * invH
		sum += math.Exp(-0.5 * z * z)
	}
	return sum * norm
}

// Evaluate returns the density sampled at n evenly spaced points covering
// [min-3h, max+3h], the convention R's density() uses (cut = 3).
func (k *KDE) Evaluate(n int) (xs, ys []float64) {
	if n < 2 {
		n = 2
	}
	lo, _ := Min(k.xs)
	hi, _ := Max(k.xs)
	lo -= 3 * k.bandwidth
	hi += 3 * k.bandwidth
	xs = make([]float64, n)
	ys = make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := 0; i < n; i++ {
		xs[i] = lo + float64(i)*step
		ys[i] = k.PDF(xs[i])
	}
	return xs, ys
}

// Integrate approximates the integral of the density over [lo, hi] with the
// trapezoid rule on n panels. Used by the property tests to check that the
// estimate integrates to approximately 1.
func (k *KDE) Integrate(lo, hi float64, n int) float64 {
	if n < 1 {
		n = 1
	}
	step := (hi - lo) / float64(n)
	sum := (k.PDF(lo) + k.PDF(hi)) / 2
	for i := 1; i < n; i++ {
		sum += k.PDF(lo + float64(i)*step)
	}
	return sum * step
}
