package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSumMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Sum", Sum(xs), 40, 0)
	m, err := Mean(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Mean", m, 5, 0)
	v, err := Variance(xs)
	if err != nil {
		t.Fatal(err)
	}
	// Sum of squared deviations = 32; n-1 = 7.
	approx(t, "Variance", v, 32.0/7, 1e-12)
	sd, err := StdDev(xs)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "StdDev", sd, math.Sqrt(32.0/7), 1e-12)
}

func TestSumKahanStability(t *testing.T) {
	// 1e8 + many tiny values: naive summation loses them pairwise; Kahan
	// keeps the total exact here.
	xs := make([]float64, 1001)
	xs[0] = 1e8
	for i := 1; i <= 1000; i++ {
		xs[i] = 1e-3
	}
	approx(t, "Kahan sum", Sum(xs), 1e8+1, 1e-6)
}

func TestEmptyAndTinyErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Errorf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Variance([]float64{1}); err != ErrTooFew {
		t.Errorf("Variance(1 elt) err = %v, want ErrTooFew", err)
	}
	if _, err := Variance(nil); err != ErrEmpty {
		t.Errorf("Variance(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Min(nil); err != ErrEmpty {
		t.Error("Min(nil) should error")
	}
	if _, err := Max(nil); err != ErrEmpty {
		t.Error("Max(nil) should error")
	}
	if _, err := Median(nil); err != ErrEmpty {
		t.Error("Median(nil) should error")
	}
	if _, err := Skewness([]float64{1, 2}); err != ErrTooFew {
		t.Error("Skewness(2 elts) should be ErrTooFew")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustMean(nil) should panic")
			}
		}()
		MustMean(nil)
	}()
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	mn, _ := Min(xs)
	mx, _ := Max(xs)
	approx(t, "Min", mn, 1, 0)
	approx(t, "Max", mx, 9, 0)
	med, _ := Median(xs)
	approx(t, "Median even", med, 3.5, 1e-12)
	med, _ = Median([]float64{5, 1, 3})
	approx(t, "Median odd", med, 3, 0)
	med, _ = Median([]float64{42})
	approx(t, "Median single", med, 42, 0)
}

func TestQuantileType7(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	// R: quantile(1:4, 0.25) = 1.75 with the default type 7.
	q, err := Quantile(xs, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "Q(0.25)", q, 1.75, 1e-12)
	q, _ = Quantile(xs, 0)
	approx(t, "Q(0)", q, 1, 0)
	q, _ = Quantile(xs, 1)
	approx(t, "Q(1)", q, 4, 0)
	if _, err := Quantile(xs, 1.5); err == nil {
		t.Error("want error for p > 1")
	}
	if _, err := Quantile(xs, -0.1); err == nil {
		t.Error("want error for p < 0")
	}
	// Quantile must not mutate its input.
	orig := []float64{9, 1, 5}
	if _, err := Quantile(orig, 0.5); err != nil {
		t.Fatal(err)
	}
	if orig[0] != 9 || orig[1] != 1 || orig[2] != 5 {
		t.Errorf("Quantile mutated input: %v", orig)
	}
}

func TestSkewnessSigns(t *testing.T) {
	right := []float64{1, 1, 1, 2, 2, 3, 5, 9, 20}
	sk, err := Skewness(right)
	if err != nil {
		t.Fatal(err)
	}
	if sk <= 0 {
		t.Errorf("right-skewed sample has skewness %g, want > 0", sk)
	}
	left := make([]float64, len(right))
	for i, x := range right {
		left[i] = -x
	}
	skl, _ := Skewness(left)
	approx(t, "mirror skewness", skl, -sk, 1e-12)
	sym, _ := Skewness([]float64{-2, -1, 0, 1, 2})
	approx(t, "symmetric skewness", sym, 0, 1e-12)
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 8 {
		t.Errorf("N = %d, want 8", s.N)
	}
	approx(t, "Summary.Mean", s.Mean, 5, 0)
	approx(t, "Summary.Median", s.Median, 4.5, 1e-12)
	approx(t, "Summary.Min", s.Min, 2, 0)
	approx(t, "Summary.Max", s.Max, 9, 0)
	if !(s.Q1 <= s.Median && s.Median <= s.Q3) {
		t.Errorf("quartile ordering violated: %g %g %g", s.Q1, s.Median, s.Q3)
	}
	// Single observation: StdDev and Skewness are NaN but no error.
	s1, err := Summarize([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(s1.StdDev) || !math.IsNaN(s1.Skewness) {
		t.Error("single-observation summary should have NaN spread/skew")
	}
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("Summarize(nil) should be ErrEmpty")
	}
}

func TestDescriptiveProperties(t *testing.T) {
	// Mean lies within [min, max]; shifting by a constant shifts the mean
	// and leaves the variance unchanged.
	f := func(raw []float64, shiftRaw float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		shift := math.Mod(shiftRaw, 100)
		if math.IsNaN(shift) {
			shift = 1
		}
		m := MustMean(xs)
		mn, _ := Min(xs)
		mx, _ := Max(xs)
		if m < mn-1e-9 || m > mx+1e-9 {
			return false
		}
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		v1, _ := Variance(xs)
		v2, _ := Variance(shifted)
		m2 := MustMean(shifted)
		return math.Abs(m2-(m+shift)) < 1e-6 && math.Abs(v1-v2) < 1e-5*(1+v1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRanks(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		approx(t, "Ranks", got[i], want[i], 1e-12)
	}
	// All ties: everyone gets the average rank.
	got = Ranks([]float64{7, 7, 7})
	for i := range got {
		approx(t, "Ranks ties", got[i], 2, 1e-12)
	}
	if len(Ranks(nil)) != 0 {
		t.Error("Ranks(nil) should be empty")
	}
}

func TestRanksSumInvariant(t *testing.T) {
	// Ranks always sum to n(n+1)/2 regardless of ties.
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) {
				xs = append(xs, x)
			}
		}
		n := len(xs)
		want := float64(n*(n+1)) / 2
		return math.Abs(Sum(Ranks(xs))-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
