package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func normSample(n int, seed uint64) []float64 {
	rng := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	return xs
}

func TestKDEIntegratesToOne(t *testing.T) {
	xs := normSample(300, 42)
	for _, rule := range []BandwidthRule{Silverman, Scott} {
		k, err := NewKDE(xs, rule)
		if err != nil {
			t.Fatal(err)
		}
		lo, _ := Min(xs)
		hi, _ := Max(xs)
		integral := k.Integrate(lo-6*k.Bandwidth(), hi+6*k.Bandwidth(), 2000)
		approx(t, "KDE integral", integral, 1, 1e-3)
	}
}

func TestKDENonNegativeAndFinite(t *testing.T) {
	xs := []float64{0, 0, 1, 5, 5, 5, 20}
	k, err := NewKDE(xs, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	gx, gy := k.Evaluate(128)
	if len(gx) != 128 || len(gy) != 128 {
		t.Fatalf("Evaluate returned %d/%d points, want 128", len(gx), len(gy))
	}
	for i, y := range gy {
		if y < 0 || math.IsNaN(y) || math.IsInf(y, 0) {
			t.Fatalf("density at grid %d (x=%g) is %g", i, gx[i], y)
		}
	}
	// Grid is strictly increasing.
	for i := 1; i < len(gx); i++ {
		if gx[i] <= gx[i-1] {
			t.Fatal("Evaluate grid not increasing")
		}
	}
}

func TestKDEPeaksNearMode(t *testing.T) {
	// Tight cluster at 10 with stragglers: the density at 10 must exceed
	// the density far away.
	xs := []float64{9.8, 9.9, 10, 10.1, 10.2, 30}
	k, err := NewKDE(xs, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	if !(k.PDF(10) > k.PDF(20)) {
		t.Errorf("PDF(10)=%g should exceed PDF(20)=%g", k.PDF(10), k.PDF(20))
	}
	if !(k.PDF(10) > k.PDF(30)) {
		t.Errorf("PDF(10)=%g should exceed PDF(30)=%g", k.PDF(10), k.PDF(30))
	}
}

func TestKDEBandwidthRules(t *testing.T) {
	xs := normSample(500, 3)
	sil, err := NewKDE(xs, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	sco, err := NewKDE(xs, Scott)
	if err != nil {
		t.Fatal(err)
	}
	if !(sil.Bandwidth() < sco.Bandwidth()) {
		t.Errorf("Silverman (%g) should be narrower than Scott (%g)", sil.Bandwidth(), sco.Bandwidth())
	}
	// Silverman's rule on a clean normal sample: 0.9 * min(sd, IQR/1.349) * n^-1/5.
	sd, _ := StdDev(xs)
	q1, _ := Quantile(xs, 0.25)
	q3, _ := Quantile(xs, 0.75)
	spread := math.Min(sd, (q3-q1)/1.349)
	approx(t, "Silverman bw", sil.Bandwidth(), 0.9*spread*math.Pow(500, -0.2), 1e-12)
}

func TestKDEExplicitBandwidth(t *testing.T) {
	xs := []float64{1, 2, 3}
	k, err := NewKDEWithBandwidth(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "bw", k.Bandwidth(), 0.5, 0)
	if _, err := NewKDEWithBandwidth(xs, 0); err == nil {
		t.Error("want error for zero bandwidth")
	}
	if _, err := NewKDEWithBandwidth(xs, -1); err == nil {
		t.Error("want error for negative bandwidth")
	}
	if _, err := NewKDEWithBandwidth(nil, 1); err == nil {
		t.Error("want error for empty sample")
	}
	if _, err := NewKDE([]float64{5}, Silverman); err == nil {
		t.Error("want error for single observation")
	}
}

func TestKDEConstantSample(t *testing.T) {
	// Heavily tied sample must not blow up (bw.nrd0 fallback).
	xs := []float64{4, 4, 4, 4, 4, 4}
	k, err := NewKDE(xs, Silverman)
	if err != nil {
		t.Fatal(err)
	}
	if k.Bandwidth() <= 0 {
		t.Errorf("bandwidth %g must be positive", k.Bandwidth())
	}
	if v := k.PDF(4); math.IsNaN(v) || math.IsInf(v, 0) {
		t.Errorf("PDF at the atom is %g", v)
	}
}

func TestHistogramBasics(t *testing.T) {
	xs := []float64{0, 0.5, 1, 1.5, 2, 2.5, 3, 3.999, 4}
	h, err := NewHistogramRange(xs, 0, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wantCounts := []int{2, 2, 2, 3} // 4.0 lands in the last bin
	for i, c := range h.Counts {
		if c != wantCounts[i] {
			t.Errorf("bin %d = %d, want %d", i, c, wantCounts[i])
		}
	}
	if h.N != 9 || h.Under != 0 || h.Over != 0 {
		t.Errorf("N/Under/Over = %d/%d/%d", h.N, h.Under, h.Over)
	}
	edges := h.BinEdges()
	if len(edges) != 5 || edges[0] != 0 || edges[4] != 4 {
		t.Errorf("edges = %v", edges)
	}
	if h.MaxCount() != 3 {
		t.Errorf("MaxCount = %d, want 3", h.MaxCount())
	}
}

func TestHistogramOutOfRangeAndNaN(t *testing.T) {
	xs := []float64{-1, 0, 1, 5, math.NaN()}
	h, err := NewHistogramRange(xs, 0, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Errorf("Under/Over = %d/%d, want 1/1", h.Under, h.Over)
	}
	if h.N != 4 { // NaN excluded
		t.Errorf("N = %d, want 4", h.N)
	}
}

func TestHistogramDensitiesSumToOne(t *testing.T) {
	xs := normSample(1000, 77)
	h, err := NewHistogram(xs, 30)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, d := range h.Densities() {
		total += d * h.Width
	}
	approx(t, "density mass", total, 1, 1e-9)
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(nil, 5); err != ErrEmpty {
		t.Error("want ErrEmpty")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Error("want error for zero bins")
	}
	if _, err := NewHistogramRange([]float64{1}, 2, 2, 3); err == nil {
		t.Error("want error for hi == lo")
	}
	// Degenerate all-equal sample handled by widening.
	h, err := NewHistogram([]float64{7, 7, 7}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := h.Counts[0]; got != 3 {
		t.Errorf("all-equal sample: first bin = %d, want 3", got)
	}
}
