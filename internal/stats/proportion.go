package stats

import (
	"fmt"
	"math"
)

// Proportion is a binomial count with helpers for the ratio-of-women
// computations that dominate the paper (FAR is simply Women/Known).
type Proportion struct {
	K int // successes (e.g. women)
	N int // trials (e.g. researchers with known gender)
}

// Ratio returns K/N, or NaN when N == 0 — distinguishing "no data" from a
// true zero ratio, which matters for the small visible-role populations.
func (p Proportion) Ratio() float64 {
	if p.N == 0 {
		return math.NaN()
	}
	return float64(p.K) / float64(p.N)
}

// Percent returns the ratio scaled to percent, as the paper reports it.
func (p Proportion) Percent() float64 { return p.Ratio() * 100 }

// Valid reports whether the counts are consistent (0 <= K <= N).
func (p Proportion) Valid() bool { return p.K >= 0 && p.N >= p.K }

// String renders as "k/n (pp.p%)".
func (p Proportion) String() string {
	if p.N == 0 {
		return fmt.Sprintf("%d/%d (n/a)", p.K, p.N)
	}
	return fmt.Sprintf("%d/%d (%.2f%%)", p.K, p.N, p.Percent())
}

// WilsonCI returns the Wilson score confidence interval for the underlying
// proportion at the given confidence level (e.g. 0.95). Wilson is preferred
// over the Wald interval because many of the paper's cells are small and
// near 0% (e.g. zero female session chairs at three conferences), where
// Wald degenerates.
func (p Proportion) WilsonCI(confidence float64) (lo, hi float64, err error) {
	if !p.Valid() {
		return 0, 0, fmt.Errorf("stats: invalid proportion %d/%d", p.K, p.N)
	}
	if p.N == 0 {
		return 0, 0, ErrEmpty
	}
	if confidence <= 0 || confidence >= 1 {
		return 0, 0, fmt.Errorf("stats: confidence %g outside (0, 1)", confidence)
	}
	z := StdNormal.Quantile(1 - (1-confidence)/2)
	n := float64(p.N)
	phat := p.Ratio()
	denom := 1 + z*z/n
	center := (phat + z*z/(2*n)) / denom
	half := z * math.Sqrt(phat*(1-phat)/n+z*z/(4*n*n)) / denom
	lo = center - half
	hi = center + half
	// Pin the boundary cases exactly: rounding can leave a stray 1e-17.
	if p.K == 0 || lo < 0 {
		lo = 0
	}
	if p.K == p.N || hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// DiffProportionCI returns the Newcombe score (method 10) confidence
// interval for p1 - p2, built from the two Wilson intervals. It behaves
// sensibly even for the paper's zero cells, where Wald intervals collapse.
func DiffProportionCI(p1, p2 Proportion, confidence float64) (lo, hi float64, err error) {
	l1, u1, err := p1.WilsonCI(confidence)
	if err != nil {
		return 0, 0, err
	}
	l2, u2, err := p2.WilsonCI(confidence)
	if err != nil {
		return 0, 0, err
	}
	d := p1.Ratio() - p2.Ratio()
	e1 := p1.Ratio() - l1
	e2 := u2 - p2.Ratio()
	f1 := u1 - p1.Ratio()
	f2 := p2.Ratio() - l2
	lo = d - math.Sqrt(e1*e1+e2*e2)
	hi = d + math.Sqrt(f1*f1+f2*f2)
	if lo < -1 {
		lo = -1
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi, nil
}

// TwoProportionZTest compares two proportions with the pooled z-test. For a
// 2x2 table this is algebraically equivalent to the uncorrected chi-squared
// test (z² = χ²); both are provided so the unit tests can cross-check them.
func TwoProportionZTest(p1, p2 Proportion) (z float64, p float64, err error) {
	if !p1.Valid() || !p2.Valid() {
		return 0, 0, fmt.Errorf("stats: invalid proportions %v, %v", p1, p2)
	}
	if p1.N == 0 || p2.N == 0 {
		return 0, 0, ErrEmpty
	}
	n1, n2 := float64(p1.N), float64(p2.N)
	pool := float64(p1.K+p2.K) / (n1 + n2)
	se := math.Sqrt(pool * (1 - pool) * (1/n1 + 1/n2))
	if AlmostZero(se) {
		return 0, 0, fmt.Errorf("stats: z-test undefined (pooled proportion %g)", pool)
	}
	z = (p1.Ratio() - p2.Ratio()) / se
	p = 2 * (1 - StdNormal.CDF(math.Abs(z)))
	return z, p, nil
}
