package stats

import (
	"fmt"
	"math"
	"sort"
)

// CorrelationResult reports a correlation test in the paper's style:
// "r = 0.334, p < 0.0001".
type CorrelationResult struct {
	R      float64
	T      float64 // t statistic of the test against rho = 0
	DF     float64
	P      float64 // two-sided p-value
	N      int
	Method string
}

// String formats the result in the paper's reporting style.
func (r CorrelationResult) String() string {
	return fmt.Sprintf("%s: r = %.4g, df = %.4g, p = %.4g", r.Method, r.R, r.DF, r.P)
}

// PearsonCorrelation computes Pearson's product-moment correlation
// coefficient between x and y with the standard t-based two-sided test of
// rho = 0 — the test the paper uses to compare Google Scholar against
// Semantic Scholar publication counts (r = 0.334, p < 0.0001).
func PearsonCorrelation(x, y []float64) (CorrelationResult, error) {
	if len(x) != len(y) {
		return CorrelationResult{}, fmt.Errorf("stats: correlation needs equal-length samples (got %d, %d)", len(x), len(y))
	}
	n := len(x)
	if n < 3 {
		return CorrelationResult{}, fmt.Errorf("stats: correlation needs >=3 pairs (got %d): %w", n, ErrTooFew)
	}
	mx, my := MustMean(x), MustMean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx := x[i] - mx
		dy := y[i] - my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if AlmostZero(sxx) || AlmostZero(syy) {
		return CorrelationResult{}, fmt.Errorf("stats: correlation undefined for a constant sample")
	}
	r := sxy / math.Sqrt(sxx*syy)
	// Clamp rounding excursions outside [-1, 1] before the t transform.
	if r > 1 {
		r = 1
	} else if r < -1 {
		r = -1
	}
	df := float64(n - 2)
	var t, p float64
	if math.Abs(r) == 1 { //whpcvet:ignore floatcmp r clamped to exactly ±1 above; equality is exact by construction
		t = math.Inf(1) * math.Copysign(1, r)
		p = 0
	} else {
		t = r * math.Sqrt(df/(1-r*r))
		p = StudentsT{DF: df}.TwoSidedP(t)
	}
	return CorrelationResult{
		R:      r,
		T:      t,
		DF:     df,
		P:      p,
		N:      n,
		Method: "Pearson product-moment correlation",
	}, nil
}

// SpearmanCorrelation computes Spearman's rank correlation (Pearson on
// ranks, average ranks for ties). Used as a robustness check on the
// heavy-tailed bibliometric pairs where Pearson is outlier-sensitive.
func SpearmanCorrelation(x, y []float64) (CorrelationResult, error) {
	if len(x) != len(y) {
		return CorrelationResult{}, fmt.Errorf("stats: correlation needs equal-length samples (got %d, %d)", len(x), len(y))
	}
	res, err := PearsonCorrelation(Ranks(x), Ranks(y))
	if err != nil {
		return res, err
	}
	res.Method = "Spearman rank correlation"
	return res, nil
}

// Ranks returns the fractional ranks of xs (1-based, ties get the average
// of the ranks they span).
func Ranks(xs []float64) []float64 {
	n := len(xs)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] < xs[idx[b]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && xs[idx[j+1]] == xs[idx[i]] { //whpcvet:ignore floatcmp rank ties are exact duplicates of input values
			j++
		}
		// Average rank for the tie group [i, j].
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg
		}
		i = j + 1
	}
	return ranks
}
