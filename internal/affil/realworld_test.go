package affil

import "testing"

// TestRealWorldAffiliations exercises the classifier on the kinds of
// affiliation strings that actually appear on HPC papers — the population
// the paper's hand-coded regexes were built for.
func TestRealWorldAffiliations(t *testing.T) {
	cases := []struct {
		affil   string
		email   string
		country string
		sector  Sector
	}{
		// US academia.
		{"Department of Computer Science, University of Illinois at Urbana-Champaign", "u@illinois.edu", "US", EDU},
		{"School of Computing, Georgia Institute of Technology", "g@cc.gatech.edu", "US", EDU},
		{"Computer Science and Artificial Intelligence Laboratory, MIT", "m@csail.mit.edu", "US", EDU},
		// European academia.
		{"Department of Informatics, Technical University of Munich", "t@in.tum.de", "DE", EDU},
		{"School of Informatics, University of Edinburgh", "e@inf.ed.ac.uk", "GB", EDU},
		{"Dipartimento di Informatica, Università di Pisa", "p@di.unipi.it", "IT", EDU},
		{"Universitat Politècnica de Catalunya", "c@ac.upc.edu", "US", EDU}, // .edu email wins country
		// Asian academia.
		{"Department of Computer Science and Technology, Tsinghua University", "q@tsinghua.edu.cn", "CN", EDU},
		{"Graduate School of Information Science, University of Tokyo", "u@is.s.u-tokyo.ac.jp", "JP", EDU},
		{"Department of Computer Science and Engineering, IIT Madras", "i@cse.iitm.ac.in", "IN", EDU},
		// Government and national labs.
		{"Center for Applied Scientific Computing, Lawrence Livermore National Laboratory", "l@llnl.gov", "US", GOV},
		{"Computer Science and Mathematics Division, Oak Ridge National Laboratory", "o@ornl.gov", "US", GOV},
		{"Leibniz Supercomputing Centre", "l@lrz.de", "DE", GOV},
		{"National Center for Atmospheric Research", "n@ucar.edu", "US", GOV},
		{"CEA, DAM, DIF, France", "c@cea.fr", "FR", GOV},
		{"Swiss National Supercomputing Centre (CSCS)", "s@cscs.ch", "CH", GOV},
		// Industry.
		{"IBM T.J. Watson Research Center", "w@us.ibm.com", "US", COM},
		{"NVIDIA Corporation", "n@nvidia.com", "US", COM},
		{"Intel Labs", "i@intel.com", "US", COM},
		{"Huawei Technologies Co., Ltd.", "h@huawei.com", "CN", COM},
		{"Samsung Advanced Institute of Technology", "s@samsung.com", "KR", COM},
		{"Microsoft Research", "m@microsoft.com", "US", COM},
	}
	for _, c := range cases {
		got := Classify(c.affil, c.email)
		if got.CountryCode != c.country {
			t.Errorf("%q: country %q, want %q", c.affil, got.CountryCode, c.country)
		}
		if got.Sector != c.sector {
			t.Errorf("%q: sector %v, want %v", c.affil, got.Sector, c.sector)
		}
	}
}

// TestNCARIsGov documents a deliberate rule: "National Center for ..."
// research institutions classify as GOV via the research-center patterns
// even when their email is .edu (UCAR/NCAR is the canonical case).
func TestNCARIsGov(t *testing.T) {
	if got := SectorFromAffiliation("National Center for Atmospheric Research"); got != GOV {
		t.Skipf("NCAR classifies as %v; GOV requires a 'national ... center' rule", got)
	}
}
