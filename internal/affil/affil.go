// Package affil classifies researcher affiliations into a country of
// residence and a work sector, reproducing the paper's methodology: "We
// also looked up each author's affiliation institute ... using hand-coded
// regular expressions" and "Many authors also included their email address
// in the full text of the paper, from which we inferred more timely
// affiliation and country information".
//
// Sector follows the paper's three-way coding: EDU (academia), COM
// (industry), GOV (government and national labs).
package affil

import (
	"regexp"
	"strings"

	"repro/internal/countries"
)

// Sector is the paper's three-way work-sector coding, plus Unknown for
// affiliations that match no rule.
type Sector int

const (
	SectorUnknown Sector = iota
	EDU                  // academia
	COM                  // industry
	GOV                  // government and national labs
)

// String returns the paper's sector code.
func (s Sector) String() string {
	switch s {
	case EDU:
		return "EDU"
	case COM:
		return "COM"
	case GOV:
		return "GOV"
	default:
		return "UNK"
	}
}

// ParseSector converts the paper's sector code back to a Sector.
func ParseSector(s string) Sector {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "EDU":
		return EDU
	case "COM":
		return COM
	case "GOV":
		return GOV
	default:
		return SectorUnknown
	}
}

// The rule order matters: national labs often carry "Laboratory" AND a
// university partnership in their names, and the paper codes them GOV, so
// government rules are checked before academic ones.
var (
	govPattern = regexp.MustCompile(`(?i)\b(national lab(oratory)?|` +
		`national cent(er|re)|` +
		`(lawrence livermore|oak ridge|argonne|los alamos|sandia|` +
		`pacific northwest|brookhaven|lawrence berkeley|jet propulsion)\b.*` +
		`|nasa|nist|department of (energy|defense)|army research|` +
		`naval research|air force research|riken|cnrs|inria|cea\b|` +
		`fraunhofer|max planck|helmholtz|forschungszentrum|csiro|` +
		`barcelona supercomputing|j[uü]lich supercomputing|leibniz supercomputing|` +
		`supercomput(er|ing) cent(er|re)|research council|` +
		`academy of sciences|kisti|nchc)`)
	eduPattern = regexp.MustCompile(`(?i)\b(universit(y|e|é|at|ät|a|eit)|` +
		`college|institute of technology|polytech|politecnico|` +
		`[ée]cole|eth\b|epfl|tu\b|iit\b|school of|grad(uate)? school|` +
		`hochschule|universidad|universidade|università)`)
	// Company names carry word boundaries on both sides: "intel" without
	// them matches "Artificial Intelligence Laboratory".
	comPattern = regexp.MustCompile(`(?i)\b(inc\.?\b|corp(oration)?\b|ltd\.?\b|` +
		`llc\b|gmbh\b|co\.\b|labs?\b.*(inc|corp)|technologies|systems\b|` +
		`(ibm|intel|nvidia|microsoft|google|amazon|facebook|oracle|cray|` +
		`huawei|samsung|fujitsu|nec|hewlett.packard|hpe|amd|arm|` +
		`bull|atos|alibaba|baidu|tencent)\b|tata consultancy)`)

	// govDomains: email domains whose sector is government regardless of
	// the affiliation text.
	govDomainPattern = regexp.MustCompile(`(?i)(\.gov$|\.mil$|` +
		`^(.*\.)?(cern\.ch|riken\.jp|inria\.fr|cnrs\.fr|cea\.fr|` +
		`fz-juelich\.de|mpg\.de|bsc\.es|csiro\.au|dkrz\.de)$)`)
	eduDomainPattern = regexp.MustCompile(`(?i)(\.edu$|\.edu\.[a-z]{2}$|\.ac\.[a-z]{2}$|` +
		`^(.*\.)?(ethz\.ch|epfl\.ch|u-tokyo\.ac\.jp)$)`)
	comDomainPattern = regexp.MustCompile(`(?i)^(.*\.)?(ibm|intel|nvidia|microsoft|google|` +
		`amazon|facebook|oracle|cray|huawei|samsung|fujitsu|nec|hpe|hp|amd|arm|` +
		`atos|alibaba-inc|baidu|tencent|tcs)\.(com|net)$`)
)

// Classification is the combined country + sector result for one
// researcher, with the evidence source recorded for auditability.
type Classification struct {
	CountryCode string // ISO alpha-2, "" if unknown
	Sector      Sector
	// Source records which signal determined the country: "email",
	// "affiliation", or "" when unknown.
	Source string
}

// Classify determines country and sector from an affiliation string and an
// optional email address. Email wins for country (the paper calls it "more
// timely" than profile affiliations); affiliation text wins for sector,
// with the email domain as fallback.
func Classify(affiliation, email string) Classification {
	var c Classification
	if cc, ok := countries.FromEmail(email); ok {
		c.CountryCode = cc
		c.Source = "email"
	} else if cc, ok := countryFromAffiliation(affiliation); ok {
		c.CountryCode = cc
		c.Source = "affiliation"
	}
	c.Sector = SectorFromAffiliation(affiliation)
	if c.Sector == SectorUnknown {
		c.Sector = sectorFromEmail(email)
	}
	return c
}

// SectorFromAffiliation classifies an affiliation string into a sector
// using the hand-coded rules. Government rules run first (see comment on
// the patterns), then industry, then academia.
func SectorFromAffiliation(affiliation string) Sector {
	a := strings.TrimSpace(affiliation)
	if a == "" {
		return SectorUnknown
	}
	switch {
	case govPattern.MatchString(a):
		return GOV
	case comPattern.MatchString(a):
		return COM
	case eduPattern.MatchString(a):
		return EDU
	default:
		return SectorUnknown
	}
}

func sectorFromEmail(email string) Sector {
	at := strings.LastIndexByte(email, '@')
	if at < 0 || at == len(email)-1 {
		return SectorUnknown
	}
	domain := strings.ToLower(email[at+1:])
	switch {
	case govDomainPattern.MatchString(domain):
		return GOV
	case comDomainPattern.MatchString(domain):
		return COM
	case eduDomainPattern.MatchString(domain):
		return EDU
	default:
		return SectorUnknown
	}
}

// countryFromAffiliation scans the affiliation text for a country name
// (longest names first so "United States" is not shadowed).
func countryFromAffiliation(affiliation string) (string, bool) {
	a := strings.ToLower(affiliation)
	if a == "" {
		return "", false
	}
	best := ""
	bestLen := 0
	for _, c := range countries.All() {
		name := strings.ToLower(c.Name)
		if len(name) > bestLen && strings.Contains(a, name) {
			best = c.CCA2
			bestLen = len(name)
		}
	}
	// Common aliases the table does not carry as primary names.
	if best == "" {
		switch {
		case strings.Contains(a, "usa") || strings.Contains(a, "u.s.a") ||
			strings.Contains(a, "united states of america"):
			best = "US"
		case strings.Contains(a, "uk") || strings.Contains(a, "great britain"):
			best = "GB"
		case strings.Contains(a, "korea"):
			best = "KR"
		}
	}
	return best, best != ""
}
