package affil

import "testing"

func TestSectorString(t *testing.T) {
	cases := []struct {
		s    Sector
		want string
	}{
		{EDU, "EDU"}, {COM, "COM"}, {GOV, "GOV"}, {SectorUnknown, "UNK"},
	}
	for _, c := range cases {
		if got := c.s.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.s, got, c.want)
		}
	}
}

func TestParseSector(t *testing.T) {
	cases := []struct {
		in   string
		want Sector
	}{
		{"EDU", EDU}, {"edu", EDU}, {" Com ", COM}, {"GOV", GOV},
		{"", SectorUnknown}, {"bogus", SectorUnknown}, {"UNK", SectorUnknown},
	}
	for _, c := range cases {
		if got := ParseSector(c.in); got != c.want {
			t.Errorf("ParseSector(%q) = %v, want %v", c.in, got, c.want)
		}
	}
	// Round-trip for the three real sectors.
	for _, s := range []Sector{EDU, COM, GOV} {
		if got := ParseSector(s.String()); got != s {
			t.Errorf("round-trip %v -> %v", s, got)
		}
	}
}

func TestSectorFromAffiliation(t *testing.T) {
	cases := []struct {
		affil string
		want  Sector
	}{
		// Academia.
		{"Reed College", EDU},
		{"University of Edinburgh", EDU},
		{"Universidad Politécnica de Madrid", EDU},
		{"Tsinghua University", EDU},
		{"Massachusetts Institute of Technology", EDU},
		{"École Polytechnique Fédérale de Lausanne", EDU},
		{"Indian Institute of Technology Bombay", EDU},
		// Industry.
		{"IBM Research", COM},
		{"Intel Corporation", COM},
		{"NVIDIA", COM},
		{"Cray Inc.", COM},
		{"Huawei Technologies", COM},
		{"ParTec GmbH", COM},
		{"Acme Ltd.", COM},
		// Government / national labs — including the lab+university trap.
		{"Oak Ridge National Laboratory", GOV},
		{"Lawrence Livermore National Laboratory", GOV},
		{"Argonne National Laboratory and University of Chicago", GOV},
		{"NASA Ames Research Center", GOV},
		{"Barcelona Supercomputing Center", GOV},
		{"Jülich Supercomputing Centre", GOV},
		{"RIKEN Center for Computational Science", GOV},
		{"Max Planck Institute", GOV},
		{"Chinese Academy of Sciences", GOV},
		// Unknown.
		{"", SectorUnknown},
		{"Independent Researcher", SectorUnknown},
	}
	for _, c := range cases {
		if got := SectorFromAffiliation(c.affil); got != c.want {
			t.Errorf("SectorFromAffiliation(%q) = %v, want %v", c.affil, got, c.want)
		}
	}
}

func TestClassifyEmailWinsForCountry(t *testing.T) {
	// Affiliation says Germany; email says Switzerland — the paper treats
	// the email as the more timely signal.
	c := Classify("Technische Universität München, Germany", "alice@inf.ethz.ch")
	if c.CountryCode != "CH" {
		t.Errorf("country = %q, want CH (email wins)", c.CountryCode)
	}
	if c.Source != "email" {
		t.Errorf("source = %q, want email", c.Source)
	}
	if c.Sector != EDU {
		t.Errorf("sector = %v, want EDU from affiliation text", c.Sector)
	}
}

func TestClassifyAffiliationFallback(t *testing.T) {
	c := Classify("University of Tokyo, Japan", "bob@gmail.com")
	if c.CountryCode != "JP" || c.Source != "affiliation" {
		t.Errorf("got (%q, %q), want (JP, affiliation)", c.CountryCode, c.Source)
	}
}

func TestClassifySectorEmailFallback(t *testing.T) {
	// No sector keywords in the affiliation; the .gov domain decides.
	c := Classify("CCS-3", "carol@lanl.gov")
	if c.Sector != GOV {
		t.Errorf("sector = %v, want GOV from email", c.Sector)
	}
	if c.CountryCode != "US" {
		t.Errorf("country = %q, want US", c.CountryCode)
	}
	c = Classify("T.J. Watson", "dan@us.ibm.com")
	if c.Sector != COM {
		t.Errorf("sector = %v, want COM from email", c.Sector)
	}
	c = Classify("", "erin@cs.cmu.edu")
	if c.Sector != EDU {
		t.Errorf("sector = %v, want EDU from email", c.Sector)
	}
}

func TestClassifyUnknown(t *testing.T) {
	c := Classify("", "")
	if c.CountryCode != "" || c.Sector != SectorUnknown || c.Source != "" {
		t.Errorf("empty inputs should classify as unknown, got %+v", c)
	}
}

func TestCountryFromAffiliationAliases(t *testing.T) {
	cases := []struct {
		affil string
		want  string
	}{
		{"Carnegie Mellon University, USA", "US"},
		{"Imperial College London, UK", "GB"},
		{"KAIST, Korea", "KR"},
		{"ETH Zurich, Switzerland", "CH"},
		{"Unknown Institute, Atlantis", ""},
	}
	for _, c := range cases {
		got, _ := countryFromAffiliation(c.affil)
		if got != c.want {
			t.Errorf("countryFromAffiliation(%q) = %q, want %q", c.affil, got, c.want)
		}
	}
}

func TestLongestCountryNameWins(t *testing.T) {
	// "United Arab Emirates" contains no other country name, but "Papua
	// New Guinea"-style substring traps exist: "Niger"/"Nigeria". Our
	// table has Nigeria; assert the longer match is chosen when both could
	// hit via substring.
	got, ok := countryFromAffiliation("Masdar Institute, United Arab Emirates")
	if !ok || got != "AE" {
		t.Errorf("got (%q, %v), want (AE, true)", got, ok)
	}
}
