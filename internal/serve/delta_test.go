package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/delta"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/snap"
	"repro/internal/synth"
)

// postTrend drives one /v1/trend request through the full middleware chain.
func postTrend(t *testing.T, s *Server, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", target, strings.NewReader(body)))
	return rec
}

// writeDeltaDir builds the longitudinal serving fixture: the flagship base
// snapshot plus the SC'21 year delta, both under the snapshot-dir naming
// convention, so a booting server materializes the grown corpus.
func writeDeltaDir(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := synth.FlagshipSeries(testSeed)
	base, err := repro.NewStudyFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := base.SaveSnapshot(filepath.Join(dir, snap.CorpusFileName(CorpusFlagship, testSeed))); err != nil {
		t.Fatal(err)
	}
	spec, err := synth.YearSpec(cfg, "SC", 2021)
	if err != nil {
		t.Fatal(err)
	}
	yd, baseCorpus, err := synth.GenerateYearDelta(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, snap.DeltaFileName(CorpusFlagship, testSeed, 2021))
	if err := delta.WriteFile(path, yd, baseCorpus.Data); err != nil {
		t.Fatal(err)
	}
	return dir
}

// grownFlagship resynthesizes the flagship corpus with SC'21 in its
// calibration from the start — the ground truth a delta-serving server
// must match byte-for-byte.
func grownFlagship(t *testing.T) *repro.Study {
	t.Helper()
	cfg := synth.FlagshipSeries(testSeed)
	spec, err := synth.YearSpec(cfg, "SC", 2021)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Confs = append(append([]synth.ConfSpec(nil), cfg.Confs...), spec)
	s, err := repro.NewStudyFromConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// exhibitQueryCSV renders one exhibit query directly on a study.
func exhibitQueryCSV(t *testing.T, st *repro.Study, name string) []byte {
	t.Helper()
	eq, ok := repro.ExhibitQueryByName(name)
	if !ok {
		t.Fatalf("no %s exhibit query", name)
	}
	res, err := st.Query(eq.Query)
	if err != nil {
		t.Fatal(err)
	}
	b, err := res.CSV()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeltaAppliedAtMaterialization: a snapshot dir holding a base
// snapshot plus a year delta must serve the grown corpus — /v1/trend in
// both views byte-identical to a study resynthesized with the extra year —
// and count exactly one delta apply and zero quarantines.
func TestDeltaAppliedAtMaterialization(t *testing.T) {
	leakcheck.Check(t)
	dir := writeDeltaDir(t)
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Metrics = obs.NewRegistry()
	})
	grown := grownFlagship(t)

	for view, name := range map[string]string{"far": "trend", "retention": "retention"} {
		rec := postTrend(t, s, "/v1/trend?corpus=flagship", `{"view":"`+view+`"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("view %s: status = %d: %s", view, rec.Code, rec.Body.String())
		}
		if !bytes.Equal(rec.Body.Bytes(), exhibitQueryCSV(t, grown, name)) {
			t.Errorf("view %s: /v1/trend differs from the resynthesized grown corpus", view)
		}
	}
	// The empty body defaults to the FAR view.
	def := postTrend(t, s, "/v1/trend?corpus=flagship", "")
	if def.Code != http.StatusOK {
		t.Fatalf("default view: status = %d: %s", def.Code, def.Body.String())
	}
	if !bytes.Equal(def.Body.Bytes(), exhibitQueryCSV(t, grown, "trend")) {
		t.Error("default /v1/trend differs from the far view")
	}

	// The whole corpus is grown, not just the trend: the CSV exports match
	// the resynthesis too.
	rec := get(t, s, "/v1/csv/retention?corpus=flagship")
	if rec.Code != http.StatusOK {
		t.Fatalf("/v1/csv/retention status = %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), exhibitQueryCSV(t, grown, "retention")) {
		t.Error("/v1/csv/retention differs from the resynthesized grown corpus")
	}

	if got := metricValue(t, s, "whpcd_delta_applies_total"); got != "1" {
		t.Errorf("whpcd_delta_applies_total = %s, want 1", got)
	}
	if got := metricValue(t, s, "whpcd_snapshot_quarantines_total"); got != "0" {
		t.Errorf("whpcd_snapshot_quarantines_total = %s, want 0", got)
	}
	if got := metricValue(t, s, "whpcd_snapshot_loads_total"); got != "1" {
		t.Errorf("whpcd_snapshot_loads_total = %s, want 1", got)
	}
}

// TestDeltaTrendUnknownView: an unrecognized view is the client's 400 with
// the structured error envelope.
func TestDeltaTrendUnknownView(t *testing.T) {
	s := newTestServer(t, nil)
	rec := postTrend(t, s, "/v1/trend", `{"view":"sideways"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	dto := decodeQueryError(t, rec)
	if !strings.Contains(dto.Error, "sideways") {
		t.Errorf("error %q does not name the bad view", dto.Error)
	}
}

// TestDeltaTornFileQuarantined: a truncated delta file must be quarantined
// through the snapshot quarantine path and the base study must serve
// untouched — the torn year is dropped, never half-applied.
func TestDeltaTornFileQuarantined(t *testing.T) {
	dir := writeDeltaDir(t)
	path := filepath.Join(dir, snap.DeltaFileName(CorpusFlagship, testSeed, 2021))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Metrics = obs.NewRegistry()
	})
	base, err := repro.NewStudyFromConfig(synth.FlagshipSeries(testSeed))
	if err != nil {
		t.Fatal(err)
	}

	rec := postTrend(t, s, "/v1/trend?corpus=flagship", `{"view":"far"}`)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), exhibitQueryCSV(t, base, "trend")) {
		t.Error("base study's trend changed after a torn delta — the apply was not atomic")
	}
	if got := metricValue(t, s, "whpcd_delta_applies_total"); got != "0" {
		t.Errorf("whpcd_delta_applies_total = %s, want 0", got)
	}
	if got := metricValue(t, s, "whpcd_snapshot_quarantines_total"); got != "1" {
		t.Errorf("whpcd_snapshot_quarantines_total = %s, want 1", got)
	}
	if _, err := os.Stat(path + QuarantineSuffix); err != nil {
		t.Errorf("torn delta was not renamed aside: %v", err)
	}
}

// TestDeltaTrendClusterIdentity: in cluster mode the delta-grown frames
// are split on PartitionRows boundaries at placement, and /v1/trend must
// return exactly the single-process bytes at 1 and 4 shards.
func TestDeltaTrendClusterIdentity(t *testing.T) {
	dir := writeDeltaDir(t)
	single := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Metrics = obs.NewRegistry()
	})
	want := map[string][]byte{}
	for _, view := range []string{"far", "retention"} {
		rec := postTrend(t, single, "/v1/trend?corpus=flagship", `{"view":"`+view+`"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("single-process view %s: status = %d: %s", view, rec.Code, rec.Body.String())
		}
		want[view] = rec.Body.Bytes()
	}
	for _, shards := range []int{1, 4} {
		s := newTestServer(t, func(c *Config) {
			c.SnapshotDir = dir
			c.Metrics = obs.NewRegistry()
			c.ClusterShards = shards
		})
		for _, view := range []string{"far", "retention"} {
			rec := postTrend(t, s, "/v1/trend?corpus=flagship", `{"view":"`+view+`"}`)
			if rec.Code != http.StatusOK {
				t.Fatalf("shards=%d view %s: status = %d: %s", shards, view, rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), want[view]) {
				t.Errorf("shards=%d view %s: federated /v1/trend differs from single-process", shards, view)
			}
		}
	}
}
