package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

// postQuery drives one /v1/query request through the full middleware chain.
func postQuery(t *testing.T, s *Server, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/v1/query", strings.NewReader(body)))
	return rec
}

// decodeQueryError asserts the response carries the structured JSON error
// envelope and returns it.
func decodeQueryError(t *testing.T, rec *httptest.ResponseRecorder) queryErrorDTO {
	t.Helper()
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("error Content-Type = %q, want application/json", ct)
	}
	var dto queryErrorDTO
	if err := json.Unmarshal(rec.Body.Bytes(), &dto); err != nil {
		t.Fatalf("error body is not JSON: %v\n%s", err, rec.Body.String())
	}
	if dto.Status != rec.Code {
		t.Fatalf("envelope status %d != response code %d", dto.Status, rec.Code)
	}
	if dto.Error == "" {
		t.Fatal("error envelope has empty message")
	}
	return dto
}

// TestQueryReproducesCSVExport is the endpoint's byte-identity anchor: the
// far_per_conference exhibit query POSTed to /v1/query returns exactly the
// bytes /v1/csv/far_per_conference serves.
func TestQueryReproducesCSVExport(t *testing.T) {
	s := newTestServer(t, nil)
	eq, ok := repro.ExhibitQueryByName("far_per_conference")
	if !ok {
		t.Fatal("no far_per_conference exhibit query")
	}
	spec := string(eq.Query.Canonical())

	cold := postQuery(t, s, spec)
	if cold.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", cold.Code, cold.Body.String())
	}
	if got := cold.Header().Get("X-Cache"); got != CacheMiss {
		t.Fatalf("cold X-Cache = %q, want %q", got, CacheMiss)
	}
	if ct := cold.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("Content-Type = %q, want text/csv", ct)
	}
	viaCSV := get(t, s, "/v1/csv/far_per_conference")
	if viaCSV.Code != http.StatusOK {
		t.Fatalf("/v1/csv status = %d", viaCSV.Code)
	}
	if !bytes.Equal(cold.Body.Bytes(), viaCSV.Body.Bytes()) {
		t.Fatalf("query bytes differ from CSV export\n--- query ---\n%s\n--- export ---\n%s",
			cold.Body.String(), viaCSV.Body.String())
	}

	warm := postQuery(t, s, spec)
	if got := warm.Header().Get("X-Cache"); got != CacheHit {
		t.Fatalf("warm X-Cache = %q, want %q", got, CacheHit)
	}
	if !bytes.Equal(warm.Body.Bytes(), cold.Body.Bytes()) {
		t.Fatal("cached bytes differ from cold render")
	}
}

// TestQueryCacheKeyedByCanonicalHash proves memoization is semantic: two
// spellings of the same query (reordered fields, whitespace) share one
// cache entry, so the second POST is a hit even though the raw bytes
// differ.
func TestQueryCacheKeyedByCanonicalHash(t *testing.T) {
	s := newTestServer(t, nil)
	a := `{"frame":"slots","group_by":["conference"],"aggs":[{"op":"count","as":"n"}]}`
	b := `{
		"aggs": [ { "as": "n", "op": "count" } ],
		"group_by": [ {"col": "conference"} ],
		"frame": "slots"
	}`
	first := postQuery(t, s, a)
	if first.Code != http.StatusOK {
		t.Fatalf("first status = %d: %s", first.Code, first.Body.String())
	}
	second := postQuery(t, s, b)
	if second.Code != http.StatusOK {
		t.Fatalf("second status = %d: %s", second.Code, second.Body.String())
	}
	if got := second.Header().Get("X-Cache"); got != CacheHit {
		t.Fatalf("respelled query X-Cache = %q, want %q", got, CacheHit)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("respelled query returned different bytes")
	}
}

// TestQueryBadRequests drives the malformed-spec matrix: every rejection
// must come back as a structured JSON envelope with the right 4xx status —
// and never a panic or an empty 200.
func TestQueryBadRequests(t *testing.T) {
	s := newTestServer(t, nil)
	cases := []struct {
		name string
		body string
		code int
	}{
		{"syntax error", `{"frame":`, http.StatusBadRequest},
		{"unknown field", `{"frame":"slots","grup_by":["conference"]}`, http.StatusBadRequest},
		{"unknown frame", `{"frame":"nope","select":["conference"]}`, http.StatusBadRequest},
		{"unknown column", `{"frame":"slots","group_by":["nope"],"aggs":[{"op":"count","as":"n"}]}`, http.StatusBadRequest},
		{"unknown aggregate", `{"frame":"slots","group_by":["conference"],"aggs":[{"op":"median","col":"citations36","as":"m"}]}`, http.StatusBadRequest},
		{"float equality", `{"frame":"slots","where":[{"col":"attendance","op":"eq","value":1}],"select":["conference"]}`, http.StatusBadRequest},
		{"empty group result", `{"frame":"people","where":[{"col":"country","op":"eq","value":"Atlantis"}],"group_by":["country"],"aggs":[{"op":"count","as":"n"}]}`, http.StatusUnprocessableEntity},
		{"trailing data", `{"frame":"slots","select":["conference"]} extra`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := postQuery(t, s, tc.body)
			if rec.Code != tc.code {
				t.Fatalf("status = %d, want %d: %s", rec.Code, tc.code, rec.Body.String())
			}
			decodeQueryError(t, rec)
		})
	}
}

// TestQueryOversizedSpecRejected sends a spec past the 64 KiB body cap and
// expects a structured 413 without the parser ever seeing the payload.
func TestQueryOversizedSpecRejected(t *testing.T) {
	s := newTestServer(t, nil)
	huge := `{"frame":"slots","select":["conference"],"limit":1,"padding":"` +
		strings.Repeat("x", maxQueryBytes) + `"}`
	rec := postQuery(t, s, huge)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, want 413: %s", rec.Code, rec.Body.String())
	}
	decodeQueryError(t, rec)
}

// TestQueryErrorsNotCached proves a failing spec is re-evaluated on every
// POST: errors never enter the exhibit cache, so a later identical request
// cannot be served a stale failure (or vice versa).
func TestQueryErrorsNotCached(t *testing.T) {
	s := newTestServer(t, nil)
	body := `{"frame":"people","where":[{"col":"country","op":"eq","value":"Atlantis"}],"group_by":["country"],"aggs":[{"op":"count","as":"n"}]}`
	before := s.cache.Len()
	for i := 0; i < 2; i++ {
		rec := postQuery(t, s, body)
		if rec.Code != http.StatusUnprocessableEntity {
			t.Fatalf("POST %d: status = %d, want 422", i, rec.Code)
		}
	}
	if after := s.cache.Len(); after != before {
		t.Fatalf("failing query grew the cache: %d -> %d entries", before, after)
	}
}

// TestQueryMethodNotAllowed: /v1/query is POST-only.
func TestQueryMethodNotAllowed(t *testing.T) {
	rec := get(t, newTestServer(t, nil), "/v1/query")
	if rec.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/query status = %d, want 405", rec.Code)
	}
}
