package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"repro"
	"repro/internal/obs"
)

// clusterServer boots a server in cluster mode alongside its registry.
func clusterServer(t *testing.T, shards int, mut func(*Config)) (*Server, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	s := newTestServer(t, func(c *Config) {
		c.ClusterShards = shards
		c.Metrics = reg
		if mut != nil {
			mut(c)
		}
	})
	return s, reg
}

// TestClusterQueryByteIdenticalToSingleProcess is the serving-layer half of
// the federation contract: every exhibit query POSTed to a cluster-mode
// server returns exactly the bytes the single-process server returns.
func TestClusterQueryByteIdenticalToSingleProcess(t *testing.T) {
	single := newTestServer(t, nil)
	clustered, reg := clusterServer(t, 4, nil)
	for _, eq := range repro.ExhibitQueries() {
		spec := string(eq.Query.Canonical())
		want := postQuery(t, single, spec)
		got := postQuery(t, clustered, spec)
		if want.Code != http.StatusOK || got.Code != http.StatusOK {
			t.Fatalf("%s: single=%d clustered=%d: %s", eq.Name, want.Code, got.Code, got.Body.String())
		}
		if !bytes.Equal(got.Body.Bytes(), want.Body.Bytes()) {
			t.Errorf("%s: clustered response differs from single-process", eq.Name)
		}
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	// Each of the exhibit queries fanned out to 4 shards exactly once.
	wantFanout := "whpcd_shard_fanout_total " + itoa(4*len(repro.ExhibitQueries()))
	if !strings.Contains(buf.String(), wantFanout) {
		t.Errorf("/metrics missing %q after federated queries", wantFanout)
	}
	if !strings.Contains(buf.String(), "whpcd_shard_retries_total 0") {
		t.Error("/metrics missing zero-valued shard retry counter")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestClusterWorkerKillRetriesThenTyped503 kills one worker (the query
// retries on replicas and still answers byte-identically), then every
// worker (the query fails with the typed 503 envelope).
func TestClusterWorkerKillRetriesThenTyped503(t *testing.T) {
	single := newTestServer(t, nil)
	clustered, reg := clusterServer(t, 4, nil)
	eq, ok := repro.ExhibitQueryByName("far_per_conference")
	if !ok {
		t.Fatal("no far_per_conference exhibit query")
	}
	spec := string(eq.Query.Canonical())

	// Prime the placement, then kill each worker in turn. Every kill hits
	// the primary of at least one shard across the loop (each shard has
	// exactly one primary), so the retry counter must move. Each probe uses
	// a distinct limit so the exhibit cache never short-circuits execution.
	if rec := postQuery(t, clustered, spec); rec.Code != http.StatusOK {
		t.Fatalf("priming query: %d: %s", rec.Code, rec.Body.String())
	}
	probe := `{"frame":"papers","group_by":[{"col":"conference"}],"aggs":[{"op":"count","as":"n"}],"limit":%d}`
	for w := 0; w < clustered.cluster.Workers(); w++ {
		clustered.cluster.KillWorker(w)
		got := postQuery(t, clustered, fmt.Sprintf(probe, 40+w))
		if got.Code != http.StatusOK {
			t.Fatalf("status with worker %d down = %d: %s", w, got.Code, got.Body.String())
		}
		single2 := postQuery(t, single, fmt.Sprintf(probe, 40+w))
		if !bytes.Equal(got.Body.Bytes(), single2.Body.Bytes()) {
			t.Errorf("response with worker %d down differs from single-process bytes", w)
		}
		clustered.cluster.ReviveWorker(w)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "whpcd_shard_retries_total 0") {
		t.Error("killing every worker in turn produced no shard retries")
	}

	for w := 0; w < clustered.cluster.Workers(); w++ {
		clustered.cluster.KillWorker(w)
	}
	// A fresh spec dodges the exhibit cache entry of the successful run.
	down := postQuery(t, clustered, `{"frame":"papers","group_by":[{"col":"conference"}],"aggs":[{"op":"count","as":"n"}],"limit":3}`)
	if down.Code != http.StatusServiceUnavailable {
		t.Fatalf("status with all workers down = %d, want 503: %s", down.Code, down.Body.String())
	}
	dto := decodeQueryError(t, down)
	if !strings.Contains(dto.Error, "no replica available") {
		t.Errorf("error envelope %q does not name the replica exhaustion", dto.Error)
	}
}

// TestClusterEvictionDropsPlacements ties the registry LRU to the shard
// cluster: when a study is evicted, its placements go with it, and a later
// query against the re-materialized study re-places and still answers.
func TestClusterEvictionDropsPlacements(t *testing.T) {
	clustered, _ := clusterServer(t, 2, func(c *Config) { c.StudyCap = 1 })
	spec := `{"frame":"papers","group_by":[{"col":"conference"}],"aggs":[{"op":"count","as":"n"}],"limit":3}`
	if rec := postQuery(t, clustered, spec); rec.Code != http.StatusOK {
		t.Fatalf("first query: %d: %s", rec.Code, rec.Body.String())
	}
	key := StudyKey{Seed: testSeed, Corpus: CorpusDefault}
	if !clustered.cluster.Placed(key.String()) {
		t.Fatal("study not placed after federated query")
	}
	// Materializing a second study evicts the first from the 1-deep LRU.
	if rec := get(t, clustered, "/v1/far?seed=99"); rec.Code != http.StatusOK {
		t.Fatalf("evicting request: %d: %s", rec.Code, rec.Body.String())
	}
	if clustered.cluster.Placed(key.String()) {
		t.Fatal("evicted study still has shard placements")
	}
	// The study re-materializes and re-places lazily.
	if rec := postQuery(t, clustered, `{"frame":"papers","group_by":[{"col":"conference"}],"aggs":[{"op":"count","as":"n"}],"limit":5}`); rec.Code != http.StatusOK {
		t.Fatalf("query after eviction: %d: %s", rec.Code, rec.Body.String())
	}
	if !clustered.cluster.Placed(key.String()) {
		t.Fatal("study not re-placed after re-materialization")
	}
}

// TestMetricsByteDeterministicWithShardFamilies renders the registry of an
// exercised cluster-mode server twice and requires identical bytes, with
// all three shard families present — the satellite contract that /metrics
// output is a pure function of the counters' state.
func TestMetricsByteDeterministicWithShardFamilies(t *testing.T) {
	clustered, reg := clusterServer(t, 4, nil)
	spec := `{"frame":"papers","group_by":[{"col":"conference"}],"aggs":[{"op":"count","as":"n"}],"limit":3}`
	if rec := postQuery(t, clustered, spec); rec.Code != http.StatusOK {
		t.Fatalf("query: %d: %s", rec.Code, rec.Body.String())
	}
	var a, b bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two /metrics renderings of identical state differ")
	}
	for _, fam := range []string{
		"whpcd_shard_fanout_total",
		"whpcd_shard_retries_total",
		"whpcd_shard_merge_seconds",
	} {
		if !strings.Contains(a.String(), fam) {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	// The single-process server exposes the same families at zero, keeping
	// the rendered family set boot-mode independent.
	plainReg := obs.NewRegistry()
	newTestServer(t, func(c *Config) { c.Metrics = plainReg })
	var p bytes.Buffer
	if err := plainReg.WritePrometheus(&p); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(p.String(), "whpcd_shard_fanout_total 0") {
		t.Error("single-process /metrics missing zero-valued shard fanout family")
	}
}
