package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/shard"
	"repro/internal/snap"
)

// QuarantineSuffix is appended to a snapshot file's name when warm-boot
// reads it as corrupt twice in a row. The rename takes the file out of the
// warm path permanently (the next materialization sees "missing" and
// synthesizes without re-reading the bad bytes), while keeping it on disk
// for a post-mortem.
const QuarantineSuffix = ".quarantined"

// countingInjector wraps a chaos.Injector so every fault that actually
// fires is counted in whpcd_chaos_injected_total{point}. It is the only
// injector handle the server keeps, so snap-layer firings (threaded
// through OpenSnapshotFileInjected) are counted the same as serve-layer
// ones.
type countingInjector struct {
	inner chaos.Injector
	fired *obs.CounterVec
}

func (ci countingInjector) Fire(point string) *chaos.Fault {
	f := ci.inner.Fire(point)
	if f != nil {
		ci.fired.With(point).Inc()
	}
	return f
}

// fire consults the server's injector at point. Production servers hold
// chaos.None here, which makes this a single interface call returning nil.
func (s *Server) fire(point string) *chaos.Fault {
	return s.inj.Fire(point)
}

// renderFault applies an armed render-layer fault inside a compute
// function: latency stretches on the server clock (honouring ctx), cancel
// and error fail the render typed, panic panics (contained by the
// middleware recover, released to waiters by the singleflight latch).
// Returns (false, nil) when no fault is armed for this hit.
func (s *Server) renderFault(ctx context.Context, point string) (bool, error) {
	f := s.fire(point)
	if f == nil {
		return false, nil
	}
	switch f.Kind {
	case chaos.KindLatency:
		if err := s.clock.Sleep(ctx, f.Latency); err != nil {
			return true, err
		}
		return false, nil
	case chaos.KindCancel:
		return true, context.Canceled
	case chaos.KindPanic:
		panic(chaos.PanicValue{Point: point})
	default:
		return true, chaos.Injected(point, f)
	}
}

// writeError maps a handler error onto its transport status: not-applicable
// analyses are the client's 422, an expired request deadline is 504, a
// cancelled request 503, and everything else (including injected faults)
// 500. Every failed request exits through here or writeQueryError, which is
// what makes invariant 2 of the chaos suite checkable: typed error in,
// accounted status out.
func (s *Server) writeError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, core.ErrNotApplicable):
		http.Error(w, fmt.Sprintf("not applicable to this corpus: %v", err), http.StatusUnprocessableEntity)
	case errors.Is(err, context.DeadlineExceeded):
		http.Error(w, fmt.Sprintf("deadline exceeded: %v", err), http.StatusGatewayTimeout)
	case errors.Is(err, context.Canceled):
		http.Error(w, fmt.Sprintf("request cancelled: %v", err), http.StatusServiceUnavailable)
	case errors.Is(err, shard.ErrShardUnavailable):
		// Every replica of some shard is gone: fail-operational means a
		// typed 503 — retryable, never a silently partial answer.
		http.Error(w, fmt.Sprintf("shard unavailable: %v", err), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// errorStatus is writeError's mapping as a pure function, shared with the
// structured-JSON query error path.
func errorStatus(err error) int {
	switch {
	case errors.Is(err, core.ErrNotApplicable):
		return http.StatusUnprocessableEntity
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, shard.ErrShardUnavailable):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// errorRecord is one structured error-log line.
type errorRecord struct {
	Time  string `json:"time"`
	Level string `json:"level"`
	Msg   string `json:"msg"`
}

// logError writes one structured line to the error log; a nil ErrorLog
// disables it. Lines are JSON ({"time":...,"level":"error","msg":...}) so
// operators can tail the same pipeline as the access log.
func (s *Server) logError(msg string) {
	if s.cfg.ErrorLog == nil {
		return
	}
	line, err := json.Marshal(errorRecord{
		Time:  s.clock.Now().UTC().Format(time.RFC3339Nano),
		Level: "error",
		Msg:   msg,
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.errMu.Lock()
	_, _ = s.cfg.ErrorLog.Write(line)
	s.errMu.Unlock()
}

// loadSnapshot opens the snapshot at path through the server's injector,
// retrying a corrupt read exactly once (immediately — no backoff; the
// retry absorbs a torn read caught mid-rotation). A second corrupt read
// quarantines the file. Missing files return fs.ErrNotExist untouched and
// are never retried or quarantined — missing is the normal cold-start
// state, not damage.
func (s *Server) loadSnapshot(path string) (*repro.Study, error) {
	var study *repro.Study
	r := resilience.Retryer{MaxAttempts: 2, Clock: s.clock}
	//whpcvet:ignore ctxflow snapshot loads are boot/registry work shared across requests, deliberately detached from any one request's deadline
	err := r.Do(context.Background(), func(context.Context) error {
		st, err := repro.OpenSnapshotFileInjected(path, s.inj)
		if err != nil {
			if errors.Is(err, fs.ErrNotExist) {
				return resilience.Permanent(err)
			}
			return err
		}
		study = st
		return nil
	})
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			s.quarantine(path, err)
		}
		return nil, err
	}
	return study, nil
}

// applyDeltas extends a freshly materialized pristine study with every
// year delta present in the snapshot directory for its (corpus, seed)
// stem, in ascending year order (the lexicographic sort of the fixed-stem
// file names orders four-digit years correctly). Each apply is attempted
// twice — the retry absorbs a torn read caught mid-rotation, and
// Study.ApplyDelta is atomic, so a failed attempt leaves the base study
// exactly as it was. A delta that still fails is quarantined like a
// corrupt base snapshot and the scan continues: the study serves without
// that year rather than not at all. Runs during materialization, before
// the registry publishes the study, so request handlers only ever observe
// fully patched studies.
func (s *Server) applyDeltas(key StudyKey, st *repro.Study) {
	paths, err := filepath.Glob(filepath.Join(s.cfg.SnapshotDir, snap.DeltaFilePattern(key.Corpus, key.Seed)))
	if err != nil || len(paths) == 0 {
		return
	}
	sort.Strings(paths)
	for _, path := range paths {
		r := resilience.Retryer{MaxAttempts: 2, Clock: s.clock}
		//whpcvet:ignore ctxflow delta application is materialization work shared across requests, deliberately detached from any one request's deadline
		err := r.Do(context.Background(), func(context.Context) error {
			aerr := st.ApplyDeltaFileInjected(path, s.inj)
			if aerr != nil && errors.Is(aerr, fs.ErrNotExist) {
				return resilience.Permanent(aerr)
			}
			return aerr
		})
		if err != nil {
			if !errors.Is(err, fs.ErrNotExist) {
				s.quarantine(path, err)
			}
			continue
		}
		s.met.deltaApplies.Inc()
	}
}

// quarantine renames a snapshot that failed decode twice to
// path+QuarantineSuffix, counts it, and logs the failing section so the
// operator can tell a torn write from version skew. The bad file is never
// re-read: after the rename the warm path sees "missing" and synthesizes.
func (s *Server) quarantine(path string, cause error) {
	if err := os.Rename(path, path+QuarantineSuffix); err != nil {
		s.logError(fmt.Sprintf("quarantining snapshot %s: %v (original failure: %v)", path, err, cause))
		return
	}
	s.met.snapshotQuarantines.Inc()
	section := "unknown"
	var fe *snap.FormatError
	if errors.As(cause, &fe) && fe.Section != "" {
		section = fe.Section
	}
	s.logError(fmt.Sprintf("snapshot %s quarantined to %s%s (failing section %q): %v",
		path, path, QuarantineSuffix, section, cause))
}
