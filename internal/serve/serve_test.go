package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/resilience"
)

// testSeed keeps test corpora distinct from the package defaults so a
// cached study never masks a materialization bug.
const testSeed = 7

func newTestServer(t *testing.T, mut func(*Config)) *Server {
	t.Helper()
	cfg := Config{DefaultSeed: testSeed}
	if mut != nil {
		mut(&cfg)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// get drives one request through the full middleware chain.
func get(t *testing.T, s *Server, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	return rec
}

func TestHealthz(t *testing.T) {
	rec := get(t, newTestServer(t, nil), "/healthz")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Fatalf("body = %q, want ok", rec.Body.String())
	}
}

// TestReportByteIdentity is the serving layer's core contract: the bytes
// from /v1/report — cold, then cached — are exactly the bytes
// Study.WriteReport renders for the same seed.
func TestReportByteIdentity(t *testing.T) {
	study, err := repro.NewStudy(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := study.WriteReport(&direct); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, nil)
	cold := get(t, s, "/v1/report")
	if cold.Code != http.StatusOK {
		t.Fatalf("cold status = %d: %s", cold.Code, cold.Body.String())
	}
	if got := cold.Header().Get("X-Cache"); got != CacheMiss {
		t.Fatalf("cold X-Cache = %q, want %q", got, CacheMiss)
	}
	if !bytes.Equal(cold.Body.Bytes(), direct.Bytes()) {
		t.Fatal("cold /v1/report differs from direct WriteReport")
	}

	warm := get(t, s, "/v1/report")
	if got := warm.Header().Get("X-Cache"); got != CacheHit {
		t.Fatalf("warm X-Cache = %q, want %q", got, CacheHit)
	}
	if !bytes.Equal(warm.Body.Bytes(), direct.Bytes()) {
		t.Fatal("cached /v1/report differs from direct WriteReport")
	}
	if ct := warm.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("Content-Type = %q, want text/plain", ct)
	}
}

// TestReportSingleflight hammers an uncached /v1/report from 32 goroutines
// and asserts exactly one underlying render ran and every caller got the
// same bytes.
func TestReportSingleflight(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, nil)

	const clients = 32
	var (
		start  = make(chan struct{})
		wg     sync.WaitGroup
		bodies [clients][]byte
		codes  [clients]int
	)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec := httptest.NewRecorder()
			s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/report", nil))
			bodies[i] = rec.Body.Bytes()
			codes[i] = rec.Code
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < clients; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, codes[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d returned different bytes than request 0", i)
		}
	}
	if renders := s.met.cacheMisses.Value(); renders != 1 {
		t.Fatalf("report rendered %d times under %d concurrent requests, want exactly 1", renders, clients)
	}
	if len(bodies[0]) == 0 {
		t.Fatal("empty report body")
	}
}

// TestGracefulDrain starts the server on a real listener, parks a request
// inside a handler, cancels the serve context, and verifies the in-flight
// request still completes before Serve returns.
func TestGracefulDrain(t *testing.T) {
	leakcheck.Check(t)
	s := newTestServer(t, nil)
	entered := make(chan struct{})
	release := make(chan struct{})
	s.mux.HandleFunc("GET /test/slow", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		_, _ = io.WriteString(w, "slow done")
	})

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.Serve(ctx, l) }()

	var (
		body []byte
		code int
	)
	reqDone := make(chan error, 1)
	go func() {
		resp, err := http.Get("http://" + l.Addr().String() + "/test/slow")
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		code = resp.StatusCode
		body, err = io.ReadAll(resp.Body)
		reqDone <- err
	}()

	<-entered
	cancel() // begin graceful drain with the request still in flight
	select {
	case err := <-served:
		t.Fatalf("Serve returned %v before the in-flight request finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)

	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if code != http.StatusOK || string(body) != "slow done" {
		t.Fatalf("in-flight request got %d %q, want 200 \"slow done\"", code, body)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve = %v, want nil after clean drain", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

func TestStudyRegistryLRU(t *testing.T) {
	var builds atomic.Int64
	mkStudy, err := repro.NewStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	var evictions obs.Counter
	var resident obs.Gauge
	reg := NewStudyRegistry(2, func(StudyKey) (*repro.Study, error) {
		builds.Add(1)
		return mkStudy, nil
	}, nil, &evictions, &resident)

	keys := []StudyKey{
		{Seed: 1, Corpus: CorpusDefault},
		{Seed: 2, Corpus: CorpusDefault},
		{Seed: 3, Corpus: CorpusDefault},
	}
	for _, k := range keys {
		if _, err := reg.Get(context.Background(), k); err != nil {
			t.Fatal(err)
		}
	}
	if got := builds.Load(); got != 3 {
		t.Fatalf("builds = %d, want 3", got)
	}
	if got := reg.Len(); got != 2 {
		t.Fatalf("resident = %d, want 2 (capacity)", got)
	}
	// Key 3 is hot; key 1 was evicted; key 2 is still resident.
	if _, err := reg.Get(context.Background(), keys[2]); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 3 {
		t.Fatalf("hot key rebuilt: builds = %d, want 3", got)
	}
	if _, err := reg.Get(context.Background(), keys[0]); err != nil {
		t.Fatal(err)
	}
	if got := builds.Load(); got != 4 {
		t.Fatalf("evicted key not rebuilt: builds = %d, want 4", got)
	}
	if evictions.Value() != 2 {
		t.Fatalf("evictions = %d, want 2", evictions.Value())
	}
	if resident.Value() != 2 {
		t.Fatalf("resident gauge = %d, want 2", resident.Value())
	}
}

func TestStudyRegistryDoesNotCacheFailures(t *testing.T) {
	var builds atomic.Int64
	okStudy, err := repro.NewStudy(1)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewStudyRegistry(2, func(StudyKey) (*repro.Study, error) {
		if builds.Add(1) == 1 {
			return nil, fmt.Errorf("transient failure")
		}
		return okStudy, nil
	}, nil, nil, nil)
	key := StudyKey{Seed: 9, Corpus: CorpusDefault}
	if _, err := reg.Get(context.Background(), key); err == nil {
		t.Fatal("first Get should fail")
	}
	if got, err := reg.Get(context.Background(), key); err != nil || got != okStudy {
		t.Fatalf("second Get = (%v, %v), want retry success", got, err)
	}
	if builds.Load() != 2 {
		t.Fatalf("builds = %d, want 2", builds.Load())
	}
}

func TestExhibitCacheLRUAndErrors(t *testing.T) {
	var computes atomic.Int64
	c := NewExhibitCache(2, cacheCounters{})
	compute := func(v string) func(context.Context) ([]byte, error) {
		return func(context.Context) ([]byte, error) {
			computes.Add(1)
			return []byte(v), nil
		}
	}
	for _, step := range []struct {
		key, want, outcome string
	}{
		{"a", "A", CacheMiss},
		{"a", "A", CacheHit},
		{"b", "B", CacheMiss},
		{"c", "C", CacheMiss}, // evicts a
		{"a", "A", CacheMiss}, // rebuilt
	} {
		got, outcome, err := c.Get(context.Background(), step.key, compute(strings.ToUpper(step.key)))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != step.want || outcome != step.outcome {
			t.Fatalf("Get(%q) = (%q, %s), want (%q, %s)", step.key, got, outcome, step.want, step.outcome)
		}
	}
	if computes.Load() != 4 {
		t.Fatalf("computes = %d, want 4", computes.Load())
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}

	// Errors are never cached.
	fail := true
	for i := 0; i < 2; i++ {
		_, _, err := c.Get(context.Background(), "err", func(context.Context) ([]byte, error) {
			if fail {
				fail = false
				return nil, fmt.Errorf("render exploded")
			}
			return []byte("ok"), nil
		})
		if i == 0 && err == nil {
			t.Fatal("first Get should surface the render error")
		}
		if i == 1 && err != nil {
			t.Fatalf("error was cached: %v", err)
		}
	}
}

func TestSingleflightGroup(t *testing.T) {
	var g group
	var runs atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func() ([]byte, error) {
				runs.Add(1)
				<-gate
				return []byte("v"), nil
			})
			if err != nil || string(v) != "v" {
				t.Errorf("Do = (%q, %v)", v, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Let the goroutines queue up behind the first caller, then open the gate.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if runs.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", runs.Load())
	}
	if sharedCount.Load() != callers-1 {
		t.Fatalf("shared callers = %d, want %d", sharedCount.Load(), callers-1)
	}
}

func TestBadParameters(t *testing.T) {
	s := newTestServer(t, nil)
	for _, target := range []string{
		"/v1/far?seed=banana",
		"/v1/far?corpus=imaginary",
		"/v1/far?profile=catastrophic",
	} {
		if rec := get(t, s, target); rec.Code != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", target, rec.Code)
		}
	}
	if rec := get(t, s, "/v1/exhibits/no-such-exhibit"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown exhibit = %d, want 404", rec.Code)
	}
	if rec := get(t, s, "/v1/csv/no_such_export"); rec.Code != http.StatusNotFound {
		t.Errorf("unknown csv = %d, want 404", rec.Code)
	}
}

func TestFARJSON(t *testing.T) {
	s := newTestServer(t, nil)
	rec := get(t, s, "/v1/far")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	var dto struct {
		Study struct {
			Seed    uint64 `json:"seed"`
			Corpus  string `json:"corpus"`
			Profile string `json:"profile"`
		} `json:"study"`
		Overall struct {
			Women int      `json:"women"`
			Known int      `json:"known"`
			Ratio *float64 `json:"ratio"`
		} `json:"overall"`
		PerConference []struct {
			Conference string `json:"conference"`
		} `json:"per_conference"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &dto); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if dto.Study.Seed != testSeed || dto.Study.Corpus != CorpusDefault || dto.Study.Profile != "none" {
		t.Fatalf("study echo = %+v", dto.Study)
	}
	if dto.Overall.Ratio == nil || *dto.Overall.Ratio <= 0 || *dto.Overall.Ratio >= 0.5 {
		t.Fatalf("overall ratio = %v, want a plausible FAR", dto.Overall.Ratio)
	}
	if len(dto.PerConference) == 0 {
		t.Fatal("no per-conference rows")
	}
}

func TestExhibitEndpointMatchesDirectRender(t *testing.T) {
	study, err := repro.NewStudy(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := study.Exhibit("table1")
	if !ok {
		t.Fatal("exhibit table1 missing")
	}
	var direct bytes.Buffer
	if err := ex.Render(&direct); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, nil)
	rec := get(t, s, "/v1/exhibits/table1")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if !bytes.Equal(rec.Body.Bytes(), direct.Bytes()) {
		t.Fatal("served exhibit differs from direct render")
	}

	// The catalog lists every exhibit the study enumerates.
	list := get(t, s, "/v1/exhibits")
	var cat struct {
		Exhibits []struct{ ID string } `json:"exhibits"`
	}
	if err := json.Unmarshal(list.Body.Bytes(), &cat); err != nil {
		t.Fatal(err)
	}
	if len(cat.Exhibits) != len(study.Exhibits()) {
		t.Fatalf("catalog has %d exhibits, study has %d", len(cat.Exhibits), len(study.Exhibits()))
	}
}

func TestCSVEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	rec := get(t, s, "/v1/csv/far_per_conference")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
		t.Fatalf("Content-Type = %q", ct)
	}
	if !strings.HasPrefix(rec.Body.String(), "conference,women,known,far,unknown\n") {
		t.Fatalf("unexpected CSV header: %q", strings.SplitN(rec.Body.String(), "\n", 2)[0])
	}
	// The .csv suffix is accepted too, and serves identical bytes.
	suffixed := get(t, s, "/v1/csv/far_per_conference.csv")
	if !bytes.Equal(suffixed.Body.Bytes(), rec.Body.Bytes()) {
		t.Fatal("suffixed name served different bytes")
	}
	if got := suffixed.Header().Get("X-Cache"); got != CacheHit {
		t.Fatalf("suffixed X-Cache = %q, want hit (same cache key)", got)
	}
}

// TestHarvestedStudyEndToEnd exercises the fault-profile construction path
// through the API: the report carries the harvest exhibits, stays
// byte-identical to the direct harvested render, and the harvest telemetry
// lands in the metrics registry.
func TestHarvestedStudyEndToEnd(t *testing.T) {
	direct, err := repro.NewHarvestedStudy(testSeed, "flaky")
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := direct.WriteReport(&want); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, nil)
	rec := get(t, s, "/v1/report?profile=flaky")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.Equal(rec.Body.Bytes(), want.Bytes()) {
		t.Fatal("served harvested report differs from direct harvested render")
	}
	if !strings.Contains(rec.Body.String(), "Harvest — resilient ingestion") {
		t.Fatal("harvested report missing the harvest exhibit")
	}

	metrics := get(t, s, "/metrics")
	if !strings.Contains(metrics.Body.String(), `whpcd_harvest_outcomes_total{outcome="linked-gs"}`) {
		t.Fatal("/metrics missing harvest outcome telemetry after a harvested materialization")
	}
}

func TestMetricsAndVarsEndpoints(t *testing.T) {
	s := newTestServer(t, nil)
	get(t, s, "/v1/far")
	get(t, s, "/v1/far") // one miss + one hit
	rec := get(t, s, "/metrics")
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		`whpcd_requests_total{route="/v1/far",code="200"} 2`,
		`whpcd_request_seconds_bucket{route="/v1/far",le="+Inf"} 2`,
		"whpcd_exhibit_cache_hits_total 1",
		"whpcd_exhibit_cache_misses_total 1",
		"whpcd_exhibit_cache_hit_ratio 0.5",
		"whpcd_studies_resident 1",
		"whpcd_render_seconds_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	vars := get(t, s, "/debug/vars")
	var parsed map[string]any
	if err := json.Unmarshal(vars.Body.Bytes(), &parsed); err != nil {
		t.Fatalf("/debug/vars is not valid JSON: %v", err)
	}
	if parsed[`whpcd_requests_total{route="/v1/far",code="200"}`] != float64(2) {
		t.Fatalf("vars request count = %v, want 2", parsed[`whpcd_requests_total{route="/v1/far",code="200"}`])
	}
}

func TestInFlightShedding(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxInFlight = 1 })
	entered := make(chan struct{})
	release := make(chan struct{})
	s.route("GET /test/park", func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		w.WriteHeader(http.StatusOK)
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/test/park", nil))
	}()
	<-entered

	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status with full in-flight = %d, want 503", rec.Code)
	}
	close(release)
	wg.Wait()
	if s.met.shed.Value() != 1 {
		t.Fatalf("shed counter = %d, want 1", s.met.shed.Value())
	}
	// Capacity is released: the next request succeeds.
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("status after release = %d, want 200", rec.Code)
	}
}

func TestRateLimiting(t *testing.T) {
	clock := resilience.NewVirtualClock(time.Unix(0, 0))
	s := newTestServer(t, func(c *Config) {
		c.RatePerSecond = 0.001 // effectively no refill under a frozen clock
		c.RateBurst = 2
		c.Clock = clock
	})
	for i := 0; i < 2; i++ {
		if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
			t.Fatalf("request %d within burst = %d, want 200", i, rec.Code)
		}
	}
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("request past burst = %d, want 429", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("429 response missing Retry-After")
	}
	// Budgets are per route: another route still has tokens.
	if rec := get(t, s, "/v1/exhibits"); rec.Code != http.StatusOK {
		t.Fatalf("other route = %d, want 200", rec.Code)
	}
}

func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	s := newTestServer(t, func(c *Config) { c.AccessLog = &buf })
	get(t, s, "/v1/far?seed=3")
	line := strings.TrimSpace(buf.String())
	var rec struct {
		Method string `json:"method"`
		Path   string `json:"path"`
		Route  string `json:"route"`
		Status int    `json:"status"`
		Cache  string `json:"cache"`
	}
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("access log line is not JSON: %v (%q)", err, line)
	}
	if rec.Method != "GET" || rec.Path != "/v1/far?seed=3" || rec.Route != "/v1/far" || rec.Status != 200 || rec.Cache != CacheMiss {
		t.Fatalf("unexpected access record: %+v", rec)
	}
}
