package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro"

	"repro/internal/chaos"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/snap"
)

// chaosSeeds are the fixed seeds the chaos suite (and the CI chaos job)
// replays. Three seeds cover distinct schedule shapes without turning the
// suite into a fuzzer — any failure reproduces from the seed alone.
var chaosSeeds = []uint64{7, 42, 2021}

// chaosStep is one scripted action in the deterministic request sequence.
// Method "PURGE" is a local sentinel: drop the exhibit cache (spilling
// resident bytes to the stale store) instead of issuing a request.
type chaosStep struct {
	method, target, body string
}

var chaosQuerySpec = `{"frame":"slots","group_by":["conference"],"aggs":[{"op":"count","as":"n"}]}`

// chaosScript exercises every injection point: request (all steps),
// materialize (first touch of each study key), render (every cache miss),
// and — via the purges — the stale-while-revalidate path.
var chaosScript = []chaosStep{
	{"GET", "/healthz", ""},
	{"GET", "/v1/far", ""},
	{"GET", "/v1/report", ""},
	{"GET", "/v1/far", ""},
	{"GET", "/v1/exhibits", ""},
	{"GET", "/v1/roles", ""},
	{"POST", "/v1/query", chaosQuerySpec},
	{"PURGE", "", ""},
	{"GET", "/v1/report", ""},
	{"GET", "/v1/far", ""},
	{"GET", "/v1/csv/far_per_conference", ""},
	{"GET", "/v1/exhibits", ""},
	{"PURGE", "", ""},
	{"GET", "/v1/roles", ""},
	{"GET", "/v1/report", ""},
	{"GET", "/v1/far?seed=5", ""},
	{"GET", "/v1/report?seed=5", ""},
	{"POST", "/v1/query", chaosQuerySpec},
	{"GET", "/healthz", ""},
	{"GET", "/v1/far", ""},
	{"GET", "/v1/roles", ""},
	{"GET", "/v1/report", ""},
}

// chaosResult records one request's observable outcome plus the fault
// events the injector fired while serving it.
type chaosResult struct {
	status int
	body   string
	xcache string
	fired  []chaos.Event
}

// driveScript runs chaosScript sequentially against s, attributing fired
// fault events to the request they interrupted. Sequential execution is
// what makes hit ordinals — and therefore the whole run — replayable.
func driveScript(t *testing.T, s *Server, inj *chaos.Scheduled) []chaosResult {
	t.Helper()
	results := make([]chaosResult, 0, len(chaosScript))
	firedBefore := 0
	for _, step := range chaosScript {
		if step.method == "PURGE" {
			s.PurgeExhibitCache()
			continue
		}
		var req *http.Request
		if step.body != "" {
			req = httptest.NewRequest(step.method, step.target, strings.NewReader(step.body))
			req.Header.Set("Content-Type", "application/json")
		} else {
			req = httptest.NewRequest(step.method, step.target, nil)
		}
		rec := httptest.NewRecorder()
		s.Handler().ServeHTTP(rec, req)
		res := chaosResult{
			status: rec.Code,
			body:   rec.Body.String(),
			xcache: rec.Header().Get("X-Cache"),
		}
		if inj != nil {
			all := inj.Fired()
			res.fired = all[firedBefore:]
			firedBefore = len(all)
		}
		results = append(results, res)
	}
	return results
}

func fatalFaults(events []chaos.Event) int {
	n := 0
	for _, e := range events {
		switch e.Kind {
		case chaos.KindError, chaos.KindCancel, chaos.KindPanic:
			n++
		}
	}
	return n
}

// TestChaosServeInvariants is the chaos suite's core: for each fixed seed,
// a scripted request sequence runs against a fault-injected server and is
// held to four invariants — (1) no panic escapes the middleware, (2) every
// failed request carries a mapped status and traces back to a fired fault,
// (3) every successful response is byte-identical to the fault-free
// baseline, (4) no goroutines leak. A second injected run with the same
// seed must reproduce the first exactly (statuses and fired-event log).
func TestChaosServeInvariants(t *testing.T) {
	leakcheck.Check(t)

	baselineSrv := newTestServer(t, nil)
	baseline := driveScript(t, baselineSrv, nil)
	for i, r := range baseline {
		if r.status != http.StatusOK {
			t.Fatalf("baseline step %d (%s) = %d: %s", i, chaosScript[i].target, r.status, r.body)
		}
	}

	for _, seed := range chaosSeeds {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			leakcheck.Check(t)
			sched := chaos.ServeProfile().Schedule(seed)

			run := func() (*Server, *chaos.Scheduled, []chaosResult) {
				inj := chaos.NewScheduled(sched)
				s := newTestServer(t, func(c *Config) {
					c.Chaos = inj
					c.Metrics = obs.NewRegistry()
				})
				// Invariant 1: a panic escaping the middleware would unwind
				// through ServeHTTP into this test and fail it loudly.
				return s, inj, driveScript(t, s, inj)
			}
			s, inj, results := run()

			panicsFired, staleSeen := 0, 0
			allowedFailure := map[int]bool{
				http.StatusInternalServerError: true,
				http.StatusServiceUnavailable:  true,
				http.StatusGatewayTimeout:      true,
			}
			httpIdx := 0
			for i, r := range results {
				for _, e := range r.fired {
					if e.Kind == chaos.KindPanic {
						panicsFired++
					}
				}
				if r.xcache == CacheStale {
					staleSeen++
				}
				switch {
				case r.status == http.StatusOK:
					// Invariant 3: success is byte-identical to the
					// fault-free baseline — even when served stale.
					if r.body != baseline[i].body {
						t.Errorf("step %d: 200 body diverged from baseline\nfired: %v", i, r.fired)
					}
				case allowedFailure[r.status]:
					// Invariant 2: failures map to a typed status and are
					// attributable to an injected fault.
					if fatalFaults(r.fired) == 0 {
						t.Errorf("step %d: status %d with no fatal fault fired", i, r.status)
					}
				default:
					t.Errorf("step %d: unexpected status %d: %s", i, r.status, r.body)
				}
				if len(r.fired) == 0 && r.status != http.StatusOK {
					t.Errorf("step %d: failed (%d) with no fault fired at all", i, r.status)
				}
				httpIdx++
			}
			if httpIdx == 0 {
				t.Fatal("script drove no requests")
			}

			// Invariant 2, metric side: every contained panic is counted,
			// every stale serve is counted, and the per-point injection
			// counter accounts for every fired event.
			if got := s.met.panics.Value(); int(got) != panicsFired {
				t.Errorf("whpcd_panics_total = %d, want %d (fired panic faults)", got, panicsFired)
			}
			if got := s.met.staleServes.Value(); int(got) != staleSeen {
				t.Errorf("whpcd_stale_serves_total = %d, want %d (stale X-Cache responses)", got, staleSeen)
			}
			counted := 0
			for _, p := range chaos.Points() {
				counted += int(s.met.chaosInjected.With(p).Value())
			}
			if counted != len(inj.Fired()) {
				t.Errorf("whpcd_chaos_injected_total sums to %d, want %d fired events", counted, len(inj.Fired()))
			}

			// Replay: a fresh server armed from the same schedule reproduces
			// the run exactly.
			_, inj2, results2 := run()
			if a, b := inj.FiredString(), inj2.FiredString(); a != b {
				t.Errorf("replay fired different events:\n  run1: %s\n  run2: %s", a, b)
			}
			for i := range results {
				if results[i].status != results2[i].status {
					t.Errorf("replay step %d: status %d then %d", i, results[i].status, results2[i].status)
				}
			}
		})
	}
}

// TestChaosPanicContainment: a panic fault in the render layer is contained
// — the request fails 500, whpcd_panics_total increments, and the very next
// request renders fine. The daemon never stops serving.
func TestChaosPanicContainment(t *testing.T) {
	leakcheck.Check(t)
	inj := chaos.NewScheduled(&chaos.Schedule{Triggers: []chaos.Trigger{
		{Point: chaos.PointRender, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindPanic}},
	}})
	s := newTestServer(t, func(c *Config) {
		c.Chaos = inj
		c.Metrics = obs.NewRegistry()
	})
	if rec := get(t, s, "/v1/report"); rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicked render status = %d, want 500", rec.Code)
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Fatalf("whpcd_panics_total = %d, want 1", got)
	}
	rec := get(t, s, "/v1/report")
	if rec.Code != http.StatusOK {
		t.Fatalf("post-panic render status = %d, want 200: %s", rec.Code, rec.Body.String())
	}
	if got := s.met.panics.Value(); got != 1 {
		t.Fatalf("whpcd_panics_total moved to %d after a clean request", got)
	}
}

// TestChaosStaleWhileRevalidate: when a re-render fails after the cache was
// purged, the stale store serves the previous (byte-identical) bytes with a
// Warning header and the stale outcome, instead of failing the request.
func TestChaosStaleWhileRevalidate(t *testing.T) {
	leakcheck.Check(t)
	inj := chaos.NewScheduled(&chaos.Schedule{Triggers: []chaos.Trigger{
		{Point: chaos.PointRender, Hit: 2, Fault: chaos.Fault{Kind: chaos.KindError}},
	}})
	var errLog strings.Builder
	s := newTestServer(t, func(c *Config) {
		c.Chaos = inj
		c.Metrics = obs.NewRegistry()
		c.ErrorLog = &errLog
	})
	first := get(t, s, "/v1/report")
	if first.Code != http.StatusOK {
		t.Fatalf("first render = %d: %s", first.Code, first.Body.String())
	}
	s.PurgeExhibitCache()
	if got := s.cache.StaleLen(); got == 0 {
		t.Fatal("purge spilled nothing into the stale store")
	}
	stale := get(t, s, "/v1/report")
	if stale.Code != http.StatusOK {
		t.Fatalf("stale serve = %d, want 200: %s", stale.Code, stale.Body.String())
	}
	if got := stale.Header().Get("X-Cache"); got != CacheStale {
		t.Fatalf("X-Cache = %q, want %q", got, CacheStale)
	}
	if stale.Header().Get("Warning") == "" {
		t.Fatal("stale response missing Warning header")
	}
	if stale.Body.String() != first.Body.String() {
		t.Fatal("stale bytes diverged from the original render")
	}
	if got := s.met.staleServes.Value(); got != 1 {
		t.Fatalf("whpcd_stale_serves_total = %d, want 1", got)
	}
	if !strings.Contains(errLog.String(), "stale serve") {
		t.Fatalf("error log missing stale-serve line: %q", errLog.String())
	}
	// The stale copy is still there; a third request (no fault armed)
	// re-renders, and the fresh insert supersedes it.
	third := get(t, s, "/v1/report")
	if third.Code != http.StatusOK || third.Header().Get("X-Cache") != CacheMiss {
		t.Fatalf("recovery render = (%d, %s), want (200, miss)", third.Code, third.Header().Get("X-Cache"))
	}
}

// TestChaosRequestCancel: a cancel fault at serve.request propagates the
// dead context through the handler — a cold-cache request fails 503, typed,
// and the next request succeeds.
func TestChaosRequestCancel(t *testing.T) {
	leakcheck.Check(t)
	inj := chaos.NewScheduled(&chaos.Schedule{Triggers: []chaos.Trigger{
		{Point: chaos.PointRequest, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindCancel}},
	}})
	s := newTestServer(t, func(c *Config) {
		c.Chaos = inj
		c.Metrics = obs.NewRegistry()
	})
	rec := get(t, s, "/v1/report")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled request = %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if rec2 := get(t, s, "/v1/report"); rec2.Code != http.StatusOK {
		t.Fatalf("follow-up request = %d, want 200", rec2.Code)
	}
}

// TestSingleflightPanicReleasesWaiters: when the executing caller's fn
// panics, every coalesced waiter receives ErrRenderPanicked instead of
// hanging, and the panic still propagates on the executing goroutine.
func TestSingleflightPanicReleasesWaiters(t *testing.T) {
	leakcheck.Check(t)
	var g group
	executing := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	waiterErrs := make([]error, 4)
	for i := range waiterErrs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-executing
			_, shared, err := g.Do(context.Background(), "k", func() ([]byte, error) {
				t.Error("waiter executed fn; singleflight broke")
				return nil, nil
			})
			if !shared {
				// The executor's slot was already released; this waiter
				// re-executed. That must not happen before release closes.
				t.Error("waiter was not coalesced")
			}
			waiterErrs[i] = err
		}(i)
	}

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		_, _, _ = g.Do(context.Background(), "k", func() ([]byte, error) {
			close(executing)
			<-release
			panic("render exploded")
		})
	}()

	// Let the waiters queue up behind the in-flight call before the panic.
	<-executing
	time.Sleep(20 * time.Millisecond)
	close(release)
	if rec := <-panicked; rec == nil {
		t.Fatal("executing caller's panic was swallowed")
	}
	wg.Wait()
	for i, err := range waiterErrs {
		if !errors.Is(err, ErrRenderPanicked) {
			t.Errorf("waiter %d err = %v, want ErrRenderPanicked", i, err)
		}
	}
}

// TestRegistryBuildPanicReleasesWaiters: a panicking build fails waiters
// with ErrBuildPanicked, is not retained, and a later Get retries cleanly.
func TestRegistryBuildPanicReleasesWaiters(t *testing.T) {
	leakcheck.Check(t)
	okStudy := newTestServer(t, nil) // only for a study value
	st, err := okStudy.studies.Get(context.Background(), StudyKey{Seed: testSeed, Corpus: CorpusDefault})
	if err != nil {
		t.Fatal(err)
	}

	calls := 0
	building := make(chan struct{})
	release := make(chan struct{})
	reg := NewStudyRegistry(2, func(StudyKey) (*repro.Study, error) {
		calls++
		if calls == 1 {
			close(building)
			<-release
			panic("build exploded")
		}
		return st, nil
	}, nil, nil, nil)

	key := StudyKey{Seed: 1, Corpus: CorpusDefault}
	waiterErr := make(chan error, 1)
	go func() {
		<-building
		_, err := reg.Get(context.Background(), key)
		waiterErr <- err
	}()

	panicked := make(chan any, 1)
	go func() {
		defer func() { panicked <- recover() }()
		_, _ = reg.Get(context.Background(), key)
	}()

	// Let the waiter block on the latch before the build panics.
	<-building
	time.Sleep(20 * time.Millisecond)
	close(release)
	if rec := <-panicked; rec == nil {
		t.Fatal("building caller's panic was swallowed")
	}
	if err := <-waiterErr; !errors.Is(err, ErrBuildPanicked) {
		t.Fatalf("waiter err = %v, want ErrBuildPanicked", err)
	}
	// The poisoned entry was forgotten; the next Get rebuilds.
	if got, err := reg.Get(context.Background(), key); err != nil || got != st {
		t.Fatalf("retry Get = (%v, %v), want clean rebuild", got, err)
	}
}

// TestRegistryWaitCancel: a waiter whose context dies while another caller
// is still materializing gets its context error immediately; the build
// completes for everyone else.
func TestRegistryWaitCancel(t *testing.T) {
	leakcheck.Check(t)
	okStudy := newTestServer(t, nil)
	st, err := okStudy.studies.Get(context.Background(), StudyKey{Seed: testSeed, Corpus: CorpusDefault})
	if err != nil {
		t.Fatal(err)
	}

	building := make(chan struct{})
	release := make(chan struct{})
	reg := NewStudyRegistry(2, func(StudyKey) (*repro.Study, error) {
		close(building)
		<-release
		return st, nil
	}, nil, nil, nil)

	key := StudyKey{Seed: 1, Corpus: CorpusDefault}
	builderDone := make(chan error, 1)
	go func() {
		_, err := reg.Get(context.Background(), key)
		builderDone <- err
	}()
	<-building

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := reg.Get(ctx, key); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v, want context.Canceled", err)
	}

	close(release)
	if err := <-builderDone; err != nil {
		t.Fatalf("builder failed: %v", err)
	}
	// The completed study is served to later callers — including ones whose
	// context is already cancelled, because completed work wins the select.
	if got, err := reg.Get(ctx, key); err != nil || got != st {
		t.Fatalf("post-build Get = (%v, %v), want cached study", got, err)
	}
}

// TestChaosWarmBootTornReadRetry: a torn read on the first snapshot open is
// absorbed by the single immediate retry — the study loads from disk, no
// fallback, no quarantine.
func TestChaosWarmBootTornReadRetry(t *testing.T) {
	leakcheck.Check(t)
	dir := writeTestSnapshot(t)
	inj := chaos.NewScheduled(&chaos.Schedule{Triggers: []chaos.Trigger{
		{Point: chaos.PointSnapRead, Hit: 1, Fault: chaos.Fault{Kind: chaos.KindTorn, TornBytes: 512}},
	}})
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Chaos = inj
		c.Metrics = obs.NewRegistry()
	})
	if rec := get(t, s, "/v1/report"); rec.Code != http.StatusOK {
		t.Fatalf("warm boot = %d: %s", rec.Code, rec.Body.String())
	}
	if got := s.met.snapshotLoads.Value(); got != 1 {
		t.Fatalf("snapshot loads = %d, want 1", got)
	}
	if got := s.met.snapshotFallbacks.Value(); got != 0 {
		t.Fatalf("snapshot fallbacks = %d, want 0", got)
	}
	if got := s.met.snapshotQuarantines.Value(); got != 0 {
		t.Fatalf("snapshot quarantines = %d, want 0", got)
	}
	if got := inj.Hits(chaos.PointSnapRead); got != 2 {
		t.Fatalf("snap.read hits = %d, want 2 (original + retry)", got)
	}
}

// TestChaosWarmBootQuarantine: persistent decode faults exhaust the retry,
// quarantine the file (renamed, never re-read), and degrade to synthesis —
// with bytes identical to a never-snapshotted server.
func TestChaosWarmBootQuarantine(t *testing.T) {
	leakcheck.Check(t)
	dir := writeTestSnapshot(t)
	path := filepath.Join(dir, snap.CorpusFileName(CorpusDefault, testSeed))

	triggers := make([]chaos.Trigger, 0, 12)
	for hit := 1; hit <= 12; hit++ {
		triggers = append(triggers, chaos.Trigger{
			Point: chaos.PointSnapDecode, Hit: hit, Fault: chaos.Fault{Kind: chaos.KindError},
		})
	}
	inj := chaos.NewScheduled(&chaos.Schedule{Triggers: triggers})
	var errLog strings.Builder
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Chaos = inj
		c.Metrics = obs.NewRegistry()
		c.ErrorLog = &errLog
	})
	rec := get(t, s, "/v1/report")
	if rec.Code != http.StatusOK {
		t.Fatalf("degraded warm boot = %d: %s", rec.Code, rec.Body.String())
	}

	baseline := get(t, newTestServer(t, nil), "/v1/report")
	if rec.Body.String() != baseline.Body.String() {
		t.Fatal("synthesized fallback bytes diverged from a never-snapshotted server")
	}

	if got := s.met.snapshotFallbacks.Value(); got != 1 {
		t.Fatalf("snapshot fallbacks = %d, want 1", got)
	}
	if got := s.met.snapshotQuarantines.Value(); got != 1 {
		t.Fatalf("snapshot quarantines = %d, want 1", got)
	}
	if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("corrupt snapshot still present at %s (err=%v)", path, err)
	}
	if _, err := os.Stat(path + QuarantineSuffix); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
	log := errLog.String()
	if !strings.Contains(log, path) || !strings.Contains(log, "quarantined") {
		t.Fatalf("error log missing quarantine line with path: %q", log)
	}
	if !strings.Contains(log, snap.SectionPersons) {
		t.Fatalf("error log missing failing section %q: %q", snap.SectionPersons, log)
	}

	// Never re-attempted in a loop: evict the study, rebuild, and confirm
	// the quarantined file is not re-read (fires nothing; plain missing-file
	// fallback).
	readsBefore := inj.Hits(chaos.PointSnapRead)
	s.studies = NewStudyRegistry(1, s.buildStudy, nil, nil, nil)
	if rec := get(t, s, "/v1/report"); rec.Code != http.StatusOK {
		t.Fatalf("post-quarantine rebuild = %d", rec.Code)
	}
	if got := inj.Hits(chaos.PointSnapRead); got != readsBefore {
		t.Fatalf("quarantined snapshot was re-read (snap.read hits %d -> %d)", readsBefore, got)
	}
}

// TestWarmBootRealCorruption: actual on-disk corruption (no injector) takes
// the same quarantine path — proving the hardening is not chaos-only.
func TestWarmBootRealCorruption(t *testing.T) {
	leakcheck.Check(t)
	dir := writeTestSnapshot(t)
	path := filepath.Join(dir, snap.CorpusFileName(CorpusDefault, testSeed))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte deep in the payload so the header parses but a section
	// checksum fails.
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Metrics = obs.NewRegistry()
	})
	if rec := get(t, s, "/v1/report"); rec.Code != http.StatusOK {
		t.Fatalf("corrupt warm boot = %d", rec.Code)
	}
	if got := s.met.snapshotQuarantines.Value(); got != 1 {
		t.Fatalf("snapshot quarantines = %d, want 1", got)
	}
	if _, err := os.Stat(path + QuarantineSuffix); err != nil {
		t.Fatalf("quarantined copy missing: %v", err)
	}
}
