package serve

import (
	"bytes"
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/faulty"
	"repro/internal/report"
	"repro/internal/stats"
)

// parseStudyKey reads the seed, corpus, and profile query parameters,
// falling back to the server defaults. Invalid values return an error the
// handler reports as 400.
func (s *Server) parseStudyKey(r *http.Request) (StudyKey, error) {
	q := r.URL.Query()
	key := StudyKey{Seed: s.cfg.DefaultSeed, Corpus: CorpusDefault, Profile: s.cfg.DefaultProfile}
	if key.Profile == "none" {
		key.Profile = ""
	}
	if v := q.Get("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return key, fmt.Errorf("invalid seed %q: want an unsigned integer", v)
		}
		key.Seed = n
	}
	if v := q.Get("corpus"); v != "" {
		switch v {
		case CorpusDefault, CorpusFlagship, CorpusExtended:
			key.Corpus = v
		default:
			return key, fmt.Errorf("unknown corpus %q (have %v)", v, Corpora())
		}
	}
	if v := q.Get("profile"); v != "" {
		if v == "none" {
			key.Profile = ""
		} else {
			if _, err := faulty.ByName(v); err != nil {
				return key, err
			}
			key.Profile = v
		}
	}
	return key, nil
}

// study resolves the request's study, writing the error response itself
// (400 for bad parameters, mapped status for a failed materialization) and
// returning ok=false when the handler should bail. The request context
// bounds the wait on a shared in-flight materialization.
func (s *Server) study(w http.ResponseWriter, r *http.Request) (*repro.Study, StudyKey, bool) {
	key, err := s.parseStudyKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return nil, key, false
	}
	st, err := s.studies.Get(r.Context(), key)
	if err != nil {
		s.writeError(w, fmt.Errorf("materializing study (%s): %w", key, err))
		return nil, key, false
	}
	return st, key, true
}

// cacheID extends a study key's canonical string with the study's delta
// revision. A StudyKey alone no longer determines a study's bytes once the
// snapshot directory can hold year deltas: a study evicted and then
// re-materialized under the same key picks up any delta files that landed
// in the meantime, and a cached render of the smaller corpus must not be
// served for the grown one. The revision is fixed at materialization time
// (deltas only apply before the registry publishes a study), so one
// resident study always yields one cache identity.
func cacheID(key StudyKey, st *repro.Study) string {
	return key.String() + ",rev=" + strconv.FormatUint(st.Revision(), 10)
}

// serveCached answers the request from the exhibit cache, rendering with
// compute on a miss. The cache key must uniquely determine the bytes (it
// embeds the study key and route); the X-Cache header reports hit, miss,
// coalesced, or stale. Render time for actual computes feeds
// whpcd_render_seconds. The request context propagates into the render:
// an expired deadline aborts before computing (504), and a stale-store
// copy is served with a Warning header when a re-render fails.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, cacheKey, contentType string, compute func() ([]byte, error)) {
	body, outcome, err := s.cache.Get(r.Context(), cacheKey, func(ctx context.Context) ([]byte, error) {
		if injected, ferr := s.renderFault(ctx, chaos.PointRender); injected {
			return nil, ferr
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		start := s.clock.Now()
		b, err := compute()
		s.met.renders.ObserveDuration(s.clock.Now().Sub(start))
		return b, err
	})
	if err != nil {
		s.writeError(w, err)
		return
	}
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("Content-Length", strconv.Itoa(len(body)))
	h.Set("X-Cache", outcome)
	if outcome == CacheStale {
		h.Set("Warning", `110 whpcd "stale: re-render failed; bytes are from an earlier identical render"`)
		s.logError(fmt.Sprintf("stale serve for %s", cacheKey))
	}
	_, _ = w.Write(body)
}

// marshalJSON renders v with a trailing newline, matching curl-friendly
// output.
func marshalJSON(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// --- DTOs -------------------------------------------------------------

// studyDTO names the study a JSON payload was computed from.
type studyDTO struct {
	Seed    uint64 `json:"seed"`
	Corpus  string `json:"corpus"`
	Profile string `json:"profile"`
}

func dtoStudy(key StudyKey) studyDTO {
	p := key.Profile
	if p == "" {
		p = "none"
	}
	return studyDTO{Seed: key.Seed, Corpus: key.Corpus, Profile: p}
}

// proportionDTO is a k-of-n proportion; ratio is null when no trials carry
// known gender (NaN is unrepresentable in JSON).
type proportionDTO struct {
	Women int `json:"women"`
	Known int `json:"known"`
	Ratio any `json:"ratio"`
}

func dtoProportion(p stats.Proportion) proportionDTO {
	d := proportionDTO{Women: p.K, Known: p.N}
	if r := p.Ratio(); !math.IsNaN(r) {
		d.Ratio = r
	}
	return d
}

type confFARDTO struct {
	Conference string        `json:"conference"`
	Name       string        `json:"name"`
	FAR        proportionDTO `json:"far"`
	Unknown    int           `json:"unknown"`
}

type farDTO struct {
	Study         studyDTO      `json:"study"`
	Overall       proportionDTO `json:"overall"`
	Unknown       int           `json:"unknown"`
	UniqueAuthors int           `json:"unique_authors"`
	TotalSlots    int           `json:"total_slots"`
	PerConference []confFARDTO  `json:"per_conference"`
}

type roleCellDTO struct {
	Conference string        `json:"conference"`
	Name       string        `json:"name"`
	Role       string        `json:"role"`
	Ratio      proportionDTO `json:"ratio"`
}

type roleOverallDTO struct {
	Role  string        `json:"role"`
	Ratio proportionDTO `json:"ratio"`
}

type rolesDTO struct {
	Study       studyDTO         `json:"study"`
	Overall     []roleOverallDTO `json:"overall"`
	Cells       []roleCellDTO    `json:"cells"`
	OverallLead proportionDTO    `json:"overall_lead"`
	OverallLast proportionDTO    `json:"overall_last"`
}

type observationDTO struct {
	Name        string  `json:"name"`
	Effect      float64 `json:"effect"`
	P           float64 `json:"p"`
	Significant bool    `json:"significant"`
}

func dtoObservations(obs []core.Observation) []observationDTO {
	out := make([]observationDTO, 0, len(obs))
	for _, o := range obs {
		out = append(out, observationDTO{Name: o.Name, Effect: o.Effect, P: o.P, Significant: o.Significant})
	}
	return out
}

type sensitivityDTO struct {
	Study        studyDTO         `json:"study"`
	UnknownCount int              `json:"unknown_count"`
	Stable       bool             `json:"stable"`
	Flips        []string         `json:"flips"`
	Baseline     []observationDTO `json:"baseline"`
	AllWomen     []observationDTO `json:"all_women"`
	AllMen       []observationDTO `json:"all_men"`
}

type exhibitDTO struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// --- handlers ---------------------------------------------------------

// handleHealthz reports liveness; it touches no study so it stays cheap
// and never blocks on a materialization.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	_, _ = io.WriteString(w, "{\"status\":\"ok\"}\n")
}

// handleFAR serves the §3.1 female author ratios as JSON.
func (s *Server) handleFAR(w http.ResponseWriter, r *http.Request) {
	st, key, ok := s.study(w, r)
	if !ok {
		return
	}
	s.serveCached(w, r, "far|"+cacheID(key, st), "application/json; charset=utf-8", func() ([]byte, error) {
		far := st.FAR()
		dto := farDTO{
			Study:         dtoStudy(key),
			Overall:       dtoProportion(far.Overall),
			Unknown:       far.Unknown,
			UniqueAuthors: far.UniqueN,
			TotalSlots:    far.TotalSlots,
			PerConference: make([]confFARDTO, 0, len(far.PerConf)),
		}
		for _, c := range far.PerConf {
			dto.PerConference = append(dto.PerConference, confFARDTO{
				Conference: string(c.Conf), Name: c.Name,
				FAR: dtoProportion(c.Ratio), Unknown: c.Unknown,
			})
		}
		return marshalJSON(dto)
	})
}

// handleRoles serves the Fig 1 role-representation matrix as JSON. The
// overall map iterates dataset.Roles() order so the payload is
// byte-deterministic.
func (s *Server) handleRoles(w http.ResponseWriter, r *http.Request) {
	st, key, ok := s.study(w, r)
	if !ok {
		return
	}
	s.serveCached(w, r, "roles|"+cacheID(key, st), "application/json; charset=utf-8", func() ([]byte, error) {
		tab := st.Roles()
		dto := rolesDTO{
			Study:       dtoStudy(key),
			Overall:     make([]roleOverallDTO, 0, len(tab.Overall)),
			Cells:       make([]roleCellDTO, 0, len(tab.Cells)),
			OverallLead: dtoProportion(tab.OverallLead),
			OverallLast: dtoProportion(tab.OverallLast),
		}
		for _, role := range dataset.Roles() {
			if p, ok := tab.Overall[role]; ok {
				dto.Overall = append(dto.Overall, roleOverallDTO{Role: role.String(), Ratio: dtoProportion(p)})
			}
		}
		for _, c := range tab.Cells {
			dto.Cells = append(dto.Cells, roleCellDTO{
				Conference: string(c.Conf), Name: c.Name,
				Role: c.Role.String(), Ratio: dtoProportion(c.Ratio),
			})
		}
		return marshalJSON(dto)
	})
}

// handleSensitivity serves the unknown-gender sensitivity analysis as JSON.
func (s *Server) handleSensitivity(w http.ResponseWriter, r *http.Request) {
	st, key, ok := s.study(w, r)
	if !ok {
		return
	}
	s.serveCached(w, r, "sensitivity|"+cacheID(key, st), "application/json; charset=utf-8", func() ([]byte, error) {
		res, err := st.Sensitivity()
		if err != nil {
			return nil, err
		}
		dto := sensitivityDTO{
			Study:        dtoStudy(key),
			UnknownCount: res.UnknownCount,
			Stable:       res.Stable,
			Flips:        res.Flips,
			Baseline:     dtoObservations(res.Baseline),
			AllWomen:     dtoObservations(res.AllWomen),
			AllMen:       dtoObservations(res.AllMen),
		}
		if dto.Flips == nil {
			dto.Flips = []string{}
		}
		return marshalJSON(dto)
	})
}

// handleExhibitList serves the study's exhibit catalog (IDs and titles).
func (s *Server) handleExhibitList(w http.ResponseWriter, r *http.Request) {
	st, key, ok := s.study(w, r)
	if !ok {
		return
	}
	s.serveCached(w, r, "exhibits|"+cacheID(key, st), "application/json; charset=utf-8", func() ([]byte, error) {
		exhibits := st.Exhibits()
		out := make([]exhibitDTO, 0, len(exhibits))
		for _, e := range exhibits {
			out = append(out, exhibitDTO{ID: e.ID, Title: e.Title})
		}
		return marshalJSON(struct {
			Study    studyDTO     `json:"study"`
			Exhibits []exhibitDTO `json:"exhibits"`
		}{dtoStudy(key), out})
	})
}

// handleExhibit serves one exhibit as text, exactly as WriteReport would
// print its section body.
func (s *Server) handleExhibit(w http.ResponseWriter, r *http.Request) {
	st, key, ok := s.study(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	ex, ok := st.Exhibit(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown exhibit %q (list them at /v1/exhibits)", id), http.StatusNotFound)
		return
	}
	s.serveCached(w, r, "exhibit|"+id+"|"+cacheID(key, st), "text/plain; charset=utf-8", func() ([]byte, error) {
		var buf bytes.Buffer
		if err := ex.Render(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// handleReport serves the complete report — byte-identical to
// Study.WriteReport on the same study.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	st, key, ok := s.study(w, r)
	if !ok {
		return
	}
	s.serveCached(w, r, "report|"+cacheID(key, st), "text/plain; charset=utf-8", func() ([]byte, error) {
		var buf bytes.Buffer
		if err := st.WriteReport(&buf); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}

// handleCSV serves one machine-readable exhibit family as CSV; the name
// segment matches the file stems ExportCSVs writes (with or without the
// .csv suffix).
func (s *Server) handleCSV(w http.ResponseWriter, r *http.Request) {
	st, key, ok := s.study(w, r)
	if !ok {
		return
	}
	name := strings.TrimSuffix(r.PathValue("name"), ".csv")
	exp, ok := report.CSVExportByName(st.Dataset(), name)
	if !ok {
		names := make([]string, 0, 8)
		for _, e := range report.CSVExports(st.Dataset()) {
			names = append(names, e.Name)
		}
		http.Error(w, fmt.Sprintf("unknown csv export %q (have %v)", name, names), http.StatusNotFound)
		return
	}
	s.serveCached(w, r, "csv|"+name+"|"+cacheID(key, st), "text/csv; charset=utf-8", func() ([]byte, error) {
		rows, err := exp.Rows()
		if err != nil {
			return nil, err
		}
		var buf bytes.Buffer
		cw := csv.NewWriter(&buf)
		if err := cw.WriteAll(rows); err != nil {
			return nil, err
		}
		cw.Flush()
		if err := cw.Error(); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	})
}
