package serve

import (
	"context"
	"errors"
	"sync"
)

// ErrRenderPanicked is what coalesced waiters receive when the caller
// actually executing their shared render panicked. The panic itself
// propagates up the executing caller's stack (where the middleware recover
// counts it in whpcd_panics_total); waiters get this typed error instead
// of a hang or a second panic.
var ErrRenderPanicked = errors.New("serve: shared render panicked")

// group is a minimal singleflight: concurrent Do calls with the same key
// share a single execution of fn. It is the dedup layer under the exhibit
// cache — 32 simultaneous requests for an uncached report trigger exactly
// one render, and the other 31 block until its bytes are ready.
//
// Two fail-operational guarantees distinguish it from the happy-path
// version: a waiter's context expiring abandons the wait (the render keeps
// running for whoever remains), and a panicking fn releases its waiters
// with ErrRenderPanicked before the panic resumes unwinding.
type group struct {
	mu sync.Mutex
	m  map[string]*call
}

// call is one in-flight execution. done closes exactly once, after val and
// err are final; waiters select on it against their own context.
type call struct {
	done chan struct{}
	val  []byte
	err  error
}

// Do executes fn once per key among concurrent callers, returning the
// shared result. shared reports whether this caller piggybacked on another
// caller's execution. fn runs with no group lock held.
//
// If ctx expires while piggybacking, Do returns ctx.Err() immediately —
// the in-flight execution is NOT cancelled, because other waiters (and the
// cache) still want its result. If fn panics, the key is released, every
// waiter receives ErrRenderPanicked, and the panic continues up the
// executing caller's stack.
func (g *group) Do(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		// A finished render wins over a cancelled context: when both
		// channels are ready, Go's select picks randomly, and replay
		// determinism requires completed bytes to be served, not raced.
		select {
		case <-c.done:
			return c.val, true, c.err
		default:
		}
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &call{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	finished := false
	defer func() {
		if !finished {
			// fn panicked: fail the latch before the panic unwinds further,
			// so no waiter is left blocked on done.
			c.val, c.err = nil, ErrRenderPanicked
		}
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	finished = true
	return c.val, false, c.err
}
