package serve

import "sync"

// group is a minimal singleflight: concurrent Do calls with the same key
// share a single execution of fn. It is the dedup layer under the exhibit
// cache — 32 simultaneous requests for an uncached report trigger exactly
// one render, and the other 31 block until its bytes are ready.
type group struct {
	mu sync.Mutex
	m  map[string]*call
}

// call is one in-flight execution.
type call struct {
	wg  sync.WaitGroup
	val []byte
	err error
}

// Do executes fn once per key among concurrent callers, returning the
// shared result. shared reports whether this caller piggybacked on another
// caller's execution. fn runs with no group lock held.
func (g *group) Do(key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*call)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.wg.Wait()
		return c.val, true, c.err
	}
	c := new(call)
	c.wg.Add(1)
	g.m[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	return c.val, false, c.err
}
