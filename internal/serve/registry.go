package serve

import (
	"container/list"
	"context"
	"errors"
	"strconv"
	"strings"
	"sync"

	"repro"
	"repro/internal/obs"
)

// ErrBuildPanicked is what coalesced waiters receive when the caller
// actually materializing their shared study panicked. The panic itself
// propagates up the building caller's stack (where the middleware recover
// counts it); waiters get this typed error instead of a hang.
var ErrBuildPanicked = errors.New("serve: study materialization panicked")

// Corpus names accepted by the API: each maps to one of the calibrated
// synth configurations.
const (
	CorpusDefault  = "default"  // the paper's main 2017 nine-conference corpus
	CorpusFlagship = "flagship" // the §3.4 SC/ISC 2016-2020 series
	CorpusExtended = "extended" // the future-work extended systems corpus
)

// Corpora lists the accepted corpus names in a fixed order.
func Corpora() []string {
	return []string{CorpusDefault, CorpusFlagship, CorpusExtended}
}

// StudyKey identifies one materialized Study: the generator seed, the
// corpus calibration, and the fault profile of the harvested construction
// path ("" for a pristine, unharvested corpus). Studies are immutable once
// built, so a key fully determines every byte any exhibit of that study
// will ever render — which is what lets the exhibit cache key on it.
type StudyKey struct {
	Seed    uint64
	Corpus  string
	Profile string
}

// String renders the key in a stable, human-readable form used in cache
// keys and access logs.
func (k StudyKey) String() string {
	p := k.Profile
	if p == "" {
		p = "none"
	}
	var b strings.Builder
	b.WriteString("seed=")
	b.WriteString(strconv.FormatUint(k.Seed, 10))
	b.WriteString(",corpus=")
	b.WriteString(k.Corpus)
	b.WriteString(",profile=")
	b.WriteString(p)
	return b.String()
}

// studyEntry materializes its study at most once. The done channel closes
// when materialization finished; waiting happens outside every registry
// lock, so a slow corpus generation never blocks lookups of other keys.
type studyEntry struct {
	key   StudyKey
	done  chan struct{}
	study *repro.Study
	err   error
}

// StudyRegistry lazily materializes and LRU-bounds Study instances per
// StudyKey. Get on a resident key is a map hit; Get on a new key generates
// the corpus (and runs the harvest, for fault-profile keys) exactly once
// even under concurrent identical requests, then caches the study until it
// is evicted as least-recently-used.
type StudyRegistry struct {
	cap   int
	build func(StudyKey) (*repro.Study, error)

	// OnEvict, when set, is called (outside the registry lock) with the key
	// of every entry dropped by LRU pressure, so layers holding derived
	// state per study — the shard cluster's placements — can release it.
	// Set before first use; not synchronized afterwards.
	OnEvict func(StudyKey)

	mu      sync.Mutex
	entries map[StudyKey]*list.Element
	lru     *list.List // front = most recently used; values are *studyEntry

	materialized *obs.Counter
	evictions    *obs.Counter
	resident     *obs.Gauge
}

// NewStudyRegistry returns a registry bounded to capacity resident studies
// (minimum 1), materializing misses with build and reporting occupancy
// through the given metrics (any of which may be nil).
func NewStudyRegistry(capacity int, build func(StudyKey) (*repro.Study, error), materialized, evictions *obs.Counter, resident *obs.Gauge) *StudyRegistry {
	if capacity < 1 {
		capacity = 1
	}
	if materialized == nil {
		materialized = new(obs.Counter)
	}
	if evictions == nil {
		evictions = new(obs.Counter)
	}
	if resident == nil {
		resident = new(obs.Gauge)
	}
	return &StudyRegistry{
		cap:          capacity,
		build:        build,
		entries:      make(map[StudyKey]*list.Element),
		lru:          list.New(),
		materialized: materialized,
		evictions:    evictions,
		resident:     resident,
	}
}

// Get returns the study for key, materializing it on first use. Concurrent
// Gets for the same key share one materialization. A failed materialization
// is not retained: the next Get for that key tries again.
//
// ctx bounds only this caller's wait on an in-flight materialization; the
// build itself is never cancelled, because other waiters (and future
// requests) still want the study. If the build panics, the latch is failed
// with ErrBuildPanicked before the panic resumes unwinding, so no waiter
// hangs and the panic is still counted by the middleware recover.
func (r *StudyRegistry) Get(ctx context.Context, key StudyKey) (*repro.Study, error) {
	e, fresh := r.entry(key)
	if fresh {
		finished := false
		defer func() {
			if !finished {
				e.err = ErrBuildPanicked
				r.forget(key, e)
				close(e.done)
			}
		}()
		e.study, e.err = r.build(key)
		finished = true
		if e.err == nil {
			r.materialized.Inc()
		}
		close(e.done)
	} else {
		// A finished materialization wins over a cancelled context: when
		// both channels are ready, Go's select picks randomly, and replay
		// determinism requires completed work to be served, not raced.
		select {
		case <-e.done:
		default:
			select {
			case <-e.done:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	if e.err != nil {
		r.forget(key, e)
		return nil, e.err
	}
	return e.study, nil
}

// Len returns the number of resident entries (materialized or in flight).
func (r *StudyRegistry) Len() int {
	r.mu.Lock()
	n := r.lru.Len()
	r.mu.Unlock()
	return n
}

// entry returns the LRU entry for key, creating (and possibly evicting)
// under the registry lock. fresh reports that this caller must materialize.
func (r *StudyRegistry) entry(key StudyKey) (e *studyEntry, fresh bool) {
	r.mu.Lock()
	if el, ok := r.entries[key]; ok {
		r.lru.MoveToFront(el)
		e = el.Value.(*studyEntry)
		r.mu.Unlock()
		return e, false
	}
	e = &studyEntry{key: key, done: make(chan struct{})}
	r.entries[key] = r.lru.PushFront(e)
	var evicted []StudyKey
	for r.lru.Len() > r.cap {
		oldest := r.lru.Back()
		victim := oldest.Value.(*studyEntry)
		r.lru.Remove(oldest)
		delete(r.entries, victim.key)
		r.evictions.Inc()
		evicted = append(evicted, victim.key)
	}
	r.resident.Set(int64(r.lru.Len()))
	r.mu.Unlock()
	if r.OnEvict != nil {
		for _, k := range evicted {
			r.OnEvict(k)
		}
	}
	return e, true
}

// forget drops a failed materialization so the error is not pinned in the
// LRU (the entry may already have been evicted or replaced; only the exact
// entry is removed).
func (r *StudyRegistry) forget(key StudyKey, e *studyEntry) {
	r.mu.Lock()
	if el, ok := r.entries[key]; ok && el.Value.(*studyEntry) == e {
		r.lru.Remove(el)
		delete(r.entries, key)
		r.resident.Set(int64(r.lru.Len()))
	}
	r.mu.Unlock()
}
