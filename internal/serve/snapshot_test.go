package serve

import (
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/snap"
)

// writeTestSnapshot saves the testSeed default-corpus snapshot under the
// registry's warm-boot naming convention and returns the directory.
func writeTestSnapshot(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	study, err := repro.NewStudy(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := study.SaveSnapshot(filepath.Join(dir, snap.CorpusFileName(CorpusDefault, testSeed))); err != nil {
		t.Fatal(err)
	}
	return dir
}

// metricValue scrapes one counter from the /metrics exposition text.
func metricValue(t *testing.T, s *Server, name string) string {
	t.Helper()
	body := get(t, s, "/metrics").Body.String()
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, name+" ") {
			return strings.TrimPrefix(line, name+" ")
		}
	}
	t.Fatalf("metric %s not found in /metrics", name)
	return ""
}

// TestSnapshotWarmBoot: with a valid snapshot present, the registry must
// serve from it (loads counter increments) and the response bytes must be
// identical to a synthesized study's.
func TestSnapshotWarmBoot(t *testing.T) {
	leakcheck.Check(t)
	dir := writeTestSnapshot(t)
	warm := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Metrics = obs.NewRegistry()
	})
	cold := newTestServer(t, nil)

	warmRec := get(t, warm, "/v1/far")
	coldRec := get(t, cold, "/v1/far")
	if warmRec.Code != http.StatusOK || coldRec.Code != http.StatusOK {
		t.Fatalf("status warm=%d cold=%d, want 200/200", warmRec.Code, coldRec.Code)
	}
	if warmRec.Body.String() != coldRec.Body.String() {
		t.Error("/v1/far from a snapshot-loaded study differs from a synthesized one")
	}
	if got := metricValue(t, warm, "whpcd_snapshot_loads_total"); got != "1" {
		t.Errorf("whpcd_snapshot_loads_total = %s, want 1", got)
	}
	if got := metricValue(t, warm, "whpcd_snapshot_fallbacks_total"); got != "0" {
		t.Errorf("whpcd_snapshot_fallbacks_total = %s, want 0", got)
	}
}

// TestSnapshotFallbackOnMiss: a SnapshotDir without the requested file
// must synthesize and count a fallback, not fail the request.
func TestSnapshotFallbackOnMiss(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = t.TempDir()
		c.Metrics = obs.NewRegistry()
	})
	if rec := get(t, s, "/v1/far"); rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if got := metricValue(t, s, "whpcd_snapshot_fallbacks_total"); got != "1" {
		t.Errorf("whpcd_snapshot_fallbacks_total = %s, want 1", got)
	}
	if got := metricValue(t, s, "whpcd_snapshot_loads_total"); got != "0" {
		t.Errorf("whpcd_snapshot_loads_total = %s, want 0", got)
	}
}

// TestSnapshotFallbackOnCorruption: a bit-flipped snapshot must fail
// checksum validation and degrade to synthesis with identical bytes.
func TestSnapshotFallbackOnCorruption(t *testing.T) {
	dir := writeTestSnapshot(t)
	path := filepath.Join(dir, snap.CorpusFileName(CorpusDefault, testSeed))
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Metrics = obs.NewRegistry()
	})
	cold := newTestServer(t, nil)
	rec := get(t, s, "/v1/far")
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if rec.Body.String() != get(t, cold, "/v1/far").Body.String() {
		t.Error("fallback response differs from a synthesized study's")
	}
	if got := metricValue(t, s, "whpcd_snapshot_fallbacks_total"); got != "1" {
		t.Errorf("whpcd_snapshot_fallbacks_total = %s, want 1", got)
	}
}

// TestSnapshotNotUsedForHarvestedStudies: profile-carrying keys must
// synthesize (the harvest is the product), never touch the snapshot dir.
func TestSnapshotNotUsedForHarvestedStudies(t *testing.T) {
	dir := writeTestSnapshot(t)
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Metrics = obs.NewRegistry()
	})
	if rec := get(t, s, "/v1/far?profile=clean"); rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if got := metricValue(t, s, "whpcd_snapshot_loads_total"); got != "0" {
		t.Errorf("whpcd_snapshot_loads_total = %s, want 0 for a harvested study", got)
	}
	if got := metricValue(t, s, "whpcd_snapshot_fallbacks_total"); got != "0" {
		t.Errorf("whpcd_snapshot_fallbacks_total = %s, want 0 for a harvested study", got)
	}
}
