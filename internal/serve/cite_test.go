package serve

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
	"repro/internal/obs"
)

// postCite drives one /v1/cite request through the full middleware chain.
func postCite(t *testing.T, s *Server, target, body string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, httptest.NewRequest("POST", target, strings.NewReader(body)))
	return rec
}

// TestCiteByteIdentity: /v1/cite serves both views byte-identical to the
// exhibit queries run directly against the same study, defaults to the
// flow view, memoizes renders, and counts served views on
// whpcd_cite_queries_total.
func TestCiteByteIdentity(t *testing.T) {
	study, err := repro.NewStudy(testSeed)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, func(c *Config) { c.Metrics = obs.NewRegistry() })

	for view, name := range citeViews {
		cold := postCite(t, s, "/v1/cite", `{"view":"`+view+`"}`)
		if cold.Code != http.StatusOK {
			t.Fatalf("view %s: status = %d: %s", view, cold.Code, cold.Body.String())
		}
		if got := cold.Header().Get("X-Cache"); got != CacheMiss {
			t.Errorf("view %s: cold X-Cache = %q, want %q", view, got, CacheMiss)
		}
		if ct := cold.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/csv") {
			t.Errorf("view %s: Content-Type = %q, want text/csv", view, ct)
		}
		want := exhibitQueryCSV(t, study, name)
		if !bytes.Equal(cold.Body.Bytes(), want) {
			t.Errorf("view %s: /v1/cite differs from the direct %s exhibit query", view, name)
		}
		warm := postCite(t, s, "/v1/cite", `{"view":"`+view+`"}`)
		if got := warm.Header().Get("X-Cache"); got != CacheHit {
			t.Errorf("view %s: warm X-Cache = %q, want %q", view, got, CacheHit)
		}
		if !bytes.Equal(warm.Body.Bytes(), want) {
			t.Errorf("view %s: cached /v1/cite differs from the cold render", view)
		}
	}

	// The empty body defaults to the flow view.
	def := postCite(t, s, "/v1/cite", "")
	if def.Code != http.StatusOK {
		t.Fatalf("default view: status = %d: %s", def.Code, def.Body.String())
	}
	if !bytes.Equal(def.Body.Bytes(), exhibitQueryCSV(t, study, "cite_flow")) {
		t.Error("default /v1/cite differs from the flow view")
	}

	// 2 views x 2 requests + the default = 5 served renders.
	if got := metricValue(t, s, "whpcd_cite_queries_total"); got != "5" {
		t.Errorf("whpcd_cite_queries_total = %s, want 5", got)
	}
}

// TestCiteUnknownView: an unrecognized view is the client's 400 with the
// structured error envelope.
func TestCiteUnknownView(t *testing.T) {
	s := newTestServer(t, nil)
	rec := postCite(t, s, "/v1/cite", `{"view":"sideways"}`)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", rec.Code)
	}
	dto := decodeQueryError(t, rec)
	if !strings.Contains(dto.Error, "sideways") {
		t.Errorf("error %q does not name the bad view", dto.Error)
	}
}

// TestCiteClusterByteIdentical: the federated /v1/cite must serve exactly
// the single-process bytes at every shard count — the citation exhibits
// use only count and ratio aggregates, which merge exactly.
func TestCiteClusterByteIdentical(t *testing.T) {
	want := map[string][]byte{}
	single := newTestServer(t, nil)
	for view := range citeViews {
		rec := postCite(t, single, "/v1/cite", `{"view":"`+view+`"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("single-process view %s: status = %d: %s", view, rec.Code, rec.Body.String())
		}
		want[view] = rec.Body.Bytes()
	}
	for _, shards := range []int{1, 4} {
		s := newTestServer(t, func(c *Config) {
			c.ClusterShards = shards
			c.Metrics = obs.NewRegistry()
		})
		for view := range citeViews {
			rec := postCite(t, s, "/v1/cite", `{"view":"`+view+`"}`)
			if rec.Code != http.StatusOK {
				t.Fatalf("shards=%d view %s: status = %d: %s", shards, view, rec.Code, rec.Body.String())
			}
			if !bytes.Equal(rec.Body.Bytes(), want[view]) {
				t.Errorf("shards=%d view %s: federated /v1/cite differs from single-process", shards, view)
			}
		}
	}
}

// TestCiteDeltaApplied: a snapshot dir holding a base snapshot plus a year
// delta must serve citation flows of the grown corpus — byte-identical to
// a study resynthesized with the extra year.
func TestCiteDeltaApplied(t *testing.T) {
	dir := writeDeltaDir(t)
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.Metrics = obs.NewRegistry()
	})
	grown := grownFlagship(t)
	for view, name := range citeViews {
		rec := postCite(t, s, "/v1/cite?corpus=flagship", `{"view":"`+view+`"}`)
		if rec.Code != http.StatusOK {
			t.Fatalf("view %s: status = %d: %s", view, rec.Code, rec.Body.String())
		}
		if !bytes.Equal(rec.Body.Bytes(), exhibitQueryCSV(t, grown, name)) {
			t.Errorf("view %s: /v1/cite differs from the resynthesized grown corpus", view)
		}
	}
}
