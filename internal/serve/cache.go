package serve

import (
	"container/list"
	"context"
	"errors"
	"sync"

	"repro/internal/obs"
)

// Cache outcomes, exposed to clients in the X-Cache response header and to
// the access log.
const (
	// CacheHit: the bytes were already resident.
	CacheHit = "hit"
	// CacheMiss: this request rendered the exhibit.
	CacheMiss = "miss"
	// CacheCoalesced: another in-flight request was already rendering the
	// same exhibit; this one waited for its bytes (singleflight).
	CacheCoalesced = "coalesced"
	// CacheStale: the render failed, but a previously rendered copy was
	// still held in the stale store and was served instead (degraded mode;
	// the response carries a Warning header). Because renders are
	// deterministic per key, stale bytes are identical to what a successful
	// re-render would have produced — staleness here means "rendered by an
	// earlier request", never "out of date".
	CacheStale = "stale"
)

// ExhibitCache memoizes rendered exhibit bytes under an LRU bound, with
// singleflight deduplication: concurrent requests for the same uncached key
// trigger exactly one render. Because every exhibit render is deterministic
// for a given study, a cached response is byte-identical to a fresh one —
// the cache changes latency, never content.
//
// A secondary stale store (same capacity) retains bytes evicted or purged
// from the primary LRU. It is consulted only when a re-render fails: the
// stale copy is served with the CacheStale outcome instead of surfacing
// the error (stale-while-revalidate degraded mode). Context errors are
// exempt — a caller whose deadline expired gets the context error, not a
// consolation payload.
type ExhibitCache struct {
	flight group

	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry

	stale    map[string]*list.Element
	staleLRU *list.List // same discipline as lru; values are *cacheEntry

	hits        *obs.Counter
	misses      *obs.Counter
	coalesced   *obs.Counter
	evictions   *obs.Counter
	staleServes *obs.Counter
	resident    *obs.Gauge
}

type cacheEntry struct {
	key string
	val []byte
}

// cacheCounters bundles the cache's metrics; any field may be nil.
type cacheCounters struct {
	hits, misses, coalesced, evictions, staleServes *obs.Counter
	resident                                        *obs.Gauge
}

// NewExhibitCache returns a cache bounded to capacity rendered exhibits
// (minimum 1).
func NewExhibitCache(capacity int, c cacheCounters) *ExhibitCache {
	if capacity < 1 {
		capacity = 1
	}
	if c.hits == nil {
		c.hits = new(obs.Counter)
	}
	if c.misses == nil {
		c.misses = new(obs.Counter)
	}
	if c.coalesced == nil {
		c.coalesced = new(obs.Counter)
	}
	if c.evictions == nil {
		c.evictions = new(obs.Counter)
	}
	if c.staleServes == nil {
		c.staleServes = new(obs.Counter)
	}
	if c.resident == nil {
		c.resident = new(obs.Gauge)
	}
	return &ExhibitCache{
		cap:         capacity,
		entries:     make(map[string]*list.Element),
		lru:         list.New(),
		stale:       make(map[string]*list.Element),
		staleLRU:    list.New(),
		hits:        c.hits,
		misses:      c.misses,
		coalesced:   c.coalesced,
		evictions:   c.evictions,
		staleServes: c.staleServes,
		resident:    c.resident,
	}
}

// Get returns the bytes for key, invoking compute at most once across all
// concurrent callers that miss. outcome is one of CacheHit, CacheMiss,
// CacheCoalesced, and CacheStale. Callers must not mutate the returned
// slice. The misses counter increments exactly when compute actually runs,
// so it doubles as the render count. Errors are returned to every
// coalesced caller and never cached.
//
// ctx bounds only this caller's wait on a coalesced render and is passed
// through to compute; an expired ctx abandons the wait without cancelling
// the shared render. When compute fails with a non-context error and the
// stale store still holds bytes for key, those bytes are served with the
// CacheStale outcome instead of the error.
func (c *ExhibitCache) Get(ctx context.Context, key string, compute func(context.Context) ([]byte, error)) (val []byte, outcome string, err error) {
	if b, ok := c.lookup(key); ok {
		c.hits.Inc()
		return b, CacheHit, nil
	}
	computed := false
	val, shared, err := c.flight.Do(ctx, key, func() ([]byte, error) {
		// Re-check under the flight: a render that completed between our
		// lookup and Do has already inserted the bytes.
		if b, ok := c.lookup(key); ok {
			return b, nil
		}
		computed = true
		c.misses.Inc()
		b, err := compute(ctx)
		if err != nil {
			return nil, err
		}
		c.insert(key, b)
		return b, nil
	})
	if err != nil {
		if !isContextError(err) {
			if b, ok := c.staleLookup(key); ok {
				c.staleServes.Inc()
				return b, CacheStale, nil
			}
		}
		return nil, CacheMiss, err
	}
	switch {
	case shared:
		c.coalesced.Inc()
		return val, CacheCoalesced, nil
	case computed:
		return val, CacheMiss, nil
	default:
		c.hits.Inc()
		return val, CacheHit, nil
	}
}

// isContextError reports whether err is (or wraps) a context cancellation
// or deadline expiry — failures where the requester is gone and degraded
// serving is pointless.
func isContextError(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Len returns the number of resident entries.
func (c *ExhibitCache) Len() int {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return n
}

// StaleLen returns the number of entries held only in the stale store.
func (c *ExhibitCache) StaleLen() int {
	c.mu.Lock()
	n := c.staleLRU.Len()
	c.mu.Unlock()
	return n
}

// Purge drops every resident entry (used by benchmarks to measure cold
// renders); in-flight computes are unaffected. Purged bytes move to the
// stale store, so a purge never degrades fail-operational coverage — it
// only forces the next request per key to re-render.
func (c *ExhibitCache) Purge() {
	c.mu.Lock()
	// Walk the LRU list (deterministic order), not the map, spilling each
	// entry into the stale store before dropping the primary.
	for el := c.lru.Back(); el != nil; el = el.Prev() {
		c.spill(el.Value.(*cacheEntry))
	}
	c.entries = make(map[string]*list.Element)
	c.lru = list.New()
	c.resident.Set(0)
	c.mu.Unlock()
}

// lookup returns the cached bytes for key, refreshing its recency.
func (c *ExhibitCache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.lru.MoveToFront(el)
	b := el.Value.(*cacheEntry).val
	c.mu.Unlock()
	return b, true
}

// staleLookup returns the stale-store bytes for key, if any.
func (c *ExhibitCache) staleLookup(key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.stale[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.staleLRU.MoveToFront(el)
	b := el.Value.(*cacheEntry).val
	c.mu.Unlock()
	return b, true
}

// insert stores key's bytes, evicting least-recently-used entries over
// capacity (evicted bytes spill into the stale store). A fresh render
// supersedes any stale copy of the same key.
func (c *ExhibitCache) insert(key string, val []byte) {
	c.mu.Lock()
	if el, ok := c.stale[key]; ok {
		c.staleLRU.Remove(el)
		delete(c.stale, key)
	}
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		entry := oldest.Value.(*cacheEntry)
		delete(c.entries, entry.key)
		c.spill(entry)
		c.evictions.Inc()
	}
	c.resident.Set(int64(c.lru.Len()))
	c.mu.Unlock()
}

// spill moves an entry into the stale store, bounded to the same capacity.
// Callers must hold c.mu.
func (c *ExhibitCache) spill(e *cacheEntry) {
	if el, ok := c.stale[e.key]; ok {
		c.staleLRU.MoveToFront(el)
		el.Value.(*cacheEntry).val = e.val
		return
	}
	c.stale[e.key] = c.staleLRU.PushFront(e)
	for c.staleLRU.Len() > c.cap {
		oldest := c.staleLRU.Back()
		c.staleLRU.Remove(oldest)
		delete(c.stale, oldest.Value.(*cacheEntry).key)
	}
}
