package serve

import (
	"container/list"
	"sync"

	"repro/internal/obs"
)

// Cache outcomes, exposed to clients in the X-Cache response header and to
// the access log.
const (
	// CacheHit: the bytes were already resident.
	CacheHit = "hit"
	// CacheMiss: this request rendered the exhibit.
	CacheMiss = "miss"
	// CacheCoalesced: another in-flight request was already rendering the
	// same exhibit; this one waited for its bytes (singleflight).
	CacheCoalesced = "coalesced"
)

// ExhibitCache memoizes rendered exhibit bytes under an LRU bound, with
// singleflight deduplication: concurrent requests for the same uncached key
// trigger exactly one render. Because every exhibit render is deterministic
// for a given study, a cached response is byte-identical to a fresh one —
// the cache changes latency, never content.
type ExhibitCache struct {
	flight group

	mu      sync.Mutex
	cap     int
	entries map[string]*list.Element
	lru     *list.List // front = most recently used; values are *cacheEntry

	hits      *obs.Counter
	misses    *obs.Counter
	coalesced *obs.Counter
	evictions *obs.Counter
	resident  *obs.Gauge
}

type cacheEntry struct {
	key string
	val []byte
}

// cacheCounters bundles the cache's metrics; any field may be nil.
type cacheCounters struct {
	hits, misses, coalesced, evictions *obs.Counter
	resident                           *obs.Gauge
}

// NewExhibitCache returns a cache bounded to capacity rendered exhibits
// (minimum 1).
func NewExhibitCache(capacity int, c cacheCounters) *ExhibitCache {
	if capacity < 1 {
		capacity = 1
	}
	if c.hits == nil {
		c.hits = new(obs.Counter)
	}
	if c.misses == nil {
		c.misses = new(obs.Counter)
	}
	if c.coalesced == nil {
		c.coalesced = new(obs.Counter)
	}
	if c.evictions == nil {
		c.evictions = new(obs.Counter)
	}
	if c.resident == nil {
		c.resident = new(obs.Gauge)
	}
	return &ExhibitCache{
		cap:       capacity,
		entries:   make(map[string]*list.Element),
		lru:       list.New(),
		hits:      c.hits,
		misses:    c.misses,
		coalesced: c.coalesced,
		evictions: c.evictions,
		resident:  c.resident,
	}
}

// Get returns the bytes for key, invoking compute at most once across all
// concurrent callers that miss. outcome is one of CacheHit, CacheMiss, and
// CacheCoalesced. Callers must not mutate the returned slice. The misses
// counter increments exactly when compute actually runs, so it doubles as
// the render count. Errors are returned to every coalesced caller and
// never cached.
func (c *ExhibitCache) Get(key string, compute func() ([]byte, error)) (val []byte, outcome string, err error) {
	if b, ok := c.lookup(key); ok {
		c.hits.Inc()
		return b, CacheHit, nil
	}
	computed := false
	val, shared, err := c.flight.Do(key, func() ([]byte, error) {
		// Re-check under the flight: a render that completed between our
		// lookup and Do has already inserted the bytes.
		if b, ok := c.lookup(key); ok {
			return b, nil
		}
		computed = true
		c.misses.Inc()
		b, err := compute()
		if err != nil {
			return nil, err
		}
		c.insert(key, b)
		return b, nil
	})
	if err != nil {
		return nil, CacheMiss, err
	}
	switch {
	case shared:
		c.coalesced.Inc()
		return val, CacheCoalesced, nil
	case computed:
		return val, CacheMiss, nil
	default:
		c.hits.Inc()
		return val, CacheHit, nil
	}
}

// Len returns the number of resident entries.
func (c *ExhibitCache) Len() int {
	c.mu.Lock()
	n := c.lru.Len()
	c.mu.Unlock()
	return n
}

// Purge drops every resident entry (used by benchmarks to measure cold
// renders); in-flight computes are unaffected.
func (c *ExhibitCache) Purge() {
	c.mu.Lock()
	c.entries = make(map[string]*list.Element)
	c.lru = list.New()
	c.resident.Set(0)
	c.mu.Unlock()
}

// lookup returns the cached bytes for key, refreshing its recency.
func (c *ExhibitCache) lookup(key string) ([]byte, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if !ok {
		c.mu.Unlock()
		return nil, false
	}
	c.lru.MoveToFront(el)
	b := el.Value.(*cacheEntry).val
	c.mu.Unlock()
	return b, true
}

// insert stores key's bytes, evicting least-recently-used entries over
// capacity.
func (c *ExhibitCache) insert(key string, val []byte) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		el.Value.(*cacheEntry).val = val
		c.mu.Unlock()
		return
	}
	c.entries[key] = c.lru.PushFront(&cacheEntry{key: key, val: val})
	for c.lru.Len() > c.cap {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evictions.Inc()
	}
	c.resident.Set(int64(c.lru.Len()))
	c.mu.Unlock()
}
