package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"repro"
	"repro/internal/chaos"
	"repro/internal/query"
)

// maxQueryBytes bounds a /v1/query spec body. Real specs are a few hundred
// bytes; anything larger is rejected with 413 before parsing.
const maxQueryBytes = 64 << 10

// queryErrorDTO is the structured error envelope every /v1/query failure
// returns, so clients can branch on status without scraping prose.
type queryErrorDTO struct {
	Error  string `json:"error"`
	Status int    `json:"status"`
}

// writeQueryError emits the JSON error envelope with the given status.
func writeQueryError(w http.ResponseWriter, status int, msg string) {
	body, err := marshalJSON(queryErrorDTO{Error: msg, Status: status})
	if err != nil {
		http.Error(w, msg, status)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "application/json; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// runQuery executes one parsed query against the study: single-process
// through the engine, or — in cluster mode — scatter-gathered across the
// shard federation. Placement is lazy and idempotent, keyed by the study
// key's canonical string (the same identity the exhibit cache uses), so
// the first federated query of a study splits and places its frames and
// every later one reuses the placement. The two paths are byte-identical
// by the federation contract; cluster mode adds replica failover and the
// whpcd_shard_* telemetry.
func (s *Server) runQuery(ctx context.Context, key StudyKey, st *repro.Study, q *query.Query) (*query.Result, error) {
	if s.cluster == nil {
		return st.Query(q)
	}
	study := key.String()
	if err := s.cluster.Place(study, st.Frames()); err != nil {
		return nil, err
	}
	return s.cluster.Query(ctx, study, q)
}

// handleQuery serves POST /v1/query: an ad-hoc columnar query against the
// request's study. The spec arrives as JSON (see query.Parse); results are
// memoized through the exhibit cache keyed by the canonicalized spec hash,
// so semantically identical specs — whatever their field order or
// spelling — share one execution. Validation failures return 400, queries
// that match no rows 422, both as structured JSON; errors are never
// cached.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	key, err := s.parseStudyKey(r)
	if err != nil {
		writeQueryError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxQueryBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeQueryError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("query spec exceeds %d bytes", maxQueryBytes))
			return
		}
		writeQueryError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	q, err := query.Parse(body)
	if err != nil {
		writeQueryError(w, http.StatusBadRequest, err.Error())
		return
	}
	st, err := s.studies.Get(r.Context(), key)
	if err != nil {
		writeQueryError(w, errorStatus(err),
			fmt.Sprintf("materializing study (%s): %v", key, err))
		return
	}

	// The content type is a pure function of the requested format, so a
	// cache hit can set it without re-running the query.
	contentType := "application/json"
	if q.Format == query.FormatCSV {
		contentType = "text/csv; charset=utf-8"
	}
	cacheKey := "query|" + q.Hash() + "|" + cacheID(key, st)
	out, outcome, err := s.cache.Get(r.Context(), cacheKey, func(ctx context.Context) ([]byte, error) {
		if injected, ferr := s.renderFault(ctx, chaos.PointRender); injected {
			return nil, ferr
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		start := s.clock.Now()
		defer func() { s.met.renders.ObserveDuration(s.clock.Now().Sub(start)) }()
		res, err := s.runQuery(ctx, key, st, q)
		if err != nil {
			return nil, err
		}
		b, _, err := res.Encode(q.Format)
		return b, err
	})
	if err != nil {
		switch {
		case errors.Is(err, query.ErrInvalid):
			writeQueryError(w, http.StatusBadRequest, err.Error())
		case errors.Is(err, query.ErrEmpty):
			writeQueryError(w, http.StatusUnprocessableEntity, err.Error())
		default:
			writeQueryError(w, errorStatus(err), err.Error())
		}
		return
	}
	s.met.queries.With(q.Frame).Inc()
	h := w.Header()
	h.Set("Content-Type", contentType)
	h.Set("Content-Length", strconv.Itoa(len(out)))
	h.Set("X-Cache", outcome)
	if outcome == CacheStale {
		h.Set("Warning", `110 whpcd "stale: re-render failed; bytes are from an earlier identical render"`)
	}
	_, _ = w.Write(out)
}

// trendRequestDTO selects which longitudinal view POST /v1/trend serves.
type trendRequestDTO struct {
	// View is "far" (year-over-year female author ratio trajectories, the
	// default) or "retention" (cohort retention of role-holders across
	// editions).
	View string `json:"view"`
}

// trendViews maps each /v1/trend view to the exhibit query that serves it.
// Both queries are verified byte-for-byte against their report CSV
// families, so the route inherits the reproduction's correctness anchor.
var trendViews = map[string]string{
	"far":       "trend",
	"retention": "retention",
}

// handleTrend serves POST /v1/trend: the year-over-year trend workload as
// CSV. The body is an optional JSON {"view": "far"|"retention"}; an empty
// body serves the FAR view. Execution goes through runQuery, so in cluster
// mode the trend scatter-gathers across the shard federation (delta-grown
// frames are re-sliced on PartitionRows boundaries at placement time) and
// is byte-identical to the single-process path. Results memoize through
// the exhibit cache keyed by view and the revision-qualified study
// identity, so applying a delta invalidates exactly the trend renders
// whose inputs changed.
func (s *Server) handleTrend(w http.ResponseWriter, r *http.Request) {
	key, err := s.parseStudyKey(r)
	if err != nil {
		writeQueryError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxQueryBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeQueryError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("trend request exceeds %d bytes", maxQueryBytes))
			return
		}
		writeQueryError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	view := "far"
	if len(bytes.TrimSpace(body)) > 0 {
		var req trendRequestDTO
		if err := json.Unmarshal(body, &req); err != nil {
			writeQueryError(w, http.StatusBadRequest, fmt.Sprintf("parsing trend request: %v", err))
			return
		}
		if req.View != "" {
			view = req.View
		}
	}
	name, ok := trendViews[view]
	if !ok {
		writeQueryError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown trend view %q (have [far retention])", view))
		return
	}
	eq, ok := repro.ExhibitQueryByName(name)
	if !ok {
		writeQueryError(w, http.StatusInternalServerError,
			fmt.Sprintf("exhibit query %q is not registered", name))
		return
	}
	st, err := s.studies.Get(r.Context(), key)
	if err != nil {
		writeQueryError(w, errorStatus(err),
			fmt.Sprintf("materializing study (%s): %v", key, err))
		return
	}

	cacheKey := "trend|" + view + "|" + cacheID(key, st)
	out, outcome, err := s.cache.Get(r.Context(), cacheKey, func(ctx context.Context) ([]byte, error) {
		if injected, ferr := s.renderFault(ctx, chaos.PointRender); injected {
			return nil, ferr
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		start := s.clock.Now()
		defer func() { s.met.renders.ObserveDuration(s.clock.Now().Sub(start)) }()
		res, err := s.runQuery(ctx, key, st, eq.Query)
		if err != nil {
			return nil, err
		}
		return res.CSV()
	})
	if err != nil {
		writeQueryError(w, errorStatus(err), err.Error())
		return
	}
	s.met.queries.With(eq.Query.Frame).Inc()
	h := w.Header()
	h.Set("Content-Type", "text/csv; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(len(out)))
	h.Set("X-Cache", outcome)
	if outcome == CacheStale {
		h.Set("Warning", `110 whpcd "stale: re-render failed; bytes are from an earlier identical render"`)
	}
	_, _ = w.Write(out)
}

// citeRequestDTO selects which citation-flow view POST /v1/cite serves.
type citeRequestDTO struct {
	// View is "flow" (observed-versus-null citation flow per citing-team
	// gender composition, the default) or "gap" (the same comparison per
	// conference-year).
	View string `json:"view"`
}

// citeViews maps each /v1/cite view to the exhibit query that serves it.
// Both queries are verified byte-for-byte against their report CSV
// families, so the route inherits the reproduction's correctness anchor.
var citeViews = map[string]string{
	"flow": "cite_flow",
	"gap":  "cite_gap",
}

// handleCite serves POST /v1/cite: the gendered citation-flow workload as
// CSV. The body is an optional JSON {"view": "flow"|"gap"}; an empty body
// serves the flow view. Execution goes through runQuery, so in cluster
// mode the citations frame scatter-gathers across the shard federation
// and is byte-identical to the single-process path (the exhibits use only
// count and ratio aggregates, which merge exactly). Results memoize
// through the exhibit cache keyed by view and the revision-qualified
// study identity, so applying a delta invalidates exactly the citation
// renders whose inputs changed.
func (s *Server) handleCite(w http.ResponseWriter, r *http.Request) {
	key, err := s.parseStudyKey(r)
	if err != nil {
		writeQueryError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxQueryBytes))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeQueryError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("cite request exceeds %d bytes", maxQueryBytes))
			return
		}
		writeQueryError(w, http.StatusBadRequest, fmt.Sprintf("reading request body: %v", err))
		return
	}
	view := "flow"
	if len(bytes.TrimSpace(body)) > 0 {
		var req citeRequestDTO
		if err := json.Unmarshal(body, &req); err != nil {
			writeQueryError(w, http.StatusBadRequest, fmt.Sprintf("parsing cite request: %v", err))
			return
		}
		if req.View != "" {
			view = req.View
		}
	}
	name, ok := citeViews[view]
	if !ok {
		writeQueryError(w, http.StatusBadRequest,
			fmt.Sprintf("unknown cite view %q (have [flow gap])", view))
		return
	}
	eq, ok := repro.ExhibitQueryByName(name)
	if !ok {
		writeQueryError(w, http.StatusInternalServerError,
			fmt.Sprintf("exhibit query %q is not registered", name))
		return
	}
	st, err := s.studies.Get(r.Context(), key)
	if err != nil {
		writeQueryError(w, errorStatus(err),
			fmt.Sprintf("materializing study (%s): %v", key, err))
		return
	}

	cacheKey := "cite|" + view + "|" + cacheID(key, st)
	out, outcome, err := s.cache.Get(r.Context(), cacheKey, func(ctx context.Context) ([]byte, error) {
		if injected, ferr := s.renderFault(ctx, chaos.PointRender); injected {
			return nil, ferr
		}
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		start := s.clock.Now()
		defer func() { s.met.renders.ObserveDuration(s.clock.Now().Sub(start)) }()
		res, err := s.runQuery(ctx, key, st, eq.Query)
		if err != nil {
			return nil, err
		}
		return res.CSV()
	})
	if err != nil {
		writeQueryError(w, errorStatus(err), err.Error())
		return
	}
	s.met.queries.With(eq.Query.Frame).Inc()
	s.met.citeQueries.Inc()
	h := w.Header()
	h.Set("Content-Type", "text/csv; charset=utf-8")
	h.Set("Content-Length", strconv.Itoa(len(out)))
	h.Set("X-Cache", outcome)
	if outcome == CacheStale {
		h.Set("Warning", `110 whpcd "stale: re-render failed; bytes are from an earlier identical render"`)
	}
	_, _ = w.Write(out)
}
