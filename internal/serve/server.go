// Package serve is whpcd's HTTP layer: a stdlib-only analytics API over the
// reproduction. A seeded study registry lazily materializes LRU-bounded
// Study instances per (seed, corpus, fault-profile) key, and a memoized
// exhibit cache with singleflight deduplication guarantees each exhibit
// renders at most once per study no matter how many concurrent requests ask
// for it. Per-route token buckets (reusing internal/resilience) and an
// in-flight cap shed load with 429/503 instead of queueing unboundedly;
// request contexts carry timeouts; shutdown drains in-flight requests.
//
// The serving layer inherits the reproduction's determinism contract: a
// cached response is byte-identical to a fresh render, and the wall clock
// is only read through an injected resilience.Clock (for latency metrics
// and log stamps), never for anything that shapes a response body.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro"
	"repro/internal/chaos"
	"repro/internal/faulty"
	"repro/internal/obs"
	"repro/internal/resilience"
	"repro/internal/shard"
	"repro/internal/snap"
	"repro/internal/synth"
)

// Config tunes a Server. The zero value serves with the defaults noted on
// each field.
type Config struct {
	// DefaultSeed is the corpus seed used when a request carries no seed
	// query parameter (default 2021, the paper's publication year).
	DefaultSeed uint64
	// DefaultProfile is the fault profile applied when a request carries no
	// profile parameter ("" serves pristine corpora).
	DefaultProfile string
	// StudyCap bounds resident materialized studies (default 4).
	StudyCap int
	// SnapshotDir, when set, is checked before synthesizing a pristine
	// (profile-less) study: a file named <corpus>-<seed>.whpcsnap there is
	// loaded instead of regenerating, which skips corpus synthesis and
	// frame building. A missing or invalid snapshot falls back to
	// synthesis (counted by whpcd_snapshot_fallbacks_total); harvested
	// studies always synthesize, since the harvest is what's being asked
	// for.
	SnapshotDir string
	// CacheCap bounds memoized exhibit renders (default 256).
	CacheCap int
	// MaxInFlight caps concurrently served requests; excess requests are
	// shed with 503 (default 64).
	MaxInFlight int
	// RequestTimeout bounds one request's context (default 30s).
	RequestTimeout time.Duration
	// RatePerSecond and RateBurst configure the per-route token bucket;
	// RatePerSecond <= 0 disables rate limiting.
	RatePerSecond float64
	RateBurst     int
	// DrainTimeout bounds the graceful shutdown drain (default 15s).
	DrainTimeout time.Duration
	// Clock supplies time for latency metrics, rate limiting, and access-log
	// stamps (default resilience.WallClock). Response bodies never depend on
	// it.
	Clock resilience.Clock
	// Metrics receives the whpcd_* instrument families (default: a fresh
	// registry, exposed at /metrics and /debug/vars).
	Metrics *obs.Registry
	// AccessLog receives one JSON line per request (nil disables logging).
	AccessLog io.Writer
	// ErrorLog receives one JSON line per server-side degradation event —
	// contained panics, snapshot fallbacks and quarantines, stale serves
	// (nil disables logging).
	ErrorLog io.Writer
	// Chaos, when non-nil, injects scheduled faults at the server's named
	// injection points (serve.request, serve.render, serve.materialize,
	// snap.read, snap.decode, shard.scatter, shard.merge). Production
	// servers leave it nil (chaos.None); the chaos suite arms it with a
	// seeded schedule.
	Chaos chaos.Injector
	// ClusterShards > 0 enables cluster mode: /v1/query scatter-gathers
	// across an in-process shard federation instead of executing single-
	// process. Results are byte-identical either way; the federation adds
	// replica failover and the whpcd_shard_* instrument families.
	ClusterShards int
	// ClusterWorkers is the shard worker count (default = ClusterShards).
	ClusterWorkers int
	// ClusterReplicas is how many workers hold each shard (default 2,
	// capped at ClusterWorkers).
	ClusterReplicas int
}

// metrics bundles the server's instruments.
type metrics struct {
	registry    *obs.Registry
	requests    *obs.CounterVec   // route, code
	latency     *obs.HistogramVec // route
	renders     *obs.Histogram    // seconds spent computing cache misses
	inflight    *obs.Gauge
	shed        *obs.Counter
	ratelimited *obs.CounterVec // route

	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheCoalesced *obs.Counter

	queries     *obs.CounterVec // frame
	citeQueries *obs.Counter

	harvestRetries  *obs.Counter
	harvestOutcomes *obs.CounterVec // outcome

	snapshotLoads       *obs.Counter
	snapshotFallbacks   *obs.Counter
	snapshotQuarantines *obs.Counter
	deltaApplies        *obs.Counter

	panics        *obs.Counter
	staleServes   *obs.Counter
	chaosInjected *obs.CounterVec // point

	shardFanout  *obs.Counter
	shardRetries *obs.Counter
	shardMerge   *obs.Histogram
}

func newMetrics(r *obs.Registry) *metrics {
	m := &metrics{
		registry: r,
		requests: r.CounterVec("whpcd_requests_total",
			"HTTP requests served, by route pattern and status code.", "route", "code"),
		latency: r.HistogramVec("whpcd_request_seconds",
			"HTTP request latency in seconds, by route pattern.", nil, "route"),
		renders: r.Histogram("whpcd_render_seconds",
			"Time spent rendering exhibit-cache misses, in seconds.", nil),
		inflight: r.Gauge("whpcd_in_flight",
			"Requests currently being served."),
		shed: r.Counter("whpcd_shed_total",
			"Requests rejected with 503 because the in-flight cap was reached."),
		ratelimited: r.CounterVec("whpcd_rate_limited_total",
			"Requests rejected with 429 by the per-route token bucket.", "route"),
		cacheHits: r.Counter("whpcd_exhibit_cache_hits_total",
			"Exhibit-cache lookups served from resident bytes."),
		cacheMisses: r.Counter("whpcd_exhibit_cache_misses_total",
			"Exhibit-cache lookups that rendered (each miss is one render)."),
		cacheCoalesced: r.Counter("whpcd_exhibit_cache_coalesced_total",
			"Exhibit-cache lookups that waited on another request's in-flight render."),
		// The frame label is bounded: it is only incremented after a query
		// executes successfully, and execution validates the frame name.
		queries: r.CounterVec("whpcd_queries_total",
			"Columnar queries answered successfully, by frame.", "frame"),
		citeQueries: r.Counter("whpcd_cite_queries_total",
			"Citation-flow views served successfully by POST /v1/cite."),
		harvestRetries: r.Counter("whpcd_harvest_retries_total",
			"Retried bibliometric lookup attempts across harvested-study materializations."),
		harvestOutcomes: r.CounterVec("whpcd_harvest_outcomes_total",
			"Per-researcher harvest outcomes across harvested-study materializations.", "outcome"),
		snapshotLoads: r.Counter("whpcd_snapshot_loads_total",
			"Studies materialized from a snapshot file instead of synthesized."),
		snapshotFallbacks: r.Counter("whpcd_snapshot_fallbacks_total",
			"Snapshot warm-path attempts that fell back to synthesis (missing, corrupt, or version-skewed file)."),
		snapshotQuarantines: r.Counter("whpcd_snapshot_quarantines_total",
			"Snapshot files renamed aside after failing decode twice; quarantined files are never re-read."),
		deltaApplies: r.Counter("whpcd_delta_applies_total",
			"Year deltas from the snapshot directory applied to materialized studies."),
		panics: r.Counter("whpcd_panics_total",
			"Handler panics contained by the recovery middleware; the daemon kept serving."),
		staleServes: r.Counter("whpcd_stale_serves_total",
			"Responses served from the stale exhibit store because re-rendering failed (degraded mode)."),
		chaosInjected: r.CounterVec("whpcd_chaos_injected_total",
			"Faults actually fired by the chaos injector, by injection point (always 0 in production).", "point"),
		// The shard families are registered unconditionally so the /metrics
		// rendering is byte-stable across cluster and single-process boots;
		// they simply stay zero when cluster mode is off.
		shardFanout: r.Counter("whpcd_shard_fanout_total",
			"Shard subqueries fanned out by federated /v1/query executions (cluster mode only)."),
		shardRetries: r.Counter("whpcd_shard_retries_total",
			"Shard subquery attempts that failed and were retried on the next replica."),
		shardMerge: r.Histogram("whpcd_shard_merge_seconds",
			"Time spent deterministically merging shard partials, in seconds.", nil),
	}
	r.GaugeFunc("whpcd_exhibit_cache_hit_ratio",
		"Fraction of exhibit-cache lookups served without rendering (hits+coalesced over all lookups); NaN before the first lookup.",
		func() float64 {
			warm := float64(m.cacheHits.Value() + m.cacheCoalesced.Value())
			total := warm + float64(m.cacheMisses.Value())
			return warm / total
		})
	return m
}

// Server is the whpcd HTTP server. Construct with New.
type Server struct {
	cfg      Config
	clock    resilience.Clock
	mux      *http.ServeMux
	studies  *StudyRegistry
	cache    *ExhibitCache
	met      *metrics
	inj      chaos.Injector
	cluster  *shard.Cluster // nil when cluster mode is off
	inflight chan struct{}
	limiters map[string]*resilience.TokenBucket

	logMu sync.Mutex // serializes access-log lines
	errMu sync.Mutex // serializes error-log lines
}

// New builds a Server from cfg, wiring the study registry, exhibit cache,
// metrics, and routes.
func New(cfg Config) (*Server, error) {
	if cfg.DefaultSeed == 0 {
		cfg.DefaultSeed = 2021
	}
	if cfg.StudyCap <= 0 {
		cfg.StudyCap = 4
	}
	if cfg.CacheCap <= 0 {
		cfg.CacheCap = 256
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 15 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = resilience.WallClock{}
	}
	if cfg.Metrics == nil {
		cfg.Metrics = obs.NewRegistry()
	}
	if cfg.DefaultProfile != "" && cfg.DefaultProfile != "none" {
		if _, err := faulty.ByName(cfg.DefaultProfile); err != nil {
			return nil, fmt.Errorf("serve: default profile: %w", err)
		}
	}

	m := newMetrics(cfg.Metrics)
	s := &Server{
		cfg:      cfg,
		clock:    cfg.Clock,
		mux:      http.NewServeMux(),
		met:      m,
		inj:      chaos.None,
		inflight: make(chan struct{}, cfg.MaxInFlight),
		limiters: make(map[string]*resilience.TokenBucket),
	}
	if cfg.Chaos != nil && cfg.Chaos != chaos.None {
		// Wrap once so every fired fault — including snap-layer firings
		// inside snapshot loads — lands in whpcd_chaos_injected_total.
		s.inj = countingInjector{inner: cfg.Chaos, fired: m.chaosInjected}
	}
	if cfg.ClusterShards > 0 {
		cl, err := shard.New(shard.Config{
			Shards:   cfg.ClusterShards,
			Workers:  cfg.ClusterWorkers,
			Replicas: cfg.ClusterReplicas,
			Chaos:    s.inj,
			Clock:    cfg.Clock,
			Hooks: shard.Hooks{
				Scatter: func(n int) { m.shardFanout.Add(int64(n)) },
				Retry:   m.shardRetries.Inc,
				Merge:   m.shardMerge.ObserveDuration,
			},
		})
		if err != nil {
			return nil, fmt.Errorf("serve: building shard cluster: %w", err)
		}
		s.cluster = cl
	}
	s.studies = NewStudyRegistry(cfg.StudyCap, s.buildStudy,
		cfg.Metrics.Counter("whpcd_studies_materialized_total", "Studies materialized by the registry."),
		cfg.Metrics.Counter("whpcd_study_evictions_total", "Studies evicted from the registry LRU."),
		cfg.Metrics.Gauge("whpcd_studies_resident", "Studies currently resident in the registry."))
	if s.cluster != nil {
		// An evicted study's shard placements must not outlive its frames.
		s.studies.OnEvict = func(key StudyKey) { s.cluster.Evict(key.String()) }
	}
	s.cache = NewExhibitCache(cfg.CacheCap, cacheCounters{
		hits:        m.cacheHits,
		misses:      m.cacheMisses,
		coalesced:   m.cacheCoalesced,
		staleServes: m.staleServes,
		evictions:   cfg.Metrics.Counter("whpcd_exhibit_cache_evictions_total", "Rendered exhibits evicted from the cache LRU."),
		resident:    cfg.Metrics.Gauge("whpcd_exhibit_cache_entries", "Rendered exhibits currently resident in the cache."),
	})

	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /v1/far", s.handleFAR)
	s.route("GET /v1/roles", s.handleRoles)
	s.route("GET /v1/sensitivity", s.handleSensitivity)
	s.route("GET /v1/exhibits", s.handleExhibitList)
	s.route("GET /v1/exhibits/{id}", s.handleExhibit)
	s.route("GET /v1/report", s.handleReport)
	s.route("GET /v1/csv/{name}", s.handleCSV)
	s.route("POST /v1/query", s.handleQuery)
	s.route("POST /v1/trend", s.handleTrend)
	s.route("POST /v1/cite", s.handleCite)
	s.route("GET /metrics", cfg.Metrics.Handler().ServeHTTP)
	s.route("GET /debug/vars", cfg.Metrics.VarsHandler().ServeHTTP)
	return s, nil
}

// route mounts h under the Go 1.22 ServeMux pattern, wrapped in the
// middleware chain. The pattern (minus the method) doubles as the bounded-
// cardinality route label on metrics and logs.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	route := pattern[strings.IndexByte(pattern, ' ')+1:]
	if s.cfg.RatePerSecond > 0 {
		burst := s.cfg.RateBurst
		if burst <= 0 {
			burst = 1
		}
		tb, err := resilience.NewTokenBucket(burst, s.cfg.RatePerSecond, s.clock)
		if err != nil {
			panic(fmt.Sprintf("serve: building limiter for %s: %v", route, err))
		}
		s.limiters[route] = tb
	}
	s.mux.Handle(pattern, s.wrap(route, h))
}

// Handler returns the server's root handler (for tests and benchmarks that
// drive the mux without a listener).
func (s *Server) Handler() http.Handler { return s.mux }

// PurgeExhibitCache drops every memoized render, forcing the next request
// per key to re-render. The study registry is unaffected. Benchmarks use it
// to measure the cold path; operators can restart instead — corpora are
// deterministic, so there is no state worth keeping warm across restarts.
func (s *Server) PurgeExhibitCache() { s.cache.Purge() }

// wrap applies the middleware chain to one route: in-flight cap (503),
// per-route token bucket (429), request timeout, panic containment,
// latency/status metrics, and the access log.
func (s *Server) wrap(route string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := s.clock.Now()
		rw := &statusWriter{ResponseWriter: w}
		defer func() {
			elapsed := s.clock.Now().Sub(start)
			s.met.requests.With(route, strconv.Itoa(rw.status())).Inc()
			s.met.latency.With(route).ObserveDuration(elapsed)
			s.logAccess(r, route, rw, elapsed)
		}()
		// Panic containment: registered after the metrics defer so a
		// contained panic's 500 is still counted and logged. The daemon
		// keeps serving — one poisoned request never takes the process.
		defer func() {
			if rec := recover(); rec != nil {
				s.met.panics.Inc()
				s.logError(fmt.Sprintf("panic serving %s %s: %v", r.Method, route, rec))
				if rw.code == 0 {
					http.Error(rw, "internal server error", http.StatusInternalServerError)
				}
			}
		}()

		select {
		case s.inflight <- struct{}{}:
		default:
			s.met.shed.Inc()
			http.Error(rw, "server at max in-flight requests", http.StatusServiceUnavailable)
			return
		}
		defer func() { <-s.inflight }()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)

		if tb := s.limiters[route]; tb != nil && !tb.Allow() {
			s.met.ratelimited.With(route).Inc()
			rw.Header().Set("Retry-After", "1")
			http.Error(rw, "rate limit exceeded", http.StatusTooManyRequests)
			return
		}

		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
		defer cancel()
		if f := s.fire(chaos.PointRequest); f != nil {
			switch f.Kind {
			case chaos.KindLatency:
				if err := s.clock.Sleep(ctx, f.Latency); err != nil {
					s.writeError(rw, err)
					return
				}
			case chaos.KindCancel:
				// The handler proceeds with an already-cancelled context,
				// exercising deadline propagation end to end.
				cancel()
			case chaos.KindPanic:
				panic(chaos.PanicValue{Point: chaos.PointRequest})
			default:
				s.writeError(rw, chaos.Injected(chaos.PointRequest, f))
				return
			}
		}
		h(rw, r.WithContext(ctx))
	})
}

// Serve accepts connections on l until ctx is cancelled, then drains:
// in-flight requests get up to DrainTimeout to finish before the server
// closes. It returns nil after a clean drain.
func (s *Server) Serve(ctx context.Context, l net.Listener) error {
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		return fmt.Errorf("serve: listener failed: %w", err)
	case <-ctx.Done():
	}
	//whpcvet:ignore ctxflow drain runs after ctx is already cancelled; deriving from it would cancel the drain instantly
	dctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	<-errc // Serve has returned http.ErrServerClosed
	return nil
}

// buildStudy materializes the study for a registry key, threading harvest
// telemetry into the metrics registry for fault-profile keys.
func (s *Server) buildStudy(key StudyKey) (*repro.Study, error) {
	if f := s.fire(chaos.PointMaterialize); f != nil {
		switch f.Kind {
		case chaos.KindLatency:
			// Builds outlast any one request (the registry shares them), so
			// the stretch elapses on a background context.
			//whpcvet:ignore ctxflow builds are shared via the registry and must not die with the first requester's deadline
			if err := s.clock.Sleep(context.Background(), f.Latency); err != nil {
				return nil, err
			}
		case chaos.KindPanic:
			panic(chaos.PanicValue{Point: chaos.PointMaterialize})
		case chaos.KindCancel:
			return nil, context.Canceled
		default:
			return nil, chaos.Injected(chaos.PointMaterialize, f)
		}
	}
	var cfg synth.Config
	switch key.Corpus {
	case CorpusDefault:
		cfg = synth.Default2017(key.Seed)
	case CorpusFlagship:
		cfg = synth.FlagshipSeries(key.Seed)
	case CorpusExtended:
		cfg = synth.ExtendedSystems(key.Seed)
	default:
		return nil, fmt.Errorf("serve: unknown corpus %q (have %v)", key.Corpus, Corpora())
	}
	if key.Profile == "" {
		if s.cfg.SnapshotDir != "" {
			path := filepath.Join(s.cfg.SnapshotDir, snap.CorpusFileName(key.Corpus, key.Seed))
			study, err := s.loadSnapshot(path)
			if err == nil {
				s.met.snapshotLoads.Inc()
				s.applyDeltas(key, study)
				return study, nil
			}
			// Missing, truncated, corrupt, or version-skewed snapshots all
			// degrade to synthesis: corpora are deterministic per key, so
			// the fallback serves identical bytes, just slower. Corrupt
			// files were retried once and quarantined by loadSnapshot; the
			// log line carries the path and failing section.
			s.met.snapshotFallbacks.Inc()
			s.logError(fmt.Sprintf("snapshot fallback for study (%s): synthesizing after %v", key, err))
		}
		study, err := repro.NewStudyFromConfig(cfg)
		if err != nil {
			return nil, err
		}
		// A synthesized base is byte-identical to the snapshot it replaced,
		// so the snapshot dir's year deltas apply to it just the same.
		if s.cfg.SnapshotDir != "" {
			s.applyDeltas(key, study)
		}
		return study, nil
	}
	return repro.NewObservedHarvestedStudy(cfg, key.Profile, repro.HarvestHooks{
		OnRetry:   s.met.harvestRetries.Inc,
		OnOutcome: func(outcome string) { s.met.harvestOutcomes.With(outcome).Inc() },
	})
}

// statusWriter captures the status code and body size for metrics and the
// access log.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// status returns the response code, defaulting to 200 for handlers that
// never called WriteHeader.
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// accessRecord is one structured access-log line.
type accessRecord struct {
	Time    string  `json:"time"`
	Method  string  `json:"method"`
	Path    string  `json:"path"`
	Route   string  `json:"route"`
	Status  int     `json:"status"`
	Bytes   int     `json:"bytes"`
	Seconds float64 `json:"seconds"`
	Cache   string  `json:"cache,omitempty"`
	Remote  string  `json:"remote,omitempty"`
}

// logAccess writes one JSON line per request; a nil AccessLog disables it.
func (s *Server) logAccess(r *http.Request, route string, rw *statusWriter, elapsed time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	rec := accessRecord{
		Time:    s.clock.Now().UTC().Format(time.RFC3339Nano),
		Method:  r.Method,
		Path:    r.URL.RequestURI(),
		Route:   route,
		Status:  rw.status(),
		Bytes:   rw.bytes,
		Seconds: elapsed.Seconds(),
		Cache:   rw.Header().Get("X-Cache"),
		Remote:  r.RemoteAddr,
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return
	}
	line = append(line, '\n')
	s.logMu.Lock()
	_, _ = s.cfg.AccessLog.Write(line)
	s.logMu.Unlock()
}
