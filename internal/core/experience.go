package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/scholar"
	"repro/internal/stats"
)

// GroupSample is one gender x role sample of a bibliometric measure, with
// summary statistics and a density curve — the building block of Figs 3-5.
type GroupSample struct {
	Gender  gender.Gender
	Role    dataset.Role
	Values  []float64
	Summary stats.Summary
	Density DensityCurve
}

// Metric selects which bibliometric quantity an experience distribution
// reads from researcher records.
type Metric int

const (
	// MetricGSPublications is the Google Scholar past-publication count
	// (Fig 3); only GS-linked researchers contribute.
	MetricGSPublications Metric = iota
	// MetricHIndex is the Google Scholar h-index (Fig 4).
	MetricHIndex
	// MetricS2Publications is the Semantic Scholar past-publication count
	// (Fig 5); coverage is universal for authors.
	MetricS2Publications
)

// String names the metric.
func (m Metric) String() string {
	switch m {
	case MetricGSPublications:
		return "GS publications"
	case MetricHIndex:
		return "h-index"
	case MetricS2Publications:
		return "S2 publications"
	default:
		return fmt.Sprintf("metric(%d)", int(m))
	}
}

func (m Metric) read(p *dataset.Person) (float64, bool) {
	switch m {
	case MetricGSPublications:
		if !p.HasGSProfile {
			return 0, false
		}
		return float64(p.GS.Publications), true
	case MetricHIndex:
		if !p.HasGSProfile {
			return 0, false
		}
		return float64(p.GS.HIndex), true
	case MetricS2Publications:
		if !p.HasS2 {
			return 0, false
		}
		return float64(p.S2Pubs), true
	default:
		return 0, false
	}
}

// GenderGapKS formalizes the paper's visual reading of Figs 3-5 ("the
// male authors' distributions pull to the right"): a two-sample
// Kolmogorov-Smirnov test of the female vs male metric distributions for
// one role.
type GenderGapKS struct {
	Metric Metric
	Role   dataset.Role
	KS     stats.KSResult
	// MaleShiftRight reports whether the male median exceeds the female
	// median (the direction of the paper's observation).
	MaleShiftRight bool
}

// DistributionGap runs the KS comparison for a metric and role.
func DistributionGap(d *dataset.Dataset, m Metric, role dataset.Role) (GenderGapKS, error) {
	samples, err := ExperienceDistributions(d, m, role)
	if err != nil {
		return GenderGapKS{}, err
	}
	var fem, mal []float64
	var femMed, malMed float64
	for _, s := range samples {
		if s.Gender == gender.Female {
			fem = s.Values
			femMed = s.Summary.Median
		} else {
			mal = s.Values
			malMed = s.Summary.Median
		}
	}
	ks, err := stats.KolmogorovSmirnov(fem, mal)
	if err != nil {
		return GenderGapKS{}, err
	}
	return GenderGapKS{
		Metric:         m,
		Role:           role,
		KS:             ks,
		MaleShiftRight: malMed > femMed,
	}, nil
}

// ExperienceDistributions computes the Fig 3/4/5 samples: the metric split
// by gender for each requested role population (unique persons per role).
func ExperienceDistributions(d *dataset.Dataset, m Metric, roles ...dataset.Role) ([]GroupSample, error) {
	if len(roles) == 0 {
		roles = []dataset.Role{dataset.RoleAuthor, dataset.RolePCMember}
	}
	var out []GroupSample
	for _, role := range roles {
		var ids []dataset.PersonID
		if role == dataset.RoleAuthor {
			ids = d.UniqueAuthors()
		} else {
			ids = d.UniqueRoleHolders(role)
		}
		byGender := map[gender.Gender][]float64{}
		for _, id := range ids {
			p, ok := d.Person(id)
			if !ok || !p.Gender.Known() {
				continue
			}
			if v, ok := m.read(p); ok {
				byGender[p.Gender] = append(byGender[p.Gender], v)
			}
		}
		for _, g := range []gender.Gender{gender.Female, gender.Male} {
			vals := byGender[g]
			if len(vals) < 2 {
				return nil, fmt.Errorf("core: too few %s %s with %s data (%d)", g, role, m, len(vals))
			}
			sum, err := stats.Summarize(vals)
			if err != nil {
				return nil, err
			}
			kde, err := stats.NewKDE(vals, stats.Silverman)
			if err != nil {
				return nil, err
			}
			x, y := kde.Evaluate(256)
			out = append(out, GroupSample{
				Gender: g, Role: role, Values: vals, Summary: sum,
				Density: DensityCurve{Label: g.String() + " " + role.String(), X: x, Y: y},
			})
		}
	}
	return out, nil
}

// SourceCorrelation is the §5.1 Google Scholar vs Semantic Scholar
// cross-check (paper: r = 0.334, p < 0.0001).
type SourceCorrelation struct {
	N      int
	Result stats.CorrelationResult
}

// CompareScholarSources correlates GS and S2 publication counts across the
// unique authors carrying both.
func CompareScholarSources(d *dataset.Dataset) (SourceCorrelation, error) {
	var gs, s2 []float64
	for _, id := range d.UniqueAuthors() {
		p, ok := d.Person(id)
		if !ok || !p.HasGSProfile || !p.HasS2 {
			continue
		}
		gs = append(gs, float64(p.GS.Publications))
		s2 = append(s2, float64(p.S2Pubs))
	}
	r, err := stats.PearsonCorrelation(gs, s2)
	if err != nil {
		return SourceCorrelation{}, err
	}
	return SourceCorrelation{N: len(gs), Result: r}, nil
}

// BandCell is one gender's experience-band breakdown (Fig 6).
type BandCell struct {
	Gender gender.Gender
	Counts [3]int // Novice, MidCareer, Experienced
	Total  int
}

// Share returns the fraction of the gender's population in a band.
func (b BandCell) Share(band scholar.ExperienceBand) float64 {
	if b.Total == 0 {
		return 0
	}
	return float64(b.Counts[band]) / float64(b.Total)
}

// BandAnalysis is Fig 6 plus the §5.1 novice-gap test.
type BandAnalysis struct {
	All     []BandCell // all researchers with a known h-index
	Authors []BandCell // authors only

	// NoviceTest compares the novice share between female and male authors
	// (paper: 44.8% vs 36.4%, chi2 = 7.419, p = 0.00645).
	NoviceFemale stats.Proportion
	NoviceMale   stats.Proportion
	NoviceTest   stats.ChiSquaredResult

	GSCoverage float64 // share of known-gender researchers with a GS link
}

// ExperienceBands computes the Fig 6 stratification over all researchers
// (unique authors and PC members) and the author-only novice comparison.
func ExperienceBands(d *dataset.Dataset) (BandAnalysis, error) {
	var res BandAnalysis
	all := d.UniqueAuthorsAndPC()
	allCells, covered, known := bandCells(d, all)
	res.All = allCells
	if known > 0 {
		res.GSCoverage = float64(covered) / float64(known)
	}
	authorCells, _, _ := bandCells(d, d.UniqueAuthors())
	res.Authors = authorCells

	for _, c := range authorCells {
		p := stats.Proportion{K: c.Counts[scholar.Novice], N: c.Total}
		if c.Gender == gender.Female {
			res.NoviceFemale = p
		} else {
			res.NoviceMale = p
		}
	}
	if res.NoviceFemale.N == 0 || res.NoviceMale.N == 0 {
		return res, fmt.Errorf("core: missing gendered author band populations")
	}
	test, err := stats.TwoProportionChiSq(
		res.NoviceFemale.K, res.NoviceFemale.N,
		res.NoviceMale.K, res.NoviceMale.N)
	if err != nil {
		return res, err
	}
	res.NoviceTest = test
	return res, nil
}

// bandCells tallies experience bands by gender over a person set; it also
// reports how many known-gender persons exist and how many carry a GS link.
func bandCells(d *dataset.Dataset, ids []dataset.PersonID) (cells []BandCell, covered, known int) {
	byGender := map[gender.Gender]*BandCell{
		gender.Female: {Gender: gender.Female},
		gender.Male:   {Gender: gender.Male},
	}
	for _, id := range ids {
		p, ok := d.Person(id)
		if !ok || !p.Gender.Known() {
			continue
		}
		known++
		if !p.HasGSProfile {
			continue
		}
		covered++
		cell := byGender[p.Gender]
		cell.Counts[scholar.BandOf(p.GS.HIndex)]++
		cell.Total++
	}
	return []BandCell{*byGender[gender.Female], *byGender[gender.Male]}, covered, known
}
