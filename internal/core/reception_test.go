package core

import (
	"testing"

	"repro/internal/dataset"
)

func TestCitationTrajectory(t *testing.T) {
	r, err := CitationTrajectory(corpus.Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("%d points, want 6 default months", len(r.Points))
	}
	// Monotone accrual: means never decrease with time, per gender.
	for i := 1; i < len(r.Points); i++ {
		if r.Points[i].MeanFemale < r.Points[i-1].MeanFemale-1e-9 ||
			r.Points[i].MeanMale < r.Points[i-1].MeanMale-1e-9 {
			t.Fatalf("citation means decreased between months %g and %g",
				r.Points[i-1].Month, r.Points[i].Month)
		}
	}
	// Month 36 must equal the §4.2 excl-outlier means.
	cit, err := CitationReception(corpus.Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	last := r.Points[len(r.Points)-1]
	if diff := last.MeanFemale - cit.MeanFemaleExclOut; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("trajectory month-36 female mean %g != §4.2 mean %g", last.MeanFemale, cit.MeanFemaleExclOut)
	}
	if diff := last.MeanMale - cit.MeanMale; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("trajectory month-36 male mean %g != §4.2 mean %g", last.MeanMale, cit.MeanMale)
	}
	// With proportional accrual, the gap direction is stable over time.
	if !r.GapProportional() {
		t.Error("gap sign flipped across the accrual window")
	}
	if r.GapAt36 != last.MeanFemale-last.MeanMale {
		t.Error("GapAt36 inconsistent with the last point")
	}
}

func TestCitationTrajectoryCustomMonths(t *testing.T) {
	r, err := CitationTrajectory(corpus.Data, 0, 12, 36)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 2 || r.Points[0].Month != 12 || r.Points[1].Month != 36 {
		t.Errorf("points = %+v", r.Points)
	}
	// First-year accrual is slow: month-12 means well below month-36.
	if !(r.Points[0].MeanMale < 0.3*r.Points[1].MeanMale) {
		t.Errorf("month-12 mean %g not well below month-36 %g",
			r.Points[0].MeanMale, r.Points[1].MeanMale)
	}
}

func TestCitationTrajectoryEmpty(t *testing.T) {
	d := dataset.New()
	if err := d.AddConference(&dataset.Conference{ID: "X", Name: "X", Year: 2017, AcceptanceRate: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := CitationTrajectory(d, 0); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestDistributionGap(t *testing.T) {
	for _, m := range []Metric{MetricGSPublications, MetricHIndex} {
		gap, err := DistributionGap(corpus.Data, m, dataset.RoleAuthor)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		// The calibrated male right-shift exists; KS should both confirm
		// the direction and find the gap at author sample sizes.
		if !gap.MaleShiftRight {
			t.Errorf("%s: male median not right of female", m)
		}
		if gap.KS.D <= 0 || gap.KS.D > 1 {
			t.Errorf("%s: D = %g", m, gap.KS.D)
		}
		if gap.KS.P < 0 || gap.KS.P > 1 {
			t.Errorf("%s: p = %g", m, gap.KS.P)
		}
	}
	// PC members also split cleanly.
	if _, err := DistributionGap(corpus.Data, MetricHIndex, dataset.RolePCMember); err != nil {
		t.Fatal(err)
	}
}
