package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// FamilyTest is one named hypothesis in the paper's test family with its
// raw p-value and the Holm-corrected decision.
type FamilyTest struct {
	Name       string
	P          float64
	RawReject  bool // p < alpha without correction
	HolmReject bool // rejected by the Holm step-down procedure
}

// MultiplicityAnalysis treats the paper's reported significance tests as
// one family and applies the Holm-Bonferroni correction — a robustness
// layer the paper itself does not include but that a careful reader would
// want: with nine-plus tests on one corpus, a raw p just under 0.05 is
// weak evidence.
type MultiplicityAnalysis struct {
	Alpha float64
	Tests []FamilyTest
	// Survivors counts hypotheses still rejected after correction.
	Survivors int
	// RawRejections counts uncorrected rejections for comparison.
	RawRejections int
}

// FamilyCorrection gathers the paper's main chi-squared and t-test
// p-values and applies Holm at the given alpha (0 means 0.05).
func FamilyCorrection(d *dataset.Dataset, scID dataset.ConfID, alpha float64) (MultiplicityAnalysis, error) {
	if alpha == 0 { //whpcvet:ignore floatcmp 0 is the documented use-the-default sentinel, an exact value
		alpha = 0.05
	}
	res := MultiplicityAnalysis{Alpha: alpha}

	blind, err := CompareBlindReview(d)
	if err != nil {
		return res, fmt.Errorf("core: family: %w", err)
	}
	pos, err := CompareAuthorPositions(d)
	if err != nil {
		return res, fmt.Errorf("core: family: %w", err)
	}
	pc, err := ProgramCommittee(d, scID)
	if err != nil {
		return res, fmt.Errorf("core: family: %w", err)
	}
	topic, err := HPCOnlySubset(d)
	if err != nil {
		return res, fmt.Errorf("core: family: %w", err)
	}
	cit, err := CitationReception(d, 0)
	if err != nil {
		return res, fmt.Errorf("core: family: %w", err)
	}
	bands, err := ExperienceBands(d)
	if err != nil {
		return res, fmt.Errorf("core: family: %w", err)
	}
	sectors, err := SectorRepresentation(d)
	if err != nil {
		return res, fmt.Errorf("core: family: %w", err)
	}

	res.Tests = []FamilyTest{
		{Name: "FAR: double- vs single-blind", P: blind.Test.P},
		{Name: "lead FAR: double- vs single-blind", P: blind.LeadTest.P},
		{Name: "last-author vs overall FAR", P: pos.LastTest.P},
		{Name: "PC members vs authors", P: pc.VsAuthors.P},
		{Name: "HPC-only vs all authors", P: topic.AuthorTest.P},
		{Name: "HPC-only vs all lead authors", P: topic.LeadTest.P},
		{Name: "citations by lead gender (excl. outlier)", P: cit.WelchExclOutlier.P},
		{Name: "i10 attainment by lead gender", P: cit.I10Test.P},
		{Name: "novice share by author gender", P: bands.NoviceTest.P},
		{Name: "sector x gender (PC members)", P: sectors.PCTest.P},
		{Name: "sector x gender (authors)", P: sectors.AuthorTest.P},
	}
	ps := make([]float64, len(res.Tests))
	for i, t := range res.Tests {
		ps[i] = t.P
	}
	holm, err := stats.HolmBonferroni(ps, alpha)
	if err != nil {
		return res, err
	}
	for i := range res.Tests {
		res.Tests[i].RawReject = res.Tests[i].P < alpha
		res.Tests[i].HolmReject = holm[i]
		if res.Tests[i].RawReject {
			res.RawRejections++
		}
		if holm[i] {
			res.Survivors++
		}
	}
	return res, nil
}
