package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

func TestCollaborationPatterns(t *testing.T) {
	r, err := CollaborationPatterns(corpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	unique := len(corpus.Data.UniqueAuthors())
	if r.Nodes != unique {
		t.Errorf("graph nodes %d != unique authors %d", r.Nodes, unique)
	}
	if r.Edges < r.Nodes { // teams of >= 2 give at least one edge per author
		t.Errorf("edges %d implausibly few for %d nodes", r.Edges, r.Nodes)
	}
	if r.GiantFraction <= 0 || r.GiantFraction > 1 {
		t.Errorf("giant fraction %g", r.GiantFraction)
	}
	if r.Mixing.TotalEdges() == 0 {
		t.Error("no gendered edges")
	}
	// Random-mixing corpus: mild assortativity only.
	if math.Abs(r.Mixing.Assortativity) > 0.15 {
		t.Errorf("assortativity %g", r.Mixing.Assortativity)
	}
	if r.Degrees.FemaleN == 0 || r.Degrees.MaleN == 0 {
		t.Error("degree analysis missing a gender")
	}
	if r.Teams.FemaleLedMean < 2 || r.Teams.MaleLedMean < 2 {
		t.Error("implausible team sizes")
	}
}

func TestCollaborationPatternsEmpty(t *testing.T) {
	d := dataset.New()
	if err := d.AddConference(&dataset.Conference{ID: "X", Name: "X", Year: 2017, AcceptanceRate: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := CollaborationPatterns(d); err == nil {
		t.Error("empty corpus accepted")
	}
}

func TestFamilyCorrection(t *testing.T) {
	r, err := FamilyCorrection(corpus.Data, "SC17", 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.Alpha != 0.05 {
		t.Errorf("default alpha = %g", r.Alpha)
	}
	if len(r.Tests) != 11 {
		t.Fatalf("%d family tests, want 11", len(r.Tests))
	}
	// Holm is never more liberal than raw thresholds.
	if r.Survivors > r.RawRejections {
		t.Errorf("Holm rejected %d but raw rejected only %d", r.Survivors, r.RawRejections)
	}
	// The PC-vs-authors gap is so large it must survive any correction.
	for _, test := range r.Tests {
		if test.Name == "PC members vs authors" && !test.HolmReject {
			t.Error("PC-vs-authors did not survive Holm despite p ~ 1e-10")
		}
		if test.HolmReject && !test.RawReject {
			t.Errorf("%s: Holm rejects but raw does not", test.Name)
		}
		if test.P < 0 || test.P > 1 {
			t.Errorf("%s: p = %g", test.Name, test.P)
		}
	}
}

func TestFamilyCorrectionCustomAlpha(t *testing.T) {
	strict, err := FamilyCorrection(corpus.Data, "SC17", 0.001)
	if err != nil {
		t.Fatal(err)
	}
	loose, err := FamilyCorrection(corpus.Data, "SC17", 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Survivors > loose.Survivors {
		t.Errorf("stricter alpha kept more hypotheses: %d vs %d", strict.Survivors, loose.Survivors)
	}
}

func TestTrendRegressions(t *testing.T) {
	c, err := synth.Generate(synth.FlagshipSeries(5))
	if err != nil {
		t.Fatal(err)
	}
	points := FlagshipTrend(c.Data)
	regs, err := TrendRegressions(points)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("%d regressions, want 2 (SC, ISC)", len(regs))
	}
	for _, reg := range regs {
		if reg.Fit.N != 5 {
			t.Errorf("%s fit over %d points", reg.Series, reg.Fit.N)
		}
		// The paper's corpus shows no clear trend; the calibrated series
		// are flat, so the slope must be tiny and nonsignificant.
		if math.Abs(reg.Fit.Slope) > 0.02 {
			t.Errorf("%s slope %g per year — the series should be flat", reg.Series, reg.Fit.Slope)
		}
		if reg.Fit.P < 0.05 {
			t.Errorf("%s flat series rejected at p = %g", reg.Series, reg.Fit.P)
		}
	}
	// Series with fewer than 3 editions are skipped, not errored.
	short, err := TrendRegressions(points[:2])
	if err != nil {
		t.Fatal(err)
	}
	if len(short) != 0 {
		t.Errorf("short series produced %d regressions", len(short))
	}
}

func TestCitationRobustCompanions(t *testing.T) {
	r, err := CitationReception(corpus.Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Fisher and chi-squared must broadly agree on the i10 table.
	if math.Abs(r.I10Fisher.P-r.I10Test.P) > 0.15 {
		t.Errorf("Fisher p %g far from chi-squared p %g", r.I10Fisher.P, r.I10Test.P)
	}
	// The effect direction: women attain i10 less often -> negative h.
	if r.I10EffectH >= 0 {
		t.Errorf("Cohen's h = %g, want negative", r.I10EffectH)
	}
	// Mann-Whitney is nearly identical with and without the outlier (one
	// rank out of ~500 moves); the mean-based contrast flips sign.
	if math.Abs(r.MannWhitneyExclOutlier.RankBiserial-r.MannWhitneyInclOutlier.RankBiserial) > 0.05 {
		t.Errorf("Mann-Whitney moved by the outlier: %g vs %g",
			r.MannWhitneyExclOutlier.RankBiserial, r.MannWhitneyInclOutlier.RankBiserial)
	}
	if (r.MeanFemale > r.MeanMale) == (r.MeanFemaleExclOut > r.MeanMale) {
		t.Error("outlier should flip the mean comparison (paper: 13.04 -> 7.63 vs 10.55)")
	}
}

func TestVisibleRolesExactTests(t *testing.T) {
	for _, r := range VisibleRoles(corpus.Data) {
		if r.Total == 0 {
			continue
		}
		if r.VsAuthorsExact.P <= 0 || r.VsAuthorsExact.P > 1 {
			t.Errorf("%s: Fisher p = %g", r.Role, r.VsAuthorsExact.P)
		}
	}
}

func TestDiversityPolicy(t *testing.T) {
	r, err := DiversityPolicy(corpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.WithPolicy) != 2 { // SC and ISC
		t.Errorf("policy venues = %v", r.WithPolicy)
	}
	// §3.4's paradox: the diversity-chair venues have LOWER author FAR...
	if !(r.FARWith.Ratio() < r.FARWithout.Ratio()) {
		t.Errorf("policy FAR %.4f not below non-policy %.4f",
			r.FARWith.Ratio(), r.FARWithout.Ratio())
	}
	// ...but HIGHER invited-role representation (SC's explicit push).
	if !(r.InvitedWith.Ratio() > r.InvitedWithout.Ratio()) {
		t.Errorf("policy invited %.4f not above non-policy %.4f",
			r.InvitedWith.Ratio(), r.InvitedWithout.Ratio())
	}
	if r.InvitedTest.P < 0 || r.InvitedTest.P > 1 || r.FARTest.P < 0 || r.FARTest.P > 1 {
		t.Error("malformed p-values")
	}
}

func TestDiversityPolicyNotApplicable(t *testing.T) {
	// Flagship corpus: every venue has a diversity chair.
	c, err := synth.Generate(synth.FlagshipSeries(2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DiversityPolicy(c.Data); !errors.Is(err, ErrNotApplicable) {
		t.Errorf("err = %v, want ErrNotApplicable", err)
	}
}
