package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/stats"
)

// CohortPoint is one conference edition's participant cohort and its fate
// at the next edition of the same series: how many of the people holding
// any role (author, PC, keynote, panelist, session chair) came back. The
// paper's longitudinal question — does the community retain the women it
// attracts? — needs exactly this per-edition ledger.
type CohortPoint struct {
	Series string
	Year   int
	Conf   dataset.ConfID
	// Holders is the unique participant count across every role.
	Holders int
	// Women counts perceived-female participants among the holders.
	Women int
	// Observed is the cohort size whose return could be observed: equal to
	// Holders when the series has a next edition in the corpus, 0 for the
	// last edition (right-censored).
	Observed int
	// Returned counts holders who participate (any role) in the next
	// edition; WomenReturned restricts to perceived-female holders.
	Returned      int
	WomenReturned int
}

// Rate is the retention rate Returned/Observed — NaN for a right-censored
// edition, mirroring stats.Proportion's "no data" convention.
func (p CohortPoint) Rate() float64 {
	return stats.Proportion{K: p.Returned, N: p.Observed}.Ratio()
}

// CohortRetention computes the year-over-year participant retention of
// every conference edition, sorted by series then year. Editions with no
// participants are skipped (they have no cohort to follow). This is the
// reference implementation the "retention" exhibit query is verified
// against byte-for-byte.
func CohortRetention(d *dataset.Dataset) []CohortPoint {
	var out []CohortPoint
	for _, c := range d.Conferences {
		ids := cohortParticipants(d, c)
		if len(ids) == 0 {
			continue
		}
		next := nextEditionOf(d, c)
		var nextSet map[dataset.PersonID]bool
		if next != nil {
			nextSet = make(map[dataset.PersonID]bool)
			for _, id := range cohortParticipants(d, next) {
				nextSet[id] = true
			}
		}
		p := CohortPoint{Series: c.Name, Year: c.Year, Conf: c.ID, Holders: len(ids)}
		if next != nil {
			p.Observed = len(ids)
		}
		for _, id := range ids {
			person, ok := d.Person(id)
			female := ok && person.Gender == gender.Female
			if female {
				p.Women++
			}
			if nextSet[id] {
				p.Returned++
				if female {
					p.WomenReturned++
				}
			}
		}
		out = append(out, p)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Series != out[j].Series {
			return out[i].Series < out[j].Series
		}
		return out[i].Year < out[j].Year
	})
	return out
}

// cohortParticipants is the unique participant set of one edition: every
// paper author plus every role-roster holder, sorted by ID.
func cohortParticipants(d *dataset.Dataset, c *dataset.Conference) []dataset.PersonID {
	set := make(map[dataset.PersonID]bool)
	for _, p := range d.PapersOf(c.ID) {
		for _, id := range p.Authors {
			set[id] = true
		}
	}
	for _, r := range dataset.Roles() {
		for _, id := range c.RoleHolders(r) {
			set[id] = true
		}
	}
	out := make([]dataset.PersonID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// nextEditionOf finds the next edition of c's series: same series name,
// the immediately following year.
func nextEditionOf(d *dataset.Dataset, c *dataset.Conference) *dataset.Conference {
	for _, o := range d.Conferences {
		if o != c && o.Name == c.Name && o.Year == c.Year+1 {
			return o
		}
	}
	return nil
}
