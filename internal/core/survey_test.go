package core

import (
	"math/rand/v2"
	"testing"

	"repro/internal/synth"
)

func TestSurveyValidationCleanPipeline(t *testing.T) {
	// The paper's finding on the default (error-free manual) pipeline:
	// zero discrepancies. Automated assignments can be wrong, but only
	// respondents with conclusive manual evidence were surveyed in the
	// paper; here we survey everyone, so a handful of automated misreads
	// may surface — they must stay a tiny fraction.
	rng := rand.New(rand.NewPCG(7, 7))
	res, err := SurveyValidation(corpus.Data, rng, 0.5, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if res.Responded == 0 {
		t.Fatal("no survey responses")
	}
	if rate := res.DiscrepancyRate(); rate > 0.02 {
		t.Errorf("clean pipeline discrepancy rate %.4f, want <= 0.02", rate)
	}
}

func TestSurveyValidationDetectsCorruptedPipeline(t *testing.T) {
	// Failure injection: corrupt the manual stage with a 15% error rate
	// and verify the survey machinery detects it — the end-to-end story
	// behind the paper's validation step.
	cfg := synth.Default2017(3)
	cfg.ManualErrRate = 0.15
	corrupted, err := synth.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(9, 9))
	res, err := SurveyValidation(corrupted.Data, rng, 0.6, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rate := res.DiscrepancyRate()
	if rate < 0.08 || rate > 0.25 {
		t.Errorf("injected 15%% manual errors, survey measured %.4f", rate)
	}
	// And the corrupted corpus still validates structurally — the errors
	// are in the labels, not the references.
	if err := corrupted.Data.Validate(); err != nil {
		t.Errorf("corrupted-label corpus fails structural validation: %v", err)
	}
}

func TestSurveyValidationErrors(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := SurveyValidation(corpus.Data, rng, 1.5, 0); err == nil {
		t.Error("bad response rate accepted")
	}
	if _, err := SurveyValidation(corpus.Data, nil, 0.5, 0); err == nil {
		t.Error("nil rng accepted")
	}
}
