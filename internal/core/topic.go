package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// TopicAnalysis is the §4.1 HPC-only subset comparison.
type TopicAnalysis struct {
	HPCPapers   int // manually HPC-tagged papers (paper: 178)
	TotalPapers int // all papers (paper: 518)

	HPCAuthors stats.Proportion // women among HPC-paper author slots (10.1%)
	AllAuthors stats.Proportion // women among all author slots (9.9%)
	AuthorTest stats.ChiSquaredResult

	HPCLead  stats.Proportion // women among HPC lead authors (11.05%)
	AllLead  stats.Proportion // women among all lead authors (10.86%)
	LeadTest stats.ChiSquaredResult
}

// HPCOnlySubset computes §4.1: does restricting to strictly-HPC papers
// change women's representation? (The paper finds it does not, materially.)
func HPCOnlySubset(d *dataset.Dataset) (TopicAnalysis, error) {
	var res TopicAnalysis
	res.TotalPapers = len(d.Papers)
	hpc := d.HPCPapers()
	res.HPCPapers = len(hpc)
	if res.HPCPapers == 0 {
		return res, fmt.Errorf("%w: no HPC-tagged papers in corpus", ErrNotApplicable)
	}

	var hpcSlots, hpcLeads []dataset.PersonID
	for _, p := range hpc {
		hpcSlots = append(hpcSlots, p.Authors...)
		if id := p.Lead(); id != "" {
			hpcLeads = append(hpcLeads, id)
		}
	}
	res.HPCAuthors = proportionOf(d.CountGenders(hpcSlots))
	res.AllAuthors = proportionOf(d.CountGenders(d.AuthorSlots()))
	res.HPCLead = proportionOf(d.CountGenders(hpcLeads))
	res.AllLead = proportionOf(d.CountGenders(d.LeadAuthors()))

	at, err := stats.TwoProportionChiSq(res.HPCAuthors.K, res.HPCAuthors.N, res.AllAuthors.K, res.AllAuthors.N)
	if err != nil {
		return res, err
	}
	res.AuthorTest = at
	lt, err := stats.TwoProportionChiSq(res.HPCLead.K, res.HPCLead.N, res.AllLead.K, res.AllLead.N)
	if err != nil {
		return res, err
	}
	res.LeadTest = lt
	return res, nil
}
