package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// RoleCell is one (conference, role) cell of Fig 1.
type RoleCell struct {
	Conf  dataset.ConfID
	Name  string
	Role  dataset.Role
	Ratio stats.Proportion
}

// RoleTable is the Fig 1 matrix: representation of women across conference
// roles, one cell per conference per role, plus an all-conference row per
// role.
type RoleTable struct {
	Cells   []RoleCell
	Overall map[dataset.Role]stats.Proportion

	// Positions are the per-conference first/last author panels.
	Positions   []PositionCell
	OverallLead stats.Proportion
	OverallLast stats.Proportion
}

// PositionCell is a per-conference author-position cell: the paper's Fig 1
// breaks authors into overall, first-author and last-author panels.
type PositionCell struct {
	Conf dataset.ConfID
	Name string
	Lead stats.Proportion
	Last stats.Proportion
}

// RoleRepresentation computes Fig 1. Author cells use author slots; other
// roles use their rosters. Repeats are kept throughout, matching the
// paper's "with repeats" convention. Positions carries the first/last
// author panels.
func RoleRepresentation(d *dataset.Dataset) RoleTable {
	t := RoleTable{Overall: make(map[dataset.Role]stats.Proportion)}
	for _, role := range dataset.Roles() {
		for _, c := range d.Conferences {
			var gc dataset.GenderCount
			if role == dataset.RoleAuthor {
				gc = d.CountGenders(d.AuthorSlots(c.ID))
			} else {
				gc = d.CountGenders(c.RoleHolders(role))
			}
			t.Cells = append(t.Cells, RoleCell{
				Conf: c.ID, Name: c.Name, Role: role, Ratio: proportionOf(gc),
			})
		}
		t.Overall[role] = proportionOf(d.CountGenders(d.RoleSlots(role)))
	}
	for _, c := range d.Conferences {
		t.Positions = append(t.Positions, PositionCell{
			Conf: c.ID, Name: c.Name,
			Lead: proportionOf(d.CountGenders(d.LeadAuthors(c.ID))),
			Last: proportionOf(d.CountGenders(d.LastAuthors(c.ID))),
		})
	}
	t.OverallLead = proportionOf(d.CountGenders(d.LeadAuthors()))
	t.OverallLast = proportionOf(d.CountGenders(d.LastAuthors()))
	return t
}

// Cell returns the (conf, role) cell, if present.
func (t RoleTable) Cell(conf dataset.ConfID, role dataset.Role) (RoleCell, bool) {
	for _, c := range t.Cells {
		if c.Conf == conf && c.Role == role {
			return c, true
		}
	}
	return RoleCell{}, false
}

// PCAnalysis is the §3.2 program-committee analysis.
type PCAnalysis struct {
	SlotsTotal  int              // PC-member slots with repeats (paper: 1220)
	UniqueTotal int              // unique PC members (paper: 908)
	Overall     stats.Proportion // women among PC slots (paper: 18.46%)
	SC          stats.Proportion // the largest and most-female PC (29.6%)
	ExcludingSC stats.Proportion // paper: 16.1%
	VsAuthors   stats.ChiSquaredResult

	// ChairsTotal and ZeroWomenChairConfs summarize PC chairs (paper: 36
	// chairs; four conferences appointed no women at all).
	ChairsTotal         int
	ChairWomen          int
	ZeroWomenChairConfs []dataset.ConfID
}

// ProgramCommittee computes §3.2. scID identifies the SC edition in the
// corpus ("" skips the SC breakdown for corpora without SC).
func ProgramCommittee(d *dataset.Dataset, scID dataset.ConfID) (PCAnalysis, error) {
	var res PCAnalysis
	slots := d.RoleSlots(dataset.RolePCMember)
	res.SlotsTotal = len(slots)
	res.UniqueTotal = len(d.UniqueRoleHolders(dataset.RolePCMember))
	res.Overall = proportionOf(d.CountGenders(slots))

	if scID != "" {
		if _, ok := d.Conference(scID); !ok {
			return res, fmt.Errorf("core: no conference %q in corpus", scID)
		}
		res.SC = proportionOf(d.CountGenders(d.RoleSlots(dataset.RolePCMember, scID)))
		var others []dataset.ConfID
		for _, c := range d.Conferences {
			if c.ID != scID {
				others = append(others, c.ID)
			}
		}
		res.ExcludingSC = proportionOf(d.CountGenders(d.RoleSlots(dataset.RolePCMember, others...)))
	}

	authors := proportionOf(d.CountGenders(d.AuthorSlots()))
	test, err := stats.TwoProportionChiSq(res.Overall.K, res.Overall.N, authors.K, authors.N)
	if err != nil {
		return res, err
	}
	res.VsAuthors = test

	for _, c := range d.Conferences {
		gc := d.CountGenders(c.PCChairs)
		res.ChairsTotal += gc.Total()
		res.ChairWomen += gc.Women
		if gc.Total() > 0 && gc.Women == 0 {
			res.ZeroWomenChairConfs = append(res.ZeroWomenChairConfs, c.ID)
		}
	}
	return res, nil
}

// VisibleRoleStats summarizes one §3.3 visible role across conferences.
type VisibleRoleStats struct {
	Role          dataset.Role
	Total         int
	Women         int
	ZeroWomenConf []dataset.ConfID // conferences with a roster but no women
	BestConf      dataset.ConfID   // conference with the highest women ratio
	BestRatio     stats.Proportion

	// VsAuthorsExact compares the role's women share against the author
	// population with Fisher's exact test — the principled choice for
	// these tiny rosters, where the paper notes "the sample sizes are too
	// small for statistical analysis" and stops.
	VsAuthorsExact stats.FisherExactResult
}

// VisibleRoles computes §3.3 for keynotes, panelists and session chairs.
func VisibleRoles(d *dataset.Dataset) []VisibleRoleStats {
	authors := proportionOf(d.CountGenders(d.AuthorSlots()))
	var out []VisibleRoleStats
	for _, role := range []dataset.Role{dataset.RoleKeynote, dataset.RolePanelist, dataset.RoleSessionChair} {
		s := VisibleRoleStats{Role: role}
		best := -1.0
		var knownWomen, knownTotal int
		for _, c := range d.Conferences {
			gc := d.CountGenders(c.RoleHolders(role))
			s.Total += gc.Total()
			s.Women += gc.Women
			knownWomen += gc.Women
			knownTotal += gc.Known()
			if gc.Total() == 0 {
				continue
			}
			if gc.Women == 0 {
				s.ZeroWomenConf = append(s.ZeroWomenConf, c.ID)
			}
			if r := proportionOf(gc); r.N > 0 && r.Ratio() > best {
				best = r.Ratio()
				s.BestConf = c.ID
				s.BestRatio = r
			}
		}
		if knownTotal > 0 && authors.N > 0 {
			if fe, err := stats.FisherExact(
				knownWomen, knownTotal-knownWomen,
				authors.K, authors.N-authors.K); err == nil {
				s.VsAuthorsExact = fe
			}
		}
		out = append(out, s)
	}
	return out
}
