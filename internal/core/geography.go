package core

import (
	"sort"

	"repro/internal/countries"
	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/stats"
)

// CountryRow is one row of Table 2 / Fig 7: women's representation among a
// country's researchers.
type CountryRow struct {
	Code  string
	Name  string
	Ratio stats.Proportion // women / known-gender researchers
	Total int              // researchers incl. unknown gender
}

// TopCountries computes Table 2: the top `limit` countries by researcher
// count (unique authors and PC members) with their female ratios. A limit
// of 0 returns all countries.
func TopCountries(d *dataset.Dataset, limit int) []CountryRow {
	rows := countryRows(d, d.UniqueAuthorsAndPC())
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Total != rows[j].Total {
			return rows[i].Total > rows[j].Total
		}
		return rows[i].Code < rows[j].Code
	})
	if limit > 0 && len(rows) > limit {
		rows = rows[:limit]
	}
	return rows
}

// CountriesWithMinAuthors computes Fig 7: every country with at least
// minAuthors unique authors, sorted by descending female ratio.
func CountriesWithMinAuthors(d *dataset.Dataset, minAuthors int) []CountryRow {
	rows := countryRows(d, d.UniqueAuthors())
	var out []CountryRow
	for _, r := range rows {
		if r.Total >= minAuthors {
			out = append(out, r)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		ri, rj := out[i].Ratio.Ratio(), out[j].Ratio.Ratio()
		switch {
		case ri > rj:
			return true
		case rj > ri:
			return false
		}
		return out[i].Code < out[j].Code
	})
	return out
}

func countryRows(d *dataset.Dataset, ids []dataset.PersonID) []CountryRow {
	type agg struct {
		women, known, total int
	}
	byCode := map[string]*agg{}
	for _, id := range ids {
		p, ok := d.Person(id)
		if !ok || p.CountryCode == "" {
			continue
		}
		a := byCode[p.CountryCode]
		if a == nil {
			a = &agg{}
			byCode[p.CountryCode] = a
		}
		a.total++
		if p.Gender.Known() {
			a.known++
			if p.Gender == gender.Female {
				a.women++
			}
		}
	}
	rows := make([]CountryRow, 0, len(byCode))
	for code, a := range byCode {
		name := code
		if c, ok := countries.ByCode(code); ok {
			name = c.Name
		}
		rows = append(rows, CountryRow{
			Code:  code,
			Name:  name,
			Ratio: stats.Proportion{K: a.women, N: a.known},
			Total: a.total,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Code < rows[j].Code })
	return rows
}

// RegionRow is one row of Table 3: representation of women by UN subregion
// for authors and PC members separately.
type RegionRow struct {
	Region  string
	Authors stats.Proportion
	PC      stats.Proportion
}

// RegionTotal returns the author population of a row (Table 3's sort key).
func (r RegionRow) RegionTotal() int { return r.Authors.N }

// RegionRoleTable computes Table 3, sorted by total authors descending.
// Researchers whose country cannot be mapped to a subregion are dropped,
// matching the paper's "identified authors" framing.
func RegionRoleTable(d *dataset.Dataset) []RegionRow {
	authorTally := regionTally(d, d.UniqueAuthors())
	pcTally := regionTally(d, d.UniqueRoleHolders(dataset.RolePCMember))
	regions := map[string]bool{}
	for r := range authorTally {
		regions[r] = true
	}
	for r := range pcTally {
		regions[r] = true
	}
	var rows []RegionRow
	for region := range regions {
		rows = append(rows, RegionRow{
			Region:  region,
			Authors: authorTally[region],
			PC:      pcTally[region],
		})
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Authors.N != rows[j].Authors.N {
			return rows[i].Authors.N > rows[j].Authors.N
		}
		return rows[i].Region < rows[j].Region
	})
	return rows
}

func regionTally(d *dataset.Dataset, ids []dataset.PersonID) map[string]stats.Proportion {
	out := map[string]stats.Proportion{}
	for _, id := range ids {
		p, ok := d.Person(id)
		if !ok || !p.Gender.Known() {
			continue
		}
		region := countries.SubregionOf(p.CountryCode)
		if region == "" {
			continue
		}
		prop := out[region]
		prop.N++
		if p.Gender == gender.Female {
			prop.K++
		}
		out[region] = prop
	}
	return out
}

// GeographyConcentration summarizes §5.2's headline concentration numbers:
// the US and Western Europe shares of authors and PC members.
type GeographyConcentration struct {
	AuthorsIdentified int
	USAuthors         float64 // paper: 50.2% of identified authors
	WEAuthors         float64 // paper: 14.33%
	PCIdentified      int
	USPC              float64 // paper: 52.57%
	WEPC              float64 // paper: 16.36%
}

// Concentration computes the §5.2 shares over unique authors/PC members
// with a mappable country.
func Concentration(d *dataset.Dataset) GeographyConcentration {
	share := func(ids []dataset.PersonID) (n int, us, we float64) {
		var usN, weN int
		for _, id := range ids {
			p, ok := d.Person(id)
			if !ok || p.CountryCode == "" {
				continue
			}
			n++
			switch {
			case p.CountryCode == "US":
				usN++
			case countries.SubregionOf(p.CountryCode) == countries.WesternEurope:
				weN++
			}
		}
		if n > 0 {
			us = float64(usN) / float64(n)
			we = float64(weN) / float64(n)
		}
		return
	}
	var g GeographyConcentration
	g.AuthorsIdentified, g.USAuthors, g.WEAuthors = share(d.UniqueAuthors())
	g.PCIdentified, g.USPC, g.WEPC = share(d.UniqueRoleHolders(dataset.RolePCMember))
	return g
}
