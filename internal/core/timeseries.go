package core

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// SeriesPoint is one conference edition in the §3.4 flagship time series.
type SeriesPoint struct {
	Series     string // conference series name, e.g. "SC"
	Year       int
	Conf       dataset.ConfID
	FAR        stats.Proportion
	Attendance float64 // reported women's attendance share (0 = unshared)
	LeadFAR    stats.Proportion
}

// FlagshipTrend computes the per-year FAR for every conference series in
// the corpus, sorted by series then year — the §3.4 SC/ISC case study when
// run on the flagship corpus.
func FlagshipTrend(d *dataset.Dataset) []SeriesPoint {
	var out []SeriesPoint
	for _, c := range d.Conferences {
		out = append(out, SeriesPoint{
			Series:     c.Name,
			Year:       c.Year,
			Conf:       c.ID,
			FAR:        proportionOf(d.CountGenders(d.AuthorSlots(c.ID))),
			Attendance: c.WomenAttendance,
			LeadFAR:    proportionOf(d.CountGenders(d.LeadAuthors(c.ID))),
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Series != out[j].Series {
			return out[i].Series < out[j].Series
		}
		return out[i].Year < out[j].Year
	})
	return out
}

// TrendRegression is the slope test behind the §3.4 "no clear trend"
// reading: an OLS fit of FAR on year for one conference series.
type TrendRegression struct {
	Series string
	Fit    stats.RegressionResult
}

// TrendRegressions fits FAR-on-year for every series with at least three
// editions (fewer cannot support a slope test). Series are returned in
// first-appearance order.
func TrendRegressions(points []SeriesPoint) ([]TrendRegression, error) {
	bySeries := map[string][]SeriesPoint{}
	var order []string
	for _, p := range points {
		if _, seen := bySeries[p.Series]; !seen {
			order = append(order, p.Series)
		}
		bySeries[p.Series] = append(bySeries[p.Series], p)
	}
	var out []TrendRegression
	for _, name := range order {
		pts := bySeries[name]
		if len(pts) < 3 {
			continue
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i] = float64(p.Year)
			ys[i] = p.FAR.Ratio()
		}
		fit, err := stats.LinearRegression(xs, ys)
		if err != nil {
			return nil, err
		}
		out = append(out, TrendRegression{Series: name, Fit: fit})
	}
	return out, nil
}

// SeriesStats summarizes one series' FAR trajectory.
type SeriesStats struct {
	Series string
	Years  int
	MinFAR float64
	MaxFAR float64
	Range  float64
}

// TrendSummary aggregates FlagshipTrend points per series (the paper's
// "ISC FAR values were in the range of 5%-9%" style of reporting).
func TrendSummary(points []SeriesPoint) []SeriesStats {
	bySeries := map[string]*SeriesStats{}
	var order []string
	for _, p := range points {
		s := bySeries[p.Series]
		if s == nil {
			s = &SeriesStats{Series: p.Series, MinFAR: 2} // FAR is always <= 1
			bySeries[p.Series] = s
			order = append(order, p.Series)
		}
		s.Years++
		far := p.FAR.Ratio()
		if far < s.MinFAR {
			s.MinFAR = far
		}
		if far > s.MaxFAR {
			s.MaxFAR = far
		}
	}
	out := make([]SeriesStats, 0, len(order))
	for _, name := range order {
		s := bySeries[name]
		s.Range = s.MaxFAR - s.MinFAR
		out = append(out, *s)
	}
	return out
}
