// Package core implements the paper's analyses: female author ratios across
// conferences and roles (§3, Fig 1), the single- vs double-blind and
// lead/last-author comparisons (§3.1), program-committee representation
// (§3.2), visible roles (§3.3), the SC/ISC time series (§3.4), the HPC-only
// topic subset (§4.1), paper reception by lead-author gender (§4.2, Fig 2),
// researcher-experience distributions and bands (§5.1, Figs 3-6), geography
// (§5.2, Tables 2-3, Fig 7), work sector (§5.3, Fig 8), and the
// unknown-gender sensitivity analysis from the Limitations section.
//
// Every analysis is a pure function of a dataset.Dataset, returning a
// structured result that the report package renders and the benchmark
// harness regenerates.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/stats"
)

// ErrNotApplicable marks an analysis that this corpus cannot support (e.g.
// the double- vs single-blind contrast on a corpus where every conference
// is double-blind). Report renderers note it and continue instead of
// failing the whole report.
var ErrNotApplicable = errors.New("core: analysis not applicable to this corpus")

// proportionOf converts a GenderCount into a stats.Proportion over the
// known-gender population, the paper's convention ("excluding the few
// authors for whom we have no gender information").
func proportionOf(gc dataset.GenderCount) stats.Proportion {
	return stats.Proportion{K: gc.Women, N: gc.Known()}
}

// ConfFAR is one conference's female author ratio with its population.
type ConfFAR struct {
	Conf    dataset.ConfID
	Name    string
	Ratio   stats.Proportion // women / known-gender author slots
	Unknown int              // author slots with unassigned gender
}

// FARResult is the §3.1 headline analysis.
type FARResult struct {
	Overall    stats.Proportion // all author slots, all conferences
	Unknown    int
	PerConf    []ConfFAR
	UniqueN    int // unique coauthors (the paper's 1885)
	TotalSlots int // author slots with repeats (the paper's 2236)
}

// AuthorFAR computes the female author ratio overall and per conference.
func AuthorFAR(d *dataset.Dataset) FARResult {
	all := d.CountGenders(d.AuthorSlots())
	res := FARResult{
		Overall:    proportionOf(all),
		Unknown:    all.Unknown,
		UniqueN:    len(d.UniqueAuthors()),
		TotalSlots: len(d.AuthorSlots()),
	}
	for _, c := range d.Conferences {
		gc := d.CountGenders(d.AuthorSlots(c.ID))
		res.PerConf = append(res.PerConf, ConfFAR{
			Conf: c.ID, Name: c.Name, Ratio: proportionOf(gc), Unknown: gc.Unknown,
		})
	}
	return res
}

// BlindComparison is the §3.1 double-blind versus single-blind contrast.
type BlindComparison struct {
	DoubleBlind stats.Proportion // SC+ISC in the 2017 corpus
	SingleBlind stats.Proportion
	Test        stats.ChiSquaredResult

	LeadDouble stats.Proportion
	LeadSingle stats.Proportion
	LeadTest   stats.ChiSquaredResult
}

// CompareBlindReview contrasts author and lead-author FAR between
// double-blind and single-blind conferences. The paper reports FAR 7.57%
// (double) vs 10.52% (single), chi2 = 3.133, p = 0.0767; and lead FAR 6.17%
// vs 11.79%, chi2 = 1.662, p = 0.197.
func CompareBlindReview(d *dataset.Dataset) (BlindComparison, error) {
	var double, single []dataset.ConfID
	for _, c := range d.Conferences {
		if c.DoubleBlind {
			double = append(double, c.ID)
		} else {
			single = append(single, c.ID)
		}
	}
	var res BlindComparison
	if len(double) == 0 || len(single) == 0 {
		return res, fmt.Errorf("%w: need both double- and single-blind conferences (have %d/%d)",
			ErrNotApplicable, len(double), len(single))
	}
	db := proportionOf(d.CountGenders(d.AuthorSlots(double...)))
	sb := proportionOf(d.CountGenders(d.AuthorSlots(single...)))
	test, err := stats.TwoProportionChiSq(db.K, db.N, sb.K, sb.N)
	if err != nil {
		return res, err
	}
	ldb := proportionOf(d.CountGenders(d.LeadAuthors(double...)))
	lsb := proportionOf(d.CountGenders(d.LeadAuthors(single...)))
	leadTest, err := stats.TwoProportionChiSq(ldb.K, ldb.N, lsb.K, lsb.N)
	if err != nil {
		return res, err
	}
	res.DoubleBlind = db
	res.SingleBlind = sb
	res.Test = test
	res.LeadDouble = ldb
	res.LeadSingle = lsb
	res.LeadTest = leadTest
	return res, nil
}

// PositionComparison is the §3.1 lead/last author position analysis.
type PositionComparison struct {
	Overall  stats.Proportion
	Lead     stats.Proportion
	Last     stats.Proportion
	LastTest stats.ChiSquaredResult // last-author vs overall (paper: 8.4% vs 9.9%, chi2=0.724)
}

// CompareAuthorPositions contrasts lead- and last-author female ratios with
// the overall author population.
func CompareAuthorPositions(d *dataset.Dataset) (PositionComparison, error) {
	var res PositionComparison
	res.Overall = proportionOf(d.CountGenders(d.AuthorSlots()))
	res.Lead = proportionOf(d.CountGenders(d.LeadAuthors()))
	res.Last = proportionOf(d.CountGenders(d.LastAuthors()))
	test, err := stats.TwoProportionChiSq(res.Last.K, res.Last.N, res.Overall.K, res.Overall.N)
	if err != nil {
		return res, err
	}
	res.LastTest = test
	return res, nil
}

// sortConfFARs orders per-conference rows by conference date order as they
// appear in the dataset (Table 1 order).
func sortConfFARs(rows []ConfFAR, d *dataset.Dataset) {
	order := make(map[dataset.ConfID]int, len(d.Conferences))
	for i, c := range d.Conferences {
		order[c.ID] = i
	}
	sort.SliceStable(rows, func(i, j int) bool { return order[rows[i].Conf] < order[rows[j].Conf] })
}

// KnownGenderAuthors returns the unique authors with assigned gender, the
// denominator population for most researcher-level analyses.
func KnownGenderAuthors(d *dataset.Dataset) []*dataset.Person {
	var out []*dataset.Person
	for _, id := range d.UniqueAuthors() {
		p, ok := d.Person(id)
		if ok && p.Gender.Known() {
			out = append(out, p)
		}
	}
	return out
}

// splitByGender partitions persons into (women, men), dropping unknowns.
func splitByGender(persons []*dataset.Person) (women, men []*dataset.Person) {
	for _, p := range persons {
		switch p.Gender {
		case gender.Female:
			women = append(women, p)
		case gender.Male:
			men = append(men, p)
		}
	}
	return women, men
}
