package core

import (
	"repro/internal/dataset"
	"repro/internal/scholar"
)

// LinkageAnalysis quantifies the name-disambiguation problem behind the
// paper's Google Scholar coverage (§2): profiles are found by name, and
// namesakes cannot be linked "unambiguously" without manual evidence.
type LinkageAnalysis struct {
	Researchers     int     // researchers considered (unique authors + PC)
	GSLinked        int     // researchers with an unambiguous GS profile
	Coverage        float64 // GSLinked / Researchers (paper: 0.683)
	DistinctNames   int     // distinct researcher names
	AmbiguousNames  int     // names shared by 2+ researchers
	NamesakeClashes int     // researchers whose name is shared
}

// GSLinkage computes the linkage statistics over the demographic
// population, using the scholar name index to detect namesakes.
func GSLinkage(d *dataset.Dataset) LinkageAnalysis {
	var res LinkageAnalysis
	ix := scholar.NewNameIndex()
	ids := d.UniqueAuthorsAndPC()
	for _, id := range ids {
		p, ok := d.Person(id)
		if !ok {
			continue
		}
		res.Researchers++
		if p.HasGSProfile {
			res.GSLinked++
		}
		ix.Register(p.Name, string(p.ID))
	}
	if res.Researchers > 0 {
		res.Coverage = float64(res.GSLinked) / float64(res.Researchers)
	}
	names := ix.Names()
	res.DistinctNames = len(names)
	for _, n := range names {
		_, candidates, r := ix.Resolve(n)
		if r == scholar.Ambiguous {
			res.AmbiguousNames++
			res.NamesakeClashes += len(candidates)
		}
	}
	return res
}
