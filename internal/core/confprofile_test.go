package core

import (
	"errors"
	"testing"

	"repro/internal/dataset"
	"repro/internal/synth"
)

var errTest = errors.New("factory failure")

func TestProfileConferenceSC(t *testing.T) {
	p, err := ProfileConference(corpus.Data, "SC17")
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "SC" || p.Year != 2017 || p.Subfield != "HPC" {
		t.Errorf("identity fields: %+v", p)
	}
	if p.Papers != 61 || p.AuthorSlots != 325 {
		t.Errorf("sizes: %d papers, %d slots", p.Papers, p.AuthorSlots)
	}
	if p.UniqueAuthors > p.AuthorSlots || p.UniqueAuthors == 0 {
		t.Errorf("unique authors %d vs %d slots", p.UniqueAuthors, p.AuthorSlots)
	}
	if !p.DoubleBlind || !p.DiversityChair || !p.Childcare || !p.CodeOfConduct {
		t.Error("SC policy flags wrong")
	}
	// PC roster is 225 people; the known-gender denominator drops the few
	// unassigned ones.
	if p.PC.N < 215 || p.PC.N > 225 {
		t.Errorf("PC known = %d, want 225 minus a few unknowns", p.PC.N)
	}
	if p.MeanTeamSize < 4 || p.MeanTeamSize > 7 {
		t.Errorf("mean team size %.2f", p.MeanTeamSize)
	}
	if p.PapersWithWomen.N != 61 {
		t.Errorf("PapersWithWomen.N = %d", p.PapersWithWomen.N)
	}
	if p.MeanCitations <= 0 {
		t.Errorf("mean citations %.2f", p.MeanCitations)
	}
	// FAR consistent with the direct query.
	far := AuthorFAR(corpus.Data)
	for _, row := range far.PerConf {
		if row.Conf == "SC17" && row.Ratio != p.FAR {
			t.Errorf("profile FAR %v != analysis FAR %v", p.FAR, row.Ratio)
		}
	}
}

func TestProfileConferenceErrors(t *testing.T) {
	if _, err := ProfileConference(corpus.Data, "NOPE"); err == nil {
		t.Error("unknown conference accepted")
	}
}

func TestProfileAll(t *testing.T) {
	profiles, err := ProfileAll(corpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 9 {
		t.Fatalf("%d profiles", len(profiles))
	}
	var slots int
	for _, p := range profiles {
		slots += p.AuthorSlots
	}
	if slots != 2111 {
		t.Errorf("profile slots sum to %d, want 2111", slots)
	}
}

func TestReplicate(t *testing.T) {
	study, err := Replicate(4, func(i int) (*dataset.Dataset, dataset.ConfID, error) {
		c, err := synth.Generate(synth.Default2017(uint64(100 + i)))
		if err != nil {
			return nil, "", err
		}
		return c.Data, "SC17", nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if study.Replicates != 4 {
		t.Errorf("Replicates = %d", study.Replicates)
	}
	if len(study.Metrics) != 5 {
		t.Fatalf("%d metrics", len(study.Metrics))
	}
	far, ok := study.Metric("overall FAR")
	if !ok || len(far.Values) != 4 {
		t.Fatalf("overall FAR metric missing or short: %+v", far)
	}
	// Every replicate lands in the calibrated band, and the spread across
	// replicates is small — the "benchmark" property.
	for _, v := range far.Values {
		if v < 0.085 || v > 0.12 {
			t.Errorf("replicate FAR %.4f outside band", v)
		}
	}
	if far.Summary.StdDev > 0.01 {
		t.Errorf("FAR replicate spread %.4f suspiciously wide", far.Summary.StdDev)
	}
	pc, ok := study.Metric("PC women ratio")
	if !ok {
		t.Fatal("PC metric missing")
	}
	if pc.Summary.Mean < 0.16 || pc.Summary.Mean > 0.21 {
		t.Errorf("mean PC ratio %.4f", pc.Summary.Mean)
	}
	if _, ok := study.Metric("nonexistent"); ok {
		t.Error("unknown metric resolved")
	}
}

func TestReplicateErrors(t *testing.T) {
	if _, err := Replicate(1, nil); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := Replicate(2, nil); err == nil {
		t.Error("nil factory accepted")
	}
	fails := func(i int) (*dataset.Dataset, dataset.ConfID, error) {
		return nil, "", errTest
	}
	if _, err := Replicate(2, fails); err == nil {
		t.Error("failing factory not propagated")
	}
}
