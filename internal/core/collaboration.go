package core

import (
	"repro/internal/collab"
	"repro/internal/dataset"
)

// CollaborationAnalysis is the paper's future-work extension implemented:
// differences in collaboration patterns between women and men, computed on
// the coauthorship graph of the corpus.
type CollaborationAnalysis struct {
	Nodes         int
	Edges         int
	GiantFraction float64

	Mixing  collab.Mixing
	Degrees collab.GenderDegrees
	Teams   collab.TeamSizes
}

// CollaborationPatterns builds the coauthorship graph and runs the gender
// comparisons over it.
func CollaborationPatterns(d *dataset.Dataset) (CollaborationAnalysis, error) {
	g := collab.BuildGraph(d)
	res := CollaborationAnalysis{
		Nodes:         g.Nodes(),
		Edges:         g.Edges(),
		GiantFraction: g.GiantComponentFraction(),
	}
	mixing, err := collab.MixingAnalysis(g, d)
	if err != nil {
		return res, err
	}
	res.Mixing = mixing
	degrees, err := collab.DegreeByGender(g, d)
	if err != nil {
		return res, err
	}
	res.Degrees = degrees
	teams, err := collab.TeamSizeByLeadGender(d)
	if err != nil {
		return res, err
	}
	res.Teams = teams
	return res, nil
}
