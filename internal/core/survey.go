package core

import (
	"math/rand/v2"

	"repro/internal/dataset"
	"repro/internal/gender"
)

// SurveyValidation reproduces the paper's author survey (§2): invite the
// corpus researchers, collect self-identified gender, and compare against
// the pipeline's assignments. The paper "found no discrepancies between
// assigned gender and self-selected gender"; a corrupted assignment
// pipeline surfaces here as a nonzero discrepancy count.
func SurveyValidation(d *dataset.Dataset, rng *rand.Rand, responseRate, declineRate float64) (gender.SurveyResult, error) {
	ids := d.UniqueAuthorsAndPC()
	truths := make([]gender.Gender, 0, len(ids))
	assigned := make([]gender.Gender, 0, len(ids))
	for _, id := range ids {
		p, ok := d.Person(id)
		if !ok {
			continue
		}
		truths = append(truths, p.TrueGender)
		assigned = append(assigned, p.Gender)
	}
	res, _, err := gender.Survey{ResponseRate: responseRate, DeclineRate: declineRate}.Run(rng, truths, assigned)
	return res, err
}
