package core

import (
	"errors"
	"testing"

	"repro/internal/synth"
)

var extendedCorpus = func() *synth.Corpus {
	c, err := synth.Generate(synth.ExtendedSystems(4))
	if err != nil {
		panic(err)
	}
	return c
}()

func TestSubfieldComparison(t *testing.T) {
	r, err := SubfieldComparison(extendedCorpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 8 {
		t.Fatalf("only %d subfields", len(r.Rows))
	}
	// Rows sorted by FAR descending.
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].FAR.Ratio() > r.Rows[i-1].FAR.Ratio() {
			t.Fatal("rows not sorted by FAR")
		}
	}
	// The paper's motivating gap: HPC is the (or nearly the) lowest
	// subfield, and the HPC-vs-rest contrast is decisive on a corpus this
	// size.
	if !(r.HPC.Ratio() < r.Others.Ratio()) {
		t.Errorf("HPC %.4f not below other subfields %.4f", r.HPC.Ratio(), r.Others.Ratio())
	}
	if !r.HPCVsRest.Significant(0.01) {
		t.Errorf("HPC-vs-rest p = %g, want decisive", r.HPCVsRest.P)
	}
	// WebData calibrated as the closest to the CS-wide band tops the list.
	if r.Rows[0].Subfield != "WebData" && r.Rows[1].Subfield != "WebData" {
		t.Errorf("WebData not near the top: %+v", r.Rows[:2])
	}
	// HPC lands in the bottom three.
	pos := -1
	for i, row := range r.Rows {
		if row.Subfield == "HPC" {
			pos = i
		}
	}
	if pos < len(r.Rows)-4 {
		t.Errorf("HPC ranked %d of %d; expected near the bottom", pos+1, len(r.Rows))
	}
}

func TestSubfieldComparisonSingleSubfield(t *testing.T) {
	// The core 2017 corpus is all-HPC: not applicable.
	_, err := SubfieldComparison(corpus.Data)
	if !errors.Is(err, ErrNotApplicable) {
		t.Errorf("single-subfield corpus: err = %v, want ErrNotApplicable", err)
	}
}

func TestExtendedCorpusStructure(t *testing.T) {
	d := extendedCorpus.Data
	if len(d.Conferences) != 27 { // 9 HPC + 18 extension venues
		t.Errorf("%d conferences, want 27", len(d.Conferences))
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Every conference carries a subfield.
	for _, c := range d.Conferences {
		if c.Subfield == "" {
			t.Errorf("conference %s has no subfield", c.ID)
		}
	}
	// Corpus is substantially larger than the core one.
	if len(d.Persons) < 2*len(corpus.Data.Persons) {
		t.Errorf("extended corpus only %d persons vs core %d",
			len(d.Persons), len(corpus.Data.Persons))
	}
}
