package core

import "testing"

func TestGSLinkage(t *testing.T) {
	r := GSLinkage(corpus.Data)
	if r.Researchers == 0 {
		t.Fatal("no researchers")
	}
	// Paper: 68.3% unambiguous GS coverage.
	if r.Coverage < 0.60 || r.Coverage > 0.78 {
		t.Errorf("coverage %.3f outside [0.60, 0.78]", r.Coverage)
	}
	// Name pools are finite, so namesakes are inevitable in a ~2700-person
	// corpus — the disambiguation problem must actually exist.
	if r.AmbiguousNames == 0 {
		t.Error("no ambiguous names; disambiguation substrate is vacuous")
	}
	if r.DistinctNames >= r.Researchers {
		t.Errorf("distinct names %d >= researchers %d despite namesakes",
			r.DistinctNames, r.Researchers)
	}
	if r.NamesakeClashes < 2*r.AmbiguousNames {
		t.Errorf("%d clashes for %d ambiguous names (each needs >= 2)",
			r.NamesakeClashes, r.AmbiguousNames)
	}
}
