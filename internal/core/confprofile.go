package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// ConferenceProfile is the one-stop summary of a single conference: its
// policies, population sizes, and women's representation in every role —
// the per-venue view that Fig 1's columns slice.
type ConferenceProfile struct {
	Conf           dataset.ConfID
	Name           string
	Year           int
	Subfield       string
	CountryCode    string
	Papers         int
	AuthorSlots    int
	UniqueAuthors  int
	AcceptanceRate float64

	DoubleBlind    bool
	DiversityChair bool
	CodeOfConduct  bool
	Childcare      bool

	FAR           stats.Proportion
	LeadFAR       stats.Proportion
	LastFAR       stats.Proportion
	PC            stats.Proportion
	PCChairs      stats.Proportion
	Keynotes      stats.Proportion
	Panelists     stats.Proportion
	SessionChairs stats.Proportion

	// MeanTeamSize is the average author-list length.
	MeanTeamSize float64
	// PapersWithWomen is the share of papers with >= 1 woman coauthor.
	PapersWithWomen stats.Proportion
	// MeanCitations is the average 36-month citation count.
	MeanCitations float64
}

// ProfileConference assembles the profile for one conference.
func ProfileConference(d *dataset.Dataset, id dataset.ConfID) (ConferenceProfile, error) {
	c, ok := d.Conference(id)
	if !ok {
		return ConferenceProfile{}, fmt.Errorf("core: no conference %q", id)
	}
	papers := d.PapersOf(id)
	p := ConferenceProfile{
		Conf:           c.ID,
		Name:           c.Name,
		Year:           c.Year,
		Subfield:       c.Subfield,
		CountryCode:    c.CountryCode,
		Papers:         len(papers),
		AuthorSlots:    len(d.AuthorSlots(id)),
		UniqueAuthors:  len(d.UniqueAuthors(id)),
		AcceptanceRate: c.AcceptanceRate,
		DoubleBlind:    c.DoubleBlind,
		DiversityChair: c.DiversityChair,
		CodeOfConduct:  c.CodeOfConduct,
		Childcare:      c.Childcare,
		FAR:            proportionOf(d.CountGenders(d.AuthorSlots(id))),
		LeadFAR:        proportionOf(d.CountGenders(d.LeadAuthors(id))),
		LastFAR:        proportionOf(d.CountGenders(d.LastAuthors(id))),
		PC:             proportionOf(d.CountGenders(c.PCMembers)),
		PCChairs:       proportionOf(d.CountGenders(c.PCChairs)),
		Keynotes:       proportionOf(d.CountGenders(c.Keynotes)),
		Panelists:      proportionOf(d.CountGenders(c.Panelists)),
		SessionChairs:  proportionOf(d.CountGenders(c.SessionChairs)),
	}
	var slots, cites int
	for _, paper := range papers {
		slots += len(paper.Authors)
		cites += paper.Citations36
		gc := d.CountGenders(paper.Authors)
		p.PapersWithWomen.N++
		if gc.Women > 0 {
			p.PapersWithWomen.K++
		}
	}
	if len(papers) > 0 {
		p.MeanTeamSize = float64(slots) / float64(len(papers))
		p.MeanCitations = float64(cites) / float64(len(papers))
	}
	return p, nil
}

// ProfileAll returns profiles for every conference, in dataset order.
func ProfileAll(d *dataset.Dataset) ([]ConferenceProfile, error) {
	out := make([]ConferenceProfile, 0, len(d.Conferences))
	for _, c := range d.Conferences {
		p, err := ProfileConference(d, c.ID)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
