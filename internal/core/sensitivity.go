package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gender"
)

// Observation is one directional finding checked by the sensitivity
// analysis: its effect direction (positive means "women's ratio in group A
// exceeds group B" or the analysis-specific analog) and whether its test
// is significant at alpha = 0.05.
type Observation struct {
	Name        string
	Effect      float64 // signed effect size (difference of proportions)
	P           float64
	Significant bool
}

// SensitivityResult is the Limitations-section analysis: force every
// unknown-gender researcher to women, then to men, and check that no
// observation changes direction or significance (the paper's finding).
type SensitivityResult struct {
	UnknownCount int
	Baseline     []Observation
	AllWomen     []Observation
	AllMen       []Observation
	// Stable reports whether every observation kept its direction and
	// significance under both forcings.
	Stable bool
	// Flips lists the observation names that changed, if any.
	Flips []string
}

// SensitivityAnalysis recomputes the paper's key observations under the
// all-women and all-men forcings of the 144 unknown-gender researchers.
// scID names the SC edition for the PC analysis.
func SensitivityAnalysis(d *dataset.Dataset, scID dataset.ConfID) (SensitivityResult, error) {
	var res SensitivityResult
	for _, p := range d.Persons {
		if !p.Gender.Known() {
			res.UnknownCount++
		}
	}
	base, err := keyObservations(d, scID)
	if err != nil {
		return res, fmt.Errorf("core: baseline observations: %w", err)
	}
	res.Baseline = base

	women, err := keyObservations(forceUnknown(d, gender.Female), scID)
	if err != nil {
		return res, fmt.Errorf("core: all-women forcing: %w", err)
	}
	res.AllWomen = women

	men, err := keyObservations(forceUnknown(d, gender.Male), scID)
	if err != nil {
		return res, fmt.Errorf("core: all-men forcing: %w", err)
	}
	res.AllMen = men

	res.Stable = true
	for i := range base {
		for _, alt := range [][]Observation{women, men} {
			if sign(alt[i].Effect) != sign(base[i].Effect) || alt[i].Significant != base[i].Significant {
				res.Stable = false
				res.Flips = append(res.Flips, base[i].Name)
				break
			}
		}
	}
	return res, nil
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// keyObservations evaluates the directional findings the paper re-checked.
func keyObservations(d *dataset.Dataset, scID dataset.ConfID) ([]Observation, error) {
	const alpha = 0.05
	var out []Observation

	pc, err := ProgramCommittee(d, scID)
	if err != nil {
		return nil, err
	}
	authors := proportionOf(d.CountGenders(d.AuthorSlots()))
	out = append(out, Observation{
		Name:        "PC members more female than authors",
		Effect:      pc.Overall.Ratio() - authors.Ratio(),
		P:           pc.VsAuthors.P,
		Significant: pc.VsAuthors.P < alpha,
	})

	blind, err := CompareBlindReview(d)
	if err != nil {
		return nil, err
	}
	out = append(out, Observation{
		Name:        "double-blind conferences have lower FAR",
		Effect:      blind.SingleBlind.Ratio() - blind.DoubleBlind.Ratio(),
		P:           blind.Test.P,
		Significant: blind.Test.P < alpha,
	})

	pos, err := CompareAuthorPositions(d)
	if err != nil {
		return nil, err
	}
	out = append(out, Observation{
		Name:        "last authors less female than overall",
		Effect:      pos.Overall.Ratio() - pos.Last.Ratio(),
		P:           pos.LastTest.P,
		Significant: pos.LastTest.P < alpha,
	})

	bands, err := ExperienceBands(d)
	if err != nil {
		return nil, err
	}
	out = append(out, Observation{
		Name:        "female authors more often novice",
		Effect:      bands.NoviceFemale.Ratio() - bands.NoviceMale.Ratio(),
		P:           bands.NoviceTest.P,
		Significant: bands.NoviceTest.P < alpha,
	})
	return out, nil
}

// forceUnknown returns a copy of the dataset in which every unknown-gender
// researcher is assigned g. Conferences and papers are shared (they are
// not mutated); person records are copied.
func forceUnknown(d *dataset.Dataset, g gender.Gender) *dataset.Dataset {
	out := dataset.New()
	for _, c := range d.Conferences {
		if err := out.AddConference(c); err != nil {
			panic(err) // same IDs as a valid dataset
		}
	}
	for _, p := range d.Papers {
		if err := out.AddPaper(p); err != nil {
			panic(err)
		}
	}
	for id, p := range d.Persons {
		cp := *p
		if !cp.Gender.Known() {
			cp.Gender = g
		}
		if err := out.AddPerson(&cp); err != nil {
			panic(err)
		}
		_ = id
	}
	return out
}
