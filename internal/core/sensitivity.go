package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gender"
)

// Observation is one directional finding checked by the sensitivity
// analysis: its effect direction (positive means "women's ratio in group A
// exceeds group B" or the analysis-specific analog) and whether its test
// is significant at alpha = 0.05.
type Observation struct {
	Name        string
	Effect      float64 // signed effect size (difference of proportions)
	P           float64
	Significant bool
}

// SensitivityResult is the Limitations-section analysis: force every
// unknown-gender researcher to women, then to men, and check that no
// observation changes direction or significance (the paper's finding).
type SensitivityResult struct {
	UnknownCount int
	Baseline     []Observation
	AllWomen     []Observation
	AllMen       []Observation
	// Stable reports whether every observation kept its direction and
	// significance under both forcings.
	Stable bool
	// Flips lists the observation names that changed, if any.
	Flips []string
}

// SensitivityAnalysis recomputes the paper's key observations under the
// all-women and all-men forcings of the 144 unknown-gender researchers.
// scID names the SC edition for the PC analysis.
func SensitivityAnalysis(d *dataset.Dataset, scID dataset.ConfID) (SensitivityResult, error) {
	var res SensitivityResult
	for _, p := range d.Persons {
		if !p.Gender.Known() {
			res.UnknownCount++
		}
	}
	base, err := keyObservations(d, scID)
	if err != nil {
		return res, fmt.Errorf("core: baseline observations: %w", err)
	}
	res.Baseline = base

	women, err := keyObservations(forceUnknown(d, gender.Female), scID)
	if err != nil {
		return res, fmt.Errorf("core: all-women forcing: %w", err)
	}
	res.AllWomen = women

	men, err := keyObservations(forceUnknown(d, gender.Male), scID)
	if err != nil {
		return res, fmt.Errorf("core: all-men forcing: %w", err)
	}
	res.AllMen = men

	res.Stable = true
	for i := range base {
		for _, alt := range [][]Observation{women, men} {
			if sign(alt[i].Effect) != sign(base[i].Effect) || alt[i].Significant != base[i].Significant {
				res.Stable = false
				res.Flips = append(res.Flips, base[i].Name)
				break
			}
		}
	}
	return res, nil
}

// CoverageSensitivity is the degraded-coverage analog of the paper's
// unknown-gender forcing: when the harvest links fewer researchers than
// the pristine corpus (service faults, breaker sheds, abandoned lookups),
// the GS-backed exhibits run on partial data. This analysis recomputes the
// headline FAR and the directional observations on the degraded corpus and
// checks them against the pristine baseline, annotating which exhibits ran
// on partial data.
type CoverageSensitivity struct {
	// BaselineCoverage / AchievedCoverage are the GS linkage rates of the
	// pristine and harvested corpora (the paper achieved 0.683).
	BaselineCoverage float64
	AchievedCoverage float64
	// BaselineS2 / AchievedS2 are the S2 coverage rates (paper: 1.0).
	BaselineS2 float64
	AchievedS2 float64

	// BaselineFAR / DegradedFAR are the headline female author ratios.
	BaselineFAR float64
	DegradedFAR float64

	// Baseline / Degraded are the paper's directional observations
	// evaluated on each corpus.
	Baseline []Observation
	Degraded []Observation
	// Stable reports whether every observation kept direction and
	// significance despite the coverage loss.
	Stable bool
	// Flips lists the observations that changed, if any.
	Flips []string

	// PartialExhibits names the paper exhibits that consumed degraded
	// data (empty when coverage is intact).
	PartialExhibits []string
}

// CoverageSensitivityAnalysis contrasts the analyses on a pristine corpus
// against the same analyses on its harvested (possibly degraded) copy.
func CoverageSensitivityAnalysis(baseline, degraded *dataset.Dataset, scID dataset.ConfID) (CoverageSensitivity, error) {
	var res CoverageSensitivity
	res.BaselineCoverage = gsCoverage(baseline)
	res.AchievedCoverage = gsCoverage(degraded)
	res.BaselineS2 = s2Coverage(baseline)
	res.AchievedS2 = s2Coverage(degraded)
	res.BaselineFAR = AuthorFAR(baseline).Overall.Ratio()
	res.DegradedFAR = AuthorFAR(degraded).Overall.Ratio()

	base, err := keyObservations(baseline, scID)
	if err != nil {
		return res, fmt.Errorf("core: baseline observations: %w", err)
	}
	res.Baseline = base
	deg, err := keyObservations(degraded, scID)
	if err != nil {
		return res, fmt.Errorf("core: degraded observations: %w", err)
	}
	res.Degraded = deg

	res.Stable = true
	for i := range base {
		if sign(deg[i].Effect) != sign(base[i].Effect) || deg[i].Significant != base[i].Significant {
			res.Stable = false
			res.Flips = append(res.Flips, base[i].Name)
		}
	}
	if res.AchievedCoverage < res.BaselineCoverage {
		res.PartialExhibits = append(res.PartialExhibits,
			"Fig 3 — past publications (Google Scholar)",
			"Fig 4 — h-index",
			"Fig 6 — experience bands",
			"§5.1 — GS vs S2 source correlation",
		)
	}
	if res.AchievedS2 < res.BaselineS2 {
		res.PartialExhibits = append(res.PartialExhibits,
			"Fig 5 — past publications (Semantic Scholar)")
	}
	return res, nil
}

// gsCoverage is the fraction of researchers carrying a GS profile.
func gsCoverage(d *dataset.Dataset) float64 {
	total, linked := 0, 0
	for _, p := range d.Persons {
		total++
		if p.HasGSProfile {
			linked++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(linked) / float64(total)
}

// s2Coverage is the fraction of researchers carrying an S2 record.
func s2Coverage(d *dataset.Dataset) float64 {
	total, covered := 0, 0
	for _, p := range d.Persons {
		total++
		if p.HasS2 {
			covered++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

func sign(x float64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	default:
		return 0
	}
}

// keyObservations evaluates the directional findings the paper re-checked.
func keyObservations(d *dataset.Dataset, scID dataset.ConfID) ([]Observation, error) {
	const alpha = 0.05
	var out []Observation

	pc, err := ProgramCommittee(d, scID)
	if err != nil {
		return nil, err
	}
	authors := proportionOf(d.CountGenders(d.AuthorSlots()))
	out = append(out, Observation{
		Name:        "PC members more female than authors",
		Effect:      pc.Overall.Ratio() - authors.Ratio(),
		P:           pc.VsAuthors.P,
		Significant: pc.VsAuthors.P < alpha,
	})

	blind, err := CompareBlindReview(d)
	if err != nil {
		return nil, err
	}
	out = append(out, Observation{
		Name:        "double-blind conferences have lower FAR",
		Effect:      blind.SingleBlind.Ratio() - blind.DoubleBlind.Ratio(),
		P:           blind.Test.P,
		Significant: blind.Test.P < alpha,
	})

	pos, err := CompareAuthorPositions(d)
	if err != nil {
		return nil, err
	}
	out = append(out, Observation{
		Name:        "last authors less female than overall",
		Effect:      pos.Overall.Ratio() - pos.Last.Ratio(),
		P:           pos.LastTest.P,
		Significant: pos.LastTest.P < alpha,
	})

	bands, err := ExperienceBands(d)
	if err != nil {
		return nil, err
	}
	out = append(out, Observation{
		Name:        "female authors more often novice",
		Effect:      bands.NoviceFemale.Ratio() - bands.NoviceMale.Ratio(),
		P:           bands.NoviceTest.P,
		Significant: bands.NoviceTest.P < alpha,
	})
	return out, nil
}

// forceUnknown returns a copy of the dataset in which every unknown-gender
// researcher is assigned g. Conferences and papers are shared (they are
// not mutated); person records are copied.
func forceUnknown(d *dataset.Dataset, g gender.Gender) *dataset.Dataset {
	out := dataset.New()
	for _, c := range d.Conferences {
		if err := out.AddConference(c); err != nil {
			panic(err) // same IDs as a valid dataset
		}
	}
	for _, p := range d.Papers {
		if err := out.AddPaper(p); err != nil {
			panic(err)
		}
	}
	for id, p := range d.Persons {
		cp := *p
		if !cp.Gender.Known() {
			cp.Gender = g
		}
		if err := out.AddPerson(&cp); err != nil {
			panic(err)
		}
		_ = id
	}
	return out
}
