package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// PolicyComparison contrasts conferences with diversity initiatives (a
// diversity/inclusivity chair, as SC and ISC appointed) against those
// without — the question running through §3 and §3.4 of the paper: do the
// initiatives coincide with higher representation of women?
type PolicyComparison struct {
	WithPolicy    []dataset.ConfID
	WithoutPolicy []dataset.ConfID

	// Author population: the paper's §3.4 observation is that the two
	// diversity-chair venues actually have LOWER FAR (policies look
	// reactive, not yet effective).
	FARWith    stats.Proportion
	FARWithout stats.Proportion
	FARTest    stats.ChiSquaredResult

	// Invited roles (PC members + keynotes + panelists + session chairs):
	// here SC's explicit push shows — invited representation is higher at
	// policy venues.
	InvitedWith    stats.Proportion
	InvitedWithout stats.Proportion
	InvitedTest    stats.ChiSquaredResult
}

// DiversityPolicy computes the policy contrast over the corpus.
func DiversityPolicy(d *dataset.Dataset) (PolicyComparison, error) {
	var res PolicyComparison
	for _, c := range d.Conferences {
		if c.DiversityChair {
			res.WithPolicy = append(res.WithPolicy, c.ID)
		} else {
			res.WithoutPolicy = append(res.WithoutPolicy, c.ID)
		}
	}
	if len(res.WithPolicy) == 0 || len(res.WithoutPolicy) == 0 {
		return res, fmt.Errorf("%w: need conferences both with and without a diversity chair (have %d/%d)",
			ErrNotApplicable, len(res.WithPolicy), len(res.WithoutPolicy))
	}
	res.FARWith = proportionOf(d.CountGenders(d.AuthorSlots(res.WithPolicy...)))
	res.FARWithout = proportionOf(d.CountGenders(d.AuthorSlots(res.WithoutPolicy...)))
	test, err := stats.TwoProportionChiSq(res.FARWith.K, res.FARWith.N, res.FARWithout.K, res.FARWithout.N)
	if err != nil {
		return res, err
	}
	res.FARTest = test

	invited := func(confs []dataset.ConfID) stats.Proportion {
		var ids []dataset.PersonID
		for _, role := range []dataset.Role{
			dataset.RolePCMember, dataset.RoleKeynote,
			dataset.RolePanelist, dataset.RoleSessionChair,
		} {
			ids = append(ids, d.RoleSlots(role, confs...)...)
		}
		return proportionOf(d.CountGenders(ids))
	}
	res.InvitedWith = invited(res.WithPolicy)
	res.InvitedWithout = invited(res.WithoutPolicy)
	test, err = stats.TwoProportionChiSq(res.InvitedWith.K, res.InvitedWith.N, res.InvitedWithout.K, res.InvitedWithout.N)
	if err != nil {
		return res, err
	}
	res.InvitedTest = test
	return res, nil
}
