package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/synth"
)

// corpus is the shared full-size synthetic corpus.
var corpus = func() *synth.Corpus {
	c, err := synth.Generate(synth.Default2017(1))
	if err != nil {
		panic(err)
	}
	return c
}()

// miniCorpus builds a small exact-arithmetic corpus: 2 conferences (one
// double-blind), 4 papers, 10 people with controlled genders.
func miniCorpus(t *testing.T) *dataset.Dataset {
	t.Helper()
	d := dataset.New()
	add := func(id string, g gender.Gender, cc string) {
		p := &dataset.Person{
			ID: dataset.PersonID(id), Name: id, Forename: id,
			TrueGender: g, Gender: g, CountryCode: cc,
		}
		if g.Known() {
			p.AssignMethod = gender.MethodManual
		}
		if err := d.AddPerson(p); err != nil {
			t.Fatal(err)
		}
	}
	add("f1", gender.Female, "US")
	add("f2", gender.Female, "DE")
	add("f3", gender.Female, "US")
	add("m1", gender.Male, "US")
	add("m2", gender.Male, "US")
	add("m3", gender.Male, "JP")
	add("m4", gender.Male, "JP")
	add("m5", gender.Male, "FR")
	add("m6", gender.Male, "US")
	add("u1", gender.Unknown, "US")

	confs := []*dataset.Conference{
		{
			ID: "DB1", Name: "Double", Year: 2017,
			Date: time.Date(2017, 11, 1, 0, 0, 0, 0, time.UTC), CountryCode: "US",
			AcceptanceRate: 0.2, DoubleBlind: true,
			PCChairs:  []dataset.PersonID{"m1"},
			PCMembers: []dataset.PersonID{"f1", "m1", "m2", "m3"},
			Keynotes:  []dataset.PersonID{"m4"},
		},
		{
			ID: "SB1", Name: "Single", Year: 2017,
			Date: time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC), CountryCode: "DE",
			AcceptanceRate: 0.3,
			PCChairs:       []dataset.PersonID{"f2"},
			PCMembers:      []dataset.PersonID{"f2", "m4", "m5"},
			SessionChairs:  []dataset.PersonID{"m5", "m6"},
		},
	}
	for _, c := range confs {
		if err := d.AddConference(c); err != nil {
			t.Fatal(err)
		}
	}
	papers := []*dataset.Paper{
		{ID: "a", Conf: "DB1", Title: "A", Authors: []dataset.PersonID{"m1", "f1", "m2"}, Citations36: 10, HPCTopic: true},
		{ID: "b", Conf: "DB1", Title: "B", Authors: []dataset.PersonID{"m3", "u1"}, Citations36: 0},
		{ID: "c", Conf: "SB1", Title: "C", Authors: []dataset.PersonID{"f2", "m4"}, Citations36: 25, HPCTopic: true},
		{ID: "d", Conf: "SB1", Title: "D", Authors: []dataset.PersonID{"m5", "f3", "m6"}, Citations36: 4},
	}
	for _, p := range papers {
		if err := d.AddPaper(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAuthorFARMini(t *testing.T) {
	d := miniCorpus(t)
	r := AuthorFAR(d)
	// Slots: 3+2+2+3 = 10; genders: f1,f2,f3 female; u1 unknown; 6 male.
	if r.TotalSlots != 10 || r.UniqueN != 10 {
		t.Errorf("slots/unique = %d/%d", r.TotalSlots, r.UniqueN)
	}
	if r.Overall.K != 3 || r.Overall.N != 9 {
		t.Errorf("overall = %v", r.Overall)
	}
	if r.Unknown != 1 {
		t.Errorf("unknown = %d", r.Unknown)
	}
	if len(r.PerConf) != 2 {
		t.Fatalf("per-conf rows = %d", len(r.PerConf))
	}
	// DB1: 5 slots, 1 unknown, 1 woman of 4 known.
	if r.PerConf[0].Conf != "DB1" || r.PerConf[0].Ratio.K != 1 || r.PerConf[0].Ratio.N != 4 {
		t.Errorf("DB1 row = %+v", r.PerConf[0])
	}
	// SB1: 5 slots, 2 women of 5 known.
	if r.PerConf[1].Ratio.K != 2 || r.PerConf[1].Ratio.N != 5 {
		t.Errorf("SB1 row = %+v", r.PerConf[1])
	}
}

func TestCompareBlindReviewMini(t *testing.T) {
	d := miniCorpus(t)
	r, err := CompareBlindReview(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.DoubleBlind.K != 1 || r.DoubleBlind.N != 4 {
		t.Errorf("double = %v", r.DoubleBlind)
	}
	if r.SingleBlind.K != 2 || r.SingleBlind.N != 5 {
		t.Errorf("single = %v", r.SingleBlind)
	}
	// Leads: DB1 leads m1, m3 (0/2 women); SB1 leads f2, m5 (1/2).
	if r.LeadDouble.K != 0 || r.LeadDouble.N != 2 || r.LeadSingle.K != 1 || r.LeadSingle.N != 2 {
		t.Errorf("leads = %v vs %v", r.LeadDouble, r.LeadSingle)
	}
	if r.Test.P < 0 || r.Test.P > 1 {
		t.Errorf("p = %g", r.Test.P)
	}
}

func TestCompareBlindReviewRequiresBothKinds(t *testing.T) {
	d := miniCorpus(t)
	for _, c := range d.Conferences {
		c.DoubleBlind = true
	}
	if _, err := CompareBlindReview(d); err == nil {
		t.Error("all-double-blind corpus must error")
	}
}

func TestCompareAuthorPositionsMini(t *testing.T) {
	d := miniCorpus(t)
	r, err := CompareAuthorPositions(d)
	if err != nil {
		t.Fatal(err)
	}
	// Leads: m1, m3, f2, m5 -> 1/4. Lasts: m2, u1, m4, m6 -> 0/3 known.
	if r.Lead.K != 1 || r.Lead.N != 4 {
		t.Errorf("lead = %v", r.Lead)
	}
	if r.Last.K != 0 || r.Last.N != 3 {
		t.Errorf("last = %v", r.Last)
	}
	if r.Overall.K != 3 || r.Overall.N != 9 {
		t.Errorf("overall = %v", r.Overall)
	}
}

func TestRoleRepresentationMini(t *testing.T) {
	d := miniCorpus(t)
	tab := RoleRepresentation(d)
	// 6 roles x 2 conferences.
	if len(tab.Cells) != 12 {
		t.Fatalf("cells = %d, want 12", len(tab.Cells))
	}
	cell, ok := tab.Cell("DB1", dataset.RolePCMember)
	if !ok || cell.Ratio.K != 1 || cell.Ratio.N != 4 {
		t.Errorf("DB1 PC cell = %+v, %v", cell, ok)
	}
	cell, ok = tab.Cell("SB1", dataset.RoleSessionChair)
	if !ok || cell.Ratio.K != 0 || cell.Ratio.N != 2 {
		t.Errorf("SB1 session chairs = %+v", cell)
	}
	// Roles with no roster anywhere still appear with N = 0 cells.
	cell, ok = tab.Cell("DB1", dataset.RolePanelist)
	if !ok || cell.Ratio.N != 0 {
		t.Errorf("empty panelist cell = %+v, %v", cell, ok)
	}
	if tab.Overall[dataset.RolePCMember].N != 7 || tab.Overall[dataset.RolePCMember].K != 2 {
		t.Errorf("overall PC = %v", tab.Overall[dataset.RolePCMember])
	}
	if _, ok := tab.Cell("NOPE", dataset.RoleAuthor); ok {
		t.Error("unknown conference cell resolved")
	}
}

func TestProgramCommitteeMini(t *testing.T) {
	d := miniCorpus(t)
	r, err := ProgramCommittee(d, "DB1")
	if err != nil {
		t.Fatal(err)
	}
	if r.SlotsTotal != 7 || r.UniqueTotal != 7 {
		t.Errorf("slots/unique = %d/%d", r.SlotsTotal, r.UniqueTotal)
	}
	if r.Overall.K != 2 || r.Overall.N != 7 {
		t.Errorf("overall = %v", r.Overall)
	}
	if r.SC.K != 1 || r.SC.N != 4 {
		t.Errorf("SC(=DB1) = %v", r.SC)
	}
	if r.ExcludingSC.K != 1 || r.ExcludingSC.N != 3 {
		t.Errorf("excluding = %v", r.ExcludingSC)
	}
	if r.ChairsTotal != 2 || r.ChairWomen != 1 {
		t.Errorf("chairs = %d women %d", r.ChairsTotal, r.ChairWomen)
	}
	if len(r.ZeroWomenChairConfs) != 1 || r.ZeroWomenChairConfs[0] != "DB1" {
		t.Errorf("zero-women chair confs = %v", r.ZeroWomenChairConfs)
	}
	if _, err := ProgramCommittee(d, "NOPE"); err == nil {
		t.Error("unknown SC id must error")
	}
	// Empty scID skips the SC breakdown.
	r2, err := ProgramCommittee(d, "")
	if err != nil {
		t.Fatal(err)
	}
	if r2.SC.N != 0 {
		t.Errorf("SC breakdown should be empty, got %v", r2.SC)
	}
}

func TestVisibleRolesMini(t *testing.T) {
	d := miniCorpus(t)
	rs := VisibleRoles(d)
	if len(rs) != 3 {
		t.Fatalf("%d visible roles", len(rs))
	}
	for _, r := range rs {
		switch r.Role {
		case dataset.RoleKeynote:
			if r.Total != 1 || r.Women != 0 || len(r.ZeroWomenConf) != 1 {
				t.Errorf("keynotes = %+v", r)
			}
		case dataset.RoleSessionChair:
			if r.Total != 2 || r.Women != 0 {
				t.Errorf("session chairs = %+v", r)
			}
		case dataset.RolePanelist:
			if r.Total != 0 || len(r.ZeroWomenConf) != 0 {
				t.Errorf("panelists = %+v", r)
			}
		}
	}
}

func TestHPCOnlySubsetMini(t *testing.T) {
	d := miniCorpus(t)
	r, err := HPCOnlySubset(d)
	if err != nil {
		t.Fatal(err)
	}
	if r.HPCPapers != 2 || r.TotalPapers != 4 {
		t.Errorf("papers = %d/%d", r.HPCPapers, r.TotalPapers)
	}
	// HPC slots: paper a (m1,f1,m2) + paper c (f2,m4): 2/5 women.
	if r.HPCAuthors.K != 2 || r.HPCAuthors.N != 5 {
		t.Errorf("HPC authors = %v", r.HPCAuthors)
	}
	// HPC leads: m1, f2 -> 1/2.
	if r.HPCLead.K != 1 || r.HPCLead.N != 2 {
		t.Errorf("HPC leads = %v", r.HPCLead)
	}
	// Untagged corpus errors.
	for _, p := range d.Papers {
		p.HPCTopic = false
	}
	if _, err := HPCOnlySubset(d); err == nil {
		t.Error("corpus without HPC tags must error")
	}
}

func TestFlagshipTrendAndSummary(t *testing.T) {
	c, err := synth.Generate(synth.FlagshipSeries(5))
	if err != nil {
		t.Fatal(err)
	}
	points := FlagshipTrend(c.Data)
	if len(points) != 10 {
		t.Fatalf("%d points, want 10", len(points))
	}
	// Sorted by series then year.
	for i := 1; i < len(points); i++ {
		a, b := points[i-1], points[i]
		if a.Series > b.Series || (a.Series == b.Series && a.Year >= b.Year) {
			t.Fatalf("points unsorted at %d: %+v then %+v", i, a, b)
		}
	}
	// ISC FAR stays in a low band (paper: 5-9%); SC attendance 12-14%.
	for _, p := range points {
		if p.Series == "ISC" {
			far := p.FAR.Ratio()
			if far < 0.01 || far > 0.14 {
				t.Errorf("ISC %d FAR %.4f outside the paper's band", p.Year, far)
			}
		}
		if p.Series == "SC" && (p.Attendance < 0.11 || p.Attendance > 0.15) {
			t.Errorf("SC %d attendance %.3f", p.Year, p.Attendance)
		}
	}
	sum := TrendSummary(points)
	if len(sum) != 2 {
		t.Fatalf("%d series summaries", len(sum))
	}
	for _, s := range sum {
		if s.Years != 5 {
			t.Errorf("%s years = %d", s.Series, s.Years)
		}
		if s.MinFAR > s.MaxFAR || math.Abs(s.Range-(s.MaxFAR-s.MinFAR)) > 1e-12 {
			t.Errorf("%s min/max/range inconsistent: %+v", s.Series, s)
		}
	}
}

func TestSensitivityAnalysisOnFullCorpus(t *testing.T) {
	r, err := SensitivityAnalysis(corpus.Data, "SC17")
	if err != nil {
		t.Fatal(err)
	}
	if r.UnknownCount == 0 {
		t.Fatal("corpus has no unknown-gender researchers; sensitivity is vacuous")
	}
	if len(r.Baseline) != 4 || len(r.AllWomen) != 4 || len(r.AllMen) != 4 {
		t.Fatalf("observation counts: %d/%d/%d", len(r.Baseline), len(r.AllWomen), len(r.AllMen))
	}
	// The paper's finding on its corpus: stable under both forcings. Our
	// corpus has ~3% unknowns, so direction stability must hold for the
	// strong effects; assert the key one (PC > authors) explicitly.
	if r.Baseline[0].Effect <= 0 || r.AllWomen[0].Effect <= 0 || r.AllMen[0].Effect <= 0 {
		t.Error("PC-vs-authors direction flipped under forcing")
	}
	if !r.Baseline[0].Significant {
		t.Error("PC-vs-authors should be significant at baseline")
	}
	// Stable flag consistent with Flips.
	if r.Stable != (len(r.Flips) == 0) {
		t.Errorf("Stable=%v but Flips=%v", r.Stable, r.Flips)
	}
}

func TestForceUnknownDoesNotMutateOriginal(t *testing.T) {
	d := miniCorpus(t)
	forced := forceUnknown(d, gender.Female)
	orig, _ := d.Person("u1")
	if orig.Gender.Known() {
		t.Fatal("original dataset mutated")
	}
	f, _ := forced.Person("u1")
	if f.Gender != gender.Female {
		t.Fatal("forcing did not apply")
	}
	// Forced copy has identical known-gender counts plus the forced ones.
	gcOrig := d.CountGenders(d.AuthorSlots())
	gcForced := forced.CountGenders(forced.AuthorSlots())
	if gcForced.Women != gcOrig.Women+1 || gcForced.Unknown != 0 {
		t.Errorf("forced counts wrong: %+v from %+v", gcForced, gcOrig)
	}
}
