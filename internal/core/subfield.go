package core

import (
	"fmt"
	"sort"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// SubfieldRow is one systems subfield's female author ratio in the
// extended corpus.
type SubfieldRow struct {
	Subfield string
	Venues   int
	FAR      stats.Proportion
}

// SubfieldAnalysis is the paper's future-work extension to "the larger set
// of 56 conferences ... from all subfields of computer systems": FAR per
// subfield, and the HPC-vs-rest contrast that quantifies the paper's
// motivating observation (HPC ~10% against 20-30% for CS overall).
type SubfieldAnalysis struct {
	Rows []SubfieldRow // sorted by FAR descending

	HPC       stats.Proportion
	Others    stats.Proportion
	HPCVsRest stats.ChiSquaredResult
}

// SubfieldComparison computes the per-subfield ratios over author slots.
// Conferences with an empty Subfield are grouped under "unclassified".
func SubfieldComparison(d *dataset.Dataset) (SubfieldAnalysis, error) {
	bySubfield := map[string][]dataset.ConfID{}
	venueCount := map[string]int{}
	for _, c := range d.Conferences {
		sf := c.Subfield
		if sf == "" {
			sf = "unclassified"
		}
		bySubfield[sf] = append(bySubfield[sf], c.ID)
		venueCount[sf]++
	}
	var res SubfieldAnalysis
	if len(bySubfield) < 2 {
		return res, fmt.Errorf("%w: need at least two subfields (have %d)", ErrNotApplicable, len(bySubfield))
	}
	for sf, confs := range bySubfield {
		gc := d.CountGenders(d.AuthorSlots(confs...))
		res.Rows = append(res.Rows, SubfieldRow{
			Subfield: sf,
			Venues:   venueCount[sf],
			FAR:      proportionOf(gc),
		})
	}
	sort.SliceStable(res.Rows, func(i, j int) bool {
		ri, rj := res.Rows[i].FAR.Ratio(), res.Rows[j].FAR.Ratio()
		switch {
		case ri > rj:
			return true
		case rj > ri:
			return false
		}
		return res.Rows[i].Subfield < res.Rows[j].Subfield
	})
	subfields := make([]string, 0, len(bySubfield))
	for sf := range bySubfield {
		subfields = append(subfields, sf)
	}
	sort.Strings(subfields)
	var hpcConfs, otherConfs []dataset.ConfID
	for _, sf := range subfields {
		if sf == "HPC" {
			hpcConfs = append(hpcConfs, bySubfield[sf]...)
		} else {
			otherConfs = append(otherConfs, bySubfield[sf]...)
		}
	}
	if len(hpcConfs) == 0 {
		return res, fmt.Errorf("%w: no HPC subfield in corpus", ErrNotApplicable)
	}
	res.HPC = proportionOf(d.CountGenders(d.AuthorSlots(hpcConfs...)))
	res.Others = proportionOf(d.CountGenders(d.AuthorSlots(otherConfs...)))
	test, err := stats.TwoProportionChiSq(res.HPC.K, res.HPC.N, res.Others.K, res.Others.N)
	if err != nil {
		return res, err
	}
	res.HPCVsRest = test
	return res, nil
}
