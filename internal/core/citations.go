package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/stats"
)

// DensityCurve is one rendered density series for Fig 2-style plots.
type DensityCurve struct {
	Label string
	X     []float64
	Y     []float64
}

// CitationAnalysis is the §4.2 / Fig 2 reception analysis: citations at 36
// months by lead-author gender.
type CitationAnalysis struct {
	FemaleLedPapers int // paper: 53
	MaleLedPapers   int // paper: 435

	MeanFemale float64 // incl. outlier (paper: 13.04)
	MeanMale   float64 // paper: 10.55

	// Outlier handling: the single >450-citation female-led paper.
	OutlierThreshold  int
	OutliersExcluded  int
	MeanFemaleExclOut float64 // paper: 7.63
	WelchExclOutlier  stats.TTestResult

	// i10 attainment: share of papers with >= 10 citations by lead gender
	// (paper: 23% female-led vs 38% male-led, chi2 = 3.69, p = 0.055).
	I10Female stats.Proportion
	I10Male   stats.Proportion
	I10Test   stats.ChiSquaredResult

	// Robust companions the library adds beyond the paper: the exact test
	// on the i10 2x2 (53 female-led papers is small for chi-squared), its
	// Cohen's h effect size, and the distribution-free Mann-Whitney
	// comparison of the citation samples, which — unlike the means — is
	// barely moved by the 450-citation outlier.
	I10Fisher              stats.FisherExactResult
	I10EffectH             float64
	MannWhitneyExclOutlier stats.MannWhitneyResult
	MannWhitneyInclOutlier stats.MannWhitneyResult

	// Densities are the Fig 2 curves (female-led and male-led).
	Densities []DensityCurve
}

// DefaultOutlierThreshold matches the paper's ">450 citations" exclusion.
const DefaultOutlierThreshold = 450

// CitationReception computes §4.2 / Fig 2. The density curves use a
// Silverman-bandwidth Gaussian KDE, geom_density's default.
func CitationReception(d *dataset.Dataset, outlierThreshold int) (CitationAnalysis, error) {
	if outlierThreshold <= 0 {
		outlierThreshold = DefaultOutlierThreshold
	}
	res := CitationAnalysis{OutlierThreshold: outlierThreshold}

	var fem, mal []float64
	for _, p := range d.Papers {
		lead, ok := d.Person(p.Lead())
		if !ok || !lead.Gender.Known() {
			continue
		}
		c := float64(p.Citations36)
		if lead.Gender == gender.Female {
			fem = append(fem, c)
		} else {
			mal = append(mal, c)
		}
	}
	res.FemaleLedPapers = len(fem)
	res.MaleLedPapers = len(mal)
	if len(fem) < 2 || len(mal) < 2 {
		return res, fmt.Errorf("core: too few gendered lead authors (%d female, %d male)", len(fem), len(mal))
	}
	res.MeanFemale = stats.MustMean(fem)
	res.MeanMale = stats.MustMean(mal)

	femExcl := make([]float64, 0, len(fem))
	for _, c := range fem {
		if int(c) > outlierThreshold {
			res.OutliersExcluded++
			continue
		}
		femExcl = append(femExcl, c)
	}
	if len(femExcl) >= 2 {
		res.MeanFemaleExclOut = stats.MustMean(femExcl)
		tt, err := stats.WelchTTest(femExcl, mal)
		if err != nil {
			return res, err
		}
		res.WelchExclOutlier = tt
	}

	res.I10Female = i10Share(femExcl)
	res.I10Male = i10Share(mal)
	test, err := stats.TwoProportionChiSq(res.I10Female.K, res.I10Female.N, res.I10Male.K, res.I10Male.N)
	if err != nil {
		return res, err
	}
	res.I10Test = test
	fisher, err := stats.FisherExact(
		res.I10Female.K, res.I10Female.N-res.I10Female.K,
		res.I10Male.K, res.I10Male.N-res.I10Male.K)
	if err != nil {
		return res, err
	}
	res.I10Fisher = fisher
	if h, err := stats.CohenH(res.I10Female, res.I10Male); err == nil {
		res.I10EffectH = h
	}
	if mw, err := stats.MannWhitneyU(femExcl, mal); err == nil {
		res.MannWhitneyExclOutlier = mw
	}
	if mw, err := stats.MannWhitneyU(fem, mal); err == nil {
		res.MannWhitneyInclOutlier = mw
	}

	for _, series := range []struct {
		label string
		xs    []float64
	}{{"female lead", fem}, {"male lead", mal}} {
		kde, err := stats.NewKDE(series.xs, stats.Silverman)
		if err != nil {
			return res, err
		}
		x, y := kde.Evaluate(256)
		res.Densities = append(res.Densities, DensityCurve{Label: series.label, X: x, Y: y})
	}
	return res, nil
}

func i10Share(citations []float64) stats.Proportion {
	var p stats.Proportion
	for _, c := range citations {
		p.N++
		if c >= 10 {
			p.K++
		}
	}
	return p
}
