package core

import (
	"math"
	"testing"

	"repro/internal/affil"
	"repro/internal/countries"
	"repro/internal/dataset"
	"repro/internal/scholar"
)

func TestAuthorFARFullCorpusShape(t *testing.T) {
	r := AuthorFAR(corpus.Data)
	far := r.Overall.Ratio()
	if far < 0.08 || far > 0.12 {
		t.Errorf("overall FAR %.4f outside [0.08, 0.12] (paper: 0.099)", far)
	}
	if len(r.PerConf) != 9 {
		t.Fatalf("%d conference rows", len(r.PerConf))
	}
	// SC and ISC are the two lowest-FAR flagship venues in the paper.
	var sc, isc float64
	for _, row := range r.PerConf {
		switch row.Conf {
		case "SC17":
			sc = row.Ratio.Ratio()
		case "ISC17":
			isc = row.Ratio.Ratio()
		}
	}
	if sc >= far || isc >= far {
		t.Errorf("SC %.4f / ISC %.4f not below overall %.4f", sc, isc, far)
	}
}

func TestCompareBlindReviewFullCorpusShape(t *testing.T) {
	r, err := CompareBlindReview(corpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 7.57% double vs 10.52% single.
	if !(r.DoubleBlind.Ratio() < r.SingleBlind.Ratio()) {
		t.Errorf("double %.4f should be below single %.4f",
			r.DoubleBlind.Ratio(), r.SingleBlind.Ratio())
	}
	// Paper: lead FAR single-blind nearly double the double-blind one.
	if !(r.LeadDouble.Ratio() < r.LeadSingle.Ratio()) {
		t.Errorf("lead double %.4f should be below lead single %.4f",
			r.LeadDouble.Ratio(), r.LeadSingle.Ratio())
	}
}

func TestCompareAuthorPositionsFullCorpusShape(t *testing.T) {
	r, err := CompareAuthorPositions(corpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: last 8.4% < overall 9.9%, nonsignificant (chi2 = 0.724).
	if !(r.Last.Ratio() < r.Overall.Ratio()) {
		t.Errorf("last %.4f should be below overall %.4f", r.Last.Ratio(), r.Overall.Ratio())
	}
	if r.LastTest.Significant(0.01) {
		t.Errorf("last-vs-overall unexpectedly strongly significant: p = %g", r.LastTest.P)
	}
}

func TestProgramCommitteeFullCorpusShape(t *testing.T) {
	r, err := ProgramCommittee(corpus.Data, "SC17")
	if err != nil {
		t.Fatal(err)
	}
	if r.SlotsTotal != 1220 {
		t.Errorf("PC slots = %d, want 1220", r.SlotsTotal)
	}
	overall := r.Overall.Ratio()
	if overall < 0.15 || overall > 0.22 {
		t.Errorf("PC women ratio %.4f (paper: 0.1846)", overall)
	}
	if sc := r.SC.Ratio(); sc < 0.25 || sc > 0.34 {
		t.Errorf("SC PC ratio %.4f (paper: 0.296)", sc)
	}
	if ex := r.ExcludingSC.Ratio(); ex < 0.12 || ex > 0.20 {
		t.Errorf("excluding-SC ratio %.4f (paper: 0.161)", ex)
	}
	if !r.VsAuthors.Significant(0.001) {
		t.Errorf("PC-vs-authors gap should be decisively significant, p = %g", r.VsAuthors.P)
	}
	if r.ChairsTotal != 36 {
		t.Errorf("PC chairs = %d, want 36", r.ChairsTotal)
	}
	if len(r.ZeroWomenChairConfs) != 4 {
		t.Errorf("%d zero-women chair conferences, want 4", len(r.ZeroWomenChairConfs))
	}
}

func TestVisibleRolesFullCorpusShape(t *testing.T) {
	rs := VisibleRoles(corpus.Data)
	byRole := map[dataset.Role]VisibleRoleStats{}
	for _, r := range rs {
		byRole[r.Role] = r
	}
	kn := byRole[dataset.RoleKeynote]
	if kn.Total != 30 {
		t.Errorf("keynotes = %d, want 30", kn.Total)
	}
	if len(kn.ZeroWomenConf) != 4 {
		t.Errorf("zero-women keynote confs = %d, want 4", len(kn.ZeroWomenConf))
	}
	sch := byRole[dataset.RoleSessionChair]
	if sch.Total != 158 {
		t.Errorf("session chairs = %d, want 158", sch.Total)
	}
	if len(sch.ZeroWomenConf) != 3 {
		t.Errorf("zero-women session-chair confs = %d, want 3 (HPDC, HPCC, HiPC)", len(sch.ZeroWomenConf))
	}
	// SC approaches parity on session chairs (paper: "Only SC shows a
	// ratio that is approaching gender parity").
	if sch.BestConf != "SC17" {
		t.Errorf("best session-chair conf = %s, want SC17", sch.BestConf)
	}
	if sch.BestRatio.Ratio() < 0.35 {
		t.Errorf("SC session-chair ratio %.4f not near parity", sch.BestRatio.Ratio())
	}
	pan := byRole[dataset.RolePanelist]
	if pan.Total != 106 {
		t.Errorf("panelists = %d, want 106", pan.Total)
	}
}

func TestHPCOnlySubsetFullCorpusShape(t *testing.T) {
	r, err := HPCOnlySubset(corpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	if r.TotalPapers != 518 {
		t.Errorf("total papers = %d", r.TotalPapers)
	}
	// Paper: HPC-only FAR 10.1% vs 9.9% — essentially unchanged. Allow a
	// generous band but require "no collapse".
	diff := math.Abs(r.HPCAuthors.Ratio() - r.AllAuthors.Ratio())
	if diff > 0.03 {
		t.Errorf("HPC-only FAR diverges by %.4f (paper: ~0.002)", diff)
	}
	leadDiff := math.Abs(r.HPCLead.Ratio() - r.AllLead.Ratio())
	if leadDiff > 0.05 {
		t.Errorf("HPC-only lead FAR diverges by %.4f", leadDiff)
	}
}

func TestCitationReceptionFullCorpusShape(t *testing.T) {
	r, err := CitationReception(corpus.Data, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.OutlierThreshold != DefaultOutlierThreshold {
		t.Errorf("threshold = %d", r.OutlierThreshold)
	}
	// Paper: 53 female-led vs 435 male-led.
	if r.FemaleLedPapers < 30 || r.FemaleLedPapers > 80 {
		t.Errorf("female-led papers = %d (paper: 53)", r.FemaleLedPapers)
	}
	if r.MaleLedPapers < 380 || r.MaleLedPapers > 480 {
		t.Errorf("male-led papers = %d (paper: 435)", r.MaleLedPapers)
	}
	// Incl. outlier: women average MORE (paper: 13.04 vs 10.55).
	if !(r.MeanFemale > r.MeanMale) {
		t.Errorf("incl-outlier means: F %.2f should exceed M %.2f", r.MeanFemale, r.MeanMale)
	}
	if r.OutliersExcluded != 1 {
		t.Errorf("outliers excluded = %d, want 1", r.OutliersExcluded)
	}
	// Excl. outlier: women average LESS (paper: 7.63 vs 10.55).
	if !(r.MeanFemaleExclOut < r.MeanMale) {
		t.Errorf("excl-outlier means: F %.2f should be below M %.2f", r.MeanFemaleExclOut, r.MeanMale)
	}
	if r.WelchExclOutlier.T >= 0 {
		t.Errorf("Welch t should be negative, got %.3f", r.WelchExclOutlier.T)
	}
	// i10 attainment gap (paper: 23% vs 38%).
	if !(r.I10Female.Ratio() < r.I10Male.Ratio()) {
		t.Errorf("i10: F %.3f should be below M %.3f", r.I10Female.Ratio(), r.I10Male.Ratio())
	}
	if len(r.Densities) != 2 {
		t.Fatalf("%d density curves", len(r.Densities))
	}
	for _, dcurve := range r.Densities {
		if len(dcurve.X) != 256 || len(dcurve.Y) != 256 {
			t.Errorf("curve %s has %d/%d points", dcurve.Label, len(dcurve.X), len(dcurve.Y))
		}
	}
}

func TestCitationReceptionErrors(t *testing.T) {
	d := dataset.New()
	if err := d.AddConference(&dataset.Conference{ID: "X", Name: "X", Year: 2017, AcceptanceRate: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := CitationReception(d, 0); err == nil {
		t.Error("empty corpus must error")
	}
}

func TestExperienceDistributionsShape(t *testing.T) {
	for _, m := range []Metric{MetricGSPublications, MetricHIndex, MetricS2Publications} {
		samples, err := ExperienceDistributions(corpus.Data, m)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if len(samples) != 4 { // 2 genders x 2 roles
			t.Fatalf("%s: %d samples", m, len(samples))
		}
		bySet := map[string]GroupSample{}
		for _, s := range samples {
			bySet[s.Gender.String()+"/"+s.Role.String()] = s
			// All distributions right-skewed (the paper's first observation).
			if s.Summary.Skewness <= 0 {
				t.Errorf("%s %s/%s skewness %.2f, want positive", m, s.Gender, s.Role, s.Summary.Skewness)
			}
			if len(s.Density.X) == 0 {
				t.Errorf("%s %s/%s: empty density", m, s.Gender, s.Role)
			}
		}
		// PC members more experienced than authors, per gender (medians).
		for _, g := range []string{"female", "male"} {
			au := bySet[g+"/author"].Summary.Median
			pc := bySet[g+"/PC member"].Summary.Median
			if !(pc > au) {
				t.Errorf("%s %s: PC median %.1f not above author median %.1f", m, g, pc, au)
			}
		}
		// Male authors pull right relative to female authors.
		if m != MetricS2Publications { // S2 noise blurs this at author level
			f := bySet["female/author"].Summary.Median
			mm := bySet["male/author"].Summary.Median
			if !(mm > f) {
				t.Errorf("%s: male author median %.1f not above female %.1f", m, mm, f)
			}
		}
	}
}

func TestExperienceDistributionsCustomRoles(t *testing.T) {
	samples, err := ExperienceDistributions(corpus.Data, MetricHIndex, dataset.RoleAuthor)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 2 {
		t.Fatalf("%d samples for a single role", len(samples))
	}
}

func TestCompareScholarSources(t *testing.T) {
	r, err := CompareScholarSources(corpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: r = 0.334, p < 0.0001 — low but decidedly positive.
	if r.Result.R < 0.15 || r.Result.R > 0.65 {
		t.Errorf("GS-S2 correlation %.3f outside the paper's 'low' band", r.Result.R)
	}
	if r.Result.P > 0.0001 {
		t.Errorf("p = %g, want < 0.0001", r.Result.P)
	}
	if r.N < 800 {
		t.Errorf("only %d dual-source authors", r.N)
	}
}

func TestExperienceBandsShape(t *testing.T) {
	r, err := ExperienceBands(corpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 69.65% GS coverage among known-gender researchers.
	if r.GSCoverage < 0.60 || r.GSCoverage > 0.80 {
		t.Errorf("GS coverage %.3f (paper: 0.6965)", r.GSCoverage)
	}
	// Paper Fig 6: women more concentrated in the novice band.
	if !(r.NoviceFemale.Ratio() > r.NoviceMale.Ratio()) {
		t.Errorf("novice shares: F %.3f should exceed M %.3f",
			r.NoviceFemale.Ratio(), r.NoviceMale.Ratio())
	}
	// Bands partition each cell's population.
	for _, cell := range append(append([]BandCell{}, r.All...), r.Authors...) {
		if cell.Counts[0]+cell.Counts[1]+cell.Counts[2] != cell.Total {
			t.Errorf("band counts don't sum: %+v", cell)
		}
		shares := cell.Share(scholar.Novice) + cell.Share(scholar.MidCareer) + cell.Share(scholar.Experienced)
		if cell.Total > 0 && math.Abs(shares-1) > 1e-9 {
			t.Errorf("band shares sum to %g", shares)
		}
	}
}

func TestTopCountriesShape(t *testing.T) {
	rows := TopCountries(corpus.Data, 10)
	if len(rows) != 10 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Code != "US" {
		t.Errorf("top country = %s, want US", rows[0].Code)
	}
	// Sorted by total descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Total > rows[i-1].Total {
			t.Fatal("rows not sorted by total")
		}
	}
	// All Table 2 majors present in the top 10.
	have := map[string]CountryRow{}
	for _, r := range rows {
		have[r.Code] = r
	}
	for _, cc := range []string{"US", "CN", "FR", "DE", "ES"} {
		if _, ok := have[cc]; !ok {
			t.Errorf("country %s missing from top 10", cc)
		}
	}
	// US highest FAR among majors; Japan far lower when present.
	if jp, ok := have["JP"]; ok {
		if jp.Ratio.Ratio() >= have["US"].Ratio.Ratio() {
			t.Error("Japan FAR should be below US FAR")
		}
	}
	// Limit 0 returns everything.
	all := TopCountries(corpus.Data, 0)
	if len(all) <= 10 {
		t.Errorf("unlimited rows = %d", len(all))
	}
}

func TestCountriesWithMinAuthorsShape(t *testing.T) {
	rows := CountriesWithMinAuthors(corpus.Data, 10)
	// Paper Fig 7: 25 countries with >= 10 authors. Accept a band.
	if len(rows) < 12 || len(rows) > 40 {
		t.Errorf("%d countries with >=10 authors (paper: 25)", len(rows))
	}
	for _, r := range rows {
		if r.Total < 10 {
			t.Errorf("%s slipped in with %d authors", r.Code, r.Total)
		}
	}
	// Sorted by FAR descending.
	for i := 1; i < len(rows); i++ {
		if rows[i].Ratio.Ratio() > rows[i-1].Ratio.Ratio() {
			t.Fatal("rows not sorted by ratio")
		}
	}
}

func TestRegionRoleTableShape(t *testing.T) {
	rows := RegionRoleTable(corpus.Data)
	if len(rows) < 8 {
		t.Fatalf("only %d regions", len(rows))
	}
	if rows[0].Region != countries.NorthernAmerica {
		t.Errorf("largest region = %s, want Northern America", rows[0].Region)
	}
	// Table 3 shape: Northern America PC ratio well above its author ratio.
	na := rows[0]
	if !(na.PC.Ratio() > na.Authors.Ratio()) {
		t.Errorf("NA: PC %.3f should exceed authors %.3f", na.PC.Ratio(), na.Authors.Ratio())
	}
	// The big-region author ratios hover near the overall ~10%.
	for _, r := range rows {
		if r.Authors.N >= 100 {
			if ratio := r.Authors.Ratio(); ratio < 0.03 || ratio > 0.20 {
				t.Errorf("region %s author FAR %.3f implausible", r.Region, ratio)
			}
		}
	}
}

func TestConcentrationShape(t *testing.T) {
	g := Concentration(corpus.Data)
	// Paper: US 50.2% of authors, 52.57% of PC members; Western Europe
	// 14.33% / 16.36%. Reviewers are NOT overrepresented vs authors.
	if g.USAuthors < 0.40 || g.USAuthors > 0.60 {
		t.Errorf("US author share %.3f", g.USAuthors)
	}
	if g.WEAuthors < 0.08 || g.WEAuthors > 0.22 {
		t.Errorf("WE author share %.3f", g.WEAuthors)
	}
	if math.Abs(g.USPC-g.USAuthors) > 0.12 {
		t.Errorf("US PC share %.3f far from author share %.3f", g.USPC, g.USAuthors)
	}
	if g.AuthorsIdentified == 0 || g.PCIdentified == 0 {
		t.Error("no identified researchers")
	}
}

func TestSectorRepresentationShape(t *testing.T) {
	r, err := SectorRepresentation(corpus.Data)
	if err != nil {
		t.Fatal(err)
	}
	// Paper mix: COM 8.6, EDU 72.8, GOV 18.6.
	if r.MixEDU < 0.66 || r.MixEDU > 0.80 {
		t.Errorf("EDU mix %.3f", r.MixEDU)
	}
	if r.MixCOM < 0.04 || r.MixCOM > 0.13 {
		t.Errorf("COM mix %.3f", r.MixCOM)
	}
	if r.MixGOV < 0.13 || r.MixGOV > 0.25 {
		t.Errorf("GOV mix %.3f", r.MixGOV)
	}
	if len(r.Cells) != 6 {
		t.Fatalf("%d cells, want 6", len(r.Cells))
	}
	// Paper: both sector tests nonsignificant (p = 0.77 and 0.443).
	if r.PCTest.Significant(0.01) {
		t.Errorf("PC sector test strongly significant (p = %g); paper found none", r.PCTest.P)
	}
	if r.AuthorTest.Significant(0.01) {
		t.Errorf("author sector test strongly significant (p = %g)", r.AuthorTest.P)
	}
	// Cell lookup works.
	if _, ok := r.Cell(affil.GOV, dataset.RolePCMember); !ok {
		t.Error("GOV/PC cell missing")
	}
	if _, ok := r.Cell(affil.SectorUnknown, dataset.RoleAuthor); ok {
		t.Error("unknown-sector cell should not exist")
	}
}

func TestSectorRepresentationEmptyCorpus(t *testing.T) {
	d := dataset.New()
	if err := d.AddConference(&dataset.Conference{ID: "X", Name: "X", Year: 2017, AcceptanceRate: 0.5}); err != nil {
		t.Fatal(err)
	}
	if _, err := SectorRepresentation(d); err == nil {
		t.Error("empty corpus must error")
	}
}

func TestMetricString(t *testing.T) {
	if MetricGSPublications.String() == "" || MetricHIndex.String() == "" ||
		MetricS2Publications.String() == "" || Metric(99).String() == "" {
		t.Error("metric names must render")
	}
}

func TestKnownGenderAuthorsAndSplit(t *testing.T) {
	persons := KnownGenderAuthors(corpus.Data)
	if len(persons) == 0 {
		t.Fatal("no known-gender authors")
	}
	for _, p := range persons {
		if !p.Gender.Known() {
			t.Fatal("unknown-gender person leaked")
		}
	}
	women, men := splitByGender(persons)
	if len(women)+len(men) != len(persons) {
		t.Error("split lost people")
	}
	if len(women) == 0 || len(men) == 0 {
		t.Error("split produced an empty group")
	}
}
