package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/stats"
)

// ReplicationMetric is one headline statistic tracked across replications.
type ReplicationMetric struct {
	Name    string
	Values  []float64
	Summary stats.Summary
}

// ReplicationStudy runs the headline analyses over many independently
// generated corpora and summarizes the sampling distribution of each
// statistic. The paper positions itself as "a benchmark against which
// future progress can be measured"; this study quantifies how much of any
// future difference is attributable to sampling noise alone.
type ReplicationStudy struct {
	Replicates int
	Metrics    []ReplicationMetric
}

// Metric returns a named metric, if present.
func (r ReplicationStudy) Metric(name string) (ReplicationMetric, bool) {
	for _, m := range r.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return ReplicationMetric{}, false
}

// CorpusFactory generates one corpus per replicate (typically a synth
// config with a varying seed).
type CorpusFactory func(replicate int) (*dataset.Dataset, dataset.ConfID, error)

// Replicate runs the study with n replicates from the factory.
func Replicate(n int, factory CorpusFactory) (ReplicationStudy, error) {
	if n < 2 {
		return ReplicationStudy{}, fmt.Errorf("core: replication needs >= 2 replicates (got %d)", n)
	}
	if factory == nil {
		return ReplicationStudy{}, fmt.Errorf("core: nil corpus factory")
	}
	names := []string{
		"overall FAR",
		"SC FAR",
		"PC women ratio",
		"novice gap (F-M)",
		"citation gap excl outlier (F-M)",
	}
	values := make(map[string][]float64, len(names))
	for i := 0; i < n; i++ {
		d, scID, err := factory(i)
		if err != nil {
			return ReplicationStudy{}, fmt.Errorf("core: replicate %d: %w", i, err)
		}
		far := AuthorFAR(d)
		values["overall FAR"] = append(values["overall FAR"], far.Overall.Ratio())
		if scID != "" {
			sc := proportionOf(d.CountGenders(d.AuthorSlots(scID)))
			values["SC FAR"] = append(values["SC FAR"], sc.Ratio())
		}
		pc, err := ProgramCommittee(d, scID)
		if err != nil {
			return ReplicationStudy{}, fmt.Errorf("core: replicate %d: %w", i, err)
		}
		values["PC women ratio"] = append(values["PC women ratio"], pc.Overall.Ratio())
		bands, err := ExperienceBands(d)
		if err != nil {
			return ReplicationStudy{}, fmt.Errorf("core: replicate %d: %w", i, err)
		}
		values["novice gap (F-M)"] = append(values["novice gap (F-M)"],
			bands.NoviceFemale.Ratio()-bands.NoviceMale.Ratio())
		cit, err := CitationReception(d, 0)
		if err != nil {
			return ReplicationStudy{}, fmt.Errorf("core: replicate %d: %w", i, err)
		}
		values["citation gap excl outlier (F-M)"] = append(values["citation gap excl outlier (F-M)"],
			cit.MeanFemaleExclOut-cit.MeanMale)
	}
	study := ReplicationStudy{Replicates: n}
	for _, name := range names {
		vals := values[name]
		if len(vals) == 0 {
			continue
		}
		sum, err := stats.Summarize(vals)
		if err != nil {
			return study, err
		}
		study.Metrics = append(study.Metrics, ReplicationMetric{
			Name: name, Values: vals, Summary: sum,
		})
	}
	return study, nil
}
