package core

import (
	"fmt"

	"repro/internal/affil"
	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/stats"
)

// SectorCell is one (sector, role) cell of Fig 8.
type SectorCell struct {
	Sector affil.Sector
	Role   dataset.Role
	Ratio  stats.Proportion
}

// SectorAnalysis is the §5.3 work-sector analysis.
type SectorAnalysis struct {
	// Mix is the overall sector distribution over unique researchers
	// (paper: COM 8.6%, EDU 72.8%, GOV 18.6%).
	MixEDU, MixCOM, MixGOV float64

	Cells []SectorCell

	// The paper's two tests: sector x gender among PC members
	// (chi2 = 0.522, p = 0.77) and among authors (chi2 = 1.629, p = 0.443),
	// both nonsignificant.
	PCTest     stats.ChiSquaredResult
	AuthorTest stats.ChiSquaredResult
}

// SectorRepresentation computes Fig 8 and the §5.3 chi-squared tests over
// unique authors and unique PC members with a known sector.
func SectorRepresentation(d *dataset.Dataset) (SectorAnalysis, error) {
	var res SectorAnalysis

	// Overall mix over the §5 demographic population.
	var edu, com, gov, n int
	for _, id := range d.UniqueAuthorsAndPC() {
		p, ok := d.Person(id)
		if !ok {
			continue
		}
		switch p.Sector {
		case affil.EDU:
			edu++
		case affil.COM:
			com++
		case affil.GOV:
			gov++
		default:
			continue
		}
		n++
	}
	if n == 0 {
		return res, fmt.Errorf("core: no researchers with a known sector")
	}
	res.MixEDU = float64(edu) / float64(n)
	res.MixCOM = float64(com) / float64(n)
	res.MixGOV = float64(gov) / float64(n)

	sectors := []affil.Sector{affil.COM, affil.EDU, affil.GOV}
	populations := []struct {
		role dataset.Role
		ids  []dataset.PersonID
	}{
		{dataset.RoleAuthor, d.UniqueAuthors()},
		{dataset.RolePCMember, d.UniqueRoleHolders(dataset.RolePCMember)},
	}
	// Per-population 2x3 tables: rows = gender, columns = sector.
	tables := map[dataset.Role][][]float64{}
	for _, pop := range populations {
		table := [][]float64{make([]float64, len(sectors)), make([]float64, len(sectors))}
		for si, sector := range sectors {
			var prop stats.Proportion
			for _, id := range pop.ids {
				p, ok := d.Person(id)
				if !ok || p.Sector != sector || !p.Gender.Known() {
					continue
				}
				prop.N++
				if p.Gender == gender.Female {
					prop.K++
					table[0][si]++
				} else {
					table[1][si]++
				}
			}
			res.Cells = append(res.Cells, SectorCell{Sector: sector, Role: pop.role, Ratio: prop})
		}
		tables[pop.role] = table
	}
	pcTest, err := stats.ChiSquaredIndependence(tables[dataset.RolePCMember])
	if err != nil {
		return res, fmt.Errorf("core: PC sector test: %w", err)
	}
	res.PCTest = pcTest
	auTest, err := stats.ChiSquaredIndependence(tables[dataset.RoleAuthor])
	if err != nil {
		return res, fmt.Errorf("core: author sector test: %w", err)
	}
	res.AuthorTest = auTest
	return res, nil
}

// Cell returns the (sector, role) cell, if present.
func (s SectorAnalysis) Cell(sector affil.Sector, role dataset.Role) (SectorCell, bool) {
	for _, c := range s.Cells {
		if c.Sector == sector && c.Role == role {
			return c, true
		}
	}
	return SectorCell{}, false
}
