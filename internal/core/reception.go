package core

import (
	"fmt"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/scholar"
)

// ReceptionPoint is the mean citation count by lead gender at one
// post-publication month.
type ReceptionPoint struct {
	Month      float64
	MeanFemale float64 // excl. the outlier threshold, as in §4.2
	MeanMale   float64
}

// ReceptionOverTime implements the paper's suggested follow-up: "It may be
// interesting to follow up on this analysis in regular intervals in the
// future and observe how the difference in reception behaves over time."
// Citation counts at intermediate months are interpolated from the
// 36-month totals via the empirical accrual curve.
type ReceptionOverTime struct {
	Points           []ReceptionPoint
	OutlierThreshold int
	// GapAt36 is MeanFemale - MeanMale at the full window.
	GapAt36 float64
}

// CitationTrajectory computes mean citations by lead gender at the given
// months (defaults to 6, 12, 18, 24, 30, 36), excluding female-led papers
// above the outlier threshold as §4.2 does.
func CitationTrajectory(d *dataset.Dataset, outlierThreshold int, months ...float64) (ReceptionOverTime, error) {
	if outlierThreshold <= 0 {
		outlierThreshold = DefaultOutlierThreshold
	}
	if len(months) == 0 {
		months = []float64{6, 12, 18, 24, 30, 36}
	}
	var fem, mal []int
	for _, p := range d.Papers {
		lead, ok := d.Person(p.Lead())
		if !ok || !lead.Gender.Known() {
			continue
		}
		if lead.Gender == gender.Female {
			if p.Citations36 <= outlierThreshold {
				fem = append(fem, p.Citations36)
			}
		} else {
			mal = append(mal, p.Citations36)
		}
	}
	if len(fem) == 0 || len(mal) == 0 {
		return ReceptionOverTime{}, fmt.Errorf("core: no gendered leads for the trajectory")
	}
	res := ReceptionOverTime{OutlierThreshold: outlierThreshold}
	for _, m := range months {
		var pt ReceptionPoint
		pt.Month = m
		var fSum, mSum float64
		for _, c := range fem {
			fSum += float64(scholar.CitationsAtMonth(c, m))
		}
		for _, c := range mal {
			mSum += float64(scholar.CitationsAtMonth(c, m))
		}
		pt.MeanFemale = fSum / float64(len(fem))
		pt.MeanMale = mSum / float64(len(mal))
		res.Points = append(res.Points, pt)
	}
	last := res.Points[len(res.Points)-1]
	res.GapAt36 = last.MeanFemale - last.MeanMale
	return res, nil
}

// GapProportional checks the trajectory invariant: the gender gap scales
// with the accrual curve, so its sign never flips across months.
func (r ReceptionOverTime) GapProportional() bool {
	sign := 0
	for _, p := range r.Points {
		gap := p.MeanFemale - p.MeanMale
		s := 0
		switch {
		case gap > 1e-9:
			s = 1
		case gap < -1e-9:
			s = -1
		}
		if s == 0 {
			continue
		}
		if sign == 0 {
			sign = s
		} else if s != sign {
			return false
		}
	}
	return true
}
