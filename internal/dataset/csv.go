package dataset

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/affil"
	"repro/internal/gender"
	"repro/internal/scholar"
)

// The CSV layout mirrors the paper's frozen-CSV artifact style: one file
// per entity, person-ID lists embedded as semicolon-joined fields.

const (
	personsFile     = "persons.csv"
	conferencesFile = "conferences.csv"
	papersFile      = "papers.csv"
	dateLayout      = "2006-01-02"
	listSep         = ";"
)

var personHeader = []string{
	"id", "name", "forename", "true_gender", "gender", "assign_method",
	"email", "affiliation", "country", "sector",
	"has_gs", "gs_pubs", "gs_hindex", "gs_i10", "gs_citations",
	"has_s2", "s2_pubs",
}

var conferenceHeader = []string{
	"id", "name", "year", "date", "country", "submitted", "acceptance_rate",
	"double_blind", "diversity_chair", "code_of_conduct", "childcare",
	"women_attendance", "subfield",
	"pc_chairs", "pc_members", "keynotes", "panelists", "session_chairs",
}

var paperHeader = []string{"id", "conf", "title", "authors", "hpc_topic", "citations36"}

// WritePersonsCSV writes the researcher table.
func (d *Dataset) WritePersonsCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(personHeader); err != nil {
		return err
	}
	// Deterministic row order.
	ids := sortedIDs(func() map[PersonID]bool {
		m := make(map[PersonID]bool, len(d.Persons))
		for id := range d.Persons {
			m[id] = true
		}
		return m
	}())
	for _, id := range ids {
		p := d.Persons[id]
		row := []string{
			string(p.ID), p.Name, p.Forename,
			p.TrueGender.String(), p.Gender.String(), p.AssignMethod.String(),
			p.Email, p.Affiliation, p.CountryCode, p.Sector.String(),
			strconv.FormatBool(p.HasGSProfile),
			strconv.Itoa(p.GS.Publications), strconv.Itoa(p.GS.HIndex),
			strconv.Itoa(p.GS.I10Index), strconv.Itoa(p.GS.Citations),
			strconv.FormatBool(p.HasS2), strconv.Itoa(p.S2Pubs),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteConferencesCSV writes the conference table.
func (d *Dataset) WriteConferencesCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(conferenceHeader); err != nil {
		return err
	}
	for _, c := range d.Conferences {
		row := []string{
			string(c.ID), c.Name, strconv.Itoa(c.Year),
			c.Date.Format(dateLayout), c.CountryCode,
			strconv.Itoa(c.Submitted),
			strconv.FormatFloat(c.AcceptanceRate, 'f', -1, 64),
			strconv.FormatBool(c.DoubleBlind), strconv.FormatBool(c.DiversityChair),
			strconv.FormatBool(c.CodeOfConduct), strconv.FormatBool(c.Childcare),
			strconv.FormatFloat(c.WomenAttendance, 'f', -1, 64),
			c.Subfield,
			joinIDs(c.PCChairs), joinIDs(c.PCMembers), joinIDs(c.Keynotes),
			joinIDs(c.Panelists), joinIDs(c.SessionChairs),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WritePapersCSV writes the paper table.
func (d *Dataset) WritePapersCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(paperHeader); err != nil {
		return err
	}
	for _, p := range d.Papers {
		row := []string{
			string(p.ID), string(p.Conf), p.Title, joinIDs(p.Authors),
			strconv.FormatBool(p.HPCTopic), strconv.Itoa(p.Citations36),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SaveDir writes the three CSV files into dir (created if absent).
func (d *Dataset) SaveDir(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	writers := []struct {
		name string
		fn   func(io.Writer) error
	}{
		{personsFile, d.WritePersonsCSV},
		{conferencesFile, d.WriteConferencesCSV},
		{papersFile, d.WritePapersCSV},
	}
	for _, w := range writers {
		f, err := os.Create(filepath.Join(dir, w.name))
		if err != nil {
			return err
		}
		if err := w.fn(f); err != nil {
			_ = f.Close()
			return fmt.Errorf("dataset: writing %s: %w", w.name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// LoadDir reads a dataset saved by SaveDir and validates it.
func LoadDir(dir string) (*Dataset, error) {
	d := New()
	if err := readFile(filepath.Join(dir, personsFile), d.readPersonsCSV); err != nil {
		return nil, err
	}
	if err := readFile(filepath.Join(dir, conferencesFile), d.readConferencesCSV); err != nil {
		return nil, err
	}
	if err := readFile(filepath.Join(dir, papersFile), d.readPapersCSV); err != nil {
		return nil, err
	}
	d.Reindex()
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

func readFile(path string, fn func(io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	//whpcvet:ignore errcheck close of a read-only file; the parse result is validated afterwards
	defer f.Close()
	if err := fn(f); err != nil {
		return fmt.Errorf("dataset: reading %s: %w", filepath.Base(path), err)
	}
	return nil
}

// ReadPersonsCSV parses a researcher table into the dataset.
func (d *Dataset) ReadPersonsCSV(r io.Reader) error { return d.readPersonsCSV(r) }

func (d *Dataset) readPersonsCSV(r io.Reader) error {
	rows, lines, err := readAll(r, personHeader)
	if err != nil {
		return err
	}
	for i, row := range rows {
		line := lines[i]
		p := &Person{
			ID:           PersonID(row[0]),
			Name:         row[1],
			Forename:     row[2],
			TrueGender:   gender.Parse(row[3]),
			Gender:       gender.Parse(row[4]),
			AssignMethod: parseMethod(row[5]),
			Email:        row[6],
			Affiliation:  row[7],
			CountryCode:  row[8],
			Sector:       affil.ParseSector(row[9]),
		}
		var perr error
		p.HasGSProfile, perr = strconv.ParseBool(row[10])
		if perr != nil {
			return rowErr(line, "has_gs", perr)
		}
		gs := scholar.Profile{}
		if gs.Publications, perr = strconv.Atoi(row[11]); perr != nil {
			return rowErr(line, "gs_pubs", perr)
		}
		if gs.HIndex, perr = strconv.Atoi(row[12]); perr != nil {
			return rowErr(line, "gs_hindex", perr)
		}
		if gs.I10Index, perr = strconv.Atoi(row[13]); perr != nil {
			return rowErr(line, "gs_i10", perr)
		}
		if gs.Citations, perr = strconv.Atoi(row[14]); perr != nil {
			return rowErr(line, "gs_citations", perr)
		}
		p.GS = gs
		if p.HasS2, perr = strconv.ParseBool(row[15]); perr != nil {
			return rowErr(line, "has_s2", perr)
		}
		if p.S2Pubs, perr = strconv.Atoi(row[16]); perr != nil {
			return rowErr(line, "s2_pubs", perr)
		}
		if err := d.AddPerson(p); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	return nil
}

// ReadConferencesCSV parses a conference table into the dataset.
func (d *Dataset) ReadConferencesCSV(r io.Reader) error { return d.readConferencesCSV(r) }

func (d *Dataset) readConferencesCSV(r io.Reader) error {
	rows, lines, err := readAll(r, conferenceHeader)
	if err != nil {
		return err
	}
	for i, row := range rows {
		line := lines[i]
		c := &Conference{
			ID:          ConfID(row[0]),
			Name:        row[1],
			CountryCode: row[4],
		}
		var perr error
		if c.Year, perr = strconv.Atoi(row[2]); perr != nil {
			return rowErr(line, "year", perr)
		}
		if c.Date, perr = time.Parse(dateLayout, row[3]); perr != nil {
			return rowErr(line, "date", perr)
		}
		if c.Submitted, perr = strconv.Atoi(row[5]); perr != nil {
			return rowErr(line, "submitted", perr)
		}
		if c.AcceptanceRate, perr = strconv.ParseFloat(row[6], 64); perr != nil {
			return rowErr(line, "acceptance_rate", perr)
		}
		bools := []*bool{&c.DoubleBlind, &c.DiversityChair, &c.CodeOfConduct, &c.Childcare}
		for j, dst := range bools {
			if *dst, perr = strconv.ParseBool(row[7+j]); perr != nil {
				return rowErr(line, conferenceHeader[7+j], perr)
			}
		}
		if c.WomenAttendance, perr = strconv.ParseFloat(row[11], 64); perr != nil {
			return rowErr(line, "women_attendance", perr)
		}
		c.Subfield = row[12]
		c.PCChairs = splitIDs(row[13])
		c.PCMembers = splitIDs(row[14])
		c.Keynotes = splitIDs(row[15])
		c.Panelists = splitIDs(row[16])
		c.SessionChairs = splitIDs(row[17])
		if err := d.AddConference(c); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	return nil
}

// ReadPapersCSV parses a paper table into the dataset.
func (d *Dataset) ReadPapersCSV(r io.Reader) error { return d.readPapersCSV(r) }

func (d *Dataset) readPapersCSV(r io.Reader) error {
	rows, lines, err := readAll(r, paperHeader)
	if err != nil {
		return err
	}
	for i, row := range rows {
		line := lines[i]
		p := &Paper{
			ID:      PaperID(row[0]),
			Conf:    ConfID(row[1]),
			Title:   row[2],
			Authors: splitIDs(row[3]),
		}
		var perr error
		if p.HPCTopic, perr = strconv.ParseBool(row[4]); perr != nil {
			return rowErr(line, "hpc_topic", perr)
		}
		if p.Citations36, perr = strconv.Atoi(row[5]); perr != nil {
			return rowErr(line, "citations36", perr)
		}
		if err := d.AddPaper(p); err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
	}
	return nil
}

// readAll parses a whole CSV table, checking the header and field counts.
// It returns the data rows plus the 1-based input line each row started
// on, so value-parse errors can name the exact offending line. Truncated
// or overlong rows are reported with their line instead of surfacing the
// first bare csv.ParseError.
func readAll(r io.Reader, wantHeader []string) ([][]string, []int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // row arity is checked by hand for better errors
	var rows [][]string
	var lines []int
	for {
		row, err := cr.Read()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			var pe *csv.ParseError
			if errors.As(err, &pe) {
				return nil, nil, fmt.Errorf("line %d: malformed CSV: %w", pe.Line, pe.Err)
			}
			return nil, nil, fmt.Errorf("malformed CSV: %w", err)
		}
		line, _ := cr.FieldPos(0)
		if len(row) != len(wantHeader) {
			kind := "truncated"
			if len(row) > len(wantHeader) {
				kind = "overlong"
			}
			return nil, nil, fmt.Errorf("line %d: %s row: got %d fields, want %d",
				line, kind, len(row), len(wantHeader))
		}
		rows = append(rows, row)
		lines = append(lines, line)
	}
	if len(rows) == 0 {
		return nil, nil, fmt.Errorf("empty CSV, want header %v", wantHeader)
	}
	for i, col := range wantHeader {
		if rows[0][i] != col {
			return nil, nil, fmt.Errorf("header column %d is %q, want %q", i, rows[0][i], col)
		}
	}
	return rows[1:], lines[1:], nil
}

// rowErr identifies a bad value by its input line and column name; the
// enclosing readFile wrapper adds the file name.
func rowErr(line int, field string, err error) error {
	return fmt.Errorf("line %d: field %s: %w", line, field, err)
}

func parseMethod(s string) gender.Method {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "manual":
		return gender.MethodManual
	case "automated":
		return gender.MethodAutomated
	default:
		return gender.MethodNone
	}
}

func joinIDs(ids []PersonID) string {
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = string(id)
	}
	return strings.Join(parts, listSep)
}

func splitIDs(s string) []PersonID {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, listSep)
	out := make([]PersonID, len(parts))
	for i, p := range parts {
		out[i] = PersonID(p)
	}
	return out
}
