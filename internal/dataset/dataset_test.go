package dataset

import (
	"errors"
	"testing"
	"time"

	"repro/internal/gender"
)

// tinyCorpus builds a small hand-checked corpus: two conferences, three
// papers, six people.
func tinyCorpus(t *testing.T) *Dataset {
	t.Helper()
	d := New()
	people := []*Person{
		{ID: "alice", Name: "Alice A", Forename: "Alice", TrueGender: gender.Female, Gender: gender.Female, AssignMethod: gender.MethodManual, CountryCode: "US"},
		{ID: "bob", Name: "Bob B", Forename: "Bob", TrueGender: gender.Male, Gender: gender.Male, AssignMethod: gender.MethodManual, CountryCode: "US"},
		{ID: "carol", Name: "Carol C", Forename: "Carol", TrueGender: gender.Female, Gender: gender.Female, AssignMethod: gender.MethodAutomated, CountryCode: "DE"},
		{ID: "dave", Name: "Dave D", Forename: "Dave", TrueGender: gender.Male, Gender: gender.Male, AssignMethod: gender.MethodManual, CountryCode: "JP"},
		{ID: "eve", Name: "Eve E", Forename: "Eve", TrueGender: gender.Female, Gender: gender.Unknown, AssignMethod: gender.MethodNone, CountryCode: "FR"},
		{ID: "frank", Name: "Frank F", Forename: "Frank", TrueGender: gender.Male, Gender: gender.Male, AssignMethod: gender.MethodManual, CountryCode: "GB"},
	}
	for _, p := range people {
		if err := d.AddPerson(p); err != nil {
			t.Fatal(err)
		}
	}
	confs := []*Conference{
		{
			ID: "SC17", Name: "SC", Year: 2017,
			Date:        time.Date(2017, 11, 13, 0, 0, 0, 0, time.UTC),
			CountryCode: "US", Submitted: 327, AcceptanceRate: 0.187,
			DoubleBlind: true, DiversityChair: true, CodeOfConduct: true, Childcare: true,
			PCChairs: []PersonID{"alice"}, PCMembers: []PersonID{"alice", "bob", "carol"},
			Keynotes: []PersonID{"dave"}, SessionChairs: []PersonID{"carol", "frank"},
		},
		{
			ID: "HPDC17", Name: "HPDC", Year: 2017,
			Date:        time.Date(2017, 6, 28, 0, 0, 0, 0, time.UTC),
			CountryCode: "US", Submitted: 100, AcceptanceRate: 0.19,
			PCChairs: []PersonID{"bob"}, PCMembers: []PersonID{"bob", "dave"},
			Panelists: []PersonID{"alice", "bob"},
		},
	}
	for _, c := range confs {
		if err := d.AddConference(c); err != nil {
			t.Fatal(err)
		}
	}
	papers := []*Paper{
		{ID: "p1", Conf: "SC17", Title: "Fast Things", Authors: []PersonID{"alice", "bob", "dave"}, HPCTopic: true, Citations36: 12},
		{ID: "p2", Conf: "SC17", Title: "Slow Things", Authors: []PersonID{"bob", "carol"}, Citations36: 3},
		{ID: "p3", Conf: "HPDC17", Title: "Sideways Things", Authors: []PersonID{"eve", "frank"}, HPCTopic: true, Citations36: 450},
	}
	for _, p := range papers {
		if err := d.AddPaper(p); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestAddRejectsDuplicatesAndDangling(t *testing.T) {
	d := tinyCorpus(t)
	if err := d.AddPerson(&Person{ID: "alice", Name: "Clone"}); err == nil {
		t.Error("duplicate person accepted")
	}
	if err := d.AddPerson(nil); err == nil {
		t.Error("nil person accepted")
	}
	if err := d.AddConference(&Conference{ID: "SC17"}); err == nil {
		t.Error("duplicate conference accepted")
	}
	if err := d.AddConference(nil); err == nil {
		t.Error("nil conference accepted")
	}
	if err := d.AddPaper(&Paper{ID: "p9", Conf: "NOPE"}); err == nil {
		t.Error("paper with unknown conference accepted")
	}
	if err := d.AddPaper(nil); err == nil {
		t.Error("nil paper accepted")
	}
}

func TestLookups(t *testing.T) {
	d := tinyCorpus(t)
	if c, ok := d.Conference("SC17"); !ok || c.Name != "SC" {
		t.Error("Conference lookup failed")
	}
	if _, ok := d.Conference("NOPE"); ok {
		t.Error("unknown conference resolved")
	}
	if p, ok := d.Person("eve"); !ok || p.Gender.Known() {
		t.Error("Person lookup failed or eve has known gender")
	}
	if got := len(d.PapersOf("SC17")); got != 2 {
		t.Errorf("PapersOf(SC17) = %d papers, want 2", got)
	}
	ids := d.ConfIDs()
	if len(ids) != 2 || ids[0] != "SC17" || ids[1] != "HPDC17" {
		t.Errorf("ConfIDs = %v", ids)
	}
}

func TestAuthorPopulations(t *testing.T) {
	d := tinyCorpus(t)
	slots := d.AuthorSlots()
	if len(slots) != 7 { // 3 + 2 + 2 author positions
		t.Errorf("AuthorSlots = %d, want 7", len(slots))
	}
	unique := d.UniqueAuthors()
	if len(unique) != 6 { // bob repeats
		t.Errorf("UniqueAuthors = %d, want 6", len(unique))
	}
	scOnly := d.UniqueAuthors("SC17")
	if len(scOnly) != 4 {
		t.Errorf("UniqueAuthors(SC17) = %d, want 4", len(scOnly))
	}
	leads := d.LeadAuthors()
	if len(leads) != 3 || leads[0] != "alice" || leads[2] != "eve" {
		t.Errorf("LeadAuthors = %v", leads)
	}
	lasts := d.LastAuthors()
	if len(lasts) != 3 || lasts[0] != "dave" || lasts[1] != "carol" || lasts[2] != "frank" {
		t.Errorf("LastAuthors = %v", lasts)
	}
}

func TestRolePopulations(t *testing.T) {
	d := tinyCorpus(t)
	pcSlots := d.RoleSlots(RolePCMember)
	if len(pcSlots) != 5 { // 3 at SC + 2 at HPDC, bob repeats
		t.Errorf("PC slots = %d, want 5", len(pcSlots))
	}
	pcUnique := d.UniqueRoleHolders(RolePCMember)
	if len(pcUnique) != 4 {
		t.Errorf("unique PC = %d, want 4", len(pcUnique))
	}
	if got := d.RoleSlots(RolePCMember, "HPDC17"); len(got) != 2 {
		t.Errorf("HPDC PC slots = %d, want 2", len(got))
	}
	if got := d.RoleSlots(RoleKeynote); len(got) != 1 {
		t.Errorf("keynote slots = %d, want 1", len(got))
	}
	// RoleSlots(RoleAuthor) defers to author slots.
	if got := d.RoleSlots(RoleAuthor); len(got) != 7 {
		t.Errorf("author slots via RoleSlots = %d, want 7", len(got))
	}
	all := d.UniqueAuthorsAndPC()
	if len(all) != 6 {
		t.Errorf("UniqueAuthorsAndPC = %d, want 6", len(all))
	}
}

func TestHPCPapers(t *testing.T) {
	d := tinyCorpus(t)
	hpc := d.HPCPapers()
	if len(hpc) != 2 {
		t.Errorf("HPCPapers = %d, want 2", len(hpc))
	}
	if got := d.HPCPapers("SC17"); len(got) != 1 || got[0].ID != "p1" {
		t.Errorf("HPCPapers(SC17) = %v", got)
	}
}

func TestCountGenders(t *testing.T) {
	d := tinyCorpus(t)
	gc := d.CountGenders(d.AuthorSlots())
	// Slots: alice(F) bob(M) dave(M) bob(M) carol(F) eve(U) frank(M).
	if gc.Women != 2 || gc.Men != 4 || gc.Unknown != 1 {
		t.Errorf("CountGenders = %+v", gc)
	}
	if gc.Known() != 6 || gc.Total() != 7 {
		t.Errorf("Known/Total = %d/%d", gc.Known(), gc.Total())
	}
	if got := gc.FemaleRatio(); got != 2.0/6 {
		t.Errorf("FemaleRatio = %g", got)
	}
	// Dangling IDs count as unknown.
	gc = d.CountGenders([]PersonID{"ghost"})
	if gc.Unknown != 1 || gc.Known() != 0 {
		t.Errorf("dangling: %+v", gc)
	}
	if (GenderCount{}).FemaleRatio() != 0 {
		t.Error("empty FemaleRatio should be 0")
	}
}

func TestPaperLeadLast(t *testing.T) {
	p := &Paper{Authors: []PersonID{"x", "y", "z"}}
	if p.Lead() != "x" || p.Last() != "z" {
		t.Error("Lead/Last wrong")
	}
	solo := &Paper{Authors: []PersonID{"x"}}
	if solo.Lead() != "x" || solo.Last() != "x" {
		t.Error("single-author Lead/Last must both be the author")
	}
	empty := &Paper{}
	if empty.Lead() != "" || empty.Last() != "" {
		t.Error("empty author list must yield empty IDs")
	}
}

func TestRoleString(t *testing.T) {
	if RoleAuthor.String() != "author" || RolePCMember.String() != "PC member" ||
		RoleSessionChair.String() != "session chair" {
		t.Error("role names wrong")
	}
	if Role(99).String() == "" {
		t.Error("unknown role must still render")
	}
	if len(Roles()) != 6 {
		t.Error("Roles() must list all six roles")
	}
}

func TestValidateAcceptsTinyCorpus(t *testing.T) {
	d := tinyCorpus(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("valid corpus rejected: %v", err)
	}
}

func TestValidateCatchesViolations(t *testing.T) {
	breakers := []struct {
		name  string
		mutil func(*Dataset)
	}{
		{"empty dataset", func(d *Dataset) { d.Conferences = nil }},
		{"person key mismatch", func(d *Dataset) { d.Persons["alice"].ID = "zz" }},
		{"person without name", func(d *Dataset) { d.Persons["bob"].Name = "" }},
		{"invalid GS profile", func(d *Dataset) {
			d.Persons["bob"].HasGSProfile = true
			d.Persons["bob"].GS.HIndex = 10 // > publications 0
		}},
		{"invalid S2 count", func(d *Dataset) {
			d.Persons["bob"].HasS2 = true
			d.Persons["bob"].S2Pubs = 0
		}},
		{"bad acceptance rate", func(d *Dataset) { d.Conferences[0].AcceptanceRate = 1.5 }},
		{"bad year", func(d *Dataset) { d.Conferences[0].Year = 1200 }},
		{"roster dangling person", func(d *Dataset) {
			d.Conferences[0].PCMembers = append(d.Conferences[0].PCMembers, "ghost")
		}},
		{"roster repeat", func(d *Dataset) {
			d.Conferences[0].PCMembers = append(d.Conferences[0].PCMembers, "bob")
		}},
		{"paper no authors", func(d *Dataset) { d.Papers[0].Authors = nil }},
		{"paper negative citations", func(d *Dataset) { d.Papers[0].Citations36 = -1 }},
		{"paper dangling author", func(d *Dataset) { d.Papers[0].Authors[0] = "ghost" }},
		{"paper repeated author", func(d *Dataset) { d.Papers[0].Authors[1] = d.Papers[0].Authors[0] }},
		{"duplicate paper id", func(d *Dataset) { d.Papers[1].ID = d.Papers[0].ID }},
	}
	for _, b := range breakers {
		d := tinyCorpus(t)
		b.mutil(d)
		err := d.Validate()
		if err == nil {
			t.Errorf("%s: validation passed", b.name)
			continue
		}
		if !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: error %v does not wrap ErrInvalid", b.name, err)
		}
	}
}

func TestReindex(t *testing.T) {
	d := tinyCorpus(t)
	// Simulate a loader that fills the slices directly.
	d2 := New()
	d2.Conferences = d.Conferences
	d2.Papers = d.Papers
	d2.Persons = d.Persons
	d2.Reindex()
	if got := len(d2.PapersOf("SC17")); got != 2 {
		t.Errorf("after Reindex, PapersOf(SC17) = %d", got)
	}
	if _, ok := d2.Conference("HPDC17"); !ok {
		t.Error("after Reindex, conference lookup failed")
	}
}
