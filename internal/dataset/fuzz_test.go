package dataset

import (
	"strings"
	"testing"
)

// FuzzReadPersonsCSV: arbitrary byte streams must never panic the loader —
// they either parse into persons or return an error.
func FuzzReadPersonsCSV(f *testing.F) {
	f.Add("id,name,forename,true_gender,gender,assign_method,email,affiliation,country,sector,has_gs,gs_pubs,gs_hindex,gs_i10,gs_citations,has_s2,s2_pubs\n" +
		"p1,P One,P,male,male,manual,a@b.edu,Uni,US,EDU,true,10,3,2,60,true,12\n")
	f.Add("")
	f.Add("id,nope\nx,y\n")
	f.Add("\x00\xff\xfe")
	f.Fuzz(func(t *testing.T, data string) {
		d := New()
		_ = d.ReadPersonsCSV(strings.NewReader(data)) // must not panic
	})
}

// FuzzReadConferencesCSV mirrors the persons fuzzer for the conference
// table (it has the most typed columns).
func FuzzReadConferencesCSV(f *testing.F) {
	f.Add("id,name,year,date,country,submitted,acceptance_rate,double_blind,diversity_chair,code_of_conduct,childcare,women_attendance,subfield,pc_chairs,pc_members,keynotes,panelists,session_chairs\n" +
		"SC17,SC,2017,2017-11-13,US,327,0.187,true,true,true,true,0.14,HPC,,,,,\n")
	f.Add("garbage")
	f.Fuzz(func(t *testing.T, data string) {
		d := New()
		_ = d.ReadConferencesCSV(strings.NewReader(data))
	})
}
