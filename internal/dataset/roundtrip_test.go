package dataset

import (
	"bytes"
	"testing"
)

// TestCSVDeterministicBytes ensures the CSV writers are byte-deterministic
// for a fixed dataset — the property that makes a saved corpus a
// reproducible artifact.
func TestCSVDeterministicBytes(t *testing.T) {
	d := tinyCorpus(t)
	render := func() [3]string {
		var p, c, pa bytes.Buffer
		if err := d.WritePersonsCSV(&p); err != nil {
			t.Fatal(err)
		}
		if err := d.WriteConferencesCSV(&c); err != nil {
			t.Fatal(err)
		}
		if err := d.WritePapersCSV(&pa); err != nil {
			t.Fatal(err)
		}
		return [3]string{p.String(), c.String(), pa.String()}
	}
	a := render()
	b := render()
	if a != b {
		t.Fatal("CSV output not byte-deterministic")
	}
}

// TestSaveLoadSaveFixedPoint: saving, loading, and saving again must
// produce identical files (the load is lossless, so the second save is a
// fixed point).
func TestSaveLoadSaveFixedPoint(t *testing.T) {
	d := tinyCorpus(t)
	d.Conferences[0].Subfield = "HPC"
	d.Conferences[0].WomenAttendance = 0.14
	dir1 := t.TempDir()
	if err := d.SaveDir(dir1); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDir(dir1)
	if err != nil {
		t.Fatal(err)
	}
	var w1, w2 bytes.Buffer
	if err := d.WriteConferencesCSV(&w1); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WriteConferencesCSV(&w2); err != nil {
		t.Fatal(err)
	}
	if w1.String() != w2.String() {
		t.Errorf("conference CSV changed across a load:\n%s\nvs\n%s", w1.String(), w2.String())
	}
	var p1, p2 bytes.Buffer
	if err := d.WritePersonsCSV(&p1); err != nil {
		t.Fatal(err)
	}
	if err := loaded.WritePersonsCSV(&p2); err != nil {
		t.Fatal(err)
	}
	if p1.String() != p2.String() {
		t.Error("persons CSV changed across a load")
	}
}
