package dataset

import (
	"errors"
	"fmt"
)

// ErrInvalid wraps all validation failures so callers can errors.Is on it.
var ErrInvalid = errors.New("dataset: invalid")

func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrInvalid, fmt.Sprintf(format, args...))
}

// Validate checks referential and value integrity of the whole corpus:
// every referenced person exists, author lists are nonempty and
// duplicate-free, per-conference role rosters are duplicate-free,
// acceptance rates and citation counts are in range, and person records
// are self-consistent. It returns the first violation found.
func (d *Dataset) Validate() error {
	if len(d.Conferences) == 0 {
		return invalidf("no conferences")
	}
	for id, p := range d.Persons {
		if p == nil {
			return invalidf("nil person %q", id)
		}
		if p.ID != id {
			return invalidf("person map key %q does not match ID %q", id, p.ID)
		}
		if p.Name == "" {
			return invalidf("person %q has no name", id)
		}
		if p.HasGSProfile {
			if err := p.GS.Validate(); err != nil {
				return invalidf("person %q: %v", id, err)
			}
		}
		if p.HasS2 && p.S2Pubs < 1 {
			return invalidf("person %q: Semantic Scholar count %d < 1", id, p.S2Pubs)
		}
	}
	seenConf := make(map[ConfID]bool, len(d.Conferences))
	for _, c := range d.Conferences {
		if c == nil || c.ID == "" {
			return invalidf("nil or unidentified conference")
		}
		if seenConf[c.ID] {
			return invalidf("duplicate conference %q", c.ID)
		}
		seenConf[c.ID] = true
		if c.AcceptanceRate <= 0 || c.AcceptanceRate > 1 {
			return invalidf("conference %q acceptance rate %g outside (0, 1]", c.ID, c.AcceptanceRate)
		}
		if c.Year < 1980 || c.Year > 2100 {
			return invalidf("conference %q implausible year %d", c.ID, c.Year)
		}
		for _, r := range []Role{RolePCChair, RolePCMember, RoleKeynote, RolePanelist, RoleSessionChair} {
			seen := make(map[PersonID]bool)
			for _, id := range c.RoleHolders(r) {
				if _, ok := d.Persons[id]; !ok {
					return invalidf("conference %q %s roster references unknown person %q", c.ID, r, id)
				}
				if seen[id] {
					return invalidf("conference %q %s roster repeats person %q", c.ID, r, id)
				}
				seen[id] = true
			}
		}
	}
	seenPaper := make(map[PaperID]bool, len(d.Papers))
	for _, p := range d.Papers {
		if p == nil || p.ID == "" {
			return invalidf("nil or unidentified paper")
		}
		if seenPaper[p.ID] {
			return invalidf("duplicate paper %q", p.ID)
		}
		seenPaper[p.ID] = true
		if !seenConf[p.Conf] {
			return invalidf("paper %q references unknown conference %q", p.ID, p.Conf)
		}
		if len(p.Authors) == 0 {
			return invalidf("paper %q has no authors", p.ID)
		}
		if p.Citations36 < 0 {
			return invalidf("paper %q has negative citations %d", p.ID, p.Citations36)
		}
		seenAuthor := make(map[PersonID]bool, len(p.Authors))
		for _, a := range p.Authors {
			if _, ok := d.Persons[a]; !ok {
				return invalidf("paper %q references unknown author %q", p.ID, a)
			}
			if seenAuthor[a] {
				return invalidf("paper %q repeats author %q", p.ID, a)
			}
			seenAuthor[a] = true
		}
	}
	return nil
}
