package dataset

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mangleCorpusDir saves a valid tiny corpus and applies fn to the persons
// CSV (or whichever file fn chooses to rewrite).
func mangleCorpusDir(t *testing.T, fn func(dir string)) string {
	t.Helper()
	d := tinyCorpus(t)
	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	fn(dir)
	return dir
}

// rewriteLine replaces 1-based line n of the named file using edit.
func rewriteLine(t *testing.T, dir, file string, n int, edit func(string) string) {
	t.Helper()
	path := filepath.Join(dir, file)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	if n-1 >= len(lines) {
		t.Fatalf("%s has only %d lines, want to edit line %d", file, len(lines), n)
	}
	lines[n-1] = edit(lines[n-1])
	if err := os.WriteFile(path, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestLoadDirCorruptRows: every corruption must be reported with the file
// name and the offending input line, not as a bare parse error.
func TestLoadDirCorruptRows(t *testing.T) {
	tests := []struct {
		name    string
		mangle  func(t *testing.T, dir string)
		file    string // must appear in the error
		snippet string // must appear in the error
	}{
		{
			name: "truncated person row",
			mangle: func(t *testing.T, dir string) {
				rewriteLine(t, dir, "persons.csv", 2, func(l string) string {
					cells := strings.Split(l, ",")
					return strings.Join(cells[:5], ",")
				})
			},
			file:    "persons.csv",
			snippet: "line 2: truncated row",
		},
		{
			name: "overlong person row",
			mangle: func(t *testing.T, dir string) {
				rewriteLine(t, dir, "persons.csv", 3, func(l string) string {
					return l + ",extra,cells"
				})
			},
			file:    "persons.csv",
			snippet: "line 3: overlong row",
		},
		{
			name: "corrupt integer field",
			mangle: func(t *testing.T, dir string) {
				rewriteLine(t, dir, "persons.csv", 2, func(l string) string {
					cells := strings.Split(l, ",")
					cells[11] = "not-a-number" // gs_pubs
					return strings.Join(cells, ",")
				})
			},
			file:    "persons.csv",
			snippet: "line 2: field gs_pubs",
		},
		{
			name: "corrupt bool in conferences",
			mangle: func(t *testing.T, dir string) {
				rewriteLine(t, dir, "conferences.csv", 2, func(l string) string {
					cells := strings.Split(l, ",")
					cells[7] = "maybe" // double_blind
					return strings.Join(cells, ",")
				})
			},
			file:    "conferences.csv",
			snippet: "line 2: field double_blind",
		},
		{
			name: "corrupt citation count in papers",
			mangle: func(t *testing.T, dir string) {
				rewriteLine(t, dir, "papers.csv", 3, func(l string) string {
					cells := strings.Split(l, ",")
					cells[len(cells)-1] = "3.5x"
					return strings.Join(cells, ",")
				})
			},
			file:    "papers.csv",
			snippet: "line 3: field citations36",
		},
		{
			name: "unbalanced quote",
			mangle: func(t *testing.T, dir string) {
				rewriteLine(t, dir, "papers.csv", 2, func(l string) string {
					return `"` + l
				})
			},
			file:    "papers.csv",
			snippet: "malformed CSV",
		},
		{
			name: "wrong header",
			mangle: func(t *testing.T, dir string) {
				rewriteLine(t, dir, "persons.csv", 1, func(l string) string {
					return strings.Replace(l, "id,", "identifier,", 1)
				})
			},
			file:    "persons.csv",
			snippet: "header column 0",
		},
		{
			name: "empty file",
			mangle: func(t *testing.T, dir string) {
				if err := os.WriteFile(filepath.Join(dir, "papers.csv"), nil, 0o644); err != nil {
					t.Fatal(err)
				}
			},
			file:    "papers.csv",
			snippet: "empty CSV",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			dir := mangleCorpusDir(t, func(dir string) { tc.mangle(t, dir) })
			_, err := LoadDir(dir)
			if err == nil {
				t.Fatal("LoadDir succeeded on corrupt corpus")
			}
			msg := err.Error()
			if !strings.Contains(msg, tc.file) {
				t.Errorf("error does not name file %s: %q", tc.file, msg)
			}
			if !strings.Contains(msg, tc.snippet) {
				t.Errorf("error does not identify the corruption (%q): %q", tc.snippet, msg)
			}
		})
	}
}

// TestLoadDirStillRoundTrips: the hardened reader must keep accepting
// valid corpora unchanged.
func TestLoadDirStillRoundTrips(t *testing.T) {
	d := tinyCorpus(t)
	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Persons) != len(d.Persons) || len(got.Papers) != len(d.Papers) {
		t.Fatalf("round trip lost entities: %d/%d persons, %d/%d papers",
			len(got.Persons), len(d.Persons), len(got.Papers), len(d.Papers))
	}
}
