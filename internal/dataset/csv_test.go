package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func TestCSVRoundTripThroughDir(t *testing.T) {
	d := tinyCorpus(t)
	d.Persons["alice"].HasGSProfile = true
	d.Persons["alice"].GS.Publications = 40
	d.Persons["alice"].GS.HIndex = 12
	d.Persons["alice"].GS.I10Index = 15
	d.Persons["alice"].GS.Citations = 800
	d.Persons["alice"].HasS2 = true
	d.Persons["alice"].S2Pubs = 55
	d.Persons["alice"].Email = "alice@cs.reed.edu"
	d.Persons["alice"].Affiliation = "Reed College"

	dir := t.TempDir()
	if err := d.SaveDir(dir); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Persons) != len(d.Persons) {
		t.Fatalf("persons: %d vs %d", len(got.Persons), len(d.Persons))
	}
	for id, want := range d.Persons {
		gp, ok := got.Persons[id]
		if !ok {
			t.Fatalf("person %q lost", id)
		}
		if !reflect.DeepEqual(*gp, *want) {
			t.Errorf("person %q round-trip mismatch:\n got %+v\nwant %+v", id, *gp, *want)
		}
	}
	if len(got.Conferences) != 2 || len(got.Papers) != 3 {
		t.Fatalf("confs/papers: %d/%d", len(got.Conferences), len(got.Papers))
	}
	for i, want := range d.Conferences {
		g := got.Conferences[i]
		if g.ID != want.ID || g.Year != want.Year || !g.Date.Equal(want.Date) ||
			g.AcceptanceRate != want.AcceptanceRate || g.DoubleBlind != want.DoubleBlind ||
			g.DiversityChair != want.DiversityChair || g.Childcare != want.Childcare ||
			!reflect.DeepEqual(g.PCMembers, want.PCMembers) ||
			!reflect.DeepEqual(g.SessionChairs, want.SessionChairs) {
			t.Errorf("conference %s round-trip mismatch:\n got %+v\nwant %+v", want.ID, g, want)
		}
	}
	for i, want := range d.Papers {
		g := got.Papers[i]
		if g.ID != want.ID || g.Conf != want.Conf || g.Title != want.Title ||
			g.HPCTopic != want.HPCTopic || g.Citations36 != want.Citations36 ||
			!reflect.DeepEqual(g.Authors, want.Authors) {
			t.Errorf("paper %s round-trip mismatch:\n got %+v\nwant %+v", want.ID, g, want)
		}
	}
	// Derived queries survive the round trip.
	if got.CountGenders(got.AuthorSlots()) != d.CountGenders(d.AuthorSlots()) {
		t.Error("gender counts diverged after round trip")
	}
}

func TestLoadDirMissingFile(t *testing.T) {
	if _, err := LoadDir(t.TempDir()); err == nil {
		t.Error("empty dir should fail to load")
	}
}

func TestPersonsCSVDeterministicOrder(t *testing.T) {
	d := tinyCorpus(t)
	var a, b bytes.Buffer
	if err := d.WritePersonsCSV(&a); err != nil {
		t.Fatal(err)
	}
	if err := d.WritePersonsCSV(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("persons CSV not deterministic")
	}
	// Sorted by ID: alice before bob before carol.
	lines := strings.Split(a.String(), "\n")
	if !strings.HasPrefix(lines[1], "alice,") || !strings.HasPrefix(lines[2], "bob,") {
		t.Errorf("rows not sorted: %q, %q", lines[1], lines[2])
	}
}

func TestReadPersonsCSVRejectsBadHeader(t *testing.T) {
	d := New()
	err := d.ReadPersonsCSV(strings.NewReader("id,nope\nx,y\n"))
	if err == nil {
		t.Error("bad header accepted")
	}
}

func TestReadPersonsCSVRejectsBadFields(t *testing.T) {
	// has_gs not parseable as bool.
	row := `id,name,forename,true_gender,gender,assign_method,email,affiliation,country,sector,has_gs,gs_pubs,gs_hindex,gs_i10,gs_citations,has_s2,s2_pubs
p1,P One,P,male,male,manual,,,US,EDU,maybe,0,0,0,0,false,0
`
	d := New()
	if err := d.ReadPersonsCSV(strings.NewReader(row)); err == nil {
		t.Error("bad boolean accepted")
	}
	// Non-integer publication count.
	row2 := strings.Replace(row, "maybe,0,", "true,lots,", 1)
	d2 := New()
	if err := d2.ReadPersonsCSV(strings.NewReader(row2)); err == nil {
		t.Error("bad integer accepted")
	}
}

func TestReadConferencesCSVRejectsBadDate(t *testing.T) {
	row := `id,name,year,date,country,submitted,acceptance_rate,double_blind,diversity_chair,code_of_conduct,childcare,women_attendance,subfield,pc_chairs,pc_members,keynotes,panelists,session_chairs
SC17,SC,2017,13-11-2017,US,327,0.187,true,true,true,true,0.14,HPC,,,,,
`
	d := New()
	if err := d.ReadConferencesCSV(strings.NewReader(row)); err == nil {
		t.Error("bad date accepted")
	}
}

func TestReadPapersCSVRejectsUnknownConf(t *testing.T) {
	row := `id,conf,title,authors,hpc_topic,citations36
p1,NOPE,Title,alice,true,5
`
	d := New()
	if err := d.ReadPapersCSV(strings.NewReader(row)); err == nil {
		t.Error("paper referencing unknown conference accepted")
	}
}

func TestSplitJoinIDs(t *testing.T) {
	ids := []PersonID{"a", "b", "c"}
	if got := splitIDs(joinIDs(ids)); !reflect.DeepEqual(got, ids) {
		t.Errorf("round trip = %v", got)
	}
	if splitIDs("") != nil {
		t.Error("empty string should split to nil")
	}
	if joinIDs(nil) != "" {
		t.Error("nil should join to empty string")
	}
}
