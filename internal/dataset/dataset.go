package dataset

import (
	"fmt"
	"sort"

	"repro/internal/gender"
)

// Dataset is the complete corpus: conferences, their papers, and every
// person holding any role. It maintains lookup indexes that are rebuilt
// lazily after mutation via Reindex.
type Dataset struct {
	Conferences []*Conference
	Papers      []*Paper
	Persons     map[PersonID]*Person

	papersByConf map[ConfID][]*Paper
	confByID     map[ConfID]*Conference
}

// New returns an empty dataset ready for population.
func New() *Dataset {
	return &Dataset{
		Persons:      make(map[PersonID]*Person),
		papersByConf: make(map[ConfID][]*Paper),
		confByID:     make(map[ConfID]*Conference),
	}
}

// AddConference registers a conference. Duplicate IDs are an error.
func (d *Dataset) AddConference(c *Conference) error {
	if c == nil || c.ID == "" {
		return fmt.Errorf("dataset: nil or unidentified conference")
	}
	if _, dup := d.confByID[c.ID]; dup {
		return fmt.Errorf("dataset: duplicate conference %q", c.ID)
	}
	d.Conferences = append(d.Conferences, c)
	d.confByID[c.ID] = c
	return nil
}

// AddPaper registers a paper under its conference.
func (d *Dataset) AddPaper(p *Paper) error {
	if p == nil || p.ID == "" {
		return fmt.Errorf("dataset: nil or unidentified paper")
	}
	if _, ok := d.confByID[p.Conf]; !ok {
		return fmt.Errorf("dataset: paper %q references unknown conference %q", p.ID, p.Conf)
	}
	d.Papers = append(d.Papers, p)
	d.papersByConf[p.Conf] = append(d.papersByConf[p.Conf], p)
	return nil
}

// AddPerson registers a researcher. Duplicate IDs are an error.
func (d *Dataset) AddPerson(p *Person) error {
	if p == nil || p.ID == "" {
		return fmt.Errorf("dataset: nil or unidentified person")
	}
	if _, dup := d.Persons[p.ID]; dup {
		return fmt.Errorf("dataset: duplicate person %q", p.ID)
	}
	d.Persons[p.ID] = p
	return nil
}

// Reindex rebuilds the lookup indexes after direct mutation of the
// exported slices (the CSV loader uses this).
func (d *Dataset) Reindex() {
	d.papersByConf = make(map[ConfID][]*Paper, len(d.Conferences))
	d.confByID = make(map[ConfID]*Conference, len(d.Conferences))
	for _, c := range d.Conferences {
		d.confByID[c.ID] = c
	}
	for _, p := range d.Papers {
		d.papersByConf[p.Conf] = append(d.papersByConf[p.Conf], p)
	}
}

// Conference returns a conference by ID.
func (d *Dataset) Conference(id ConfID) (*Conference, bool) {
	c, ok := d.confByID[id]
	return c, ok
}

// PapersOf returns the papers of one conference (in insertion order).
func (d *Dataset) PapersOf(id ConfID) []*Paper { return d.papersByConf[id] }

// Person returns a researcher by ID.
func (d *Dataset) Person(id PersonID) (*Person, bool) {
	p, ok := d.Persons[id]
	return p, ok
}

// AuthorSlots returns every author occurrence across the given conferences
// (all conferences if none specified) with repetition: a person authoring
// three papers appears three times. This is the population behind the
// paper's "2236 authors" phrasing.
func (d *Dataset) AuthorSlots(confs ...ConfID) []PersonID {
	var out []PersonID
	for _, p := range d.papersIn(confs) {
		out = append(out, p.Authors...)
	}
	return out
}

// UniqueAuthors returns the deduplicated author set for the given
// conferences (all if none specified), sorted by ID for determinism. This
// is the population behind "1885 unique coauthors".
func (d *Dataset) UniqueAuthors(confs ...ConfID) []PersonID {
	seen := make(map[PersonID]bool)
	for _, p := range d.papersIn(confs) {
		for _, a := range p.Authors {
			seen[a] = true
		}
	}
	return sortedIDs(seen)
}

// LeadAuthors returns the first author of each paper in the given
// conferences (all if none specified), with repetition across papers.
func (d *Dataset) LeadAuthors(confs ...ConfID) []PersonID {
	var out []PersonID
	for _, p := range d.papersIn(confs) {
		if id := p.Lead(); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// LastAuthors returns the last author of each paper in the given
// conferences (all if none specified), with repetition across papers.
func (d *Dataset) LastAuthors(confs ...ConfID) []PersonID {
	var out []PersonID
	for _, p := range d.papersIn(confs) {
		if id := p.Last(); id != "" {
			out = append(out, id)
		}
	}
	return out
}

// RoleSlots returns every occurrence of a non-author role across the given
// conferences with repetition (the paper's "1220 total PC members (with
// repeats)"). For RoleAuthor it defers to AuthorSlots.
func (d *Dataset) RoleSlots(r Role, confs ...ConfID) []PersonID {
	if r == RoleAuthor {
		return d.AuthorSlots(confs...)
	}
	var out []PersonID
	for _, c := range d.confsIn(confs) {
		out = append(out, c.RoleHolders(r)...)
	}
	return out
}

// UniqueRoleHolders deduplicates RoleSlots (the paper's "908 total" unique
// PC members), sorted by ID.
func (d *Dataset) UniqueRoleHolders(r Role, confs ...ConfID) []PersonID {
	seen := make(map[PersonID]bool)
	for _, id := range d.RoleSlots(r, confs...) {
		seen[id] = true
	}
	return sortedIDs(seen)
}

// UniqueAuthorsAndPC returns the union of unique authors and unique PC
// members — the "3456 authors and PC members" demographic population of §5.
func (d *Dataset) UniqueAuthorsAndPC() []PersonID {
	seen := make(map[PersonID]bool)
	for _, id := range d.AuthorSlots() {
		seen[id] = true
	}
	for _, id := range d.RoleSlots(RolePCMember) {
		seen[id] = true
	}
	return sortedIDs(seen)
}

// HPCPapers returns the manually HPC-tagged subset (§4.1) across the given
// conferences (all if none specified).
func (d *Dataset) HPCPapers(confs ...ConfID) []*Paper {
	var out []*Paper
	for _, p := range d.papersIn(confs) {
		if p.HPCTopic {
			out = append(out, p)
		}
	}
	return out
}

// GenderCount tallies perceived genders over a slot list (repeats kept —
// callers choose unique vs slot populations).
type GenderCount struct {
	Women   int
	Men     int
	Unknown int
}

// Known returns the gender-assigned population size.
func (g GenderCount) Known() int { return g.Women + g.Men }

// Total returns the full population size including unknowns.
func (g GenderCount) Total() int { return g.Women + g.Men + g.Unknown }

// FemaleRatio returns Women / Known — the paper's FAR when applied to
// author slots. Returns 0 when no gender is known.
func (g GenderCount) FemaleRatio() float64 {
	if g.Known() == 0 {
		return 0
	}
	return float64(g.Women) / float64(g.Known())
}

// CountGenders tallies the perceived genders of a slot list. Unknown
// persons (dangling IDs) count as gender-unknown, matching the paper's
// exclusion convention.
func (d *Dataset) CountGenders(ids []PersonID) GenderCount {
	var gc GenderCount
	for _, id := range ids {
		p, ok := d.Persons[id]
		if !ok {
			gc.Unknown++
			continue
		}
		switch p.Gender {
		case gender.Female:
			gc.Women++
		case gender.Male:
			gc.Men++
		default:
			gc.Unknown++
		}
	}
	return gc
}

// ConfIDs returns all conference IDs in insertion order.
func (d *Dataset) ConfIDs() []ConfID {
	out := make([]ConfID, len(d.Conferences))
	for i, c := range d.Conferences {
		out[i] = c.ID
	}
	return out
}

func (d *Dataset) papersIn(confs []ConfID) []*Paper {
	if len(confs) == 0 {
		return d.Papers
	}
	var out []*Paper
	for _, id := range confs {
		out = append(out, d.papersByConf[id]...)
	}
	return out
}

func (d *Dataset) confsIn(confs []ConfID) []*Conference {
	if len(confs) == 0 {
		return d.Conferences
	}
	var out []*Conference
	for _, id := range confs {
		if c, ok := d.confByID[id]; ok {
			out = append(out, c)
		}
	}
	return out
}

func sortedIDs(set map[PersonID]bool) []PersonID {
	out := make([]PersonID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
