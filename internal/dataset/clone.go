package dataset

import "maps"

// Clone returns a copy of the dataset with fresh containers and indexes
// but shared entity pointers: appending conferences, papers or persons to
// the clone leaves the receiver untouched, while the immutable entity
// records are not duplicated. Callers must treat the shared entities as
// read-only (the delta-apply path only ever adds entities, never mutates
// them).
func (d *Dataset) Clone() *Dataset {
	out := &Dataset{
		Conferences:  append([]*Conference(nil), d.Conferences...),
		Papers:       append([]*Paper(nil), d.Papers...),
		Persons:      maps.Clone(d.Persons),
		papersByConf: make(map[ConfID][]*Paper, len(d.papersByConf)),
		confByID:     maps.Clone(d.confByID),
	}
	if out.Persons == nil {
		out.Persons = make(map[PersonID]*Person)
	}
	if out.confByID == nil {
		out.confByID = make(map[ConfID]*Conference)
	}
	for _, c := range d.Conferences {
		if ps := d.papersByConf[c.ID]; ps != nil {
			out.papersByConf[c.ID] = append([]*Paper(nil), ps...)
		}
	}
	return out
}
