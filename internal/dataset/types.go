// Package dataset defines the relational data model the paper's analyses
// run over: conferences, peer-reviewed papers, researchers, and the
// conference roles connecting them (author, PC chair, PC member, keynote
// speaker, panelist, session chair). It also provides CSV codecs matching
// the frozen-CSV artifact style of the paper's published dataset
// (github.com/eitanf/sysconf) and integrity validation.
package dataset

import (
	"fmt"
	"time"

	"repro/internal/affil"
	"repro/internal/gender"
	"repro/internal/scholar"
)

// PersonID uniquely identifies a researcher across the whole corpus
// (researchers recur across conferences and roles).
type PersonID string

// PaperID uniquely identifies a published paper.
type PaperID string

// ConfID identifies a conference edition, e.g. "SC17" or "ISC18".
type ConfID string

// Role is a conference participation role from the paper's §2.
type Role int8

const (
	RoleAuthor Role = iota
	RolePCChair
	RolePCMember
	RoleKeynote
	RolePanelist
	RoleSessionChair
)

// String names the role as the paper's Fig 1 labels them.
func (r Role) String() string {
	switch r {
	case RoleAuthor:
		return "author"
	case RolePCChair:
		return "PC chair"
	case RolePCMember:
		return "PC member"
	case RoleKeynote:
		return "keynote"
	case RolePanelist:
		return "panelist"
	case RoleSessionChair:
		return "session chair"
	default:
		return fmt.Sprintf("role(%d)", int8(r))
	}
}

// Roles lists all roles in the paper's presentation order.
func Roles() []Role {
	return []Role{RoleAuthor, RolePCChair, RolePCMember, RoleKeynote, RolePanelist, RoleSessionChair}
}

// Person is one researcher with every attribute the paper collected.
type Person struct {
	ID       PersonID
	Name     string // full name as printed on papers
	Forename string // extracted forename feeding gender inference

	// TrueGender is the latent ground truth known only to the simulation
	// substrates (the survey validation and accuracy analyses read it);
	// the analyses proper use the perceived Gender below, exactly as the
	// paper could only work with perceived gender.
	TrueGender gender.Gender
	// Gender is the perceived gender produced by the assignment cascade.
	Gender gender.Gender
	// AssignMethod records which cascade stage assigned Gender.
	AssignMethod gender.Method

	Email       string
	Affiliation string
	CountryCode string // ISO alpha-2, "" when unknown
	Sector      affil.Sector

	// HasGSProfile mirrors the paper's 68.3% unambiguous Google Scholar
	// linkage; GS is meaningful only when true.
	HasGSProfile bool
	GS           scholar.Profile

	// S2Pubs is the Semantic Scholar past-publication count (100% author
	// coverage in the paper); meaningful only when HasS2 is true.
	HasS2  bool
	S2Pubs int
}

// KnownGender reports whether the perceived gender was assigned.
func (p *Person) KnownGender() bool { return p.Gender.Known() }

// Paper is one peer-reviewed publication. Author order follows systems
// conventions: the first author is the primary contributor ("lead"), the
// last author the most senior.
type Paper struct {
	ID      PaperID
	Conf    ConfID
	Title   string
	Authors []PersonID // ordered author list
	// HPCTopic is the paper's manual topic tag: true if the paper relates
	// directly to high-performance hardware or software (§4.1).
	HPCTopic bool
	// Citations36 is the citation count 36 months after publication, the
	// horizon of the Fig 2 reception analysis.
	Citations36 int
}

// Lead returns the first author ("" if the author list is empty).
func (p *Paper) Lead() PersonID {
	if len(p.Authors) == 0 {
		return ""
	}
	return p.Authors[0]
}

// Last returns the last author ("" if the author list is empty).
func (p *Paper) Last() PersonID {
	if len(p.Authors) == 0 {
		return ""
	}
	return p.Authors[len(p.Authors)-1]
}

// Conference is one conference edition with the attributes from Table 1
// and the policy data gathered from conference web sites (§2).
type Conference struct {
	ID             ConfID
	Name           string // series name, e.g. "SC"
	Year           int
	Date           time.Time
	CountryCode    string  // host country, ISO alpha-2
	Submitted      int     // submitted paper count
	AcceptanceRate float64 // accepted / submitted

	// Subfield is the systems subfield the venue belongs to ("HPC",
	// "OS", "Networking", ...). The paper's future work extends the
	// analysis "to the larger set of 56 conferences ... from all
	// subfields of computer systems"; this attribute supports that
	// extension. Empty means unclassified (the 2017 core corpus uses
	// "HPC" throughout).
	Subfield string

	// Review and diversity policies.
	DoubleBlind    bool // SC and ISC are the dataset's only double-blind venues
	DiversityChair bool // diversity/inclusivity chair appointed
	CodeOfConduct  bool
	Childcare      bool // SC's on-site childcare

	// WomenAttendance is the conference-reported fraction of women among
	// attendees (§3.4: SC reported 13-14% across 2016-2020). Zero means
	// the conference did not share attendance demographics.
	WomenAttendance float64

	// Role rosters (author rosters live on the papers). PC membership may
	// repeat people across conferences; within one conference each roster
	// is duplicate-free.
	PCChairs      []PersonID
	PCMembers     []PersonID
	Keynotes      []PersonID
	Panelists     []PersonID
	SessionChairs []PersonID
}

// RoleHolders returns the roster for a non-author role (authors are
// reached through the conference's papers).
func (c *Conference) RoleHolders(r Role) []PersonID {
	switch r {
	case RolePCChair:
		return c.PCChairs
	case RolePCMember:
		return c.PCMembers
	case RoleKeynote:
		return c.Keynotes
	case RolePanelist:
		return c.Panelists
	case RoleSessionChair:
		return c.SessionChairs
	default:
		return nil
	}
}
