// Package chaos is the deterministic fault-injection subsystem: named
// injection points threaded through the serving, snapshot, and ingestion
// layers consult an Injector that is a no-op in production (None) and
// schedule-driven in tests (Scheduled). A Schedule is generated from a
// seed and a Profile, so every chaos run — which faults fired, at which
// points, on which hit ordinals — is replayable from its seed alone. That
// turns "the daemon survived a hostile afternoon" from an anecdote into a
// regression test: the same seed reproduces the identical fault sequence,
// and the suite can assert that every successful response stayed
// byte-identical to the fault-free run while every failure surfaced as a
// typed error with an accounted metric.
//
// The package deliberately knows nothing about HTTP, snapshots, or
// harvesting. Sites own the semantics of a fired fault: a snapshot read
// applies a torn read by truncating its buffer, the request middleware
// applies a panic by panicking, a clock wrapper applies a latency spike by
// oversleeping. chaos only decides *whether* and *what kind*, never *how*.
package chaos

import (
	"errors"
	"fmt"
	"time"
)

// Injection point names. Points are a closed, documented set so schedules
// stay meaningful across refactors and metric labels stay bounded.
const (
	// PointRequest fires once per admitted HTTP request, before the
	// handler runs (internal/serve middleware).
	PointRequest = "serve.request"
	// PointRender fires once per exhibit-cache miss, before the render
	// computes (internal/serve cache compute path).
	PointRender = "serve.render"
	// PointMaterialize fires once per study materialization, before the
	// corpus is built or loaded (internal/serve registry build path).
	PointMaterialize = "serve.materialize"
	// PointSnapRead fires once per snapshot file read, after the bytes
	// arrive but before validation (internal/snap open path). Torn-read
	// faults truncate the buffer here.
	PointSnapRead = "snap.read"
	// PointSnapDecode fires once per snapshot section decode
	// (internal/snap reader: persons, conferences, papers, frames).
	PointSnapDecode = "snap.decode"
	// PointClock fires once per chaos.Clock sleep, stretching or failing
	// the wait (latency-spike injection for code that sleeps on an
	// injected resilience.Clock).
	PointClock = "clock.advance"
	// PointScatter fires once per shard subquery attempt inside the
	// federation coordinator, before the shard scan runs (so a fault
	// replaces that attempt's partial and exercises the replica retry).
	PointScatter = "shard.scatter"
	// PointMerge fires once per federated query, after every shard
	// partial has been gathered and before the deterministic merge.
	PointMerge = "shard.merge"
	// PointIngestLookup fires once per bibliometric lookup attempt inside
	// the harvest worker chain (internal/ingest), upstream of the
	// per-service faulty.Injector.
	PointIngestLookup = "ingest.lookup"
	// PointDeltaApply fires once per delta application, after the delta
	// mini-corpus is decoded but before the study's dataset and frames
	// are touched (internal/delta apply path) — so an injected fault
	// leaves the base study exactly as it was.
	PointDeltaApply = "delta.apply"
)

// Points lists every injection point in a fixed order (for profiles,
// documentation, and bounded metric labels).
func Points() []string {
	return []string{
		PointRequest, PointRender, PointMaterialize,
		PointSnapRead, PointSnapDecode, PointClock,
		PointScatter, PointMerge, PointIngestLookup,
		PointDeltaApply,
	}
}

// Kind is the fault family a trigger injects. Sites that cannot express a
// kind degrade it to KindError — a fault never silently disappears.
type Kind uint8

const (
	// KindError makes the site fail with a typed injected error.
	KindError Kind = 1 + iota
	// KindTorn truncates an I/O read mid-buffer (the bytes after the tear
	// never arrive); only byte-reading sites can express it.
	KindTorn
	// KindLatency stalls the site on its injected clock before letting it
	// proceed — the operation still succeeds, just late.
	KindLatency
	// KindPanic panics at the site with a PanicValue, exercising the
	// containment (recover) layer above it.
	KindPanic
	// KindCancel cancels the site's context (or fails with
	// context.Canceled where no cancel function is in reach).
	KindCancel
)

// String names the kind for schedules, logs, and metric labels.
func (k Kind) String() string {
	switch k {
	case KindError:
		return "error"
	case KindTorn:
		return "torn"
	case KindLatency:
		return "latency"
	case KindPanic:
		return "panic"
	case KindCancel:
		return "cancel"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault is one armed fault: the kind plus the kind-specific magnitudes.
type Fault struct {
	Kind Kind
	// Latency is the extra stall for KindLatency.
	Latency time.Duration
	// TornBytes is how many trailing bytes a KindTorn read loses.
	TornBytes int
}

// Injector is consulted at every named injection point. Fire returns the
// fault to apply at this hit, or nil to proceed cleanly. Implementations
// must be safe for concurrent use; the production implementation (None)
// is allocation- and lock-free.
type Injector interface {
	Fire(point string) *Fault
}

// None is the production injector: it never injects.
var None Injector = noop{}

type noop struct{}

func (noop) Fire(string) *Fault { return nil }

// Or returns inj, or None when inj is nil, so call sites can hold a
// never-nil injector without branching.
func Or(inj Injector) Injector {
	if inj == nil {
		return None
	}
	return inj
}

// ErrInjected is the sentinel every injected error wraps; errors.Is lets
// the layers above distinguish scheduled chaos from organic failure.
var ErrInjected = errors.New("injected fault")

// Injected builds the typed error a site returns for an error-kind fault
// (or for a kind the site cannot express).
func Injected(point string, f *Fault) error {
	return fmt.Errorf("chaos: %s at %s: %w", f.Kind, point, ErrInjected)
}

// PanicValue is what KindPanic sites panic with, so containment layers can
// attribute a recovered panic to its injection point.
type PanicValue struct {
	Point string
}

// String renders the panic payload for recover logs.
func (p PanicValue) String() string {
	return fmt.Sprintf("chaos: injected panic at %s", p.Point)
}
