package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/resilience"
)

// TestNoneNeverInjects: the production injector is inert for every point.
func TestNoneNeverInjects(t *testing.T) {
	for _, point := range Points() {
		for i := 0; i < 100; i++ {
			if f := None.Fire(point); f != nil {
				t.Fatalf("None.Fire(%s) = %+v, want nil", point, f)
			}
		}
	}
	if Or(nil) != None {
		t.Fatal("Or(nil) != None")
	}
	if s := NewScheduled(&Schedule{}); Or(s) != s {
		t.Fatal("Or(inj) must pass a non-nil injector through")
	}
}

// TestKindStrings: every kind renders a stable label (metric cardinality
// depends on it).
func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindError: "error", KindTorn: "torn", KindLatency: "latency",
		KindPanic: "panic", KindCancel: "cancel",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), s)
		}
	}
	if Kind(99).String() != "kind(99)" {
		t.Errorf("unknown kind = %q", Kind(99).String())
	}
}

// TestInjectedErrorIsTyped: injected errors are matchable with errors.Is
// and name their point and kind.
func TestInjectedErrorIsTyped(t *testing.T) {
	err := Injected(PointRender, &Fault{Kind: KindError})
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("errors.Is(%v, ErrInjected) = false", err)
	}
	msg := err.Error()
	for _, want := range []string{PointRender, "error", "injected fault"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error %q missing %q", msg, want)
		}
	}
}

// TestScheduleDeterminism: the same (profile, seed) always generates a
// deeply equal schedule; different seeds diverge; different profile names
// diverge under the same seed.
func TestScheduleDeterminism(t *testing.T) {
	p := ServeProfile()
	a := p.Schedule(42)
	b := p.Schedule(42)
	if a.String() != b.String() {
		t.Fatalf("same seed diverged:\n  %s\n  %s", a, b)
	}
	if len(a.Triggers) != p.Faults {
		t.Fatalf("armed %d triggers, want %d", len(a.Triggers), p.Faults)
	}
	if c := p.Schedule(43); a.String() == c.String() {
		t.Fatal("seeds 42 and 43 generated identical schedules")
	}
	q := p
	q.Name = "serve2"
	if d := q.Schedule(42); a.FiredEqualIgnoringName(d) {
		t.Fatal("distinct profile names shared a fault stream under one seed")
	}
}

// FiredEqualIgnoringName compares trigger sequences without the profile
// label (test helper on Schedule).
func (s *Schedule) FiredEqualIgnoringName(o *Schedule) bool {
	if len(s.Triggers) != len(o.Triggers) {
		return false
	}
	for i := range s.Triggers {
		if s.Triggers[i] != o.Triggers[i] {
			return false
		}
	}
	return true
}

// TestScheduleBounds: ordinals stay within [1, Horizon], points and kinds
// within the declared sets, and no (point, hit) is armed twice.
func TestScheduleBounds(t *testing.T) {
	p := Profile{
		Name:    "bounds",
		Points:  []string{PointRequest, PointRender},
		Kinds:   []Kind{KindError, KindPanic},
		Faults:  12,
		Horizon: 8,
	}
	s := p.Schedule(7)
	seen := make(map[Trigger]bool)
	validPoint := map[string]bool{PointRequest: true, PointRender: true}
	validKind := map[Kind]bool{KindError: true, KindPanic: true}
	for _, tr := range s.Triggers {
		if tr.Hit < 1 || tr.Hit > p.Horizon {
			t.Errorf("trigger %v: hit outside [1, %d]", tr, p.Horizon)
		}
		if !validPoint[tr.Point] || !validKind[tr.Fault.Kind] {
			t.Errorf("trigger %v: outside declared point/kind sets", tr)
		}
		key := Trigger{Point: tr.Point, Hit: tr.Hit}
		if seen[key] {
			t.Errorf("(%s, %d) armed twice", tr.Point, tr.Hit)
		}
		seen[key] = true
	}
	// 12 requested but only 2*8=16 slots exist; the rejection budget may
	// stop short, but never over-arm.
	if len(s.Triggers) > 16 {
		t.Fatalf("armed %d triggers into 16 slots", len(s.Triggers))
	}
	// Degenerate profiles arm nothing instead of spinning.
	if got := (Profile{Name: "empty"}).Schedule(1); len(got.Triggers) != 0 {
		t.Fatalf("empty profile armed %d triggers", len(got.Triggers))
	}
}

// TestScheduledFiresOnArmedOrdinals: the injector fires exactly the armed
// (point, hit) pairs, counts hits per point, and logs fired events in
// order.
func TestScheduledFiresOnArmedOrdinals(t *testing.T) {
	sched := &Schedule{
		Seed:    1,
		Profile: "manual",
		Triggers: []Trigger{
			{Point: PointRequest, Hit: 2, Fault: Fault{Kind: KindError}},
			{Point: PointRender, Hit: 1, Fault: Fault{Kind: KindPanic}},
		},
	}
	inj := NewScheduled(sched)
	if f := inj.Fire(PointRequest); f != nil {
		t.Fatalf("request hit 1 fired %v, want nil", f)
	}
	if f := inj.Fire(PointRequest); f == nil || f.Kind != KindError {
		t.Fatalf("request hit 2 = %+v, want error fault", f)
	}
	if f := inj.Fire(PointRequest); f != nil {
		t.Fatalf("request hit 3 fired %v, want nil", f)
	}
	if f := inj.Fire(PointRender); f == nil || f.Kind != KindPanic {
		t.Fatalf("render hit 1 = %+v, want panic fault", f)
	}
	if got := inj.Hits(PointRequest); got != 3 {
		t.Fatalf("Hits(request) = %d, want 3", got)
	}
	if got := inj.FiredString(); got != "serve.request#2=error serve.render#1=panic" {
		t.Fatalf("fired log = %q", got)
	}
}

// TestScheduledReplay: two injectors armed from the same schedule, driven
// by the same Fire sequence, produce identical fired logs — the replay
// guarantee the serve chaos suite builds on.
func TestScheduledReplay(t *testing.T) {
	sched := ServeProfile().Schedule(99)
	drive := func(inj *Scheduled) string {
		for i := 0; i < 30; i++ {
			inj.Fire(PointRequest)
			if i%2 == 0 {
				inj.Fire(PointRender)
			}
			if i%5 == 0 {
				inj.Fire(PointMaterialize)
			}
			inj.Fire(PointClock)
		}
		return inj.FiredString()
	}
	a := drive(NewScheduled(sched))
	b := drive(NewScheduled(sched))
	if a != b {
		t.Fatalf("replay diverged:\n  %s\n  %s", a, b)
	}
	if a == "" {
		t.Fatal("schedule fired nothing over 30 rounds; horizon miscalibrated")
	}
}

// TestWrapClock: latency faults stretch the sleep on the inner (virtual)
// clock, error faults fail it typed, cancel faults return
// context.Canceled, and an unwrapped clock passes through.
func TestWrapClock(t *testing.T) {
	start := time.Unix(0, 0)
	inner := resilience.NewVirtualClock(start)
	sched := &Schedule{Triggers: []Trigger{
		{Point: PointClock, Hit: 1, Fault: Fault{Kind: KindLatency, Latency: 5 * time.Millisecond}},
		{Point: PointClock, Hit: 2, Fault: Fault{Kind: KindError}},
		{Point: PointClock, Hit: 3, Fault: Fault{Kind: KindCancel}},
	}}
	clock := WrapClock(inner, NewScheduled(sched))
	ctx := context.Background()

	if err := clock.Sleep(ctx, 10*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := inner.Elapsed(start); got != 15*time.Millisecond {
		t.Fatalf("latency spike elapsed %s, want 15ms", got)
	}
	if err := clock.Sleep(ctx, time.Millisecond); !errors.Is(err, ErrInjected) {
		t.Fatalf("error fault: err = %v, want ErrInjected", err)
	}
	if err := clock.Sleep(ctx, time.Millisecond); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancel fault: err = %v, want context.Canceled", err)
	}
	// Hit 4 is unarmed: the sleep proceeds normally.
	if err := clock.Sleep(ctx, time.Millisecond); err != nil {
		t.Fatalf("unarmed sleep failed: %v", err)
	}
	if clock.Now() != inner.Now() {
		t.Fatal("Now must pass through to the inner clock")
	}
	if got := WrapClock(inner, nil); got != inner {
		t.Fatal("WrapClock(inner, nil) must return inner unchanged")
	}
	if got := WrapClock(inner, None); got != inner {
		t.Fatal("WrapClock(inner, None) must return inner unchanged")
	}
}

// TestStockProfilesGenerate: every stock profile arms its declared fault
// count deterministically.
func TestStockProfilesGenerate(t *testing.T) {
	for _, p := range []Profile{ServeProfile(), SnapProfile(), IngestProfile()} {
		s := p.Schedule(2021)
		if len(s.Triggers) != p.Faults {
			t.Errorf("profile %s armed %d, want %d", p.Name, len(s.Triggers), p.Faults)
		}
		if s.String() != p.Schedule(2021).String() {
			t.Errorf("profile %s not deterministic", p.Name)
		}
	}
}
