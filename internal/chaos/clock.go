package chaos

import (
	"context"
	"time"

	"repro/internal/resilience"
)

// Clock wraps a resilience.Clock with the clock.advance injection point:
// every Sleep consults the injector first, so a schedule can stretch a
// wait (latency spike), fail it (error), or cancel it outright. Now is
// passed through untouched — chaos perturbs how long things take, never
// what time it is, so latency metrics stay attributable.
type Clock struct {
	Inner resilience.Clock
	Inj   Injector
}

// WrapClock returns inner with inj consulted on every Sleep; a nil inj
// returns inner unchanged (no wrapper cost in production).
func WrapClock(inner resilience.Clock, inj Injector) resilience.Clock {
	if inj == nil || inj == None {
		return inner
	}
	return Clock{Inner: inner, Inj: inj}
}

// Now returns the inner clock's time.
func (c Clock) Now() time.Time { return c.Inner.Now() }

// Sleep applies any armed clock.advance fault, then sleeps on the inner
// clock: latency faults stretch the wait, error faults fail it, cancel
// faults return context.Canceled, and panic faults panic (contained by
// the caller's recovery layer).
func (c Clock) Sleep(ctx context.Context, d time.Duration) error {
	if f := c.Inj.Fire(PointClock); f != nil {
		switch f.Kind {
		case KindLatency:
			d += f.Latency
		case KindCancel:
			return context.Canceled
		case KindPanic:
			panic(PanicValue{Point: PointClock})
		default:
			return Injected(PointClock, f)
		}
	}
	return c.Inner.Sleep(ctx, d)
}
