package chaos

import (
	"fmt"
	"hash/fnv"
	"math/rand/v2"
	"sort"
	"strings"
	"sync"
	"time"
)

// Trigger arms one fault: the Hit'th Fire of Point (1-based, counted per
// point) returns Fault instead of nil.
type Trigger struct {
	Point string
	Hit   int
	Fault Fault
}

// Schedule is a replayable fault plan: the seed and profile that generated
// it plus the armed triggers, sorted by (point, hit). Two schedules built
// from the same seed and profile are deeply equal, which is the whole
// determinism story — a failing chaos run is reproduced by its seed, not
// by a core dump.
type Schedule struct {
	Seed     uint64
	Profile  string
	Triggers []Trigger
}

// String renders the plan compactly for logs and failure messages, e.g.
// "chaos[flaky-serve seed=7]: serve.render#3=error serve.request#1=panic".
func (s *Schedule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos[%s seed=%d]:", s.Profile, s.Seed)
	for _, t := range s.Triggers {
		fmt.Fprintf(&b, " %s#%d=%s", t.Point, t.Hit, t.Fault.Kind)
	}
	return b.String()
}

// Profile declares the fault mix schedules are drawn from: which points
// may fire, which kinds they draw, how many triggers to arm, and the hit
// horizon the ordinals are drawn over. The same profile and seed always
// generate the same schedule.
type Profile struct {
	Name string
	// Points are the candidate injection points, in a fixed order (the
	// order is part of the deterministic draw).
	Points []string
	// Kinds are the candidate fault kinds, in a fixed order.
	Kinds []Kind
	// Faults is how many distinct (point, hit) triggers to arm.
	Faults int
	// Horizon bounds the hit ordinals: each trigger arms a hit in
	// [1, Horizon]. Runs that never reach an armed ordinal simply do not
	// fire it — the schedule records intent, the injector records fact.
	Horizon int
	// Latency is the stall magnitude KindLatency triggers carry.
	Latency time.Duration
	// TornBytes is the truncation magnitude KindTorn triggers carry.
	TornBytes int
}

// Schedule deterministically generates the fault plan for seed: the same
// (profile, seed) pair always yields an identical schedule. Draws come
// from a PCG stream keyed by the seed and the profile name, so two
// profiles never share a fault sequence even under the same seed.
func (p Profile) Schedule(seed uint64) *Schedule {
	h := fnv.New64a()
	h.Write([]byte(p.Name)) //whpcvet:ignore errcheck hash.Hash.Write never returns an error (hash package contract)
	rng := rand.New(rand.NewPCG(seed, h.Sum64()))

	horizon := p.Horizon
	if horizon < 1 {
		horizon = 1
	}
	armed := make(map[string]bool, p.Faults) // "point#hit" membership, never iterated
	sched := &Schedule{Seed: seed, Profile: p.Name}
	if len(p.Points) == 0 || len(p.Kinds) == 0 {
		return sched
	}
	// Cap the draw loop: with Faults close to len(Points)*Horizon the
	// rejection sampling could spin, so give up after a generous budget
	// and return the triggers armed so far (still deterministic).
	for tries := 0; len(sched.Triggers) < p.Faults && tries < p.Faults*64; tries++ {
		point := p.Points[rng.IntN(len(p.Points))]
		hit := 1 + rng.IntN(horizon)
		key := fmt.Sprintf("%s#%d", point, hit)
		if armed[key] {
			continue
		}
		armed[key] = true
		kind := p.Kinds[rng.IntN(len(p.Kinds))]
		sched.Triggers = append(sched.Triggers, Trigger{
			Point: point,
			Hit:   hit,
			Fault: Fault{Kind: kind, Latency: p.Latency, TornBytes: p.TornBytes},
		})
	}
	sort.Slice(sched.Triggers, func(i, j int) bool {
		if sched.Triggers[i].Point != sched.Triggers[j].Point {
			return sched.Triggers[i].Point < sched.Triggers[j].Point
		}
		return sched.Triggers[i].Hit < sched.Triggers[j].Hit
	})
	return sched
}

// Event records one fired fault: the point, the per-point hit ordinal it
// fired on, and the kind. Given the same schedule and the same sequence
// of Fire calls, the fired-event log is identical run to run.
type Event struct {
	Point string
	Hit   int
	Kind  Kind
}

// String renders "serve.render#3=error".
func (e Event) String() string {
	return fmt.Sprintf("%s#%d=%s", e.Point, e.Hit, e.Kind)
}

// Scheduled is the schedule-driven Injector: it counts hits per point and
// fires a trigger when its armed ordinal comes up. It is safe for
// concurrent use; determinism of the fired sequence additionally requires
// the Fire call sequence itself to be deterministic (sequential request
// streams in the chaos suite, Workers=1 harvests).
type Scheduled struct {
	mu    sync.Mutex
	hits  map[string]int
	armed map[string]map[int]*Fault
	fired []Event
}

// NewScheduled arms a fresh injector from the schedule.
func NewScheduled(s *Schedule) *Scheduled {
	inj := &Scheduled{
		hits:  make(map[string]int),
		armed: make(map[string]map[int]*Fault),
	}
	for i := range s.Triggers {
		t := s.Triggers[i]
		byHit := inj.armed[t.Point]
		if byHit == nil {
			byHit = make(map[int]*Fault)
			inj.armed[t.Point] = byHit
		}
		f := t.Fault
		byHit[t.Hit] = &f
	}
	return inj
}

// Fire implements Injector: the nth call for a point returns the fault
// armed at ordinal n, or nil.
func (s *Scheduled) Fire(point string) *Fault {
	s.mu.Lock()
	s.hits[point]++
	n := s.hits[point]
	f := s.armed[point][n]
	if f != nil {
		s.fired = append(s.fired, Event{Point: point, Hit: n, Kind: f.Kind})
	}
	s.mu.Unlock()
	return f
}

// Hits returns how many times point has fired (armed or not).
func (s *Scheduled) Hits(point string) int {
	s.mu.Lock()
	n := s.hits[point]
	s.mu.Unlock()
	return n
}

// Fired returns the fired-event log in fire order.
func (s *Scheduled) Fired() []Event {
	s.mu.Lock()
	out := append([]Event(nil), s.fired...)
	s.mu.Unlock()
	return out
}

// FiredString renders the fired log as one space-joined line, the compact
// form replay assertions compare.
func (s *Scheduled) FiredString() string {
	events := s.Fired()
	parts := make([]string, len(events))
	for i, e := range events {
		parts[i] = e.String()
	}
	return strings.Join(parts, " ")
}

// --- stock profiles ----------------------------------------------------

// ServeProfile targets the request-serving layer: request handling,
// exhibit renders, study materializations, and clock advances, with every
// kind the serve sites can express. Horizon is sized for a few dozen
// requests.
func ServeProfile() Profile {
	return Profile{
		Name:      "serve",
		Points:    []string{PointRequest, PointRender, PointMaterialize, PointClock},
		Kinds:     []Kind{KindError, KindLatency, KindPanic, KindCancel},
		Faults:    10,
		Horizon:   24,
		Latency:   time.Millisecond,
		TornBytes: 64,
	}
}

// SnapProfile targets the snapshot warm-boot path: file reads (errors and
// torn reads) and section decodes. Horizon is small — a boot touches the
// file a handful of times.
func SnapProfile() Profile {
	return Profile{
		Name:      "snap",
		Points:    []string{PointSnapRead, PointSnapDecode},
		Kinds:     []Kind{KindError, KindTorn},
		Faults:    4,
		Horizon:   6,
		TornBytes: 128,
	}
}

// ShardProfile targets the federation coordinator: shard subquery
// attempts (errors, latency, panics and cancels all exercise the
// retry-on-replica path) and the pre-merge barrier.
func ShardProfile() Profile {
	return Profile{
		Name:    "shard",
		Points:  []string{PointScatter, PointMerge},
		Kinds:   []Kind{KindError, KindLatency, KindPanic, KindCancel},
		Faults:  8,
		Horizon: 32,
		Latency: time.Millisecond,
	}
}

// IngestProfile targets the harvest worker chain's lookup point.
func IngestProfile() Profile {
	return Profile{
		Name:    "ingest",
		Points:  []string{PointIngestLookup, PointClock},
		Kinds:   []Kind{KindError, KindLatency},
		Faults:  8,
		Horizon: 64,
		Latency: time.Millisecond,
	}
}
