// Package cite synthesizes and analyzes a gendered citation-flow graph
// over the corpus, in the style of Nakajima et al.'s "Systemic Gendered
// Citation Imbalance in Computer Science": a directed paper→paper edge
// set with calibrated imbalance (citing-team gender composition × cited-
// lead gender), paired with a random-draw null model that records, for
// every realized edge, the paper a citation-blind author would have
// drawn from the same candidate pool.
//
// Synthesis is a pure function of the corpus: every paper owns an RNG
// stream seeded from its own ID, candidate pools contain only papers of
// the same conference or of strictly earlier years, and all sampling
// arithmetic is integer-only. Appending a newest-year conference
// therefore never perturbs existing papers' edges, which is what lets
// delta application grow the graph in O(new edges) and still match a
// full resynthesis byte-for-byte.
package cite

import (
	"fmt"
	"hash/fnv"

	"repro/internal/dataset"
	"repro/internal/gender"
)

// Team categories for a citing author list, derived from the known-gender
// authors only (the paper's convention for ratio analyses). The order
// here is canonical: frames, exhibits, and reports all present teams in
// this order.
const (
	TeamAllMen   = "all_men"
	TeamAllWomen = "all_women"
	TeamMixed    = "mixed"
	TeamUnknown  = "unknown"
)

// TeamCategories returns the citing-team categories in canonical order.
func TeamCategories() []string {
	return []string{TeamAllMen, TeamAllWomen, TeamMixed, TeamUnknown}
}

// Edge is one directed citation. Indexes refer to the corpus paper order
// (dataset.Dataset.Papers), which is conference-contiguous and stable
// under year-delta appends.
type Edge struct {
	// Src cites Dst.
	Src, Dst int32
	// Null is the paired null-model draw: a uniform pick from Src's
	// candidate pool, made with the same RNG stream immediately after
	// Dst. Comparing Dst statistics against Null statistics measures
	// over/under-citation free of pool-composition effects.
	Null int32
}

// Graph is the synthesized citation graph of one corpus.
type Graph struct {
	// Papers is the corpus paper count the edge indexes refer to.
	Papers int
	// Edges holds all citations, grouped by source paper in corpus
	// order, draws within a paper in selection order.
	Edges []Edge
}

// Meta carries the per-paper derived attributes that graph synthesis and
// frame emission share, indexed in corpus paper order.
type Meta struct {
	// Team is the citing-team gender category of each paper's author list.
	Team []string
	// Lead is each paper's lead-author gender (Unknown when the author
	// list is empty or the lead is not in the corpus).
	Lead []gender.Gender
	// Year is each paper's conference year.
	Year []int
	// Country is each paper's lead-author country code ("" when unknown).
	Country []string
}

// NewMeta derives the shared per-paper attributes from the corpus.
func NewMeta(d *dataset.Dataset) *Meta {
	n := len(d.Papers)
	m := &Meta{
		Team:    make([]string, n),
		Lead:    make([]gender.Gender, n),
		Year:    make([]int, n),
		Country: make([]string, n),
	}
	for i, p := range d.Papers {
		m.Team[i] = TeamOf(d, p)
		if lead, ok := d.Person(p.Lead()); ok {
			m.Lead[i] = lead.Gender
			m.Country[i] = lead.CountryCode
		}
		if c, ok := d.Conference(p.Conf); ok {
			m.Year[i] = c.Year
		}
	}
	return m
}

// TeamOf categorizes a paper's author list by the genders that are known:
// no known genders → TeamUnknown, all known female → TeamAllWomen, all
// known male → TeamAllMen, otherwise TeamMixed.
func TeamOf(d *dataset.Dataset, p *dataset.Paper) string {
	var f, m int
	for _, id := range p.Authors {
		a, ok := d.Person(id)
		if !ok {
			continue
		}
		switch a.Gender {
		case gender.Female:
			f++
		case gender.Male:
			m++
		}
	}
	switch {
	case f == 0 && m == 0:
		return TeamUnknown
	case m == 0:
		return TeamAllWomen
	case f == 0:
		return TeamAllMen
	default:
		return TeamMixed
	}
}

// Calibrated citation propensity weights (integer, base 100): the
// relative chance a citing team of the row's composition picks a
// candidate with the column's lead gender, calibrated to the direction
// and rough magnitude Nakajima et al. report (men-led teams under-cite
// women-led work; women-led teams over-cite it; mixed teams sit in
// between). Unknown team or unknown cited lead stays at base.
const (
	weightBase = 100

	weightAllMenFemale   = 72
	weightAllMenMale     = 104
	weightAllWomenFemale = 140
	weightAllWomenMale   = 96
	weightMixedFemale    = 112
	weightMixedMale      = 100
)

// citeWeight returns the integer propensity weight for a citing team
// category picking a candidate whose lead has gender g.
func citeWeight(team string, g gender.Gender) int {
	if !g.Known() {
		return weightBase
	}
	female := g == gender.Female
	switch team {
	case TeamAllMen:
		if female {
			return weightAllMenFemale
		}
		return weightAllMenMale
	case TeamAllWomen:
		if female {
			return weightAllWomenFemale
		}
		return weightAllWomenMale
	case TeamMixed:
		if female {
			return weightMixedFemale
		}
		return weightMixedMale
	default:
		return weightBase
	}
}

// Out-degree bounds: each paper cites between minOutDegree and
// maxOutDegree in-corpus papers, capped by its candidate pool size.
const (
	minOutDegree = 2
	maxOutDegree = 6
)

// graphSeed decorrelates the per-paper RNG streams from any other use of
// FNV-hashed paper IDs in the codebase.
const graphSeed = 0xc17e5eed00000001

// rng is a splitmix64 stream; one instance per source paper, seeded from
// the paper's ID, so a paper's draws are independent of corpus size and
// of every other paper.
type rng struct{ state uint64 }

func newPaperRNG(id dataset.PaperID) *rng {
	h := fnv.New64a()
	h.Write([]byte(id)) //whpcvet:ignore errcheck — hash.Hash Write never fails
	return &rng{state: h.Sum64() ^ graphSeed}
}

// next advances the splitmix64 stream.
//
//whpcvet:hot
func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn draws a value in [0, n) by modulo reduction. The tiny modulo bias
// is irrelevant here — the draw only has to be deterministic, not
// statistically perfect.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}

// Synthesize builds the full citation graph of the corpus. The result is
// a pure function of the corpus content: same dataset, same graph,
// byte-for-byte.
func Synthesize(d *dataset.Dataset) *Graph {
	m := NewMeta(d)
	g := &Graph{Papers: len(d.Papers)}
	// Scratch buffers reused across source papers.
	cand := make([]int32, 0, len(d.Papers))
	weights := make([]int, 0, len(d.Papers))
	for i := range d.Papers {
		g.Edges = appendPaperEdges(d, m, int32(i), g.Edges, &cand, &weights)
	}
	return g
}

// ConferenceEdges synthesizes only the edges whose source papers belong
// to the given conference, against candidate pools drawn from the whole
// corpus. When the conference is the newest year in the corpus (the
// year-delta precondition), appending its papers and then calling this
// equals the tail of a full Synthesize.
func ConferenceEdges(d *dataset.Dataset, confID dataset.ConfID) []Edge {
	m := NewMeta(d)
	var edges []Edge
	cand := make([]int32, 0, len(d.Papers))
	weights := make([]int, 0, len(d.Papers))
	for i, p := range d.Papers {
		if p.Conf != confID {
			continue
		}
		edges = appendPaperEdges(d, m, int32(i), edges, &cand, &weights)
	}
	return edges
}

// appendPaperEdges draws source paper src's citations and paired null
// picks, appending them to dst. Candidate pools admit same-conference
// papers and papers from strictly earlier years — a paper can only cite
// work already published when its own proceedings close.
//
//whpcvet:hot
func appendPaperEdges(d *dataset.Dataset, m *Meta, src int32, dst []Edge, candBuf *[]int32, weightBuf *[]int) []Edge {
	p := d.Papers[src]
	cand := (*candBuf)[:0]
	weights := (*weightBuf)[:0]
	team := m.Team[src]
	year := m.Year[src]
	total := 0
	for j := range d.Papers {
		if int32(j) == src {
			continue
		}
		if d.Papers[j].Conf != p.Conf && m.Year[j] >= year {
			continue
		}
		w := citeWeight(team, m.Lead[j])
		cand = append(cand, int32(j))
		weights = append(weights, w)
		total += w
	}
	*candBuf, *weightBuf = cand, weights
	if len(cand) == 0 {
		return dst
	}
	r := newPaperRNG(p.ID)
	k := minOutDegree + r.intn(maxOutDegree-minOutDegree+1)
	if k > len(cand) {
		k = len(cand)
	}
	for e := 0; e < k && total > 0; e++ {
		// Weighted draw without replacement: walk the cumulative weights
		// to the drawn offset, then zero the winner out of the pool.
		draw := r.intn(total)
		pick := -1
		acc := 0
		for c, w := range weights {
			acc += w
			if draw < acc {
				pick = c
				break
			}
		}
		total -= weights[pick]
		weights[pick] = 0
		// Paired null draw: uniform over the full pool, with replacement,
		// blind to genders and to the biased pick.
		null := cand[r.intn(len(cand))]
		dst = append(dst, Edge{Src: src, Dst: cand[pick], Null: null})
	}
	return dst
}

// Validate checks the structural invariants the snapshot decoder and the
// frame builder rely on: in-range indexes, no self-citations, and
// sources grouped in non-decreasing corpus order.
func (g *Graph) Validate() error {
	prev := int32(0)
	for i, e := range g.Edges {
		if e.Src < 0 || int(e.Src) >= g.Papers ||
			e.Dst < 0 || int(e.Dst) >= g.Papers ||
			e.Null < 0 || int(e.Null) >= g.Papers {
			return fmt.Errorf("cite: edge %d indexes out of range [0,%d)", i, g.Papers)
		}
		if e.Src == e.Dst {
			return fmt.Errorf("cite: edge %d is a self-citation (paper %d)", i, e.Src)
		}
		if e.Src < prev {
			return fmt.Errorf("cite: edge %d source %d out of order after %d", i, e.Src, prev)
		}
		prev = e.Src
	}
	return nil
}
