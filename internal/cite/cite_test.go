package cite

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/synth"
)

var testData = func() *dataset.Dataset {
	corpus, err := synth.Generate(synth.Default2017(2021))
	if err != nil {
		panic(err)
	}
	return corpus.Data
}()

func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(testData)
	b := Synthesize(testData)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two syntheses of the same corpus differ")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("synthesized graph fails validation: %v", err)
	}
	if len(a.Edges) == 0 {
		t.Fatal("synthesized graph has no edges")
	}
}

func TestEdgesRespectPublicationOrder(t *testing.T) {
	g := Synthesize(testData)
	m := NewMeta(testData)
	perPaper := make(map[int32]int)
	for _, e := range g.Edges {
		perPaper[e.Src]++
		for _, target := range []int32{e.Dst, e.Null} {
			src, dst := testData.Papers[e.Src], testData.Papers[target]
			if src.Conf != dst.Conf && m.Year[target] >= m.Year[e.Src] {
				t.Fatalf("edge %d→%d crosses to %s (%d) from %s (%d): not already published",
					e.Src, target, dst.Conf, m.Year[target], src.Conf, m.Year[e.Src])
			}
		}
	}
	for src, n := range perPaper {
		if n > maxOutDegree {
			t.Fatalf("paper %d has out-degree %d > %d", src, n, maxOutDegree)
		}
	}
}

// TestConferenceEdgesMatchFullSynthesis is the delta guarantee at the
// graph level: synthesizing the grown corpus equals synthesizing the base
// and appending the new conference's edges.
func TestConferenceEdgesMatchFullSynthesis(t *testing.T) {
	cfg := synth.Default2017(2021)
	spec, err := synth.YearSpec(cfg, "SC", 2018)
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := synth.GenerateYearDelta(cfg, spec)
	if err != nil {
		t.Fatal(err)
	}
	base := Synthesize(testData)
	grown := Synthesize(full.Data)
	tail := ConferenceEdges(full.Data, spec.ID)

	want := append(append([]Edge(nil), base.Edges...), tail...)
	if !reflect.DeepEqual(grown.Edges, want) {
		t.Fatalf("grown synthesis (%d edges) != base (%d) + conference tail (%d)",
			len(grown.Edges), len(base.Edges), len(tail))
	}
	if grown.Papers != len(full.Data.Papers) {
		t.Fatalf("grown paper count %d != corpus %d", grown.Papers, len(full.Data.Papers))
	}
}

// naiveAnalyze recomputes the imbalance ratios with plain maps and loops,
// independent of Analyze's single-pass accumulation — the reference the
// acceptance criteria require.
func naiveAnalyze(d *dataset.Dataset, g *Graph) map[string][4]int {
	// team → {observed female-led, observed known-led, null female-led, null known-led}
	counts := make(map[string][4]int)
	leadOf := func(i int32) gender.Gender {
		p, ok := d.Person(d.Papers[i].Lead())
		if !ok {
			return gender.Unknown
		}
		return p.Gender
	}
	for _, e := range g.Edges {
		team := TeamOf(d, d.Papers[e.Src])
		for _, key := range []string{team, "ALL"} {
			c := counts[key]
			if lg := leadOf(e.Dst); lg.Known() {
				c[1]++
				if lg == gender.Female {
					c[0]++
				}
			}
			if lg := leadOf(e.Null); lg.Known() {
				c[3]++
				if lg == gender.Female {
					c[2]++
				}
			}
			counts[key] = c
		}
	}
	return counts
}

func TestAnalyzeMatchesNaiveReference(t *testing.T) {
	g := Synthesize(testData)
	a, err := Analyze(testData, g)
	if err != nil {
		t.Fatal(err)
	}
	ref := naiveAnalyze(testData, g)
	check := func(f Flow) {
		t.Helper()
		c := ref[f.Team]
		if f.Observed.K != c[0] || f.Observed.N != c[1] || f.Null.K != c[2] || f.Null.N != c[3] {
			t.Errorf("%s: analyze {obs %d/%d null %d/%d} != naive {obs %d/%d null %d/%d}",
				f.Team, f.Observed.K, f.Observed.N, f.Null.K, f.Null.N, c[0], c[1], c[2], c[3])
		}
		// The ratio must equal the naive quotient exactly — same integer
		// inputs, same float64 division.
		wantRatio := (float64(c[0]) / float64(c[1])) / (float64(c[2]) / float64(c[3]))
		if got := f.OverCitation(); got != wantRatio && !(math.IsNaN(got) && math.IsNaN(wantRatio)) {
			t.Errorf("%s: over-citation %v != naive %v", f.Team, got, wantRatio)
		}
	}
	if len(a.Flows) != len(TeamCategories()) {
		t.Fatalf("got %d flows, want %d", len(a.Flows), len(TeamCategories()))
	}
	for i, f := range a.Flows {
		if f.Team != TeamCategories()[i] {
			t.Fatalf("flow %d is %q, want %q", i, f.Team, TeamCategories()[i])
		}
		check(f)
	}
	check(a.Overall)
}

func TestCalibratedImbalanceDirection(t *testing.T) {
	g := Synthesize(testData)
	a, err := Analyze(testData, g)
	if err != nil {
		t.Fatal(err)
	}
	flows := make(map[string]Flow, len(a.Flows))
	for _, f := range a.Flows {
		flows[f.Team] = f
	}
	men, women := flows[TeamAllMen].OverCitation(), flows[TeamAllWomen].OverCitation()
	if math.IsNaN(men) || math.IsNaN(women) {
		t.Fatalf("undefined over-citation ratios: all_men=%v all_women=%v", men, women)
	}
	// The calibration points the same way Nakajima et al. report: all-men
	// teams under-cite women-led work relative to all-women teams.
	if men >= women {
		t.Errorf("all_men over-citation %.4f >= all_women %.4f; calibration lost", men, women)
	}
}

func TestDirectedMixingMatchesHandFormula(t *testing.T) {
	g := Synthesize(testData)
	a, err := Analyze(testData, g)
	if err != nil {
		t.Fatal(err)
	}
	m := a.Mixing
	if m.TotalEdges() == 0 {
		t.Fatal("no gendered directed edges")
	}
	t1 := float64(m.TotalEdges())
	aF := (float64(m.FF) + float64(m.FM)) / t1
	bF := (float64(m.FF) + float64(m.MF)) / t1
	aM, bM := 1-aF, 1-bF
	want := ((float64(m.FF)+float64(m.MM))/t1 - (aF*bF + aM*bM)) / (1 - (aF*bF + aM*bM))
	if math.Abs(m.Assortativity-want) > 1e-12 {
		t.Errorf("assortativity %v != hand formula %v", m.Assortativity, want)
	}
}

func TestValidateRejectsCorruptGraphs(t *testing.T) {
	base := Synthesize(testData)
	for name, mutate := range map[string]func(*Graph){
		"out of range dst": func(g *Graph) { g.Edges[0].Dst = int32(g.Papers) },
		"negative src":     func(g *Graph) { g.Edges[0].Src = -1 },
		"self citation":    func(g *Graph) { g.Edges[0].Dst = g.Edges[0].Src },
		"unsorted sources": func(g *Graph) { g.Edges[0], g.Edges[len(g.Edges)-1] = g.Edges[len(g.Edges)-1], g.Edges[0] },
	} {
		g := &Graph{Papers: base.Papers, Edges: append([]Edge(nil), base.Edges...)}
		mutate(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: validation passed", name)
		}
	}
}
