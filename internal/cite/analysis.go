package cite

import (
	"fmt"
	"math"

	"repro/internal/collab"
	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/stats"
)

// Flow is the observed-versus-null citation flow of one citing-team
// slice, the unit of the Nakajima-style imbalance comparison.
type Flow struct {
	// Team is the citing-team category (TeamCategories order), or "ALL"
	// for the pooled overall row.
	Team string
	// Edges is the total citation count from this team category.
	Edges int
	// Observed counts female-led citations among citations to known-
	// gender-led papers: K = cited papers with a female lead, N = cited
	// papers with a known-gender lead.
	Observed stats.Proportion
	// Null is the same proportion over the paired null-model draws —
	// what a citation-blind picker would have produced from the same
	// candidate pools.
	Null stats.Proportion
}

// OverCitation is the over/under-citation ratio: observed female-led
// share divided by the null share. Above 1 the team over-cites women-led
// work relative to chance; below 1 it under-cites. NaN when either share
// is undefined or the null share is zero.
func (f Flow) OverCitation() float64 {
	obs, null := f.Observed.Ratio(), f.Null.Ratio()
	if math.IsNaN(obs) || math.IsNaN(null) || null == 0 {
		return math.NaN()
	}
	return obs / null
}

// Analysis is the full gendered citation-flow picture of one corpus.
type Analysis struct {
	// Flows holds one row per citing-team category, in TeamCategories
	// order (zero-valued rows for categories with no edges).
	Flows []Flow
	// Overall pools every edge regardless of citing team.
	Overall Flow
	// Mixing is the directed gender mixing of (citing lead → cited lead)
	// pairs, with Newman assortativity — the homophily view of the same
	// graph.
	Mixing collab.DirectedMixing
}

// Analyze computes observed and null citation flows per citing-team
// category, the pooled overall flow, and directed lead-gender mixing.
// The arithmetic is integer counting plus stats.Proportion, so the same
// graph always yields the identical analysis.
func Analyze(d *dataset.Dataset, g *Graph) (Analysis, error) {
	if g == nil {
		return Analysis{}, fmt.Errorf("cite: nil graph")
	}
	if g.Papers != len(d.Papers) {
		return Analysis{}, fmt.Errorf("cite: graph covers %d papers, corpus has %d", g.Papers, len(d.Papers))
	}
	m := NewMeta(d)
	byTeam := make(map[string]*Flow, 4)
	var a Analysis
	a.Flows = make([]Flow, 0, 4)
	for _, team := range TeamCategories() {
		a.Flows = append(a.Flows, Flow{Team: team})
		byTeam[team] = &a.Flows[len(a.Flows)-1]
	}
	a.Overall.Team = "ALL"
	var ff, fm, mf, mm int
	for _, e := range g.Edges {
		f := byTeam[m.Team[e.Src]]
		for _, flow := range []*Flow{f, &a.Overall} {
			flow.Edges++
			tally(&flow.Observed, m.Lead[e.Dst])
			tally(&flow.Null, m.Lead[e.Null])
		}
		if src, dst := m.Lead[e.Src], m.Lead[e.Dst]; src.Known() && dst.Known() {
			switch {
			case src == gender.Female && dst == gender.Female:
				ff++
			case src == gender.Female:
				fm++
			case dst == gender.Female:
				mf++
			default:
				mm++
			}
		}
	}
	if a.Overall.Edges == 0 {
		return a, fmt.Errorf("cite: graph has no edges")
	}
	mix, err := collab.DirectedMixingAnalysis(ff, fm, mf, mm)
	if err != nil {
		return a, fmt.Errorf("cite: %w", err)
	}
	a.Mixing = mix
	return a, nil
}

// tally folds one cited (or null-drawn) lead gender into a proportion:
// unknown leads are excluded from both numerator and denominator.
func tally(p *stats.Proportion, g gender.Gender) {
	if !g.Known() {
		return
	}
	p.N++
	if g == gender.Female {
		p.K++
	}
}
