package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ingest"
)

// Harvest renders the resilient-ingestion report: per-outcome counts, the
// fault and retry totals, and the breaker history of the run.
func Harvest(w io.Writer, rep *ingest.HarvestReport) error {
	if rep == nil {
		return fmt.Errorf("report: nil harvest report")
	}
	fmt.Fprintf(w, "Fault profile %q, seed %d, %d workers, virtual elapsed %s\n",
		rep.Profile, rep.Seed, rep.Workers, rep.VirtualElapsed)
	t := NewTable("Outcome", "Researchers", "Share").AlignRight(1, 2)
	pct := func(n int) string {
		if rep.Total == 0 {
			return "-"
		}
		return fmt.Sprintf("%.2f%%", 100*float64(n)/float64(rep.Total))
	}
	t.MustAddRow("linked (Google Scholar)", fmt.Sprint(rep.LinkedGS), pct(rep.LinkedGS))
	t.MustAddRow("degraded to S2 fallback", fmt.Sprint(rep.FallbackS2), pct(rep.FallbackS2))
	t.MustAddRow("S2 only (no GS profile)", fmt.Sprint(rep.S2Only), pct(rep.S2Only))
	t.MustAddRow("abandoned", fmt.Sprint(rep.Abandoned), pct(rep.Abandoned))
	t.MustAddRow("total", fmt.Sprint(rep.Total), pct(rep.Total))
	if err := t.RenderTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Effective linkage %.2f%% (GS coverage %.2f%%; paper: 68.3%% GS, 100%% S2)\n",
		100*rep.EffectiveLinkage(), 100*rep.GSCoverage())
	fmt.Fprintf(w, "Faults absorbed: %d retries, %d transient, %d timeout, %d rate-limited, %d not-found\n",
		rep.Retries, rep.Transients, rep.Timeouts, rep.RateLimited, rep.NotFound)
	fmt.Fprintf(w, "Circuit breaker: %d trips, %d recoveries, %d calls shed\n",
		rep.BreakerTrips, rep.BreakerRecoveries, rep.Shed)
	return nil
}

// CoverageSensitivity renders the degraded-coverage sensitivity analysis:
// the paper's directional observations on pristine vs harvested data, and
// the exhibits that ran on partial data.
func CoverageSensitivity(w io.Writer, baseline, degraded *dataset.Dataset, scID dataset.ConfID) error {
	cs, err := core.CoverageSensitivityAnalysis(baseline, degraded, scID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "GS coverage: baseline %.2f%% -> achieved %.2f%%; S2 coverage: %.2f%% -> %.2f%%\n",
		100*cs.BaselineCoverage, 100*cs.AchievedCoverage, 100*cs.BaselineS2, 100*cs.AchievedS2)
	fmt.Fprintf(w, "Headline FAR: baseline %.4f -> degraded %.4f\n", cs.BaselineFAR, cs.DegradedFAR)
	t := NewTable("Observation", "Baseline", "Degraded").AlignRight(1, 2)
	cell := func(o core.Observation) string {
		sig := ""
		if o.Significant {
			sig = "*"
		}
		return fmt.Sprintf("%+.4f (p=%.3g)%s", o.Effect, o.P, sig)
	}
	for i, obs := range cs.Baseline {
		if err := t.AddRow(obs.Name, cell(obs), cell(cs.Degraded[i])); err != nil {
			return err
		}
	}
	if err := t.RenderTo(w); err != nil {
		return err
	}
	if cs.Stable {
		fmt.Fprintln(w, "No observation changed direction or significance under the achieved coverage.")
	} else {
		fmt.Fprintf(w, "Observations that flipped under degraded coverage: %v\n", cs.Flips)
	}
	if len(cs.PartialExhibits) == 0 {
		fmt.Fprintln(w, "All exhibits ran on full data.")
		return nil
	}
	fmt.Fprintln(w, "Exhibits computed on PARTIAL data:")
	for _, e := range cs.PartialExhibits {
		fmt.Fprintf(w, "  - %s\n", e)
	}
	return nil
}
