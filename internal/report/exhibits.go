package report

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"repro/internal/affil"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Table1 renders the paper's Table 1: the conference list with dates,
// paper/author counts, acceptance rates and host countries.
func Table1(w io.Writer, d *dataset.Dataset) error {
	t := NewTable("Conference", "Date", "Papers", "Authors", "Acceptance", "Country").
		AlignRight(2, 3, 4)
	for _, c := range d.Conferences {
		if err := t.AddRow(
			c.Name,
			c.Date.Format("2006-01-02"),
			strconv.Itoa(len(d.PapersOf(c.ID))),
			strconv.Itoa(len(d.AuthorSlots(c.ID))),
			fmt.Sprintf("%.3f", c.AcceptanceRate),
			c.CountryCode,
		); err != nil {
			return err
		}
	}
	return t.RenderTo(w)
}

// Fig1 renders the representation of women across conference roles as one
// bar chart per role, plus the first/last author panels and a compact
// conference x role matrix.
func Fig1(w io.Writer, d *dataset.Dataset) error {
	tab := core.RoleRepresentation(d)
	for _, role := range dataset.Roles() {
		chart := NewBarChart(fmt.Sprintf("Fig 1 — %% women among %ss", role))
		for _, cell := range tab.Cells {
			if cell.Role != role {
				continue
			}
			chart.Add(cell.Name, cell.Ratio.Ratio(), cell.Ratio.String())
		}
		overall := tab.Overall[role]
		chart.Add("ALL", overall.Ratio(), overall.String())
		if err := chart.RenderTo(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	for _, panel := range []struct {
		title   string
		pick    func(core.PositionCell) stats.Proportion
		overall stats.Proportion
	}{
		{"Fig 1 — % women among first authors",
			func(p core.PositionCell) stats.Proportion { return p.Lead }, tab.OverallLead},
		{"Fig 1 — % women among last authors",
			func(p core.PositionCell) stats.Proportion { return p.Last }, tab.OverallLast},
	} {
		chart := NewBarChart(panel.title)
		for _, p := range tab.Positions {
			prop := panel.pick(p)
			chart.Add(p.Name, prop.Ratio(), prop.String())
		}
		chart.Add("ALL", panel.overall.Ratio(), panel.overall.String())
		if err := chart.RenderTo(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return Fig1Matrix(w, tab, d)
}

// Fig1Matrix renders the whole figure as one conference x role percentage
// table.
func Fig1Matrix(w io.Writer, tab core.RoleTable, d *dataset.Dataset) error {
	headers := []string{"Conference"}
	for _, role := range dataset.Roles() {
		headers = append(headers, role.String())
	}
	headers = append(headers, "first author", "last author")
	t := NewTable(headers...).AlignRight(1, 2, 3, 4, 5, 6, 7, 8)
	for _, c := range d.Conferences {
		row := []string{c.Name}
		for _, role := range dataset.Roles() {
			cell, ok := tab.Cell(c.ID, role)
			if !ok {
				row = append(row, "n/a")
				continue
			}
			row = append(row, Pct(cell.Ratio.Ratio()))
		}
		for _, p := range tab.Positions {
			if p.Conf == c.ID {
				row = append(row, Pct(p.Lead.Ratio()), Pct(p.Last.Ratio()))
				break
			}
		}
		if err := t.AddRow(row...); err != nil {
			return err
		}
	}
	return t.RenderTo(w)
}

// Sec31 renders the §3.1 author analysis: overall FAR, per conference,
// blind-review and position comparisons.
func Sec31(w io.Writer, d *dataset.Dataset) error {
	far := core.AuthorFAR(d)
	fmt.Fprintf(w, "Authors: %d slots, %d unique; overall FAR %s (%d unknown gender)\n",
		far.TotalSlots, far.UniqueN, far.Overall, far.Unknown)
	for _, row := range far.PerConf {
		fmt.Fprintf(w, "  %-10s FAR %s\n", row.Name, row.Ratio)
	}
	blind, err := core.CompareBlindReview(d)
	switch {
	case errors.Is(err, core.ErrNotApplicable):
		fmt.Fprintf(w, "Blind-review comparison skipped: %v\n", err)
	case err != nil:
		return err
	default:
		fmt.Fprintf(w, "Double-blind FAR %s vs single-blind %s — %s\n",
			blind.DoubleBlind, blind.SingleBlind, blind.Test)
		fmt.Fprintf(w, "Lead authors: double-blind %s vs single-blind %s — %s\n",
			blind.LeadDouble, blind.LeadSingle, blind.LeadTest)
	}
	pos, err := core.CompareAuthorPositions(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Positions: lead %s, last %s, overall %s — last vs overall %s\n",
		pos.Lead, pos.Last, pos.Overall, pos.LastTest)
	return nil
}

// Sec32 renders the §3.2 program-committee analysis.
func Sec32(w io.Writer, d *dataset.Dataset, scID dataset.ConfID) error {
	pc, err := core.ProgramCommittee(d, scID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "PC members: %d slots (%d unique); women %s\n",
		pc.SlotsTotal, pc.UniqueTotal, pc.Overall)
	if scID != "" {
		fmt.Fprintf(w, "  SC: %s; excluding SC: %s\n", pc.SC, pc.ExcludingSC)
	}
	fmt.Fprintf(w, "  vs authors: %s\n", pc.VsAuthors)
	fmt.Fprintf(w, "PC chairs: %d women of %d; conferences with zero women chairs: %v\n",
		pc.ChairWomen, pc.ChairsTotal, pc.ZeroWomenChairConfs)
	return nil
}

// Sec33 renders the §3.3 visible-roles analysis.
func Sec33(w io.Writer, d *dataset.Dataset) error {
	for _, r := range core.VisibleRoles(d) {
		fmt.Fprintf(w, "%-14s %d women of %d; zero-women conferences: %v; best: %s (%s)\n",
			r.Role.String()+"s:", r.Women, r.Total, r.ZeroWomenConf, r.BestConf, r.BestRatio)
	}
	return nil
}

// Sec34 renders the §3.4 flagship time series.
func Sec34(w io.Writer, d *dataset.Dataset) error {
	points := core.FlagshipTrend(d)
	t := NewTable("Series", "Year", "FAR", "Lead FAR", "Attendance").AlignRight(1, 2, 3, 4)
	for _, p := range points {
		att := "unshared"
		if p.Attendance > 0 {
			att = Pct(p.Attendance)
		}
		if err := t.AddRow(p.Series, strconv.Itoa(p.Year), Pct(p.FAR.Ratio()), Pct(p.LeadFAR.Ratio()), att); err != nil {
			return err
		}
	}
	if err := t.RenderTo(w); err != nil {
		return err
	}
	for _, s := range core.TrendSummary(points) {
		fmt.Fprintf(w, "%s FAR range over %d years: %s – %s\n",
			s.Series, s.Years, Pct(s.MinFAR), Pct(s.MaxFAR))
	}
	return nil
}

// CohortRetentionSection renders the extension's year-over-year cohort
// ledger: how many role-holders of each edition (and how many of its
// women) return the following year. The last edition of a series is
// right-censored — there is no next year to observe — and renders as such
// rather than as a zero rate.
func CohortRetentionSection(w io.Writer, d *dataset.Dataset) error {
	t := NewTable("Series", "Year", "Holders", "Women", "Returned", "Women ret.", "Retention").
		AlignRight(1, 2, 3, 4, 5, 6)
	for _, p := range core.CohortRetention(d) {
		rate := "censored"
		if p.Observed > 0 {
			rate = Pct(p.Rate())
		}
		if err := t.AddRow(p.Series, strconv.Itoa(p.Year),
			strconv.Itoa(p.Holders), strconv.Itoa(p.Women),
			strconv.Itoa(p.Returned), strconv.Itoa(p.WomenReturned), rate); err != nil {
			return err
		}
	}
	return t.RenderTo(w)
}

// Sec41 renders the §4.1 HPC-only topic analysis.
func Sec41(w io.Writer, d *dataset.Dataset) error {
	r, err := core.HPCOnlySubset(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "HPC-tagged papers: %d of %d\n", r.HPCPapers, r.TotalPapers)
	fmt.Fprintf(w, "Authors: HPC-only %s vs all %s — %s\n", r.HPCAuthors, r.AllAuthors, r.AuthorTest)
	fmt.Fprintf(w, "Leads:   HPC-only %s vs all %s — %s\n", r.HPCLead, r.AllLead, r.LeadTest)
	return nil
}

// Fig2 renders the §4.2 citation reception analysis with density curves.
func Fig2(w io.Writer, d *dataset.Dataset) error {
	r, err := core.CitationReception(d, 0)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Papers with gendered lead: %d female-led, %d male-led\n",
		r.FemaleLedPapers, r.MaleLedPapers)
	fmt.Fprintf(w, "Mean citations at 36 months: female %.2f vs male %.2f\n", r.MeanFemale, r.MeanMale)
	fmt.Fprintf(w, "Excluding %d outlier(s) above %d citations: female %.2f — %s\n",
		r.OutliersExcluded, r.OutlierThreshold, r.MeanFemaleExclOut, r.WelchExclOutlier)
	fmt.Fprintf(w, "i10 attainment: female-led %s vs male-led %s — %s\n",
		r.I10Female, r.I10Male, r.I10Test)
	plot := NewLinePlot("Fig 2 — citation density at 36 months by lead gender")
	for _, c := range r.Densities {
		if err := plot.AddSeries(c.Label, c.X, c.Y); err != nil {
			return err
		}
	}
	return plot.RenderTo(w)
}

// ExperienceFig renders one of Figs 3-5 (by metric) as density plots plus
// summary rows.
func ExperienceFig(w io.Writer, d *dataset.Dataset, m core.Metric) error {
	samples, err := core.ExperienceDistributions(d, m)
	if err != nil {
		return err
	}
	plot := NewLinePlot(fmt.Sprintf("Distribution of %s by gender and role", m))
	t := NewTable("Group", "N", "Median", "Mean", "Skewness").AlignRight(1, 2, 3, 4)
	for _, s := range samples {
		if err := plot.AddSeries(s.Density.Label, s.Density.X, s.Density.Y); err != nil {
			return err
		}
		if err := t.AddRow(s.Density.Label, strconv.Itoa(s.Summary.N),
			fmt.Sprintf("%.1f", s.Summary.Median),
			fmt.Sprintf("%.1f", s.Summary.Mean),
			fmt.Sprintf("%.2f", s.Summary.Skewness)); err != nil {
			return err
		}
	}
	if err := t.RenderTo(w); err != nil {
		return err
	}
	return plot.RenderTo(w)
}

// Fig6 renders the experience-band stratification and the novice-gap test.
func Fig6(w io.Writer, d *dataset.Dataset) error {
	r, err := core.ExperienceBands(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Google Scholar coverage among known-gender researchers: %s\n", Pct(r.GSCoverage))
	chart := NewBarChart("Fig 6 — experience bands by gender (all researchers)")
	for _, cell := range r.All {
		for band, label := range []string{"novice", "mid-career", "experienced"} {
			share := float64(cell.Counts[band]) / float64(max(cell.Total, 1))
			chart.Add(fmt.Sprintf("%s %s", cell.Gender, label), share,
				fmt.Sprintf("%d/%d (%s)", cell.Counts[band], cell.Total, Pct(share)))
		}
	}
	if err := chart.RenderTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "Novice authors: female %s vs male %s — %s\n",
		r.NoviceFemale, r.NoviceMale, r.NoviceTest)
	return nil
}

// Table2 renders the top-ten-countries table.
func Table2(w io.Writer, d *dataset.Dataset) error {
	t := NewTable("Country", "% Women", "Total").AlignRight(1, 2)
	for _, row := range core.TopCountries(d, 10) {
		if err := t.AddRow(row.Name, Pct(row.Ratio.Ratio()), strconv.Itoa(row.Total)); err != nil {
			return err
		}
	}
	return t.RenderTo(w)
}

// Fig7 renders women's representation for countries with >= 10 authors.
func Fig7(w io.Writer, d *dataset.Dataset) error {
	chart := NewBarChart("Fig 7 — % women for countries with at least 10 authors")
	for _, row := range core.CountriesWithMinAuthors(d, 10) {
		chart.Add(row.Name, row.Ratio.Ratio(), row.Ratio.String())
	}
	return chart.RenderTo(w)
}

// Table3 renders representation of women by region and role.
func Table3(w io.Writer, d *dataset.Dataset) error {
	t := NewTable("Region", "Authors % Women", "Authors Total", "PC % Women", "PC Total").
		AlignRight(1, 2, 3, 4)
	for _, row := range core.RegionRoleTable(d) {
		if err := t.AddRow(row.Region,
			Pct(row.Authors.Ratio()), strconv.Itoa(row.Authors.N),
			Pct(row.PC.Ratio()), strconv.Itoa(row.PC.N)); err != nil {
			return err
		}
	}
	if err := t.RenderTo(w); err != nil {
		return err
	}
	g := core.Concentration(d)
	fmt.Fprintf(w, "US share: authors %s, PC %s; Western Europe: authors %s, PC %s\n",
		Pct(g.USAuthors), Pct(g.USPC), Pct(g.WEAuthors), Pct(g.WEPC))
	return nil
}

// Fig8 renders representation of women by sector and role.
func Fig8(w io.Writer, d *dataset.Dataset) error {
	r, err := core.SectorRepresentation(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Sector mix: EDU %s, COM %s, GOV %s\n",
		Pct(r.MixEDU), Pct(r.MixCOM), Pct(r.MixGOV))
	chart := NewBarChart("Fig 8 — % women by sector and role")
	for _, role := range []dataset.Role{dataset.RoleAuthor, dataset.RolePCMember} {
		for _, sector := range []affil.Sector{affil.COM, affil.EDU, affil.GOV} {
			if cell, ok := r.Cell(sector, role); ok {
				chart.Add(fmt.Sprintf("%s %s", cell.Sector, role), cell.Ratio.Ratio(), cell.Ratio.String())
			}
		}
	}
	if err := chart.RenderTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "PC sector test: %s\nAuthor sector test: %s\n", r.PCTest, r.AuthorTest)
	return nil
}

// Sensitivity renders the Limitations-section sensitivity analysis.
func Sensitivity(w io.Writer, d *dataset.Dataset, scID dataset.ConfID) error {
	r, err := core.SensitivityAnalysis(d, scID)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Unknown-gender researchers forced: %d\n", r.UnknownCount)
	t := NewTable("Observation", "Baseline", "All-women", "All-men").AlignRight(1, 2, 3)
	for i, obs := range r.Baseline {
		row := func(o core.Observation) string {
			sig := ""
			if o.Significant {
				sig = "*"
			}
			return fmt.Sprintf("%+.4f (p=%.3g)%s", o.Effect, o.P, sig)
		}
		if err := t.AddRow(obs.Name, row(obs), row(r.AllWomen[i]), row(r.AllMen[i])); err != nil {
			return err
		}
	}
	if err := t.RenderTo(w); err != nil {
		return err
	}
	if r.Stable {
		fmt.Fprintln(w, "No observation changed direction or significance (matches the paper).")
	} else {
		fmt.Fprintf(w, "Observations that flipped: %v\n", r.Flips)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
