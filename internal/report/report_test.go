package report

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/synth"
)

var corpus = func() *synth.Corpus {
	c, err := synth.Generate(synth.Default2017(1))
	if err != nil {
		panic(err)
	}
	return c
}()

func TestTableRendering(t *testing.T) {
	tab := NewTable("Name", "Value").AlignRight(1)
	tab.MustAddRow("alpha", "1")
	tab.MustAddRow("beta-long", "22")
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Name") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("separator: %q", lines[1])
	}
	// Right-aligned column: "1" should end its line (after trim there is
	// no trailing space, and the value column is flush right).
	if !strings.HasSuffix(lines[2], " 1") {
		t.Errorf("right alignment: %q", lines[2])
	}
}

func TestTableRowArity(t *testing.T) {
	tab := NewTable("A", "B")
	if err := tab.AddRow("1", "2", "3"); err == nil {
		t.Error("oversized row accepted")
	}
	if err := tab.AddRow("only"); err != nil {
		t.Errorf("short row rejected: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Error("MustAddRow should panic on arity error")
		}
	}()
	tab.MustAddRow("1", "2", "3")
}

func TestPct(t *testing.T) {
	if got := Pct(0.0990); got != "9.90%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(math.NaN()); got != "n/a" {
		t.Errorf("Pct(NaN) = %q", got)
	}
	if got := Pct(1); got != "100.00%" {
		t.Errorf("Pct(1) = %q", got)
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("demo")
	c.Add("one", 0.5, "50%")
	c.Add("two", 1.0, "100%")
	c.Add("nan", math.NaN(), "n/a")
	out := c.Render()
	if !strings.Contains(out, "demo") {
		t.Error("missing title")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines", len(lines))
	}
	// Full-scale bar has Width hashes; half-scale roughly half.
	full := strings.Count(lines[2], "#")
	half := strings.Count(lines[1], "#")
	if full != 40 {
		t.Errorf("full bar = %d hashes", full)
	}
	if half < 18 || half > 22 {
		t.Errorf("half bar = %d hashes", half)
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Error("NaN bar should be empty")
	}
}

func TestLinePlot(t *testing.T) {
	p := NewLinePlot("densities")
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = math.Exp(-float64(i-25) * float64(i-25) / 50)
	}
	if err := p.AddSeries("bump", xs, ys); err != nil {
		t.Fatal(err)
	}
	out := p.Render()
	if !strings.Contains(out, "* = bump") {
		t.Error("missing legend")
	}
	if !strings.Contains(out, "*") {
		t.Error("no glyphs plotted")
	}
	if !strings.Contains(out, "peak density") {
		t.Error("missing axis annotation")
	}
	// Errors.
	if err := p.AddSeries("bad", []float64{1}, []float64{1, 2}); err == nil {
		t.Error("mismatched series accepted")
	}
	empty := NewLinePlot("empty")
	var sb strings.Builder
	if err := empty.RenderTo(&sb); err == nil {
		t.Error("empty plot rendered")
	}
	flat := NewLinePlot("flat")
	if err := flat.AddSeries("zero", []float64{1, 2}, []float64{0, 0}); err != nil {
		t.Fatal(err)
	}
	if err := flat.RenderTo(&sb); err == nil {
		t.Error("degenerate plot rendered")
	}
}

func TestAllExhibitsRender(t *testing.T) {
	d := corpus.Data
	// Render each exhibit into a buffer and spot-check content.
	var b bytes.Buffer
	if err := Table1(&b, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SC", "ISC", "0.187", "Acceptance"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Table1 missing %q", want)
		}
	}

	b.Reset()
	if err := Fig1(&b, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"authors", "PC members", "session chairs", "ALL"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Fig1 missing %q", want)
		}
	}

	b.Reset()
	if err := Sec31(&b, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"overall FAR", "Double-blind", "Lead authors", "last"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Sec31 missing %q", want)
		}
	}

	b.Reset()
	if err := Sec32(&b, d, "SC17"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1220 slots") {
		t.Errorf("Sec32 missing slot count: %s", b.String())
	}

	b.Reset()
	if err := Sec33(&b, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "keynotes:") || !strings.Contains(b.String(), "session chairs:") {
		t.Errorf("Sec33 output: %s", b.String())
	}

	b.Reset()
	if err := Sec41(&b, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "HPC-tagged papers") {
		t.Error("Sec41 missing header")
	}

	b.Reset()
	if err := Fig2(&b, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"female-led", "Mean citations", "i10", "female lead"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Fig2 missing %q", want)
		}
	}

	for _, m := range []core.Metric{core.MetricGSPublications, core.MetricHIndex, core.MetricS2Publications} {
		b.Reset()
		if err := ExperienceFig(&b, d, m); err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if !strings.Contains(b.String(), "Median") {
			t.Errorf("%s fig missing summary table", m)
		}
	}

	b.Reset()
	if err := Fig6(&b, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"novice", "mid-career", "experienced", "Novice authors"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Fig6 missing %q", want)
		}
	}

	b.Reset()
	if err := Table2(&b, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "United States") {
		t.Error("Table2 missing United States")
	}

	b.Reset()
	if err := Fig7(&b, d); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "at least 10 authors") {
		t.Error("Fig7 missing title")
	}

	b.Reset()
	if err := Table3(&b, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Northern America", "US share"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Table3 missing %q", want)
		}
	}

	b.Reset()
	if err := Fig8(&b, d); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Sector mix", "GOV", "EDU", "COM"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Fig8 missing %q", want)
		}
	}

	b.Reset()
	if err := Sensitivity(&b, d, "SC17"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "forced") {
		t.Error("Sensitivity missing header")
	}
}

func TestSec34RendersFlagship(t *testing.T) {
	c, err := synth.Generate(synth.FlagshipSeries(3))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := Sec34(&b, c.Data); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SC", "ISC", "2016", "2020", "FAR range"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Sec34 missing %q", want)
		}
	}
}
