package report

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"

	"repro/internal/cite"
	"repro/internal/core"
	"repro/internal/dataset"
)

// CSVExport is one machine-readable exhibit family: a stable name (the
// file stem and the whpcd /v1/csv/{name} route segment), a human-readable
// title, and the row producer. Rows returns a header row followed by data
// rows, values unrounded.
type CSVExport struct {
	Name  string
	Title string
	Rows  func() ([][]string, error)
}

// CSVExports enumerates the exportable exhibit families for a corpus in a
// fixed order. ExportCSVs and the whpcd CSV endpoint both iterate this
// single list, so a new family added here appears in both automatically.
func CSVExports(d *dataset.Dataset) []CSVExport {
	// Both citation families analyze the same synthesized graph; build it
	// at most once, and only if one of them actually renders.
	var (
		citeOnce sync.Once
		citeG    *cite.Graph
	)
	citeGraph := func() *cite.Graph {
		citeOnce.Do(func() { citeG = cite.Synthesize(d) })
		return citeG
	}
	return []CSVExport{
		{"far_per_conference", "Female author ratio per conference", func() ([][]string, error) { return farRows(d) }},
		{"role_representation", "Representation of women by conference role", func() ([][]string, error) { return roleRows(d) }},
		{"countries", "Representation of women by country", func() ([][]string, error) { return countryRows(d) }},
		{"regions", "Authors and PC members by region", func() ([][]string, error) { return regionRows(d) }},
		{"sectors", "Representation of women by work sector", func() ([][]string, error) { return sectorRows(d) }},
		{"experience_bands", "Experience-band stratification", func() ([][]string, error) { return bandRows(d) }},
		{"citations", "Per-paper citation reception", func() ([][]string, error) { return citationRows(d) }},
		{"trend", "Flagship FAR time series", func() ([][]string, error) { return trendRows(d) }},
		{"retention", "Cohort retention of role-holders across editions", func() ([][]string, error) { return retentionRows(d) }},
		{"cite_flow", "Citation flow by citing-team gender composition", func() ([][]string, error) { return citeFlowRows(d, citeGraph()) }},
		{"cite_gap", "Citation flow per conference-year", func() ([][]string, error) { return citeGapRows(d, citeGraph()) }},
	}
}

// CSVExportByName returns the export family with the given name, or
// ok=false for an unknown name.
func CSVExportByName(d *dataset.Dataset, name string) (CSVExport, bool) {
	for _, e := range CSVExports(d) {
		if e.Name == name {
			return e, true
		}
	}
	return CSVExport{}, false
}

// ExportCSVs writes the paper's exhibits as machine-readable CSV files
// into dir — the results-artifact counterpart to the corpus CSVs: one file
// per exhibit family from CSVExports, named <family>.csv.
func ExportCSVs(dir string, d *dataset.Dataset, scID dataset.ConfID) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("report: creating export dir %s: %w", dir, err)
	}
	for _, e := range CSVExports(d) {
		rows, err := e.Rows()
		if err != nil {
			return fmt.Errorf("report: exporting %s: %w", e.Name, err)
		}
		if err := writeCSV(filepath.Join(dir, e.Name+".csv"), rows); err != nil {
			return err
		}
	}
	return nil
}

// writeCSV writes rows to path, naming the path in every failure so a
// mid-export error identifies which CSV died.
func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("report: creating %s: %w", path, err)
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		_ = f.Close()
		return fmt.Errorf("report: writing %s: %w", path, err)
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return fmt.Errorf("report: flushing %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("report: closing %s: %w", path, err)
	}
	return nil
}

func ftoa(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

func farRows(d *dataset.Dataset) ([][]string, error) {
	far := core.AuthorFAR(d)
	rows := [][]string{{"conference", "women", "known", "far", "unknown"}}
	for _, r := range far.PerConf {
		rows = append(rows, []string{
			r.Name, strconv.Itoa(r.Ratio.K), strconv.Itoa(r.Ratio.N),
			ftoa(r.Ratio.Ratio()), strconv.Itoa(r.Unknown),
		})
	}
	rows = append(rows, []string{"ALL", strconv.Itoa(far.Overall.K),
		strconv.Itoa(far.Overall.N), ftoa(far.Overall.Ratio()), strconv.Itoa(far.Unknown)})
	return rows, nil
}

func roleRows(d *dataset.Dataset) ([][]string, error) {
	tab := core.RoleRepresentation(d)
	rows := [][]string{{"conference", "role", "women", "known", "ratio"}}
	for _, c := range tab.Cells {
		rows = append(rows, []string{
			string(c.Conf), c.Role.String(),
			strconv.Itoa(c.Ratio.K), strconv.Itoa(c.Ratio.N), ftoa(c.Ratio.Ratio()),
		})
	}
	return rows, nil
}

func countryRows(d *dataset.Dataset) ([][]string, error) {
	rows := [][]string{{"country", "women", "known", "ratio", "total"}}
	for _, r := range core.TopCountries(d, 0) {
		rows = append(rows, []string{
			r.Code, strconv.Itoa(r.Ratio.K), strconv.Itoa(r.Ratio.N),
			ftoa(r.Ratio.Ratio()), strconv.Itoa(r.Total),
		})
	}
	return rows, nil
}

func regionRows(d *dataset.Dataset) ([][]string, error) {
	rows := [][]string{{"region", "author_women", "author_total", "pc_women", "pc_total"}}
	for _, r := range core.RegionRoleTable(d) {
		rows = append(rows, []string{
			r.Region,
			strconv.Itoa(r.Authors.K), strconv.Itoa(r.Authors.N),
			strconv.Itoa(r.PC.K), strconv.Itoa(r.PC.N),
		})
	}
	return rows, nil
}

func sectorRows(d *dataset.Dataset) ([][]string, error) {
	r, err := core.SectorRepresentation(d)
	if err != nil {
		return nil, err
	}
	rows := [][]string{{"sector", "role", "women", "known", "ratio"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Sector.String(), c.Role.String(),
			strconv.Itoa(c.Ratio.K), strconv.Itoa(c.Ratio.N), ftoa(c.Ratio.Ratio()),
		})
	}
	return rows, nil
}

func bandRows(d *dataset.Dataset) ([][]string, error) {
	r, err := core.ExperienceBands(d)
	if err != nil {
		return nil, err
	}
	rows := [][]string{{"population", "gender", "novice", "mid_career", "experienced", "total"}}
	for _, grp := range []struct {
		name  string
		cells []core.BandCell
	}{{"all", r.All}, {"authors", r.Authors}} {
		for _, c := range grp.cells {
			rows = append(rows, []string{
				grp.name, c.Gender.String(),
				strconv.Itoa(c.Counts[0]), strconv.Itoa(c.Counts[1]),
				strconv.Itoa(c.Counts[2]), strconv.Itoa(c.Total),
			})
		}
	}
	return rows, nil
}

func citationRows(d *dataset.Dataset) ([][]string, error) {
	rows := [][]string{{"paper", "conference", "lead_gender", "citations36", "hpc_topic"}}
	for _, p := range d.Papers {
		lead, ok := d.Person(p.Lead())
		g := "unknown"
		if ok {
			g = lead.Gender.String()
		}
		rows = append(rows, []string{
			string(p.ID), string(p.Conf), g,
			strconv.Itoa(p.Citations36), strconv.FormatBool(p.HPCTopic),
		})
	}
	return rows, nil
}

func trendRows(d *dataset.Dataset) ([][]string, error) {
	rows := [][]string{{"series", "year", "women", "known", "far", "attendance"}}
	for _, p := range core.FlagshipTrend(d) {
		rows = append(rows, []string{
			p.Series, strconv.Itoa(p.Year),
			strconv.Itoa(p.FAR.K), strconv.Itoa(p.FAR.N),
			ftoa(p.FAR.Ratio()), ftoa(p.Attendance),
		})
	}
	return rows, nil
}

func retentionRows(d *dataset.Dataset) ([][]string, error) {
	rows := [][]string{{"series", "year", "holders", "women", "observed", "returned", "women_returned", "rate"}}
	for _, p := range core.CohortRetention(d) {
		rows = append(rows, []string{
			p.Series, strconv.Itoa(p.Year),
			strconv.Itoa(p.Holders), strconv.Itoa(p.Women),
			strconv.Itoa(p.Observed), strconv.Itoa(p.Returned),
			strconv.Itoa(p.WomenReturned), ftoa(p.Rate()),
		})
	}
	return rows, nil
}
