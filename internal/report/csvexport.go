package report

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/core"
	"repro/internal/dataset"
)

// ExportCSVs writes the paper's exhibits as machine-readable CSV files
// into dir — the results-artifact counterpart to the corpus CSVs: one file
// per exhibit family, values unrounded.
func ExportCSVs(dir string, d *dataset.Dataset, scID dataset.ConfID) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	exports := []struct {
		file string
		fn   func() ([][]string, error)
	}{
		{"far_per_conference.csv", func() ([][]string, error) { return farRows(d) }},
		{"role_representation.csv", func() ([][]string, error) { return roleRows(d) }},
		{"countries.csv", func() ([][]string, error) { return countryRows(d) }},
		{"regions.csv", func() ([][]string, error) { return regionRows(d) }},
		{"sectors.csv", func() ([][]string, error) { return sectorRows(d) }},
		{"experience_bands.csv", func() ([][]string, error) { return bandRows(d) }},
		{"citations.csv", func() ([][]string, error) { return citationRows(d) }},
		{"trend.csv", func() ([][]string, error) { return trendRows(d) }},
	}
	for _, e := range exports {
		rows, err := e.fn()
		if err != nil {
			return fmt.Errorf("report: exporting %s: %w", e.file, err)
		}
		if err := writeCSV(filepath.Join(dir, e.file), rows); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(path string, rows [][]string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	if err := w.WriteAll(rows); err != nil {
		_ = f.Close()
		return err
	}
	w.Flush()
	if err := w.Error(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func ftoa(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

func farRows(d *dataset.Dataset) ([][]string, error) {
	far := core.AuthorFAR(d)
	rows := [][]string{{"conference", "women", "known", "far", "unknown"}}
	for _, r := range far.PerConf {
		rows = append(rows, []string{
			r.Name, strconv.Itoa(r.Ratio.K), strconv.Itoa(r.Ratio.N),
			ftoa(r.Ratio.Ratio()), strconv.Itoa(r.Unknown),
		})
	}
	rows = append(rows, []string{"ALL", strconv.Itoa(far.Overall.K),
		strconv.Itoa(far.Overall.N), ftoa(far.Overall.Ratio()), strconv.Itoa(far.Unknown)})
	return rows, nil
}

func roleRows(d *dataset.Dataset) ([][]string, error) {
	tab := core.RoleRepresentation(d)
	rows := [][]string{{"conference", "role", "women", "known", "ratio"}}
	for _, c := range tab.Cells {
		rows = append(rows, []string{
			string(c.Conf), c.Role.String(),
			strconv.Itoa(c.Ratio.K), strconv.Itoa(c.Ratio.N), ftoa(c.Ratio.Ratio()),
		})
	}
	return rows, nil
}

func countryRows(d *dataset.Dataset) ([][]string, error) {
	rows := [][]string{{"country", "women", "known", "ratio", "total"}}
	for _, r := range core.TopCountries(d, 0) {
		rows = append(rows, []string{
			r.Code, strconv.Itoa(r.Ratio.K), strconv.Itoa(r.Ratio.N),
			ftoa(r.Ratio.Ratio()), strconv.Itoa(r.Total),
		})
	}
	return rows, nil
}

func regionRows(d *dataset.Dataset) ([][]string, error) {
	rows := [][]string{{"region", "author_women", "author_total", "pc_women", "pc_total"}}
	for _, r := range core.RegionRoleTable(d) {
		rows = append(rows, []string{
			r.Region,
			strconv.Itoa(r.Authors.K), strconv.Itoa(r.Authors.N),
			strconv.Itoa(r.PC.K), strconv.Itoa(r.PC.N),
		})
	}
	return rows, nil
}

func sectorRows(d *dataset.Dataset) ([][]string, error) {
	r, err := core.SectorRepresentation(d)
	if err != nil {
		return nil, err
	}
	rows := [][]string{{"sector", "role", "women", "known", "ratio"}}
	for _, c := range r.Cells {
		rows = append(rows, []string{
			c.Sector.String(), c.Role.String(),
			strconv.Itoa(c.Ratio.K), strconv.Itoa(c.Ratio.N), ftoa(c.Ratio.Ratio()),
		})
	}
	return rows, nil
}

func bandRows(d *dataset.Dataset) ([][]string, error) {
	r, err := core.ExperienceBands(d)
	if err != nil {
		return nil, err
	}
	rows := [][]string{{"population", "gender", "novice", "mid_career", "experienced", "total"}}
	for _, grp := range []struct {
		name  string
		cells []core.BandCell
	}{{"all", r.All}, {"authors", r.Authors}} {
		for _, c := range grp.cells {
			rows = append(rows, []string{
				grp.name, c.Gender.String(),
				strconv.Itoa(c.Counts[0]), strconv.Itoa(c.Counts[1]),
				strconv.Itoa(c.Counts[2]), strconv.Itoa(c.Total),
			})
		}
	}
	return rows, nil
}

func citationRows(d *dataset.Dataset) ([][]string, error) {
	rows := [][]string{{"paper", "conference", "lead_gender", "citations36", "hpc_topic"}}
	for _, p := range d.Papers {
		lead, ok := d.Person(p.Lead())
		g := "unknown"
		if ok {
			g = lead.Gender.String()
		}
		rows = append(rows, []string{
			string(p.ID), string(p.Conf), g,
			strconv.Itoa(p.Citations36), strconv.FormatBool(p.HPCTopic),
		})
	}
	return rows, nil
}

func trendRows(d *dataset.Dataset) ([][]string, error) {
	rows := [][]string{{"series", "year", "women", "known", "far", "attendance"}}
	for _, p := range core.FlagshipTrend(d) {
		rows = append(rows, []string{
			p.Series, strconv.Itoa(p.Year),
			strconv.Itoa(p.FAR.K), strconv.Itoa(p.FAR.N),
			ftoa(p.FAR.Ratio()), ftoa(p.Attendance),
		})
	}
	return rows, nil
}
