// Package report renders the paper's tables and figures as text: aligned
// ASCII tables for Tables 1-3, horizontal bar charts for the ratio figures
// (Figs 1, 6, 7, 8), and line-grid density plots for the distribution
// figures (Figs 2-5). The per-exhibit renderers consume the structured
// results from internal/core, so cmd/whpc stays a thin shell.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with per-column alignment.
type Table struct {
	headers []string
	rows    [][]string
	// RightAlign marks columns rendered flush right (numbers).
	rightAlign map[int]bool
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers, rightAlign: make(map[int]bool)}
}

// AlignRight marks columns (0-based) as right-aligned.
func (t *Table) AlignRight(cols ...int) *Table {
	for _, c := range cols {
		t.rightAlign[c] = true
	}
	return t
}

// AddRow appends a row; short rows are padded with empty cells, long rows
// are an error.
func (t *Table) AddRow(cells ...string) error {
	if len(cells) > len(t.headers) {
		return fmt.Errorf("report: row has %d cells, table has %d columns", len(cells), len(t.headers))
	}
	row := make([]string, len(t.headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
	return nil
}

// MustAddRow is AddRow for static callers; it panics on arity errors.
func (t *Table) MustAddRow(cells ...string) {
	if err := t.AddRow(cells...); err != nil {
		panic(err)
	}
}

// RenderTo writes the formatted table.
func (t *Table) RenderTo(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if t.rightAlign[i] {
				parts[i] = fmt.Sprintf("%*s", widths[i], cell)
			} else {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			}
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	var sb strings.Builder
	sb.WriteString(line(t.headers))
	sb.WriteByte('\n')
	total := 0
	for _, w := range widths {
		total += w
	}
	sb.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	sb.WriteByte('\n')
	for _, row := range t.rows {
		sb.WriteString(line(row))
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Render returns the formatted table as a string.
func (t *Table) Render() string {
	var sb strings.Builder
	if err := t.RenderTo(&sb); err != nil {
		return ""
	}
	return sb.String()
}

// Pct formats a ratio as a percentage with two decimals ("9.90%"); NaN
// renders as "n/a" (empty cells in the paper's small-population tables).
func Pct(ratio float64) string {
	if ratio != ratio { // NaN
		return "n/a"
	}
	return fmt.Sprintf("%.2f%%", 100*ratio)
}
