package report

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

func TestExportCSVs(t *testing.T) {
	dir := t.TempDir()
	if err := ExportCSVs(dir, corpus.Data, "SC17"); err != nil {
		t.Fatal(err)
	}
	wantFiles := []string{
		"far_per_conference.csv", "role_representation.csv", "countries.csv",
		"regions.csv", "sectors.csv", "experience_bands.csv",
		"citations.csv", "trend.csv",
	}
	for _, f := range wantFiles {
		path := filepath.Join(dir, f)
		fh, err := os.Open(path)
		if err != nil {
			t.Errorf("missing export %s: %v", f, err)
			continue
		}
		rows, err := csv.NewReader(fh).ReadAll()
		fh.Close()
		if err != nil {
			t.Errorf("%s: %v", f, err)
			continue
		}
		if len(rows) < 2 {
			t.Errorf("%s has no data rows", f)
		}
		// Every row has the header arity.
		for i, row := range rows {
			if len(row) != len(rows[0]) {
				t.Errorf("%s row %d: %d cells vs header %d", f, i, len(row), len(rows[0]))
			}
		}
	}
}

func TestExportCSVsFARConsistency(t *testing.T) {
	dir := t.TempDir()
	if err := ExportCSVs(dir, corpus.Data, "SC17"); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(filepath.Join(dir, "far_per_conference.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	rows, err := csv.NewReader(fh).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	// 9 conferences + header + ALL row.
	if len(rows) != 11 {
		t.Fatalf("%d rows, want 11", len(rows))
	}
	// The ALL row equals the sum of the per-conference rows.
	var sumW, sumN int
	var allW, allN int
	for _, row := range rows[1:] {
		w, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatal(err)
		}
		if row[0] == "ALL" {
			allW, allN = w, n
			continue
		}
		sumW += w
		sumN += n
	}
	if sumW != allW || sumN != allN {
		t.Errorf("per-conference sums (%d/%d) != ALL row (%d/%d)", sumW, sumN, allW, allN)
	}
}

func TestExportCSVsCitationsCoverAllPapers(t *testing.T) {
	dir := t.TempDir()
	if err := ExportCSVs(dir, corpus.Data, "SC17"); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(filepath.Join(dir, "citations.csv"))
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	rows, err := csv.NewReader(fh).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows)-1 != len(corpus.Data.Papers) {
		t.Errorf("%d citation rows for %d papers", len(rows)-1, len(corpus.Data.Papers))
	}
}
