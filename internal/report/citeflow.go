package report

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/cite"
	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/stats"
)

// CitationFlow renders the gendered citation-flow extension: the
// Nakajima-style observed-versus-null comparison per citing-team category,
// Wilson intervals on the pooled shares, and the directed lead-gender
// mixing of the citation graph.
func CitationFlow(w io.Writer, d *dataset.Dataset) error {
	g := cite.Synthesize(d)
	a, err := cite.Analyze(d, g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Citation graph: %d papers, %d edges (within conference or to earlier years only)\n",
		g.Papers, len(g.Edges))
	t := NewTable("Citing team", "Edges", "Observed female-led", "Null female-led", "Over-citation").
		AlignRight(1, 2, 3, 4)
	for _, f := range append(append([]cite.Flow(nil), a.Flows...), a.Overall) {
		if err := t.AddRow(f.Team, strconv.Itoa(f.Edges),
			f.Observed.String(), f.Null.String(),
			fmt.Sprintf("%.3f", f.OverCitation())); err != nil {
			return err
		}
	}
	if err := t.RenderTo(w); err != nil {
		return err
	}
	if lo, hi, err := a.Overall.Observed.WilsonCI(0.95); err == nil {
		fmt.Fprintf(w, "Pooled observed share of female-led citations: %s, 95%% Wilson CI [%.4f, %.4f]\n",
			a.Overall.Observed, lo, hi)
	}
	if lo, hi, err := a.Overall.Null.WilsonCI(0.95); err == nil {
		fmt.Fprintf(w, "Pooled null-model share:                       %s, 95%% Wilson CI [%.4f, %.4f]\n",
			a.Overall.Null, lo, hi)
	}
	fmt.Fprintf(w, "Directed lead-gender mixing: %d FF / %d FM / %d MF / %d MM edges; assortativity %+.4f\n",
		a.Mixing.FF, a.Mixing.FM, a.Mixing.MF, a.Mixing.MM, a.Mixing.Assortativity)
	return nil
}

// citeFlowRows mirrors the cite_flow exhibit query byte-for-byte: one row
// per citing-team category in dictionary order (zero-filled when a
// category cites nothing), then the pooled ALL row.
func citeFlowRows(d *dataset.Dataset, g *cite.Graph) ([][]string, error) {
	a, err := cite.Analyze(d, g)
	if err != nil {
		return nil, err
	}
	rows := [][]string{{"team", "edges", "women_cited", "known_cited", "observed_share",
		"null_women", "null_known", "null_share"}}
	for _, f := range append(append([]cite.Flow(nil), a.Flows...), a.Overall) {
		rows = append(rows, []string{
			f.Team, strconv.Itoa(f.Edges),
			strconv.Itoa(f.Observed.K), strconv.Itoa(f.Observed.N), ftoa(f.Observed.Ratio()),
			strconv.Itoa(f.Null.K), strconv.Itoa(f.Null.N), ftoa(f.Null.Ratio()),
		})
	}
	return rows, nil
}

// citeGapRows mirrors the cite_gap exhibit query: per (conference, year)
// citation flows, grouped by conference in seeded dictionary order (the
// d.Conferences order), years within a conference in edge-appearance
// order. Conference-years that attract no citations produce no row, same
// as the engine's grouping.
func citeGapRows(d *dataset.Dataset, g *cite.Graph) ([][]string, error) {
	m := cite.NewMeta(d)
	type gapKey struct {
		conf string
		year int
	}
	type gapCell struct {
		gapKey
		edges     int
		obs, null stats.Proportion
	}
	count := func(p *stats.Proportion, lg gender.Gender) {
		if !lg.Known() {
			return
		}
		p.N++
		if lg == gender.Female {
			p.K++
		}
	}
	index := make(map[gapKey]*gapCell)
	var order []*gapCell
	for _, e := range g.Edges {
		k := gapKey{string(d.Papers[e.Src].Conf), m.Year[e.Src]}
		c := index[k]
		if c == nil {
			c = &gapCell{gapKey: k}
			index[k] = c
			order = append(order, c)
		}
		c.edges++
		count(&c.obs, m.Lead[e.Dst])
		count(&c.null, m.Lead[e.Null])
	}
	rows := [][]string{{"conference", "year", "edges", "women_cited", "known_cited",
		"observed_share", "null_women", "null_known", "null_share"}}
	seen := make(map[string]bool)
	for _, c := range d.Conferences {
		conf := string(c.ID)
		if seen[conf] {
			continue
		}
		seen[conf] = true
		for _, cell := range order {
			if cell.conf != conf {
				continue
			}
			rows = append(rows, []string{
				cell.conf, strconv.Itoa(cell.year), strconv.Itoa(cell.edges),
				strconv.Itoa(cell.obs.K), strconv.Itoa(cell.obs.N), ftoa(cell.obs.Ratio()),
				strconv.Itoa(cell.null.K), strconv.Itoa(cell.null.N), ftoa(cell.null.Ratio()),
			})
		}
	}
	return rows, nil
}
