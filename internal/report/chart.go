package report

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// BarChart renders labeled horizontal bars — the text analog of the
// paper's ratio figures.
type BarChart struct {
	Title string
	Width int // bar width in characters at full scale (default 40)
	rows  []barRow
	max   float64
}

type barRow struct {
	label string
	value float64
	note  string
}

// NewBarChart creates a chart; values are scaled to the maximum bar.
func NewBarChart(title string) *BarChart {
	return &BarChart{Title: title, Width: 40}
}

// Add appends a bar with a trailing note (typically the exact percentage).
func (b *BarChart) Add(label string, value float64, note string) {
	if math.IsNaN(value) || value < 0 {
		value = 0
	}
	b.rows = append(b.rows, barRow{label, value, note})
	if value > b.max {
		b.max = value
	}
}

// RenderTo writes the chart.
func (b *BarChart) RenderTo(w io.Writer) error {
	labelW := 0
	for _, r := range b.rows {
		if len(r.label) > labelW {
			labelW = len(r.label)
		}
	}
	var sb strings.Builder
	if b.Title != "" {
		sb.WriteString(b.Title)
		sb.WriteByte('\n')
	}
	for _, r := range b.rows {
		n := 0
		if b.max > 0 {
			n = int(math.Round(r.value / b.max * float64(b.Width)))
		}
		sb.WriteString(fmt.Sprintf("%-*s |%s%s %s\n",
			labelW, r.label, strings.Repeat("#", n), strings.Repeat(" ", b.Width-n), r.note))
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// Render returns the chart as a string.
func (b *BarChart) Render() string {
	var sb strings.Builder
	if err := b.RenderTo(&sb); err != nil {
		return ""
	}
	return sb.String()
}

// LinePlot renders one or more (x, y) series on a shared character grid —
// the text analog of the paper's density plots. Distinct series use
// distinct glyphs.
type LinePlot struct {
	Title  string
	Rows   int // grid height (default 16)
	Cols   int // grid width (default 72)
	series []plotSeries
}

type plotSeries struct {
	label string
	xs    []float64
	ys    []float64
	glyph byte
}

var plotGlyphs = []byte{'*', '+', 'o', 'x', '@', '%'}

// NewLinePlot creates a plot with default dimensions.
func NewLinePlot(title string) *LinePlot {
	return &LinePlot{Title: title, Rows: 16, Cols: 72}
}

// AddSeries appends a series; xs and ys must have equal nonzero length.
func (p *LinePlot) AddSeries(label string, xs, ys []float64) error {
	if len(xs) == 0 || len(xs) != len(ys) {
		return fmt.Errorf("report: series %q has %d/%d points", label, len(xs), len(ys))
	}
	glyph := plotGlyphs[len(p.series)%len(plotGlyphs)]
	p.series = append(p.series, plotSeries{label, xs, ys, glyph})
	return nil
}

// RenderTo writes the plot with a legend and axis annotations.
func (p *LinePlot) RenderTo(w io.Writer) error {
	if len(p.series) == 0 {
		return fmt.Errorf("report: plot %q has no series", p.Title)
	}
	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymax := 0.0
	for _, s := range p.series {
		for i := range s.xs {
			xmin = math.Min(xmin, s.xs[i])
			xmax = math.Max(xmax, s.xs[i])
			ymax = math.Max(ymax, s.ys[i])
		}
	}
	if xmax == xmin || ymax == 0 {
		return fmt.Errorf("report: plot %q has a degenerate range", p.Title)
	}
	grid := make([][]byte, p.Rows)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", p.Cols))
	}
	for _, s := range p.series {
		for i := range s.xs {
			col := int((s.xs[i] - xmin) / (xmax - xmin) * float64(p.Cols-1))
			row := p.Rows - 1 - int(s.ys[i]/ymax*float64(p.Rows-1))
			if col >= 0 && col < p.Cols && row >= 0 && row < p.Rows {
				grid[row][col] = s.glyph
			}
		}
	}
	var sb strings.Builder
	if p.Title != "" {
		sb.WriteString(p.Title)
		sb.WriteByte('\n')
	}
	for _, s := range p.series {
		sb.WriteString(fmt.Sprintf("  %c = %s\n", s.glyph, s.label))
	}
	for _, row := range grid {
		sb.WriteString("|")
		sb.Write(row)
		sb.WriteByte('\n')
	}
	sb.WriteString("+" + strings.Repeat("-", p.Cols) + "\n")
	sb.WriteString(fmt.Sprintf(" x: [%.3g, %.3g]  peak density: %.4g\n", xmin, xmax, ymax))
	_, err := io.WriteString(w, sb.String())
	return err
}

// Render returns the plot as a string ("" on error).
func (p *LinePlot) Render() string {
	var sb strings.Builder
	if err := p.RenderTo(&sb); err != nil {
		return ""
	}
	return sb.String()
}
