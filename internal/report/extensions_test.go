package report

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/synth"
)

func TestCollaborationRenders(t *testing.T) {
	var b bytes.Buffer
	if err := Collaboration(&b, corpus.Data); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Coauthorship graph", "assortativity", "Mann-Whitney", "Team size"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestMultiplicityRenders(t *testing.T) {
	var b bytes.Buffer
	if err := Multiplicity(&b, corpus.Data, "SC17"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"Hypothesis", "Holm", "PC members vs authors", "survive"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
	// Exactly 11 hypothesis rows (header + separator + 11 + footer).
	if got := strings.Count(out, "reject") + strings.Count(out, "keep"); got < 22 {
		t.Errorf("only %d decision cells rendered", got)
	}
}

func TestTrajectoryRenders(t *testing.T) {
	var b bytes.Buffer
	if err := Trajectory(&b, corpus.Data); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Month", "36", "Gap", "exclude papers above"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestDistributionGapsRenders(t *testing.T) {
	var b bytes.Buffer
	if err := DistributionGaps(&b, corpus.Data); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"KS D", "GS publications", "h-index", "S2 publications", "PC member"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q", want)
		}
	}
}

func TestTrendRegressionsSectionRenders(t *testing.T) {
	c, err := synth.Generate(synth.FlagshipSeries(3))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := TrendRegressionsSection(&b, c.Data); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SC:", "ISC:", "pp/year"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
	// Single-edition corpus: graceful note, no error.
	var b2 bytes.Buffer
	if err := TrendRegressionsSection(&b2, corpus.Data); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "no series") {
		t.Errorf("single-year corpus should note the missing trend: %q", b2.String())
	}
}

func TestSubfieldsRenders(t *testing.T) {
	c, err := synth.Generate(synth.ExtendedSystems(2))
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := Subfields(&b, c.Data); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"FAR by systems subfield", "HPC", "Databases", "vs other systems subfields"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing %q", want)
		}
	}
	// All-HPC corpus: not-applicable error propagates for the caller.
	if err := Subfields(&bytes.Buffer{}, corpus.Data); err == nil {
		t.Error("single-subfield corpus should error")
	}
}
