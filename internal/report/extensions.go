package report

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Collaboration renders the future-work coauthorship-network analysis.
func Collaboration(w io.Writer, d *dataset.Dataset) error {
	r, err := core.CollaborationPatterns(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Coauthorship graph: %d authors, %d coauthor pairs; giant component %s of nodes\n",
		r.Nodes, r.Edges, Pct(r.GiantFraction))
	fmt.Fprintf(w, "Gender mixing: %d FF / %d FM / %d MM edges; assortativity %+.4f\n",
		r.Mixing.FF, r.Mixing.FM, r.Mixing.MM, r.Mixing.Assortativity)
	fmt.Fprintf(w, "  mixed-gender edge share: observed %s vs %s expected under random mixing\n",
		Pct(r.Mixing.ObservedFMShare), Pct(r.Mixing.ExpectedFMShare))
	fmt.Fprintf(w, "Distinct collaborators: women mean %.2f (median %.0f, n=%d) vs men mean %.2f (median %.0f, n=%d)\n",
		r.Degrees.FemaleMean, r.Degrees.FemaleMedian, r.Degrees.FemaleN,
		r.Degrees.MaleMean, r.Degrees.MaleMedian, r.Degrees.MaleN)
	fmt.Fprintf(w, "  Mann-Whitney: z = %.3f, p = %.4g, rank-biserial %+.3f\n",
		r.Degrees.MannWhitney.Z, r.Degrees.MannWhitney.P, r.Degrees.MannWhitney.RankBiserial)
	fmt.Fprintf(w, "Team size: female-led %.2f (n=%d) vs male-led %.2f (n=%d) — %s\n",
		r.Teams.FemaleLedMean, r.Teams.FemaleLedN,
		r.Teams.MaleLedMean, r.Teams.MaleLedN, r.Teams.Welch)
	return nil
}

// Multiplicity renders the Holm-Bonferroni correction over the paper's
// test family.
func Multiplicity(w io.Writer, d *dataset.Dataset, scID dataset.ConfID) error {
	r, err := core.FamilyCorrection(d, scID, 0)
	if err != nil {
		return err
	}
	t := NewTable("Hypothesis", "p", "raw", "Holm").AlignRight(1)
	mark := func(b bool) string {
		if b {
			return "reject"
		}
		return "keep"
	}
	for _, test := range r.Tests {
		if err := t.AddRow(test.Name, fmt.Sprintf("%.4g", test.P),
			mark(test.RawReject), mark(test.HolmReject)); err != nil {
			return err
		}
	}
	if err := t.RenderTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "alpha = %g: %d raw rejections, %d survive Holm-Bonferroni\n",
		r.Alpha, r.RawRejections, r.Survivors)
	return nil
}

// Policy renders the diversity-initiative contrast with Newcombe CIs on
// the differences.
func Policy(w io.Writer, d *dataset.Dataset) error {
	r, err := core.DiversityPolicy(d)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Diversity-chair venues: %v\n", r.WithPolicy)
	fmt.Fprintf(w, "Authors: with policy %s vs without %s — %s\n",
		r.FARWith, r.FARWithout, r.FARTest)
	if lo, hi, err := stats.DiffProportionCI(r.FARWith, r.FARWithout, 0.95); err == nil {
		fmt.Fprintf(w, "  95%% CI for the difference: [%+.4f, %+.4f]\n", lo, hi)
	}
	fmt.Fprintf(w, "Invited roles: with policy %s vs without %s — %s\n",
		r.InvitedWith, r.InvitedWithout, r.InvitedTest)
	if lo, hi, err := stats.DiffProportionCI(r.InvitedWith, r.InvitedWithout, 0.95); err == nil {
		fmt.Fprintf(w, "  95%% CI for the difference: [%+.4f, %+.4f]\n", lo, hi)
	}
	return nil
}

// ConferenceProfiles renders the one-stop per-conference summary table.
func ConferenceProfiles(w io.Writer, d *dataset.Dataset) error {
	profiles, err := core.ProfileAll(d)
	if err != nil {
		return err
	}
	t := NewTable("Conference", "FAR", "Lead", "Last", "PC", "Team", ">=1 woman", "Mean cites").
		AlignRight(1, 2, 3, 4, 5, 6, 7)
	for _, p := range profiles {
		if err := t.AddRow(p.Name,
			Pct(p.FAR.Ratio()), Pct(p.LeadFAR.Ratio()), Pct(p.LastFAR.Ratio()),
			Pct(p.PC.Ratio()),
			fmt.Sprintf("%.2f", p.MeanTeamSize),
			Pct(p.PapersWithWomen.Ratio()),
			fmt.Sprintf("%.1f", p.MeanCitations)); err != nil {
			return err
		}
	}
	return t.RenderTo(w)
}

// Linkage renders the GS name-disambiguation statistics.
func Linkage(w io.Writer, d *dataset.Dataset) error {
	r := core.GSLinkage(d)
	fmt.Fprintf(w, "Researchers: %d; unambiguous GS profiles: %d (%s)\n",
		r.Researchers, r.GSLinked, Pct(r.Coverage))
	fmt.Fprintf(w, "Distinct names: %d; namesake-shared names: %d covering %d researchers\n",
		r.DistinctNames, r.AmbiguousNames, r.NamesakeClashes)
	return nil
}

// Trajectory renders the reception-over-time follow-up.
func Trajectory(w io.Writer, d *dataset.Dataset) error {
	r, err := core.CitationTrajectory(d, 0)
	if err != nil {
		return err
	}
	t := NewTable("Month", "Female-led mean", "Male-led mean", "Gap").AlignRight(0, 1, 2, 3)
	for _, p := range r.Points {
		if err := t.AddRow(
			fmt.Sprintf("%.0f", p.Month),
			fmt.Sprintf("%.2f", p.MeanFemale),
			fmt.Sprintf("%.2f", p.MeanMale),
			fmt.Sprintf("%+.2f", p.MeanFemale-p.MeanMale)); err != nil {
			return err
		}
	}
	if err := t.RenderTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "(female-led means exclude papers above %d citations, as in §4.2)\n", r.OutlierThreshold)
	return nil
}

// DistributionGaps renders the KS formalization of the Figs 3-5 right-shift.
func DistributionGaps(w io.Writer, d *dataset.Dataset) error {
	t := NewTable("Metric", "Role", "KS D", "p", "male right-shift").AlignRight(2, 3)
	for _, m := range []core.Metric{core.MetricGSPublications, core.MetricHIndex, core.MetricS2Publications} {
		for _, role := range []dataset.Role{dataset.RoleAuthor, dataset.RolePCMember} {
			gap, err := core.DistributionGap(d, m, role)
			if err != nil {
				return err
			}
			shift := "no"
			if gap.MaleShiftRight {
				shift = "yes"
			}
			if err := t.AddRow(m.String(), role.String(),
				fmt.Sprintf("%.4f", gap.KS.D), fmt.Sprintf("%.4g", gap.KS.P), shift); err != nil {
				return err
			}
		}
	}
	return t.RenderTo(w)
}

// Subfields renders the extended-corpus subfield comparison.
func Subfields(w io.Writer, d *dataset.Dataset) error {
	r, err := core.SubfieldComparison(d)
	if err != nil {
		return err
	}
	chart := NewBarChart("FAR by systems subfield")
	for _, row := range r.Rows {
		chart.Add(fmt.Sprintf("%s (%d venues)", row.Subfield, row.Venues),
			row.FAR.Ratio(), row.FAR.String())
	}
	if err := chart.RenderTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "HPC %s vs other systems subfields %s — %s\n",
		r.HPC, r.Others, r.HPCVsRest)
	return nil
}

// TrendRegressionsSection renders the FAR-on-year slope tests for the
// flagship series.
func TrendRegressionsSection(w io.Writer, d *dataset.Dataset) error {
	points := core.FlagshipTrend(d)
	regs, err := core.TrendRegressions(points)
	if err != nil {
		return err
	}
	if len(regs) == 0 {
		_, err := fmt.Fprintln(w, "no series with enough editions for a trend test")
		return err
	}
	for _, reg := range regs {
		fmt.Fprintf(w, "%s: FAR slope %+.4f pp/year (t = %.3f, p = %.3g, R2 = %.3f) over %d editions\n",
			reg.Series, 100*reg.Fit.Slope, reg.Fit.T, reg.Fit.P, reg.Fit.R2, reg.Fit.N)
	}
	return nil
}
