package synth

import (
	"testing"

	"repro/internal/gender"
	"repro/internal/stats"
)

// TestCountrySamplerPreservesMarginals: the gender-conditional reweighting
// must leave the overall country mix intact — women are redistributed
// across countries, not invented in some and erased in others.
func TestCountrySamplerPreservesMarginals(t *testing.T) {
	cfg := Default2017(1)
	g := &gen{cfg: cfg, rng: randFor(77)}
	g.buildCountrySamplers()
	s := g.samplers["IPDPS17"] // mild host boost (US x1.2)

	const n = 60000
	counts := map[string]float64{}
	for i := 0; i < n; i++ {
		// Draw with the corpus' true gender mix (~10% female).
		truth := gender.Male
		if g.rng.Float64() < 0.10 {
			truth = gender.Female
		}
		counts[s.draw(g.rng, truth)]++
	}
	// Compare realized counts against the configured weights (host boost
	// applied) with a goodness-of-fit test; small cells are pooled so the
	// expected counts stay large enough for the chi-squared approximation.
	var totalW float64
	boosted := func(cs CountrySpec) float64 {
		w := cs.Weight
		if cs.Code == "US" {
			w *= 1.2
		}
		return w
	}
	for _, cs := range cfg.Countries {
		totalW += boosted(cs)
	}
	var obs, probs []float64
	var minor, minorP float64
	for _, cs := range cfg.Countries {
		p := boosted(cs) / totalW
		if p < 0.01 {
			minor += counts[cs.Code]
			minorP += p
			continue
		}
		obs = append(obs, counts[cs.Code])
		probs = append(probs, p)
	}
	obs = append(obs, minor)
	probs = append(probs, minorP)
	res, err := stats.ChiSquaredGoodnessOfFit(obs, probs)
	if err != nil {
		t.Fatal(err)
	}
	if res.P < 0.001 {
		t.Errorf("country marginal distorted: chi2 = %.2f, p = %g", res.ChiSq, res.P)
	}
}

// TestCountrySamplerGenderConditioning: women draw high-FAR countries more
// often than men do, the mechanism behind Table 2's per-country ratios.
func TestCountrySamplerGenderConditioning(t *testing.T) {
	cfg := Default2017(1)
	g := &gen{cfg: cfg, rng: randFor(13)}
	g.buildCountrySamplers()
	s := g.samplers["SC17"]

	const n = 40000
	fUS, mUS, fJP, mJP := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		if s.draw(g.rng, gender.Female) == "US" {
			fUS++
		}
		if s.draw(g.rng, gender.Male) == "US" {
			mUS++
		}
		if s.draw(g.rng, gender.Female) == "JP" {
			fJP++
		}
		if s.draw(g.rng, gender.Male) == "JP" {
			mJP++
		}
	}
	// US has above-average FAR (15.4% vs ~12% weighted mean): women must
	// land there more often than men.
	if !(fUS > mUS) {
		t.Errorf("US draws: %d female vs %d male; want female-heavy", fUS, mUS)
	}
	// Japan has the lowest FAR (1.6%): women land there far less often.
	if !(float64(fJP) < 0.4*float64(mJP)) {
		t.Errorf("JP draws: %d female vs %d male; want strong male skew", fJP, mJP)
	}
}
