// Package synth generates the synthetic corpus standing in for the paper's
// manually scraped dataset. Every knob is calibrated to a number the paper
// publishes (Table 1 sizes, per-role female ratios, geography, sector and
// experience marginals, citation statistics), so the downstream analyses
// reproduce the paper's tables and figures in shape. Generation is
// deterministic for a given seed.
package synth

import (
	"time"

	"repro/internal/dataset"
)

// RoleQuota fixes the size of a conference role roster and how many of its
// members are women (quota sampling keeps the tiny rosters — 4 PC chairs, 3
// keynotes — exactly on the paper's zero-women counts).
type RoleQuota struct {
	Total int
	Women int
}

// ConfSpec calibrates one conference edition.
type ConfSpec struct {
	ID             dataset.ConfID
	Name           string
	Year           int
	Date           time.Time
	CountryCode    string
	Papers         int
	AuthorSlots    int     // Table 1 "Authors" column
	AcceptanceRate float64 // Table 1 "Acceptance"

	DoubleBlind     bool
	DiversityChair  bool
	CodeOfConduct   bool
	Childcare       bool
	WomenAttendance float64 // reported attendance demographic, 0 = unshared

	FAR     float64 // target female ratio among author slots
	LeadFAR float64 // target female ratio among lead authors
	LastFAR float64 // target female ratio among last authors

	PCChairs      RoleQuota
	PCMembers     RoleQuota
	Keynotes      RoleQuota
	Panelists     RoleQuota
	SessionChairs RoleQuota

	// HPCFrac is the fraction of this conference's papers that carry the
	// manual "directly HPC" topic tag of §4.1.
	HPCFrac float64

	// HostBoost multiplies the host region's weight in the country mix.
	HostBoost float64

	// Subfield labels the venue's systems subfield for the 56-conference
	// extension ("" defaults to "HPC" for the core corpora).
	Subfield string
}

// CountrySpec calibrates one country's share of the researcher population
// and its female researcher ratio (Table 2 / Fig 7 targets).
type CountrySpec struct {
	Code   string
	Weight float64 // relative share of researchers (normalized at use)
	FAR    float64 // female ratio among this country's researchers
}

// Config is the full generator calibration.
type Config struct {
	Seed  uint64
	Confs []ConfSpec

	Countries []CountrySpec

	// Sector mix (must sum to ~1): the paper's 8.6 / 72.8 / 18.6 split.
	SectorEDU float64
	SectorCOM float64
	SectorGOV float64
	// ComWomenPenalty scales the probability that a woman lands in
	// industry, reproducing Fig 8's slightly lower COM ratios.
	ComWomenPenalty float64

	// Gender-assignment pipeline targets (§2): manual / automated-eligible
	// coverage. The residue stays Unknown.
	ManualEvidenceRate float64 // P(conclusive web evidence) = 0.9518
	ConfidentNameRate  float64 // P(confident forename | no evidence) ≈ 0.37

	// Author-slot reuse probabilities produce the unique-vs-slot gaps
	// (1885 unique coauthors; 908 unique vs 1220 PC slots).
	AuthorReuse float64 // P(an author slot reuses an existing researcher)
	PCReuse     float64 // P(a PC slot reuses an existing researcher)

	// Experience model (latent log-scale shifts feed scholar.CareerModel).
	PubMu        float64 // base log publication count
	PubSigma     float64
	CiteMu       float64 // per-paper citation log-mean
	CiteSigma    float64
	CitePZero    float64
	MaleShift    float64 // latent shift for men (the "pull to the right")
	FemaleShift  float64 // latent shift for women
	PCBoost      float64 // latent shift for researchers recruited as PC members
	LatentSigma  float64 // researcher-to-researcher latent spread
	GSBaseCover  float64 // base probability of a GS profile at latent 0
	GSCoverSlope float64 // coverage increase per unit latent

	// Paper-citation model at 36 months by lead-author gender (§4.2).
	CiteLeadMMu    float64
	CiteLeadMSigma float64
	CiteLeadFMu    float64
	CiteLeadFSigma float64
	CitePZeroPaper float64
	// Outlier injection: the >450-citation non-HPC female-led paper.
	OutlierCitations int
	OutlierConf      dataset.ConfID

	// BernoulliGenders switches gender slot assignment from quota
	// sampling (default; per-conference ratios land on target) to
	// independent Bernoulli draws. Kept for the ablation bench showing
	// why quota sampling is needed to pin small-roster counts.
	BernoulliGenders bool

	// ManualErrRate injects errors into the manual gender-assignment
	// stage (the paper's survey validated it as error-free, so the
	// default is 0). Used by the failure-injection tests to check that
	// the survey machinery detects a corrupted pipeline.
	ManualErrRate float64
}

// Default2017 returns the calibration for the paper's main corpus: the
// nine 2017 conferences of Table 1 with every published marginal.
func Default2017(seed uint64) Config {
	d := func(m time.Month, day int) time.Time {
		return time.Date(2017, m, day, 0, 0, 0, 0, time.UTC)
	}
	return Config{
		Seed: seed,
		Confs: []ConfSpec{
			// Table 1, with role quotas reconstructed from §3.2-§3.3:
			// 36 PC chairs, 1220 PC slots (SC 760 at 29.6% women = 225),
			// 30 keynotes (4 confs with zero women), 106 panelists,
			// 158 session chairs (HPDC+HPCC+HiPC = 45 with zero women,
			// SC near parity).
			{
				ID: "CCGRID17", Name: "CCGrid", Year: 2017, Date: d(time.May, 14),
				CountryCode: "ES", Papers: 72, AuthorSlots: 296, AcceptanceRate: 0.252,
				FAR: 0.105, LeadFAR: 0.118, LastFAR: 0.088,
				PCChairs: RoleQuota{4, 1}, PCMembers: RoleQuota{130, 21},
				Keynotes: RoleQuota{3, 1}, Panelists: RoleQuota{12, 2},
				SessionChairs: RoleQuota{18, 2}, HPCFrac: 0.30, HostBoost: 2.5,
			},
			{
				ID: "IPDPS17", Name: "IPDPS", Year: 2017, Date: d(time.May, 29),
				CountryCode: "US", Papers: 116, AuthorSlots: 447, AcceptanceRate: 0.228,
				FAR: 0.100, LeadFAR: 0.115, LastFAR: 0.085,
				PCChairs: RoleQuota{4, 1}, PCMembers: RoleQuota{160, 26},
				Keynotes: RoleQuota{3, 1}, Panelists: RoleQuota{14, 2},
				SessionChairs: RoleQuota{22, 3}, HPCFrac: 0.35, HostBoost: 1.2,
			},
			{
				ID: "ISC17", Name: "ISC", Year: 2017, Date: d(time.June, 18),
				CountryCode: "DE", Papers: 22, AuthorSlots: 99, AcceptanceRate: 0.333,
				DoubleBlind: true, DiversityChair: true, CodeOfConduct: true,
				FAR: 0.0577, LeadFAR: 0.060, LastFAR: 0.050,
				PCChairs: RoleQuota{4, 1}, PCMembers: RoleQuota{95, 15},
				Keynotes: RoleQuota{4, 1}, Panelists: RoleQuota{10, 1},
				SessionChairs: RoleQuota{8, 1}, HPCFrac: 0.55, HostBoost: 2.0,
			},
			{
				ID: "HPDC17", Name: "HPDC", Year: 2017, Date: d(time.June, 28),
				CountryCode: "US", Papers: 19, AuthorSlots: 76, AcceptanceRate: 0.190,
				FAR: 0.095, LeadFAR: 0.110, LastFAR: 0.080,
				PCChairs: RoleQuota{4, 0}, PCMembers: RoleQuota{90, 14},
				Keynotes: RoleQuota{2, 0}, Panelists: RoleQuota{8, 1},
				SessionChairs: RoleQuota{12, 0}, HPCFrac: 0.45, HostBoost: 1.2,
			},
			{
				ID: "ICPP17", Name: "ICPP", Year: 2017, Date: d(time.August, 14),
				CountryCode: "UK", Papers: 60, AuthorSlots: 234, AcceptanceRate: 0.286,
				FAR: 0.105, LeadFAR: 0.118, LastFAR: 0.090,
				PCChairs: RoleQuota{4, 0}, PCMembers: RoleQuota{120, 19},
				Keynotes: RoleQuota{3, 0}, Panelists: RoleQuota{12, 1},
				SessionChairs: RoleQuota{16, 2}, HPCFrac: 0.30, HostBoost: 2.0,
			},
			{
				ID: "EUROPAR17", Name: "EuroPar", Year: 2017, Date: d(time.August, 30),
				CountryCode: "ES", Papers: 50, AuthorSlots: 179, AcceptanceRate: 0.284,
				FAR: 0.110, LeadFAR: 0.125, LastFAR: 0.095,
				PCChairs: RoleQuota{4, 1}, PCMembers: RoleQuota{115, 18},
				Keynotes: RoleQuota{4, 1}, Panelists: RoleQuota{10, 1},
				SessionChairs: RoleQuota{19, 2}, HPCFrac: 0.30, HostBoost: 2.5,
			},
			{
				ID: "SC17", Name: "SC", Year: 2017, Date: d(time.November, 13),
				CountryCode: "US", Papers: 61, AuthorSlots: 325, AcceptanceRate: 0.187,
				DoubleBlind: true, DiversityChair: true, CodeOfConduct: true,
				Childcare: true, WomenAttendance: 0.14,
				FAR: 0.0812, LeadFAR: 0.065, LastFAR: 0.070,
				PCChairs: RoleQuota{4, 2}, PCMembers: RoleQuota{225, 67},
				Keynotes: RoleQuota{4, 2}, Panelists: RoleQuota{24, 6},
				SessionChairs: RoleQuota{30, 14}, HPCFrac: 0.50, HostBoost: 1.2,
			},
			{
				ID: "HIPC17", Name: "HiPC", Year: 2017, Date: d(time.December, 18),
				CountryCode: "IN", Papers: 41, AuthorSlots: 168, AcceptanceRate: 0.223,
				FAR: 0.090, LeadFAR: 0.100, LastFAR: 0.075,
				PCChairs: RoleQuota{4, 0}, PCMembers: RoleQuota{130, 20},
				Keynotes: RoleQuota{3, 0}, Panelists: RoleQuota{8, 1},
				SessionChairs: RoleQuota{15, 0}, HPCFrac: 0.35, HostBoost: 8.0,
			},
			{
				ID: "HPCC17", Name: "HPCC", Year: 2017, Date: d(time.December, 18),
				CountryCode: "TH", Papers: 77, AuthorSlots: 287, AcceptanceRate: 0.438,
				FAR: 0.120, LeadFAR: 0.130, LastFAR: 0.100,
				PCChairs: RoleQuota{4, 0}, PCMembers: RoleQuota{155, 25},
				Keynotes: RoleQuota{4, 0}, Panelists: RoleQuota{8, 1},
				SessionChairs: RoleQuota{18, 0}, HPCFrac: 0.30, HostBoost: 6.0,
			},
		},
		Countries:          defaultCountries(),
		SectorEDU:          0.728,
		SectorCOM:          0.086,
		SectorGOV:          0.186,
		ComWomenPenalty:    0.80,
		ManualEvidenceRate: 0.9518,
		ConfidentNameRate:  0.37,
		AuthorReuse:        0.107,
		PCReuse:            0.30,
		PubMu:              4.1,
		PubSigma:           1.0,
		CiteMu:             1.7,
		CiteSigma:          1.25,
		CitePZero:          0.10,
		MaleShift:          0.15,
		FemaleShift:        -0.18,
		PCBoost:            0.55,
		LatentSigma:        0.45,
		GSBaseCover:        0.66,
		GSCoverSlope:       0.10,
		CiteLeadMMu:        2.14,
		CiteLeadMSigma:     0.80,
		CiteLeadFMu:        1.78,
		CiteLeadFSigma:     0.80,
		CitePZeroPaper:     0.10,
		OutlierCitations:   462,
		OutlierConf:        "CCGRID17",
	}
}

// defaultCountries is the researcher country mix with per-country female
// ratios, calibrated to Table 2 ("Top ten countries by number of
// researchers") and Fig 7 (the 25 countries with at least 10 authors).
// Weights are relative researcher shares; FARs are the per-country female
// ratios (e.g. US 15.38%, Japan 1.59%, Israel drives Western Asia's
// 27.27%).
func defaultCountries() []CountrySpec {
	return []CountrySpec{
		{"US", 0.465, 0.1538},
		{"CN", 0.066, 0.1043},
		{"FR", 0.049, 0.1361},
		{"DE", 0.046, 0.0863},
		{"ES", 0.041, 0.0894},
		{"IN", 0.024, 0.0563},
		{"CH", 0.021, 0.1406},
		{"JP", 0.021, 0.0159},
		{"GB", 0.017, 0.0769},
		{"CA", 0.015, 0.0682},
		{"IT", 0.015, 0.1000},
		{"BR", 0.013, 0.0900},
		{"AU", 0.009, 0.0833},
		{"NL", 0.009, 0.0800},
		{"KR", 0.008, 0.0500},
		{"SE", 0.008, 0.0800},
		{"IL", 0.008, 0.2727},
		{"TW", 0.005, 0.0900},
		{"PL", 0.005, 0.0500},
		{"SG", 0.007, 0.0500},
		{"GR", 0.004, 0.1200},
		{"AT", 0.004, 0.0800},
		{"BE", 0.004, 0.0900},
		{"TR", 0.004, 0.1500},
		{"RU", 0.004, 0.0200},
		{"HK", 0.004, 0.0800},
		{"DK", 0.003, 0.0700},
		{"NO", 0.003, 0.0700},
		{"FI", 0.003, 0.0800},
		{"PT", 0.003, 0.0900},
		{"CZ", 0.003, 0.0400},
		{"SA", 0.003, 0.0500},
		{"TH", 0.003, 0.0800},
		{"IE", 0.002, 0.0800},
		{"MX", 0.002, 0.1000},
		{"AR", 0.002, 0.0900},
		{"CL", 0.002, 0.0800},
		{"ZA", 0.002, 0.0500},
		{"NZ", 0.002, 0.0800},
		{"HU", 0.002, 0.0400},
		{"RO", 0.002, 0.0600},
		{"EG", 0.001, 0.0500},
		{"NG", 0.001, 0.2500},
		{"UA", 0.001, 0.0300},
		{"PK", 0.001, 0.0400},
		{"VN", 0.001, 0.0700},
		{"MY", 0.001, 0.1200},
		{"AE", 0.001, 0.1000},
		{"QA", 0.001, 0.1000},
		{"CR", 0.0005, 0.5000},
		{"KZ", 0.0005, 0.0500},
		{"MA", 0.0005, 0.1000},
	}
}
