package synth

import (
	"fmt"
	"time"

	"repro/internal/dataset"
)

// FlagshipSeries returns the calibration for the §3.4 case study: SC and
// ISC across the five-year window 2016-2020. FAR targets follow the
// paper's reported ranges (SC around 8-9% with attendance steady at
// 13-14%, except SC's self-reported 12% for 2018; ISC between 5% and 9%).
func FlagshipSeries(seed uint64) Config {
	cfg := Default2017(seed)
	cfg.Confs = nil

	scFAR := map[int]float64{2016: 0.086, 2017: 0.0812, 2018: 0.090, 2019: 0.079, 2020: 0.088}
	scAtt := map[int]float64{2016: 0.135, 2017: 0.14, 2018: 0.12, 2019: 0.135, 2020: 0.14}
	iscFAR := map[int]float64{2016: 0.065, 2017: 0.0577, 2018: 0.075, 2019: 0.090, 2020: 0.052}

	for year := 2016; year <= 2020; year++ {
		cfg.Confs = append(cfg.Confs, ConfSpec{
			ID:   dataset.ConfID(fmt.Sprintf("SC%02d", year%100)),
			Name: "SC", Year: year,
			Date:        time.Date(year, time.November, 13, 0, 0, 0, 0, time.UTC),
			CountryCode: "US", Papers: 61, AuthorSlots: 325, AcceptanceRate: 0.19,
			DoubleBlind: true, DiversityChair: true, CodeOfConduct: true, Childcare: true,
			WomenAttendance: scAtt[year],
			FAR:             scFAR[year], LeadFAR: scFAR[year] * 0.85, LastFAR: scFAR[year] * 0.85,
			PCChairs: RoleQuota{4, 2}, PCMembers: RoleQuota{300, 85},
			Keynotes: RoleQuota{4, 2}, Panelists: RoleQuota{20, 5},
			SessionChairs: RoleQuota{30, 13}, HPCFrac: 0.80, HostBoost: 1.2,
		}, ConfSpec{
			ID:   dataset.ConfID(fmt.Sprintf("ISC%02d", year%100)),
			Name: "ISC", Year: year,
			Date:        time.Date(year, time.June, 18, 0, 0, 0, 0, time.UTC),
			CountryCode: "DE", Papers: 22, AuthorSlots: 99, AcceptanceRate: 0.33,
			DoubleBlind: true, DiversityChair: true, CodeOfConduct: true,
			FAR: iscFAR[year], LeadFAR: iscFAR[year], LastFAR: iscFAR[year] * 0.9,
			PCChairs: RoleQuota{4, 1}, PCMembers: RoleQuota{50, 8},
			Keynotes: RoleQuota{4, 1}, Panelists: RoleQuota{10, 1},
			SessionChairs: RoleQuota{8, 1}, HPCFrac: 0.85, HostBoost: 2.0,
		})
	}
	// Only one outlier exists in the 2017 corpus; the series has none.
	cfg.OutlierCitations = 0
	cfg.OutlierConf = ""
	return cfg
}
