package synth

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/affil"
	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/scholar"
)

// Corpus bundles the generated dataset with the simulated bibliometric
// services backing it.
type Corpus struct {
	Data *dataset.Dataset
	GS   *scholar.Directory
	S2   *scholar.SemanticScholar
	Cfg  Config
}

// Generate builds a corpus from the calibration. The same Config (including
// Seed) always produces the identical corpus.
func Generate(cfg Config) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &gen{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, cfg.Seed^0x9e3779b97f4a7c15)),
		ds:  dataset.New(),
		gs:  scholar.NewDirectory(),
		s2:  scholar.NewSemanticScholar(),
		cascade: gender.Cascade{
			Manual:    gender.ManualInvestigator{ErrRate: cfg.ManualErrRate},
			Automated: gender.BankGenderizer{},
		},
		pool:   map[gender.Gender][]*dataset.Person{},
		pcPool: map[gender.Gender][]*dataset.Person{},
	}
	g.career = scholar.CareerModel{
		PubMu:     cfg.PubMu,
		PubSigma:  cfg.PubSigma,
		CiteMu:    cfg.CiteMu,
		CiteSigma: cfg.CiteSigma,
		PZero:     cfg.CitePZero,
	}
	g.buildCountrySamplers()
	for i := range cfg.Confs {
		if err := g.genConference(&cfg.Confs[i]); err != nil {
			return nil, err
		}
	}
	g.injectOutlier()
	if err := g.ds.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated corpus failed validation: %w", err)
	}
	return &Corpus{Data: g.ds, GS: g.gs, S2: g.s2, Cfg: cfg}, nil
}

// Validate checks the calibration for internal consistency.
func (c Config) Validate() error {
	if len(c.Confs) == 0 {
		return fmt.Errorf("synth: no conferences configured")
	}
	if len(c.Countries) == 0 {
		return fmt.Errorf("synth: no countries configured")
	}
	for _, cs := range c.Countries {
		if cs.Weight <= 0 {
			return fmt.Errorf("synth: country %s has nonpositive weight", cs.Code)
		}
		if cs.FAR < 0 || cs.FAR > 1 {
			return fmt.Errorf("synth: country %s FAR %g outside [0,1]", cs.Code, cs.FAR)
		}
	}
	for _, conf := range c.Confs {
		if conf.Papers <= 0 {
			return fmt.Errorf("synth: %s has no papers", conf.ID)
		}
		if conf.AuthorSlots < 2*conf.Papers {
			return fmt.Errorf("synth: %s needs at least %d author slots for %d papers, has %d",
				conf.ID, 2*conf.Papers, conf.Papers, conf.AuthorSlots)
		}
		if conf.AcceptanceRate <= 0 || conf.AcceptanceRate > 1 {
			return fmt.Errorf("synth: %s acceptance rate %g outside (0,1]", conf.ID, conf.AcceptanceRate)
		}
		for _, q := range []RoleQuota{conf.PCChairs, conf.PCMembers, conf.Keynotes, conf.Panelists, conf.SessionChairs} {
			if q.Women > q.Total || q.Women < 0 || q.Total < 0 {
				return fmt.Errorf("synth: %s role quota %d women of %d invalid", conf.ID, q.Women, q.Total)
			}
		}
		for _, far := range []float64{conf.FAR, conf.LeadFAR, conf.LastFAR, conf.HPCFrac} {
			if far < 0 || far > 1 {
				return fmt.Errorf("synth: %s ratio %g outside [0,1]", conf.ID, far)
			}
		}
	}
	probs := []float64{c.SectorEDU, c.SectorCOM, c.SectorGOV,
		c.ManualEvidenceRate, c.ConfidentNameRate, c.AuthorReuse, c.PCReuse,
		c.ManualErrRate}
	for _, p := range probs {
		if p < 0 || p > 1 {
			return fmt.Errorf("synth: probability %g outside [0,1]", p)
		}
	}
	if s := c.SectorEDU + c.SectorCOM + c.SectorGOV; math.Abs(s-1) > 1e-6 {
		return fmt.Errorf("synth: sector mix sums to %g, want 1", s)
	}
	return nil
}

type gen struct {
	cfg     Config
	rng     *rand.Rand
	ds      *dataset.Dataset
	gs      *scholar.Directory
	s2      *scholar.SemanticScholar
	cascade gender.Cascade
	career  scholar.CareerModel

	nextPerson int
	pool       map[gender.Gender][]*dataset.Person
	// pcPool holds researchers who have already served on some PC; PC
	// reuse draws from it so the same people recur across committees (the
	// paper's 908 unique vs 1220 PC slots).
	pcPool map[gender.Gender][]*dataset.Person

	// femaleLeadPapers remembers one female-led paper per conference for
	// outlier injection.
	femaleLeadPaper map[dataset.ConfID]*dataset.Paper

	// country samplers: per-conference cumulative tables by gender.
	samplers map[dataset.ConfID]*countrySampler
}

type countrySampler struct {
	codes []string
	cumF  []float64
	cumM  []float64
}

func (g *gen) buildCountrySamplers() {
	g.samplers = make(map[dataset.ConfID]*countrySampler, len(g.cfg.Confs))
	g.femaleLeadPaper = make(map[dataset.ConfID]*dataset.Paper)
	// Average FAR across the weighted mix, used to renormalize the
	// per-gender weights so the country marginal is preserved.
	var wSum, farSum float64
	for _, cs := range g.cfg.Countries {
		wSum += cs.Weight
		farSum += cs.Weight * cs.FAR
	}
	avgFAR := farSum / wSum
	for i := range g.cfg.Confs {
		conf := &g.cfg.Confs[i]
		s := &countrySampler{}
		var totF, totM float64
		for _, cs := range g.cfg.Countries {
			w := cs.Weight
			if cs.Code == conf.CountryCode && conf.HostBoost > 0 {
				w *= conf.HostBoost
			}
			wf := w * cs.FAR / avgFAR
			wm := w * (1 - cs.FAR) / (1 - avgFAR)
			totF += wf
			totM += wm
			s.codes = append(s.codes, cs.Code)
			s.cumF = append(s.cumF, totF)
			s.cumM = append(s.cumM, totM)
		}
		// Normalize cumulative tables to 1.
		for j := range s.cumF {
			s.cumF[j] /= totF
			s.cumM[j] /= totM
		}
		g.samplers[conf.ID] = s
	}
}

func (s *countrySampler) draw(rng *rand.Rand, truth gender.Gender) string {
	cum := s.cumM
	if truth == gender.Female {
		cum = s.cumF
	}
	u := rng.Float64()
	// Linear scan is fine: ~50 countries, generation is one-time.
	for i, c := range cum {
		if u <= c {
			return s.codes[i]
		}
	}
	return s.codes[len(s.codes)-1]
}

// newPerson mints a researcher with the given true gender for a
// conference, optionally with the PC experience boost.
func (g *gen) newPerson(truth gender.Gender, conf *ConfSpec, pcRole bool) *dataset.Person {
	g.nextPerson++
	id := dataset.PersonID(fmt.Sprintf("r%05d", g.nextPerson))
	country := g.samplers[conf.ID].draw(g.rng, truth)
	origin := originOf(country)

	// Web evidence decides the assignment path (§2 coverage targets).
	var ev gender.WebEvidence
	conclusive := g.rng.Float64() < g.cfg.ManualEvidenceRate
	if conclusive {
		if g.rng.Float64() < 0.6 {
			ev.HasPronounPage = true
		} else {
			ev.HasPhoto = true
		}
	}
	confident := conclusive && g.rng.Float64() < 0.8 ||
		!conclusive && g.rng.Float64() < g.cfg.ConfidentNameRate
	forename := drawForename(g.rng, origin, truth, confident)
	surname := drawSurname(g.rng, origin)
	var flip func(p float64) bool
	if g.cfg.ManualErrRate > 0 {
		flip = func(p float64) bool { return g.rng.Float64() < p }
	}
	asg := g.cascade.Assign(truth, ev, forename, country, flip)

	sector := g.drawSector(truth)
	affiliation, domain := makeAffiliation(g.rng, country, sector)
	email := makeEmail(forename, surname, domain)

	// Latent experience: role base + gender shift + noise.
	latent := g.rng.NormFloat64() * g.cfg.LatentSigma
	if pcRole {
		latent += g.cfg.PCBoost
	}
	if truth == gender.Male {
		latent += g.cfg.MaleShift
	} else {
		latent += g.cfg.FemaleShift
	}
	careerVec := g.career.DrawCareer(g.rng, latent)

	p := &dataset.Person{
		ID:           id,
		Name:         titleCase(forename) + " " + surname,
		Forename:     titleCase(forename),
		TrueGender:   truth,
		Gender:       asg.Gender,
		AssignMethod: asg.Method,
		Email:        email,
		Affiliation:  affiliation,
		CountryCode:  country,
		Sector:       sector,
	}
	// Google Scholar linkage, biased so unlinked researchers skew junior.
	pCover := g.cfg.GSBaseCover + g.cfg.GSCoverSlope*latent
	if pCover < 0.05 {
		pCover = 0.05
	} else if pCover > 0.98 {
		pCover = 0.98
	}
	if g.rng.Float64() < pCover {
		p.HasGSProfile = true
		p.GS = scholar.BuildProfile(careerVec)
		if err := g.gs.Register(string(id), p.GS); err != nil {
			panic(err) // BuildProfile output is valid by construction
		}
	}
	// Semantic Scholar has universal coverage.
	if err := g.s2.RegisterFromTruth(g.rng, string(id), len(careerVec), scholar.DefaultNoise); err != nil {
		panic(err)
	}
	if n, ok := g.s2.PastPublications(string(id)); ok {
		p.HasS2 = true
		p.S2Pubs = n
	}
	if err := g.ds.AddPerson(p); err != nil {
		panic(err) // IDs are sequential, duplicates impossible
	}
	g.pool[truth] = append(g.pool[truth], p)
	return p
}

// drawSector samples a work sector; women are slightly less likely to land
// in industry (Fig 8's COM dip among PC members).
func (g *gen) drawSector(truth gender.Gender) affil.Sector {
	com := g.cfg.SectorCOM
	if truth == gender.Female {
		com *= g.cfg.ComWomenPenalty
	}
	total := g.cfg.SectorEDU + com + g.cfg.SectorGOV
	u := g.rng.Float64() * total
	switch {
	case u < g.cfg.SectorEDU:
		return affil.EDU
	case u < g.cfg.SectorEDU+com:
		return affil.COM
	default:
		return affil.GOV
	}
}

// reuse returns an existing researcher of the given true gender not already
// in the exclude set, or nil if none can be found quickly. PC slots draw
// from the PC pool first so committee membership recurs across conferences.
func (g *gen) reuse(truth gender.Gender, pcRole bool, exclude map[dataset.PersonID]bool) *dataset.Person {
	pools := [][]*dataset.Person{g.pool[truth]}
	if pcRole {
		pools = [][]*dataset.Person{g.pcPool[truth], g.pool[truth]}
	}
	for _, pool := range pools {
		if len(pool) == 0 {
			continue
		}
		for try := 0; try < 6; try++ {
			p := pool[g.rng.IntN(len(pool))]
			if !exclude[p.ID] {
				return p
			}
		}
	}
	return nil
}

// pickPerson fills one slot: reuse with probability reuseP, else mint.
func (g *gen) pickPerson(truth gender.Gender, conf *ConfSpec, pcRole bool, reuseP float64, exclude map[dataset.PersonID]bool) *dataset.Person {
	if g.rng.Float64() < reuseP {
		if p := g.reuse(truth, pcRole, exclude); p != nil {
			return p
		}
	}
	return g.newPerson(truth, conf, pcRole)
}

// genderSlots builds a shuffled boolean slate with `women` true entries out
// of `total` — quota sampling, so tiny rosters land exactly on target. In
// Bernoulli mode (ablation) each slot is an independent draw at the same
// rate, which lets small rosters drift off target.
func (g *gen) genderSlots(women, total int) []bool {
	slots := make([]bool, total)
	if g.cfg.BernoulliGenders {
		p := float64(women) / float64(maxInt(total, 1))
		for i := range slots {
			slots[i] = g.rng.Float64() < p
		}
		return slots
	}
	for i := 0; i < women && i < total; i++ {
		slots[i] = true
	}
	g.rng.Shuffle(total, func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
	return slots
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func boolGender(female bool) gender.Gender {
	if female {
		return gender.Female
	}
	return gender.Male
}

func (g *gen) genConference(conf *ConfSpec) error {
	subfield := conf.Subfield
	if subfield == "" {
		subfield = "HPC"
	}
	c := &dataset.Conference{
		ID:              conf.ID,
		Name:            conf.Name,
		Year:            conf.Year,
		Date:            conf.Date,
		Subfield:        subfield,
		CountryCode:     conf.CountryCode,
		Submitted:       int(math.Round(float64(conf.Papers) / conf.AcceptanceRate)),
		AcceptanceRate:  conf.AcceptanceRate,
		DoubleBlind:     conf.DoubleBlind,
		DiversityChair:  conf.DiversityChair,
		CodeOfConduct:   conf.CodeOfConduct,
		Childcare:       conf.Childcare,
		WomenAttendance: conf.WomenAttendance,
	}
	if err := g.ds.AddConference(c); err != nil {
		return err
	}

	// --- Papers and authors (quota-sampled genders per position). ---
	sizes := g.paperSizes(conf.Papers, conf.AuthorSlots)
	leadF := int(math.Round(conf.LeadFAR * float64(conf.Papers)))
	lastF := int(math.Round(conf.LastFAR * float64(conf.Papers)))
	middleSlots := conf.AuthorSlots - 2*conf.Papers
	middleF := int(math.Round(conf.FAR*float64(conf.AuthorSlots))) - leadF - lastF
	if middleF < 0 {
		middleF = 0
	}
	if middleF > middleSlots {
		middleF = middleSlots
	}
	leads := g.genderSlots(leadF, conf.Papers)
	lasts := g.genderSlots(lastF, conf.Papers)
	middles := g.genderSlots(middleF, middleSlots)
	mi := 0

	mCites := scholar.CitationModel{Mu: g.cfg.CiteLeadMMu, Sigma: g.cfg.CiteLeadMSigma, PZero: g.cfg.CitePZeroPaper}
	fCites := scholar.CitationModel{Mu: g.cfg.CiteLeadFMu, Sigma: g.cfg.CiteLeadFSigma, PZero: g.cfg.CitePZeroPaper}

	for i := 0; i < conf.Papers; i++ {
		onPaper := make(map[dataset.PersonID]bool, sizes[i])
		authors := make([]dataset.PersonID, 0, sizes[i])
		add := func(truth gender.Gender) {
			p := g.pickPerson(truth, conf, false, g.cfg.AuthorReuse, onPaper)
			onPaper[p.ID] = true
			authors = append(authors, p.ID)
		}
		add(boolGender(leads[i]))
		for k := 0; k < sizes[i]-2; k++ {
			add(boolGender(middles[mi]))
			mi++
		}
		add(boolGender(lasts[i]))

		var cites int
		if leads[i] {
			cites = fCites.Draw(g.rng)
		} else {
			cites = mCites.Draw(g.rng)
		}
		paper := &dataset.Paper{
			ID:          dataset.PaperID(fmt.Sprintf("%s-p%03d", conf.ID, i+1)),
			Conf:        conf.ID,
			Title:       fmt.Sprintf("%s Paper %d", conf.Name, i+1),
			Authors:     authors,
			HPCTopic:    g.rng.Float64() < conf.HPCFrac,
			Citations36: cites,
		}
		if err := g.ds.AddPaper(paper); err != nil {
			return err
		}
		if leads[i] && g.femaleLeadPaper[conf.ID] == nil {
			g.femaleLeadPaper[conf.ID] = paper
		}
	}

	// --- Role rosters. ---
	// Role quotas are about *perceived* gender (the observable the paper
	// tallies: "four conferences appointed no women at all"), so a person
	// whose assignment cascade misfired must not silently flip a
	// zero-women roster. Retry until perceived matches the slot.
	fill := func(q RoleQuota, reuseP float64) []dataset.PersonID {
		used := make(map[dataset.PersonID]bool, q.Total)
		out := make([]dataset.PersonID, 0, q.Total)
		for _, female := range g.genderSlots(q.Women, q.Total) {
			want := boolGender(female)
			var p *dataset.Person
			for try := 0; try < 12; try++ {
				p = g.pickPerson(want, conf, true, reuseP, used)
				if p.Gender == want || !p.Gender.Known() {
					break
				}
				// Perceived gender contradicts the slot: leave the person
				// in the general pool and draw again.
			}
			used[p.ID] = true
			out = append(out, p.ID)
		}
		return out
	}
	c.PCMembers = fill(conf.PCMembers, g.cfg.PCReuse)
	// Everyone on this PC becomes eligible for reuse on later PCs.
	for _, id := range c.PCMembers {
		if p, ok := g.ds.Person(id); ok {
			g.pcPool[p.TrueGender] = append(g.pcPool[p.TrueGender], p)
		}
	}
	c.PCChairs = fill(conf.PCChairs, 0.6)
	c.Keynotes = fill(conf.Keynotes, 0.6)
	c.Panelists = fill(conf.Panelists, 0.5)
	c.SessionChairs = fill(conf.SessionChairs, 0.5)
	return nil
}

// paperSizes partitions authorSlots into papers author-list sizes, each at
// least 2 and at most 14.
func (g *gen) paperSizes(papers, authorSlots int) []int {
	sizes := make([]int, papers)
	for i := range sizes {
		sizes[i] = 2
	}
	extra := authorSlots - 2*papers
	for extra > 0 {
		i := g.rng.IntN(papers)
		if sizes[i] < 14 {
			sizes[i]++
			extra--
		}
	}
	return sizes
}

// injectOutlier plants the paper's >450-citation, non-HPC, female-led
// outlier (the ProvChain analog of §4.2) into the configured conference.
func (g *gen) injectOutlier() {
	if g.cfg.OutlierCitations <= 0 || g.cfg.OutlierConf == "" {
		return
	}
	paper := g.femaleLeadPaper[g.cfg.OutlierConf]
	if paper == nil {
		// No female-led paper materialized at that conference; fall back
		// to any conference that has one (deterministic order).
		for _, conf := range g.cfg.Confs {
			if p := g.femaleLeadPaper[conf.ID]; p != nil {
				paper = p
				break
			}
		}
	}
	if paper == nil {
		return
	}
	paper.Citations36 = g.cfg.OutlierCitations
	paper.HPCTopic = false
	paper.Title = "Blockchain-Based Data Provenance in the Cloud"
}
