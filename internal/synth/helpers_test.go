package synth

import "math/rand/v2"

// randFor builds the same PCG stream the generator uses, for white-box
// helper tests.
func randFor(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}
