package synth

import (
	"fmt"
	"time"

	"repro/internal/dataset"
)

// subfieldSpec calibrates one systems subfield for the extended corpus:
// its venues and its female-author-ratio band. FAR targets follow the
// literature the paper cites: HPC lowest (~10%), classic systems subfields
// 10-14%, and human-facing or data-centric subfields closer to the CS-wide
// 20-30% band.
type subfieldSpec struct {
	name   string
	far    float64
	venues []extVenue
}

type extVenue struct {
	name    string
	papers  int
	slots   int
	accept  float64
	country string
	month   time.Month
	boost   float64
}

// ExtendedSystems returns the calibration for the paper's future-work
// extension: a broad cross-section of computer-systems conferences beyond
// the nine HPC(-related) venues, labeled by subfield. The venue list is a
// representative synthetic slice of the "larger set of 56 conferences ...
// from all subfields of computer systems" the authors collected.
func ExtendedSystems(seed uint64) Config {
	cfg := Default2017(seed)
	// Keep the nine HPC venues (already labeled HPC by default) and add
	// the other subfields.
	subfields := []subfieldSpec{
		{"OS", 0.115, []extVenue{
			{"SOSP-like", 39, 180, 0.17, "CN", time.October, 1.0},
			{"EuroSys-like", 41, 170, 0.21, "RS", time.April, 1.5},
			{"ATC-like", 60, 260, 0.22, "US", time.July, 1.2},
		}},
		{"Networking", 0.130, []extVenue{
			{"NSDI-like", 46, 210, 0.18, "US", time.March, 1.2},
			{"SIGCOMM-like", 36, 170, 0.14, "US", time.August, 1.2},
			{"CoNEXT-like", 40, 160, 0.19, "KR", time.December, 2.0},
		}},
		{"Databases", 0.180, []extVenue{
			{"SIGMOD-like", 96, 420, 0.20, "US", time.May, 1.2},
			{"VLDB-like", 100, 430, 0.21, "DE", time.August, 1.5},
		}},
		{"Architecture", 0.110, []extVenue{
			{"ISCA-like", 54, 260, 0.17, "CA", time.June, 1.5},
			{"MICRO-like", 61, 280, 0.19, "US", time.October, 1.2},
			{"HPCA-like", 50, 230, 0.21, "US", time.February, 1.2},
		}},
		{"Security", 0.140, []extVenue{
			{"Oakland-like", 60, 270, 0.13, "US", time.May, 1.2},
			{"CCS-like", 110, 470, 0.18, "US", time.November, 1.2},
		}},
		{"Cloud", 0.160, []extVenue{
			{"SoCC-like", 45, 190, 0.24, "US", time.September, 1.2},
			{"Middleware-like", 20, 85, 0.25, "US", time.December, 1.0},
		}},
		{"Storage", 0.125, []extVenue{
			{"FAST-like", 27, 120, 0.23, "US", time.February, 1.2},
		}},
		{"Measurement", 0.190, []extVenue{
			{"IMC-like", 42, 170, 0.26, "GB", time.November, 2.0},
		}},
		{"WebData", 0.220, []extVenue{
			{"WWW-like", 164, 680, 0.17, "AU", time.April, 2.0},
		}},
	}
	for _, sf := range subfields {
		for _, v := range sf.venues {
			// Host countries outside the researcher mix table (e.g.
			// Serbia) are legal: the host boost simply has nothing to
			// amplify there.
			id := dataset.ConfID(fmt.Sprintf("%s17", sanitizeID(v.name)))
			cfg.Confs = append(cfg.Confs, ConfSpec{
				ID: id, Name: v.name, Year: 2017,
				Date:        time.Date(2017, v.month, 10, 0, 0, 0, 0, time.UTC),
				CountryCode: v.country, Papers: v.papers, AuthorSlots: v.slots,
				AcceptanceRate: v.accept,
				FAR:            sf.far, LeadFAR: sf.far * 1.08, LastFAR: sf.far * 0.85,
				PCChairs:  RoleQuota{3, chairWomen(sf.far)},
				PCMembers: RoleQuota{v.papers, int(float64(v.papers) * sf.far * 1.7)},
				Keynotes:  RoleQuota{2, 0}, Panelists: RoleQuota{6, 1},
				SessionChairs: RoleQuota{10, int(10 * sf.far)},
				HPCFrac:       0.05, HostBoost: v.boost,
				Subfield: sf.name,
			})
		}
	}
	// The extended corpus has no single designated outlier.
	cfg.OutlierCitations = 0
	cfg.OutlierConf = ""
	return cfg
}

func chairWomen(far float64) int {
	if far >= 0.15 {
		return 1
	}
	return 0
}

// sanitizeID turns a venue name into an ID-safe token.
func sanitizeID(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
			out = append(out, c-('a'-'A'))
		case c >= 'A' && c <= 'Z' || c >= '0' && c <= '9':
			out = append(out, c)
		}
	}
	return string(out)
}
