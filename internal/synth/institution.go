package synth

import (
	"math/rand/v2"
	"strings"

	"repro/internal/affil"
	"repro/internal/countries"
)

// Institution-name fragments for synthesizing plausible affiliations whose
// strings the affil classifier can parse back into the same country and
// sector — keeping the corpus internally consistent end to end.
var (
	citySyllA = []string{"Spring", "River", "North", "South", "East", "West",
		"Oak", "Maple", "Stone", "Clear", "High", "Bright", "Silver", "Iron"}
	citySyllB = []string{"field", "ton", "ville", "burg", "haven", "port",
		"wood", "dale", "bridge", "crest", "view", "mont"}
	companyA = []string{"Apex", "Vertex", "Quantum", "Nimbus", "Vector",
		"Parallel", "Cluster", "Exa", "Peta", "Torrent", "Lattice", "Kernel"}
	companyB = []string{"Systems", "Computing", "Technologies", "Networks",
		"Analytics", "Dynamics", "Microsystems", "Data"}
	labA = []string{"Ridge", "Valley", "Mesa", "Canyon", "Summit", "Plains",
		"Lakes", "Coastal", "Desert", "Alpine"}
)

// makeCity synthesizes a city-like slug.
func makeCity(rng *rand.Rand) string {
	return citySyllA[rng.IntN(len(citySyllA))] + citySyllB[rng.IntN(len(citySyllB))]
}

// makeAffiliation returns a plausible (affiliation, emailDomain) pair for a
// researcher in the given country and sector.
func makeAffiliation(rng *rand.Rand, countryCode string, sector affil.Sector) (string, string) {
	c, _ := countries.ByCode(countryCode)
	tld := c.TLD
	if tld == "" {
		tld = "org"
	}
	city := makeCity(rng)
	slug := strings.ToLower(city)
	switch sector {
	case affil.GOV:
		name := labA[rng.IntN(len(labA))] + " National Laboratory"
		if countryCode == "US" {
			return name, slug + "lab.gov"
		}
		return name + ", " + c.Name, slug + "-lab." + tld
	case affil.COM:
		name := companyA[rng.IntN(len(companyA))] + " " + companyB[rng.IntN(len(companyB))] + " Inc."
		// Generic .com domain carries no country signal, so the country
		// appears in the affiliation text, as it does on real papers.
		return name + ", " + c.Name, slug + "-" + strings.ToLower(companyA[rng.IntN(len(companyA))]) + ".com"
	default: // EDU
		name := "University of " + city
		switch countryCode {
		case "US":
			return name, slug + ".edu"
		case "GB", "JP", "IN", "KR", "CN", "TH", "IL", "NZ", "ZA":
			return name + ", " + c.Name, slug + ".ac." + usedTLD(tld)
		case "AU", "BR", "MX", "AR", "SG", "MY", "HK", "TW", "SA", "EG", "TR":
			return name + ", " + c.Name, slug + ".edu." + usedTLD(tld)
		default:
			return name + ", " + c.Name, slug + "-univ." + tld
		}
	}
}

// usedTLD maps GB to the "uk" ccTLD actually used in domains.
func usedTLD(tld string) string {
	if tld == "gb" {
		return "uk"
	}
	return tld
}

// makeEmail builds the researcher's email on the institutional domain.
func makeEmail(forename, surname, domain string) string {
	clean := func(s string) string {
		var b strings.Builder
		for _, r := range strings.ToLower(s) {
			if r >= 'a' && r <= 'z' {
				b.WriteRune(r)
			}
		}
		if b.Len() == 0 {
			return "x"
		}
		return b.String()
	}
	return clean(forename) + "." + clean(surname) + "@" + domain
}
