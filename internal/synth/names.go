package synth

import (
	"math/rand/v2"

	"repro/internal/gender"
)

// Surname pools by origin, used to assemble full researcher names. The
// gender signal lives entirely in the forename (as the inference substrate
// assumes); surnames only add realism and uniqueness.
var surnames = map[gender.Origin][]string{
	gender.OriginWestern: {
		"Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia",
		"Miller", "Davis", "Rodriguez", "Martinez", "Andersson", "Mueller",
		"Schmidt", "Fischer", "Weber", "Rossi", "Ferrari", "Dubois",
		"Martin", "Bernard", "Lopez", "Gonzalez", "Fernandez", "Silva",
		"Santos", "Kowalski", "Novak", "Nielsen", "Hansen", "Janssen",
		"Frachtenberg", "Keller", "Baumann", "Moreau", "Costa",
	},
	gender.OriginChinese: {
		"Wang", "Li", "Zhang", "Liu", "Chen", "Yang", "Huang", "Zhao",
		"Wu", "Zhou", "Xu", "Sun", "Ma", "Zhu", "Hu", "Guo", "He", "Gao",
		"Lin", "Luo",
	},
	gender.OriginIndian: {
		"Sharma", "Patel", "Singh", "Kumar", "Gupta", "Reddy", "Iyer",
		"Mehta", "Joshi", "Nair", "Rao", "Chandra", "Bose", "Desai",
		"Agarwal", "Banerjee", "Mukherjee", "Krishnan",
	},
	gender.OriginJapanese: {
		"Sato", "Suzuki", "Takahashi", "Tanaka", "Watanabe", "Ito",
		"Yamamoto", "Nakamura", "Kobayashi", "Kato", "Matsumoto", "Inoue",
	},
	gender.OriginKorean: {
		"Kim", "Lee", "Park", "Choi", "Jung", "Kang", "Cho", "Yoon",
		"Jang", "Lim",
	},
	gender.OriginArabic: {
		"Al-Farsi", "Hassan", "Abdullah", "Rahman", "Karim", "Nasser",
		"Saleh", "Amin", "Haddad", "Mansour",
	},
}

// originOf maps an ISO country code to the dominant name-origin group used
// when minting a researcher from that country.
func originOf(countryCode string) gender.Origin {
	switch countryCode {
	case "CN", "TW", "HK", "SG":
		return gender.OriginChinese
	case "IN", "PK", "LK", "BD", "NP":
		return gender.OriginIndian
	case "JP":
		return gender.OriginJapanese
	case "KR":
		return gender.OriginKorean
	case "SA", "AE", "EG", "QA", "JO", "MA", "DZ", "TN", "LB":
		return gender.OriginArabic
	default:
		return gender.OriginWestern
	}
}

// forenamePools caches the bank name pools per (origin, dominant gender).
var forenamePools = func() map[gender.Origin]map[gender.Gender][]string {
	m := make(map[gender.Origin]map[gender.Gender][]string)
	for _, o := range []gender.Origin{
		gender.OriginWestern, gender.OriginChinese, gender.OriginIndian,
		gender.OriginJapanese, gender.OriginKorean, gender.OriginArabic,
	} {
		m[o] = map[gender.Gender][]string{
			gender.Female: gender.BankNames(o, gender.Female),
			gender.Male:   gender.BankNames(o, gender.Male),
		}
	}
	return m
}()

var ambiguousPool = gender.AmbiguousNames()

// drawForename picks a forename for the given origin and true gender.
// When confident is true, the name comes from the origin's dominant-gender
// pool (falling back to Western, which is always populated), so the
// automated inference stage can resolve it. Otherwise the name comes from
// the ambiguous pool, which stays below the 70% confidence floor.
func drawForename(rng *rand.Rand, origin gender.Origin, g gender.Gender, confident bool) string {
	if !confident {
		return ambiguousPool[rng.IntN(len(ambiguousPool))]
	}
	pool := forenamePools[origin][g]
	if len(pool) == 0 {
		pool = forenamePools[gender.OriginWestern][g]
	}
	return pool[rng.IntN(len(pool))]
}

// drawSurname picks a surname for the origin.
func drawSurname(rng *rand.Rand, origin gender.Origin) string {
	pool := surnames[origin]
	if len(pool) == 0 {
		pool = surnames[gender.OriginWestern]
	}
	return pool[rng.IntN(len(pool))]
}

// titleCase uppercases the first byte of an ASCII name (the bank stores
// forenames lowercase).
func titleCase(s string) string {
	if s == "" {
		return s
	}
	b := []byte(s)
	if b[0] >= 'a' && b[0] <= 'z' {
		b[0] -= 'a' - 'A'
	}
	return string(b)
}
