package synth

import (
	"strconv"
	"testing"

	"repro/internal/dataset"
)

// TestCalibrationStableAcrossSeeds guards the calibration against seed
// luck: the headline marginals must hold for every seed, not just the
// canonical one. This is the reproduction's analog of the paper's claim
// that its numbers are properties of the field, not of one sample.
func TestCalibrationStableAcrossSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed generation is slow")
	}
	for _, seed := range []uint64{2, 101, 555, 9001, 123456} {
		seed := seed
		t.Run(strconv.FormatUint(seed, 10), func(t *testing.T) {
			t.Parallel()
			c, err := Generate(Default2017(seed))
			if err != nil {
				t.Fatal(err)
			}
			d := c.Data
			if err := d.Validate(); err != nil {
				t.Fatal(err)
			}
			far := d.CountGenders(d.AuthorSlots()).FemaleRatio()
			if far < 0.085 || far > 0.12 {
				t.Errorf("seed %d: FAR %.4f", seed, far)
			}
			pc := d.CountGenders(d.RoleSlots(dataset.RolePCMember)).FemaleRatio()
			if pc < 0.15 || pc > 0.22 {
				t.Errorf("seed %d: PC ratio %.4f", seed, pc)
			}
			if pc < 1.4*far {
				t.Errorf("seed %d: PC (%.4f) not well above authors (%.4f)", seed, pc, far)
			}
			// Structural pins hold for every seed.
			if got := len(d.Papers); got != 518 {
				t.Errorf("seed %d: %d papers", seed, got)
			}
			if got := len(d.RoleSlots(dataset.RolePCMember)); got != 1220 {
				t.Errorf("seed %d: %d PC slots", seed, got)
			}
			for _, id := range []dataset.ConfID{"HPDC17", "HPCC17", "HIPC17"} {
				if w := d.CountGenders(d.RoleSlots(dataset.RoleSessionChair, id)).Women; w != 0 {
					t.Errorf("seed %d: %s session chairs have %d women", seed, id, w)
				}
			}
			// SC below overall at every seed. The strict ordering is a
			// property of the true-gender quotas; the perceived ratio adds
			// assignment noise, so it only gets a tolerance band.
			trueFAR := func(ids []dataset.PersonID) float64 {
				var women, known int
				for _, id := range ids {
					p, _ := d.Person(id)
					if p == nil || !p.TrueGender.Known() {
						continue
					}
					known++
					if p.TrueGender.String() == "female" {
						women++
					}
				}
				return float64(women) / float64(known)
			}
			if scTrue, allTrue := trueFAR(d.AuthorSlots("SC17")), trueFAR(d.AuthorSlots()); scTrue >= allTrue {
				t.Errorf("seed %d: SC true FAR %.4f not below overall %.4f", seed, scTrue, allTrue)
			}
			sc := d.CountGenders(d.AuthorSlots("SC17")).FemaleRatio()
			if sc > far+0.015 {
				t.Errorf("seed %d: SC perceived FAR %.4f far above overall %.4f", seed, sc, far)
			}
		})
	}
}
