package synth

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/gender"
	"repro/internal/stats"
)

// corpus2017 is shared across tests (generation is deterministic, so a
// single instance is safe to share read-only).
var corpus2017 = func() *Corpus {
	c, err := Generate(Default2017(1))
	if err != nil {
		panic(err)
	}
	return c
}()

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Default2017(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Default2017(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Data.Persons) != len(b.Data.Persons) {
		t.Fatalf("person counts differ: %d vs %d", len(a.Data.Persons), len(b.Data.Persons))
	}
	for id, pa := range a.Data.Persons {
		pb, ok := b.Data.Persons[id]
		if !ok || *pa != *pb {
			t.Fatalf("person %s differs between identical seeds", id)
		}
	}
	for i := range a.Data.Papers {
		if a.Data.Papers[i].ID != b.Data.Papers[i].ID ||
			a.Data.Papers[i].Citations36 != b.Data.Papers[i].Citations36 {
			t.Fatal("papers differ between identical seeds")
		}
	}
	// Different seed -> different corpus (overwhelmingly likely).
	c, err := Generate(Default2017(8))
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Data.Papers {
		if a.Data.Papers[i].Citations36 != c.Data.Papers[i].Citations36 {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical citation draws")
	}
}

func TestCorpusValidates(t *testing.T) {
	if err := corpus2017.Data.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Structure(t *testing.T) {
	d := corpus2017.Data
	if len(d.Conferences) != 9 {
		t.Fatalf("%d conferences, want 9", len(d.Conferences))
	}
	wantPapers := map[dataset.ConfID]int{
		"CCGRID17": 72, "IPDPS17": 116, "ISC17": 22, "HPDC17": 19,
		"ICPP17": 60, "EUROPAR17": 50, "SC17": 61, "HIPC17": 41, "HPCC17": 77,
	}
	total := 0
	for id, want := range wantPapers {
		got := len(d.PapersOf(id))
		if got != want {
			t.Errorf("%s: %d papers, want %d", id, got, want)
		}
		total += got
	}
	if total != 518 {
		t.Errorf("total papers %d, want 518", total)
	}
	wantSlots := map[dataset.ConfID]int{
		"CCGRID17": 296, "IPDPS17": 447, "ISC17": 99, "HPDC17": 76,
		"ICPP17": 234, "EUROPAR17": 179, "SC17": 325, "HIPC17": 168, "HPCC17": 287,
	}
	for id, want := range wantSlots {
		if got := len(d.AuthorSlots(id)); got != want {
			t.Errorf("%s: %d author slots, want %d", id, got, want)
		}
	}
	// Acceptance rates carried through.
	sc, _ := d.Conference("SC17")
	if math.Abs(sc.AcceptanceRate-0.187) > 1e-9 || !sc.DoubleBlind || !sc.DiversityChair || !sc.Childcare {
		t.Errorf("SC17 attributes wrong: %+v", sc)
	}
	isc, _ := d.Conference("ISC17")
	if !isc.DoubleBlind || !isc.DiversityChair || isc.Childcare {
		t.Errorf("ISC17 attributes wrong: %+v", isc)
	}
}

func TestRoleTotals(t *testing.T) {
	d := corpus2017.Data
	cases := []struct {
		role dataset.Role
		want int
	}{
		{dataset.RolePCChair, 36},
		{dataset.RolePCMember, 1220},
		{dataset.RoleKeynote, 30},
		{dataset.RolePanelist, 106},
		{dataset.RoleSessionChair, 158},
	}
	for _, c := range cases {
		if got := len(d.RoleSlots(c.role)); got != c.want {
			t.Errorf("%s slots = %d, want %d", c.role, got, c.want)
		}
	}
	// SC's PC is the largest both absolutely and relatively.
	sc, _ := d.Conference("SC17")
	if len(sc.PCMembers) != 225 {
		t.Errorf("SC PC = %d, want 225", len(sc.PCMembers))
	}
}

func TestOverallFARNearTarget(t *testing.T) {
	d := corpus2017.Data
	gc := d.CountGenders(d.AuthorSlots())
	far := gc.FemaleRatio()
	// Paper: 9.9% overall. Quota sampling on true gender plus a ~3%
	// unknown mask leaves the perceived ratio within a point.
	if far < 0.085 || far > 0.115 {
		t.Errorf("overall FAR %.4f outside [0.085, 0.115]", far)
	}
	// SC and ISC specifically low.
	scFar := d.CountGenders(d.AuthorSlots("SC17")).FemaleRatio()
	iscFar := d.CountGenders(d.AuthorSlots("ISC17")).FemaleRatio()
	if scFar > far {
		t.Errorf("SC FAR %.4f should be below overall %.4f", scFar, far)
	}
	if iscFar > 0.09 {
		t.Errorf("ISC FAR %.4f, want < 0.09", iscFar)
	}
}

func TestPCWomenRatioAboveAuthors(t *testing.T) {
	d := corpus2017.Data
	authorFAR := d.CountGenders(d.AuthorSlots()).FemaleRatio()
	pcRatio := d.CountGenders(d.RoleSlots(dataset.RolePCMember)).FemaleRatio()
	// Paper: 18.46% PC vs 9.9% authors — about double.
	if pcRatio < 1.5*authorFAR {
		t.Errorf("PC ratio %.4f not well above author FAR %.4f", pcRatio, authorFAR)
	}
	// SC PC women ratio ~29.6%.
	scPC := d.CountGenders(d.RoleSlots(dataset.RolePCMember, "SC17")).FemaleRatio()
	if scPC < 0.25 || scPC > 0.34 {
		t.Errorf("SC PC women ratio %.4f outside [0.25, 0.34]", scPC)
	}
}

func TestZeroWomenRosters(t *testing.T) {
	d := corpus2017.Data
	// §3.3: zero female session chairs at HPDC, HPCC, HiPC.
	for _, id := range []dataset.ConfID{"HPDC17", "HPCC17", "HIPC17"} {
		gc := d.CountGenders(d.RoleSlots(dataset.RoleSessionChair, id))
		if gc.Women != 0 {
			t.Errorf("%s session chairs: %d women, want 0", id, gc.Women)
		}
	}
	// Four conferences with zero female keynotes.
	zeroKeynotes := 0
	for _, id := range d.ConfIDs() {
		if d.CountGenders(d.RoleSlots(dataset.RoleKeynote, id)).Women == 0 {
			zeroKeynotes++
		}
	}
	if zeroKeynotes != 4 {
		t.Errorf("%d conferences with zero female keynotes, want 4", zeroKeynotes)
	}
	// Four conferences with zero female PC chairs.
	zeroChairs := 0
	for _, id := range d.ConfIDs() {
		if d.CountGenders(d.RoleSlots(dataset.RolePCChair, id)).Women == 0 {
			zeroChairs++
		}
	}
	if zeroChairs != 4 {
		t.Errorf("%d conferences with zero female PC chairs, want 4", zeroChairs)
	}
}

func TestUniquenessGaps(t *testing.T) {
	d := corpus2017.Data
	slots := len(d.AuthorSlots())
	unique := len(d.UniqueAuthors())
	if unique >= slots {
		t.Fatalf("no author reuse: %d unique of %d slots", unique, slots)
	}
	// Paper: 1885 unique of ~2111-2236 slots (about 89%).
	ratio := float64(unique) / float64(slots)
	if ratio < 0.82 || ratio > 0.97 {
		t.Errorf("unique/slot author ratio %.3f outside [0.82, 0.97]", ratio)
	}
	pcSlots := len(d.RoleSlots(dataset.RolePCMember))
	pcUnique := len(d.UniqueRoleHolders(dataset.RolePCMember))
	pcRatio := float64(pcUnique) / float64(pcSlots)
	// Paper: 908 of 1220 = 0.744.
	if pcRatio < 0.6 || pcRatio > 0.9 {
		t.Errorf("unique/slot PC ratio %.3f outside [0.6, 0.9]", pcRatio)
	}
}

func TestGenderAssignmentCoverage(t *testing.T) {
	d := corpus2017.Data
	var stats gender.CoverageStats
	for _, p := range d.Persons {
		stats.Add(gender.Assignment{Gender: p.Gender, Method: p.AssignMethod})
	}
	if f := stats.ManualFrac(); f < 0.93 || f > 0.97 {
		t.Errorf("manual fraction %.4f, paper reports 0.9518", f)
	}
	if f := stats.UnassignedFrac(); f < 0.015 || f > 0.05 {
		t.Errorf("unassigned fraction %.4f, paper reports 0.0303", f)
	}
	if stats.Automated == 0 {
		t.Error("no automated assignments at all")
	}
	// Manual assignments are always correct; automated ones mostly.
	wrongManual := 0
	for _, p := range d.Persons {
		if p.AssignMethod == gender.MethodManual && p.Gender != p.TrueGender {
			wrongManual++
		}
	}
	if wrongManual != 0 {
		t.Errorf("%d wrong manual assignments; survey found none", wrongManual)
	}
}

func TestHPCTaggedSubset(t *testing.T) {
	d := corpus2017.Data
	hpc := len(d.HPCPapers())
	// Paper: 178 of 518 (~34%).
	if hpc < 130 || hpc > 230 {
		t.Errorf("HPC-tagged papers %d outside [130, 230]", hpc)
	}
}

func TestOutlierInjected(t *testing.T) {
	d := corpus2017.Data
	var outlier *dataset.Paper
	for _, p := range d.Papers {
		if p.Citations36 >= 450 {
			if outlier != nil {
				t.Fatal("more than one >=450-citation paper")
			}
			outlier = p
		}
	}
	if outlier == nil {
		t.Fatal("no >450-citation outlier injected")
	}
	if outlier.HPCTopic {
		t.Error("outlier must be non-HPC (the paper's §4.2 exclusion)")
	}
	lead, _ := d.Person(outlier.Lead())
	if lead.Gender != gender.Female {
		t.Error("outlier must be female-led")
	}
}

func TestCountryMarginals(t *testing.T) {
	d := corpus2017.Data
	counts := map[string]int{}
	researchers := d.UniqueAuthorsAndPC()
	for _, id := range researchers {
		p, _ := d.Person(id)
		counts[p.CountryCode]++
	}
	us := float64(counts["US"]) / float64(len(researchers))
	// Paper: roughly half of researchers are US-affiliated.
	if us < 0.40 || us > 0.60 {
		t.Errorf("US share %.3f outside [0.40, 0.60]", us)
	}
	// Table 2 ordering: US dominates; China next among the majors.
	if counts["US"] < 3*counts["CN"] {
		t.Errorf("US (%d) should dwarf China (%d)", counts["US"], counts["CN"])
	}
	for _, cc := range []string{"CN", "FR", "DE", "ES", "IN", "CH", "JP", "GB", "CA"} {
		if counts[cc] == 0 {
			t.Errorf("no researchers from %s; Table 2 needs them", cc)
		}
	}
}

func TestCountryFARPattern(t *testing.T) {
	d := corpus2017.Data
	tally := func(cc string) (women, known int) {
		for _, id := range d.UniqueAuthorsAndPC() {
			p, _ := d.Person(id)
			if p.CountryCode != cc || !p.Gender.Known() {
				continue
			}
			known++
			if p.Gender == gender.Female {
				women++
			}
		}
		return
	}
	usW, usN := tally("US")
	jpW, jpN := tally("JP")
	if usN == 0 || jpN == 0 {
		t.Fatal("missing US or JP researchers")
	}
	usFAR := float64(usW) / float64(usN)
	jpFAR := float64(jpW) / float64(jpN)
	// Table 2: US is the highest major country (15.38%), Japan the lowest
	// (1.59%).
	if usFAR < 0.11 || usFAR > 0.20 {
		t.Errorf("US FAR %.4f outside [0.11, 0.20]", usFAR)
	}
	if jpFAR > 0.06 {
		t.Errorf("Japan FAR %.4f, want < 0.06", jpFAR)
	}
	if jpFAR >= usFAR {
		t.Error("Japan FAR should be far below US FAR")
	}
}

func TestSectorMarginals(t *testing.T) {
	d := corpus2017.Data
	var edu, com, gov, n int
	for _, p := range d.Persons {
		n++
		switch p.Sector.String() {
		case "EDU":
			edu++
		case "COM":
			com++
		case "GOV":
			gov++
		}
	}
	if f := float64(edu) / float64(n); f < 0.68 || f > 0.78 {
		t.Errorf("EDU share %.3f, paper reports 0.728", f)
	}
	if f := float64(com) / float64(n); f < 0.05 || f > 0.12 {
		t.Errorf("COM share %.3f, paper reports 0.086", f)
	}
	if f := float64(gov) / float64(n); f < 0.14 || f > 0.24 {
		t.Errorf("GOV share %.3f, paper reports 0.186", f)
	}
}

func TestScholarCoverageAndConsistency(t *testing.T) {
	d := corpus2017.Data
	withGS, total := 0, 0
	for _, p := range d.Persons {
		total++
		if p.HasGSProfile {
			withGS++
			if err := p.GS.Validate(); err != nil {
				t.Fatalf("person %s: %v", p.ID, err)
			}
			if _, ok := corpus2017.GS.Lookup(string(p.ID)); !ok {
				t.Fatalf("person %s flagged HasGSProfile but missing from directory", p.ID)
			}
		}
		if !p.HasS2 || p.S2Pubs < 1 {
			t.Fatalf("person %s lacks Semantic Scholar coverage", p.ID)
		}
	}
	cov := float64(withGS) / float64(total)
	// Paper: 68.3% unambiguous GS linkage.
	if cov < 0.60 || cov > 0.78 {
		t.Errorf("GS coverage %.3f outside [0.60, 0.78]", cov)
	}
}

func TestUnlinkedResearchersLessExperienced(t *testing.T) {
	// Paper §2: "we found no GS profile for about a third of the
	// researchers, and these researchers appear to be less experienced".
	d := corpus2017.Data
	var withPubs, withoutPubs []float64
	for _, p := range d.Persons {
		if p.HasGSProfile {
			withPubs = append(withPubs, float64(p.S2Pubs))
		} else {
			withoutPubs = append(withoutPubs, float64(p.S2Pubs))
		}
	}
	// Medians, not means: the S2 disambiguation noise is heavy-tailed
	// enough that a handful of merge blunders dominates a mean.
	medWithout, _ := stats.Median(withoutPubs)
	medWith, _ := stats.Median(withPubs)
	if medWithout >= medWith {
		t.Errorf("unlinked researchers look MORE experienced: median %.1f vs %.1f S2 pubs",
			medWithout, medWith)
	}
}

func TestFlagshipSeries(t *testing.T) {
	c, err := Generate(FlagshipSeries(3))
	if err != nil {
		t.Fatal(err)
	}
	d := c.Data
	if len(d.Conferences) != 10 {
		t.Fatalf("%d conferences, want 10 (SC+ISC x 5 years)", len(d.Conferences))
	}
	years := map[int]bool{}
	for _, conf := range d.Conferences {
		years[conf.Year] = true
		if conf.Name == "SC" && (conf.WomenAttendance < 0.11 || conf.WomenAttendance > 0.15) {
			t.Errorf("SC %d attendance %.3f outside the paper's 12-14%% band", conf.Year, conf.WomenAttendance)
		}
		far := d.CountGenders(d.AuthorSlots(conf.ID)).FemaleRatio()
		if conf.Name == "ISC" && (far < 0.01 || far > 0.13) {
			t.Errorf("ISC %d FAR %.4f outside plausible band", conf.Year, far)
		}
	}
	for y := 2016; y <= 2020; y++ {
		if !years[y] {
			t.Errorf("missing year %d", y)
		}
	}
}

func TestConfigValidateCatchesBadConfigs(t *testing.T) {
	mutations := []func(*Config){
		func(c *Config) { c.Confs = nil },
		func(c *Config) { c.Countries = nil },
		func(c *Config) { c.Countries[0].Weight = 0 },
		func(c *Config) { c.Countries[0].FAR = 1.5 },
		func(c *Config) { c.Confs[0].Papers = 0 },
		func(c *Config) { c.Confs[0].AuthorSlots = c.Confs[0].Papers },
		func(c *Config) { c.Confs[0].AcceptanceRate = 0 },
		func(c *Config) { c.Confs[0].PCMembers = RoleQuota{Total: 5, Women: 9} },
		func(c *Config) { c.Confs[0].FAR = -0.1 },
		func(c *Config) { c.SectorEDU = 0.9 }, // breaks the sum
		func(c *Config) { c.ManualEvidenceRate = 1.2 },
	}
	for i, mut := range mutations {
		cfg := Default2017(1)
		mut(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d: invalid config accepted", i)
		}
	}
	good := Default2017(1)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}

func TestPaperSizesPartition(t *testing.T) {
	g := &gen{rng: randFor(99)}
	sizes := g.paperSizes(61, 325)
	sum := 0
	for _, s := range sizes {
		if s < 2 || s > 14 {
			t.Fatalf("paper size %d outside [2, 14]", s)
		}
		sum += s
	}
	if sum != 325 {
		t.Fatalf("sizes sum to %d, want 325", sum)
	}
}
