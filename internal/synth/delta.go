package synth

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dataset"
)

// YearDelta is one conference-year's standalone contribution to a corpus:
// the new conference, its papers, and the full record of every participant
// — researchers minted for this edition and base researchers it reuses
// alike, so the delta is self-contained (a delta snapshot's mini-corpus
// passes dataset.Validate on its own) and the apply path can verify reused
// records instead of trusting them.
type YearDelta struct {
	Conf    *dataset.Conference
	Papers  []*dataset.Paper
	Persons []*dataset.Person // every participant, sorted by ID
}

// YearSpec derives the calibration for a new edition of an existing series
// by cloning the series' latest spec in cfg: same quotas, policies and FAR
// targets, with the ID, year and date advanced. It is how `synthgen
// -delta-year N` extends a corpus without a hand-written spec.
func YearSpec(cfg Config, series string, year int) (ConfSpec, error) {
	var latest *ConfSpec
	for i := range cfg.Confs {
		s := &cfg.Confs[i]
		if s.Name != series {
			continue
		}
		if s.Year == year {
			return ConfSpec{}, fmt.Errorf("synth: %s %d already in the corpus", series, year)
		}
		if latest == nil || s.Year > latest.Year {
			latest = s
		}
	}
	if latest == nil {
		return ConfSpec{}, fmt.Errorf("synth: no %q edition in the corpus to extend", series)
	}
	spec := *latest
	spec.Year = year
	spec.ID = dataset.ConfID(fmt.Sprintf("%s%02d", series, year%100))
	spec.Date = time.Date(year, latest.Date.Month(), latest.Date.Day(), 0, 0, 0, 0, time.UTC)
	for i := range cfg.Confs {
		if cfg.Confs[i].ID == spec.ID {
			return ConfSpec{}, fmt.Errorf("synth: derived conference ID %q already in the corpus", spec.ID)
		}
	}
	return spec, nil
}

// GenerateYearDelta synthesizes the contribution of one appended
// conference edition, plus the base corpus it extends. It exploits a
// structural property of Generate: conference synthesis is sequential over
// cfg.Confs and nothing before the appended spec consumes RNG state that
// depends on it, so Generate(cfg with spec appended) reproduces the base
// corpus byte-identically as a prefix and everything attributable to the
// new edition is exactly the suffix. The returned delta therefore composes
// with the base into the same corpus a full resynthesis would produce —
// the byte-identity guarantee the delta workload is built on.
func GenerateYearDelta(cfg Config, spec ConfSpec) (*YearDelta, *Corpus, error) {
	base, err := Generate(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("synth: generating base corpus: %w", err)
	}
	full := cfg
	full.Confs = append(append([]ConfSpec(nil), cfg.Confs...), spec)
	if full.OutlierConf != "" {
		if _, ok := base.Data.Conference(full.OutlierConf); !ok {
			return nil, nil, fmt.Errorf("synth: outlier conference %q not in base corpus", full.OutlierConf)
		}
	}
	grown, err := Generate(full)
	if err != nil {
		return nil, nil, fmt.Errorf("synth: generating grown corpus: %w", err)
	}

	// Sanity-check the prefix property before extracting the suffix: every
	// base conference must reappear unchanged in position.
	if len(grown.Data.Conferences) != len(base.Data.Conferences)+1 {
		return nil, nil, fmt.Errorf("synth: grown corpus has %d conferences, want %d",
			len(grown.Data.Conferences), len(base.Data.Conferences)+1)
	}
	for i, bc := range base.Data.Conferences {
		if grown.Data.Conferences[i].ID != bc.ID {
			return nil, nil, fmt.Errorf("synth: grown corpus conference %d is %q, base has %q; prefix identity violated",
				i, grown.Data.Conferences[i].ID, bc.ID)
		}
	}

	c, ok := grown.Data.Conference(spec.ID)
	if !ok {
		return nil, nil, fmt.Errorf("synth: grown corpus is missing appended conference %q", spec.ID)
	}
	delta := &YearDelta{
		Conf:   c,
		Papers: append([]*dataset.Paper(nil), grown.Data.PapersOf(c.ID)...),
	}
	seen := make(map[dataset.PersonID]bool)
	for _, p := range delta.Papers {
		for _, id := range p.Authors {
			seen[id] = true
		}
	}
	for _, r := range dataset.Roles() {
		for _, id := range c.RoleHolders(r) {
			seen[id] = true
		}
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	delta.Persons = make([]*dataset.Person, 0, len(ids))
	for _, sid := range ids {
		p, ok := grown.Data.Person(dataset.PersonID(sid))
		if !ok {
			return nil, nil, fmt.Errorf("synth: appended conference references unknown person %q", sid)
		}
		delta.Persons = append(delta.Persons, p)
	}
	return delta, base, nil
}

// MiniCorpus assembles the delta's self-contained dataset — the form a
// delta snapshot's persons/conferences/papers sections carry.
func (yd *YearDelta) MiniCorpus() (*dataset.Dataset, error) {
	d := dataset.New()
	for _, p := range yd.Persons {
		if err := d.AddPerson(p); err != nil {
			return nil, err
		}
	}
	if err := d.AddConference(yd.Conf); err != nil {
		return nil, err
	}
	for _, p := range yd.Papers {
		if err := d.AddPaper(p); err != nil {
			return nil, err
		}
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("synth: delta mini-corpus failed validation: %w", err)
	}
	return d, nil
}
