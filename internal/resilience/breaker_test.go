package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// step is one scripted breaker interaction for the table-driven
// transition test.
type step struct {
	// advance moves the virtual clock before acting.
	advance time.Duration
	// fail is the outcome to record if the call is admitted.
	fail bool
	// wantAllow is whether Allow must admit the call.
	wantAllow bool
	// wantState is the state after the step.
	wantState BreakerState
}

// TestBreakerTransitions walks the full closed -> open -> half-open ->
// closed cycle, including a failed probe reopening the breaker.
func TestBreakerTransitions(t *testing.T) {
	tests := []struct {
		name  string
		cfg   BreakerConfig
		steps []step
	}{
		{
			name: "trip after threshold, recover via probe",
			cfg:  BreakerConfig{FailureThreshold: 3, Cooldown: 100 * time.Millisecond},
			steps: []step{
				{fail: true, wantAllow: true, wantState: Closed},
				{fail: true, wantAllow: true, wantState: Closed},
				{fail: true, wantAllow: true, wantState: Open},          // third consecutive failure trips
				{wantAllow: false, wantState: Open},                     // shed while cooling down
				{advance: 99 * time.Millisecond, wantAllow: false, wantState: Open},
				{advance: time.Millisecond, fail: false, wantAllow: true, wantState: Closed}, // probe succeeds
				{fail: false, wantAllow: true, wantState: Closed},
			},
		},
		{
			name: "failed probe reopens",
			cfg:  BreakerConfig{FailureThreshold: 1, Cooldown: 50 * time.Millisecond},
			steps: []step{
				{fail: true, wantAllow: true, wantState: Open},
				{advance: 50 * time.Millisecond, fail: true, wantAllow: true, wantState: Open}, // probe fails
				{wantAllow: false, wantState: Open},
				{advance: 50 * time.Millisecond, fail: false, wantAllow: true, wantState: Closed},
			},
		},
		{
			name: "success resets the consecutive-failure count",
			cfg:  BreakerConfig{FailureThreshold: 2, Cooldown: time.Second},
			steps: []step{
				{fail: true, wantAllow: true, wantState: Closed},
				{fail: false, wantAllow: true, wantState: Closed},
				{fail: true, wantAllow: true, wantState: Closed}, // count restarted
				{fail: true, wantAllow: true, wantState: Open},
			},
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			clock := NewVirtualClock(time.Unix(0, 0))
			b := NewBreaker(tc.cfg, clock)
			for i, s := range tc.steps {
				if s.advance > 0 {
					if err := clock.Sleep(context.Background(), s.advance); err != nil {
						t.Fatal(err)
					}
				}
				err := b.Allow()
				if admitted := err == nil; admitted != s.wantAllow {
					t.Fatalf("step %d: Allow() admitted=%v, want %v (err %v)", i, admitted, s.wantAllow, err)
				}
				if err == nil {
					if s.fail {
						b.Record(errBoom)
					} else {
						b.Record(nil)
					}
				} else if !errors.Is(err, ErrOpen) {
					t.Fatalf("step %d: Allow() = %v, want ErrOpen", i, err)
				}
				if got := b.State(); got != s.wantState {
					t.Fatalf("step %d: state = %s, want %s", i, got, s.wantState)
				}
			}
		})
	}
}

// TestBreakerStats checks the trip/recovery/shed counters over a full
// cycle with one failed probe.
func TestBreakerStats(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 2, Cooldown: 10 * time.Millisecond}, clock)
	ctx := context.Background()

	b.Allow()
	b.Record(errBoom)
	b.Allow()
	b.Record(errBoom) // trip 1
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("expected shed, got %v", err)
	}
	clock.Sleep(ctx, 10*time.Millisecond)
	b.Allow()
	b.Record(errBoom) // probe fails: trip 2
	clock.Sleep(ctx, 10*time.Millisecond)
	b.Allow()
	b.Record(nil) // probe succeeds: recovery

	st := b.Stats()
	if st.Trips != 2 || st.Recoveries != 1 || st.Shed != 1 {
		t.Errorf("stats = %+v, want {Trips:2 Recoveries:1 Shed:1}", st)
	}
	if b.State() != Closed {
		t.Errorf("state = %s, want closed", b.State())
	}
}

// TestBreakerHalfOpenProbeQuota: only HalfOpenProbes calls are admitted
// while a probe is in flight.
func TestBreakerHalfOpenProbeQuota(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{FailureThreshold: 1, Cooldown: time.Millisecond, HalfOpenProbes: 1}, clock)
	b.Allow()
	b.Record(errBoom)
	clock.Sleep(context.Background(), time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("first probe rejected: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("second concurrent probe admitted, want ErrOpen (got %v)", err)
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Errorf("state after successful probe = %s, want closed", b.State())
	}
}
