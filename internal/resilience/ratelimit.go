package resilience

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// TokenBucket is a token-bucket rate limiter: capacity tokens refill at
// rate tokens/second; each call consumes one. Wait blocks (on the injected
// Clock) until a token is available, so under a virtual clock the stall is
// logical rather than real — the harvester uses that to model per-service
// request quotas without slowing tests down.
type TokenBucket struct {
	mu       sync.Mutex
	capacity float64
	rate     float64 // tokens per second
	tokens   float64
	last     time.Time
	clock    Clock
}

// NewTokenBucket returns a full bucket. Rate must be positive; capacity is
// clamped to at least 1 token. A nil clock uses WallClock.
func NewTokenBucket(capacity int, perSecond float64, clock Clock) (*TokenBucket, error) {
	if perSecond <= 0 {
		return nil, fmt.Errorf("resilience: nonpositive refill rate %g", perSecond)
	}
	if capacity < 1 {
		capacity = 1
	}
	if clock == nil {
		clock = WallClock{}
	}
	return &TokenBucket{
		capacity: float64(capacity),
		rate:     perSecond,
		tokens:   float64(capacity),
		last:     clock.Now(),
		clock:    clock,
	}, nil
}

// refill credits tokens accrued since the last update; callers hold tb.mu.
func (tb *TokenBucket) refill(now time.Time) {
	elapsed := now.Sub(tb.last).Seconds()
	if elapsed > 0 {
		tb.tokens += elapsed * tb.rate
		if tb.tokens > tb.capacity {
			tb.tokens = tb.capacity
		}
	}
	tb.last = now
}

// Allow consumes a token if one is available, without blocking.
func (tb *TokenBucket) Allow() bool {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	tb.refill(tb.clock.Now())
	if tb.tokens < 1 {
		return false
	}
	tb.tokens--
	return true
}

// Wait consumes a token, sleeping on the clock until one accrues or ctx is
// done. It returns the stall duration (0 when a token was free).
func (tb *TokenBucket) Wait(ctx context.Context) (time.Duration, error) {
	var waited time.Duration
	for {
		tb.mu.Lock()
		now := tb.clock.Now()
		tb.refill(now)
		if tb.tokens >= 1 {
			tb.tokens--
			tb.mu.Unlock()
			return waited, nil
		}
		need := (1 - tb.tokens) / tb.rate
		tb.mu.Unlock()
		d := time.Duration(need * float64(time.Second))
		if d <= 0 {
			d = time.Nanosecond
		}
		if err := tb.clock.Sleep(ctx, d); err != nil {
			return waited, err
		}
		waited += d
	}
}
