package resilience

import (
	"math/rand/v2"
	"testing"
	"time"
)

// TestBackoffCeilings checks the deterministic (jitter-free) schedule:
// exponential growth from Base, capped at Cap.
func TestBackoffCeilings(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Cap: 160 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 160 * time.Millisecond, 160 * time.Millisecond,
		160 * time.Millisecond,
	}
	for attempt, w := range want {
		if got := b.Delay(attempt); got != w {
			t.Errorf("Delay(%d) = %s, want %s", attempt, got, w)
		}
	}
}

// TestBackoffFullJitterSeeded pins the exact jittered schedule under a
// fixed PCG seed: the harvester's reproducibility guarantee rests on this.
func TestBackoffFullJitterSeeded(t *testing.T) {
	b := &Backoff{
		Base: 10 * time.Millisecond,
		Cap:  160 * time.Millisecond,
		Rand: rand.New(rand.NewPCG(7, 11)),
	}
	want := []struct {
		attempt int
		delay   time.Duration
	}{
		{0, 3465985},
		{1, 16768501},
		{2, 27780082},
		{3, 37198618},
		{4, 104340374},
		{5, 158540360},
	}
	for _, tc := range want {
		if got := b.Delay(tc.attempt); got != tc.delay {
			t.Errorf("Delay(%d) = %d, want %d", tc.attempt, got, tc.delay)
		}
	}
}

// TestBackoffJitterBounds: every jittered delay stays below its ceiling.
func TestBackoffJitterBounds(t *testing.T) {
	b := &Backoff{
		Base: 5 * time.Millisecond,
		Cap:  80 * time.Millisecond,
		Rand: rand.New(rand.NewPCG(1, 2)),
	}
	for attempt := 0; attempt < 20; attempt++ {
		ceiling := (&Backoff{Base: b.Base, Cap: b.Cap}).Delay(attempt)
		for i := 0; i < 100; i++ {
			if d := b.Delay(attempt); d < 0 || d > ceiling {
				t.Fatalf("Delay(%d) = %s outside [0, %s]", attempt, d, ceiling)
			}
		}
	}
}

// TestBackoffZeroBase: an unconfigured backoff never delays.
func TestBackoffZeroBase(t *testing.T) {
	b := &Backoff{}
	if got := b.Delay(3); got != 0 {
		t.Errorf("Delay with zero Base = %s, want 0", got)
	}
}

// TestBackoffSameSeedSameSchedule: two backoffs with identically seeded
// rands emit identical schedules.
func TestBackoffSameSeedSameSchedule(t *testing.T) {
	mk := func() *Backoff {
		return &Backoff{
			Base: 3 * time.Millisecond, Cap: 90 * time.Millisecond,
			Rand: rand.New(rand.NewPCG(42, 43)),
		}
	}
	a, b := mk(), mk()
	for attempt := 0; attempt < 12; attempt++ {
		if da, db := a.Delay(attempt), b.Delay(attempt); da != db {
			t.Fatalf("attempt %d: schedules diverge (%s vs %s)", attempt, da, db)
		}
	}
}
