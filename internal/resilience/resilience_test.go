package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// hintedError carries a Retry-After hint.
type hintedError struct{ after time.Duration }

func (e *hintedError) Error() string                 { return "slow down" }
func (e *hintedError) RetryAfterHint() time.Duration { return e.after }

func TestRetryerSucceedsAfterTransients(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	r := &Retryer{
		MaxAttempts: 5,
		Backoff:     &Backoff{Base: 10 * time.Millisecond},
		Clock:       clock,
	}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do = %v, want nil", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	// Two retries: delays 10ms + 20ms of virtual time.
	if got := clock.Elapsed(time.Unix(0, 0)); got != 30*time.Millisecond {
		t.Errorf("virtual elapsed = %s, want 30ms", got)
	}
}

func TestRetryerStopsOnPermanent(t *testing.T) {
	r := &Retryer{MaxAttempts: 5, Clock: NewVirtualClock(time.Unix(0, 0))}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return Permanent(errBoom)
	})
	if calls != 1 {
		t.Errorf("calls = %d, want 1 (permanent must not retry)", calls)
	}
	if !IsPermanent(err) || !errors.Is(err, errBoom) {
		t.Errorf("err = %v, want permanent errBoom", err)
	}
}

func TestRetryerExhaustsAttempts(t *testing.T) {
	r := &Retryer{MaxAttempts: 3, Clock: NewVirtualClock(time.Unix(0, 0))}
	calls := 0
	err := r.Do(context.Background(), func(context.Context) error {
		calls++
		return errBoom
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("err = %v, want wrapped errBoom", err)
	}
}

func TestRetryerHonorsRetryAfterHint(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	var delays []time.Duration
	r := &Retryer{
		MaxAttempts: 2,
		Backoff:     &Backoff{Base: time.Millisecond},
		Clock:       clock,
		OnRetry:     func(_ int, _ error, d time.Duration) { delays = append(delays, d) },
	}
	_ = r.Do(context.Background(), func(context.Context) error {
		return &hintedError{after: 250 * time.Millisecond}
	})
	if len(delays) != 1 || delays[0] != 250*time.Millisecond {
		t.Errorf("delays = %v, want [250ms] (hint overrides shorter backoff)", delays)
	}
}

func TestRetryerRespectsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Retryer{MaxAttempts: 3, Clock: NewVirtualClock(time.Unix(0, 0))}
	err := r.Do(ctx, func(context.Context) error { return errBoom })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestTokenBucketAllowAndRefill(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	tb, err := NewTokenBucket(2, 10, clock) // 2 burst, 10 tokens/s
	if err != nil {
		t.Fatal(err)
	}
	if !tb.Allow() || !tb.Allow() {
		t.Fatal("burst tokens unavailable")
	}
	if tb.Allow() {
		t.Fatal("empty bucket granted a token")
	}
	clock.Sleep(context.Background(), 100*time.Millisecond) // refills 1 token
	if !tb.Allow() {
		t.Fatal("token not refilled after 100ms at 10/s")
	}
	if tb.Allow() {
		t.Fatal("over-refilled")
	}
}

func TestTokenBucketWaitAdvancesClock(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	tb, err := NewTokenBucket(1, 20, clock)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Wait(context.Background()); err != nil {
		t.Fatal(err)
	}
	stall, err := tb.Wait(context.Background()) // must wait 50ms of virtual time
	if err != nil {
		t.Fatal(err)
	}
	if stall != 50*time.Millisecond {
		t.Errorf("stall = %s, want 50ms", stall)
	}
}

func TestVirtualClockSleepHonorsContext(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := clock.Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Errorf("Sleep on cancelled ctx = %v, want context.Canceled", err)
	}
	if got := clock.Elapsed(time.Unix(0, 0)); got != 0 {
		t.Errorf("clock advanced %s on cancelled sleep, want 0", got)
	}
}

func TestWallClockSleepReturnsOnCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go cancel()
	start := time.Now()
	err := WallClock{}.Sleep(ctx, 10*time.Second)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Sleep = %v, want context.Canceled", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("Sleep did not return promptly on cancel")
	}
}
