// Package resilience provides the fault-tolerance primitives the resilient
// ingestion path is built from: retry with exponential backoff and full
// jitter, a three-state circuit breaker, and a token-bucket rate limiter.
// Every primitive takes its randomness and its notion of time by injection,
// so a harvest run — retries, breaker trips, rate-limit stalls and all — is
// bit-for-bit reproducible under a seeded rand and a virtual clock, the same
// property the synthetic corpus generator guarantees.
package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts time for the resilience primitives. Production code uses
// WallClock; tests and deterministic harvests use a VirtualClock whose
// Sleep returns immediately and advances a logical now.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// WallClock is the real time.Now/time.Sleep clock.
type WallClock struct{}

// Now returns time.Now().
func (WallClock) Now() time.Time { return time.Now() }

// Sleep waits for d of wall time, or until ctx is cancelled.
func (WallClock) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// VirtualClock is a logical clock: Sleep advances it instantly. It is safe
// for concurrent use, though deterministic runs should confine one clock to
// one goroutine (concurrent sleepers interleave nondeterministically).
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the current logical time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep advances the logical clock by d without blocking.
func (c *VirtualClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d > 0 {
		c.mu.Lock()
		c.now = c.now.Add(d)
		c.mu.Unlock()
	}
	return nil
}

// Elapsed returns how far the clock has advanced past start.
func (c *VirtualClock) Elapsed(start time.Time) time.Duration {
	return c.Now().Sub(start)
}
