package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Allow while the breaker is open (and by
// half-open when the probe quota is already taken): the protected service
// is presumed down and the call should be shed or routed to a fallback.
var ErrOpen = errors.New("resilience: circuit breaker open")

// BreakerState is the classic three-state circuit-breaker state.
type BreakerState int8

const (
	// Closed: traffic flows; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: traffic is shed until the cool-down elapses.
	Open
	// HalfOpen: a bounded number of probe calls test recovery.
	HalfOpen
)

// String names the state.
func (s BreakerState) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. Zero fields take the documented defaults.
type BreakerConfig struct {
	// FailureThreshold is the number of consecutive failures (while
	// closed) that trips the breaker open. Default 5.
	FailureThreshold int
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes. Default 30s.
	Cooldown time.Duration
	// HalfOpenProbes is how many concurrent probe calls half-open admits;
	// that many consecutive probe successes close the breaker, any probe
	// failure reopens it. Default 1.
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	return c
}

// BreakerStats counts state transitions for reporting.
type BreakerStats struct {
	Trips      int // transitions into Open (first trip and reopen alike)
	Recoveries int // transitions HalfOpen -> Closed
	Shed       int // calls rejected with ErrOpen
}

// Breaker is a three-state (closed / open / half-open) circuit breaker.
// Callers bracket each protected call with Allow and Record:
//
//	if err := b.Allow(); err != nil { ... shed or fall back ... }
//	err := call()
//	b.Record(err)
//
// Time comes from the injected Clock, so cool-downs elapse on virtual time
// in deterministic runs. Safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	clock Clock

	mu        sync.Mutex
	state     BreakerState
	failures  int       // consecutive failures while closed
	openedAt  time.Time // when the breaker last tripped
	probes    int       // in-flight half-open probes
	probeWins int       // consecutive half-open successes
	stats     BreakerStats
}

// NewBreaker returns a closed breaker. A nil clock uses WallClock.
func NewBreaker(cfg BreakerConfig, clock Clock) *Breaker {
	if clock == nil {
		clock = WallClock{}
	}
	return &Breaker{cfg: cfg.withDefaults(), clock: clock}
}

// Allow reports whether a call may proceed now. It returns nil (admitting
// the call, which must later be Recorded) or ErrOpen.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if b.clock.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.stats.Shed++
			return ErrOpen
		}
		b.state = HalfOpen
		b.probes = 0
		b.probeWins = 0
		fallthrough
	case HalfOpen:
		if b.probes >= b.cfg.HalfOpenProbes {
			b.stats.Shed++
			return ErrOpen
		}
		b.probes++
		return nil
	default:
		return nil
	}
}

// Record reports the outcome of a call previously admitted by Allow.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		if err == nil {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.FailureThreshold {
			b.trip()
		}
	case HalfOpen:
		b.probes--
		if err != nil {
			b.trip()
			return
		}
		b.probeWins++
		if b.probeWins >= b.cfg.HalfOpenProbes {
			b.state = Closed
			b.failures = 0
			b.stats.Recoveries++
		}
	case Open:
		// A call admitted in half-open may report after a concurrent
		// probe failure reopened the breaker; its outcome is moot.
	}
}

// trip moves to Open; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = Open
	b.openedAt = b.clock.Now()
	b.failures = 0
	b.probes = 0
	b.probeWins = 0
	b.stats.Trips++
}

// State returns the current state (open lazily degrades to half-open only
// on the next Allow, so an idle expired breaker still reports Open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the transition counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
